package rlplanner

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuiltInInstances(t *testing.T) {
	if got := len(CourseInstances()); got != 4 {
		t.Fatalf("course instances = %d, want 4", got)
	}
	if got := len(TripInstances()); got != 2 {
		t.Fatalf("trip instances = %d, want 2", got)
	}
	if got := len(Instances()); got != 6 {
		t.Fatalf("instances = %d, want 6", got)
	}
	in, err := InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		t.Fatal(err)
	}
	if in.NumItems() != 31 || in.IsTrip() || in.GoldScore() != 10 {
		t.Fatalf("DS-CT shape: items=%d trip=%v gold=%v",
			in.NumItems(), in.IsTrip(), in.GoldScore())
	}
	if len(in.Topics()) != 60 {
		t.Fatalf("DS-CT topics = %d", len(in.Topics()))
	}
	if _, err := InstanceByName("Hogwarts"); err == nil {
		t.Fatal("unknown instance accepted")
	}
}

func TestItemsExposeCatalog(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	items := in.Items()
	if len(items) != 31 {
		t.Fatalf("items = %d", len(items))
	}
	var ml *Item
	for i := range items {
		if items[i].ID == "CS 675" {
			ml = &items[i]
		}
	}
	if ml == nil {
		t.Fatal("CS 675 missing")
	}
	if !ml.Primary || ml.Name != "Machine Learning" || ml.Credits != 3 {
		t.Fatalf("CS 675 = %+v", ml)
	}
	if ml.Prerequisite != "[]" {
		t.Fatalf("CS 675 prerequisite = %s", ml.Prerequisite)
	}
	if len(ml.Topics) == 0 {
		t.Fatal("CS 675 has no topics")
	}
}

func TestEndToEndCoursePlanning(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	p, err := NewPlanner(in, Options{Episodes: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	if len(p.LearningCurve()) != 200 {
		t.Fatalf("learning curve = %d points", len(p.LearningCurve()))
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("plan = %d steps, want 10", len(plan.Steps))
	}
	if plan.TotalCredits != 30 {
		t.Fatalf("credits = %v, want 30", plan.TotalCredits)
	}
	if !plan.SatisfiesConstraints {
		t.Fatalf("plan violates constraints: %v", plan.Violations)
	}
	if plan.Score <= 0 || plan.Score > in.GoldScore() {
		t.Fatalf("score = %v", plan.Score)
	}
	if plan.IDs()[0] != "CS 675" {
		t.Fatalf("plan starts with %s", plan.IDs()[0])
	}
}

func TestEndToEndTripPlanning(t *testing.T) {
	in, _ := InstanceByName("Paris")
	p, err := NewPlanner(in, Options{Episodes: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("empty itinerary")
	}
	if plan.TotalCredits > 6 {
		t.Fatalf("itinerary time %v exceeds t = 6", plan.TotalCredits)
	}
	if !plan.SatisfiesConstraints {
		t.Fatalf("itinerary violations: %v", plan.Violations)
	}
}

func TestBaselinesAndGold(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	g, err := GoldStandard(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.Score != 10 {
		t.Fatalf("gold score = %v", g.Score)
	}
	e, err := EDABaseline(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Steps) != 10 {
		t.Fatalf("EDA steps = %d", len(e.Steps))
	}
	o, err := OmegaBaseline(in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Steps) == 0 {
		t.Fatal("OMEGA produced nothing")
	}
}

func TestPolicySaveLoad(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	p, _ := NewPlanner(in, Options{Episodes: 100, Seed: 4})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	want, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}

	fresh, _ := NewPlanner(in, Options{Seed: 4})
	if err := fresh.LoadPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got.IDs(), "|") != strings.Join(want.IDs(), "|") {
		t.Fatalf("loaded policy plans differently:\n%v\n%v", got.IDs(), want.IDs())
	}

	unlearned, _ := NewPlanner(in, Options{Seed: 4})
	if err := unlearned.SavePolicy(&bytes.Buffer{}); err == nil {
		t.Fatal("saved a policy before learning")
	}
}

func TestTransferAcrossCities(t *testing.T) {
	nyc, _ := InstanceByName("NYC")
	paris, _ := InstanceByName("Paris")
	p, _ := NewPlanner(nyc, Options{Episodes: 100, Seed: 5})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	moved, err := p.Transfer(paris, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := moved.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("transferred planner produced nothing")
	}

	unlearned, _ := NewPlanner(nyc, Options{Seed: 5})
	if _, err := unlearned.Transfer(paris, Options{}); err == nil {
		t.Fatal("transfer before learning accepted")
	}
}

func TestRatePlanAPI(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	g, _ := GoldStandard(in)
	r, err := RatePlan(in, g, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{r.Overall, r.Ordering, r.Coverage, r.Interleaving} {
		if v < 1 || v > 5 {
			t.Fatalf("rating %v out of scale", v)
		}
	}
}

func TestMinimumSimilarityOption(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	p, err := NewPlanner(in, Options{Episodes: 100, Seed: 8, MinimumSimilarity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(); err != nil {
		t.Fatal(err)
	}
}

func TestNilAndBadInputs(t *testing.T) {
	if _, err := NewPlanner(nil, Options{}); err == nil {
		t.Fatal("nil instance accepted")
	}
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	if _, err := NewPlanner(in, Options{Start: "GHOST 1"}); err == nil {
		t.Fatal("unknown start accepted")
	}
	p, _ := NewPlanner(in, Options{Episodes: 50, Seed: 9})
	if _, err := p.Plan(); err == nil {
		t.Fatal("plan before learn accepted")
	}
}

func TestExplainPlanAPI(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	g, _ := GoldStandard(in)
	lines, err := ExplainPlan(in, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(g.Steps) {
		t.Fatalf("explanation lines = %d", len(lines))
	}
	bad := &Plan{Steps: []PlanStep{{ID: "GHOST"}}}
	if _, err := ExplainPlan(in, bad); err == nil {
		t.Fatal("unknown item accepted")
	}
}

func TestCourseDescriptionsExposed(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	for _, m := range in.Items() {
		if m.ID == "CS 675" {
			if !strings.Contains(m.Description, "Supervised") {
				t.Fatalf("CS 675 description = %q", m.Description)
			}
			return
		}
	}
	t.Fatal("CS 675 missing")
}
