package rlplanner

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestEnginesListing(t *testing.T) {
	names := Engines()
	if len(names) != 6 {
		t.Fatalf("Engines() = %v", names)
	}
	for _, want := range []string{"sarsa", "qlearning", "valueiter", "eda", "omega", "gold"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("engine %q missing from %v", want, names)
		}
	}
	if name, err := EngineName(""); err != nil || name != "sarsa" {
		t.Fatalf("EngineName(\"\") = %q, %v", name, err)
	}
	if name, err := EngineName("vi"); err != nil || name != "valueiter" {
		t.Fatalf("EngineName(vi) = %q, %v", name, err)
	}
	if _, err := EngineName("oracle"); err == nil {
		t.Fatal("unknown engine name accepted")
	}
}

func TestTrainAndRecommend(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	pol, err := Train(context.Background(), in, "sarsa", Options{Episodes: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Engine() != "sarsa" || pol.Fingerprint() == "" {
		t.Fatalf("policy identity = %s/%s", pol.Engine(), pol.Fingerprint())
	}
	plan, err := pol.Recommend("")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
	// Explicit start item.
	from, err := pol.Recommend("CS 644")
	if err != nil {
		t.Fatal(err)
	}
	if from.Steps[0].ID != "CS 644" {
		t.Fatalf("plan starts at %s, want CS 644", from.Steps[0].ID)
	}
	if _, err := pol.Recommend("GHOST 1"); err == nil {
		t.Fatal("unknown start item accepted")
	}
	if _, err := Train(context.Background(), nil, "sarsa", Options{}); err == nil {
		t.Fatal("nil instance accepted")
	}
}

func TestPolicyArtifactRoundTrip(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	pol, err := Train(context.Background(), in, "qlearning", Options{Episodes: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pol.Recommend("")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pol.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicyArtifact(&buf, in, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Engine() != "qlearning" {
		t.Fatalf("loaded engine = %s", loaded.Engine())
	}
	got, err := loaded.Recommend("")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got.IDs(), "|") != strings.Join(want.IDs(), "|") {
		t.Fatalf("loaded artifact plans differently:\n%v\n%v", got.IDs(), want.IDs())
	}
}

func TestPolicyArtifactWrongInstance(t *testing.T) {
	dsct, _ := InstanceByName("Univ-1 M.S. DS-CT")
	nyc, _ := InstanceByName("NYC")
	pol, err := Train(context.Background(), dsct, "gold", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pol.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = LoadPolicyArtifact(&buf, nyc, Options{})
	if err == nil || !strings.Contains(err.Error(), "different catalog") {
		t.Fatalf("cross-catalog load: %v", err)
	}
}

// TestPlannerArtifactInterop: the legacy Planner.SavePolicy output is the
// same artifact format LoadPolicyArtifact reads.
func TestPlannerArtifactInterop(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	p, _ := NewPlanner(in, Options{Episodes: 100, Seed: 4})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	want, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	pol, err := LoadPolicyArtifact(&buf, in, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pol.Recommend("")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got.IDs(), "|") != strings.Join(want.IDs(), "|") {
		t.Fatalf("interop plans differ:\n%v\n%v", got.IDs(), want.IDs())
	}
}

func TestPolicySessions(t *testing.T) {
	in, _ := InstanceByName("Univ-1 M.S. DS-CT")
	pol, err := Train(context.Background(), in, "sarsa", Options{Episodes: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := pol.NewSession(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Suggestions()) == 0 || s.Done() {
		t.Fatal("fresh session has no suggestions")
	}
	plan := s.AutoComplete()
	if len(plan.Steps) != 10 {
		t.Fatalf("auto-completed plan = %d steps", len(plan.Steps))
	}

	// Procedural engines cannot drive sessions.
	gold, err := Train(context.Background(), in, "gold", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gold.NewSession(3); err == nil {
		t.Fatal("session on a gold policy accepted")
	}
}
