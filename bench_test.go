// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV). Each benchmark runs the corresponding experiment
// end-to-end; DESIGN.md §4 maps benchmark names to paper artifacts, and
// cmd/benchharness prints the same results as text tables.
//
// The benchmarks use a reduced run count per iteration so `go test
// -bench=. -benchmem` finishes in minutes; the harness's default mode
// reproduces the paper's 10-run averages.
package rlplanner

import (
	"fmt"
	"testing"

	"github.com/rlplanner/rlplanner/internal/baselines/omega"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/synth"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/experiments"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/valueiter"
)

// benchConfig keeps per-iteration work bounded. Workers is left zero, so
// runs fan out across GOMAXPROCS; the Sequential variant below pins
// Workers: 1 to expose the pool's speedup in the same bench output.
var benchConfig = experiments.Config{Runs: 3, BaseSeed: 1, Episodes: 200}

func BenchmarkFig1CoursePlanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1Courses(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1CoursePlanningSequential(b *testing.B) {
	cfg := benchConfig
	cfg.Workers = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1Courses(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1TripPlanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1Trips(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4UserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5TransferCourses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7TransferTrips(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8Itineraries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table8(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// Sweep benchmarks use a smaller run count: each sweep already multiplies
// work by |values| × 2 similarity modes.
var sweepConfig = experiments.Config{Runs: 2, BaseSeed: 1, Episodes: 150}

func BenchmarkTable9Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table9(sweepConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable10Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table10(sweepConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable11Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table11(sweepConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable12Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table12(sweepConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable13Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table13(sweepConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable14Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table14(sweepConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable15Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table15(sweepConfig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable16Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table16(sweepConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2LearnScaling measures policy-learning time as a function
// of N on Univ-1 DS-CT — the linear-scaling claim of Figure 2(a)/(c).
func BenchmarkFig2LearnScaling(b *testing.B) {
	inst := univ.Univ1DSCT()
	for _, n := range []int{100, 200, 300, 500, 1000} {
		b.Run(byEpisodes(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := core.New(inst, core.Options{Episodes: n, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Learn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2RecommendScaling measures recommendation time against a
// policy learned with varying N — the interactive-speed claim of Figure
// 2(b)/(d).
func BenchmarkFig2RecommendScaling(b *testing.B) {
	inst := trip.NYC().Instance
	for _, n := range []int{100, 500, 1000} {
		p, err := core.New(inst, core.Options{Episodes: n, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Learn(); err != nil {
			b.Fatal(err)
		}
		b.Run(byEpisodes(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byEpisodes(n int) string { return fmt.Sprintf("N=%d", n) }

// --- Ablation benches for the design choices DESIGN.md §5 calls out. ---

// BenchmarkAblationSimilarity compares average vs minimum similarity in
// the reward (the paper runs both everywhere).
func BenchmarkAblationSimilarity(b *testing.B) {
	inst := univ.Univ1DSCT()
	for _, mode := range []seqsim.Mode{seqsim.Average, seqsim.Minimum} {
		b.Run(mode.String(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				p, err := core.New(inst, core.Options{
					Episodes: 200, Seed: int64(i), Sim: mode, HasSim: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Learn(); err != nil {
					b.Fatal(err)
				}
				plan, err := p.Plan()
				if err != nil {
					b.Fatal(err)
				}
				total += eval.Score(inst, plan)
			}
			b.ReportMetric(total/float64(b.N), "score/op")
		})
	}
}

// BenchmarkAblationSelection compares Algorithm 1's reward-greedy action
// selection against classical Q-greedy SARSA exploitation.
func BenchmarkAblationSelection(b *testing.B) {
	inst := univ.Univ1DSCT()
	for _, sel := range []sarsa.Selection{sarsa.RewardGreedy, sarsa.QGreedy} {
		b.Run(sel.String(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				p, err := core.New(inst, core.Options{
					Episodes: 200, Seed: int64(i), Selection: sel,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Learn(); err != nil {
					b.Fatal(err)
				}
				plan, err := p.Plan()
				if err != nil {
					b.Fatal(err)
				}
				total += eval.Score(inst, plan)
			}
			b.ReportMetric(total/float64(b.N), "score/op")
		})
	}
}

// BenchmarkAblationGuidedWalk compares the guided (validity-aware)
// recommendation walk against the raw Algorithm 1 Q walk.
func BenchmarkAblationGuidedWalk(b *testing.B) {
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{Episodes: 300, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		b.Fatal(err)
	}
	start := inst.StartIndex()
	b.Run("guided", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			plan, err := p.PlanFrom(start)
			if err != nil {
				b.Fatal(err)
			}
			total += eval.Score(inst, plan)
		}
		b.ReportMetric(total/float64(b.N), "score/op")
	})
	b.Run("raw", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			plan, err := p.PlanRaw(start)
			if err != nil {
				b.Fatal(err)
			}
			total += eval.Score(inst, plan)
		}
		b.ReportMetric(total/float64(b.N), "score/op")
	})
}

// BenchmarkAblationQTableSize measures Q-table operations at the three
// catalog scales the datasets use (31, 114 and 1216 items).
func BenchmarkAblationQTableSize(b *testing.B) {
	for _, n := range []int{31, 114, 1216} {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			q := qtable.New(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Update(i%n, (i+1)%n, 0.75, 1, 0.95, (i+2)%n, (i+3)%n)
				q.ArgMax(i%n, nil)
			}
		})
	}
}

// BenchmarkAblationAlgorithm compares SARSA against off-policy Q-learning
// — the paper picks SARSA as "known to converge faster and with fewer
// errors" (§III-C).
func BenchmarkAblationAlgorithm(b *testing.B) {
	inst := univ.Univ1DSCT()
	for _, alg := range []sarsa.Algorithm{sarsa.SARSA, sarsa.QLearning} {
		b.Run(alg.String(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				p, err := core.New(inst, core.Options{
					Episodes: 200, Seed: int64(i), Algorithm: alg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Learn(); err != nil {
					b.Fatal(err)
				}
				plan, err := p.Plan()
				if err != nil {
					b.Fatal(err)
				}
				total += eval.Score(inst, plan)
			}
			b.ReportMetric(total/float64(b.N), "score/op")
		})
	}
}

// BenchmarkAblationSolver compares SARSA policy iteration against the
// value-iteration solver on the same MDP abstraction — the §III-C
// methodological choice, made empirical.
func BenchmarkAblationSolver(b *testing.B) {
	inst := univ.Univ1DSCT()
	b.Run("sarsa", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			p, err := core.New(inst, core.Options{Episodes: 500, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Learn(); err != nil {
				b.Fatal(err)
			}
			plan, err := p.Plan()
			if err != nil {
				b.Fatal(err)
			}
			total += eval.Score(inst, plan)
		}
		b.ReportMetric(total/float64(b.N), "score/op")
	})
	b.Run("value-iteration", func(b *testing.B) {
		p, err := core.New(inst, core.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for i := 0; i < b.N; i++ {
			res, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 0.95, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			plan, err := res.Policy.RecommendGuided(p.Env(), inst.StartIndex())
			if err != nil {
				b.Fatal(err)
			}
			total += eval.Score(inst, plan)
		}
		b.ReportMetric(total/float64(b.N), "score/op")
	})
}

// BenchmarkCatalogScaling measures end-to-end learning+planning across
// catalog sizes spanning the datasets' range (toy program → full
// institution scale), on synthetic workloads from the generator.
func BenchmarkCatalogScaling(b *testing.B) {
	for _, n := range []int{31, 114, 300, 600, 1216} {
		inst := synth.MustGenerate(synth.Params{
			Name: fmt.Sprintf("syn../%d", n), Items: n, Seed: int64(n),
		})
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := core.New(inst, core.Options{Episodes: 100, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Learn(); err != nil {
					b.Fatal(err)
				}
				if _, err := p.Plan(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOmegaUtility compares the redesigned co-coverage OMEGA
// against the original co-visit OMEGA on the NYC itinerary logs.
func BenchmarkAblationOmegaUtility(b *testing.B) {
	city := trip.NYC()
	inst := city.Instance
	p, err := core.New(inst, core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([][]int, len(city.Itineraries))
	for i, it := range city.Itineraries {
		seqs[i] = []int(it)
	}
	covisit := omega.CoVisit(inst.Catalog.Len(), seqs)
	cocover := omega.CoCoverage(inst.Catalog)
	for _, tc := range []struct {
		name string
		m    [][]int
	}{{"co-coverage", cocover}, {"co-visit", covisit}} {
		b.Run(tc.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				plan, err := omega.PlanUtility(p.Env(), inst.StartIndex(), tc.m)
				if err != nil {
					b.Fatal(err)
				}
				total += eval.Score(inst, plan)
			}
			b.ReportMetric(total/float64(b.N), "score/op")
		})
	}
}

// BenchmarkAblationThetaGate compares Eq. 5's multiplicative θ gate
// against a subtractive soft-penalty variant: hard gating is what makes
// Theorem 1 hold, and the soft variant shows what the learner does when
// it may trade validity for similarity.
func BenchmarkAblationThetaGate(b *testing.B) {
	inst := univ.Univ1DSCT()
	for _, tc := range []struct {
		name string
		soft bool
	}{{"product-gate", false}, {"soft-penalty", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				p, err := core.New(inst, core.Options{
					Episodes: 200, Seed: int64(i), SoftThetaGate: tc.soft,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Learn(); err != nil {
					b.Fatal(err)
				}
				plan, err := p.Plan()
				if err != nil {
					b.Fatal(err)
				}
				total += eval.Score(inst, plan)
			}
			b.ReportMetric(total/float64(b.N), "score/op")
		})
	}
}
