package rlplanner

import (
	"math"
	"testing"
)

func TestFeedbackLoopEndToEnd(t *testing.T) {
	inst, _ := InstanceByName("Univ-1 M.S. DS-CT")
	loop, err := NewFeedbackLoop(inst, Options{Episodes: 120}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := loop.Replan(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("replan = %d steps", len(plan.Steps))
	}

	d0, b0, w10, w20 := loop.Weights()
	if math.Abs(d0+b0-1) > 1e-9 || math.Abs(w10+w20-1) > 1e-9 {
		t.Fatalf("weights not normalized: %v %v %v %v", d0, b0, w10, w20)
	}

	// All three signal kinds fold in.
	if err := loop.ObserveBinary(plan, false); err != nil {
		t.Fatal(err)
	}
	if err := loop.ObserveRating(plan, 2); err != nil {
		t.Fatal(err)
	}
	if err := loop.ObserveDistribution(plan, []float64{0.5, 0.3, 0.2, 0, 0}); err != nil {
		t.Fatal(err)
	}
	d1, b1, _, _ := loop.Weights()
	if math.Abs(d1+b1-1) > 1e-9 {
		t.Fatalf("adapted weights not normalized: %v %v", d1, b1)
	}
	if d1 == d0 {
		t.Fatal("negative feedback left δ untouched")
	}

	// Replanning under adapted weights still produces a full valid plan.
	plan2, err := loop.Replan(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Steps) != 10 {
		t.Fatalf("adapted replan = %d steps", len(plan2.Steps))
	}
}

func TestFeedbackLoopTripDefaultsAndErrors(t *testing.T) {
	paris, _ := InstanceByName("Paris")
	loop, err := NewFeedbackLoop(paris, Options{Episodes: 80}, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := loop.Replan(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.ObserveRating(plan, 4); err != nil {
		t.Fatal(err)
	}

	// Unknown plan items are rejected.
	bad := &Plan{Steps: []PlanStep{{ID: "GHOST"}}}
	if err := loop.ObserveBinary(bad, true); err == nil {
		t.Fatal("unknown item accepted")
	}
	// Invalid construction.
	if _, err := NewFeedbackLoop(nil, Options{}, 0.3); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := NewFeedbackLoop(paris, Options{}, 2); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestSessionAcceptAndState(t *testing.T) {
	inst, _ := InstanceByName("Univ-1 M.S. DS-CT")
	p, _ := NewPlanner(inst, Options{Episodes: 150, Seed: 30})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	s, err := p.StartSession(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("fresh session done")
	}
	if ids := s.PlanIDs(); len(ids) != 1 {
		t.Fatalf("initial ids = %v", ids)
	}
	sug := s.Suggestions()
	if len(sug) == 0 {
		t.Fatal("no suggestions")
	}
	if err := s.Accept(sug[0].ID); err != nil {
		t.Fatal(err)
	}
	cur := s.Current()
	if len(cur.Steps) != 2 {
		t.Fatalf("current = %d steps", len(cur.Steps))
	}
	if cur.SatisfiesConstraints {
		t.Fatal("partial 2-step plan cannot satisfy the 10-course program")
	}

	// Plan before learning rejects session start.
	fresh, _ := NewPlanner(inst, Options{Seed: 31})
	if _, err := fresh.StartSession(3); err == nil {
		t.Fatal("session before learning accepted")
	}
}

func TestPlanFromPublicAPI(t *testing.T) {
	inst, _ := InstanceByName("Univ-1 M.S. DS-CT")
	p, _ := NewPlanner(inst, Options{Episodes: 100, Seed: 32})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	plan, err := p.PlanFrom("CS 636")
	if err != nil {
		t.Fatal(err)
	}
	if plan.IDs()[0] != "CS 636" {
		t.Fatalf("PlanFrom start = %s", plan.IDs()[0])
	}
	if _, err := p.PlanFrom("GHOST"); err == nil {
		t.Fatal("unknown start accepted")
	}
}

// TestReplanUsesTrainWorkers pins Options.TrainWorkers reaching the
// feedback loop's retraining runs: with workers configured the parallel
// schedule's merge protocol must actually execute (MergeBatches > 0),
// and without workers the sequential Algorithm 1 loop runs (0 batches).
func TestReplanUsesTrainWorkers(t *testing.T) {
	inst, _ := InstanceByName("Univ-1 M.S. DS-CT")
	parallel, err := NewFeedbackLoop(inst, Options{Episodes: 80, Seed: 9, TrainWorkers: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.LastReplan() != (ReplanStats{}) {
		t.Fatal("stats before any Replan should be zero")
	}
	if _, err := parallel.Replan(7); err != nil {
		t.Fatal(err)
	}
	stats := parallel.LastReplan()
	if stats.TrainWorkers != 2 || stats.Episodes != 80 {
		t.Fatalf("parallel replan stats = %+v", stats)
	}
	if stats.MergeBatches == 0 {
		t.Fatal("TrainWorkers=2 replan ran the sequential schedule")
	}

	sequential, err := NewFeedbackLoop(inst, Options{Episodes: 80, Seed: 9}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sequential.Replan(7); err != nil {
		t.Fatal(err)
	}
	if got := sequential.LastReplan(); got.MergeBatches != 0 || got.TrainWorkers != 0 {
		t.Fatalf("sequential replan stats = %+v", got)
	}
}
