package main

import (
	"context"
	"strings"
	"testing"

	"github.com/rlplanner/rlplanner"
)

// learnedSession trains a small policy and opens a 5-suggestion session
// for the REPL tests, mirroring what main's -interactive path does.
func learnedSession(t *testing.T) *rlplanner.Session {
	t.Helper()
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := rlplanner.Train(context.Background(), inst, "sarsa",
		rlplanner.Options{Episodes: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := pol.NewSession(5)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInteractiveLoopFinish(t *testing.T) {
	s := learnedSession(t)
	var out strings.Builder
	plan, err := interactiveLoop(s, strings.NewReader("a 1\nf\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("finished plan = %d steps", len(plan.Steps))
	}
	if !strings.Contains(out.String(), "plan so far") {
		t.Fatalf("prompt missing:\n%s", out.String())
	}
}

func TestInteractiveLoopQuitKeepsPartial(t *testing.T) {
	s := learnedSession(t)
	var out strings.Builder
	plan, err := interactiveLoop(s, strings.NewReader("a 1\nq\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("partial plan = %d steps, want 2 (start + one accept)", len(plan.Steps))
	}
}

func TestInteractiveLoopRejectsBadInput(t *testing.T) {
	s := learnedSession(t)
	var out strings.Builder
	// Bad number, bad command, reject without number — then finish.
	plan, err := interactiveLoop(s, strings.NewReader("a 99\nzzz\nr\nf\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
	for _, want := range []string{"bad suggestion number", "commands:", "need a suggestion number"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing feedback %q:\n%s", want, out.String())
		}
	}
}

func TestInteractiveLoopEOF(t *testing.T) {
	s := learnedSession(t)
	var out strings.Builder
	plan, err := interactiveLoop(s, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	// EOF before any command: only the start item.
	if len(plan.Steps) != 1 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
}

// TestSessionRequiresValueEngine pins the -interactive error path:
// procedural engines cannot drive sessions.
func TestSessionRequiresValueEngine(t *testing.T) {
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := rlplanner.Train(context.Background(), inst, "gold", rlplanner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pol.NewSession(5); err == nil {
		t.Fatal("NewSession on a gold policy should fail")
	}
}
