package main

import (
	"strings"
	"testing"

	"github.com/rlplanner/rlplanner"
)

// learnedPlanner builds a small planner for the REPL tests.
func learnedPlanner(t *testing.T) *rlplanner.Planner {
	t.Helper()
	inst, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rlplanner.NewPlanner(inst, rlplanner.Options{Episodes: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInteractiveLoopFinish(t *testing.T) {
	p := learnedPlanner(t)
	var out strings.Builder
	plan, err := interactiveLoop(p, strings.NewReader("a 1\nf\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("finished plan = %d steps", len(plan.Steps))
	}
	if !strings.Contains(out.String(), "plan so far") {
		t.Fatalf("prompt missing:\n%s", out.String())
	}
}

func TestInteractiveLoopQuitKeepsPartial(t *testing.T) {
	p := learnedPlanner(t)
	var out strings.Builder
	plan, err := interactiveLoop(p, strings.NewReader("a 1\nq\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("partial plan = %d steps, want 2 (start + one accept)", len(plan.Steps))
	}
}

func TestInteractiveLoopRejectsBadInput(t *testing.T) {
	p := learnedPlanner(t)
	var out strings.Builder
	// Bad number, bad command, reject without number — then finish.
	plan, err := interactiveLoop(p, strings.NewReader("a 99\nzzz\nr\nf\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
	for _, want := range []string{"bad suggestion number", "commands:", "need a suggestion number"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing feedback %q:\n%s", want, out.String())
		}
	}
}

func TestInteractiveLoopEOF(t *testing.T) {
	p := learnedPlanner(t)
	var out strings.Builder
	plan, err := interactiveLoop(p, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	// EOF before any command: only the start item.
	if len(plan.Steps) != 1 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
}
