// Command rlplanner plans course sequences and trip itineraries from the
// command line using the RL-Planner framework.
//
// Usage:
//
//	rlplanner -list
//	rlplanner -engines
//	rlplanner -instance "Univ-1 M.S. DS-CT" [-start "CS 675"] [-episodes 500]
//	          [-min-sim] [-seed 1] [-save policy.gob | -load policy.gob]
//	          [-engine sarsa|qlearning|valueiter|eda|omega|gold] [-rate] [-items]
//	rlplanner -instance NYC -transfer Paris
//
// -engine selects any registered planning engine (default: the paper's
// SARSA learner); -baseline is its deprecated alias. -save writes the
// trained policy as a versioned artifact and -load serves from one
// without retraining. With -transfer the policy learned on -instance is
// mapped onto the target instance (the §IV-D case study). -rate runs the
// simulated 25-rater panel over the produced plan.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/rlplanner/rlplanner"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list built-in instances and exit")
		engines   = flag.Bool("engines", false, "list registered planning engines and exit")
		items     = flag.Bool("items", false, "print the instance catalog and exit")
		instance  = flag.String("instance", "Univ-1 M.S. DS-CT", "instance name")
		start     = flag.String("start", "", "starting item id (default: instance's)")
		episodes  = flag.Int("episodes", 0, "learning episodes N (0 = Table III default)")
		minSim    = flag.Bool("min-sim", false, "use the minimum-similarity reward variant")
		seed      = flag.Int64("seed", 1, "random seed")
		savePath  = flag.String("save", "", "save the trained policy artifact to this file")
		loadPath  = flag.String("load", "", "load a policy artifact instead of training")
		engineFl  = flag.String("engine", "", "planning engine (see -engines; default sarsa)")
		baseline  = flag.String("baseline", "", "deprecated alias of -engine")
		transfer  = flag.String("transfer", "", "transfer the learned policy to this instance")
		rate      = flag.Bool("rate", false, "run the simulated rater panel on the plan")
		repl      = flag.Bool("interactive", false, "plan step by step: accept/reject suggestions")
		explain   = flag.Bool("explain", false, "justify every plan step (antecedents, topics)")
		timeLimit = flag.Float64("time", 0, "trip time threshold t in hours (0 = default)")
		maxDist   = flag.Float64("distance", 0, "trip distance threshold d in km (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, in := range rlplanner.Instances() {
			kind := "course"
			if in.IsTrip() {
				kind = "trip"
			}
			fmt.Printf("%-28s %-6s %3d items, start %q\n",
				in.Name(), kind, in.NumItems(), in.DefaultStart())
		}
		return
	}
	if *engines {
		for _, name := range rlplanner.Engines() {
			fmt.Println(name)
		}
		return
	}

	inst, err := rlplanner.InstanceByName(*instance)
	check(err)

	if *items {
		for _, m := range inst.Items() {
			role := "secondary"
			if m.Primary {
				role = "primary"
			}
			fmt.Printf("%-36s %-9s %4.2g cr  pre=%s\n", m.ID, role, m.Credits, m.Prerequisite)
		}
		return
	}

	opts := rlplanner.Options{
		Episodes:          *episodes,
		MinimumSimilarity: *minSim,
		Start:             *start,
		Seed:              *seed,
		TimeLimitHours:    *timeLimit,
		MaxDistanceKm:     *maxDist,
	}

	choice := *engineFl
	if choice == "" {
		choice = *baseline
	}
	engineName, err := rlplanner.EngineName(choice)
	check(err)

	var plan *rlplanner.Plan
	if *transfer != "" {
		// The §IV-D case study maps a learned Q table onto another
		// catalog; it runs on the mutable SARSA planner facade.
		if engineName != "sarsa" {
			check(fmt.Errorf("-transfer supports the sarsa engine only (got %s)", engineName))
		}
		p, err := rlplanner.NewPlanner(inst, opts)
		check(err)
		if *loadPath != "" {
			f, err := os.Open(*loadPath)
			check(err)
			check(p.LoadPolicy(f))
			f.Close()
		} else {
			check(p.Learn())
		}
		if *savePath != "" {
			f, err := os.Create(*savePath)
			check(err)
			check(p.SavePolicy(f))
			check(f.Close())
			fmt.Printf("policy saved to %s\n", *savePath)
		}
		target, err := rlplanner.InstanceByName(*transfer)
		check(err)
		moved, err := p.Transfer(target, rlplanner.Options{Seed: *seed})
		check(err)
		inst = target
		plan, err = moved.Plan()
		check(err)
	} else {
		// Every engine goes through the registry's train/serve split:
		// obtain an immutable policy (trained or loaded), then recommend.
		var pol *rlplanner.Policy
		if *loadPath != "" {
			f, err := os.Open(*loadPath)
			check(err)
			pol, err = rlplanner.LoadPolicyArtifact(f, inst, opts)
			check(err)
			f.Close()
		} else {
			pol, err = rlplanner.Train(context.Background(), inst, engineName, opts)
			check(err)
		}
		if *savePath != "" {
			f, err := os.Create(*savePath)
			check(err)
			check(pol.Save(f))
			check(f.Close())
			fmt.Printf("policy saved to %s\n", *savePath)
		}
		if *repl {
			s, err := pol.NewSession(5)
			check(err)
			plan, err = interactiveLoop(s, os.Stdin, os.Stdout)
			check(err)
		} else {
			plan, err = pol.Recommend("")
			check(err)
		}
	}

	printPlan(inst, plan)

	if *explain {
		lines, err := rlplanner.ExplainPlan(inst, plan)
		check(err)
		fmt.Println("\nStep-by-step justification:")
		for _, l := range lines {
			fmt.Println(l)
		}
	}

	if *rate {
		r, err := rlplanner.RatePlan(inst, plan, 25, *seed)
		check(err)
		fmt.Printf("\nSimulated 25-rater panel (1–5):\n")
		fmt.Printf("  overall       %.2f\n", r.Overall)
		fmt.Printf("  ordering      %.2f\n", r.Ordering)
		fmt.Printf("  coverage      %.2f\n", r.Coverage)
		fmt.Printf("  interleaving  %.2f\n", r.Interleaving)
	}
}

func printPlan(inst *rlplanner.Instance, plan *rlplanner.Plan) {
	fmt.Printf("Plan for %s (score %.2f of gold %.2f):\n",
		inst.Name(), plan.Score, inst.GoldScore())
	for i, s := range plan.Steps {
		role := "secondary"
		if s.Primary {
			role = "primary"
		}
		fmt.Printf("%2d. %-36s (%s, %.2g)\n", i+1, s.ID, role, s.Credits)
	}
	fmt.Printf("total credits/hours: %.2f, ideal-topic coverage: %.0f%%\n",
		plan.TotalCredits, 100*plan.CoverageRatio)
	if plan.SatisfiesConstraints {
		fmt.Println("all hard constraints satisfied")
	} else {
		fmt.Println("hard-constraint violations:")
		for _, v := range plan.Violations {
			fmt.Printf("  - %s\n", v)
		}
	}
}

// interactiveLoop drives a step-by-step session: each round prints the
// top suggestions and reads one command from in:
//
//	a <n>   accept suggestion n (1-based)
//	r <n>   reject suggestion n
//	f       finish: auto-complete the rest
//	q       stop and evaluate the partial plan
func interactiveLoop(s *rlplanner.Session, in io.Reader, out io.Writer) (*rlplanner.Plan, error) {
	sc := bufio.NewScanner(in)
	for !s.Done() {
		sugs := s.Suggestions()
		if len(sugs) == 0 {
			break
		}
		fmt.Fprintf(out, "\nplan so far: %v\n", s.PlanIDs())
		for i, sug := range sugs {
			valid := " "
			if sug.Valid {
				valid = "✓"
			}
			fmt.Fprintf(out, "  %d. %s %-36s reward %.2f  Q %.2f\n", i+1, valid, sug.ID, sug.Reward, sug.Q)
		}
		fmt.Fprint(out, "a <n> accept / r <n> reject / f finish / q quit > ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "q":
			return s.Current(), nil
		case "f":
			return s.AutoComplete(), nil
		case "a", "r":
			if len(fields) < 2 {
				fmt.Fprintln(out, "need a suggestion number")
				continue
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > len(sugs) {
				fmt.Fprintln(out, "bad suggestion number")
				continue
			}
			id := sugs[n-1].ID
			if fields[0] == "a" {
				err = s.Accept(id)
			} else {
				err = s.Reject(id)
			}
			if err != nil {
				fmt.Fprintln(out, err)
			}
		default:
			fmt.Fprintln(out, "commands: a <n>, r <n>, f, q")
		}
	}
	return s.Current(), nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
