package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/rlplanner/rlplanner"
)

// trainConfig parameterizes the training-throughput harness (-train).
type trainConfig struct {
	Instance string
	Episodes int
	Seed     int64
	PerturbK int
	Runs     int
}

// trainWorkerCounts are the worker counts the cold-start scaling curve
// sweeps. 1 is the parallel protocol on one walker (the determinism
// reference); the rest show how throughput scales with cores.
var trainWorkerCounts = []int{1, 2, 4, 8}

// trainPoint is one cold-train measurement at a fixed worker count.
// Speedup is relative to the workers=1 point of the same record; on a
// single-core box it hovers near 1 by construction.
type trainPoint struct {
	Workers        int     `json:"workers"`
	Ns             int64   `json:"ns"`
	EpisodesPerSec float64 `json:"episodes_per_sec"`
	Speedup        float64 `json:"speedup"`
}

// trainRecord is the machine-readable training-perf record written as
// BENCH_train.json: the cold-start wall-clock scaling curve over worker
// counts, plus one warm-start derivation (a PerturbK-item catalog
// revision) against the workers=1 cold time. GOMAXPROCS is recorded
// because the cold curve is meaningless without it — walker parallelism
// cannot beat the core count.
type trainRecord struct {
	Name         string       `json:"name"`
	Instance     string       `json:"instance"`
	Engine       string       `json:"engine"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	Episodes     int          `json:"episodes"`
	Cold         []trainPoint `json:"cold"`
	PerturbK     int          `json:"perturb_k"`
	WarmDistance float64      `json:"warm_distance"`
	ColdEpisodes int          `json:"cold_episodes"`
	WarmEpisodes int          `json:"warm_episodes"`
	ColdNs       int64        `json:"cold_ns"`
	WarmNs       int64        `json:"warm_ns"`
	WarmSpeedup  float64      `json:"warm_speedup"`
}

// trainBench measures cold-train wall clock at each worker count
// (best-of-Runs, so scheduler noise does not masquerade as regression)
// and then one warm-start derivation onto a PerturbK-item catalog
// revision, comparing it against the workers=1 cold time. Every run
// goes through the public Train/Derive API — the same path rlplannerd
// exercises.
func trainBench(cfg trainConfig) (trainRecord, error) {
	rec := trainRecord{
		Name:       "train",
		Instance:   cfg.Instance,
		Engine:     "sarsa",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PerturbK:   cfg.PerturbK,
	}
	inst, err := rlplanner.InstanceByName(cfg.Instance)
	if err != nil {
		return rec, err
	}
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	ctx := context.Background()
	opts := rlplanner.Options{Episodes: cfg.Episodes, Seed: cfg.Seed}

	// Cold-start scaling curve. The workers=1 policy doubles as the
	// warm-start source below.
	var src *rlplanner.Policy
	for _, w := range trainWorkerCounts {
		o := opts
		o.TrainWorkers = w
		var best int64
		var pol *rlplanner.Policy
		for r := 0; r < cfg.Runs; r++ {
			t0 := time.Now()
			p, err := rlplanner.Train(ctx, inst, "sarsa", o)
			ns := time.Since(t0).Nanoseconds()
			if err != nil {
				return rec, fmt.Errorf("cold train (workers=%d): %w", w, err)
			}
			if best == 0 || ns < best {
				best, pol = ns, p
			}
		}
		rec.Episodes = pol.EpisodesTrained()
		pt := trainPoint{
			Workers:        w,
			Ns:             best,
			EpisodesPerSec: float64(rec.Episodes) / (float64(best) / 1e9),
		}
		if len(rec.Cold) > 0 {
			pt.Speedup = float64(rec.Cold[0].Ns) / float64(best)
		} else {
			pt.Speedup = 1
			src = pol
		}
		rec.Cold = append(rec.Cold, pt)
	}
	rec.ColdNs = rec.Cold[0].Ns

	// Warm-start phase: derive the workers=1 policy onto a PerturbK-item
	// revision of the same catalog and time the distance-scaled retrain.
	spec, err := perturbInstanceSpec(inst, cfg.PerturbK)
	if err != nil {
		return rec, err
	}
	target, err := rlplanner.NewInstance(spec)
	if err != nil {
		return rec, err
	}
	var warmBest int64
	for r := 0; r < cfg.Runs; r++ {
		t0 := time.Now()
		_, stats, err := rlplanner.Derive(ctx, src, target, opts)
		ns := time.Since(t0).Nanoseconds()
		if err != nil {
			return rec, fmt.Errorf("warm derive: %w", err)
		}
		if warmBest == 0 || ns < warmBest {
			warmBest = ns
		}
		rec.WarmDistance = stats.Distance
		rec.ColdEpisodes = stats.ColdEpisodes
		rec.WarmEpisodes = stats.WarmEpisodes
	}
	rec.WarmNs = warmBest
	rec.WarmSpeedup = float64(rec.ColdNs) / float64(rec.WarmNs)
	return rec, nil
}

// perturbInstanceSpec renames k leaf items of inst's spec (skipping the
// default start and any item another item's prerequisite references),
// simulating a catalog revision of k items with unchanged topics — the
// incremental-retraining scenario warm-start derivation targets.
func perturbInstanceSpec(inst *rlplanner.Instance, k int) (rlplanner.InstanceSpec, error) {
	spec := inst.Spec()
	spec.Name = spec.Name + " rev"
	renamed := 0
	for i := range spec.Items {
		if renamed == k {
			break
		}
		id := spec.Items[i].ID
		if id == spec.DefaultStart {
			continue
		}
		referenced := false
		for j := range spec.Items {
			if j != i && strings.Contains(spec.Items[j].Prereq, id) {
				referenced = true
				break
			}
		}
		if referenced {
			continue
		}
		spec.Items[i].ID = id + " (rev)"
		renamed++
	}
	if renamed != k {
		return spec, fmt.Errorf("perturb: could only rename %d of %d items in %s",
			renamed, k, inst.Name())
	}
	return spec, nil
}

// checkTrainBaseline compares a fresh train record against a committed
// baseline file and fails on a >2× cold-train wall-clock regression at
// workers=1 — the CI guardrail for training throughput, mirroring the
// serve-path p99 gate.
func checkTrainBaseline(path string, rec trainRecord) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("train baseline: %w", err)
	}
	var base trainRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("train baseline %s: %w", path, err)
	}
	if base.ColdNs <= 0 {
		return fmt.Errorf("train baseline %s: no cold_ns recorded", path)
	}
	if rec.ColdNs > 2*base.ColdNs {
		return fmt.Errorf("cold-train regression: %s now vs %s baseline (>2x)",
			time.Duration(rec.ColdNs), time.Duration(base.ColdNs))
	}
	return nil
}

// writeTrainRecord writes rec to dir/BENCH_train.json.
func writeTrainRecord(dir string, rec trainRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_train.json"), append(data, '\n'), 0o644)
}
