package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/rlplanner/rlplanner/internal/httpapi"
)

// usersConfig parameterizes the fleet-personalization harness (-users):
// a zipf-mixed workload of plan and feedback requests from a large user
// population against one shared policy, the deployment shape the
// per-user overlay layer exists for.
type usersConfig struct {
	Instance string
	Engine   string
	Episodes int
	Seed     int64
	Users    int           // population size (zipf-distributed activity)
	Conc     int           // concurrent clients
	Duration time.Duration // timed phase length
	Feedback float64       // fraction of requests that post feedback
	Budget   int           // overlay byte budget (0 = server default)
	Cells    int           // per-user overlay cell cap (0 = default)
}

// usersRecord is the machine-readable fleet-personalization record
// written as BENCH_users.json. Latency percentiles cover the plan
// requests only (feedback posts are the write path; the serving SLO is
// about reads). The overlay_* figures come from the server's own
// /api/metrics after the run, so the record captures what the fleet
// actually held resident — the bounded-memory claim in one number,
// bytes_per_user.
type usersRecord struct {
	Name           string  `json:"name"`
	Instance       string  `json:"instance"`
	Engine         string  `json:"engine"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Users          int     `json:"users"`
	Conc           int     `json:"conc"`
	FeedbackFrac   float64 `json:"feedback_frac"`
	BudgetBytes    int     `json:"budget_bytes"`
	DurationNs     int64   `json:"duration_ns"`
	PlanRequests   int     `json:"plan_requests"`
	FeedbackPosts  int     `json:"feedback_posts"`
	ReqPerSec      float64 `json:"req_per_sec"`
	P50Ns          int64   `json:"p50_ns"`
	P99Ns          int64   `json:"p99_ns"`
	OverlayUsers   int64   `json:"overlay_users"`
	OverlayBytes   int64   `json:"overlay_bytes"`
	BytesPerUser   float64 `json:"bytes_per_user"`
	OverlayEvicted int64   `json:"overlay_evictions"`
	Signals        int64   `json:"feedback_signals"`
}

// usersBench mounts the live HTTP stack with a bounded overlay budget,
// trains the shared policy through one warm-up request, then drives a
// zipf-mixed workload: each request draws a user from a zipf(1.1)
// popularity curve over the population — a few very active users, a
// long tail of one-shot ones — and is a feedback post with probability
// cfg.Feedback, a personalized plan read otherwise.
func usersBench(cfg usersConfig) (usersRecord, error) {
	rec := usersRecord{
		Name:         "users",
		Instance:     cfg.Instance,
		Engine:       cfg.Engine,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Users:        cfg.Users,
		Conc:         cfg.Conc,
		FeedbackFrac: cfg.Feedback,
		BudgetBytes:  cfg.Budget,
	}
	api := httpapi.New(httpapi.WithOverlayBudget(cfg.Budget), httpapi.WithOverlayCells(cfg.Cells))
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	client := srv.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr.MaxIdleConnsPerHost = cfg.Conc + 1
	}
	post := func(path string, body []byte, out interface{}) (int, error) {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out == nil {
			out = &json.RawMessage{}
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}

	base := map[string]interface{}{
		"instance": cfg.Instance,
		"engine":   cfg.Engine,
		"episodes": cfg.Episodes,
		"seed":     cfg.Seed,
	}
	warmBody, err := json.Marshal(base)
	if err != nil {
		return rec, err
	}
	// Warm-up trains the shared policy and captures the base plan the
	// feedback posts will rate.
	var warm struct {
		Steps []struct {
			ID string `json:"id"`
		} `json:"steps"`
	}
	if code, err := post("/api/plan", warmBody, &warm); err != nil {
		return rec, err
	} else if code != http.StatusOK {
		return rec, fmt.Errorf("warm-up plan returned HTTP %d", code)
	}
	items := make([]string, len(warm.Steps))
	for i, s := range warm.Steps {
		items[i] = s.ID
	}
	if len(items) < 2 {
		return rec, fmt.Errorf("warm-up plan too short to rate (%d items)", len(items))
	}

	// Pre-marshal one plan and one feedback body per worker slot; only
	// the user id varies per request, patched via a map each time (the
	// harness client cost is not what this benchmark measures).
	type workerResult struct {
		lat          []time.Duration
		plans, posts int
		err          error
	}
	results := make([]workerResult, cfg.Conc)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			// zipf s=1.1: the classic popularity skew — the head users
			// build deep overlays, the tail churns through the LRU.
			zipf := rand.NewZipf(rng, 1.1, 1, uint64(cfg.Users-1))
			req := make(map[string]interface{}, len(base)+4)
			for k, v := range base {
				req[k] = v
			}
			for time.Now().Before(deadline) {
				req["user"] = fmt.Sprintf("u%d", zipf.Uint64())
				if rng.Float64() < cfg.Feedback {
					req["items"] = items
					req["useful"] = rng.Intn(2) == 0
					body, err := json.Marshal(req)
					if err != nil {
						res.err = err
						return
					}
					delete(req, "items")
					delete(req, "useful")
					if code, err := post("/api/feedback", body, nil); err != nil {
						res.err = err
						return
					} else if code != http.StatusOK {
						res.err = fmt.Errorf("feedback returned HTTP %d", code)
						return
					}
					res.posts++
					continue
				}
				body, err := json.Marshal(req)
				if err != nil {
					res.err = err
					return
				}
				r0 := time.Now()
				code, err := post("/api/plan", body, nil)
				if err != nil {
					res.err = err
					return
				}
				if code != http.StatusOK {
					res.err = fmt.Errorf("plan returned HTTP %d", code)
					return
				}
				res.lat = append(res.lat, time.Since(r0))
				res.plans++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, res := range results {
		if res.err != nil {
			return rec, res.err
		}
		all = append(all, res.lat...)
		rec.PlanRequests += res.plans
		rec.FeedbackPosts += res.posts
	}
	if len(all) == 0 {
		return rec, fmt.Errorf("no plan requests completed in %s", cfg.Duration)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rec.DurationNs = elapsed.Nanoseconds()
	rec.ReqPerSec = float64(rec.PlanRequests+rec.FeedbackPosts) / elapsed.Seconds()
	rec.P50Ns = all[len(all)/2].Nanoseconds()
	rec.P99Ns = all[len(all)*99/100].Nanoseconds()

	// The server's own metrics close the loop: what the fleet held.
	resp, err := client.Get(srv.URL + "/api/metrics")
	if err != nil {
		return rec, err
	}
	defer resp.Body.Close()
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return rec, err
	}
	rec.OverlayUsers = m["overlay_users"]
	rec.OverlayBytes = m["overlay_bytes"]
	rec.OverlayEvicted = m["overlay_evictions"]
	rec.Signals = m["feedback_signals"]
	if rec.OverlayUsers > 0 {
		rec.BytesPerUser = float64(rec.OverlayBytes) / float64(rec.OverlayUsers)
	}
	return rec, nil
}

// checkUsersBaseline gates a fresh fleet record against the committed
// one: a >2x p99 regression on the personalized plan path fails, and so
// does an overlay fleet that outgrew its configured byte budget — the
// bounded-memory guarantee is part of the contract, not a soft target.
func checkUsersBaseline(path string, rec usersRecord) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("users baseline: %w", err)
	}
	var base usersRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("users baseline %s: %w", path, err)
	}
	if base.P99Ns <= 0 {
		return fmt.Errorf("users baseline %s: no p99 recorded", path)
	}
	if rec.P99Ns > 2*base.P99Ns {
		return fmt.Errorf("users p99 regression: %s now vs %s baseline (>2x)",
			time.Duration(rec.P99Ns), time.Duration(base.P99Ns))
	}
	if rec.BudgetBytes > 0 && rec.OverlayBytes > int64(rec.BudgetBytes) {
		return fmt.Errorf("overlay fleet outgrew its budget: %d bytes resident vs %d budget",
			rec.OverlayBytes, rec.BudgetBytes)
	}
	return nil
}

// writeUsersRecord writes rec to dir/BENCH_users.json.
func writeUsersRecord(dir string, rec usersRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_users.json"), append(data, '\n'), 0o644)
}
