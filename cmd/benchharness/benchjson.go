package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
)

// benchRecord is the machine-readable perf record written as
// BENCH_<name>.json when -benchjson is set. One "op" is one full
// invocation of the named experiment (or, for the hotpath record, one
// candidate-reward evaluation), so successive PRs can track the perf
// trajectory without parsing text tables.
type benchRecord struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Runs       int     `json:"runs"`
	Episodes   int     `json:"episodes"`
	Ops        int     `json:"ops"`
	NsOp       int64   `json:"ns_op"`
	SeqNsOp    int64   `json:"seq_ns_op"`
	Speedup    float64 `json:"speedup"`
	AllocsOp   uint64  `json:"allocs_op"`
	BytesOp    uint64  `json:"bytes_op"`
}

// writeBench writes rec to dir/BENCH_<name>.json.
func writeBench(dir string, rec benchRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+rec.Name+".json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measure times fn once and reports wall nanoseconds plus heap
// allocation deltas. The GC stats are process-wide, so records taken
// while other goroutines run attribute their allocations too — fine for
// the harness, which runs experiments one at a time.
func measure(fn func() error) (ns int64, allocs, bytes uint64, err error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err = fn()
	ns = time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&m1)
	return ns, m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc, err
}

// hotpathRecord benchmarks the per-step MDP loop directly — full greedy
// episodes on the given instance, one op per candidate-reward evaluation —
// so alloc regressions in Episode.Reward/AppendCandidates show up in the
// JSON trajectory without regenerating any figure. The course-shaped
// Univ-1 record exercises prerequisites and credit budgets; the NYC trip
// record exercises the distance matrix and theme gates.
func hotpathRecord(name string, inst *dataset.Instance) (benchRecord, error) {
	rec := benchRecord{Name: name, Workers: 1, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	p, err := core.New(inst, core.Options{})
	if err != nil {
		return rec, err
	}
	env, start := p.Env(), inst.StartIndex()

	const episodes = 2000
	ops := 0
	var cands []int
	ep, err := env.Start(start)
	if err != nil {
		return rec, err
	}
	ns, allocs, bytes, err := measure(func() error {
		for i := 0; i < episodes; i++ {
			if err := ep.Reset(start); err != nil {
				return err
			}
			for !ep.Done() {
				cands = ep.AppendCandidates(cands[:0])
				if len(cands) == 0 {
					break
				}
				best, bestR := cands[0], -1.0
				for _, c := range cands {
					if r := ep.Reward(c); r > bestR {
						best, bestR = c, r
					}
					ops++
				}
				ep.Step(best)
			}
		}
		return nil
	})
	if err != nil {
		return rec, err
	}
	if ops == 0 {
		return rec, fmt.Errorf("%s: no reward evaluations ran", name)
	}
	rec.Ops = ops
	rec.NsOp = ns / int64(ops)
	rec.SeqNsOp = rec.NsOp
	rec.Speedup = 1
	rec.AllocsOp = allocs / uint64(ops)
	rec.BytesOp = bytes / uint64(ops)
	return rec, nil
}
