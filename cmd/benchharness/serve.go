package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/rlplanner/rlplanner/internal/httpapi"
)

// serveConfig parameterizes the serving-latency harness (-serve).
type serveConfig struct {
	Instance string
	Engine   string
	Episodes int
	Seed     int64
	Conc     int
	Duration time.Duration
	Batch    int
	// Sweep enables the GOMAXPROCS scaling phase: the timed plan phase
	// repeats at GOMAXPROCS 1/2/4/8 (SweepDuration each) with mutex and
	// block profiling on, recording throughput scaling efficiency.
	Sweep         bool
	SweepDuration time.Duration
}

// serveRecord is the machine-readable serving-perf record written as
// BENCH_serve.json. One "op" is one completed POST /api/plan request
// against a warm policy cache — the steady-state serving shape the
// deployment section (§IV-F) cares about. Allocations are process-wide
// (server and harness client share the process), so allocs_op is an
// upper bound on the server-side cost; it is comparable across runs of
// the same harness, which is what the perf trajectory needs.
type serveRecord struct {
	Name           string  `json:"name"`
	Instance       string  `json:"instance"`
	Engine         string  `json:"engine"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Conc           int     `json:"conc"`
	DurationNs     int64   `json:"duration_ns"`
	Requests       int     `json:"requests"`
	ReqPerSec      float64 `json:"req_per_sec"`
	P50Ns          int64   `json:"p50_ns"`
	P99Ns          int64   `json:"p99_ns"`
	AllocsOp       uint64  `json:"allocs_op"`
	BytesOp        uint64  `json:"bytes_op"`
	BatchSize      int     `json:"batch_size,omitempty"`
	BatchReqPerSec float64 `json:"batch_req_per_sec,omitempty"`
	// Boot phase: time-to-first-plan for a daemon with a durable policy
	// repository. Cold is a fresh directory (the first plan trains and
	// writes through); warm is a second process on the same directory
	// (the first plan loads the artifact instead of training). The ratio
	// is the restart-without-retrain win.
	ColdBootNs int64 `json:"cold_boot_ns,omitempty"`
	WarmBootNs int64 `json:"warm_boot_ns,omitempty"`
	// Sweep phase: the same timed plan phase at GOMAXPROCS 1/2/4/8.
	// NumCPU is the host's core count — efficiency numbers past it
	// measure oversubscription, not scaling, and the 4-core gate skips
	// below it. Scaling4x is sweep[GOMAXPROCS=4] throughput over
	// sweep[GOMAXPROCS=1]. MutexTop/BlockTop are the hottest non-runtime
	// frames from the contention profiles captured across the sweep.
	NumCPU    int          `json:"num_cpu,omitempty"`
	Sweep     []sweepPoint `json:"sweep,omitempty"`
	Scaling4x float64      `json:"scaling_4x,omitempty"`
	MutexTop  []string     `json:"mutex_top,omitempty"`
	BlockTop  []string     `json:"block_top,omitempty"`
}

// sweepPoint is one GOMAXPROCS setting of the scaling sweep.
// Efficiency is req/s divided by (single-proc req/s × procs): 1.0 is
// perfect linear scaling, and a read path serializing on a global lock
// shows up as efficiency collapsing toward 1/procs.
type sweepPoint struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Conc       int     `json:"conc"`
	Requests   int     `json:"requests"`
	ReqPerSec  float64 `json:"req_per_sec"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	Efficiency float64 `json:"efficiency"`
}

// serveBench stands up the live HTTP serving stack (the same handler
// rlplannerd mounts), trains the policy once through a warm-up request,
// then drives concurrent /api/plan clients for the configured duration
// and reports latency percentiles, throughput and allocation rates. When
// the server exposes /api/plan/batch, a second phase measures batched
// planning throughput with the same warm policy.
func serveBench(cfg serveConfig) (serveRecord, error) {
	rec := serveRecord{
		Name:       "serve",
		Instance:   cfg.Instance,
		Engine:     cfg.Engine,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Conc:       cfg.Conc,
	}
	api := httpapi.New()
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	planBody, err := json.Marshal(map[string]interface{}{
		"instance": cfg.Instance,
		"engine":   cfg.Engine,
		"episodes": cfg.Episodes,
		"seed":     cfg.Seed,
	})
	if err != nil {
		return rec, err
	}
	client := srv.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		// Enough idle conns for the main phase and the widest sweep
		// setting (2×8 clients at GOMAXPROCS=8).
		tr.MaxIdleConnsPerHost = max(cfg.Conc, 16) + 1
	}

	post := func(path string, body []byte) (int, error) {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var sink json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}

	// Warm-up: the first request trains the policy; afterwards every hit
	// is the warm cached path the benchmark is about.
	if code, err := post("/api/plan", planBody); err != nil {
		return rec, err
	} else if code != http.StatusOK {
		return rec, fmt.Errorf("warm-up plan returned HTTP %d", code)
	}

	// Timed phase: cfg.Conc workers hammer /api/plan until the deadline,
	// each collecting its own latency samples (no shared state on the
	// request path).
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	all, elapsed, err := timedPlanPhase(post, planBody, cfg.Conc, cfg.Duration)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return rec, err
	}
	rec.DurationNs = elapsed.Nanoseconds()
	rec.Requests = len(all)
	rec.ReqPerSec = float64(len(all)) / elapsed.Seconds()
	rec.P50Ns = all[len(all)/2].Nanoseconds()
	rec.P99Ns = all[len(all)*99/100].Nanoseconds()
	rec.AllocsOp = (m1.Mallocs - m0.Mallocs) / uint64(len(all))
	rec.BytesOp = (m1.TotalAlloc - m0.TotalAlloc) / uint64(len(all))

	if cfg.Sweep {
		if err := serveSweepPhase(post, planBody, cfg, &rec); err != nil {
			return rec, err
		}
	}
	if cfg.Batch > 0 {
		if rps, ok, err := serveBatchPhase(post, cfg, planBody); err != nil {
			return rec, err
		} else if ok {
			rec.BatchSize = cfg.Batch
			rec.BatchReqPerSec = rps
		}
	}
	if cold, warm, err := serveBootPhase(cfg, planBody); err != nil {
		return rec, err
	} else {
		rec.ColdBootNs = cold.Nanoseconds()
		rec.WarmBootNs = warm.Nanoseconds()
	}
	return rec, nil
}

// timedPlanPhase drives conc workers against /api/plan until the
// deadline and returns every observed latency, sorted ascending. Each
// worker collects its own samples: the only cross-worker state is the
// WaitGroup, so the harness itself adds no contention to the path it
// measures.
func timedPlanPhase(post func(string, []byte) (int, error), planBody []byte,
	conc int, duration time.Duration) ([]time.Duration, time.Duration, error) {
	deadline := time.Now().Add(duration)
	lat := make([][]time.Duration, conc)
	errs := make([]error, conc)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				r0 := time.Now()
				code, err := post("/api/plan", planBody)
				if err != nil {
					errs[w] = err
					return
				}
				if code != http.StatusOK {
					errs[w] = fmt.Errorf("plan returned HTTP %d", code)
					return
				}
				lat[w] = append(lat[w], time.Since(r0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return nil, elapsed, err
		}
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return nil, elapsed, fmt.Errorf("no plan requests completed in %s", duration)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, elapsed, nil
}

// serveSweepPhase reruns the timed plan phase at GOMAXPROCS 1/2/4/8
// (2×procs clients each, so every proc always has a runnable worker)
// with mutex and block profiling enabled, and records throughput,
// latency, scaling efficiency and the hottest contention frames. The
// process-wide GOMAXPROCS and profile rates are restored on return.
func serveSweepPhase(post func(string, []byte) (int, error), planBody []byte,
	cfg serveConfig, rec *serveRecord) error {
	rec.NumCPU = runtime.NumCPU()
	orig := runtime.GOMAXPROCS(0)
	prevMutex := runtime.SetMutexProfileFraction(1)
	runtime.SetBlockProfileRate(10_000) // sample blocking events ≥10µs
	defer func() {
		runtime.GOMAXPROCS(orig)
		runtime.SetMutexProfileFraction(prevMutex)
		runtime.SetBlockProfileRate(0)
	}()

	var base float64
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		conc := 2 * procs
		all, elapsed, err := timedPlanPhase(post, planBody, conc, cfg.SweepDuration)
		if err != nil {
			return fmt.Errorf("sweep GOMAXPROCS=%d: %w", procs, err)
		}
		rps := float64(len(all)) / elapsed.Seconds()
		if procs == 1 {
			base = rps
		}
		pt := sweepPoint{
			GOMAXPROCS: procs,
			Conc:       conc,
			Requests:   len(all),
			ReqPerSec:  rps,
			P50Ns:      all[len(all)/2].Nanoseconds(),
			P99Ns:      all[len(all)*99/100].Nanoseconds(),
			Efficiency: rps / (base * float64(procs)),
		}
		if procs == 4 {
			rec.Scaling4x = rps / base
		}
		rec.Sweep = append(rec.Sweep, pt)
	}
	rec.MutexTop = profileTop("mutex", 5)
	rec.BlockTop = profileTop("block", 5)
	return nil
}

// profileTop summarizes a runtime profile ("mutex" or "block") as its
// top n user-level frames by sample count. It parses the debug=1 text
// form: each sample is a "cycles count @ addr..." header followed by
// "#\taddr\tfunc+off\tfile:line" frames; the first frame outside
// runtime/sync internals names the contention site.
func profileTop(name string, n int) []string {
	p := pprof.Lookup(name)
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return nil
	}
	counts := map[string]int64{}
	var pending int64 // count of the sample block being scanned, 0 = attributed
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "#") {
			pending = 0
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[2] == "@" {
				if c, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					pending = c
				}
			}
			continue
		}
		if pending == 0 {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		fn := fields[2]
		if i := strings.LastIndex(fn, "+"); i > 0 {
			fn = fn[:i]
		}
		if strings.HasPrefix(fn, "runtime.") || strings.HasPrefix(fn, "sync.") ||
			strings.HasPrefix(fn, "runtime/") || strings.HasPrefix(fn, "internal/") {
			continue
		}
		counts[fn] += pending
		pending = 0
	}
	type entry struct {
		fn string
		c  int64
	}
	var entries []entry
	for fn, c := range counts {
		entries = append(entries, entry{fn, c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].c != entries[j].c {
			return entries[i].c > entries[j].c
		}
		return entries[i].fn < entries[j].fn
	})
	if len(entries) > n {
		entries = entries[:n]
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = fmt.Sprintf("%s n=%d", e.fn, e.c)
	}
	return out
}

// checkScalingGate is the multi-core CI guardrail: with the sweep
// recorded on a ≥4-core host, 4-proc throughput must be at least min ×
// the 1-proc figure. On smaller hosts the 4-proc point measures
// oversubscription rather than parallelism, so the gate reports a skip
// instead of failing — the same hardware-conditional treatment the
// training harness gives its walker-scaling curve.
func checkScalingGate(rec serveRecord, min float64) error {
	if min <= 0 {
		return nil
	}
	if len(rec.Sweep) == 0 {
		return fmt.Errorf("scaling gate: record has no sweep (run with -serve-sweep)")
	}
	if rec.NumCPU < 4 {
		fmt.Printf("serve: scaling gate skipped: host has %d CPU core(s), gate needs 4\n", rec.NumCPU)
		return nil
	}
	if rec.Scaling4x < min {
		return fmt.Errorf("serve scaling regression: 4-proc throughput is %.2fx 1-proc, gate requires %.2fx",
			rec.Scaling4x, min)
	}
	return nil
}

// serveBootPhase measures time-to-first-plan twice over one durable
// policy directory: a cold boot (empty directory, the plan trains and
// writes the artifact through) and a warm boot (a new server over the
// trained directory, the plan restores the artifact from disk). Both
// timings span server construction — including the warm boot's
// verify-everything repository scan — through the first 200 response.
func serveBootPhase(cfg serveConfig, planBody []byte) (cold, warm time.Duration, err error) {
	dir, err := os.MkdirTemp("", "benchharness-policy-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	firstPlan := func() (time.Duration, error) {
		t0 := time.Now()
		srv := httptest.NewServer(httpapi.New(httpapi.WithPolicyDir(dir)).Handler())
		defer srv.Close()
		resp, err := srv.Client().Post(srv.URL+"/api/plan", "application/json", bytes.NewReader(planBody))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var sink json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("boot-phase plan returned HTTP %d", resp.StatusCode)
		}
		return time.Since(t0), nil
	}
	if cold, err = firstPlan(); err != nil {
		return 0, 0, fmt.Errorf("cold boot: %w", err)
	}
	if warm, err = firstPlan(); err != nil {
		return 0, 0, fmt.Errorf("warm boot: %w", err)
	}
	return cold, warm, nil
}

// serveBatchPhase measures /api/plan/batch throughput in plans per
// second. ok is false when the server predates the batch endpoint (the
// pre-fast-path baseline), so the same harness binary can measure both
// sides of the change.
func serveBatchPhase(post func(string, []byte) (int, error), cfg serveConfig, planBody []byte) (float64, bool, error) {
	var req map[string]interface{}
	if err := json.Unmarshal(planBody, &req); err != nil {
		return 0, false, err
	}
	req["starts"] = make([]string, cfg.Batch) // "" = trained start per item
	body, err := json.Marshal(req)
	if err != nil {
		return 0, false, err
	}
	code, err := post("/api/plan/batch", body)
	if err != nil {
		return 0, false, err
	}
	if code == http.StatusNotFound {
		return 0, false, nil
	}
	if code != http.StatusOK {
		return 0, false, fmt.Errorf("batch plan returned HTTP %d", code)
	}
	deadline := time.Now().Add(cfg.Duration)
	plans := 0
	t0 := time.Now()
	for time.Now().Before(deadline) {
		if code, err := post("/api/plan/batch", body); err != nil {
			return 0, false, err
		} else if code != http.StatusOK {
			return 0, false, fmt.Errorf("batch plan returned HTTP %d", code)
		}
		plans += cfg.Batch
	}
	return float64(plans) / time.Since(t0).Seconds(), true, nil
}

// checkServeBaseline compares a fresh serve record against a committed
// baseline file and fails on a >2× p99 latency regression — the CI
// guardrail for the serving fast path.
func checkServeBaseline(path string, rec serveRecord) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve baseline: %w", err)
	}
	var base serveRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("serve baseline %s: %w", path, err)
	}
	if base.P99Ns <= 0 {
		return fmt.Errorf("serve baseline %s: no p99 recorded", path)
	}
	if rec.P99Ns > 2*base.P99Ns {
		return fmt.Errorf("serve p99 regression: %s now vs %s baseline (>2x)",
			time.Duration(rec.P99Ns), time.Duration(base.P99Ns))
	}
	return nil
}

// writeServeRecord writes rec to dir/BENCH_serve.json.
func writeServeRecord(dir string, rec serveRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_serve.json"), append(data, '\n'), 0o644)
}
