package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/rlplanner/rlplanner/internal/httpapi"
)

// serveConfig parameterizes the serving-latency harness (-serve).
type serveConfig struct {
	Instance string
	Engine   string
	Episodes int
	Seed     int64
	Conc     int
	Duration time.Duration
	Batch    int
}

// serveRecord is the machine-readable serving-perf record written as
// BENCH_serve.json. One "op" is one completed POST /api/plan request
// against a warm policy cache — the steady-state serving shape the
// deployment section (§IV-F) cares about. Allocations are process-wide
// (server and harness client share the process), so allocs_op is an
// upper bound on the server-side cost; it is comparable across runs of
// the same harness, which is what the perf trajectory needs.
type serveRecord struct {
	Name           string  `json:"name"`
	Instance       string  `json:"instance"`
	Engine         string  `json:"engine"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Conc           int     `json:"conc"`
	DurationNs     int64   `json:"duration_ns"`
	Requests       int     `json:"requests"`
	ReqPerSec      float64 `json:"req_per_sec"`
	P50Ns          int64   `json:"p50_ns"`
	P99Ns          int64   `json:"p99_ns"`
	AllocsOp       uint64  `json:"allocs_op"`
	BytesOp        uint64  `json:"bytes_op"`
	BatchSize      int     `json:"batch_size,omitempty"`
	BatchReqPerSec float64 `json:"batch_req_per_sec,omitempty"`
	// Boot phase: time-to-first-plan for a daemon with a durable policy
	// repository. Cold is a fresh directory (the first plan trains and
	// writes through); warm is a second process on the same directory
	// (the first plan loads the artifact instead of training). The ratio
	// is the restart-without-retrain win.
	ColdBootNs int64 `json:"cold_boot_ns,omitempty"`
	WarmBootNs int64 `json:"warm_boot_ns,omitempty"`
}

// serveBench stands up the live HTTP serving stack (the same handler
// rlplannerd mounts), trains the policy once through a warm-up request,
// then drives concurrent /api/plan clients for the configured duration
// and reports latency percentiles, throughput and allocation rates. When
// the server exposes /api/plan/batch, a second phase measures batched
// planning throughput with the same warm policy.
func serveBench(cfg serveConfig) (serveRecord, error) {
	rec := serveRecord{
		Name:       "serve",
		Instance:   cfg.Instance,
		Engine:     cfg.Engine,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Conc:       cfg.Conc,
	}
	api := httpapi.New()
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	planBody, err := json.Marshal(map[string]interface{}{
		"instance": cfg.Instance,
		"engine":   cfg.Engine,
		"episodes": cfg.Episodes,
		"seed":     cfg.Seed,
	})
	if err != nil {
		return rec, err
	}
	client := srv.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr.MaxIdleConnsPerHost = cfg.Conc + 1
	}

	post := func(path string, body []byte) (int, error) {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var sink json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}

	// Warm-up: the first request trains the policy; afterwards every hit
	// is the warm cached path the benchmark is about.
	if code, err := post("/api/plan", planBody); err != nil {
		return rec, err
	} else if code != http.StatusOK {
		return rec, fmt.Errorf("warm-up plan returned HTTP %d", code)
	}

	// Timed phase: cfg.Conc workers hammer /api/plan until the deadline,
	// each collecting its own latency samples (no shared state on the
	// request path).
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	deadline := time.Now().Add(cfg.Duration)
	lat := make([][]time.Duration, cfg.Conc)
	errs := make([]error, cfg.Conc)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				r0 := time.Now()
				code, err := post("/api/plan", planBody)
				if err != nil {
					errs[w] = err
					return
				}
				if code != http.StatusOK {
					errs[w] = fmt.Errorf("plan returned HTTP %d", code)
					return
				}
				lat[w] = append(lat[w], time.Since(r0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	for _, err := range errs {
		if err != nil {
			return rec, err
		}
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return rec, fmt.Errorf("no plan requests completed in %s", cfg.Duration)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rec.DurationNs = elapsed.Nanoseconds()
	rec.Requests = len(all)
	rec.ReqPerSec = float64(len(all)) / elapsed.Seconds()
	rec.P50Ns = all[len(all)/2].Nanoseconds()
	rec.P99Ns = all[len(all)*99/100].Nanoseconds()
	rec.AllocsOp = (m1.Mallocs - m0.Mallocs) / uint64(len(all))
	rec.BytesOp = (m1.TotalAlloc - m0.TotalAlloc) / uint64(len(all))

	if cfg.Batch > 0 {
		if rps, ok, err := serveBatchPhase(post, cfg, planBody); err != nil {
			return rec, err
		} else if ok {
			rec.BatchSize = cfg.Batch
			rec.BatchReqPerSec = rps
		}
	}
	if cold, warm, err := serveBootPhase(cfg, planBody); err != nil {
		return rec, err
	} else {
		rec.ColdBootNs = cold.Nanoseconds()
		rec.WarmBootNs = warm.Nanoseconds()
	}
	return rec, nil
}

// serveBootPhase measures time-to-first-plan twice over one durable
// policy directory: a cold boot (empty directory, the plan trains and
// writes the artifact through) and a warm boot (a new server over the
// trained directory, the plan restores the artifact from disk). Both
// timings span server construction — including the warm boot's
// verify-everything repository scan — through the first 200 response.
func serveBootPhase(cfg serveConfig, planBody []byte) (cold, warm time.Duration, err error) {
	dir, err := os.MkdirTemp("", "benchharness-policy-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	firstPlan := func() (time.Duration, error) {
		t0 := time.Now()
		srv := httptest.NewServer(httpapi.New(httpapi.WithPolicyDir(dir)).Handler())
		defer srv.Close()
		resp, err := srv.Client().Post(srv.URL+"/api/plan", "application/json", bytes.NewReader(planBody))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var sink json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("boot-phase plan returned HTTP %d", resp.StatusCode)
		}
		return time.Since(t0), nil
	}
	if cold, err = firstPlan(); err != nil {
		return 0, 0, fmt.Errorf("cold boot: %w", err)
	}
	if warm, err = firstPlan(); err != nil {
		return 0, 0, fmt.Errorf("warm boot: %w", err)
	}
	return cold, warm, nil
}

// serveBatchPhase measures /api/plan/batch throughput in plans per
// second. ok is false when the server predates the batch endpoint (the
// pre-fast-path baseline), so the same harness binary can measure both
// sides of the change.
func serveBatchPhase(post func(string, []byte) (int, error), cfg serveConfig, planBody []byte) (float64, bool, error) {
	var req map[string]interface{}
	if err := json.Unmarshal(planBody, &req); err != nil {
		return 0, false, err
	}
	req["starts"] = make([]string, cfg.Batch) // "" = trained start per item
	body, err := json.Marshal(req)
	if err != nil {
		return 0, false, err
	}
	code, err := post("/api/plan/batch", body)
	if err != nil {
		return 0, false, err
	}
	if code == http.StatusNotFound {
		return 0, false, nil
	}
	if code != http.StatusOK {
		return 0, false, fmt.Errorf("batch plan returned HTTP %d", code)
	}
	deadline := time.Now().Add(cfg.Duration)
	plans := 0
	t0 := time.Now()
	for time.Now().Before(deadline) {
		if code, err := post("/api/plan/batch", body); err != nil {
			return 0, false, err
		} else if code != http.StatusOK {
			return 0, false, fmt.Errorf("batch plan returned HTTP %d", code)
		}
		plans += cfg.Batch
	}
	return float64(plans) / time.Since(t0).Seconds(), true, nil
}

// checkServeBaseline compares a fresh serve record against a committed
// baseline file and fails on a >2× p99 latency regression — the CI
// guardrail for the serving fast path.
func checkServeBaseline(path string, rec serveRecord) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve baseline: %w", err)
	}
	var base serveRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("serve baseline %s: %w", path, err)
	}
	if base.P99Ns <= 0 {
		return fmt.Errorf("serve baseline %s: no p99 recorded", path)
	}
	if rec.P99Ns > 2*base.P99Ns {
		return fmt.Errorf("serve p99 regression: %s now vs %s baseline (>2x)",
			time.Duration(rec.P99Ns), time.Duration(base.P99Ns))
	}
	return nil
}

// writeServeRecord writes rec to dir/BENCH_serve.json.
func writeServeRecord(dir string, rec serveRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_serve.json"), append(data, '\n'), 0o644)
}
