// Command benchharness regenerates every table and figure of the paper's
// evaluation section and prints them as text tables.
//
// Usage:
//
//	benchharness [-exp all|fig1a,fig1b,tab4,tab5,tab7,tab8,tab9..tab16,fig2]
//	             [-runs 10] [-episodes 0] [-seed 1] [-quick]
//	             [-workers 0] [-benchjson dir] [-list-engines]
//	             [-serve] [-serve-instance name] [-serve-conc 0]
//	             [-serve-duration 3s] [-serve-batch 64] [-serve-baseline file]
//	             [-serve-sweep] [-serve-sweep-duration 2s] [-serve-scaling-min 2.5]
//	             [-train] [-train-instance name] [-train-perturb 5]
//	             [-train-runs 3] [-train-baseline file]
//	             [-scale] [-scale-sizes 4096,16384,50000,100000]
//	             [-scale-baseline file]
//	             [-users 0] [-users-duration 5s] [-users-feedback 0.3]
//	             [-users-budget 0] [-users-cells 0] [-users-baseline file]
//
// -list-engines prints the registered planning engines the experiments
// route through and exits.
//
// -serve switches the harness into serving-latency mode: it mounts the
// HTTP API in-process, trains the policy through one warm-up request,
// then drives concurrent /api/plan (and /api/plan/batch) clients and
// reports p50/p99 latency, throughput and allocs per request. With
// -benchjson it writes BENCH_serve.json; with -serve-baseline it fails
// on a >2x p99 regression against a committed record. -serve-sweep adds
// a multi-core scaling phase: the plan phase reruns at GOMAXPROCS
// 1/2/4/8 with mutex/block profiling on, recording req/s, latency,
// scaling efficiency and the hottest contention frames; on a ≥4-core
// host the run fails when 4-proc throughput is below -serve-scaling-min
// × the 1-proc figure (the gate reports a skip on smaller hosts).
//
// -train switches the harness into training-throughput mode: it
// cold-trains the SARSA engine at 1/2/4/8 walkers (best-of -train-runs
// wall clock, episodes/s and speedup vs one walker), then warm-starts a
// derivation onto a -train-perturb-item catalog revision and compares
// it against the cold time. With -benchjson it writes BENCH_train.json;
// with -train-baseline it fails on a >2x cold-train wall-clock
// regression against a committed record.
//
// -scale switches the harness into catalog-scale mode: for each size in
// -scale-sizes it generates a synthetic geo instance, builds the tiered
// environment, trains SARSA with a size-scaled episode budget, measures
// the per-candidate data-plane step cost, then serves the trained
// artifact end-to-end through an in-process HTTP stack (spec upload →
// artifact import → /api/plan). It records items vs ns/step vs resident
// bytes (Q + distance store + topic bitsets, next to the dense-layout
// equivalent) vs train time. With -benchjson it writes BENCH_scale.json;
// with -scale-baseline it fails when resident bytes at any matching size
// grew past 1.5x the committed record.
//
// -users N switches the harness into fleet-personalization mode: it
// mounts the HTTP stack with a bounded per-user overlay budget and
// drives a zipf-mixed workload from a population of N users — each
// request is a feedback post (probability -users-feedback) or a
// personalized plan read — then reports plan-path p50/p99, throughput
// and the overlay fleet's resident bytes per user from the server's own
// metrics. With -benchjson it writes BENCH_users.json; with
// -users-baseline it fails on a >2x p99 regression or an overlay fleet
// that outgrew its byte budget.
//
// -quick trades fidelity for speed (3 runs, 150 episodes); the default
// reproduces the paper's 10-run averages at the Table III episode counts.
// -workers bounds how many independent runs execute concurrently
// (0 = GOMAXPROCS, 1 = sequential; results are identical either way).
// -benchjson writes one machine-readable BENCH_<id>.json per experiment
// (ns/op, allocs/op, speedup vs a sequential reference pass) plus a
// BENCH_hotpath.json for the per-step MDP loop, so successive PRs can
// track the perf trajectory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/rlplanner/rlplanner"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/experiments"
	"github.com/rlplanner/rlplanner/internal/plot"
	"github.com/rlplanner/rlplanner/internal/stats"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		runs      = flag.Int("runs", 10, "runs to average (the paper uses 10)")
		episodes  = flag.Int("episodes", 0, "override N for every learner (0 = Table III defaults)")
		seed      = flag.Int64("seed", 1, "base random seed")
		quick     = flag.Bool("quick", false, "fast mode: 3 runs, 150 episodes")
		charts    = flag.Bool("charts", false, "render Figures 1 and 2 as text charts too")
		workers   = flag.Int("workers", 0, "concurrent runs per experiment (0 = GOMAXPROCS, 1 = sequential)")
		benchjson = flag.String("benchjson", "", "directory for BENCH_<id>.json perf records (empty = off)")
		listEng   = flag.Bool("list-engines", false, "list registered planning engines and exit")

		serve         = flag.Bool("serve", false, "serving-latency mode: benchmark the live HTTP plan path and exit")
		serveInstance = flag.String("serve-instance", "Univ-1 M.S. DS-CT", "instance for -serve")
		serveEngine   = flag.String("serve-engine", "sarsa", "engine for -serve")
		serveConc     = flag.Int("serve-conc", 0, "concurrent plan clients for -serve (0 = GOMAXPROCS)")
		serveDuration = flag.Duration("serve-duration", 3*time.Second, "timed phase length for -serve")
		serveBatch    = flag.Int("serve-batch", 64, "plans per /api/plan/batch request for -serve (0 = skip the batch phase)")
		serveBaseline = flag.String("serve-baseline", "", "committed BENCH_serve.json to gate against (>2x p99 regression fails)")

		serveSweep         = flag.Bool("serve-sweep", false, "with -serve: rerun the plan phase at GOMAXPROCS 1/2/4/8 and record scaling + contention profiles")
		serveSweepDuration = flag.Duration("serve-sweep-duration", 2*time.Second, "timed phase length per GOMAXPROCS setting of -serve-sweep")
		serveScalingMin    = flag.Float64("serve-scaling-min", 2.5, "minimum 4-proc/1-proc throughput ratio for the sweep gate (0 = no gate; skipped on <4-core hosts)")

		train         = flag.Bool("train", false, "training-throughput mode: benchmark cold-train scaling and warm-start derivation, then exit")
		trainInstance = flag.String("train-instance", "Univ-1 M.S. DS-CT", "instance for -train")
		trainPerturb  = flag.Int("train-perturb", 5, "catalog items renamed for the warm-start phase of -train")
		trainRuns     = flag.Int("train-runs", 3, "timed repetitions per -train configuration (best-of)")
		trainBaseline = flag.String("train-baseline", "", "committed BENCH_train.json to gate against (>2x cold-train regression fails)")

		scale         = flag.Bool("scale", false, "catalog-scale mode: generate, train and serve synthetic instances at -scale-sizes, record memory and latency, then exit")
		scaleSizes    = flag.String("scale-sizes", "4096,16384,50000,100000", "comma-separated catalog sizes for -scale")
		scaleBaseline = flag.String("scale-baseline", "", "committed BENCH_scale.json to gate against (>1.5x resident-bytes growth at any matching size fails)")

		users         = flag.Int("users", 0, "fleet-personalization mode: zipf user population size (0 = off)")
		usersDuration = flag.Duration("users-duration", 5*time.Second, "timed phase length for -users")
		usersConc     = flag.Int("users-conc", 0, "concurrent clients for -users (0 = GOMAXPROCS)")
		usersFeedback = flag.Float64("users-feedback", 0.3, "fraction of -users requests that post feedback")
		usersBudget   = flag.Int("users-budget", 0, "overlay byte budget for -users (0 = server default, 64 MiB)")
		usersCells    = flag.Int("users-cells", 0, "per-user overlay cell cap for -users (0 = default)")
		usersBaseline = flag.String("users-baseline", "", "committed BENCH_users.json to gate against (>2x p99 or budget overrun fails)")
	)
	flag.Parse()

	if *listEng {
		for _, name := range rlplanner.Engines() {
			fmt.Println(name)
		}
		return
	}

	if *serve {
		conc := *serveConc
		if conc <= 0 {
			conc = runtime.GOMAXPROCS(0)
		}
		rec, err := serveBench(serveConfig{
			Instance:      *serveInstance,
			Engine:        *serveEngine,
			Episodes:      *episodes,
			Seed:          *seed,
			Conc:          conc,
			Duration:      *serveDuration,
			Batch:         *serveBatch,
			Sweep:         *serveSweep,
			SweepDuration: *serveSweepDuration,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serve: %d reqs in %s (%d clients): %.0f req/s, p50 %s, p99 %s, %d allocs/req\n",
			rec.Requests, time.Duration(rec.DurationNs), rec.Conc, rec.ReqPerSec,
			time.Duration(rec.P50Ns), time.Duration(rec.P99Ns), rec.AllocsOp)
		if rec.BatchSize > 0 {
			fmt.Printf("serve: batch(%d): %.0f plans/s\n", rec.BatchSize, rec.BatchReqPerSec)
		}
		for _, pt := range rec.Sweep {
			fmt.Printf("serve: sweep GOMAXPROCS=%d (%d clients): %.0f req/s, p50 %s, p99 %s, efficiency %.2f\n",
				pt.GOMAXPROCS, pt.Conc, pt.ReqPerSec,
				time.Duration(pt.P50Ns), time.Duration(pt.P99Ns), pt.Efficiency)
		}
		if len(rec.Sweep) > 0 {
			fmt.Printf("serve: sweep 4-proc scaling %.2fx on a %d-core host\n", rec.Scaling4x, rec.NumCPU)
			for _, top := range rec.MutexTop {
				fmt.Printf("serve: mutex hot: %s\n", top)
			}
			for _, top := range rec.BlockTop {
				fmt.Printf("serve: block hot: %s\n", top)
			}
		}
		if rec.WarmBootNs > 0 {
			fmt.Printf("serve: time-to-first-plan: cold boot %s (train+persist), repo-warm boot %s (%.1fx)\n",
				time.Duration(rec.ColdBootNs), time.Duration(rec.WarmBootNs),
				float64(rec.ColdBootNs)/float64(rec.WarmBootNs))
		}
		if *benchjson != "" {
			if err := writeServeRecord(*benchjson, rec); err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(1)
			}
		}
		if *serveBaseline != "" {
			if err := checkServeBaseline(*serveBaseline, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *serveSweep {
			if err := checkScalingGate(rec, *serveScalingMin); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	if *scale {
		var sizes []int
		for _, s := range strings.Split(*scaleSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 16 {
				fmt.Fprintf(os.Stderr, "scale: bad size %q in -scale-sizes\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
		rec, err := scaleBench(scaleConfig{Sizes: sizes, Episodes: *episodes, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale: %v\n", err)
			os.Exit(1)
		}
		if *benchjson != "" {
			if err := writeScaleRecord(*benchjson, rec); err != nil {
				fmt.Fprintf(os.Stderr, "scale: %v\n", err)
				os.Exit(1)
			}
		}
		if *scaleBaseline != "" {
			if err := checkScaleBaseline(*scaleBaseline, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	if *users > 0 {
		conc := *usersConc
		if conc <= 0 {
			conc = runtime.GOMAXPROCS(0)
		}
		rec, err := usersBench(usersConfig{
			Instance: *serveInstance,
			Engine:   *serveEngine,
			Episodes: *episodes,
			Seed:     *seed,
			Users:    *users,
			Conc:     conc,
			Duration: *usersDuration,
			Feedback: *usersFeedback,
			Budget:   *usersBudget,
			Cells:    *usersCells,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "users: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("users: %d plans + %d feedback posts in %s (%d clients, %d-user zipf): %.0f req/s, p50 %s, p99 %s\n",
			rec.PlanRequests, rec.FeedbackPosts, time.Duration(rec.DurationNs), rec.Conc, rec.Users,
			rec.ReqPerSec, time.Duration(rec.P50Ns), time.Duration(rec.P99Ns))
		fmt.Printf("users: overlay fleet: %d users resident, %d bytes (%.0f bytes/user), %d evictions, %d signals\n",
			rec.OverlayUsers, rec.OverlayBytes, rec.BytesPerUser, rec.OverlayEvicted, rec.Signals)
		if *benchjson != "" {
			if err := writeUsersRecord(*benchjson, rec); err != nil {
				fmt.Fprintf(os.Stderr, "users: %v\n", err)
				os.Exit(1)
			}
		}
		if *usersBaseline != "" {
			if err := checkUsersBaseline(*usersBaseline, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	if *train {
		rec, err := trainBench(trainConfig{
			Instance: *trainInstance,
			Episodes: *episodes,
			Seed:     *seed,
			PerturbK: *trainPerturb,
			Runs:     *trainRuns,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "train: %v\n", err)
			os.Exit(1)
		}
		for _, pt := range rec.Cold {
			fmt.Printf("train: cold %d episodes, workers=%d: %s (%.0f episodes/s, %.2fx vs 1 worker)\n",
				rec.Episodes, pt.Workers, time.Duration(pt.Ns), pt.EpisodesPerSec, pt.Speedup)
		}
		fmt.Printf("train: warm-start (%d-item revision, distance %.3f): %d of %d episodes, %s (%.2fx vs cold)\n",
			rec.PerturbK, rec.WarmDistance, rec.WarmEpisodes, rec.ColdEpisodes,
			time.Duration(rec.WarmNs), rec.WarmSpeedup)
		if *benchjson != "" {
			if err := writeTrainRecord(*benchjson, rec); err != nil {
				fmt.Fprintf(os.Stderr, "train: %v\n", err)
				os.Exit(1)
			}
		}
		if *trainBaseline != "" {
			if err := checkTrainBaseline(*trainBaseline, rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	cfg := experiments.Config{Runs: *runs, BaseSeed: *seed, Episodes: *episodes, Workers: *workers}
	if *quick {
		cfg.Runs, cfg.Episodes = 3, 150
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	ran := 0

	// All rendering goes through out so the sequential reference pass of
	// -benchjson can run silently.
	var out io.Writer = os.Stdout

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
		os.Exit(1)
	}

	// run executes one experiment. With -benchjson it first repeats the
	// experiment with Workers: 1 and output discarded to obtain the
	// sequential reference time, then times (and alloc-profiles) the real
	// pass and writes BENCH_<id>.json.
	run := func(id string, fn func(experiments.Config) error) {
		if !all && !want[id] {
			return
		}
		ran++
		var seqNs int64
		if *benchjson != "" {
			seqCfg := cfg
			seqCfg.Workers = 1
			out = io.Discard
			ns, _, _, err := measure(func() error { return fn(seqCfg) })
			out = os.Stdout
			if err != nil {
				fail(id, err)
			}
			seqNs = ns
		}
		ns, allocs, bytes, err := measure(func() error { return fn(cfg) })
		if err != nil {
			fail(id, err)
		}
		if *benchjson != "" {
			rec := benchRecord{
				Name:       id,
				Workers:    cfg.Workers,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				Runs:       cfg.Runs,
				Episodes:   cfg.Episodes,
				Ops:        1,
				NsOp:       ns,
				SeqNsOp:    seqNs,
				Speedup:    float64(seqNs) / float64(ns),
				AllocsOp:   allocs,
				BytesOp:    bytes,
			}
			if err := writeBench(*benchjson, rec); err != nil {
				fail(id, err)
			}
		}
		fmt.Fprintln(out)
	}

	render := func(t *stats.Table) error { return t.Render(out) }

	fig1Chart := func(rows []experiments.Fig1Row, title string) error {
		if !*charts {
			return nil
		}
		labels := make([]string, len(rows))
		rl, om, ed, gd := make([]float64, len(rows)), make([]float64, len(rows)),
			make([]float64, len(rows)), make([]float64, len(rows))
		for i, r := range rows {
			labels[i] = r.Instance
			rl[i], om[i], ed[i], gd[i] = r.RLAvgSim, r.Omega, r.EDA, r.Gold
		}
		fmt.Fprintln(out)
		return plot.Bars(out, title+" (chart)", labels, []plot.Series{
			{Name: "RL-Planner", Values: rl},
			{Name: "OMEGA", Values: om},
			{Name: "EDA", Values: ed},
			{Name: "Gold", Values: gd},
		}, 40)
	}

	run("fig1a", func(cfg experiments.Config) error {
		rows, err := experiments.Fig1Courses(cfg)
		if err != nil {
			return err
		}
		if err := render(experiments.Fig1Table(rows, "Fig 1(a): course planning — avg score over runs")); err != nil {
			return err
		}
		return fig1Chart(rows, "Fig 1(a)")
	})
	run("fig1b", func(cfg experiments.Config) error {
		rows, err := experiments.Fig1Trips(cfg)
		if err != nil {
			return err
		}
		if err := render(experiments.Fig1Table(rows, "Fig 1(b): trip planning — avg score over runs")); err != nil {
			return err
		}
		return fig1Chart(rows, "Fig 1(b)")
	})
	run("tab4", func(cfg experiments.Config) error {
		r, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		return render(experiments.Table4Table(r))
	})
	run("tab5", func(cfg experiments.Config) error {
		cases, err := experiments.Table5(cfg)
		if err != nil {
			return err
		}
		return render(experiments.TransferTable(cases,
			"Table V: transfer learning between M.S. CS and M.S. DS-CT"))
	})
	run("tab7", func(cfg experiments.Config) error {
		cases, err := experiments.Table7(cfg)
		if err != nil {
			return err
		}
		return render(experiments.TransferTable(cases,
			"Table VII: transfer learning between NYC and Paris"))
	})
	run("tab8", func(cfg experiments.Config) error {
		rows, err := experiments.Table8(cfg)
		if err != nil {
			return err
		}
		return render(experiments.Table8Table(rows))
	})

	sweeps := map[string]func(experiments.Config) ([]*experiments.SweepResult, error){
		"tab9":  experiments.Table9,
		"tab10": experiments.Table10,
		"tab11": experiments.Table11,
		"tab12": experiments.Table12,
		"tab13": experiments.Table13,
		"tab14": experiments.Table14,
		"tab15": experiments.Table15,
		"tab16": experiments.Table16,
	}
	for _, id := range []string{"tab9", "tab10", "tab11", "tab12", "tab13", "tab14", "tab15", "tab16"} {
		fn := sweeps[id]
		run(id, func(cfg experiments.Config) error {
			results, err := fn(cfg)
			if err != nil {
				return err
			}
			for _, s := range results {
				if err := render(s.Render()); err != nil {
					return err
				}
				fmt.Fprintln(out)
			}
			return nil
		})
	}

	run("fig2", func(cfg experiments.Config) error {
		points, err := experiments.Fig2(cfg)
		if err != nil {
			return err
		}
		if err := render(experiments.Fig2Table(points)); err != nil {
			return err
		}
		if !*charts {
			return nil
		}
		byInstance := map[string][]float64{}
		var labels []string
		var order []string
		for _, p := range points {
			if _, ok := byInstance[p.Instance]; !ok {
				order = append(order, p.Instance)
			}
			byInstance[p.Instance] = append(byInstance[p.Instance],
				float64(p.Learn.Microseconds())/1000)
		}
		for _, p := range points[:len(points)/len(order)] {
			labels = append(labels, fmt.Sprintf("%d", p.Episodes))
		}
		var series []plot.Series
		for _, name := range order {
			series = append(series, plot.Series{Name: name + " learn ms", Values: byInstance[name]})
		}
		fmt.Fprintln(out)
		return plot.Lines(out, "Fig 2(a)(c): learning time vs N (chart)", labels, series, 50, 10)
	})

	run("ablations", func(cfg experiments.Config) error {
		rows, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		return render(experiments.AblationTable(rows))
	})

	if *benchjson != "" {
		for _, hp := range []struct {
			name string
			inst *dataset.Instance
		}{
			{"hotpath", univ.Univ1DSCT()},
			{"hotpath_trip", trip.NYC().Instance},
		} {
			rec, err := hotpathRecord(hp.name, hp.inst)
			if err != nil {
				fail(hp.name, err)
			}
			if err := writeBench(*benchjson, rec); err != nil {
				fail(hp.name, err)
			}
			fmt.Fprintf(out, "hot path (%s): %d reward evals, %d ns/op, %d allocs/op → BENCH_%s.json\n",
				hp.name, rec.Ops, rec.NsOp, rec.AllocsOp, hp.name)
		}
	}

	if ran == 0 && *benchjson == "" {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *exp)
		os.Exit(2)
	}
}
