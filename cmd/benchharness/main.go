// Command benchharness regenerates every table and figure of the paper's
// evaluation section and prints them as text tables.
//
// Usage:
//
//	benchharness [-exp all|fig1a,fig1b,tab4,tab5,tab7,tab8,tab9..tab16,fig2]
//	             [-runs 10] [-episodes 0] [-seed 1] [-quick]
//
// -quick trades fidelity for speed (3 runs, 150 episodes); the default
// reproduces the paper's 10-run averages at the Table III episode counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rlplanner/rlplanner/internal/experiments"
	"github.com/rlplanner/rlplanner/internal/plot"
	"github.com/rlplanner/rlplanner/internal/stats"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		runs     = flag.Int("runs", 10, "runs to average (the paper uses 10)")
		episodes = flag.Int("episodes", 0, "override N for every learner (0 = Table III defaults)")
		seed     = flag.Int64("seed", 1, "base random seed")
		quick    = flag.Bool("quick", false, "fast mode: 3 runs, 150 episodes")
		charts   = flag.Bool("charts", false, "render Figures 1 and 2 as text charts too")
	)
	flag.Parse()

	cfg := experiments.Config{Runs: *runs, BaseSeed: *seed, Episodes: *episodes}
	if *quick {
		cfg.Runs, cfg.Episodes = 3, 150
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	ran := 0

	run := func(id string, fn func() error) {
		if !all && !want[id] {
			return
		}
		ran++
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	render := func(t *stats.Table) error { return t.Render(os.Stdout) }

	fig1Chart := func(rows []experiments.Fig1Row, title string) error {
		if !*charts {
			return nil
		}
		labels := make([]string, len(rows))
		rl, om, ed, gd := make([]float64, len(rows)), make([]float64, len(rows)),
			make([]float64, len(rows)), make([]float64, len(rows))
		for i, r := range rows {
			labels[i] = r.Instance
			rl[i], om[i], ed[i], gd[i] = r.RLAvgSim, r.Omega, r.EDA, r.Gold
		}
		fmt.Println()
		return plot.Bars(os.Stdout, title+" (chart)", labels, []plot.Series{
			{Name: "RL-Planner", Values: rl},
			{Name: "OMEGA", Values: om},
			{Name: "EDA", Values: ed},
			{Name: "Gold", Values: gd},
		}, 40)
	}

	run("fig1a", func() error {
		rows, err := experiments.Fig1Courses(cfg)
		if err != nil {
			return err
		}
		if err := render(experiments.Fig1Table(rows, "Fig 1(a): course planning — avg score over runs")); err != nil {
			return err
		}
		return fig1Chart(rows, "Fig 1(a)")
	})
	run("fig1b", func() error {
		rows, err := experiments.Fig1Trips(cfg)
		if err != nil {
			return err
		}
		if err := render(experiments.Fig1Table(rows, "Fig 1(b): trip planning — avg score over runs")); err != nil {
			return err
		}
		return fig1Chart(rows, "Fig 1(b)")
	})
	run("tab4", func() error {
		r, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		return render(experiments.Table4Table(r))
	})
	run("tab5", func() error {
		cases, err := experiments.Table5(cfg)
		if err != nil {
			return err
		}
		return render(experiments.TransferTable(cases,
			"Table V: transfer learning between M.S. CS and M.S. DS-CT"))
	})
	run("tab7", func() error {
		cases, err := experiments.Table7(cfg)
		if err != nil {
			return err
		}
		return render(experiments.TransferTable(cases,
			"Table VII: transfer learning between NYC and Paris"))
	})
	run("tab8", func() error {
		rows, err := experiments.Table8(cfg)
		if err != nil {
			return err
		}
		return render(experiments.Table8Table(rows))
	})

	sweeps := map[string]func(experiments.Config) ([]*experiments.SweepResult, error){
		"tab9":  experiments.Table9,
		"tab10": experiments.Table10,
		"tab11": experiments.Table11,
		"tab12": experiments.Table12,
		"tab13": experiments.Table13,
		"tab14": experiments.Table14,
		"tab15": experiments.Table15,
		"tab16": experiments.Table16,
	}
	for _, id := range []string{"tab9", "tab10", "tab11", "tab12", "tab13", "tab14", "tab15", "tab16"} {
		fn := sweeps[id]
		run(id, func() error {
			results, err := fn(cfg)
			if err != nil {
				return err
			}
			for _, s := range results {
				if err := render(s.Render()); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		})
	}

	run("fig2", func() error {
		points, err := experiments.Fig2(cfg)
		if err != nil {
			return err
		}
		if err := render(experiments.Fig2Table(points)); err != nil {
			return err
		}
		if !*charts {
			return nil
		}
		byInstance := map[string][]float64{}
		var labels []string
		var order []string
		for _, p := range points {
			if _, ok := byInstance[p.Instance]; !ok {
				order = append(order, p.Instance)
			}
			byInstance[p.Instance] = append(byInstance[p.Instance],
				float64(p.Learn.Microseconds())/1000)
		}
		for _, p := range points[:len(points)/len(order)] {
			labels = append(labels, fmt.Sprintf("%d", p.Episodes))
		}
		var series []plot.Series
		for _, name := range order {
			series = append(series, plot.Series{Name: name + " learn ms", Values: byInstance[name]})
		}
		fmt.Println()
		return plot.Lines(os.Stdout, "Fig 2(a)(c): learning time vs N (chart)", labels, series, 50, 10)
	})

	run("ablations", func() error {
		rows, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		return render(experiments.AblationTable(rows))
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *exp)
		os.Exit(2)
	}
}
