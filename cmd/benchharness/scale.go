package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"github.com/rlplanner/rlplanner"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/synth"
	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/httpapi"
	"github.com/rlplanner/rlplanner/internal/mdp"
)

// scaleConfig parameterizes the catalog-scale harness (-scale).
type scaleConfig struct {
	Sizes    []int
	Episodes int // 0 = a per-size budget that keeps every point seconds-long
	Seed     int64
	Serve    int // /api/plan requests per point
}

// scalePoint is one catalog size's measurements: generation, environment
// build (distance store included), training, the per-candidate data-plane
// step cost, end-to-end /api/plan latency, and the resident footprint of
// the three compressed structures next to their dense-layout equivalent.
type scalePoint struct {
	Items          int     `json:"items"`
	Topics         int     `json:"topics"`
	Episodes       int     `json:"episodes"`
	GenNs          int64   `json:"gen_ns"`
	EnvNs          int64   `json:"env_ns"`
	TrainNs        int64   `json:"train_ns"`
	EpisodesPerSec float64 `json:"episodes_per_sec"`
	StepNs         int64   `json:"step_ns"`
	RewardEvals    int     `json:"reward_evals"`
	ServeP50Ns     int64   `json:"serve_p50_ns"`
	QBytes         int     `json:"q_bytes"`
	QStored        int     `json:"q_stored"`
	QDense         bool    `json:"q_dense"`
	DistBytes      int     `json:"dist_bytes"`
	TopicsBytes    int     `json:"topics_bytes"`
	ResidentBytes  int     `json:"resident_bytes"`
	DenseBytes     int64   `json:"dense_equiv_bytes"`
	DistFallbacks  uint64  `json:"dist_fallbacks"`
}

// scaleRecord is the machine-readable scaling record written as
// BENCH_scale.json: one point per catalog size, items vs ns/step vs
// resident bytes vs train time.
type scaleRecord struct {
	Name       string       `json:"name"`
	Engine     string       `json:"engine"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Seed       int64        `json:"seed"`
	Points     []scalePoint `json:"points"`
}

// scaleEpisodeBudget keeps every size point seconds-long: the per-episode
// cost is dominated by O(items) candidate-reward sweeps per step, so the
// episode budget shrinks inversely with the catalog.
func scaleEpisodeBudget(items int) int {
	e := 2_000_000 / items
	if e < 2 {
		e = 2
	}
	if e > 64 {
		e = 64
	}
	return e
}

// scaleBench measures one generate → train → serve pass per catalog
// size. Training and the environment go through the engine layer (the
// cached-environment path rlplannerd uses); serving goes through the
// real HTTP stack — the instance spec is uploaded to an in-process
// server, the trained artifact imported, and /api/plan driven against
// the warm cache — so the record covers the datagen → train → /api/plan
// pipeline end to end.
func scaleBench(cfg scaleConfig) (scaleRecord, error) {
	rec := scaleRecord{
		Name:       "scale",
		Engine:     "sarsa",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
	}
	if cfg.Serve <= 0 {
		cfg.Serve = 10
	}
	ctx := context.Background()
	for _, n := range cfg.Sizes {
		pt, err := scalePointAt(ctx, n, cfg)
		if err != nil {
			return rec, fmt.Errorf("scale %d: %w", n, err)
		}
		rec.Points = append(rec.Points, pt)
		fmt.Printf("scale: %6d items: gen %s, env %s, train %s (%d episodes, %.0f ep/s), step %dns, plan p50 %s, resident %s (q %s + dist %s + topics %s; dense layout %s)\n",
			pt.Items, time.Duration(pt.GenNs).Round(time.Millisecond),
			time.Duration(pt.EnvNs).Round(time.Millisecond),
			time.Duration(pt.TrainNs).Round(time.Millisecond),
			pt.Episodes, pt.EpisodesPerSec, pt.StepNs,
			time.Duration(pt.ServeP50Ns).Round(time.Microsecond),
			fmtBytes(int64(pt.ResidentBytes)), fmtBytes(int64(pt.QBytes)),
			fmtBytes(int64(pt.DistBytes)), fmtBytes(int64(pt.TopicsBytes)),
			fmtBytes(pt.DenseBytes))
	}
	return rec, nil
}

func scalePointAt(ctx context.Context, n int, cfg scaleConfig) (scalePoint, error) {
	pt := scalePoint{Items: n}
	params := synth.Params{
		Name:  fmt.Sprintf("synthetic-%d", n),
		Items: n,
		Geo:   true,
		Seed:  cfg.Seed,
	}

	t0 := time.Now()
	inst, err := synth.Generate(params)
	if err != nil {
		return pt, err
	}
	pt.GenNs = time.Since(t0).Nanoseconds()
	pt.Topics = inst.Catalog.Vocabulary().Len()

	episodes := cfg.Episodes
	if episodes <= 0 {
		episodes = scaleEpisodeBudget(n)
	}
	opts := core.Options{Episodes: episodes, Seed: cfg.Seed}

	t0 = time.Now()
	env, err := engine.EnvFor(ctx, inst, opts)
	if err != nil {
		return pt, err
	}
	pt.EnvNs = time.Since(t0).Nanoseconds()

	t0 = time.Now()
	pol, err := engine.Train(ctx, "sarsa", inst, opts)
	if err != nil {
		return pt, err
	}
	pt.TrainNs = time.Since(t0).Nanoseconds()
	pt.Episodes = engine.Episodes(pol)
	pt.EpisodesPerSec = float64(pt.Episodes) / (float64(pt.TrainNs) / 1e9)

	// Resident footprint of the three data-plane structures, from their
	// own accounting; the dense-layout equivalent (float64 n×n Q, float32
	// n×n distance matrix, vocabulary-wide topic words) is arithmetic.
	vp, ok := pol.(engine.ValuePolicy)
	if !ok {
		return pt, fmt.Errorf("sarsa policy carries no values")
	}
	q := vp.Values().Q
	pt.QBytes = engine.PolicyBytes(pol)
	pt.QStored = q.Stored()
	pt.QDense = q.IsDense()
	pt.DistBytes = env.DistStoreBytes()
	for i := 0; i < inst.Catalog.Len(); i++ {
		pt.TopicsBytes += inst.Catalog.At(i).Topics.SizeBytes()
	}
	pt.ResidentBytes = pt.QBytes + pt.DistBytes + pt.TopicsBytes
	nn := int64(n) * int64(n)
	pt.DenseBytes = 8*nn + 4*nn + int64(n)*int64((pt.Topics+63)/64)*8

	// Data-plane step cost: greedy episodes over the live environment,
	// one op per candidate-reward evaluation (the same shape as the
	// committed hotpath records, comparable across sizes).
	evals, ns, err := scaleStepBench(inst, env)
	if err != nil {
		return pt, err
	}
	pt.RewardEvals = evals
	pt.StepNs = ns

	// End-to-end serve: upload the instance spec and the trained
	// artifact to an in-process HTTP server, then time /api/plan against
	// the warm policy cache.
	fb0 := geo.FallbackTotal()
	p50, err := scaleServe(inst.Name, params, pol, cfg.Serve)
	if err != nil {
		return pt, err
	}
	pt.ServeP50Ns = p50
	pt.DistFallbacks = geo.FallbackTotal() - fb0
	return pt, nil
}

// scaleStepBench runs greedy reward-maximizing episodes until enough
// candidate evaluations accumulate for a stable per-op figure.
func scaleStepBench(inst *dataset.Instance, env *mdp.Env) (int, int64, error) {
	ep, err := env.Start(inst.StartIndex())
	if err != nil {
		return 0, 0, err
	}
	const targetEvals = 200_000
	evals := 0
	var cands []int
	t0 := time.Now()
	for evals < targetEvals {
		if err := ep.Reset(inst.StartIndex()); err != nil {
			return 0, 0, err
		}
		for !ep.Done() {
			cands = ep.AppendCandidates(cands[:0])
			if len(cands) == 0 {
				break
			}
			best, bestR := cands[0], -1.0
			for _, c := range cands {
				if r := ep.Reward(c); r > bestR {
					best, bestR = c, r
				}
				evals++
			}
			ep.Step(best)
		}
	}
	ns := time.Since(t0).Nanoseconds()
	if evals == 0 {
		return 0, 0, fmt.Errorf("no reward evaluations ran")
	}
	return evals, ns / int64(evals), nil
}

// scaleServe drives the real HTTP pipeline for one instance: the public
// generator reproduces the same catalog (equal params generate equal
// instances, so the artifact's fingerprint matches), the spec uploads
// via POST /api/instances, the artifact via /api/policies/import, and
// the warm /api/plan path is timed.
func scaleServe(name string, params synth.Params, pol engine.Policy, requests int) (int64, error) {
	pub, err := rlplanner.GenerateInstance(rlplanner.GenParams{
		Name:  params.Name,
		Items: params.Items,
		Geo:   true,
		Seed:  params.Seed,
	})
	if err != nil {
		return 0, err
	}
	api := httpapi.New()
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	client := srv.Client()

	var spec bytes.Buffer
	if err := pub.WriteJSON(&spec); err != nil {
		return 0, err
	}
	if err := scalePost(client, srv.URL+"/api/instances", &spec, http.StatusCreated); err != nil {
		return 0, fmt.Errorf("upload instance: %w", err)
	}

	var artifact bytes.Buffer
	if err := pol.Save(&artifact); err != nil {
		return 0, err
	}
	if err := scalePost(client, srv.URL+"/api/policies/import?instance="+name, &artifact, http.StatusCreated); err != nil {
		return 0, fmt.Errorf("import artifact: %w", err)
	}

	body, err := json.Marshal(map[string]string{"instance": name})
	if err != nil {
		return 0, err
	}
	lat := make([]int64, 0, requests)
	for i := 0; i < requests; i++ {
		t0 := time.Now()
		if err := scalePost(client, srv.URL+"/api/plan", bytes.NewReader(body), http.StatusOK); err != nil {
			return 0, fmt.Errorf("plan: %w", err)
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], nil
}

// scalePost posts body and checks the status, draining the response.
func scalePost(client *http.Client, url string, body interface{ Read([]byte) (int, error) }, want int) error {
	resp, err := client.Post(url, "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var sink json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	if resp.StatusCode != want {
		return fmt.Errorf("HTTP %d (want %d): %.200s", resp.StatusCode, want, sink)
	}
	return nil
}

// checkScaleBaseline compares a fresh scale record against a committed
// baseline and fails when any matching size's resident bytes grew past
// 1.5× — the CI guardrail for the compressed data plane's memory model.
func checkScaleBaseline(path string, rec scaleRecord) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("scale baseline: %w", err)
	}
	var base scaleRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("scale baseline %s: %w", path, err)
	}
	byItems := make(map[int]scalePoint, len(base.Points))
	for _, pt := range base.Points {
		byItems[pt.Items] = pt
	}
	matched := 0
	for _, pt := range rec.Points {
		b, ok := byItems[pt.Items]
		if !ok || b.ResidentBytes <= 0 {
			continue
		}
		matched++
		if float64(pt.ResidentBytes) > 1.5*float64(b.ResidentBytes) {
			return fmt.Errorf("scale resident-bytes regression at %d items: %s now vs %s baseline (>1.5x)",
				pt.Items, fmtBytes(int64(pt.ResidentBytes)), fmtBytes(int64(b.ResidentBytes)))
		}
	}
	if matched == 0 {
		return fmt.Errorf("scale baseline %s: no catalog size in common with this run", path)
	}
	return nil
}

// writeScaleRecord writes rec to dir/BENCH_scale.json.
func writeScaleRecord(dir string, rec scaleRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_scale.json"), append(data, '\n'), 0o644)
}

// fmtBytes renders a byte count in the nearest binary unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
