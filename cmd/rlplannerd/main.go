// Command rlplannerd serves RL-Planner over HTTP/JSON — the interactive
// deployment mode of §IV-F. Training runs behind per-key singleflight
// into a bounded policy cache; every read endpoint stays responsive
// while policies train. Endpoints:
//
//	GET  /api/instances                  list built-in instances
//	GET  /api/instances/{name}           instance catalog
//	GET  /api/engines                    list registered planning engines
//	GET  /api/metrics                    resilience fault counters
//	GET  /api/policies                   list cached policies
//	POST /api/policies/export            train and download a policy artifact
//	POST /api/policies/import?instance=  upload an artifact for serving
//	POST /api/policies/{key}/derive      warm-start a policy for another catalog
//	POST /api/plan                       {"instance": ..., "engine": ..., "user": ...}
//	POST /api/feedback                   {"instance": ..., "user": ..., "items": [...], "useful": true}
//	POST /api/rate                       {"instance": ..., "items": [...]}
//	POST /api/sessions                   open an interactive session
//	GET  /api/sessions/{id}              session state + suggestions
//	POST /api/sessions/{id}/accept       {"item": "CS 675"}
//	POST /api/sessions/{id}/reject       {"item": "CS 683"}
//	POST /api/sessions/{id}/complete     auto-complete and evaluate
//
// The daemon is resilient by construction: each training run is bounded
// by -train-timeout (the SARSA engines checkpoint a partial policy at
// the deadline), concurrent cold starts are capped by -max-training
// (excess requests get 503 + Retry-After), solver panics degrade the one
// faulting policy key instead of the process, and SIGTERM/SIGINT drains
// in-flight requests before exiting.
//
// Training throughput is tunable: -train-workers runs each cold start's
// episode walkers in parallel (bit-identical results for any worker
// count), and auto-derivation (on by default, -auto-derive=false to
// disable) warm-starts cold requests from the nearest cached policy when
// only a few catalog items changed, shrinking the episode budget by the
// catalog distance.
//
// Serving is personalizable per user: POST /api/feedback folds a user's
// plan feedback into a bounded copy-on-write overlay over the shared
// policy, and plan requests carrying that user id read through it. The
// fleet's total overlay memory is capped by -overlay-budget (LRU user
// eviction) and each user's overlay by -overlay-cells.
//
// Usage:
//
//	rlplannerd [-addr :8080] [-policy-cache 128] [-train-timeout 0]
//	           [-max-training 0] [-train-workers 0] [-auto-derive]
//	           [-overlay-budget 0] [-overlay-cells 0]
//	           [-dist-matrix-max 0] [-dense-q-max 0]
//	           [-policy-dir dir] [-preload manifest.json]
//	           [-drain-timeout 10s] [-pprof addr] [-profile-contention]
//
// With -policy-dir the daemon keeps a durable, crash-safe policy
// repository on disk: trained policies are written through (temp file +
// fsync + atomic rename, checksummed), verified and reloaded on the
// next boot, and corrupt or truncated entries are quarantined to *.bad
// instead of crashing the scan. Replicas pointing at one shared
// directory coordinate through per-key lease files so each policy
// trains exactly once fleet-wide. -preload names a JSON manifest of
// plan requests resolved before the listener accepts traffic.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/rlplanner/rlplanner/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("policy-cache", 0, "max cached policies (0 = default 128)")
	trainTimeout := flag.Duration("train-timeout", 0,
		"wall-clock budget per training run (0 = unbounded); sarsa and qlearning checkpoint a partial policy at the deadline")
	maxTraining := flag.Int("max-training", 0,
		"max concurrent cold-start trainings (0 = unlimited); requests beyond the cap get 503 + Retry-After")
	trainWorkers := flag.Int("train-workers", 0,
		"episode walkers per training run (0 = sequential); results are bit-identical for any worker count")
	autoDerive := flag.Bool("auto-derive", true,
		"warm-start cold trainings from the nearest cached policy on catalog near-miss")
	overlayBudget := flag.Int("overlay-budget", 0,
		"total bytes for per-user personalization overlays (0 = default 64 MiB); least-recently-active users evict first")
	overlayCells := flag.Int("overlay-cells", 0,
		"max personalized action values per user overlay (0 = default)")
	distMatrixMax := flag.Int("dist-matrix-max", 0,
		"catalog size up to which an exact distance matrix is precomputed (0 = default 1024); larger trip catalogs use a compressed quantized neighbor store")
	denseQMax := flag.Int("dense-q-max", 0,
		"catalog size up to which training allocates a dense n*n Q table (0 = default 4096); larger catalogs learn into a sparse table")
	policyDir := flag.String("policy-dir", "",
		"directory for the durable policy repository (empty disables); trained policies are written through crash-safely and reloaded on boot, and replicas sharing one directory train each key exactly once")
	preload := flag.String("preload", "",
		"boot manifest: a JSON array of plan requests to train or warm-load before serving (requires no flag ordering; works best with -policy-dir)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"grace period for in-flight requests after SIGTERM/SIGINT")
	pprofAddr := flag.String("pprof", "",
		"optional address for net/http/pprof on a separate listener (e.g. localhost:6060); empty disables profiling")
	profileContention := flag.Bool("profile-contention", false,
		"record mutex and block profiles (served at -pprof's /debug/pprof/mutex and /debug/pprof/block); small steady-state cost, leave off unless chasing lock contention")
	flag.Parse()

	if *profileContention {
		// Fraction 5 / 10µs threshold: coarse enough for production, fine
		// enough that a contended lock on the plan path shows up.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(10_000)
		if *pprofAddr == "" {
			log.Printf("rlplannerd: -profile-contention is on but -pprof is not; profiles are recorded but unreachable")
		}
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("rlplannerd pprof listening on http://%s/debug/pprof/", pln.Addr())
		go func() {
			// The profiler gets its own mux and listener so the API
			// surface never exposes /debug/pprof, whatever -addr binds.
			if err := http.Serve(pln, pprofMux()); err != nil {
				log.Printf("rlplannerd: pprof listener: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	log.Printf("rlplannerd listening on %s", ln.Addr())
	if err := serve(ln, stop, *drainTimeout, *preload,
		httpapi.WithPolicyCacheSize(*cache),
		httpapi.WithTrainBudget(*trainTimeout),
		httpapi.WithMaxTraining(*maxTraining),
		httpapi.WithTrainWorkers(*trainWorkers),
		httpapi.WithAutoDerive(*autoDerive),
		httpapi.WithOverlayBudget(*overlayBudget),
		httpapi.WithOverlayCells(*overlayCells),
		httpapi.WithDistMatrixMax(*distMatrixMax),
		httpapi.WithDenseQMax(*denseQMax),
		httpapi.WithPolicyDir(*policyDir),
	); err != nil {
		log.Fatal(err)
	}
}

// pprofMux routes the standard net/http/pprof handlers on a dedicated
// mux (the package's init only registers on http.DefaultServeMux, which
// the daemon deliberately does not serve).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the API on ln until a stop signal arrives, then drains
// in-flight requests via http.Server.Shutdown bounded by drainTimeout
// (0 = wait indefinitely). It returns nil after a clean drain, the
// shutdown context's error when the grace period expires with requests
// still active (after force-closing them), or the listener's error.
// A non-empty preload names a boot manifest resolved before the
// listener starts accepting: with -policy-dir these keys come off disk
// in milliseconds on a warm boot, and a cold fleet trains each exactly
// once.
func serve(ln net.Listener, stop <-chan os.Signal, drainTimeout time.Duration, preload string, opts ...httpapi.Option) error {
	api := httpapi.New(opts...)
	if preload != "" {
		f, err := os.Open(preload)
		if err != nil {
			return err
		}
		n, err := api.Preload(context.Background(), f)
		f.Close()
		if err != nil {
			// Partial manifests are a warning, not a boot failure: the keys
			// that did resolve are warm, the rest train on first request.
			log.Printf("rlplannerd: preload: %d policies ready, some entries failed: %v", n, err)
		} else {
			log.Printf("rlplannerd: preload: %d policies ready", n)
		}
	}
	srv := &http.Server{Handler: api.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("rlplannerd: %v: draining in-flight requests (grace %s)", sig, drainTimeout)
		ctx := context.Background()
		if drainTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, drainTimeout)
			defer cancel()
		}
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
			return err
		}
		return nil
	}
}
