// Command rlplannerd serves RL-Planner over HTTP/JSON — the interactive
// deployment mode of §IV-F. Training runs behind per-key singleflight
// into a bounded policy cache; every read endpoint stays responsive
// while policies train. Endpoints:
//
//	GET  /api/instances                  list built-in instances
//	GET  /api/instances/{name}           instance catalog
//	GET  /api/engines                    list registered planning engines
//	GET  /api/policies                   list cached policies
//	POST /api/policies/export            train and download a policy artifact
//	POST /api/policies/import?instance=  upload an artifact for serving
//	POST /api/plan                       {"instance": ..., "engine": ..., "episodes": ...}
//	POST /api/rate                       {"instance": ..., "items": [...]}
//	POST /api/sessions                   open an interactive session
//	GET  /api/sessions/{id}              session state + suggestions
//	POST /api/sessions/{id}/accept       {"item": "CS 675"}
//	POST /api/sessions/{id}/reject       {"item": "CS 683"}
//	POST /api/sessions/{id}/complete     auto-complete and evaluate
//
// Usage:
//
//	rlplannerd [-addr :8080] [-policy-cache 128]
package main

import (
	"flag"
	"log"
	"net/http"

	"github.com/rlplanner/rlplanner/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("policy-cache", 0, "max cached policies (0 = default 128)")
	flag.Parse()

	srv := httpapi.New(httpapi.WithPolicyCacheSize(*cache))
	log.Printf("rlplannerd listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
