// Command rlplannerd serves RL-Planner over HTTP/JSON — the interactive
// deployment mode of §IV-F. Endpoints:
//
//	GET  /api/instances                  list built-in instances
//	GET  /api/instances/{name}           instance catalog
//	POST /api/plan                       {"instance": ..., "episodes": ..., "baseline": ...}
//	POST /api/rate                       {"instance": ..., "items": [...]}
//	POST /api/sessions                   open an interactive session
//	GET  /api/sessions/{id}              session state + suggestions
//	POST /api/sessions/{id}/accept       {"item": "CS 675"}
//	POST /api/sessions/{id}/reject       {"item": "CS 683"}
//	POST /api/sessions/{id}/complete     auto-complete and evaluate
//
// Usage:
//
//	rlplannerd [-addr :8080]
package main

import (
	"flag"
	"log"
	"net/http"

	"github.com/rlplanner/rlplanner/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	log.Printf("rlplannerd listening on %s", *addr)
	if err := http.ListenAndServe(*addr, httpapi.New().Handler()); err != nil {
		log.Fatal(err)
	}
}
