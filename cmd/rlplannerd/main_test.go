package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/rlplanner/rlplanner/internal/resilience/faultinject"
)

// startServe runs serve on an ephemeral port and returns the base URL,
// the signal channel and the exit channel.
func startServe(t *testing.T, drain time.Duration) (string, chan os.Signal, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ln, stop, drain, "") }()
	url := "http://" + ln.Addr().String()
	waitReady(t, url)
	return url, stop, done
}

// waitReady polls until the daemon answers.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/api/engines")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became ready")
}

// TestServeStopsCleanlyWhenIdle: a signal with nothing in flight drains
// immediately and serve returns nil; the listener is closed.
func TestServeStopsCleanlyWhenIdle(t *testing.T) {
	url, stop, done := startServe(t, 5*time.Second)
	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after SIGTERM")
	}
	if _, err := http.Get(url + "/api/engines"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestServeDrainsInFlightRequest: SIGTERM must stop new connections but
// let an in-flight training request finish and receive its response.
func TestServeDrainsInFlightRequest(t *testing.T) {
	fe, cleanup := faultinject.New("fault-drain")
	t.Cleanup(cleanup)
	fe.Set(faultinject.Hang)
	url, stop, done := startServe(t, 10*time.Second)

	type result struct {
		code int
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		body := fmt.Sprintf(`{"instance":%q,"engine":"fault-drain"}`, "Univ-1 M.S. DS-CT")
		resp, err := http.Post(url+"/api/plan", "application/json", strings.NewReader(body))
		if err != nil {
			resc <- result{0, err}
			return
		}
		resp.Body.Close()
		resc <- result{resp.StatusCode, nil}
	}()
	<-fe.HangStarted()

	stop <- syscall.SIGTERM
	// Give Shutdown a beat to close the listener, then prove the drain is
	// actually waiting on the in-flight request.
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("serve returned %v while a request was in flight", err)
	default:
	}

	fe.Set(faultinject.OK)
	fe.Release()
	r := <-resc
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.code != 200 {
		t.Fatalf("in-flight request got %d, want 200", r.code)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve = %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after the drain completed")
	}
}

// TestServeDrainTimeoutForcesExit: when the grace period expires with a
// request still running, serve force-closes and reports the deadline
// error instead of hanging forever.
func TestServeDrainTimeoutForcesExit(t *testing.T) {
	fe, cleanup := faultinject.New("fault-wedge")
	t.Cleanup(cleanup)
	t.Cleanup(fe.Release) // unstick the handler goroutine at test end
	fe.Set(faultinject.Hang)
	url, stop, done := startServe(t, 200*time.Millisecond)

	go func() {
		body := fmt.Sprintf(`{"instance":%q,"engine":"fault-wedge"}`, "Univ-1 M.S. DS-CT")
		resp, err := http.Post(url+"/api/plan", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-fe.HangStarted()

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("serve = nil, want the expired drain deadline error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve hung past its drain timeout")
	}
}
