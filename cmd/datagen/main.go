// Command datagen exports the synthetic datasets as JSON: the six focus
// instances (in the public InstanceSpec schema, reloadable with
// rlplanner.LoadInstance), the full Univ-1/Univ-2 institutions, and the
// trip datasets' simulated itineraries and photo logs. The exports make
// the substitution datasets (DESIGN.md §3) inspectable and reusable
// outside this repository.
//
// Usage:
//
//	datagen [-out datasets] [-full] [-photos]
//
// -full additionally exports the 1216-course and 3742-course institutions;
// -photos additionally exports the raw simulated photo logs (large).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/rlplanner/rlplanner"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/topics"
)

func main() {
	var (
		out    = flag.String("out", "datasets", "output directory")
		full   = flag.Bool("full", false, "also export the full institutions (large)")
		photos = flag.Bool("photos", false, "also export the simulated photo logs (large)")

		synthN    = flag.Int("synth", 0, "also generate a synthetic instance with this many items")
		synthSeed = flag.Int64("synth-seed", 1, "synthetic generator seed")
		synthPre  = flag.Float64("synth-prereq-density", 0.25, "fraction of synthetic items with prerequisites")
		synthGeo  = flag.Bool("synth-geo", false, "give synthetic items clustered lat/lon and a distance constraint")
	)
	flag.Parse()

	check(os.MkdirAll(*out, 0o755))

	if *synthN > 0 {
		inst, err := rlplanner.GenerateInstance(rlplanner.GenParams{
			Name:          fmt.Sprintf("synthetic-%d", *synthN),
			Items:         *synthN,
			PrereqDensity: *synthPre,
			Geo:           *synthGeo,
			Seed:          *synthSeed,
		})
		check(err)
		f, err := os.Create(filepath.Join(*out, slug(inst.Name())+".json"))
		check(err)
		check(inst.WriteJSON(f))
		check(f.Close())
	}

	// The six focus instances, in the public reloadable schema.
	for _, inst := range rlplanner.Instances() {
		f, err := os.Create(filepath.Join(*out, slug(inst.Name())+".json"))
		check(err)
		check(inst.WriteJSON(f))
		check(f.Close())
	}

	// Trip substrates: the simulated itineraries (and optionally photos)
	// the popularity scores derive from.
	for _, name := range []string{"NYC", "Paris"} {
		city, err := trip.City(name)
		check(err)
		writeJSON(*out, slug(name)+"_itineraries.json", city.Itineraries)
		if *photos {
			writeJSON(*out, slug(name)+"_photos.json", city.Photos)
		}
	}

	if *full {
		for _, u := range []*univ.University{univ.FullUniv1(), univ.FullUniv2()} {
			export := struct {
				Name     string              `json:"name"`
				Schools  []string            `json:"schools"`
				Programs map[string][]string `json:"programs"`
				Courses  []courseJSON        `json:"courses"`
			}{Name: u.Name, Schools: u.Schools, Programs: u.Programs}
			for i := 0; i < u.Catalog.Len(); i++ {
				export.Courses = append(export.Courses, toCourseJSON(u.Catalog.Vocabulary(), u.Catalog.At(i)))
			}
			writeJSON(*out, slug(u.Name)+"_full.json", export)
		}
	}

	fmt.Printf("datasets written to %s\n", *out)
}

// courseJSON is the export form of one full-institution course.
type courseJSON struct {
	ID     string   `json:"id"`
	Name   string   `json:"name"`
	Desc   string   `json:"description,omitempty"`
	Prereq string   `json:"prereq,omitempty"`
	Topics []string `json:"topics"`
}

func toCourseJSON(vocab *topics.Vocabulary, m item.Item) courseJSON {
	out := courseJSON{ID: m.ID, Name: m.Name, Desc: m.Description, Topics: vocab.Decode(m.Topics)}
	if m.Prereq != nil {
		out.Prereq = prereq.Format(m.Prereq)
	}
	return out
}

func slug(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func writeJSON(dir, name string, v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	check(err)
	check(os.WriteFile(filepath.Join(dir, name), data, 0o644))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
