package rlplanner

import (
	"context"
	"fmt"
	"io"

	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/session"
	"github.com/rlplanner/rlplanner/internal/transfer"
)

// Engines lists the registered planning engines: the SARSA core
// ("sarsa", the default), its Q-learning variant ("qlearning"), value
// iteration ("valueiter") and the §IV-A2 baselines ("eda", "omega",
// "gold"). Any of these names — or their aliases, e.g. "vi" — can be
// passed to Train and to the HTTP API's "engine" field.
func Engines() []string { return engine.Names() }

// EngineName resolves an engine name or alias ("" selects the default
// SARSA engine) to its canonical registry name.
func EngineName(name string) (string, error) { return engine.Canonical(name) }

// Policy is an immutable, trained planning artifact: the output of an
// engine's learning (train) phase, decoupled from serving. A Policy
// never mutates, so one policy safely serves many concurrent Recommend
// calls — the train-once / serve-many shape of the §IV-F deployments.
type Policy struct {
	inst *Instance
	p    engine.Policy
}

// Train runs the named engine's training phase on the instance and
// returns the policy artifact. An empty engine name selects the default
// SARSA engine; see Engines for the registry.
func Train(ctx context.Context, inst *Instance, engineName string, opts Options) (*Policy, error) {
	if inst == nil {
		return nil, fmt.Errorf("rlplanner: nil instance")
	}
	pol, err := engine.Train(ctx, engineName, inst.inner, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Policy{inst: inst, p: pol}, nil
}

// DeriveStats reports what a warm-start derivation did: how far the
// target catalog is from the source policy's (the fraction of items
// without an exact-id match) and how the episode budget shrank.
type DeriveStats struct {
	// Source names the instance the source policy was trained on.
	Source string
	// Distance is the warm-start distance in [0, 1].
	Distance float64
	// ColdEpisodes is the budget a cold run would have trained;
	// WarmEpisodes is the distance-scaled budget actually trained.
	ColdEpisodes int
	WarmEpisodes int
}

// Derive trains a policy for inst by warm-starting from an existing
// policy instead of from zeros: the source Q table is re-indexed onto
// the target catalog (exact item ids first, topic similarity second),
// training seeds from the mapped values, and the episode budget scales
// down with the warm-start distance — a catalog that changed by k of n
// items retrains roughly k/n of the cold budget, floored at 10%. The
// source must come from a value-based engine (sarsa, qlearning,
// valueiter); the derived policy trains with the source's TD rule
// (SARSA for valueiter sources).
func Derive(ctx context.Context, src *Policy, inst *Instance, opts Options) (*Policy, DeriveStats, error) {
	if src == nil || inst == nil {
		return nil, DeriveStats{}, fmt.Errorf("rlplanner: nil source policy or instance")
	}
	pol, stats, err := engine.Derive(ctx, src.p, inst.inner, opts.toCore())
	if err != nil {
		return nil, DeriveStats{}, err
	}
	return &Policy{inst: inst, p: pol}, DeriveStats{
		Source:       stats.Source,
		Distance:     stats.Distance,
		ColdEpisodes: stats.ColdEpisodes,
		WarmEpisodes: stats.WarmEpisodes,
	}, nil
}

// Engine returns the canonical name of the engine that produced the
// policy.
func (p *Policy) Engine() string { return p.p.Engine() }

// EpisodesTrained returns how many learning episodes the policy's
// training run completed: the full budget for a complete run, fewer for
// one checkpointed at its TrainBudget deadline (see Degraded), and 0
// for engines without an episodic learning loop.
func (p *Policy) EpisodesTrained() int { return engine.Episodes(p.p) }

// WarmStartedFrom reports warm-start provenance for policies produced
// by Derive: the source instance's name and the warm-start distance.
// Cold-trained policies return ("", 0).
func (p *Policy) WarmStartedFrom() (source string, distance float64) {
	return engine.WarmStart(p.p)
}

// MatchDistance returns the warm-start distance from the policy's
// training catalog to inst: the fraction of inst's items without an
// exact-id match in the source catalog, in [0, 1]. Serving layers use
// it to rank candidate sources before paying for Derive. Only
// value-based policies carry a catalog; others return an error.
func (p *Policy) MatchDistance(inst *Instance) (float64, error) {
	vp, ok := p.p.(engine.ValuePolicy)
	if !ok || vp.Values() == nil {
		return 0, fmt.Errorf("rlplanner: engine %s policies carry no catalog to match against", p.Engine())
	}
	if inst == nil {
		return 0, fmt.Errorf("rlplanner: nil instance")
	}
	return transfer.Match(vp.Env().Catalog(), inst.inner.Catalog).Distance(), nil
}

// MemoryBytes estimates the policy artifact's resident memory (the Q
// table and compiled action order for value-based engines, a small
// constant for the procedural baselines) — the figure the serving
// metrics aggregate per cache.
func (p *Policy) MemoryBytes() int { return engine.PolicyBytes(p.p) }

// Fingerprint identifies the catalog the policy was trained on; loading
// an artifact against an instance with a different fingerprint fails.
func (p *Policy) Fingerprint() string { return p.p.Fingerprint() }

// Degraded reports the policy's degradation marker: "" for a fully
// trained artifact, "partial" for a SARSA run checkpointed at its
// training deadline (Options.TrainBudget). A partial policy still walks
// the validity-guarded recommendation procedure, so its plans respect
// the hard constraints — they are best-effort on the soft score only.
func (p *Policy) Degraded() string { return engine.Degradation(p.p) }

// Recommend produces a plan from the given start item id ("" uses the
// start the policy was trained with). Safe for concurrent use.
func (p *Policy) Recommend(startID string) (*Plan, error) {
	start := engine.DefaultStart
	if startID != "" {
		idx, ok := p.inst.inner.Catalog.Index(startID)
		if !ok {
			return nil, fmt.Errorf("rlplanner: unknown item %q", startID)
		}
		start = idx
	}
	seq, err := p.p.Recommend(start)
	if err != nil {
		return nil, err
	}
	return newPlan(p.inst, p.p.Hard(), seq), nil
}

// Save writes the policy as a versioned artifact carrying the engine
// name and the training catalog's fingerprint. LoadPolicyArtifact
// restores it.
func (p *Policy) Save(w io.Writer) error { return p.p.Save(w) }

// NewSession opens an interactive session served from this policy with
// k suggestions per round (k ≤ 0 selects 3). Only value-based policies
// (sarsa, qlearning, valueiter) can drive sessions; baseline policies
// return an error.
func (p *Policy) NewSession(k int) (*Session, error) {
	vp, ok := p.p.(engine.ValuePolicy)
	if !ok {
		return nil, fmt.Errorf("rlplanner: engine %s has no action values; interactive sessions need a value-based policy (one of sarsa, qlearning, valueiter)", p.Engine())
	}
	s, err := session.New(vp.Env(), vp.Values(), vp.Start(), k)
	if err != nil {
		return nil, err
	}
	return &Session{inst: p.inst, s: s}, nil
}

// LoadPolicyArtifact restores a policy saved with Policy.Save (or
// Planner.SavePolicy) against the instance, verifying the format version
// and the catalog fingerprint. opts rebind the serving environment the
// same way they would configure training.
func LoadPolicyArtifact(r io.Reader, inst *Instance, opts Options) (*Policy, error) {
	if inst == nil {
		return nil, fmt.Errorf("rlplanner: nil instance")
	}
	pol, err := engine.Load(r, inst.inner, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Policy{inst: inst, p: pol}, nil
}
