package rlplanner

import (
	"context"
	"fmt"
	"io"

	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/session"
)

// Engines lists the registered planning engines: the SARSA core
// ("sarsa", the default), its Q-learning variant ("qlearning"), value
// iteration ("valueiter") and the §IV-A2 baselines ("eda", "omega",
// "gold"). Any of these names — or their aliases, e.g. "vi" — can be
// passed to Train and to the HTTP API's "engine" field.
func Engines() []string { return engine.Names() }

// EngineName resolves an engine name or alias ("" selects the default
// SARSA engine) to its canonical registry name.
func EngineName(name string) (string, error) { return engine.Canonical(name) }

// Policy is an immutable, trained planning artifact: the output of an
// engine's learning (train) phase, decoupled from serving. A Policy
// never mutates, so one policy safely serves many concurrent Recommend
// calls — the train-once / serve-many shape of the §IV-F deployments.
type Policy struct {
	inst *Instance
	p    engine.Policy
}

// Train runs the named engine's training phase on the instance and
// returns the policy artifact. An empty engine name selects the default
// SARSA engine; see Engines for the registry.
func Train(ctx context.Context, inst *Instance, engineName string, opts Options) (*Policy, error) {
	if inst == nil {
		return nil, fmt.Errorf("rlplanner: nil instance")
	}
	pol, err := engine.Train(ctx, engineName, inst.inner, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Policy{inst: inst, p: pol}, nil
}

// Engine returns the canonical name of the engine that produced the
// policy.
func (p *Policy) Engine() string { return p.p.Engine() }

// Fingerprint identifies the catalog the policy was trained on; loading
// an artifact against an instance with a different fingerprint fails.
func (p *Policy) Fingerprint() string { return p.p.Fingerprint() }

// Degraded reports the policy's degradation marker: "" for a fully
// trained artifact, "partial" for a SARSA run checkpointed at its
// training deadline (Options.TrainBudget). A partial policy still walks
// the validity-guarded recommendation procedure, so its plans respect
// the hard constraints — they are best-effort on the soft score only.
func (p *Policy) Degraded() string { return engine.Degradation(p.p) }

// Recommend produces a plan from the given start item id ("" uses the
// start the policy was trained with). Safe for concurrent use.
func (p *Policy) Recommend(startID string) (*Plan, error) {
	start := engine.DefaultStart
	if startID != "" {
		idx, ok := p.inst.inner.Catalog.Index(startID)
		if !ok {
			return nil, fmt.Errorf("rlplanner: unknown item %q", startID)
		}
		start = idx
	}
	seq, err := p.p.Recommend(start)
	if err != nil {
		return nil, err
	}
	return newPlan(p.inst, p.p.Hard(), seq), nil
}

// Save writes the policy as a versioned artifact carrying the engine
// name and the training catalog's fingerprint. LoadPolicyArtifact
// restores it.
func (p *Policy) Save(w io.Writer) error { return p.p.Save(w) }

// NewSession opens an interactive session served from this policy with
// k suggestions per round (k ≤ 0 selects 3). Only value-based policies
// (sarsa, qlearning, valueiter) can drive sessions; baseline policies
// return an error.
func (p *Policy) NewSession(k int) (*Session, error) {
	vp, ok := p.p.(engine.ValuePolicy)
	if !ok {
		return nil, fmt.Errorf("rlplanner: engine %s has no action values; interactive sessions need a value-based policy (one of sarsa, qlearning, valueiter)", p.Engine())
	}
	s, err := session.New(vp.Env(), vp.Values(), vp.Start(), k)
	if err != nil {
		return nil, err
	}
	return &Session{inst: p.inst, s: s}, nil
}

// LoadPolicyArtifact restores a policy saved with Policy.Save (or
// Planner.SavePolicy) against the instance, verifying the format version
// and the catalog fingerprint. opts rebind the serving environment the
// same way they would configure training.
func LoadPolicyArtifact(r io.Reader, inst *Instance, opts Options) (*Policy, error) {
	if inst == nil {
		return nil, fmt.Errorf("rlplanner: nil instance")
	}
	pol, err := engine.Load(r, inst.inner, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Policy{inst: inst, p: pol}, nil
}
