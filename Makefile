GO ?= go

# Packages exercising the worker pool, the scratch-buffer hot path and
# the singleflight serving path — the ones worth a race pass on every
# change.
RACE_PKGS = ./internal/experiments/... ./internal/mdp/... ./internal/sarsa/... ./internal/engine/... ./internal/httpapi/... ./internal/qtable/... ./internal/feedback/... ./internal/bitset/... ./internal/geo/... ./internal/repo/...

# Packages holding the resilience layer and its fault-injection matrix:
# the scriptable fault engine driven through the live HTTP stack
# (panic, hang, malformed policy, scripted failures, admission control)
# plus the daemon's signal-drain tests.
FAULT_PKGS = ./internal/resilience/... ./internal/httpapi/ ./cmd/rlplannerd/

.PHONY: check vet build test race faults repofaults bench-hot bench-json servebench trainbench userbench scalebench mcbench

check: vet build test race faults

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Fault-injection matrix under the race detector: every scripted fault
# must yield a degraded plan or a clean 5xx, never a crash (DESIGN §10).
faults:
	$(GO) test -race $(FAULT_PKGS)

# Disk-fault matrix for the durable policy repository under the race
# detector: ENOSPC mid-write, kill-mid-write crash consistency, failed
# rename/fsync, corrupt-at-boot quarantine, and the cross-process claim
# protocol including stale-lease takeover (DESIGN §15).
repofaults:
	$(GO) test -race ./internal/repo/...
	$(GO) test -race ./internal/httpapi/ -run 'TestRepo|TestPreload'

# Microbenchmarks for the per-step MDP loop; run with -benchmem so alloc
# regressions are visible.
bench-hot:
	$(GO) test -run '^$$' -bench 'BenchmarkEpisodeStep|BenchmarkEpisodeReward|BenchmarkSelectAction' -benchmem ./internal/mdp/... ./internal/sarsa/...

# Machine-readable perf records (BENCH_<id>.json) under results/.
bench-json:
	$(GO) run ./cmd/benchharness -quick -exp fig1a,tab5 -benchjson results

# Serving-latency bench over the live HTTP stack, gated against the
# committed record: a >2x p99 regression fails (DESIGN §11). Writes the
# fresh measurement to /tmp so the committed baseline only moves on
# purpose.
servebench:
	$(GO) run ./cmd/benchharness -serve -serve-baseline results/BENCH_serve.json -benchjson /tmp/rlplanner-servebench

# Multi-core scaling bench: the serve phase reruns at GOMAXPROCS
# 1/2/4/8 with mutex/block profiling on, recording req/s, latency and
# scaling efficiency per point (DESIGN §16). On a ≥4-core host the run
# fails when 4-proc throughput is below 2.5x the 1-proc figure — the
# contention gate for the sharded read path; on smaller hosts the gate
# reports a skip (the sweep still runs, measuring oversubscription).
mcbench:
	$(GO) run ./cmd/benchharness -serve -serve-sweep -serve-sweep-duration 2s -serve-baseline results/BENCH_serve.json -benchjson /tmp/rlplanner-mcbench

# Training-throughput bench (cold-train scaling over worker counts plus
# one warm-start derivation), gated against the committed record: a >2x
# cold-train wall-clock regression fails (DESIGN §12). Same move-the-
# baseline-on-purpose discipline as servebench.
trainbench:
	$(GO) run ./cmd/benchharness -train -train-baseline results/BENCH_train.json -benchjson /tmp/rlplanner-trainbench

# Fleet-personalization bench: a 100k-user zipf workload of plan reads
# and feedback posts over one shared policy, gated against the committed
# record — a >2x p99 regression on the personalized plan path fails, and
# so does an overlay fleet that outgrows its byte budget (DESIGN §13).
userbench:
	$(GO) run ./cmd/benchharness -users 100000 -users-baseline results/BENCH_users.json -benchjson /tmp/rlplanner-userbench

# Catalog-scale bench at the 16k-item point (above every dense
# threshold, fast enough for CI), gated against the committed record: a
# >1.5x resident-bytes growth of the compressed data plane (sparse Q +
# distance store + topic bitsets) fails (DESIGN §14). Same move-the-
# baseline-on-purpose discipline as servebench.
scalebench:
	$(GO) run ./cmd/benchharness -scale -scale-sizes 16384 -scale-baseline results/BENCH_scale.json -benchjson /tmp/rlplanner-scalebench
