GO ?= go

# Packages exercising the worker pool, the scratch-buffer hot path and
# the singleflight serving path — the ones worth a race pass on every
# change.
RACE_PKGS = ./internal/experiments/... ./internal/mdp/... ./internal/sarsa/... ./internal/engine/... ./internal/httpapi/...

.PHONY: check vet build test race bench-hot bench-json

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Microbenchmarks for the per-step MDP loop; run with -benchmem so alloc
# regressions are visible.
bench-hot:
	$(GO) test -run '^$$' -bench 'BenchmarkEpisodeStep|BenchmarkEpisodeReward|BenchmarkSelectAction' -benchmem ./internal/mdp/... ./internal/sarsa/...

# Machine-readable perf records (BENCH_<id>.json) under results/.
bench-json:
	$(GO) run ./cmd/benchharness -quick -exp fig1a,tab5 -benchjson results
