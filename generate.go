package rlplanner

import (
	"github.com/rlplanner/rlplanner/internal/dataset/synth"
)

// GenParams parameterizes the synthetic workload generator — the knob set
// behind the scaling studies. Zero values take documented defaults (see
// each field).
type GenParams struct {
	// Name identifies the instance (default "synthetic").
	Name string
	// Items is the catalog size |I| (default 30).
	Items int
	// Topics is the vocabulary size |T| (default 2·Items).
	Topics int
	// TopicsPerItem is the mean number of topics per item (default 4).
	TopicsPerItem int
	// TopicSkew ≥ 1 concentrates topics on hot themes (default 2.5).
	TopicSkew float64
	// PrereqDensity is the fraction of items with prerequisites
	// (default 0.25).
	PrereqDensity float64
	// Primary and Secondary set the plan split (defaults 5/5).
	Primary, Secondary int
	// Gap is the antecedent gap (default 3).
	Gap int
	// Geo scatters items over a clustered city-scale map and enables the
	// distance constraint, so generated instances exercise the distance
	// store at any catalog size.
	Geo bool
	// Seed makes generation reproducible.
	Seed int64
}

// GenerateInstance builds a random, always-feasible course-planning
// instance from the parameters. Generated instances work with every
// facility of this package and export via Instance.WriteJSON.
func GenerateInstance(p GenParams) (*Instance, error) {
	inner, err := synth.Generate(synth.Params{
		Name:          p.Name,
		Items:         p.Items,
		Topics:        p.Topics,
		TopicsPerItem: p.TopicsPerItem,
		TopicSkew:     p.TopicSkew,
		PrereqDensity: p.PrereqDensity,
		Primary:       p.Primary,
		Secondary:     p.Secondary,
		Gap:           p.Gap,
		Geo:           p.Geo,
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Instance{inner: inner}, nil
}
