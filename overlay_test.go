package rlplanner

import (
	"context"
	"strings"
	"testing"
)

// TestOverlayEmptyBitIdentical is the no-overlay serving guarantee,
// property-tested across every built-in instance (both env kinds): a
// policy serving through an empty overlay — or through no overlay at
// all — produces exactly the plan it produced before the layered-read
// refactor, item for item.
func TestOverlayEmptyBitIdentical(t *testing.T) {
	for _, inst := range Instances() {
		inst := inst
		t.Run(inst.Name(), func(t *testing.T) {
			pol, err := Train(context.Background(), inst, "sarsa", Options{Episodes: 80, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			want, err := pol.Recommend("")
			if err != nil {
				t.Fatal(err)
			}
			ov, err := pol.NewOverlay(0)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range []*Overlay{nil, ov} {
				got, err := pol.RecommendWithOverlay("", o)
				if err != nil {
					t.Fatal(err)
				}
				if strings.Join(got.IDs(), "|") != strings.Join(want.IDs(), "|") {
					t.Fatalf("empty-overlay plan differs:\n%v\n%v", got.IDs(), want.IDs())
				}
				if got.Score != want.Score {
					t.Fatalf("empty-overlay score %v != %v", got.Score, want.Score)
				}
			}
		})
	}
}

// TestOverlayFeedbackPersonalizes: negative feedback on a served plan
// steers the personalized walk away from it, while the base policy (and
// other users) keep serving the original plan.
func TestOverlayFeedbackPersonalizes(t *testing.T) {
	inst, _ := InstanceByName("Univ-1 M.S. DS-CT")
	pol, err := Train(context.Background(), inst, "sarsa", Options{Episodes: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := pol.Recommend("")
	if err != nil {
		t.Fatal(err)
	}
	ov, err := pol.NewOverlay(0)
	if err != nil {
		t.Fatal(err)
	}
	// Strong repeated dislike of the served plan.
	for i := 0; i < 25; i++ {
		n, err := ov.ObserveBinary(base, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("feedback wrote no transitions")
		}
	}
	if ov.Cells() == 0 || ov.MemoryBytes() <= 0 {
		t.Fatalf("overlay stats: cells=%d bytes=%d", ov.Cells(), ov.MemoryBytes())
	}
	personal, err := pol.RecommendWithOverlay("", ov)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(personal.IDs(), "|") == strings.Join(base.IDs(), "|") {
		t.Fatal("strong negative feedback left the plan unchanged")
	}
	// Personalized plans still respect the hard constraints.
	if !personal.SatisfiesConstraints {
		t.Fatalf("personalized plan violates constraints: %v", personal.Violations)
	}
	// The shared base is untouched: a fresh recommendation still matches.
	again, err := pol.Recommend("")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(again.IDs(), "|") != strings.Join(base.IDs(), "|") {
		t.Fatal("overlay feedback leaked into the shared base policy")
	}
	// Neutral feedback writes nothing.
	before := ov.Cells()
	if n, err := ov.ObserveRating(base, 3, 0); err != nil || n != 0 {
		t.Fatalf("neutral rating wrote %d transitions (err %v)", n, err)
	}
	if ov.Cells() != before {
		t.Fatal("neutral rating changed the overlay")
	}
	// Reset restores base-identical serving.
	ov.Reset()
	reset, err := pol.RecommendWithOverlay("", ov)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(reset.IDs(), "|") != strings.Join(base.IDs(), "|") {
		t.Fatal("reset overlay still personalizes")
	}
}

func TestOverlayOnProceduralEngineFails(t *testing.T) {
	inst, _ := InstanceByName("Univ-1 M.S. DS-CT")
	gold, err := Train(context.Background(), inst, "gold", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gold.NewOverlay(0); err == nil {
		t.Fatal("overlay over a value-free engine accepted")
	}
	// Cross-policy overlays are rejected.
	sarsa1, err := Train(context.Background(), inst, "sarsa", Options{Episodes: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sarsa2, err := Train(context.Background(), inst, "sarsa", Options{Episodes: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := sarsa1.NewOverlay(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sarsa2.RecommendWithOverlay("", ov); err == nil {
		t.Fatal("overlay from another policy accepted")
	}
}
