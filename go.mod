module github.com/rlplanner/rlplanner

go 1.22
