package rlplanner

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/session"
)

// Suggestion is one proposed next item of an interactive session.
type Suggestion struct {
	// ID identifies the item.
	ID string
	// Valid reports whether the item fully satisfies the reward gates at
	// this position (guided tier 1).
	Valid bool
	// Reward is the immediate Equation 2 reward of taking the item now.
	Reward float64
	// Q is the learned action value from the current state.
	Q float64
}

// Session is an interactive planning dialogue (§IV-F): the planner
// suggests candidates, the user accepts or rejects, and the planner can
// auto-complete the remainder while honoring every rejection.
type Session struct {
	inst *Instance
	s    *session.Session
}

// StartSession begins an interactive session from the planner's start
// item with k suggestions per round (k ≤ 0 selects 3). Learn (or
// LoadPolicy) must have run first.
func (p *Planner) StartSession(k int) (*Session, error) {
	pol := p.p.Policy()
	if pol == nil {
		return nil, fmt.Errorf("rlplanner: no learned policy (call Learn first)")
	}
	s, err := session.New(p.p.Env(), pol, p.p.SarsaConfig().Start, k)
	if err != nil {
		return nil, err
	}
	return &Session{inst: p.inst, s: s}, nil
}

// Suggestions returns the next candidates in preference order.
func (s *Session) Suggestions() []Suggestion {
	ranked := s.s.Suggestions()
	out := make([]Suggestion, len(ranked))
	for i, r := range ranked {
		out[i] = Suggestion{ID: r.ID, Valid: r.Tier == 1, Reward: r.Reward, Q: r.Q}
	}
	return out
}

// Accept adds an item to the plan.
func (s *Session) Accept(id string) error { return s.s.Accept(id) }

// Reject vetoes an item for the rest of the session.
func (s *Session) Reject(id string) error { return s.s.Reject(id) }

// Done reports whether the plan's budget is exhausted.
func (s *Session) Done() bool { return s.s.Done() }

// PlanIDs returns the items chosen so far.
func (s *Session) PlanIDs() []string { return s.s.PlanIDs() }

// AutoComplete finishes the plan with the planner, honoring rejections,
// and returns the evaluated result.
func (s *Session) AutoComplete() *Plan {
	seq := s.s.AutoComplete()
	return newPlan(s.inst, s.inst.inner.Hard, seq)
}

// Current evaluates the plan as it stands (possibly incomplete).
func (s *Session) Current() *Plan {
	return newPlan(s.inst, s.inst.inner.Hard, s.s.Plan())
}
