package rlplanner

import (
	"bytes"
	"strings"
	"testing"
)

// toySpec is a small custom course instance modeled on Table II.
func toySpec() InstanceSpec {
	return InstanceSpec{
		Name:   "Toy DS",
		Topics: []string{"algorithms", "classification", "clustering", "statistics", "linear-systems", "data-management"},
		Items: []ItemSpec{
			{ID: "DSA", Type: "primary", Credits: 3, Topics: []string{"algorithms"}},
			{ID: "DM", Type: "secondary", Credits: 3, Topics: []string{"classification", "clustering"}},
			{ID: "DA", Type: "primary", Credits: 3, Topics: []string{"statistics"}},
			{ID: "LA", Type: "secondary", Credits: 3, Topics: []string{"linear-systems"}},
			{ID: "BD", Type: "secondary", Credits: 3, Prereq: "DM OR DA", Topics: []string{"data-management"}},
			{ID: "ML", Type: "primary", Credits: 3, Prereq: "LA AND DM", Topics: []string{"classification", "clustering"}},
		},
		Credits: 18, Primary: 3, Secondary: 3, Gap: 2,
	}
}

func TestNewInstanceToyEndToEnd(t *testing.T) {
	inst, err := NewInstance(toySpec())
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumItems() != 6 || inst.IsTrip() {
		t.Fatalf("shape: items=%d trip=%v", inst.NumItems(), inst.IsTrip())
	}
	if inst.GoldScore() != 6 {
		t.Fatalf("derived gold = %v, want plan length 6", inst.GoldScore())
	}
	if inst.DefaultStart() != "DSA" {
		t.Fatalf("default start = %q, want first primary", inst.DefaultStart())
	}

	p, err := NewPlanner(inst, Options{Episodes: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 6 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
	if !plan.SatisfiesConstraints {
		t.Fatalf("custom-instance plan violates constraints: %v", plan.Violations)
	}

	// The gold synthesizer works on custom instances too.
	g, err := GoldStandard(inst)
	if err != nil {
		t.Fatal(err)
	}
	if g.Score != 6 {
		t.Fatalf("gold score = %v", g.Score)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*InstanceSpec)
	}{
		{"empty name", func(s *InstanceSpec) { s.Name = "" }},
		{"bad kind", func(s *InstanceSpec) { s.Kind = "voyage" }},
		{"bad item type", func(s *InstanceSpec) { s.Items[0].Type = "tertiary" }},
		{"unknown topic", func(s *InstanceSpec) { s.Items[0].Topics = []string{"quantum"} }},
		{"dangling prereq", func(s *InstanceSpec) { s.Items[0].Prereq = "GHOST" }},
		{"bad prereq syntax", func(s *InstanceSpec) { s.Items[0].Prereq = "A AND (" }},
		{"duplicate topics", func(s *InstanceSpec) { s.Topics = []string{"a", "a"} }},
		{"bad template token", func(s *InstanceSpec) { s.Template = []string{"primary, ternary"} }},
		{"template split mismatch", func(s *InstanceSpec) { s.Template = []string{"primary, secondary"} }},
		{"unknown ideal topic", func(s *InstanceSpec) { s.IdealTopics = []string{"ghost"} }},
		{"unknown start", func(s *InstanceSpec) { s.DefaultStart = "GHOST" }},
		{"negative credits", func(s *InstanceSpec) { s.Items[0].Credits = -1 }},
	}
	for _, tc := range cases {
		spec := toySpec()
		tc.mutate(&spec)
		if _, err := NewInstance(spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestNewInstanceTripDefaults(t *testing.T) {
	spec := InstanceSpec{
		Name:   "Toy City",
		Kind:   "trip",
		Topics: []string{"museum", "park", "cafe"},
		Items: []ItemSpec{
			{ID: "big museum", Type: "primary", Credits: 2, Topics: []string{"museum"}, Popularity: 5, Lat: 48.86, Lon: 2.34},
			{ID: "green park", Credits: 1, Topics: []string{"park"}, Popularity: 3, Lat: 48.85, Lon: 2.35},
			{ID: "corner cafe", Credits: 1, Topics: []string{"cafe"}, Popularity: 4, Lat: 48.86, Lon: 2.33},
		},
		Credits: 4,
	}
	inst, err := NewInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsTrip() || inst.GoldScore() != 5 {
		t.Fatalf("trip derivation wrong: trip=%v gold=%v", inst.IsTrip(), inst.GoldScore())
	}
	p, err := NewPlanner(inst, Options{Episodes: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCredits > 4 {
		t.Fatalf("trip exceeded budget: %v", plan.TotalCredits)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	// Built-in instances must export and reload faithfully.
	for _, name := range []string{"Univ-1 M.S. DS-CT", "Paris"} {
		orig, err := InstanceByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadInstance(&buf)
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		if loaded.NumItems() != orig.NumItems() {
			t.Fatalf("%s: %d items after round trip, want %d",
				name, loaded.NumItems(), orig.NumItems())
		}
		if loaded.GoldScore() != orig.GoldScore() || loaded.DefaultStart() != orig.DefaultStart() {
			t.Fatalf("%s: metadata changed in round trip", name)
		}
		// Item-level fidelity.
		li, oi := loaded.Items(), orig.Items()
		for i := range oi {
			if li[i].ID != oi[i].ID || li[i].Primary != oi[i].Primary ||
				li[i].Credits != oi[i].Credits || li[i].Prerequisite != oi[i].Prerequisite {
				t.Fatalf("%s: item %d differs: %+v vs %+v", name, i, li[i], oi[i])
			}
		}
	}
}

func TestRoundTrippedInstancePlans(t *testing.T) {
	orig, _ := InstanceByName("Univ-1 M.S. DS-CT")
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Planning on the reloaded instance matches planning on the original.
	a, _ := NewPlanner(orig, Options{Episodes: 150, Seed: 3})
	b, _ := NewPlanner(loaded, Options{Episodes: 150, Seed: 3})
	if err := a.Learn(); err != nil {
		t.Fatal(err)
	}
	if err := b.Learn(); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Plan()
	pb, _ := b.Plan()
	if strings.Join(pa.IDs(), "|") != strings.Join(pb.IDs(), "|") {
		t.Fatalf("round-tripped instance plans differently:\n%v\n%v", pa.IDs(), pb.IDs())
	}
}

func TestLoadInstanceRejectsGarbage(t *testing.T) {
	if _, err := LoadInstance(strings.NewReader("{")); err == nil {
		t.Fatal("truncated json accepted")
	}
	if _, err := LoadInstance(strings.NewReader(`{"name":""}`)); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestGenerateInstancePublicAPI(t *testing.T) {
	inst, err := GenerateInstance(GenParams{Items: 40, Seed: 5, PrereqDensity: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumItems() != 40 {
		t.Fatalf("items = %d", inst.NumItems())
	}
	// Generated instances round-trip through the JSON spec.
	var buf bytes.Buffer
	if err := inst.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumItems() != 40 {
		t.Fatal("round trip lost items")
	}
	// And they plan end to end.
	p, err := NewPlanner(loaded, Options{Episodes: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
	// Invalid parameters surface.
	if _, err := GenerateInstance(GenParams{Items: 4, Primary: 5, Secondary: 5}); err == nil {
		t.Fatal("infeasible params accepted")
	}
}
