package rlplanner

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/feedback"
	"github.com/rlplanner/rlplanner/internal/qtable"
)

// Overlay is a per-user personalization layer over a trained Policy: a
// copy-on-write sparse delta of action values shadowing the policy's
// shared, immutable base. Feedback on served plans writes into the
// overlay only — the base policy continues to serve every other user
// unchanged — and RecommendWithOverlay reads through the layered view
// (overlay first, base second). An overlay with no recorded feedback
// reproduces the policy's plans bit for bit.
//
// Memory per user is bounded (a cell cap with LRU row eviction; see
// MemoryBytes), which is what lets one process carry overlays for a
// large user fleet over a single trained artifact.
//
// An Overlay is not safe for concurrent use; callers (the HTTP per-user
// store) serialize access per user.
type Overlay struct {
	pol *Policy
	o   *qtable.Overlay
}

// NewOverlay creates an empty personalization overlay for the policy,
// storing at most maxCells shadowed action values (≤ 0 selects the
// qtable.DefaultOverlayCells default). Only value-based policies
// (sarsa, qlearning, valueiter) can be layered; baseline engines carry
// no action values and return an error.
func (p *Policy) NewOverlay(maxCells int) (*Overlay, error) {
	lp, ok := engine.Layered(p.p)
	if !ok {
		return nil, fmt.Errorf("rlplanner: engine %s has no action values to personalize", p.Engine())
	}
	return &Overlay{pol: p, o: qtable.NewOverlay(lp.BaseReader(), maxCells)}, nil
}

// RecommendWithOverlay produces a plan reading action values through
// the user's overlay ("" startID uses the trained start). A nil overlay
// — or one with no recorded feedback — serves exactly Recommend.
func (p *Policy) RecommendWithOverlay(startID string, ov *Overlay) (*Plan, error) {
	if ov == nil {
		return p.Recommend(startID)
	}
	if ov.pol != p {
		return nil, fmt.Errorf("rlplanner: overlay belongs to a different policy")
	}
	lp, ok := engine.Layered(p.p)
	if !ok {
		return nil, fmt.Errorf("rlplanner: engine %s has no action values to personalize", p.Engine())
	}
	start := engine.DefaultStart
	if startID != "" {
		idx, ok := p.inst.inner.Catalog.Index(startID)
		if !ok {
			return nil, fmt.Errorf("rlplanner: unknown item %q", startID)
		}
		start = idx
	}
	seq, err := lp.RecommendOver(start, ov.o)
	if err != nil {
		return nil, err
	}
	return newPlan(p.inst, p.p.Hard(), seq), nil
}

// feedbackSig resolves the plan's item indices and applies the signal
// to the overlay's transition values.
func (ov *Overlay) observe(plan *Plan, sig feedback.Signal, rate float64) (int, error) {
	if plan == nil {
		return 0, fmt.Errorf("rlplanner: nil plan")
	}
	c := ov.pol.inst.inner.Catalog
	seq := make([]int, len(plan.Steps))
	for i, s := range plan.Steps {
		idx, ok := c.Index(s.ID)
		if !ok {
			return 0, fmt.Errorf("rlplanner: plan item %q not in instance %s", s.ID, ov.pol.inst.Name())
		}
		seq[i] = idx
	}
	return feedback.ApplyToOverlay(ov.o, seq, sig, rate), nil
}

// ObserveBinary folds useful/not-useful feedback on a served plan into
// the overlay (rate ≤ 0 selects the default aggressiveness). It returns
// the number of plan transitions whose values were adjusted.
func (ov *Overlay) ObserveBinary(plan *Plan, useful bool, rate float64) (int, error) {
	return ov.observe(plan, feedback.Binary(useful), rate)
}

// ObserveRating folds a categorical 1–5 rating into the overlay. A
// neutral rating (3) writes nothing.
func (ov *Overlay) ObserveRating(plan *Plan, rating float64, rate float64) (int, error) {
	return ov.observe(plan, feedback.Rating(rating), rate)
}

// For reports whether the overlay personalizes exactly p. Overlays are
// bound to the policy artifact they were created from; after that
// artifact is evicted and retrained, the stale overlay must be replaced,
// not applied to the new one.
func (ov *Overlay) For(p *Policy) bool { return ov.pol == p }

// MemoryBytes estimates the overlay's resident memory.
func (ov *Overlay) MemoryBytes() int { return ov.o.SizeBytes() }

// Cells returns the number of personalized action values stored.
func (ov *Overlay) Cells() int { return ov.o.Cells() }

// Evictions returns how many rows the overlay's memory bound evicted.
func (ov *Overlay) Evictions() uint64 { return ov.o.Evictions() }

// Reset drops all personalization, returning the overlay to serving the
// base policy's plans exactly.
func (ov *Overlay) Reset() { ov.o.Reset() }
