package dataset

import (
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/item"
)

// MakeTemplate builds a three-permutation interleaving template IT for a
// plan of p primary and s secondary items, in the spirit of the expert
// templates of §II-B: every permutation starts with a primary item, and
// the three are small perturbations of a common alternating backbone —
// realistic expert templates agree on most positions and differ in a few
// local swaps (exactly the character of the paper's Example 1 template,
// whose three permutations share long common substrings). Perturbation
// structure also keeps the minimum-similarity variant informative: a
// sequence following the backbone still matches most positions of every
// permutation. The result is deterministic.
func MakeTemplate(p, s int) constraints.Template {
	base := alternating(p, s)
	return constraints.Template{
		base,
		swapFirst(base),
		swapLast(base),
	}
}

// swapFirst copies perm and swaps the first adjacent unequal pair at
// position ≥ 1 (position 0 stays primary).
func swapFirst(perm []item.Type) []item.Type {
	out := append([]item.Type(nil), perm...)
	for j := 1; j < len(out)-1; j++ {
		if out[j] != out[j+1] {
			out[j], out[j+1] = out[j+1], out[j]
			return out
		}
	}
	return out
}

// swapLast copies perm and swaps the last adjacent unequal pair at
// position ≥ 1.
func swapLast(perm []item.Type) []item.Type {
	out := append([]item.Type(nil), perm...)
	for j := len(out) - 2; j >= 1; j-- {
		if out[j] != out[j+1] {
			out[j], out[j+1] = out[j+1], out[j]
			return out
		}
	}
	return out
}

// alternating yields P S P S … with leftovers appended.
func alternating(p, s int) []item.Type {
	out := make([]item.Type, 0, p+s)
	for p > 0 || s > 0 {
		if p > 0 {
			out = append(out, item.Primary)
			p--
		}
		if s > 0 {
			out = append(out, item.Secondary)
			s--
		}
	}
	return out
}

// paired yields P P S S P P S S … with leftovers appended.
func paired(p, s int) []item.Type {
	out := make([]item.Type, 0, p+s)
	for p > 0 || s > 0 {
		for i := 0; i < 2 && p > 0; i++ {
			out = append(out, item.Primary)
			p--
		}
		for i := 0; i < 2 && s > 0; i++ {
			out = append(out, item.Secondary)
			s--
		}
	}
	return out
}

// backloaded yields one leading primary, then all secondaries, then the
// remaining primaries — the "museums first, relax later" shape of
// Example 2's I2.
func backloaded(p, s int) []item.Type {
	out := make([]item.Type, 0, p+s)
	if p > 0 {
		out = append(out, item.Primary)
		p--
	}
	for ; s > 0; s-- {
		out = append(out, item.Secondary)
	}
	for ; p > 0; p-- {
		out = append(out, item.Primary)
	}
	return out
}
