package univ

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
)

func TestUniv1ProgramSizes(t *testing.T) {
	// §IV-A1: 31, 30, 32 courses for DS-CT, Cybersecurity, CS.
	cases := []struct {
		inst    *dataset.Instance
		courses int
	}{
		{Univ1DSCT(), 31},
		{Univ1Cyber(), 30},
		{Univ1CS(), 32},
	}
	for _, tc := range cases {
		if got := tc.inst.Catalog.Len(); got != tc.courses {
			t.Errorf("%s: %d courses, want %d", tc.inst.Name, got, tc.courses)
		}
		if err := tc.inst.Validate(); err != nil {
			t.Errorf("%s: %v", tc.inst.Name, err)
		}
	}
}

func TestUniv1TopicCounts(t *testing.T) {
	// The paper reports 60, 61, 100 distinct topics. Our title-derived
	// vocabularies land at 60 (exact), 53 and 61; the counts are pinned so
	// regressions in the extraction pipeline are caught. EXPERIMENTS.md
	// documents the deviation for Cybersecurity and CS.
	cases := []struct {
		inst   *dataset.Instance
		topics int
	}{
		{Univ1DSCT(), 60},
		{Univ1Cyber(), 53},
		{Univ1CS(), 61},
	}
	for _, tc := range cases {
		if got := tc.inst.Catalog.Vocabulary().Len(); got != tc.topics {
			t.Errorf("%s: %d topics, want %d", tc.inst.Name, got, tc.topics)
		}
	}
}

func TestUniv1HardConstraints(t *testing.T) {
	inst := Univ1DSCT()
	h := inst.Hard
	if h.Credits != 30 || h.Primary != 5 || h.Secondary != 5 || h.Gap != 3 {
		t.Fatalf("P_hard = %s, want ⟨30, 5, 5, 3⟩", h)
	}
	if inst.GoldScore != 10 {
		t.Fatalf("gold score = %v, want 10", inst.GoldScore)
	}
	if inst.Defaults.Episodes != 500 || inst.Defaults.Alpha != 0.75 || inst.Defaults.Gamma != 0.95 {
		t.Fatalf("defaults = %+v", inst.Defaults)
	}
}

func TestTableVICoursesPresent(t *testing.T) {
	// Every course id of Table VI must exist in the right program with the
	// right title.
	dsct := Univ1DSCT()
	for id, name := range map[string]string{
		"CS 675":   "Machine Learning",
		"CS 677":   "Deep Learning",
		"CS 644":   "Introduction to Big Data",
		"MATH 661": "Applied Statistics",
		"CS 636":   "Data Analytics with R Programming",
		"CS 683":   "Software Project Management",
	} {
		m, ok := dsct.Catalog.ByID(id)
		if !ok {
			t.Errorf("DS-CT missing %s", id)
			continue
		}
		if m.Name != name {
			t.Errorf("%s name = %q, want %q", id, m.Name, name)
		}
	}
	cs := Univ1CS()
	for _, id := range []string{"CS 610", "CS 608", "CS 656", "CS 667", "CS 652",
		"CS 634", "CS 675", "CS 631", "CS 630", "CS 700B"} {
		if _, ok := cs.Catalog.ByID(id); !ok {
			t.Errorf("M.S. CS missing %s", id)
		}
	}
}

func TestCoreEleectiveRolesMatchTransferTable(t *testing.T) {
	// Table V: CS 675 is core in DS-CT but elective in M.S. CS; CS 610 is
	// core in M.S. CS but elective in DS-CT.
	dsct, cs := Univ1DSCT(), Univ1CS()
	check := func(inst *dataset.Instance, id string, want item.Type) {
		t.Helper()
		m, ok := inst.Catalog.ByID(id)
		if !ok {
			t.Fatalf("%s missing %s", inst.Name, id)
		}
		if m.Type != want {
			t.Errorf("%s %s type = %v, want %v", inst.Name, id, m.Type, want)
		}
	}
	check(dsct, "CS 675", item.Primary)
	check(cs, "CS 675", item.Secondary)
	check(cs, "CS 610", item.Primary)
	check(dsct, "CS 610", item.Secondary)
}

func TestDefaultStartsAreCores(t *testing.T) {
	// Templates begin with a primary item, so the Table XI/XIV starting
	// points must be core courses.
	for _, inst := range append(Univ1All(), Univ2DS()) {
		m, ok := inst.Catalog.ByID(inst.DefaultStart)
		if !ok {
			t.Fatalf("%s: start %q missing", inst.Name, inst.DefaultStart)
		}
		if m.Type != item.Primary {
			t.Errorf("%s: start %s is %v", inst.Name, inst.DefaultStart, m.Type)
		}
	}
}

func TestPrereqsPrunedToProgram(t *testing.T) {
	// Every prerequisite reference inside a program must resolve within it
	// (catalog construction enforces this; double-check explicitly).
	for _, inst := range append(Univ1All(), Univ2DS()) {
		for i := 0; i < inst.Catalog.Len(); i++ {
			m := inst.Catalog.At(i)
			for _, ref := range prereq.ReferencedItems(m.Prereq) {
				if _, ok := inst.Catalog.Index(ref); !ok {
					t.Errorf("%s: %s references %s outside program", inst.Name, m.ID, ref)
				}
			}
		}
	}
}

func TestUniv2Shape(t *testing.T) {
	inst := Univ2DS()
	if inst.Catalog.Len() != 36 {
		t.Fatalf("Univ-2 has %d courses, want 36", inst.Catalog.Len())
	}
	if inst.Hard.Primary != 7 || inst.Hard.Secondary != 8 || inst.Hard.Credits != 45 {
		t.Fatalf("Univ-2 P_hard = %s", inst.Hard)
	}
	if inst.GoldScore != 15 {
		t.Fatalf("gold = %v, want 15", inst.GoldScore)
	}
	if len(inst.Defaults.CategoryWeights) != 6 {
		t.Fatalf("category weights = %v", inst.Defaults.CategoryWeights)
	}
	if inst.Defaults.Episodes != 100 {
		t.Fatalf("N = %d, want 100", inst.Defaults.Episodes)
	}
	// Every course must carry a valid sub-discipline.
	counts := make([]int, 6)
	for i := 0; i < inst.Catalog.Len(); i++ {
		cat := inst.Catalog.At(i).Category
		if cat < 0 || cat > 5 {
			t.Fatalf("course %s has category %d", inst.Catalog.At(i).ID, cat)
		}
		counts[cat]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("sub-discipline %s has no courses", SubDisciplines()[c])
		}
	}
	if len(SubDisciplines()) != 6 {
		t.Fatal("want 6 sub-disciplines")
	}
}

func TestPruneExpr(t *testing.T) {
	has := func(ok ...string) func(string) bool {
		set := map[string]bool{}
		for _, s := range ok {
			set[s] = true
		}
		return func(id string) bool { return set[id] }
	}
	e := prereq.MustParse("A OR B")
	if got := pruneExpr(e, has("B")); prereq.Format(got) != "[B]" {
		t.Fatalf("OR prune = %s", prereq.Format(got))
	}
	if got := pruneExpr(e, has()); got != nil {
		t.Fatalf("full OR prune = %v", got)
	}
	e = prereq.MustParse("A AND B")
	if got := pruneExpr(e, has("A")); prereq.Format(got) != "[A]" {
		t.Fatalf("AND prune = %s", prereq.Format(got))
	}
	e = prereq.MustParse("(A OR B) AND C")
	got := pruneExpr(e, has("A", "C"))
	if prereq.Format(got) != "[A AND C]" {
		t.Fatalf("nested prune = %s", prereq.Format(got))
	}
	if pruneExpr(nil, has("A")) != nil {
		t.Fatal("nil prune should be nil")
	}
}

func TestFullUniv1Shape(t *testing.T) {
	u := FullUniv1()
	if u.Catalog.Len() != 1216 {
		t.Fatalf("FullUniv1 = %d courses, want 1216", u.Catalog.Len())
	}
	if len(u.Programs) != 126 {
		t.Fatalf("FullUniv1 = %d programs, want 126", len(u.Programs))
	}
	if len(u.Schools) != 6 {
		t.Fatalf("FullUniv1 = %d schools, want 6", len(u.Schools))
	}
	// The real master courses are included verbatim.
	if _, ok := u.Catalog.ByID("CS 675"); !ok {
		t.Fatal("master course CS 675 missing from full catalog")
	}
	for name, ids := range u.Programs {
		if len(ids) == 0 {
			t.Fatalf("program %s is empty", name)
		}
		for _, id := range ids {
			if _, ok := u.Catalog.Index(id); !ok {
				t.Fatalf("program %s references unknown %s", name, id)
			}
		}
	}
}

func TestFullUniv2Shape(t *testing.T) {
	u := FullUniv2()
	if u.Catalog.Len() != 3742 {
		t.Fatalf("FullUniv2 = %d courses, want 3742", u.Catalog.Len())
	}
	if len(u.Programs) != 4 {
		t.Fatalf("FullUniv2 = %d programs, want 4", len(u.Programs))
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a, b := FullUniv1(), FullUniv1()
	if a.Catalog.Len() != b.Catalog.Len() {
		t.Fatal("nondeterministic size")
	}
	for i := 0; i < a.Catalog.Len(); i++ {
		if a.Catalog.At(i).ID != b.Catalog.At(i).ID || a.Catalog.At(i).Name != b.Catalog.At(i).Name {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a.Catalog.At(i), b.Catalog.At(i))
		}
	}
}

func TestGoldFeasibility(t *testing.T) {
	// Each program must admit at least one constraint-perfect plan; verify
	// constructively that enough prereq-free cores and electives exist to
	// fill a 5+5 (or 7+8) plan with gaps satisfiable.
	for _, inst := range append(Univ1All(), Univ2DS()) {
		var freeCores, freeElectives int
		for i := 0; i < inst.Catalog.Len(); i++ {
			m := inst.Catalog.At(i)
			if m.Prereq != nil {
				continue
			}
			if m.Type == item.Primary {
				freeCores++
			} else {
				freeElectives++
			}
		}
		// Within the first gap positions no prerequisite can be satisfied,
		// so a perfect plan needs some prereq-free items up front; cores
		// with prerequisites can occupy later slots. (The gold synthesizer
		// test proves full feasibility constructively.)
		if freeCores < 2 {
			t.Errorf("%s: only %d prereq-free cores", inst.Name, freeCores)
		}
		if freeElectives < inst.Hard.Gap {
			t.Errorf("%s: only %d prereq-free electives for gap %d",
				inst.Name, freeElectives, inst.Hard.Gap)
		}
		if inst.Catalog.NumPrimary() < inst.Hard.Primary {
			t.Errorf("%s: %d cores for %d primary slots",
				inst.Name, inst.Catalog.NumPrimary(), inst.Hard.Primary)
		}
	}
}
