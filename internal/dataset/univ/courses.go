// Package univ synthesizes the two university datasets of §IV-A1.
//
// Univ-1 mirrors the NJIT extraction: a 1216-course catalog spanning 126
// degree programs in 6 schools, with three focus M.S. programs — Data
// Science Computational Track (31 courses), Cybersecurity (30) and
// Computer Science (32). The focus programs embed the real course ids and
// titles the paper quotes (Table VI and the robustness tables), completed
// with realistic graduate courses; topic vocabularies are built from the
// course titles exactly as §IV-A1 describes (noun-ish extraction plus
// stopword removal via the textproc substrate).
//
// Univ-2 mirrors the Stanford extraction: a 3742-course catalog over 4
// departments with an M.S. Data Science program of 36 courses organised in
// the six sub-disciplines a–f the paper lists, each carrying one of the
// w1..w6 reward weights.
package univ

// courseDef is one master-table course. The master table is the union of
// courses that focus programs draw from; prerequisite expressions reference
// master ids and are pruned to each program's subset at build time.
type courseDef struct {
	id     string
	name   string
	prereq string // AND/OR expression over master ids; "" = none
	desc   string // one-line catalog description
}

// njitMaster is the Univ-1 master course table. It contains every course
// id the paper quotes (CS 610/608/630/631/634/636/639/644/645/652/656/667/
// 675/677/683/696/700B/704 and MATH 661) plus enough realistic graduate
// courses to populate the three focus programs.
var njitMaster = []courseDef{
	{"CS 608", "Cryptography and Security", "",
		"Symmetric and public-key cryptography, authentication protocols and their role in securing systems."},
	{"CS 610", "Data Structures and Algorithms", "",
		"Fundamental data structures, algorithm design paradigms and asymptotic analysis for graduate study."},
	{"CS 630", "Operating System Design", "",
		"Process management, scheduling, memory management and file systems in modern operating systems."},
	{"CS 631", "Data Management System Design", "",
		"Relational model, query processing, transactions and physical design of database management systems."},
	{"CS 632", "Advanced Database System Design", "CS 631",
		"Query optimization, distributed and parallel databases, and modern storage engines."},
	{"CS 633", "Distributed Systems", "CS 630",
		"Consistency, replication, fault tolerance and coordination in distributed systems."},
	{"CS 634", "Data Mining", "CS 631 OR CS 636",
		"Classification, clustering, association rules and evaluation methodology for mining large data sets."},
	{"CS 636", "Data Analytics with R Programming", "",
		"Exploratory analysis, statistical modeling and visualization workflows in the R ecosystem."},
	{"CS 639", "Electronic Medical Records: Medical Terminologies and Computational Implementation", "",
		"Medical terminologies, electronic record standards and their computational implementation."},
	{"CS 643", "Cloud Computing", "CS 630",
		"Virtualization, elastic resource management and programming models for cloud platforms."},
	{"CS 644", "Introduction to Big Data", "CS 610 OR CS 636",
		"Distributed storage and processing frameworks for very large data collections."},
	{"CS 645", "Security and Privacy in Computer Systems", "",
		"Threat models, access control, and privacy-preserving mechanisms in computer systems."},
	{"CS 646", "Network Protocols Security", "CS 652 OR CS 656",
		"Protocol-level attacks and defenses across the network stack."},
	{"CS 647", "Counter Hacking Techniques", "CS 645",
		"Offensive techniques, penetration testing and counter-hacking methodology."},
	{"CS 648", "Digital Forensics", "CS 645 AND IS 680",
		"Evidence acquisition, file-system forensics and incident reconstruction."},
	{"CS 652", "Computer Networks: Architectures, Protocols and Standards", "",
		"Layered architectures, routing, transport and standardization of computer networks."},
	{"CS 656", "Internet and Higher-Layer Protocols", "",
		"Internet addressing, inter-domain routing and higher-layer protocol design."},
	{"CS 657", "Performance Modeling of Computer Networks", "CS 656",
		"Analytic and simulation-based performance modeling of networked systems."},
	{"CS 659", "Image Processing and Analysis", "",
		"Filtering, segmentation and feature extraction for image analysis pipelines."},
	{"CS 661", "Systems Simulation", "",
		"Discrete-event simulation methodology, random variate generation and output analysis."},
	{"CS 667", "Design Techniques for Algorithms", "CS 610",
		"Greedy, divide-and-conquer, dynamic programming and approximation techniques for algorithm design."},
	{"CS 668", "Parallel Algorithms", "CS 667",
		"Work-depth analysis and algorithm design for shared- and distributed-memory parallel machines."},
	{"CS 670", "Artificial Intelligence", "",
		"Search, knowledge representation, planning and reasoning under uncertainty."},
	{"CS 673", "Software Design and Production Methodology", "",
		"Software lifecycle models, design methodology and production practices for large systems."},
	{"CS 675", "Machine Learning", "",
		"Supervised and unsupervised learning, model selection and generalization theory."},
	// Deep Learning wants both Machine Learning and Linear Algebra first —
	// the intro example's "take Linear Algebra before Machine Learning"
	// dependency family.
	{"CS 677", "Deep Learning", "CS 675 AND MATH 630",
		"Neural architectures, backpropagation, convolutional and recurrent networks at scale."},
	{"CS 678", "Reinforcement Learning", "CS 675",
		"Markov decision processes, temporal-difference learning and policy optimization."},
	{"CS 680", "Linux Kernel Programming", "CS 630",
		"Kernel internals, modules and systems programming on Linux."},
	{"CS 683", "Software Project Management", "",
		"Planning, estimation, risk and team management for software projects."},
	{"CS 684", "Software Testing and Quality Assurance", "CS 683",
		"Test design, coverage criteria and quality assurance processes."},
	{"CS 696", "Network Management and Security", "CS 652 OR CS 656",
		"Network monitoring, management protocols and operational security."},
	{"CS 698", "Data Visualization Techniques", "",
		"Perception-driven design of charts, dashboards and interactive visual analytics."},
	{"CS 700B", "Master's Project", "",
		"Capstone master's project under faculty supervision."},
	{"CS 704", "Special Topics in Data Science", "",
		"Selected advanced topics at the research frontier of data science."},
	{"CS 732", "Advanced Machine Learning", "CS 675",
		"Kernel methods, ensembles, and statistical learning theory beyond the introductory course."},
	{"CS 786", "Natural Language Processing", "CS 675",
		"Statistical and neural methods for analyzing and generating natural language."},
	{"MATH 611", "Numerical Methods for Computation", "",
		"Numerical linear algebra, interpolation and quadrature with computational practice."},
	{"MATH 630", "Linear Algebra and Applications", "",
		"Vector spaces, eigenvalue problems and matrix decompositions with applications."},
	{"MATH 644", "Regression Analysis Methods", "MATH 661",
		"Linear and generalized regression models, diagnostics and model selection."},
	{"MATH 661", "Applied Statistics", "",
		"Estimation, hypothesis testing and experimental design for applied work."},
	{"MATH 662", "Probability Distributions", "",
		"Distribution theory, moment generating functions and limit theorems."},
	{"MATH 665", "Statistical Inference", "MATH 661",
		"Likelihood-based inference, sufficiency and asymptotic theory."},
	{"MATH 678", "Optimization Methods", "",
		"Convex optimization, duality and numerical methods for constrained problems."},
	{"IS 601", "Web Systems Development", "",
		"Full-stack web systems development with modern frameworks."},
	{"IS 631", "Enterprise Database Management", "",
		"Enterprise data architectures, warehousing and administration."},
	{"IS 661", "Knowledge Management", "",
		"Capture, organization and reuse of organizational knowledge."},
	{"IS 663", "System Analysis and Design", "",
		"Requirements elicitation, modeling and system design methods."},
	{"IS 680", "Information Systems Auditing", "",
		"Controls, compliance and audit methodology for information systems."},
	{"IS 681", "Computer Security Auditing", "IS 680",
		"Audit of security controls, vulnerability assessment and reporting."},
	{"IS 682", "Forensic Auditing for Computing Security", "IS 680",
		"Forensic auditing techniques for computing security investigations."},
}

// programSpec declares one Univ-1 focus program: which master courses it
// contains and which of them are core (primary). Everything else in the
// course list is an elective (secondary).
type programSpec struct {
	name    string
	start   string // Table III / Table XI default starting course
	courses []string
	cores   []string
}

// univ1Programs defines the three Univ-1 focus programs of §IV-A1.
// Course/core membership reflects the paper's transfer-learning plans:
// CS 675 is core in DS-CT and an elective in M.S. CS, CS 610 core in M.S.
// CS and an elective in DS-CT, and so on.
var univ1Programs = []programSpec{
	// Core sets are deliberately prerequisite-entangled: every program has
	// exactly as many "easily placeable" cores as core slots, and some
	// cores depend on specific electives or on core ordering. A myopic
	// planner that sequences the wrong courses early finds the remaining
	// core slots unsatisfiable — the lookahead RL-Planner learns and the
	// greedy baselines lack (§IV-B).
	{
		name:  "Univ-1 M.S. DS-CT",
		start: "CS 675",
		courses: []string{
			// 6 cores (CS 644 and CS 634 require CS 636 three slots
			// earlier; CS 677 additionally needs the elective MATH 630).
			"CS 675", "CS 677", "CS 644", "CS 636", "CS 634", "MATH 661",
			// 25 electives.
			"CS 610", "CS 608", "CS 630", "CS 631", "CS 633", "CS 639",
			"CS 643", "CS 645", "CS 652", "CS 656", "CS 659", "CS 661",
			"CS 667", "CS 670", "CS 673", "CS 683", "CS 696", "CS 698",
			"CS 700B", "CS 704", "CS 732", "CS 786", "MATH 630", "MATH 644",
			"MATH 662",
		},
		cores: []string{"CS 675", "CS 677", "CS 644", "CS 636", "CS 634", "MATH 661"},
	},
	{
		name:  "Univ-1 M.S. Cybersecurity",
		start: "CS 608",
		courses: []string{
			// 6 cores (CS 646 and CS 696 both funnel through CS 652;
			// CS 648 additionally needs the elective IS 680).
			"CS 608", "CS 645", "CS 652", "CS 646", "CS 696", "CS 648",
			// 24 electives.
			"CS 610", "CS 630", "CS 631", "CS 633", "CS 634", "CS 643",
			"CS 644", "CS 647", "CS 656", "CS 657", "CS 661", "CS 667",
			"CS 670", "CS 673", "CS 675", "CS 680", "CS 683", "CS 700B",
			"IS 680", "IS 681", "IS 682", "IS 663", "MATH 661", "CS 684",
		},
		cores: []string{"CS 608", "CS 645", "CS 652", "CS 646", "CS 696", "CS 648"},
	},
	{
		name:  "Univ-1 M.S. CS",
		start: "CS 610",
		courses: []string{
			// 6 cores (CS 633 and CS 643 both funnel through CS 630;
			// CS 677 additionally needs the elective CS 675).
			"CS 610", "CS 630", "CS 700B", "CS 633", "CS 643", "CS 677",
			// 26 electives.
			"CS 608", "CS 631", "CS 632", "CS 634", "CS 636", "CS 639",
			"CS 644", "CS 645", "CS 646", "CS 647", "CS 652", "CS 656",
			"CS 657", "CS 659", "CS 661", "CS 667", "CS 668", "CS 670",
			"CS 673", "CS 675", "CS 680", "CS 683", "CS 684", "CS 696",
			"CS 704", "MATH 661",
		},
		cores: []string{"CS 610", "CS 630", "CS 700B", "CS 633", "CS 643", "CS 677"},
	},
}

// stanfordCourse is one Univ-2 course: id, title, sub-discipline a–f
// (encoded 0–5), whether it is core in the M.S. DS program, and its
// prerequisite expression over Univ-2 ids.
type stanfordCourse struct {
	id     string
	name   string
	cat    int // 0=a Math/Stat, 1=b Experimentation, 2=c Scientific Computing, 3=d Applied ML & DS, 4=e Practical, 5=f Elective
	core   bool
	prereq string
	desc   string // one-line catalog description
}

// stanfordDS is the Univ-2 M.S. Data Science program: 36 courses over the
// six sub-disciplines of §IV-A1, including the start items of Table XIV
// (STATS 263, MS&E 237).
var stanfordDS = []stanfordCourse{
	// a. Mathematical and Statistical Foundations.
	{"STATS 200", "Introduction to Statistical Inference", 0, true, "",
		"Point estimation, confidence intervals and testing from a rigorous foundation."},
	{"CME 302", "Numerical Linear Algebra", 0, true, "",
		"Direct and iterative methods for linear systems and eigenvalue problems."},
	{"CME 200", "Linear Algebra with Application to Engineering Computations", 0, false, "",
		"Matrix computations for engineering applications."},
	{"MATH 230A", "Theory of Probability", 0, false, "",
		"Measure-theoretic probability: laws of large numbers and central limit theory."},
	{"STATS 217", "Introduction to Stochastic Processes", 0, false, "STATS 200",
		"Markov chains, Poisson processes and renewal theory."},
	{"STATS 305A", "Applied Statistics: Linear Models", 0, false, "STATS 200",
		"Linear models, diagnostics and applied regression practice."},
	{"CME 308", "Stochastic Methods in Engineering", 0, false, "MATH 230A",
		"Stochastic modeling and Monte Carlo methods in engineering."},
	// b. Experimentation.
	{"STATS 263", "Design of Experiments", 1, true, "",
		"Randomization, blocking, factorial designs and analysis of experiments."},
	{"MS&E 237", "Experimental Design for Product Analytics", 1, false, "",
		"Designing and analyzing product experiments at scale."},
	{"STATS 209", "Causal Inference for Observational Studies", 1, false, "STATS 200",
		"Potential outcomes, matching and sensitivity analysis for causal claims."},
	// c. Scientific Computing.
	{"CME 211", "Software Development for Scientists and Engineers", 2, true, "",
		"Software engineering practice in Python and C++ for scientific computing."},
	{"CME 212", "Advanced Software Development for Scientists and Engineers", 2, false, "CME 211",
		"Performance, abstraction and generic programming for scientific codes."},
	{"CME 213", "Introduction to Parallel Computing", 2, false, "CME 211",
		"CUDA, OpenMP and MPI programming for numerical workloads."},
	{"CS 149", "Parallel Computing", 2, false, "",
		"Parallel architectures and programming models."},
	{"CME 216", "Machine Learning for Computational Engineering", 2, false, "CME 211",
		"Machine-learned surrogates and differentiable programming for engineering."},
	// d. Applied Machine Learning and Data Science.
	{"CS 229", "Machine Learning", 3, true, "",
		"Supervised, unsupervised and reinforcement learning with their theory."},
	{"CS 230", "Deep Learning", 3, true, "CS 229",
		"Deep neural network design, optimization and practical methodology."},
	{"CS 224N", "Natural Language Processing with Deep Learning", 3, false, "CS 229",
		"Distributed word representations, attention and large language models."},
	{"CS 231N", "Convolutional Neural Networks for Visual Recognition", 3, false, "CS 229",
		"Convolutional architectures for recognition, detection and segmentation."},
	{"CS 234", "Reinforcement Learning", 3, false, "CS 229",
		"Policy evaluation, exploration and deep reinforcement learning."},
	{"CS 246", "Mining Massive Data Sets", 3, false, "",
		"Streaming, locality-sensitive hashing and large-graph algorithms."},
	{"STATS 202", "Data Mining and Analysis", 3, false, "",
		"Applied data mining and statistical learning with case studies."},
	{"STATS 315A", "Modern Applied Statistics: Learning", 3, false, "STATS 305A",
		"Modern statistical learning: regularization, trees and ensembles."},
	{"CS 221", "Artificial Intelligence: Principles and Techniques", 3, false, "",
		"Foundations of artificial intelligence: search, inference, learning."},
	// e. Practical Component. CS 341 is a core that depends on the
	// elective CS 246 — the lookahead dependency of this program.
	{"STATS 390", "Statistical Consulting Workshop", 4, false, "STATS 200",
		"Supervised consulting on real statistical problems."},
	{"CS 341", "Project in Mining Massive Data Sets", 4, true, "CS 246 OR STATS 202",
		"A quarter-long mining project on a real massive dataset."},
	{"MS&E 108", "Industry Capstone Project in Data Science", 4, false, "",
		"Industry-sponsored capstone in data science."},
	// f. Electives in data science.
	{"CS 145", "Data Management and Data Systems", 5, false, "",
		"Relational databases, SQL and data system internals."},
	{"CS 245", "Principles of Data-Intensive Systems", 5, false, "CS 145",
		"Storage, indexing, query execution and transactional systems."},
	{"CS 224W", "Machine Learning with Graphs", 5, false, "CS 229",
		"Representation learning and analytics on graphs."},
	{"CS 247", "Human-Computer Interaction Design Studio", 5, false, "",
		"Studio practice in interaction design for data products."},
	{"STATS 285", "Massive Computational Experiments in Data Science", 5, false, "STATS 200",
		"Infrastructure and practice for massive computational experiments."},
	{"BIODS 220", "Artificial Intelligence in Healthcare", 5, false, "CS 229",
		"Machine learning applications across healthcare."},
	{"MS&E 231", "Introduction to Computational Social Science", 5, false, "",
		"Computational methods for social data."},
	{"STATS 191", "Introduction to Applied Statistics", 5, false, "",
		"Applied statistics with regression focus for beginners."},
	{"CME 241", "Reinforcement Learning for Stochastic Control Problems in Finance", 5, false, "CS 229",
		"Reinforcement learning methods for financial stochastic control."},
}
