package univ

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/textproc"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// CreditsPerCourse is the uniform graduate course credit value; 30
// required credits therefore translate to trajectories of H = 10 courses
// for Univ-1 (§III-A) and 45 credits to H = 15 for Univ-2.
const CreditsPerCourse = 3

// univ1Hard is P_hard for every Univ-1 program: ⟨30, 5, 5, 3⟩ (§II-B.1).
func univ1Hard() constraints.Hard {
	return constraints.Hard{
		Credits:    30,
		CreditMode: constraints.MinCredits,
		Primary:    5,
		Secondary:  5,
		Gap:        3,
	}
}

// univ1Defaults are the Table III defaults for Univ-1: N = 500, α = 0.75,
// γ = 0.95, ε = 0.0025, δ/β = 0.8/0.2 and the best Univ-1 type weights
// w1/w2 = 0.6/0.4 (Table XI).
func univ1Defaults() dataset.Defaults {
	return dataset.Defaults{
		Episodes: 500,
		Alpha:    0.75,
		Gamma:    0.95,
		Epsilon:  0.0025,
		Delta:    0.8, Beta: 0.2,
		W1: 0.6, W2: 0.4,
		Sim: seqsim.Average,
	}
}

// masterByID indexes the Univ-1 master table.
var masterByID = func() map[string]courseDef {
	m := make(map[string]courseDef, len(njitMaster))
	for _, c := range njitMaster {
		if _, dup := m[c.id]; dup {
			panic(fmt.Sprintf("univ: duplicate master id %s", c.id))
		}
		m[c.id] = c
	}
	return m
}()

// pruneExpr restricts a prerequisite expression to a program's course set:
// references to courses outside the program are dropped (an OR can be
// satisfied by any remaining branch; an AND only constrains the branches
// that exist in the program). It returns nil when nothing remains.
func pruneExpr(e prereq.Expr, has func(string) bool) prereq.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case prereq.Ref:
		if has(string(x)) {
			return x
		}
		return nil
	case prereq.And:
		var kept prereq.And
		for _, sub := range x {
			if p := pruneExpr(sub, has); p != nil {
				kept = append(kept, p)
			}
		}
		switch len(kept) {
		case 0:
			return nil
		case 1:
			return kept[0]
		default:
			return kept
		}
	case prereq.Or:
		var kept prereq.Or
		for _, sub := range x {
			if p := pruneExpr(sub, has); p != nil {
				kept = append(kept, p)
			}
		}
		switch len(kept) {
		case 0:
			return nil
		case 1:
			return kept[0]
		default:
			return kept
		}
	default:
		panic(fmt.Sprintf("univ: unknown expression type %T", e))
	}
}

// buildProgram assembles one Univ-1 focus program instance from its spec.
func buildProgram(spec programSpec) (*dataset.Instance, error) {
	inProgram := make(map[string]bool, len(spec.courses))
	for _, id := range spec.courses {
		if _, ok := masterByID[id]; !ok {
			return nil, fmt.Errorf("univ: program %s references unknown course %s", spec.name, id)
		}
		if inProgram[id] {
			return nil, fmt.Errorf("univ: program %s lists %s twice", spec.name, id)
		}
		inProgram[id] = true
	}
	core := make(map[string]bool, len(spec.cores))
	for _, id := range spec.cores {
		if !inProgram[id] {
			return nil, fmt.Errorf("univ: program %s core %s not in course list", spec.name, id)
		}
		core[id] = true
	}

	// Topic vocabulary from course titles (§IV-A1).
	titles := make([]string, len(spec.courses))
	for i, id := range spec.courses {
		titles[i] = masterByID[id].name
	}
	vocab, err := topics.NewVocabulary(textproc.BuildVocabulary(titles))
	if err != nil {
		return nil, err
	}

	// Courses cover more topics than their titles name (the paper's Table
	// II has Data Mining covering Classification and Clustering): syllabus
	// topics are drawn deterministically from the program vocabulary. The
	// resulting overlap saturates T_current over a plan, which is what
	// makes the ε coverage gate bind in the later plan positions.
	syllabus := rand.New(rand.NewSource(int64(len(spec.name)) + 0x5EED))

	items := make([]item.Item, 0, len(spec.courses))
	for _, id := range spec.courses {
		def := masterByID[id]
		vec, err := vocab.Vector(textproc.ExtractTopics(def.name)...)
		if err != nil {
			return nil, err
		}
		for extra := 4 + syllabus.Intn(3); extra > 0; extra-- {
			vec.Set(skewedTopic(syllabus, vocab.Len()))
		}
		expr, err := prereq.Parse(def.prereq)
		if err != nil {
			return nil, fmt.Errorf("univ: %s prereq: %w", id, err)
		}
		ty := item.Secondary
		if core[id] {
			ty = item.Primary
		}
		items = append(items, item.Item{
			ID:          id,
			Name:        def.name,
			Description: def.desc,
			Type:        ty,
			Credits:     CreditsPerCourse,
			Prereq:      pruneExpr(expr, func(ref string) bool { return inProgram[ref] }),
			Topics:      vec,
			Category:    item.NoCategory,
		})
	}
	catalog, err := item.NewCatalog(vocab, items)
	if err != nil {
		return nil, err
	}

	hard := univ1Hard()
	// T_ideal covers the program's full topic set (§IV-A3 sets |T_ideal|
	// to the program's distinct-topic count).
	ideal := bitset.New(vocab.Len())
	for i := 0; i < vocab.Len(); i++ {
		ideal.Set(i)
	}
	inst := &dataset.Instance{
		Name:         spec.name,
		Kind:         dataset.CoursePlanning,
		Catalog:      catalog,
		Hard:         hard,
		Soft:         constraints.Soft{Ideal: ideal, Template: dataset.MakeTemplate(hard.Primary, hard.Secondary)},
		DefaultStart: spec.start,
		Defaults:     univ1Defaults(),
		GoldScore:    10,
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// skewedTopic samples a vocabulary index with a Zipf-like skew toward the
// low indices: syllabus topics cluster on a program's hot themes (every
// data-science course touches "data", "learning", …), so the shared hot
// region saturates as a plan grows and the ε coverage gate starts to bind
// in the later plan positions — the behaviour the robustness study's ε
// sweep exhibits.
func skewedTopic(rng *rand.Rand, n int) int {
	i := int(float64(n) * math.Pow(rng.Float64(), 2.5))
	if i >= n {
		i = n - 1
	}
	return i
}

// mustBuild panics on generator bugs — the specs are compile-time data.
func mustBuild(spec programSpec) *dataset.Instance {
	inst, err := buildProgram(spec)
	if err != nil {
		panic(err)
	}
	return inst
}

// Univ1DSCT returns the Univ-1 M.S. Data Science (Computational Track)
// instance: 31 courses.
func Univ1DSCT() *dataset.Instance { return mustBuild(univ1Programs[0]) }

// Univ1Cyber returns the Univ-1 M.S. Cybersecurity instance: 30 courses.
func Univ1Cyber() *dataset.Instance { return mustBuild(univ1Programs[1]) }

// Univ1CS returns the Univ-1 M.S. Computer Science instance: 32 courses.
func Univ1CS() *dataset.Instance { return mustBuild(univ1Programs[2]) }

// Univ1All returns the three Univ-1 focus programs.
func Univ1All() []*dataset.Instance {
	return []*dataset.Instance{Univ1DSCT(), Univ1Cyber(), Univ1CS()}
}

// Univ2DS returns the Univ-2 (Stanford-style) M.S. Data Science instance:
// 36 courses in six sub-disciplines, Hard = ⟨45, 7, 8, 3⟩, trajectories of
// H = 15 courses, category reward weights w1..w6 of Table III.
func Univ2DS() *dataset.Instance {
	titles := make([]string, len(stanfordDS))
	for i, c := range stanfordDS {
		titles[i] = c.name
	}
	vocab, err := topics.NewVocabulary(textproc.BuildVocabulary(titles))
	if err != nil {
		panic(err)
	}
	inProgram := make(map[string]bool, len(stanfordDS))
	for _, c := range stanfordDS {
		inProgram[c.id] = true
	}

	// Syllabus topics beyond the title, as for Univ-1 (see buildProgram).
	syllabus := rand.New(rand.NewSource(0x5EED2))

	items := make([]item.Item, 0, len(stanfordDS))
	for _, c := range stanfordDS {
		vec, err := vocab.Vector(textproc.ExtractTopics(c.name)...)
		if err != nil {
			panic(err)
		}
		for extra := 4 + syllabus.Intn(3); extra > 0; extra-- {
			vec.Set(skewedTopic(syllabus, vocab.Len()))
		}
		expr, err := prereq.Parse(c.prereq)
		if err != nil {
			panic(fmt.Sprintf("univ: %s prereq: %v", c.id, err))
		}
		ty := item.Secondary
		if c.core {
			ty = item.Primary
		}
		items = append(items, item.Item{
			ID:          c.id,
			Name:        c.name,
			Description: c.desc,
			Type:        ty,
			Credits:     CreditsPerCourse,
			Prereq:      pruneExpr(expr, func(ref string) bool { return inProgram[ref] }),
			Topics:      vec,
			Category:    c.cat,
		})
	}
	catalog, err := item.NewCatalog(vocab, items)
	if err != nil {
		panic(err)
	}

	hard := constraints.Hard{
		Credits:    45,
		CreditMode: constraints.MinCredits,
		Primary:    7,
		Secondary:  8,
		Gap:        3,
	}
	ideal := bitset.New(vocab.Len())
	for i := 0; i < vocab.Len(); i++ {
		ideal.Set(i)
	}
	inst := &dataset.Instance{
		Name:         "Univ-2 M.S. DS",
		Kind:         dataset.CoursePlanning,
		Catalog:      catalog,
		Hard:         hard,
		Soft:         constraints.Soft{Ideal: ideal, Template: dataset.MakeTemplate(hard.Primary, hard.Secondary)},
		DefaultStart: "STATS 263",
		Defaults: dataset.Defaults{
			Episodes: 100,
			Alpha:    0.75,
			Gamma:    0.95,
			Epsilon:  0.0025,
			Delta:    0.8, Beta: 0.2,
			W1: 0.6, W2: 0.4,
			CategoryWeights: []float64{0.25, 0.01, 0.15, 0.42, 0.01, 0.16},
			Sim:             seqsim.Average,
		},
		GoldScore: 15,
	}
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	return inst
}

// SubDisciplines names the Univ-2 categories a–f in index order.
func SubDisciplines() []string {
	return []string{
		"a. Mathematical and Statistical Foundations",
		"b. Experimentation",
		"c. Scientific Computing",
		"d. Applied Machine Learning and Data Science",
		"e. Practical Component",
		"f. Elective in Data Science",
	}
}

// University is a whole-catalog summary used by the datagen tool and the
// scalability study: every course of the institution plus the program →
// course-id mapping.
type University struct {
	// Name identifies the institution ("Univ-1" / "Univ-2").
	Name string
	// Catalog holds every course.
	Catalog *item.Catalog
	// Programs maps program names to the course ids they comprise.
	Programs map[string][]string
	// Schools lists the schools/colleges (Univ-1) or departments (Univ-2).
	Schools []string
}

// univ1Schools are the six Univ-1 schools and their subject prefixes.
var univ1Schools = []struct {
	name     string
	subjects []string
}{
	{"Ying Wu College of Computing", []string{"CS", "IS", "DS", "IT"}},
	{"College of Science and Liberal Arts", []string{"MATH", "PHYS", "CHEM", "BIO", "HUM"}},
	{"Newark College of Engineering", []string{"ECE", "ME", "CE", "BME"}},
	{"Martin Tuchman School of Management", []string{"MGMT", "FIN", "MIS"}},
	{"Hillier College of Architecture and Design", []string{"ARCH", "ID"}},
	{"Albert Dorman Honors College", []string{"HON", "SS"}},
}

// subjectWords supplies topical word pools for generated course titles.
var subjectWords = map[string][]string{
	"CS":   {"algorithms", "systems", "compilers", "graphics", "networks", "databases", "computing", "programming", "verification", "robotics"},
	"IS":   {"information", "systems", "analytics", "management", "auditing", "security", "usability", "governance"},
	"DS":   {"data", "science", "statistics", "learning", "visualization", "mining", "inference", "modeling"},
	"IT":   {"infrastructure", "administration", "networking", "virtualization", "scripting", "operations"},
	"MATH": {"calculus", "algebra", "analysis", "probability", "statistics", "geometry", "topology", "equations"},
	"PHYS": {"mechanics", "optics", "thermodynamics", "electromagnetism", "quantum", "relativity"},
	"CHEM": {"chemistry", "organic", "inorganic", "spectroscopy", "kinetics", "polymers"},
	"BIO":  {"biology", "genetics", "ecology", "microbiology", "biochemistry", "physiology"},
	"HUM":  {"literature", "philosophy", "history", "writing", "rhetoric", "culture"},
	"ECE":  {"circuits", "signals", "electronics", "communication", "control", "microprocessors", "power"},
	"ME":   {"dynamics", "thermodynamics", "materials", "manufacturing", "vibrations", "design"},
	"CE":   {"structures", "geotechnics", "transportation", "hydraulics", "construction", "surveying"},
	"BME":  {"biomechanics", "imaging", "biomaterials", "instrumentation", "physiology", "devices"},
	"MGMT": {"management", "strategy", "organization", "leadership", "entrepreneurship", "operations"},
	"FIN":  {"finance", "investments", "markets", "valuation", "derivatives", "banking"},
	"MIS":  {"information", "enterprise", "analytics", "commerce", "integration", "processes"},
	"ARCH": {"architecture", "urbanism", "structures", "drawing", "preservation", "housing"},
	"ID":   {"design", "interaction", "prototyping", "fabrication", "ergonomics", "typography"},
	"HON":  {"research", "colloquium", "ethics", "innovation", "scholarship"},
	"SS":   {"sociology", "economics", "psychology", "policy", "anthropology"},
}

var titleModifiers = []string{"", "Graduate", "Modern", "Computational", "Quantitative", "Experimental"}

// FullUniv1 generates the complete Univ-1 institution: 1216 courses across
// 126 degree programs in 6 schools (§IV-A1). The generation is
// deterministic; the focus-program courses of njitMaster are included
// verbatim.
func FullUniv1() *University {
	return generateUniversity("Univ-1", 1216, 126, univ1Schools, njitMaster, 0x11)
}

// univ2Departments are the four Univ-2 departments of §IV-A1.
var univ2Departments = []struct {
	name     string
	subjects []string
}{
	{"Statistics", []string{"STATS"}},
	{"Computer Science", []string{"CS"}},
	{"Institute for Computational and Mathematical Engineering", []string{"CME"}},
	{"Management Science and Engineering", []string{"MS&E"}},
}

// FullUniv2 generates the complete Univ-2 extraction: 3742 courses over 4
// data-science-related departments.
func FullUniv2() *University {
	master := make([]courseDef, len(stanfordDS))
	for i, c := range stanfordDS {
		master[i] = courseDef{id: c.id, name: c.name, prereq: c.prereq}
	}
	extraWords := map[string][]string{
		"STATS": {"statistics", "inference", "probability", "sampling", "bayesian", "regression", "biostatistics", "time", "series"},
		"CME":   {"computation", "numerics", "optimization", "simulation", "parallelism", "modeling"},
		"MS&E":  {"decision", "optimization", "policy", "markets", "operations", "risk", "analytics"},
	}
	for k, v := range extraWords {
		if _, ok := subjectWords[k]; !ok {
			subjectWords[k] = v
		}
	}
	return generateUniversity("Univ-2", 3742, 4, univ2Departments, master, 0x22)
}

// generateUniversity synthesizes an institution of the requested size.
func generateUniversity(name string, totalCourses, totalPrograms int,
	schools []struct {
		name     string
		subjects []string
	}, master []courseDef, seed int64) *University {

	rng := rand.New(rand.NewSource(seed))
	var defs []courseDef
	seen := make(map[string]bool)
	for _, c := range master {
		defs = append(defs, c)
		seen[c.id] = true
	}

	// Round-robin subjects across schools until the course total is met.
	var subjects []string
	for _, s := range schools {
		subjects = append(subjects, s.subjects...)
	}
	num := 500
	for len(defs) < totalCourses {
		subj := subjects[len(defs)%len(subjects)]
		id := fmt.Sprintf("%s %d", subj, num+rng.Intn(5))
		num += 1 + rng.Intn(3)
		if num > 999 {
			num = 100
		}
		// Small subject sets (Univ-2 has four departments) can exhaust the
		// numeric id space; section suffixes extend it.
		for _, suffix := range []string{"", "A", "B", "C", "D"} {
			if !seen[id+suffix] {
				id += suffix
				break
			}
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		defs = append(defs, courseDef{id: id, name: generatedTitle(rng, subj)})
	}

	// Vocabulary and items over the whole institution.
	titles := make([]string, len(defs))
	for i, d := range defs {
		titles[i] = d.name
	}
	vocab, err := topics.NewVocabulary(textproc.BuildVocabulary(titles))
	if err != nil {
		panic(err)
	}
	items := make([]item.Item, len(defs))
	inAll := func(string) bool { return true }
	for i, d := range defs {
		vec, err := vocab.Vector(textproc.ExtractTopics(d.name)...)
		if err != nil {
			panic(err)
		}
		expr, err := prereq.Parse(d.prereq)
		if err != nil {
			panic(err)
		}
		// Drop prereqs whose targets the generator did not emit.
		expr = pruneExpr(expr, func(ref string) bool { return seen[ref] && inAll(ref) })
		items[i] = item.Item{
			ID: d.id, Name: d.name, Type: item.Secondary,
			Credits: CreditsPerCourse, Prereq: expr, Topics: vec,
			Category: item.NoCategory,
		}
	}
	catalog, err := item.NewCatalog(vocab, items)
	if err != nil {
		panic(err)
	}

	// Assign programs: each draws 8–40 courses, preferring one subject.
	programs := make(map[string][]string, totalPrograms)
	levels := []string{"B.S.", "M.S.", "Ph.D."}
	for p := 0; p < totalPrograms; p++ {
		subj := subjects[p%len(subjects)]
		level := levels[p%len(levels)]
		pname := fmt.Sprintf("%s %s Program %d", level, subj, p+1)
		n := 8 + rng.Intn(33)
		var ids []string
		for _, d := range defs {
			if len(ids) >= n {
				break
			}
			if matchesSubject(d.id, subj) || rng.Intn(8) == 0 {
				ids = append(ids, d.id)
			}
		}
		programs[pname] = ids
	}

	schoolNames := make([]string, len(schools))
	for i, s := range schools {
		schoolNames[i] = s.name
	}
	return &University{Name: name, Catalog: catalog, Programs: programs, Schools: schoolNames}
}

// matchesSubject reports whether a course id belongs to the subject prefix.
func matchesSubject(id, subj string) bool {
	return len(id) > len(subj) && id[:len(subj)] == subj && id[len(subj)] == ' '
}

// generatedTitle builds a plausible course title from the subject's word
// pool.
func generatedTitle(rng *rand.Rand, subj string) string {
	words := subjectWords[subj]
	if len(words) == 0 {
		words = []string{"studies", "methods", "practice"}
	}
	mod := titleModifiers[rng.Intn(len(titleModifiers))]
	a := words[rng.Intn(len(words))]
	b := words[rng.Intn(len(words))]
	title := titleCase(a)
	if b != a {
		title += " and " + titleCase(b)
	}
	if mod != "" {
		title = mod + " " + title
	}
	return title
}

// titleCase upper-cases the first rune of an ASCII word.
func titleCase(w string) string {
	if w == "" {
		return w
	}
	b := []byte(w)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
