package trip

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// Photo is one simulated geo-tagged photo record — the raw unit of the
// Flickr substrate. Photos taken by the same user on the same day form an
// itinerary, exactly as the paper derives itineraries from photo tags and
// timestamps (§IV-A1).
type Photo struct {
	// User identifies the photographer.
	User int
	// POI is the catalog index of the photographed POI.
	POI int
	// Day is the day number of the trip.
	Day int
	// Hour is the time of day, used to order a day's photos.
	Hour float64
}

// Itinerary is the ordered sequence of POI indices one user visited in one
// day.
type Itinerary []int

// CityData is one trip-planning dataset: the instance plus the simulated
// photo log it was derived from.
type CityData struct {
	// Instance is the planning problem (catalog, constraints, defaults).
	Instance *dataset.Instance
	// Photos is the simulated photo log.
	Photos []Photo
	// Itineraries are the user-day groupings of Photos.
	Itineraries []Itinerary
	// VisitCounts is the per-POI itinerary frequency behind Popularity.
	VisitCounts []int
}

// GroupItineraries reconstructs itineraries from a photo log by grouping
// photos by (user, day), ordering each group by hour and collapsing
// consecutive photos of the same POI.
func GroupItineraries(photos []Photo) []Itinerary {
	type key struct{ user, day int }
	groups := make(map[key][]Photo)
	var order []key
	for _, p := range photos {
		k := key{p.User, p.Day}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].user != order[j].user {
			return order[i].user < order[j].user
		}
		return order[i].day < order[j].day
	})
	out := make([]Itinerary, 0, len(order))
	for _, k := range order {
		ps := groups[k]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Hour < ps[j].Hour })
		var it Itinerary
		for _, p := range ps {
			if len(it) == 0 || it[len(it)-1] != p.POI {
				it = append(it, p.POI)
			}
		}
		out = append(out, it)
	}
	return out
}

// simulate draws nItineraries user-days of POI visits. Visit propensity is
// popularity-skewed (primary POIs and low-index POIs attract more visits),
// theme-diverse (consecutive same-theme visits are discouraged, matching
// the paper's observed visiting behaviour that motivates the theme-gap
// rule) and distance-decayed (nearby POIs chain together).
func simulate(defs []poiDef, nItineraries int, seed int64) ([]Photo, []Itinerary, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := len(defs)

	// Base attractiveness: Zipf-like over a popularity ranking where
	// primary POIs occupy the top ranks.
	rank := make([]int, n)
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(i, j int) bool {
		pi, pj := defs[rank[i]].primary, defs[rank[j]].primary
		if pi != pj {
			return pi
		}
		return rank[i] < rank[j]
	})
	base := make([]float64, n)
	for pos, poi := range rank {
		base[poi] = 1 / math.Pow(float64(pos+1), 0.8)
		if defs[poi].primary {
			// Must-visit POIs draw disproportionate crowds.
			base[poi] *= 4
		}
	}

	var photos []Photo
	counts := make([]int, n)
	itineraries := make([]Itinerary, 0, nItineraries)
	const itinerariesPerUser = 2

	for itIdx := 0; itIdx < nItineraries; itIdx++ {
		user := itIdx / itinerariesPerUser
		day := itIdx % itinerariesPerUser
		length := 2 + rng.Intn(4) // 2–5 POIs per day
		var it Itinerary
		visited := make(map[int]bool, length)
		prev := -1
		hour := 9 + rng.Float64()*2
		for len(it) < length {
			poi := samplePOI(rng, defs, base, visited, prev)
			if poi < 0 {
				break
			}
			visited[poi] = true
			it = append(it, poi)
			counts[poi]++
			// 1–3 photos per visit.
			for k := 0; k < 1+rng.Intn(3); k++ {
				photos = append(photos, Photo{User: user, POI: poi, Day: day, Hour: hour})
				hour += 0.05 + rng.Float64()*0.1
			}
			hour += 0.5 + rng.Float64()
			prev = poi
		}
		itineraries = append(itineraries, it)
	}
	return photos, itineraries, counts
}

// samplePOI draws the next POI for an itinerary.
func samplePOI(rng *rand.Rand, defs []poiDef, base []float64, visited map[int]bool, prev int) int {
	weights := make([]float64, len(defs))
	var total float64
	for i := range defs {
		if visited[i] {
			continue
		}
		w := base[i]
		if prev >= 0 {
			if defs[i].cat == defs[prev].cat {
				w *= 0.2 // theme diversity
			}
			d := geo.Haversine(
				geo.Point{Lat: defs[prev].lat, Lon: defs[prev].lon},
				geo.Point{Lat: defs[i].lat, Lon: defs[i].lon})
			w *= 1 / (1 + d/2) // distance decay, ~2 km half-weight
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		return -1
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(defs) - 1
}

// popularity maps itinerary visit counts onto the 1–5 scale; the most
// visited POI scores exactly 5 — the paper's gold-standard bound (§IV-A2).
func popularity(counts []int) []float64 {
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	out := make([]float64, len(counts))
	logMax := math.Log1p(float64(maxCount))
	for i, c := range counts {
		if maxCount == 0 {
			out[i] = 1
			continue
		}
		// Log-scaled: visit counts are heavy-tailed, and a linear scale
		// would collapse everything but the single most-visited POI.
		out[i] = 1 + 4*math.Log1p(float64(c))/logMax
	}
	return out
}

// citySpec bundles the static description of one city.
type citySpec struct {
	name         string
	themes       []string
	pois         []poiDef
	itineraries  int
	seed         int64
	start        string
	museumsForGo []string // antecedents for restaurants: museums/galleries
}

var cities = map[string]citySpec{
	"NYC": {
		name:        "NYC",
		themes:      nycThemes,
		pois:        nycPOIs,
		itineraries: 2908,
		seed:        0xA1,
		start:       "rockefeller center",
		museumsForGo: []string{
			"metropolitan museum of art", "museum of modern art",
		},
	},
	"Paris": {
		name:        "Paris",
		themes:      parisThemes,
		pois:        parisPOIs,
		itineraries: 5494,
		seed:        0xB2,
		start:       "louvre museum",
		museumsForGo: []string{
			"louvre museum", "musée d'orsay",
		},
	},
}

// build assembles the CityData for one city spec.
func build(spec citySpec) (*CityData, error) {
	photos, itineraries, counts := simulate(spec.pois, spec.itineraries, spec.seed)
	pops := popularity(counts)

	vocab, err := topics.NewVocabulary(spec.themes)
	if err != nil {
		return nil, err
	}

	// Restaurants are antecedent-bound to the city's flagship museums
	// ("visit a museum before a restaurant/cafe", §II-B.2).
	restaurantTheme := -1
	for i, th := range spec.themes {
		if th == "restaurant" {
			restaurantTheme = i
		}
	}
	var museumRefs prereq.Or
	for _, id := range spec.museumsForGo {
		museumRefs = append(museumRefs, prereq.Ref(id))
	}

	items := make([]item.Item, len(spec.pois))
	for i, d := range spec.pois {
		vec := bitset.New(vocab.Len())
		vec.Set(d.cat)
		for _, e := range d.extra {
			vec.Set(e)
		}
		var pre prereq.Expr
		if d.cat == restaurantTheme {
			pre = museumRefs
		}
		ty := item.Secondary
		if d.primary {
			ty = item.Primary
		}
		items[i] = item.Item{
			ID:         d.name,
			Name:       d.name,
			Type:       ty,
			Credits:    d.hours,
			Prereq:     pre,
			Topics:     vec,
			Category:   d.cat,
			Lat:        d.lat,
			Lon:        d.lon,
			Popularity: pops[i],
		}
	}
	catalog, err := item.NewCatalog(vocab, items)
	if err != nil {
		return nil, err
	}

	// §IV-A1: for the city datasets "the hard constraint is considered as
	// the total time that one will allocate for visitation", plus the
	// distance threshold d and the no-consecutive-same-theme gap — the
	// 2-primary/3-secondary split belongs to the toy Example 2 only
	// (Table VIII reports valid itineraries of 3–5 POIs). Primary and
	// Secondary are therefore zero here: no length/split requirement.
	hard := constraints.Hard{
		Credits:       6, // time threshold t
		CreditMode:    constraints.MaxCredits,
		Gap:           1,
		MaxDistanceKm: 5, // distance threshold d
		ThemeGap:      true,
	}
	// T_ideal covers the full theme set (§IV-A3: |T_ideal| = 21 for NYC,
	// 16 for Paris).
	ideal := bitset.New(vocab.Len())
	for i := 0; i < vocab.Len(); i++ {
		ideal.Set(i)
	}
	inst := &dataset.Instance{
		Name:    spec.name,
		Kind:    dataset.TripPlanning,
		Catalog: catalog,
		Hard:    hard,
		// The interleaving template keeps the Example 2 shape (2 must-see
		// POIs woven between optional ones) even though plan length is
		// budget-determined.
		Soft:         constraints.Soft{Ideal: ideal, Template: dataset.MakeTemplate(2, 3)},
		DefaultStart: spec.start,
		Defaults: dataset.Defaults{
			Episodes: 500,
			Alpha:    0.95,
			Gamma:    0.75,
			Epsilon:  0.0025,
			Delta:    0.6, Beta: 0.4,
			W1: 0.6, W2: 0.4,
			Sim: seqsim.Average,
		},
		GoldScore: 5,
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return &CityData{
		Instance:    inst,
		Photos:      photos,
		Itineraries: itineraries,
		VisitCounts: counts,
	}, nil
}

// City returns the dataset for the named city ("NYC" or "Paris").
func City(name string) (*CityData, error) {
	spec, ok := cities[name]
	if !ok {
		return nil, fmt.Errorf("trip: unknown city %q", name)
	}
	return build(spec)
}

// mustCity panics on generator bugs.
func mustCity(name string) *CityData {
	c, err := City(name)
	if err != nil {
		panic(err)
	}
	return c
}

// NYC returns the New York dataset: 90 POIs, 21 themes, 2908 itineraries.
func NYC() *CityData { return mustCity("NYC") }

// Paris returns the Paris dataset: 114 POIs, 16 themes, 5494 itineraries.
func Paris() *CityData { return mustCity("Paris") }

// Instances returns the two trip instances.
func Instances() []*dataset.Instance {
	return []*dataset.Instance{NYC().Instance, Paris().Instance}
}
