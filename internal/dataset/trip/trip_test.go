package trip

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
)

func TestCityShapes(t *testing.T) {
	// §IV-A1: NYC has 90 POIs / 21 themes / 2908 itineraries; Paris has
	// 114 POIs / 16 themes / 5494 itineraries.
	cases := []struct {
		city                      *CityData
		pois, themes, itineraries int
	}{
		{NYC(), 90, 21, 2908},
		{Paris(), 114, 16, 5494},
	}
	for _, tc := range cases {
		in := tc.city.Instance
		if got := in.Catalog.Len(); got != tc.pois {
			t.Errorf("%s: %d POIs, want %d", in.Name, got, tc.pois)
		}
		if got := in.Catalog.Vocabulary().Len(); got != tc.themes {
			t.Errorf("%s: %d themes, want %d", in.Name, got, tc.themes)
		}
		if got := len(tc.city.Itineraries); got != tc.itineraries {
			t.Errorf("%s: %d itineraries, want %d", in.Name, got, tc.itineraries)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", in.Name, err)
		}
	}
}

func TestPaperQuotedPOIsExist(t *testing.T) {
	nyc := NYC().Instance.Catalog
	for _, id := range []string{
		"battery park", "brooklyn bridge", "colonnade row", "flatiron building",
		"hudson river park", "rockefeller center", "museum of television and radio",
		"new york university",
	} {
		if _, ok := nyc.Index(id); !ok {
			t.Errorf("NYC missing paper POI %q", id)
		}
	}
	paris := Paris().Instance.Catalog
	for _, id := range []string{
		"pont neuf", "promenade plantée", "sainte chapelle", "tour montparnasse",
		"église st-eustache", "viaduc des arts", "église st-germain des prés",
		"musée du luxembourg", "musée des égouts de paris", "église st-sulpice",
		"eiffel tower", "louvre museum", "rue des martyrs", "le cinq",
		"the river seine", "palais garnier", "cathédrale notre-dame de paris",
	} {
		if _, ok := paris.Index(id); !ok {
			t.Errorf("Paris missing paper POI %q", id)
		}
	}
}

func TestHardConstraints(t *testing.T) {
	in := Paris().Instance
	h := in.Hard
	// §IV-A1: the city datasets' hard constraint is the visitation time
	// (plus d and the theme gap); the 2/3 split belongs to toy Example 2.
	if h.Credits != 6 || h.Primary != 0 || h.Secondary != 0 || h.Gap != 1 {
		t.Fatalf("P_hard = %s, want ⟨6, 0, 0, 1⟩", h)
	}
	if !h.ThemeGap {
		t.Fatal("theme gap rule missing")
	}
	if h.MaxDistanceKm != 5 {
		t.Fatalf("d = %v, want 5", h.MaxDistanceKm)
	}
	if in.GoldScore != 5 {
		t.Fatalf("gold = %v, want 5", in.GoldScore)
	}
	d := in.Defaults
	if d.Episodes != 500 || d.Alpha != 0.95 || d.Gamma != 0.75 {
		t.Fatalf("defaults = %+v", d)
	}
}

func TestPopularityScale(t *testing.T) {
	for _, city := range []*CityData{NYC(), Paris()} {
		in := city.Instance
		var max float64
		for i := 0; i < in.Catalog.Len(); i++ {
			p := in.Catalog.At(i).Popularity
			if p < 1 || p > 5 {
				t.Fatalf("%s: popularity %v out of [1,5] for %s",
					in.Name, p, in.Catalog.At(i).ID)
			}
			if p > max {
				max = p
			}
		}
		// The most-visited POI scores exactly 5 (the gold bound).
		if max != 5 {
			t.Fatalf("%s: max popularity = %v, want 5", in.Name, max)
		}
	}
}

func TestPrimariesAreTopAttractions(t *testing.T) {
	// Primary POIs should end up among the most popular — the simulator
	// ranks them first.
	in := NYC().Instance
	for _, i := range in.Catalog.Primaries() {
		if p := in.Catalog.At(i).Popularity; p < 3 {
			t.Errorf("primary %s popularity %v < 3", in.Catalog.At(i).ID, p)
		}
	}
}

func TestRestaurantsHaveMuseumAntecedents(t *testing.T) {
	paris := Paris().Instance.Catalog
	m, ok := paris.ByID("le cinq")
	if !ok {
		t.Fatal("le cinq missing")
	}
	refs := prereq.ReferencedItems(m.Prereq)
	if len(refs) == 0 {
		t.Fatal("restaurant has no antecedent")
	}
	for _, r := range refs {
		ref, ok := paris.ByID(r)
		if !ok {
			t.Fatalf("antecedent %q not in catalog", r)
		}
		if ref.Category != 0 { // museum theme
			t.Fatalf("antecedent %q is not a museum", r)
		}
	}
}

func TestGroupItinerariesRoundTrip(t *testing.T) {
	city := NYC()
	grouped := GroupItineraries(city.Photos)
	if len(grouped) != len(city.Itineraries) {
		t.Fatalf("grouped %d itineraries, simulated %d", len(grouped), len(city.Itineraries))
	}
	// Total POI visits must match the simulator's bookkeeping.
	var simVisits, groupVisits int
	for _, it := range city.Itineraries {
		simVisits += len(it)
	}
	for _, it := range grouped {
		groupVisits += len(it)
	}
	if simVisits != groupVisits {
		t.Fatalf("visits: simulated %d, regrouped %d", simVisits, groupVisits)
	}
}

func TestGroupItinerariesOrdering(t *testing.T) {
	photos := []Photo{
		{User: 1, Day: 0, POI: 2, Hour: 14},
		{User: 1, Day: 0, POI: 0, Hour: 9},
		{User: 1, Day: 0, POI: 0, Hour: 9.1}, // second photo, same POI
		{User: 1, Day: 0, POI: 1, Hour: 11},
		{User: 2, Day: 0, POI: 5, Hour: 10},
	}
	its := GroupItineraries(photos)
	if len(its) != 2 {
		t.Fatalf("itineraries = %v", its)
	}
	want := Itinerary{0, 1, 2}
	if len(its[0]) != 3 {
		t.Fatalf("first itinerary = %v", its[0])
	}
	for i := range want {
		if its[0][i] != want[i] {
			t.Fatalf("first itinerary = %v, want %v", its[0], want)
		}
	}
}

func TestItinerariesAreThemeDiverseMostly(t *testing.T) {
	// The simulator discourages consecutive same-theme visits; over the
	// whole log same-theme adjacency should be well under a third.
	city := Paris()
	defs := parisPOIs
	var pairs, same int
	for _, it := range city.Itineraries {
		for i := 1; i < len(it); i++ {
			pairs++
			if defs[it[i]].cat == defs[it[i-1]].cat {
				same++
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no adjacent pairs simulated")
	}
	if ratio := float64(same) / float64(pairs); ratio > 0.33 {
		t.Fatalf("same-theme adjacency ratio = %.2f", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := NYC(), NYC()
	if len(a.Photos) != len(b.Photos) {
		t.Fatal("photo logs differ across builds")
	}
	for i := 0; i < a.Instance.Catalog.Len(); i++ {
		if a.Instance.Catalog.At(i).Popularity != b.Instance.Catalog.At(i).Popularity {
			t.Fatal("popularity differs across builds")
		}
	}
}

func TestUnknownCity(t *testing.T) {
	if _, err := City("Atlantis"); err == nil {
		t.Fatal("unknown city accepted")
	}
}

func TestVisitTimesArePositive(t *testing.T) {
	for _, city := range []*CityData{NYC(), Paris()} {
		c := city.Instance.Catalog
		for i := 0; i < c.Len(); i++ {
			m := c.At(i)
			if m.Credits <= 0 || m.Credits > 3 {
				t.Errorf("%s: %s visit time %v", city.Instance.Name, m.ID, m.Credits)
			}
			if m.Type == item.Primary && m.Popularity < 1 {
				t.Errorf("%s: primary %s popularity %v", city.Instance.Name, m.ID, m.Popularity)
			}
		}
	}
}
