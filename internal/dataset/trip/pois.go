// Package trip synthesizes the trip-planning datasets of §IV-A1: POI
// catalogs for NYC (90 POIs, 21 themes) and Paris (114 POIs, 16 themes)
// together with a Flickr-style photo-log simulator whose grouped user-day
// itineraries (2908 for NYC, 5494 for Paris) yield the POI popularity
// scores the trip evaluation is based on. POI names include every POI the
// paper's tables quote (battery park, colonnade row, pont neuf, promenade
// plantée, musée des égouts de paris, …).
package trip

// poiDef is one point of interest: dominant theme category, coordinates,
// typical visitation hours (cr^m) and whether it is a must-visit (primary).
// extra lists additional theme indices the POI covers.
type poiDef struct {
	name    string
	cat     int
	lat     float64
	lon     float64
	hours   float64
	primary bool
	extra   []int
}

// nycThemes are the 21 NYC themes (Google Places-style, §IV-A1).
var nycThemes = []string{
	"museum", "park", "church", "establishment", "art_gallery",
	"landmark", "bridge", "library", "university", "stadium",
	"market", "theater", "zoo", "aquarium", "garden",
	"monument", "observation_deck", "square", "street", "restaurant",
	"waterfront",
}

// nycPOIs is the 90-POI New York catalog.
var nycPOIs = []poiDef{
	// Museums (theme 0).
	{"metropolitan museum of art", 0, 40.7794, -73.9632, 2.5, true, []int{4}},
	{"museum of modern art", 0, 40.7614, -73.9776, 2, true, []int{4}},
	{"american museum of natural history", 0, 40.7813, -73.9740, 2.5, false, nil},
	{"whitney museum of american art", 0, 40.7396, -74.0089, 1.5, false, []int{4}},
	{"guggenheim museum", 0, 40.7830, -73.9590, 1.5, false, []int{4, 5}},
	{"brooklyn museum", 0, 40.6712, -73.9636, 2, false, []int{4}},
	{"museum of the city of new york", 0, 40.7924, -73.9519, 1.5, false, nil},
	{"new museum", 0, 40.7224, -73.9926, 1, false, []int{4}},
	{"tenement museum", 0, 40.7188, -73.9900, 1, false, nil},
	{"museum of television and radio", 0, 40.7612, -73.9776, 1.5, false, nil},
	{"intrepid sea air space museum", 0, 40.7645, -74.0014, 2, false, nil},
	{"9/11 memorial museum", 0, 40.7115, -74.0134, 2, false, []int{15}},
	{"frick collection", 0, 40.7712, -73.9673, 1, false, []int{4}},
	{"morgan library and museum", 0, 40.7494, -73.9817, 1.5, false, []int{7}},
	{"cooper hewitt design museum", 0, 40.7846, -73.9580, 1, false, nil},
	{"museum of jewish heritage", 0, 40.7064, -74.0184, 1.5, false, nil},
	// Parks (theme 1).
	{"central park", 1, 40.7829, -73.9654, 2, true, []int{14}},
	{"bryant park", 1, 40.7536, -73.9832, 0.75, false, nil},
	{"washington square park", 1, 40.7308, -73.9973, 0.75, false, []int{15}},
	{"battery park", 1, 40.7033, -74.0170, 1, false, []int{20}},
	{"hudson river park", 1, 40.7286, -74.0113, 1, false, []int{20}},
	{"prospect park", 1, 40.6602, -73.9690, 1.5, false, nil},
	{"madison square park", 1, 40.7425, -73.9880, 0.5, false, nil},
	{"riverside park", 1, 40.8010, -73.9723, 1, false, []int{20}},
	{"tompkins square park", 1, 40.7265, -73.9817, 0.5, false, nil},
	{"the high line", 1, 40.7480, -74.0048, 1.25, false, []int{18}},
	{"flushing meadows corona park", 1, 40.7400, -73.8407, 1.5, false, nil},
	// Churches (theme 2).
	{"st patrick's cathedral", 2, 40.7585, -73.9760, 0.75, false, []int{5}},
	{"trinity church", 2, 40.7081, -74.0120, 0.5, false, nil},
	{"st paul's chapel", 2, 40.7113, -74.0091, 0.5, false, nil},
	{"riverside church", 2, 40.8111, -73.9633, 0.5, false, nil},
	// Establishments (theme 3).
	{"rockefeller center", 3, 40.7587, -73.9787, 1.5, true, []int{16}},
	{"colonnade row", 3, 40.7291, -73.9919, 0.5, false, []int{5}},
	{"flatiron building", 3, 40.7411, -73.9897, 0.5, false, []int{5}},
	{"chrysler building", 3, 40.7516, -73.9755, 0.5, false, []int{5}},
	{"grand central terminal", 3, 40.7527, -73.9772, 0.75, false, []int{5}},
	{"new york stock exchange", 3, 40.7069, -74.0113, 0.5, false, nil},
	{"federal hall", 3, 40.7074, -74.0102, 0.5, false, []int{15}},
	{"the dakota", 3, 40.7765, -73.9760, 0.25, false, nil},
	{"woolworth building", 3, 40.7124, -74.0083, 0.5, false, []int{5}},
	// Art galleries (theme 4).
	{"gagosian gallery", 4, 40.7470, -74.0049, 0.75, false, nil},
	{"david zwirner gallery", 4, 40.7464, -74.0044, 0.75, false, nil},
	{"pace gallery", 4, 40.7492, -74.0021, 0.75, false, nil},
	// Landmarks (theme 5).
	{"ellis island", 5, 40.6995, -74.0396, 2, false, []int{0}},
	{"castle clinton", 5, 40.7036, -74.0169, 0.5, false, nil},
	{"little island", 5, 40.7420, -74.0101, 0.75, false, []int{1}},
	{"grand army plaza", 5, 40.7644, -73.9732, 0.25, false, nil},
	// Bridges (theme 6).
	{"brooklyn bridge", 6, 40.7061, -73.9969, 1, true, []int{5}},
	{"manhattan bridge", 6, 40.7075, -73.9907, 0.75, false, nil},
	{"williamsburg bridge", 6, 40.7134, -73.9724, 0.75, false, nil},
	// Libraries (theme 7).
	{"new york public library", 7, 40.7532, -73.9822, 1, false, []int{5}},
	// Universities (theme 8).
	{"new york university", 8, 40.7295, -73.9965, 0.75, false, nil},
	{"columbia university", 8, 40.8075, -73.9626, 1, false, nil},
	// Stadiums (theme 9).
	{"yankee stadium", 9, 40.8296, -73.9262, 2, false, nil},
	{"madison square garden", 9, 40.7505, -73.9934, 2, false, nil},
	// Markets (theme 10).
	{"chelsea market", 10, 40.7424, -74.0060, 1, false, []int{19}},
	{"essex market", 10, 40.7185, -73.9880, 0.75, false, nil},
	// Theaters (theme 11).
	{"radio city music hall", 11, 40.7600, -73.9799, 1.5, false, nil},
	{"carnegie hall", 11, 40.7651, -73.9799, 1.5, false, nil},
	{"apollo theater", 11, 40.8100, -73.9501, 1.5, false, nil},
	{"lincoln center", 11, 40.7725, -73.9835, 1.5, false, nil},
	{"metropolitan opera house", 11, 40.7728, -73.9843, 2, false, nil},
	// Zoos (theme 12).
	{"bronx zoo", 12, 40.8506, -73.8769, 2.5, false, nil},
	{"central park zoo", 12, 40.7678, -73.9718, 1.5, false, nil},
	// Aquarium (theme 13).
	{"new york aquarium", 13, 40.5744, -73.9756, 1.5, false, nil},
	// Gardens (theme 14).
	{"brooklyn botanic garden", 14, 40.6676, -73.9632, 1.5, false, nil},
	{"new york botanical garden", 14, 40.8623, -73.8800, 2, false, nil},
	{"conservatory garden", 14, 40.7938, -73.9521, 0.75, false, nil},
	// Monuments (theme 15).
	{"statue of liberty", 15, 40.6892, -74.0445, 2.5, true, []int{5}},
	{"grant's tomb", 15, 40.8134, -73.9630, 0.5, false, nil},
	{"washington square arch", 15, 40.7312, -73.9971, 0.25, false, nil},
	{"charging bull", 15, 40.7056, -74.0134, 0.25, false, nil},
	// Observation decks (theme 16).
	{"empire state building", 16, 40.7484, -73.9857, 1.5, true, []int{5}},
	{"top of the rock", 16, 40.7593, -73.9794, 1, false, nil},
	{"one world observatory", 16, 40.7130, -74.0132, 1.5, false, nil},
	// Squares (theme 17).
	{"times square", 17, 40.7580, -73.9855, 1, true, nil},
	{"union square", 17, 40.7359, -73.9911, 0.5, false, []int{10}},
	{"columbus circle", 17, 40.7681, -73.9819, 0.25, false, nil},
	// Streets (theme 18).
	{"fifth avenue", 18, 40.7744, -73.9656, 1, false, nil},
	{"wall street", 18, 40.7064, -74.0094, 0.5, false, nil},
	{"mulberry street", 18, 40.7193, -73.9973, 0.5, false, []int{19}},
	{"stone street", 18, 40.7042, -74.0104, 0.5, false, []int{19}},
	// Restaurants (theme 19). Restaurants are best after a museum or
	// gallery — their antecedents are added by the builder.
	{"katz's delicatessen", 19, 40.7223, -73.9874, 1, false, nil},
	{"peter luger steak house", 19, 40.7098, -73.9622, 1.5, false, nil},
	{"le bernardin", 19, 40.7615, -73.9818, 1.5, false, nil},
	{"grimaldi's pizzeria", 19, 40.7025, -73.9932, 1, false, nil},
	// Waterfront (theme 20).
	{"south street seaport", 20, 40.7063, -74.0036, 1, false, []int{10}},
	{"coney island boardwalk", 20, 40.5725, -73.9790, 1.5, false, nil},
	{"brooklyn heights promenade", 20, 40.6962, -73.9969, 0.75, false, nil},
	{"governors island", 20, 40.6895, -74.0168, 1.5, false, []int{1}},
}

// parisThemes are the 16 Paris themes (§IV-A1).
var parisThemes = []string{
	"museum", "church", "park", "establishment", "art_gallery",
	"palace", "bridge", "cathedral", "monument", "garden",
	"square", "street", "restaurant", "cemetery", "theater", "tower",
}

// parisPOIs is the 114-POI Paris catalog.
var parisPOIs = []poiDef{
	// Museums (theme 0).
	{"louvre museum", 0, 48.8606, 2.3376, 2.5, true, []int{4}},
	{"musée d'orsay", 0, 48.8600, 2.3266, 2, true, []int{4}},
	{"centre pompidou", 0, 48.8607, 2.3522, 2, false, []int{4}},
	{"musée rodin", 0, 48.8553, 2.3159, 1.5, false, []int{9}},
	{"musée picasso", 0, 48.8598, 2.3624, 1.5, false, []int{4}},
	{"musée de l'orangerie", 0, 48.8638, 2.3227, 1, false, []int{4}},
	{"musée du luxembourg", 0, 48.8487, 2.3338, 1, false, []int{4}},
	{"musée des égouts de paris", 0, 48.8628, 2.3030, 1, false, nil},
	{"musée de cluny", 0, 48.8505, 2.3440, 1, false, nil},
	{"musée marmottan monet", 0, 48.8594, 2.2672, 1.5, false, []int{4}},
	{"musée jacquemart-andré", 0, 48.8757, 2.3105, 1, false, []int{4}},
	{"musée grévin", 0, 48.8716, 2.3421, 1, false, nil},
	{"musée de montmartre", 0, 48.8878, 2.3406, 1, false, nil},
	{"musée carnavalet", 0, 48.8571, 2.3626, 1.5, false, nil},
	{"musée guimet", 0, 48.8649, 2.2937, 1.5, false, nil},
	{"musée du quai branly", 0, 48.8609, 2.2977, 1.5, false, nil},
	{"fondation louis vuitton", 0, 48.8766, 2.2633, 1.5, false, []int{4}},
	{"institut du monde arabe", 0, 48.8489, 2.3563, 1, false, nil},
	{"cité des sciences et de l'industrie", 0, 48.8957, 2.3877, 2, false, nil},
	{"musée de l'armée", 0, 48.8565, 2.3126, 1.5, false, nil},
	// Churches (theme 1).
	{"sacré-cœur", 1, 48.8867, 2.3431, 1, true, []int{8}},
	{"église st-sulpice", 1, 48.8511, 2.3348, 0.5, false, nil},
	{"église st-eustache", 1, 48.8634, 2.3452, 0.5, false, nil},
	{"église st-germain des prés", 1, 48.8539, 2.3338, 0.5, false, nil},
	{"la madeleine", 1, 48.8700, 2.3245, 0.5, false, nil},
	{"saint-étienne-du-mont", 1, 48.8466, 2.3481, 0.5, false, nil},
	{"basilique saint-denis", 1, 48.9355, 2.3600, 1, false, nil},
	{"église de la sainte-trinité", 1, 48.8763, 2.3310, 0.5, false, nil},
	{"saint-augustin", 1, 48.8760, 2.3187, 0.5, false, nil},
	{"val-de-grâce", 1, 48.8405, 2.3420, 0.5, false, nil},
	// Parks (theme 2).
	{"parc des buttes-chaumont", 2, 48.8809, 2.3817, 1, false, nil},
	{"parc monceau", 2, 48.8797, 2.3090, 0.75, false, nil},
	{"parc de la villette", 2, 48.8938, 2.3905, 1, false, nil},
	{"bois de boulogne", 2, 48.8624, 2.2493, 1.5, false, nil},
	{"bois de vincennes", 2, 48.8283, 2.4330, 1.5, false, nil},
	{"promenade plantée", 2, 48.8482, 2.3762, 1, false, []int{11}},
	{"parc floral de paris", 2, 48.8384, 2.4395, 1, false, []int{9}},
	{"parc montsouris", 2, 48.8222, 2.3386, 0.75, false, nil},
	// Establishments (theme 3).
	{"la défense", 3, 48.8924, 2.2361, 1, false, nil},
	{"galeries lafayette", 3, 48.8735, 2.3320, 1, false, nil},
	{"le bon marché", 3, 48.8509, 2.3243, 1, false, nil},
	{"hôtel de ville", 3, 48.8566, 2.3522, 0.5, false, nil},
	{"conciergerie", 3, 48.8557, 2.3458, 0.75, false, []int{8}},
	{"la sorbonne", 3, 48.8487, 2.3430, 0.5, false, nil},
	{"collège de france", 3, 48.8494, 2.3447, 0.5, false, nil},
	{"bibliothèque nationale de france", 3, 48.8339, 2.3757, 0.75, false, nil},
	{"les invalides", 3, 48.8566, 2.3125, 1.5, false, []int{8}},
	{"moulin rouge", 3, 48.8841, 2.3322, 0.75, false, []int{14}},
	{"bateaux mouches", 3, 48.8638, 2.3050, 1.25, false, nil},
	{"aquarium de paris", 3, 48.8617, 2.2907, 1, false, nil},
	{"ménagerie du jardin des plantes", 3, 48.8442, 2.3614, 1, false, []int{9}},
	{"marché aux puces de saint-ouen", 3, 48.9017, 2.3420, 1.5, false, []int{11}},
	{"marché d'aligre", 3, 48.8490, 2.3786, 0.75, false, []int{11}},
	// Art galleries (theme 4).
	{"grand palais", 4, 48.8661, 2.3125, 1.5, false, []int{5}},
	{"petit palais", 4, 48.8660, 2.3146, 1, false, []int{5}},
	{"palais de tokyo", 4, 48.8640, 2.2966, 1, false, nil},
	{"galerie perrotin", 4, 48.8605, 2.3650, 0.75, false, nil},
	{"atelier des lumières", 4, 48.8612, 2.3812, 1, false, nil},
	// Palaces (theme 5).
	{"palais garnier", 5, 48.8720, 2.3316, 1, false, []int{14}},
	{"palais royal", 5, 48.8637, 2.3371, 0.75, false, []int{9}},
	{"palais de chaillot", 5, 48.8620, 2.2880, 0.75, false, nil},
	{"château de vincennes", 5, 48.8427, 2.4355, 1.5, false, nil},
	{"palais de l'élysée", 5, 48.8704, 2.3166, 0.25, false, nil},
	{"palais du luxembourg", 5, 48.8485, 2.3371, 0.5, false, nil},
	// Bridges (theme 6).
	{"pont neuf", 6, 48.8566, 2.3411, 0.5, false, nil},
	{"pont alexandre iii", 6, 48.8639, 2.3135, 0.5, false, []int{8}},
	{"pont des arts", 6, 48.8583, 2.3375, 0.5, false, nil},
	{"pont de bir-hakeim", 6, 48.8558, 2.2875, 0.5, false, nil},
	{"pont marie", 6, 48.8525, 2.3574, 0.25, false, nil},
	// Cathedrals (theme 7).
	{"cathédrale notre-dame de paris", 7, 48.8530, 2.3499, 1, true, []int{1}},
	{"sainte chapelle", 7, 48.8554, 2.3450, 0.75, false, []int{1}},
	{"cathédrale alexandre nevsky", 7, 48.8777, 2.3021, 0.5, false, nil},
	// Monuments (theme 8).
	{"arc de triomphe", 8, 48.8738, 2.2950, 1, true, nil},
	{"panthéon", 8, 48.8462, 2.3464, 1, false, nil},
	{"colonne vendôme", 8, 48.8675, 2.3294, 0.25, false, nil},
	{"obélisque de louxor", 8, 48.8656, 2.3212, 0.25, false, nil},
	{"tour saint-jacques", 8, 48.8579, 2.3490, 0.25, false, nil},
	{"flamme de la liberté", 8, 48.8644, 2.3010, 0.25, false, nil},
	{"catacombes de paris", 8, 48.8339, 2.3324, 1.5, false, nil},
	// Gardens (theme 9).
	{"jardin du luxembourg", 9, 48.8462, 2.3372, 1, false, []int{2}},
	{"jardin des tuileries", 9, 48.8634, 2.3275, 1, false, []int{2}},
	{"jardin des plantes", 9, 48.8436, 2.3596, 1, false, nil},
	{"jardin du palais royal", 9, 48.8650, 2.3378, 0.5, false, nil},
	{"square du vert-galant", 9, 48.8574, 2.3406, 0.25, false, nil},
	// Squares (theme 10).
	{"place de la concorde", 10, 48.8656, 2.3212, 0.5, false, nil},
	{"place des vosges", 10, 48.8557, 2.3655, 0.5, false, nil},
	{"place vendôme", 10, 48.8675, 2.3294, 0.25, false, nil},
	{"place du tertre", 10, 48.8865, 2.3407, 0.5, false, []int{4}},
	{"place de la bastille", 10, 48.8532, 2.3692, 0.25, false, nil},
	{"place de la république", 10, 48.8675, 2.3639, 0.25, false, nil},
	{"trocadéro", 10, 48.8616, 2.2893, 0.5, false, nil},
	// Streets (theme 11).
	{"champs-élysées", 11, 48.8698, 2.3076, 1, false, nil},
	{"rue des martyrs", 11, 48.8781, 2.3392, 0.75, false, nil},
	{"rue de rivoli", 11, 48.8592, 2.3417, 0.75, false, nil},
	{"rue cler", 11, 48.8567, 2.3056, 0.5, false, []int{12}},
	{"rue mouffetard", 11, 48.8426, 2.3497, 0.5, false, []int{12}},
	{"canal saint-martin", 11, 48.8710, 2.3655, 0.75, false, nil},
	{"viaduc des arts", 11, 48.8474, 2.3743, 0.5, false, []int{4}},
	// Restaurants (theme 12).
	{"le cinq", 12, 48.8690, 2.3008, 1.5, false, nil},
	{"le jules verne", 12, 48.8580, 2.2947, 1.5, false, nil},
	{"café de flore", 12, 48.8542, 2.3326, 0.75, false, nil},
	{"les deux magots", 12, 48.8540, 2.3333, 0.75, false, nil},
	{"angelina paris", 12, 48.8651, 2.3284, 0.75, false, nil},
	{"le procope", 12, 48.8531, 2.3390, 1, false, nil},
	// Cemeteries (theme 13).
	{"père lachaise cemetery", 13, 48.8610, 2.3933, 1.25, false, nil},
	{"cimetière de montmartre", 13, 48.8877, 2.3306, 0.75, false, nil},
	{"cimetière du montparnasse", 13, 48.8382, 2.3270, 0.75, false, nil},
	// Theaters (theme 14).
	{"comédie-française", 14, 48.8634, 2.3365, 1.5, false, nil},
	{"théâtre du châtelet", 14, 48.8578, 2.3471, 1.5, false, nil},
	{"opéra bastille", 14, 48.8520, 2.3700, 1.5, false, nil},
	{"philharmonie de paris", 14, 48.8915, 2.3938, 1.5, false, nil},
	// Towers (theme 15).
	{"eiffel tower", 15, 48.8584, 2.2945, 2, true, []int{8}},
	{"tour montparnasse", 15, 48.8421, 2.3219, 1, false, nil},
	{"the river seine", 6, 48.8566, 2.3430, 1, false, nil},
}
