// Package dataset defines the common shape of a planning problem instance:
// a catalog with its constraints, the Table III default parameters, and
// metadata the experiment harness needs (gold score, default start item).
// Concrete instances live in the univ and trip sub-packages, which
// synthesize datasets matching the statistics of the paper's NJIT,
// Stanford and Flickr sources (see DESIGN.md §3 for the substitutions).
package dataset

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

// Kind distinguishes the two application domains.
type Kind uint8

const (
	// CoursePlanning marks university degree-program instances.
	CoursePlanning Kind = iota
	// TripPlanning marks city itinerary instances.
	TripPlanning
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CoursePlanning:
		return "course"
	case TripPlanning:
		return "trip"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Defaults carries the Table III default parameter values for an instance.
type Defaults struct {
	// Episodes is N.
	Episodes int
	// Alpha is the learning rate α.
	Alpha float64
	// Gamma is the discount factor γ.
	Gamma float64
	// Epsilon is the topic coverage threshold ε.
	Epsilon float64
	// Delta and Beta weight the similarity and type terms of Eq. 2.
	Delta, Beta float64
	// W1 and W2 are the primary/secondary item weights.
	W1, W2 float64
	// CategoryWeights, when non-empty, replaces W1/W2 with one weight per
	// sub-discipline (Univ-2's w1..w6).
	CategoryWeights []float64
	// Sim is the similarity aggregation mode (average by default).
	Sim seqsim.Mode
}

// Instance is one planning problem: a degree program or a city trip.
type Instance struct {
	// Name identifies the instance, e.g. "Univ-1 M.S. DS-CT" or "Paris".
	Name string
	// Kind is the application domain.
	Kind Kind
	// Catalog is the item set I.
	Catalog *item.Catalog
	// Hard is P_hard.
	Hard constraints.Hard
	// Soft is P_soft.
	Soft constraints.Soft
	// DefaultStart is the Table III starting item id (s_1).
	DefaultStart string
	// Defaults are the Table III parameter defaults.
	Defaults Defaults
	// GoldScore is the handcrafted gold standard's score: 10 for Univ-1,
	// 15 for Univ-2, 5 for trips (§IV-A2).
	GoldScore float64
}

// Validate performs consistency checks a generator must satisfy.
func (in *Instance) Validate() error {
	if in.Catalog == nil || in.Catalog.Len() == 0 {
		return fmt.Errorf("dataset %s: empty catalog", in.Name)
	}
	if _, ok := in.Catalog.Index(in.DefaultStart); !ok {
		return fmt.Errorf("dataset %s: default start %q not in catalog", in.Name, in.DefaultStart)
	}
	if in.Hard.Length() > 0 {
		if err := in.Soft.Template.Validate(in.Hard.Primary, in.Hard.Secondary); err != nil {
			return fmt.Errorf("dataset %s: %w", in.Name, err)
		}
	}
	if in.Soft.Ideal.Len() != in.Catalog.Vocabulary().Len() {
		return fmt.Errorf("dataset %s: ideal vector length %d vs vocabulary %d",
			in.Name, in.Soft.Ideal.Len(), in.Catalog.Vocabulary().Len())
	}
	if in.Catalog.NumPrimary() < in.Hard.Primary {
		return fmt.Errorf("dataset %s: catalog has %d primaries, constraints need %d",
			in.Name, in.Catalog.NumPrimary(), in.Hard.Primary)
	}
	if in.Catalog.NumSecondary() < in.Hard.Secondary {
		return fmt.Errorf("dataset %s: catalog has %d secondaries, constraints need %d",
			in.Name, in.Catalog.NumSecondary(), in.Hard.Secondary)
	}
	return nil
}

// StartIndex resolves DefaultStart to a catalog index.
func (in *Instance) StartIndex() int {
	i, ok := in.Catalog.Index(in.DefaultStart)
	if !ok {
		panic(fmt.Sprintf("dataset %s: default start %q missing", in.Name, in.DefaultStart))
	}
	return i
}
