package synth_test

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/baselines/gold"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/synth"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
)

func TestGenerateDefaults(t *testing.T) {
	inst, err := synth.Generate(synth.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Catalog.Len() != 30 {
		t.Fatalf("items = %d", inst.Catalog.Len())
	}
	if inst.Catalog.Vocabulary().Len() != 60 {
		t.Fatalf("topics = %d", inst.Catalog.Vocabulary().Len())
	}
	if inst.Hard.Primary != 5 || inst.Hard.Secondary != 5 || inst.Hard.Gap != 3 {
		t.Fatalf("hard = %s", inst.Hard)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := synth.Generate(synth.Params{Seed: 7})
	b, _ := synth.Generate(synth.Params{Seed: 7})
	for i := 0; i < a.Catalog.Len(); i++ {
		ma, mb := a.Catalog.At(i), b.Catalog.At(i)
		if ma.ID != mb.ID || ma.Type != mb.Type || !ma.Topics.Equal(mb.Topics) ||
			prereq.Format(ma.Prereq) != prereq.Format(mb.Prereq) {
			t.Fatalf("item %d differs across identical seeds", i)
		}
	}
	c, _ := synth.Generate(synth.Params{Seed: 8})
	diff := false
	for i := 0; i < a.Catalog.Len() && !diff; i++ {
		if !a.Catalog.At(i).Topics.Equal(c.Catalog.At(i).Topics) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds generated identical topic vectors")
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []synth.Params{
		{Items: 5, Primary: 4, Secondary: 4}, // plan larger than catalog
		{TopicsPerItem: 100, Topics: 10},     // too many topics per item
		{PrereqDensity: 1.5},                 // density out of range
		{TopicSkew: 0.5},                     // skew below uniform
	}
	for i, p := range cases {
		p.Seed = int64(i)
		if _, err := synth.Generate(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestGenerateAcyclicPrereqs(t *testing.T) {
	inst, err := synth.Generate(synth.Params{Items: 60, PrereqDensity: 0.6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// References always point at lower-indexed items: acyclic.
	for i := 0; i < inst.Catalog.Len(); i++ {
		m := inst.Catalog.At(i)
		for _, ref := range prereq.ReferencedItems(m.Prereq) {
			j, ok := inst.Catalog.Index(ref)
			if !ok {
				t.Fatalf("%s references unknown %s", m.ID, ref)
			}
			if j >= i {
				t.Fatalf("%s references non-earlier item %s", m.ID, ref)
			}
		}
	}
}

func TestGenerateFeasibilityGuarantee(t *testing.T) {
	// The gold synthesizer must find a constraint-perfect plan on every
	// generated instance — the generator's feasibility guarantee.
	for seed := int64(0); seed < 8; seed++ {
		inst, err := synth.Generate(synth.Params{Seed: seed, Items: 25 + int(seed)})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := gold.Plan(inst)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := eval.Score(inst, plan); got != inst.GoldScore {
			t.Fatalf("seed %d: gold score %v, want %v", seed, got, inst.GoldScore)
		}
	}
}

func TestGeneratedInstanceLearnsEndToEnd(t *testing.T) {
	inst := synth.MustGenerate(synth.Params{Seed: 3, Items: 40, PrereqDensity: 0.3})
	p, err := core.New(inst, core.Options{Episodes: 250, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 10 {
		t.Fatalf("plan length = %d", len(plan))
	}
	if eval.Score(inst, plan) <= 0 {
		d := eval.Evaluate(inst, plan)
		t.Fatalf("synthetic plan scored 0: %v", d.Violations)
	}
}

func TestSplitFeasibleItemsExist(t *testing.T) {
	inst := synth.MustGenerate(synth.Params{Seed: 4, Primary: 7, Secondary: 8, Items: 40})
	var freeP, freeS int
	for i := 0; i < inst.Catalog.Len(); i++ {
		m := inst.Catalog.At(i)
		if m.Prereq != nil {
			continue
		}
		if m.Type == item.Primary {
			freeP++
		} else {
			freeS++
		}
	}
	if freeP < 7 || freeS < 8 {
		t.Fatalf("feasibility core missing: %d free primaries, %d free secondaries", freeP, freeS)
	}
}
