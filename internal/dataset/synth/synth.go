// Package synth generates parameterized random planning instances — the
// workload generator behind the scaling studies and the randomized
// property tests. Generated catalogs are always well-formed: prerequisite
// references point at lower-indexed items (acyclic by construction), every
// plan split is feasible from prereq-free items, and topic vectors use a
// configurable overlap skew so the ε coverage gate binds realistically.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// Params controls generation. Zero values take the documented defaults.
type Params struct {
	// Name identifies the instance (default "synthetic").
	Name string
	// Items is the catalog size |I| (default 30).
	Items int
	// Topics is the vocabulary size |T| (default 2·Items).
	Topics int
	// TopicsPerItem is the mean number of topics per item (default 4).
	TopicsPerItem int
	// TopicSkew ≥ 1 concentrates topic draws on the low indices (hot
	// themes); 1 = uniform (default 2.5, the datasets' setting).
	TopicSkew float64
	// PrereqDensity is the fraction of items carrying a prerequisite
	// expression (default 0.25).
	PrereqDensity float64
	// OrProbability is the chance a prerequisite is an OR of two
	// antecedents rather than a single reference (default 0.5).
	OrProbability float64
	// Primary and Secondary give the plan split (defaults 5 and 5).
	Primary, Secondary int
	// Gap is the antecedent gap (default 3).
	Gap int
	// CreditsPerItem is cr^m for every item (default 3).
	CreditsPerItem float64
	// Geo scatters the items over a clustered city-scale map (lat/lon)
	// and enables the distance constraint, so generated instances
	// exercise the environment's distance store. Off by default.
	Geo bool
	// MaxDistanceKm is the hard distance budget when Geo is set
	// (default 1e6 km — effectively unbounded, so feasibility matches
	// the non-geo instance while every candidate still pays a distance
	// lookup).
	MaxDistanceKm float64
	// Seed drives generation; equal Params generate equal instances.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Name == "" {
		p.Name = "synthetic"
	}
	if p.Items == 0 {
		p.Items = 30
	}
	if p.Topics == 0 {
		p.Topics = 2 * p.Items
	}
	if p.TopicsPerItem == 0 {
		p.TopicsPerItem = 4
	}
	if p.TopicSkew == 0 {
		p.TopicSkew = 2.5
	}
	if p.PrereqDensity == 0 {
		p.PrereqDensity = 0.25
	}
	if p.OrProbability == 0 {
		p.OrProbability = 0.5
	}
	if p.Primary == 0 {
		p.Primary = 5
	}
	if p.Secondary == 0 {
		p.Secondary = 5
	}
	if p.Gap == 0 {
		p.Gap = 3
	}
	if p.CreditsPerItem == 0 {
		p.CreditsPerItem = 3
	}
	if p.Geo && p.MaxDistanceKm == 0 {
		p.MaxDistanceKm = 1e6
	}
	return p
}

// validate rejects infeasible parameter combinations.
func (p Params) validate() error {
	if p.Items < p.Primary+p.Secondary {
		return fmt.Errorf("synth: %d items cannot hold a %d+%d plan",
			p.Items, p.Primary, p.Secondary)
	}
	if p.TopicsPerItem > p.Topics {
		return fmt.Errorf("synth: %d topics per item exceeds vocabulary %d",
			p.TopicsPerItem, p.Topics)
	}
	if p.PrereqDensity < 0 || p.PrereqDensity > 1 {
		return fmt.Errorf("synth: prereq density %g out of [0,1]", p.PrereqDensity)
	}
	if p.TopicSkew < 1 {
		return fmt.Errorf("synth: topic skew %g < 1", p.TopicSkew)
	}
	return nil
}

// Generate builds a random course-planning instance.
func Generate(params Params) (*dataset.Instance, error) {
	p := params.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))

	names := make([]string, p.Topics)
	for i := range names {
		names[i] = fmt.Sprintf("topic-%03d", i)
	}
	vocab, err := topics.NewVocabulary(names)
	if err != nil {
		return nil, err
	}

	items := make([]item.Item, p.Items)
	for i := range items {
		// The first Primary+Secondary items are prereq-free and typed to
		// guarantee feasibility; the rest are typed randomly with a 1:2
		// primary:secondary ratio.
		ty := item.Secondary
		switch {
		case i < p.Primary:
			ty = item.Primary
		case i < p.Primary+p.Secondary:
			// secondary
		case rng.Intn(3) == 0:
			ty = item.Primary
		}

		vec := bitset.New(p.Topics)
		draws := 1 + p.TopicsPerItem/2 + rng.Intn(p.TopicsPerItem)
		for k := 0; k < draws; k++ {
			vec.Set(skewed(rng, p.Topics, p.TopicSkew))
		}

		var pre prereq.Expr
		if i >= p.Primary+p.Secondary && rng.Float64() < p.PrereqDensity {
			a := prereq.Ref(id(rng.Intn(i)))
			if rng.Float64() < p.OrProbability {
				b := prereq.Ref(id(rng.Intn(i)))
				pre = prereq.Or{a, b}
			} else {
				pre = a
			}
		}

		items[i] = item.Item{
			ID:      id(i),
			Name:    fmt.Sprintf("Synthetic Item %d", i),
			Type:    ty,
			Credits: p.CreditsPerItem,
			Prereq:  pre,
			// Compact here, not just in NewCatalog: at catalog scale the
			// dense draw vectors would otherwise all be live at once
			// (items × vocabulary/8 bytes) until the catalog is built.
			Topics:   vec.Compact(),
			Category: item.NoCategory,
		}
		if p.Geo {
			lat, lon := geoPoint(rng, i)
			items[i].Lat, items[i].Lon = lat, lon
		}
	}
	catalog, err := item.NewCatalog(vocab, items)
	if err != nil {
		return nil, err
	}

	hard := constraints.Hard{
		Credits:    p.CreditsPerItem * float64(p.Primary+p.Secondary),
		CreditMode: constraints.MinCredits,
		Primary:    p.Primary,
		Secondary:  p.Secondary,
		Gap:        p.Gap,
	}
	if p.Geo {
		hard.MaxDistanceKm = p.MaxDistanceKm
	}
	// T_ideal is the hot end of the vocabulary, capped at 256 topics: the
	// skewed draws concentrate there, and a bounded ideal set keeps the ε
	// coverage gate (gain/|T_ideal| ≥ ε) meaningful at every vocabulary
	// size — an ideal set that grew with the vocabulary would push every
	// per-item gain below ε and zero out all rewards at catalog scale.
	idealN := p.Topics
	if idealN > 256 {
		idealN = 256
	}
	ideal := bitset.New(p.Topics)
	for i := 0; i < idealN; i++ {
		ideal.Set(i)
	}
	inst := &dataset.Instance{
		Name:         p.Name,
		Kind:         dataset.CoursePlanning,
		Catalog:      catalog,
		Hard:         hard,
		Soft:         constraints.Soft{Ideal: ideal, Template: dataset.MakeTemplate(p.Primary, p.Secondary)},
		DefaultStart: id(0),
		Defaults: dataset.Defaults{
			Episodes: 500, Alpha: 0.75, Gamma: 0.95, Epsilon: 0.0025,
			Delta: 0.8, Beta: 0.2, W1: 0.6, W2: 0.4, Sim: seqsim.Average,
		},
		GoldScore: float64(p.Primary + p.Secondary),
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// MustGenerate is Generate that panics on error, for benchmarks.
func MustGenerate(params Params) *dataset.Instance {
	inst, err := Generate(params)
	if err != nil {
		panic(err)
	}
	return inst
}

// id names the i-th synthetic item.
func id(i int) string { return fmt.Sprintf("S-%03d", i) }

// geoPoint places the i-th item on a clustered city-scale map: eight
// gaussian neighborhoods inside a ~0.5°×0.5° box around a fixed center,
// so nearest-neighbor structure exists for the distance store's bands
// to capture.
func geoPoint(rng *rand.Rand, i int) (lat, lon float64) {
	const centerLat, centerLon = 40.75, -73.98
	cluster := i % 8
	clat := centerLat + 0.25*math.Sin(float64(cluster))
	clon := centerLon + 0.25*math.Cos(float64(cluster)*2.3)
	return clat + rng.NormFloat64()*0.02, clon + rng.NormFloat64()*0.02
}

// skewed samples an index in [0, n) with density ∝ rank^-1/(skew-ish):
// skew 1 is uniform, larger skews concentrate on low indices.
func skewed(rng *rand.Rand, n int, skew float64) int {
	i := int(float64(n) * math.Pow(rng.Float64(), skew))
	if i >= n {
		i = n - 1
	}
	return i
}
