// Package transfer implements the policy-transfer case study of §IV-D:
// applying a Q policy learned on one catalog (M.S. CS, NYC) to another
// (M.S. DS-CT, Paris). The Q table is re-indexed through an item mapping:
//
//   - items sharing an id map directly (the Univ-1 programs overlap in
//     courses such as CS 675 and CS 652, with possibly different
//     core/elective roles — exactly the situation of Table V);
//   - otherwise an item maps to the source item with the most similar
//     topic profile, compared by Jaccard similarity over topic *names*
//     (the vocabularies differ across catalogs, names are the common
//     currency — a Paris museum maps to a NYC museum);
//   - items with no overlap at all stay unmapped and contribute zero Q.
package transfer

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/sarsa"
)

// Mapping reports how target items were matched to source items.
type Mapping struct {
	// DstToSrc maps each target index to a source index, or -1.
	DstToSrc []int
	// ByID counts exact id matches.
	ByID int
	// ByTopic counts topic-similarity matches.
	ByTopic int
	// Unmatched counts target items with no source counterpart.
	Unmatched int
}

// Match computes the target→source item mapping without transferring a
// policy: exact id matches first, then best topic-name Jaccard
// similarity, then unmatched. The warm-start path uses it to rank
// candidate source artifacts by Distance before paying for Map.
func Match(srcCat, dstCat *item.Catalog) *Mapping {
	srcTopics := topicNameSets(srcCat)
	dstTopics := topicNameSets(dstCat)

	m := &Mapping{DstToSrc: make([]int, dstCat.Len())}
	for d := 0; d < dstCat.Len(); d++ {
		if s, ok := srcCat.Index(dstCat.At(d).ID); ok {
			m.DstToSrc[d] = s
			m.ByID++
			continue
		}
		best, bestSim := -1, 0.0
		for s := 0; s < srcCat.Len(); s++ {
			if sim := jaccard(dstTopics[d], srcTopics[s]); sim > bestSim {
				best, bestSim = s, sim
			}
		}
		m.DstToSrc[d] = best
		if best >= 0 {
			m.ByTopic++
		} else {
			m.Unmatched++
		}
	}
	return m
}

// Distance is the warm-start distance of the mapping: the fraction of
// target items without an exact-id source counterpart, in [0, 1]. A
// catalog that changed by k items out of n is distance k/n from its
// ancestor; an unrelated catalog is near 1. Topic matches still count
// toward distance — they transfer useful but inexact values.
func (m *Mapping) Distance() float64 {
	if len(m.DstToSrc) == 0 {
		return 1
	}
	return float64(m.ByTopic+m.Unmatched) / float64(len(m.DstToSrc))
}

// MinWarmFraction floors the warm-start episode budget: even a
// near-identical catalog retrains at least this fraction of the cold
// budget, so the re-indexed values get refreshed against the new
// environment's rewards and constraints.
const MinWarmFraction = 0.1

// WarmBudget scales a cold-start episode budget by warm-start distance
// (DESIGN §12): budget = ceil(cold · max(distance, MinWarmFraction)),
// clamped to [1, cold]. A k-item perturbation of an n-item catalog thus
// retrains about k/n of the cold budget instead of all of it.
func WarmBudget(cold int, distance float64) int {
	if cold <= 0 {
		return 1
	}
	f := distance
	if f < MinWarmFraction {
		f = MinWarmFraction
	}
	if f >= 1 {
		return cold
	}
	b := int(float64(cold)*f + 0.999999)
	if b < 1 {
		b = 1
	}
	if b > cold {
		b = cold
	}
	return b
}

// Map re-indexes a source policy onto a target catalog and returns the
// transferred policy plus the mapping diagnostics.
func Map(src *sarsa.Policy, srcCat, dstCat *item.Catalog) (*sarsa.Policy, *Mapping, error) {
	if src == nil || src.Q == nil {
		return nil, nil, fmt.Errorf("transfer: nil source policy")
	}
	if src.Q.Size() != srcCat.Len() {
		return nil, nil, fmt.Errorf("transfer: policy size %d vs source catalog %d",
			src.Q.Size(), srcCat.Len())
	}
	m := Match(srcCat, dstCat)

	// Walk the source's stored cells through a reverse source→targets
	// index instead of probing all n² target pairs: zero cells transfer
	// as zero for free, so the work follows the visited set — the only
	// tractable shape when the source is a sparse catalog-scale table.
	rev := make([][]int32, srcCat.Len())
	for d, s := range m.DstToSrc {
		if s >= 0 {
			rev[s] = append(rev[s], int32(d))
		}
	}
	q := qtable.New(dstCat.Len())
	src.Q.EachStored(func(ss, se int, v float64) {
		if ss == se {
			return // the original pair loop skipped ms == me
		}
		for _, ds := range rev[ss] {
			for _, de := range rev[se] {
				q.Set(int(ds), int(de), v)
			}
		}
	})
	return &sarsa.Policy{Q: q, IDs: dstCat.IDs()}, m, nil
}

// topicNameSets extracts each item's topic names.
func topicNameSets(c *item.Catalog) []map[string]bool {
	out := make([]map[string]bool, c.Len())
	vocab := c.Vocabulary()
	for i := 0; i < c.Len(); i++ {
		set := make(map[string]bool)
		for _, idx := range c.At(i).Topics.Indices() {
			set[vocab.Name(idx)] = true
		}
		out[i] = set
	}
	return out
}

// jaccard computes |a∩b| / |a∪b|; 0 when either set is empty.
func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
