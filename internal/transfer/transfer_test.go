package transfer_test

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/transfer"
)

func TestMapCourseProgramsSharesIDs(t *testing.T) {
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	p, err := core.New(cs, core.Options{Episodes: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	pol, m, err := transfer.Map(p.Policy(), cs.Catalog, dsct.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Q.Size() != dsct.Catalog.Len() {
		t.Fatalf("transferred Q size = %d", pol.Q.Size())
	}
	// The two Univ-1 programs share many CS 6xx courses, so the bulk must
	// match by id.
	if m.ByID < 15 {
		t.Fatalf("only %d id matches between CS and DS-CT", m.ByID)
	}
	if m.Unmatched > 5 {
		t.Fatalf("%d unmatched items", m.Unmatched)
	}
}

func TestTransferredPolicyPlansDSCT(t *testing.T) {
	// §IV-D course study: learn on M.S. CS, recommend for M.S. DS-CT.
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	p, _ := core.New(cs, core.Options{Episodes: 300, Seed: 2})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	pol, _, err := transfer.Map(p.Policy(), cs.Catalog, dsct.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	target, err := core.New(dsct, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := target.SetPolicy(pol); err != nil {
		t.Fatal(err)
	}
	plan, err := target.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 10 {
		t.Fatalf("transferred plan length = %d", len(plan))
	}
	if eval.Score(dsct, plan) <= 0 {
		d := eval.Evaluate(dsct, plan)
		t.Fatalf("transferred plan scored 0: %v / %v",
			dsct.Catalog.SequenceIDs(plan), d.Violations)
	}
}

func TestMapTripCitiesUsesThemes(t *testing.T) {
	// NYC↔Paris share no POI ids; the mapping must fall back to theme
	// similarity.
	nyc, paris := trip.NYC().Instance, trip.Paris().Instance
	p, _ := core.New(nyc, core.Options{Episodes: 100, Seed: 4})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	pol, m, err := transfer.Map(p.Policy(), nyc.Catalog, paris.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if m.ByID != 0 {
		t.Fatalf("unexpected id matches between cities: %d", m.ByID)
	}
	if m.ByTopic < paris.Catalog.Len()/2 {
		t.Fatalf("only %d theme matches of %d POIs", m.ByTopic, paris.Catalog.Len())
	}
	target, _ := core.New(paris, core.Options{Seed: 5})
	if err := target.SetPolicy(pol); err != nil {
		t.Fatal(err)
	}
	plan, err := target.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) < 2 {
		t.Fatalf("transferred trip plan too short: %v", plan)
	}
}

func TestMapValidation(t *testing.T) {
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	if _, _, err := transfer.Map(nil, cs.Catalog, dsct.Catalog); err == nil {
		t.Fatal("nil policy accepted")
	}
	p, _ := core.New(cs, core.Options{Episodes: 20, Seed: 6})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	// Wrong source catalog size.
	if _, _, err := transfer.Map(p.Policy(), dsct.Catalog, cs.Catalog); err == nil {
		t.Fatal("mismatched source catalog accepted")
	}
	var nilQ sarsa.Policy
	if _, _, err := transfer.Map(&nilQ, cs.Catalog, dsct.Catalog); err == nil {
		t.Fatal("nil Q accepted")
	}
}

func TestMappedQValuesComeFromSource(t *testing.T) {
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	p, _ := core.New(cs, core.Options{Episodes: 150, Seed: 7})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	pol, m, err := transfer.Map(p.Policy(), cs.Catalog, dsct.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: for id-matched pairs, the transferred Q equals the
	// source Q.
	s, _ := dsct.Catalog.Index("CS 675")
	e, _ := dsct.Catalog.Index("CS 652")
	ss, se := m.DstToSrc[s], m.DstToSrc[e]
	if ss < 0 || se < 0 {
		t.Fatal("expected id matches for CS 675 / CS 652")
	}
	if pol.Q.Get(s, e) != p.Policy().Q.Get(ss, se) {
		t.Fatal("transferred Q value differs from source")
	}
}

func TestMatchDistance(t *testing.T) {
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	// Identical catalogs: every item id-matches, distance 0.
	self := transfer.Match(cs.Catalog, cs.Catalog)
	if self.ByID != cs.Catalog.Len() || self.Distance() != 0 {
		t.Fatalf("self-match: ByID=%d distance=%v, want %d and 0",
			self.ByID, self.Distance(), cs.Catalog.Len())
	}
	// Sibling programs: partial overlap, distance strictly inside (0,1).
	m := transfer.Match(cs.Catalog, dsct.Catalog)
	if d := m.Distance(); d <= 0 || d >= 1 {
		t.Fatalf("sibling distance = %v, want in (0,1)", d)
	}
	if m.ByID+m.ByTopic+m.Unmatched != dsct.Catalog.Len() {
		t.Fatalf("match counts %d+%d+%d don't cover %d items",
			m.ByID, m.ByTopic, m.Unmatched, dsct.Catalog.Len())
	}
}

func TestWarmBudget(t *testing.T) {
	cases := []struct {
		cold int
		d    float64
		want int
	}{
		{500, 0, 50},     // floor: MinWarmFraction of the cold budget
		{500, 0.125, 63}, // k=5 of 40 items → ceil(500·0.125)
		{500, 0.5, 250},  // half-changed catalog → half budget
		{500, 1, 500},    // unrelated catalog → full cold budget
		{500, 2, 500},    // distance clamps at the cold budget
		{3, 0.01, 1},     // tiny budgets stay >= 1
		{0, 0.5, 1},      // degenerate cold budget
	}
	for _, c := range cases {
		if got := transfer.WarmBudget(c.cold, c.d); got != c.want {
			t.Errorf("WarmBudget(%d, %v) = %d, want %d", c.cold, c.d, got, c.want)
		}
	}
}
