package transfer_test

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/transfer"
)

func TestMapCourseProgramsSharesIDs(t *testing.T) {
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	p, err := core.New(cs, core.Options{Episodes: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	pol, m, err := transfer.Map(p.Policy(), cs.Catalog, dsct.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Q.Size() != dsct.Catalog.Len() {
		t.Fatalf("transferred Q size = %d", pol.Q.Size())
	}
	// The two Univ-1 programs share many CS 6xx courses, so the bulk must
	// match by id.
	if m.ByID < 15 {
		t.Fatalf("only %d id matches between CS and DS-CT", m.ByID)
	}
	if m.Unmatched > 5 {
		t.Fatalf("%d unmatched items", m.Unmatched)
	}
}

func TestTransferredPolicyPlansDSCT(t *testing.T) {
	// §IV-D course study: learn on M.S. CS, recommend for M.S. DS-CT.
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	p, _ := core.New(cs, core.Options{Episodes: 300, Seed: 2})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	pol, _, err := transfer.Map(p.Policy(), cs.Catalog, dsct.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	target, err := core.New(dsct, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := target.SetPolicy(pol); err != nil {
		t.Fatal(err)
	}
	plan, err := target.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 10 {
		t.Fatalf("transferred plan length = %d", len(plan))
	}
	if eval.Score(dsct, plan) <= 0 {
		d := eval.Evaluate(dsct, plan)
		t.Fatalf("transferred plan scored 0: %v / %v",
			dsct.Catalog.SequenceIDs(plan), d.Violations)
	}
}

func TestMapTripCitiesUsesThemes(t *testing.T) {
	// NYC↔Paris share no POI ids; the mapping must fall back to theme
	// similarity.
	nyc, paris := trip.NYC().Instance, trip.Paris().Instance
	p, _ := core.New(nyc, core.Options{Episodes: 100, Seed: 4})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	pol, m, err := transfer.Map(p.Policy(), nyc.Catalog, paris.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if m.ByID != 0 {
		t.Fatalf("unexpected id matches between cities: %d", m.ByID)
	}
	if m.ByTopic < paris.Catalog.Len()/2 {
		t.Fatalf("only %d theme matches of %d POIs", m.ByTopic, paris.Catalog.Len())
	}
	target, _ := core.New(paris, core.Options{Seed: 5})
	if err := target.SetPolicy(pol); err != nil {
		t.Fatal(err)
	}
	plan, err := target.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) < 2 {
		t.Fatalf("transferred trip plan too short: %v", plan)
	}
}

func TestMapValidation(t *testing.T) {
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	if _, _, err := transfer.Map(nil, cs.Catalog, dsct.Catalog); err == nil {
		t.Fatal("nil policy accepted")
	}
	p, _ := core.New(cs, core.Options{Episodes: 20, Seed: 6})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	// Wrong source catalog size.
	if _, _, err := transfer.Map(p.Policy(), dsct.Catalog, cs.Catalog); err == nil {
		t.Fatal("mismatched source catalog accepted")
	}
	var nilQ sarsa.Policy
	if _, _, err := transfer.Map(&nilQ, cs.Catalog, dsct.Catalog); err == nil {
		t.Fatal("nil Q accepted")
	}
}

func TestMappedQValuesComeFromSource(t *testing.T) {
	cs, dsct := univ.Univ1CS(), univ.Univ1DSCT()
	p, _ := core.New(cs, core.Options{Episodes: 150, Seed: 7})
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	pol, m, err := transfer.Map(p.Policy(), cs.Catalog, dsct.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: for id-matched pairs, the transferred Q equals the
	// source Q.
	s, _ := dsct.Catalog.Index("CS 675")
	e, _ := dsct.Catalog.Index("CS 652")
	ss, se := m.DstToSrc[s], m.DstToSrc[e]
	if ss < 0 || se < 0 {
		t.Fatal("expected id matches for CS 675 / CS 652")
	}
	if pol.Q.Get(s, e) != p.Policy().Q.Get(ss, se) {
		t.Fatal("transferred Q value differs from source")
	}
}
