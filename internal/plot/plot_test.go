package plot

import (
	"sort"
	"strings"
	"testing"
)

func TestBars(t *testing.T) {
	var sb strings.Builder
	err := Bars(&sb, "Fig 1(a)", []string{"DS-CT", "CS"}, []Series{
		{Name: "RL", Values: []float64{7.9, 7.9}},
		{Name: "Gold", Values: []float64{10, 10}},
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 1(a)", "DS-CT", "RL", "Gold", "10.00", "7.90"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Gold's bar (max) must be exactly 20 blocks; RL's shorter.
	lines := strings.Split(out, "\n")
	var goldBlocks, rlBlocks int
	for _, l := range lines {
		n := strings.Count(l, "█")
		if strings.Contains(l, "Gold") && n > goldBlocks {
			goldBlocks = n
		}
		if strings.Contains(l, "RL") && n > rlBlocks {
			rlBlocks = n
		}
	}
	if goldBlocks != 20 {
		t.Fatalf("gold bar = %d blocks, want 20", goldBlocks)
	}
	if rlBlocks >= goldBlocks || rlBlocks == 0 {
		t.Fatalf("rl bar = %d blocks vs gold %d", rlBlocks, goldBlocks)
	}
}

func TestBarsHandlesZeroAndMissing(t *testing.T) {
	var sb strings.Builder
	err := Bars(&sb, "", []string{"a", "b"}, []Series{
		{Name: "s", Values: []float64{0}}, // short series: b has no value
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.00") {
		t.Fatalf("zero bar not rendered:\n%s", sb.String())
	}
}

func TestLines(t *testing.T) {
	var sb strings.Builder
	err := Lines(&sb, "Fig 2(a)", []string{"100", "500", "1000"}, []Series{
		{Name: "learn ms", Values: []float64{4.5, 24, 45}},
	}, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 2(a)", "45.00", "learn ms", "1000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Three plotted points plus one '*' in the legend.
	if strings.Count(out, "*") != 4 {
		t.Fatalf("want 3 plotted points + legend:\n%s", out)
	}
}

func TestLinesErrors(t *testing.T) {
	var sb strings.Builder
	if err := Lines(&sb, "", []string{"x"}, []Series{{Values: []float64{1}}}, 10, 5); err == nil {
		t.Fatal("single point accepted")
	}
	if err := Lines(&sb, "", []string{"a", "b"}, []Series{{Values: []float64{0, 0}}}, 10, 5); err == nil {
		t.Fatal("all-zero series accepted")
	}
}

func TestLinesMonotoneRows(t *testing.T) {
	// A strictly increasing series must plot strictly non-increasing rows
	// (higher values sit higher on the chart).
	var sb strings.Builder
	if err := Lines(&sb, "", []string{"1", "2", "3", "4"}, []Series{
		{Name: "up", Values: []float64{1, 2, 3, 4}},
	}, 30, 12); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	lastRow := -1
	// Scan rows top-down; record the row index of each '*' by column order.
	type pt struct{ row, col int }
	var pts []pt
	for r, l := range lines {
		if strings.Contains(l, " = ") { // legend line
			continue
		}
		for c, ch := range l {
			if ch == '*' {
				pts = append(pts, pt{r, c})
			}
		}
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].col < pts[j].col })
	// Later columns (larger x) must sit on higher rows (smaller r).
	for i := 1; i < len(pts); i++ {
		if pts[i].row >= pts[i-1].row {
			t.Fatalf("increasing series not rising on chart: %v", pts)
		}
	}
	_ = lastRow
}
