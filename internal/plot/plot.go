// Package plot renders small text charts — grouped horizontal bar charts
// for Figure 1 and line charts for Figure 2 — so the reproduction harness
// can show the paper's figures as figures, not only as tables.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named data series.
type Series struct {
	// Name labels the series.
	Name string
	// Values are the data points, index-aligned with the chart's labels.
	Values []float64
}

// Bars renders a grouped horizontal bar chart: one group per label, one
// bar per series, scaled to width characters at the maximum value.
func Bars(w io.Writer, title string, labels []string, series []Series, width int) error {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	nameWidth := 0
	for _, s := range series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for li, label := range labels {
		fmt.Fprintf(&b, "%s\n", label)
		for _, s := range series {
			v := 0.0
			if li < len(s.Values) {
				v = s.Values[li]
			}
			n := 0
			if max > 0 {
				n = int(math.Round(float64(width) * v / max))
			}
			fmt.Fprintf(&b, "  %-*s |%s %.2f\n", nameWidth, s.Name, strings.Repeat("█", n), v)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Lines renders series against shared x labels as a height×width character
// grid — enough to show the linear learning-time trend of Figure 2.
func Lines(w io.Writer, title string, xlabels []string, series []Series, width, height int) error {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 10
	}
	max := 0.0
	points := 0
	for _, s := range series {
		if len(s.Values) > points {
			points = len(s.Values)
		}
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	if points < 2 || max == 0 {
		return fmt.Errorf("plot: need at least two points with a positive maximum")
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '#'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, v := range s.Values {
			col := i * (width - 1) / (points - 1)
			row := height - 1 - int(math.Round(v/max*float64(height-1)))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%8.2f ┤\n", max)
	for _, row := range grid {
		fmt.Fprintf(&b, "         │%s\n", string(row))
	}
	fmt.Fprintf(&b, "%8.2f └%s\n", 0.0, strings.Repeat("─", width))
	// X labels, spread across the width (with room for the last label to
	// extend past the axis).
	lab := make([]byte, width+24)
	for i := range lab {
		lab[i] = ' '
	}
	for i, xl := range xlabels {
		col := 10 + i*(width-1)/(points-1)
		for j := 0; j < len(xl) && col+j < len(lab); j++ {
			lab[col+j] = xl[j]
		}
	}
	b.Write(lab)
	b.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&b, "         %c = %s\n", marks[si%len(marks)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
