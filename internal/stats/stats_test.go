package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of singleton != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max != 0")
	}
}

func TestF2(t *testing.T) {
	if F2(3.14159) != "3.14" {
		t.Fatalf("F2 = %s", F2(3.14159))
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "Fig 1", Header: []string{"Program", "RL", "Gold"}}
	tb.AddRow("DS-CT", "7.90", "10.00")
	tb.AddRow("CS") // short row padded
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 1", "Program", "DS-CT", "7.90", "10.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
}

func TestRollingMean(t *testing.T) {
	got := RollingMean([]float64{1, 2, 3, 4}, 2)
	want := []float64{1.5, 2.5, 3.5}
	if len(got) != len(want) {
		t.Fatalf("RollingMean = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("RollingMean = %v, want %v", got, want)
		}
	}
	if RollingMean([]float64{1}, 2) != nil {
		t.Fatal("short input should yield nil")
	}
	if RollingMean(nil, 0) != nil {
		t.Fatal("zero window should yield nil")
	}
}

func TestConvergedAt(t *testing.T) {
	// A curve that ramps for 5 points then flatlines converges at the
	// flatline.
	curve := []float64{0, 1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 5}
	at := ConvergedAt(curve, 3, 0.1)
	if at < 3 || at > 6 {
		t.Fatalf("ConvergedAt = %d", at)
	}
	// An oscillating curve (window 1 = no smoothing) only "converges" at
	// its very last point.
	osc := []float64{0, 10, 0, 10, 0, 10, 0, 10}
	if at := ConvergedAt(osc, 1, 0.5); at != len(osc)-1 {
		t.Fatalf("oscillating ConvergedAt = %d, want %d", at, len(osc)-1)
	}
	// A window that spans a full oscillation period smooths it flat.
	if at := ConvergedAt(osc, 2, 0.5); at != 0 {
		t.Fatalf("smoothed oscillation ConvergedAt = %d, want 0", at)
	}
	if ConvergedAt(nil, 3, 0.1) != -1 {
		t.Fatal("empty curve should not converge")
	}
}

func TestConvergedAtMonotoneTolerance(t *testing.T) {
	curve := []float64{0, 2, 4, 6, 7, 7.5, 7.8, 8, 8, 8, 8, 8}
	loose := ConvergedAt(curve, 3, 1.0)
	tight := ConvergedAt(curve, 3, 0.1)
	if loose == -1 || tight == -1 {
		t.Fatalf("curve should converge: loose=%d tight=%d", loose, tight)
	}
	if loose > tight {
		t.Fatalf("looser tolerance converged later: %d > %d", loose, tight)
	}
}
