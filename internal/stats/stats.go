// Package stats provides the small statistical and presentation helpers
// the experiment harness needs: aggregates over repeated runs and
// fixed-width text tables matching the paper's tabular reporting.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation; 0 for fewer than two
// values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum; 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// F2 formats a float with two decimals, the paper's table precision.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Table is a simple fixed-width text table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Header names the columns.
	Header []string
	rows   [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RollingMean returns the w-window moving average of xs (length
// len(xs)-w+1); nil when xs is shorter than the window.
func RollingMean(xs []float64, w int) []float64 {
	if w <= 0 || len(xs) < w {
		return nil
	}
	out := make([]float64, 0, len(xs)-w+1)
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= w {
			sum -= xs[i-w]
		}
		if i >= w-1 {
			out = append(out, sum/float64(w))
		}
	}
	return out
}

// ConvergedAt returns the first episode index from which the w-window
// moving average of a learning curve stays within tol of its final value,
// or -1 when the curve never settles. It quantifies the "converges faster"
// comparison between learners.
func ConvergedAt(returns []float64, w int, tol float64) int {
	means := RollingMean(returns, w)
	if len(means) == 0 {
		return -1
	}
	final := means[len(means)-1]
	for i, m := range means {
		ok := true
		for _, later := range means[i:] {
			if math.Abs(later-final) > tol {
				ok = false
				break
			}
			_ = later
		}
		if ok {
			_ = m
			return i
		}
	}
	return -1
}
