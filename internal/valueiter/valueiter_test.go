package valueiter_test

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/valueiter"
)

func dsctEnv(t *testing.T) *core.Planner {
	t.Helper()
	p, err := core.New(univ.Univ1DSCT(), core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveConverges(t *testing.T) {
	p := dsctEnv(t)
	res, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 0.95, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations <= 0 || res.Iterations >= 1000 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.Residual >= 1e-6 {
		t.Fatalf("residual = %v, did not converge", res.Residual)
	}
	if res.Policy.Q.Size() != p.Env().NumItems() {
		t.Fatalf("policy size = %d", res.Policy.Q.Size())
	}
	if res.Policy.Q.MaxAbs() == 0 {
		t.Fatal("value iteration produced an all-zero policy")
	}
}

func TestSolvedPolicyPlans(t *testing.T) {
	// The extracted policy plugs into the same recommendation walks.
	inst := univ.Univ1DSCT()
	p := dsctEnv(t)
	res, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 0.95, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := res.Policy.RecommendGuided(p.Env(), inst.StartIndex())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 10 {
		t.Fatalf("plan length = %d", len(plan))
	}
	if !constraints.Satisfies(inst.Catalog, plan, inst.Hard) {
		t.Fatalf("value-iteration plan violates constraints: %v",
			inst.Catalog.SequenceIDs(plan))
	}
	if eval.Score(inst, plan) <= 0 {
		t.Fatal("value-iteration plan scored 0")
	}
}

func TestSolveValidation(t *testing.T) {
	p := dsctEnv(t)
	if _, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 1}); err == nil {
		t.Fatal("γ = 1 accepted (divergent)")
	}
	if _, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: -0.1}); err == nil {
		t.Fatal("negative γ accepted")
	}
}

func TestSolveDeterministicPerSeed(t *testing.T) {
	p := dsctEnv(t)
	a, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 0.9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Policy.Q.Size()
	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			if a.Policy.Q.Get(s, e) != b.Policy.Q.Get(s, e) {
				t.Fatal("nondeterministic value iteration")
			}
		}
	}
}

func TestLowerGammaConvergesFaster(t *testing.T) {
	// Contraction factor γ governs convergence speed: γ = 0.5 must need
	// no more sweeps than γ = 0.99.
	p := dsctEnv(t)
	fast, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 0.99, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Iterations > slow.Iterations {
		t.Fatalf("γ=0.5 took %d sweeps vs γ=0.99's %d", fast.Iterations, slow.Iterations)
	}
}
