// Package valueiter implements a value-iteration solver for the TPP MDP —
// the alternative §III-C weighs against policy iteration before adopting
// SARSA ("policy iteration is computationally more efficient and requires
// a smaller number of iterations to converge", citing Pashenkova et al.).
// It exists so the repository can check that claim empirically (see
// BenchmarkAblationSolver).
//
// TPP's reward depends on trajectory context (coverage, positions), so an
// exact value function would need the full episode state. Like the
// paper's Q table, this solver works on the item-pair abstraction: it
// iterates V over items using expected transition rewards sampled from
// rollout prefixes, then extracts a stationary policy Q(s,e) = r̄(s,e) +
// γ·V(e). The abstraction loses the same context SARSA's table loses, so
// the two are comparable solvers of the same approximate model.
package valueiter

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/sarsa"
)

// Config parameterizes the solver.
type Config struct {
	// Gamma is the discount factor γ.
	Gamma float64
	// Tolerance stops iteration when the value function moves less than
	// this (default 1e-6).
	Tolerance float64
	// MaxIterations bounds the sweeps (default 1000).
	MaxIterations int
	// RolloutSamples controls how many random rollouts estimate the
	// expected transition rewards r̄(s, e) (default 40).
	RolloutSamples int
	// Seed drives the reward-sampling rollouts.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 1000
	}
	if c.RolloutSamples == 0 {
		c.RolloutSamples = 40
	}
	return c
}

// Result reports the solved policy and convergence diagnostics.
type Result struct {
	// Policy is the extracted policy, compatible with the SARSA
	// recommendation walks.
	Policy *sarsa.Policy
	// Iterations is the number of value sweeps until convergence.
	Iterations int
	// Residual is the final max-norm change of the value function.
	Residual float64
}

// Solve estimates expected rewards, iterates the value function to a
// fixed point, and extracts a Q policy.
func Solve(env *mdp.Env, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Gamma < 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("valueiter: γ = %g, want [0,1) for convergence", cfg.Gamma)
	}
	n := env.NumItems()
	if n == 0 {
		return nil, fmt.Errorf("valueiter: empty catalog")
	}

	rbar, err := expectedRewards(env, cfg)
	if err != nil {
		return nil, err
	}

	// Value iteration: V(s) = max_e [ r̄(s,e) + γ·V(e) ].
	v := make([]float64, n)
	var it int
	var residual float64
	for it = 1; it <= cfg.MaxIterations; it++ {
		residual = 0
		for s := 0; s < n; s++ {
			best := math.Inf(-1)
			for e := 0; e < n; e++ {
				if e == s {
					continue
				}
				if val := rbar[s][e] + cfg.Gamma*v[e]; val > best {
					best = val
				}
			}
			if best == math.Inf(-1) {
				best = 0
			}
			if d := math.Abs(best - v[s]); d > residual {
				residual = d
			}
			v[s] = best
		}
		if residual < cfg.Tolerance {
			break
		}
	}

	// Policy extraction: Q(s,e) = r̄(s,e) + γ·V(e).
	q := qtable.New(n)
	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			if e == s {
				continue
			}
			q.Set(s, e, rbar[s][e]+cfg.Gamma*v[e])
		}
	}
	return &Result{
		Policy:     &sarsa.Policy{Q: q, IDs: env.Catalog().IDs()},
		Iterations: it,
		Residual:   residual,
	}, nil
}

// expectedRewards estimates r̄(s, e) by sampling random trajectory
// prefixes and averaging the observed Equation 2 rewards of each (s, e)
// transition. Pairs never observed keep reward 0.
func expectedRewards(env *mdp.Env, cfg Config) ([][]float64, error) {
	n := env.NumItems()
	sum := make([][]float64, n)
	count := make([][]int, n)
	for i := range sum {
		sum[i] = make([]float64, n)
		count[i] = make([]int, n)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rollouts := cfg.RolloutSamples * n
	var cands []int // reused across rollouts; the step loop allocates nothing
	var ep *mdp.Episode
	for k := 0; k < rollouts; k++ {
		start := rng.Intn(n)
		var err error
		if ep == nil {
			ep, err = env.Start(start)
		} else {
			err = ep.Reset(start)
		}
		if err != nil {
			return nil, err
		}
		s := start
		for !ep.Done() {
			cands = ep.AppendCandidates(cands[:0])
			if len(cands) == 0 {
				break
			}
			e := cands[rng.Intn(len(cands))]
			r := ep.Step(e)
			sum[s][e] += r
			count[s][e]++
			s = e
		}
	}

	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			if count[s][e] > 0 {
				sum[s][e] /= float64(count[s][e])
			}
		}
	}
	return sum, nil
}
