package experiments

import (
	"sort"

	"github.com/rlplanner/rlplanner/internal/baselines/gold"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/stats"
)

// Table4Result holds the §IV-C user-study ratings: the four questions for
// RL-Planner and the gold standard, separately for course and trip
// planning.
type Table4Result struct {
	CourseRL, CourseGold eval.Ratings
	TripRL, TripGold     eval.Ratings
}

// Table4 reproduces Table IV with the simulated rater panel: 25 student
// raters judge the M.S. DS-CT plans; 50 traveler raters (5 per itinerary,
// 5 itineraries per city) judge the NYC and Paris itineraries.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	var out Table4Result

	// Course planning: M.S. DS-CT (the program of the paper's study). The
	// panel rates the system's representative output: the median-scoring
	// plan over a few learning seeds.
	inst := univ.Univ1DSCT()
	rlPlan, err := medianPlanOverSeeds(inst, cfg, 3)
	if err != nil {
		return nil, err
	}
	goldPlan, err := gold.Plan(inst)
	if err != nil {
		return nil, err
	}
	study := eval.StudyConfig{Raters: 25, Seed: cfg.BaseSeed}
	out.CourseRL = eval.RatePlan(inst, rlPlan, study)
	study.Seed++
	out.CourseGold = eval.RatePlan(inst, goldPlan, study)

	// Trip planning: pool NYC and Paris ratings (5 itineraries each,
	// 5 raters per itinerary) by averaging the two cities' panels. The two
	// city panels are independent, so they run on the pool.
	cities := []*struct {
		rl, gd eval.Ratings
	}{{}, {}}
	tripInsts := trip.Instances()
	err = forEach(cfg.workers(), len(tripInsts), func(ci int) error {
		cityInst := tripInsts[ci]
		tPlan, err := medianPlanOverSeeds(cityInst, cfg, 3)
		if err != nil {
			return err
		}
		gPlan, err := gold.Plan(cityInst)
		if err != nil {
			return err
		}
		sc := eval.StudyConfig{Raters: 25, Seed: cfg.BaseSeed + 100 + int64(ci)}
		cities[ci].rl = eval.RatePlan(cityInst, tPlan, sc)
		sc.Seed += 10
		cities[ci].gd = eval.RatePlan(cityInst, gPlan, sc)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.TripRL = averageRatings(cities[0].rl, cities[1].rl)
	out.TripGold = averageRatings(cities[0].gd, cities[1].gd)
	return &out, nil
}

// medianPlanOverSeeds learns with several seeds and keeps the
// median-scoring plan — the representative output of the system, neither
// a lucky nor an unlucky run.
func medianPlanOverSeeds(inst *dataset.Instance, cfg Config, seeds int) ([]int, error) {
	type scored struct {
		plan  []int
		score float64
	}
	all := make([]scored, seeds)
	err := forEach(cfg.workers(), seeds, func(s int) error {
		p, err := core.New(inst, core.Options{Seed: cfg.BaseSeed + int64(s), Episodes: cfg.Episodes})
		if err != nil {
			return err
		}
		if err := p.Learn(); err != nil {
			return err
		}
		plan, err := p.Plan()
		if err != nil {
			return err
		}
		all[s] = scored{plan, eval.Score(inst, plan)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score < all[j].score })
	return all[len(all)/2].plan, nil
}

func averageRatings(a, b eval.Ratings) eval.Ratings {
	return eval.Ratings{
		Overall:      (a.Overall + b.Overall) / 2,
		Ordering:     (a.Ordering + b.Ordering) / 2,
		Coverage:     (a.Coverage + b.Coverage) / 2,
		Interleaving: (a.Interleaving + b.Interleaving) / 2,
	}
}

// Table4Table renders the result in the paper's Table IV layout.
func Table4Table(r *Table4Result) *stats.Table {
	t := &stats.Table{
		Title: "Table IV: Average Ratings (user-study surrogate, 1–5)",
		Header: []string{"Question", "Course RL-Planner", "Course Gold",
			"Trip RL-Planner", "Trip Gold"},
	}
	row := func(q string, f func(eval.Ratings) float64) {
		t.AddRow(q,
			stats.F2(f(r.CourseRL)), stats.F2(f(r.CourseGold)),
			stats.F2(f(r.TripRL)), stats.F2(f(r.TripGold)))
	}
	row("Overall Rating", func(x eval.Ratings) float64 { return x.Overall })
	row("Ordering of Items", func(x eval.Ratings) float64 { return x.Ordering })
	row("Topic/Theme Coverage", func(x eval.Ratings) float64 { return x.Coverage })
	row("Interleaving / Thresholds", func(x eval.Ratings) float64 { return x.Interleaving })
	return t
}
