package experiments

import (
	"testing"
)

// TestSummaryOfResults asserts the paper's §IV-A4 summary claims at full
// experiment fidelity (the Table III defaults, averaged over 10 runs).
// This is the repository's flagship reproduction check; it takes a few
// seconds.
func TestSummaryOfResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity reproduction check")
	}
	cfg := Config{Runs: 10, BaseSeed: 1}
	rows, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var rlTotal, goldTotal float64
	var omegaFails, edaNotAbove int
	for _, r := range rows {
		rlTotal += r.RLAvgSim / r.Gold
		goldTotal += 1
		if r.Omega == 0 {
			omegaFails++
		}
		if r.EDA <= r.RLAvgSim+1e-9 {
			edaNotAbove++
		} else if r.EDA > 1.05*r.RLAvgSim {
			// A marginal EDA edge within run noise (σ ≈ 2.7 on Univ-1) is
			// tolerated on isolated instances; a real EDA win is not.
			t.Errorf("%s: EDA %.2f clearly above RL %.2f", r.Instance, r.EDA, r.RLAvgSim)
		}
		// (a) "RL-Planner generates high quality plans comparable to
		// handcrafted gold standards": at least 75% of the gold bound.
		if r.RLAvgSim < 0.75*r.Gold {
			t.Errorf("%s: RL %.2f below 75%% of gold %.2f", r.Instance, r.RLAvgSim, r.Gold)
		}
	}

	// (a) "Both OMEGA and EDA are unable to satisfy the hard constraints
	// most of the time" — for OMEGA, most instances score 0.
	if omegaFails < len(rows)/2+1 {
		t.Errorf("OMEGA failed on only %d of %d instances", omegaFails, len(rows))
	}
	// EDA does not beat RL-Planner beyond run noise, and sits at or below
	// it on the large majority of instances.
	if edaNotAbove < len(rows)-1 {
		t.Errorf("EDA above RL-Planner on %d instances", len(rows)-edaNotAbove)
	}

	// (d) "robust to different parameters": the N sweep on DS-CT stays
	// within a sane band (no collapse to 0 at any N).
	sweeps, err := Table10(Config{Runs: 3, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sweeps[0].RLAvg {
		if v <= 0 {
			t.Errorf("N sweep produced a zero score: %v", sweeps[0].RLAvg)
			break
		}
	}
}

// TestMinimumSimilarityVariantWorks asserts §IV-A4(d): RL-Planner works
// under both similarity metrics — the min-sim variant stays strictly
// positive on every instance.
func TestMinimumSimilarityVariantWorks(t *testing.T) {
	rows, err := Fig1(Config{Runs: 3, BaseSeed: 1, Episodes: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RLMinSim <= 0 {
			t.Errorf("%s: min-sim score %v", r.Instance, r.RLMinSim)
		}
	}
}
