package experiments

import (
	"fmt"
	"time"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/stats"
	"github.com/rlplanner/rlplanner/internal/valueiter"
)

// AblationRow is one variant of one design dimension, measured on the
// Univ-1 DS-CT instance.
type AblationRow struct {
	// Dimension names the design choice; Variant the alternative.
	Dimension, Variant string
	// Score is the mean §IV-A score over runs.
	Score float64
	// LearnTime is the mean policy-construction time.
	LearnTime time.Duration
	// ConvergedAt is the mean learning-curve settling episode (-1 when
	// not applicable or never settled).
	ConvergedAt int
}

// Ablations measures the design choices DESIGN.md §5 calls out:
// similarity aggregation, action selection, TD algorithm, recommendation
// walk and solver.
func Ablations(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	inst := univ.Univ1DSCT()
	var rows []AblationRow

	runRL := func(dim, variant string, opts core.Options, raw bool) error {
		scores := make([]float64, cfg.Runs)
		times := make([]time.Duration, cfg.Runs)
		convs := make([]int, cfg.Runs)
		err := forEach(cfg.workers(), cfg.Runs, func(r int) error {
			o := opts
			o.Seed = cfg.BaseSeed + int64(r)
			if cfg.Episodes > 0 {
				o.Episodes = cfg.Episodes
			}
			p, err := core.New(inst, o)
			if err != nil {
				return err
			}
			t0 := time.Now()
			if err := p.Learn(); err != nil {
				return err
			}
			times[r] = time.Since(t0)
			var plan []int
			if raw {
				plan, err = p.PlanRaw(inst.StartIndex())
			} else {
				plan, err = p.Plan()
			}
			if err != nil {
				return err
			}
			scores[r] = eval.Score(inst, plan)
			convs[r] = stats.ConvergedAt(p.LearningCurve(), 40, 2.0)
			return nil
		})
		if err != nil {
			return err
		}
		var learn time.Duration
		var conv, convRuns int
		for r := 0; r < cfg.Runs; r++ {
			learn += times[r]
			if convs[r] >= 0 {
				conv += convs[r]
				convRuns++
			}
		}
		row := AblationRow{
			Dimension: dim, Variant: variant,
			Score:       stats.Mean(scores),
			LearnTime:   learn / time.Duration(cfg.Runs),
			ConvergedAt: -1,
		}
		if convRuns > 0 {
			row.ConvergedAt = conv / convRuns
		}
		rows = append(rows, row)
		return nil
	}

	// Similarity aggregation (the paper runs avg and min everywhere; the
	// lev variant swaps in the true edit distance).
	for _, m := range []seqsim.Mode{seqsim.Average, seqsim.Minimum, seqsim.LevenshteinAverage} {
		if err := runRL("similarity", m.String(), core.Options{Sim: m, HasSim: true}, false); err != nil {
			return nil, err
		}
	}
	// Action selection during learning.
	for _, sel := range []sarsa.Selection{sarsa.RewardGreedy, sarsa.QGreedy} {
		if err := runRL("selection", sel.String(), core.Options{Selection: sel}, false); err != nil {
			return nil, err
		}
	}
	// TD algorithm.
	for _, alg := range []sarsa.Algorithm{sarsa.SARSA, sarsa.QLearning} {
		if err := runRL("algorithm", alg.String(), core.Options{Algorithm: alg}, false); err != nil {
			return nil, err
		}
	}
	// Recommendation walk.
	if err := runRL("walk", "guided", core.Options{}, false); err != nil {
		return nil, err
	}
	if err := runRL("walk", "raw (Algorithm 1)", core.Options{}, true); err != nil {
		return nil, err
	}

	// Solver: value iteration on the same abstraction.
	p, err := core.New(inst, core.Options{Seed: cfg.BaseSeed})
	if err != nil {
		return nil, err
	}
	viScores := make([]float64, cfg.Runs)
	viTimes := make([]time.Duration, cfg.Runs)
	viIterPerRun := make([]int, cfg.Runs)
	err = forEach(cfg.workers(), cfg.Runs, func(r int) error {
		t0 := time.Now()
		res, err := valueiter.Solve(p.Env(), valueiter.Config{Gamma: 0.95, Seed: cfg.BaseSeed + int64(r)})
		if err != nil {
			return err
		}
		viTimes[r] = time.Since(t0)
		plan, err := res.Policy.RecommendGuided(p.Env(), inst.StartIndex())
		if err != nil {
			return err
		}
		viScores[r] = eval.Score(inst, plan)
		viIterPerRun[r] = res.Iterations
		return nil
	})
	if err != nil {
		return nil, err
	}
	var viTime time.Duration
	var viIters int
	for r := 0; r < cfg.Runs; r++ {
		viTime += viTimes[r]
		viIters += viIterPerRun[r]
	}
	rows = append(rows, AblationRow{
		Dimension: "solver", Variant: "value-iteration",
		Score:       stats.Mean(viScores),
		LearnTime:   viTime / time.Duration(cfg.Runs),
		ConvergedAt: viIters / cfg.Runs,
	})
	return rows, nil
}

// AblationTable renders the ablation rows.
func AblationTable(rows []AblationRow) *stats.Table {
	t := &stats.Table{
		Title:  "Ablations (Univ-1 M.S. DS-CT)",
		Header: []string{"Dimension", "Variant", "Score", "Learn", "Converged@"},
	}
	for _, r := range rows {
		conv := "—"
		if r.ConvergedAt >= 0 {
			conv = fmt.Sprintf("%d", r.ConvergedAt)
		}
		t.AddRow(r.Dimension, r.Variant, stats.F2(r.Score),
			r.LearnTime.Round(time.Microsecond).String(), conv)
	}
	return t
}
