package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/stats"
)

// AblationRow is one variant of one design dimension, measured on the
// Univ-1 DS-CT instance.
type AblationRow struct {
	// Dimension names the design choice; Variant the alternative.
	Dimension, Variant string
	// Score is the mean §IV-A score over runs.
	Score float64
	// LearnTime is the mean policy-construction time.
	LearnTime time.Duration
	// ConvergedAt is the mean learning-curve settling episode (-1 when
	// not applicable or never settled).
	ConvergedAt int
}

// Ablations measures the design choices DESIGN.md §5 calls out:
// similarity aggregation, action selection, TD algorithm, recommendation
// walk and solver.
func Ablations(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	inst := univ.Univ1DSCT()
	var rows []AblationRow

	// runRL trains the named registry engine per seed and measures score,
	// construction time and learning-curve convergence. The raw variant
	// replays the plain Algorithm 1 walk over the trained values instead
	// of the guided recommendation.
	runRL := func(dim, variant, engineName string, opts core.Options, raw bool) error {
		scores := make([]float64, cfg.Runs)
		times := make([]time.Duration, cfg.Runs)
		convs := make([]int, cfg.Runs)
		err := forEach(cfg.workers(), cfg.Runs, func(r int) error {
			o := opts
			o.Seed = cfg.BaseSeed + int64(r)
			if cfg.Episodes > 0 {
				o.Episodes = cfg.Episodes
			}
			t0 := time.Now()
			pol, err := engine.Train(context.Background(), engineName, inst, o)
			if err != nil {
				return err
			}
			times[r] = time.Since(t0)
			vp := pol.(engine.ValuePolicy)
			var plan []int
			if raw {
				plan, err = vp.Values().Recommend(vp.Env(), inst.StartIndex())
			} else {
				plan, err = pol.Recommend(engine.DefaultStart)
			}
			if err != nil {
				return err
			}
			scores[r] = eval.Score(inst, plan)
			convs[r] = stats.ConvergedAt(vp.LearningCurve(), 40, 2.0)
			return nil
		})
		if err != nil {
			return err
		}
		var learn time.Duration
		var conv, convRuns int
		for r := 0; r < cfg.Runs; r++ {
			learn += times[r]
			if convs[r] >= 0 {
				conv += convs[r]
				convRuns++
			}
		}
		row := AblationRow{
			Dimension: dim, Variant: variant,
			Score:       stats.Mean(scores),
			LearnTime:   learn / time.Duration(cfg.Runs),
			ConvergedAt: -1,
		}
		if convRuns > 0 {
			row.ConvergedAt = conv / convRuns
		}
		rows = append(rows, row)
		return nil
	}

	// Similarity aggregation (the paper runs avg and min everywhere; the
	// lev variant swaps in the true edit distance).
	for _, m := range []seqsim.Mode{seqsim.Average, seqsim.Minimum, seqsim.LevenshteinAverage} {
		if err := runRL("similarity", m.String(), "sarsa", core.Options{Sim: m, HasSim: true}, false); err != nil {
			return nil, err
		}
	}
	// Action selection during learning.
	for _, sel := range []sarsa.Selection{sarsa.RewardGreedy, sarsa.QGreedy} {
		if err := runRL("selection", sel.String(), "sarsa", core.Options{Selection: sel}, false); err != nil {
			return nil, err
		}
	}
	// TD algorithm: the registry name picks the update rule.
	for _, name := range []string{"sarsa", "qlearning"} {
		if err := runRL("algorithm", name, name, core.Options{}, false); err != nil {
			return nil, err
		}
	}
	// Recommendation walk.
	if err := runRL("walk", "guided", "sarsa", core.Options{}, false); err != nil {
		return nil, err
	}
	if err := runRL("walk", "raw (Algorithm 1)", "sarsa", core.Options{}, true); err != nil {
		return nil, err
	}

	// Solver: value iteration on the same abstraction (γ = 0.95, as the
	// pre-registry ablation ran it).
	viScores := make([]float64, cfg.Runs)
	viTimes := make([]time.Duration, cfg.Runs)
	viIterPerRun := make([]int, cfg.Runs)
	err := forEach(cfg.workers(), cfg.Runs, func(r int) error {
		o := core.Options{Gamma: 0.95, Seed: cfg.BaseSeed + int64(r)}
		t0 := time.Now()
		pol, err := engine.Train(context.Background(), "valueiter", inst, o)
		if err != nil {
			return err
		}
		viTimes[r] = time.Since(t0)
		plan, err := pol.Recommend(inst.StartIndex())
		if err != nil {
			return err
		}
		viScores[r] = eval.Score(inst, plan)
		viIterPerRun[r] = pol.(engine.Converger).Iterations()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var viTime time.Duration
	var viIters int
	for r := 0; r < cfg.Runs; r++ {
		viTime += viTimes[r]
		viIters += viIterPerRun[r]
	}
	rows = append(rows, AblationRow{
		Dimension: "solver", Variant: "value-iteration",
		Score:       stats.Mean(viScores),
		LearnTime:   viTime / time.Duration(cfg.Runs),
		ConvergedAt: viIters / cfg.Runs,
	})
	return rows, nil
}

// AblationTable renders the ablation rows.
func AblationTable(rows []AblationRow) *stats.Table {
	t := &stats.Table{
		Title:  "Ablations (Univ-1 M.S. DS-CT)",
		Header: []string{"Dimension", "Variant", "Score", "Learn", "Converged@"},
	}
	for _, r := range rows {
		conv := "—"
		if r.ConvergedAt >= 0 {
			conv = fmt.Sprintf("%d", r.ConvergedAt)
		}
		t.AddRow(r.Dimension, r.Variant, stats.F2(r.Score),
			r.LearnTime.Round(time.Microsecond).String(), conv)
	}
	return t
}
