package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves Config.Workers into an effective worker count:
// 0 means one worker per logical CPU, 1 forces sequential execution.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0), …, fn(n-1) on up to workers goroutines and waits
// for all of them. Callers must write results into index-addressed slots
// (never append under the pool) so the output is bit-identical to the
// sequential loop regardless of scheduling; every run derives its own
// seed from the index, so parallel and sequential execution see the same
// randomness. The returned error is the lowest-indexed failure, mirroring
// sequential first-error semantics (unlike the sequential loop, later
// iterations still run — experiment errors are configuration bugs, not
// data-dependent, so the extra work is irrelevant in practice).
//
// workers <= 1 (or n <= 1) degenerates to a plain loop with early return.
// Nested forEach calls (a sweep over values whose points each fan out
// their runs) simply stack goroutines; each level is bounded by workers
// and the Go scheduler multiplexes them onto GOMAXPROCS threads, so
// oversubscription costs scheduling only, not correctness.
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
