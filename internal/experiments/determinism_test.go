package experiments

import (
	"reflect"
	"testing"
)

// TestWorkerDeterminism pins the pool's central contract: the worker
// count is a throughput knob, never a semantics knob. Every run derives
// its seed from BaseSeed plus its index and writes into its own result
// slot, so Workers: 1 and Workers: 8 must produce bit-identical rows.
func TestWorkerDeterminism(t *testing.T) {
	seq := Config{Runs: 3, BaseSeed: 5, Episodes: 50, Workers: 1}
	par := seq
	par.Workers = 8

	t.Run("fig1", func(t *testing.T) {
		a, err := Fig1Courses(seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig1Courses(par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("Fig1 rows differ between Workers=1 and Workers=8:\nseq: %+v\npar: %+v", a, b)
		}
	})

	t.Run("table5", func(t *testing.T) {
		a, err := Table5(seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Table5(par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("Table5 cases differ between Workers=1 and Workers=8:\nseq: %+v\npar: %+v", a, b)
		}
	})
}

// TestForEach covers the pool primitive itself: full coverage of the
// index space, index-addressed writes, and lowest-index error selection.
func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		got := make([]int, 100)
		if err := forEach(workers, len(got), func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	errA := &indexError{3}
	errB := &indexError{7}
	err := forEach(4, 10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("forEach error = %v, want lowest-index error %v", err, errA)
	}
}

type indexError struct{ i int }

func (e *indexError) Error() string { return "fail" }
