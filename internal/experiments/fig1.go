package experiments

import (
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/stats"
)

// Fig1Row is one bar group of Figure 1: average scores over Config.Runs
// for RL-Planner (average and minimum similarity), the automated baselines
// and the gold standard on one instance.
type Fig1Row struct {
	Instance string
	RLAvgSim float64
	// RLAvgStd is the standard deviation of the avg-sim scores across runs.
	RLAvgStd float64
	RLMinSim float64
	Omega    float64
	EDA      float64
	Gold     float64
}

// Fig1 reproduces Figure 1: (a) course planning over the four degree
// programs, (b) trip planning over NYC and Paris.
func Fig1(cfg Config) ([]Fig1Row, error) {
	insts := append(courseInstances(), tripInstances()...)
	return fig1Over(insts, cfg)
}

// Fig1Courses reproduces Figure 1(a) only.
func Fig1Courses(cfg Config) ([]Fig1Row, error) {
	return fig1Over(courseInstances(), cfg)
}

// Fig1Trips reproduces Figure 1(b) only.
func Fig1Trips(cfg Config) ([]Fig1Row, error) {
	return fig1Over(tripInstances(), cfg)
}

func fig1Over(insts []*dataset.Instance, cfg Config) ([]Fig1Row, error) {
	// Each bar group is an independent planning problem, so the instance
	// loop fans out too; every inner ScoreRL additionally fans out its
	// per-seed runs on the same pool bound.
	rows := make([]Fig1Row, len(insts))
	err := forEach(cfg.workers(), len(insts), func(i int) error {
		inst := insts[i]
		avg, err := ScoreRL(inst, core.Options{}, cfg)
		if err != nil {
			return err
		}
		min, err := ScoreRL(inst, core.Options{Sim: seqsim.Minimum, HasSim: true}, cfg)
		if err != nil {
			return err
		}
		om, err := ScoreOmega(inst, core.Options{})
		if err != nil {
			return err
		}
		ed, err := ScoreEDA(inst, core.Options{}, cfg)
		if err != nil {
			return err
		}
		gd, err := ScoreGold(inst)
		if err != nil {
			return err
		}
		rows[i] = Fig1Row{
			Instance: inst.Name,
			RLAvgSim: meanOrZero(avg),
			RLAvgStd: stats.StdDev(avg),
			RLMinSim: meanOrZero(min),
			Omega:    om,
			EDA:      meanOrZero(ed),
			Gold:     gd,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig1Table renders Figure 1 rows as a text table.
func Fig1Table(rows []Fig1Row, title string) *stats.Table {
	t := &stats.Table{
		Title:  title,
		Header: []string{"Instance", "RL-Planner(avg)", "±σ", "RL-Planner(min)", "OMEGA", "EDA", "Gold"},
	}
	for _, r := range rows {
		t.AddRow(r.Instance, stats.F2(r.RLAvgSim), stats.F2(r.RLAvgStd), stats.F2(r.RLMinSim),
			stats.F2(r.Omega), stats.F2(r.EDA), stats.F2(r.Gold))
	}
	return t
}
