package experiments

import (
	"fmt"
	"time"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/stats"
)

// Fig2Point is one measurement of the scalability study (§IV-F): time to
// learn a policy and time to recommend a plan, for one episode count N.
type Fig2Point struct {
	Instance  string
	Episodes  int
	Learn     time.Duration
	Recommend time.Duration
}

// Fig2 reproduces Figure 2: learning time grows linearly with the number
// of episodes (panels a and c) while recommendation stays interactive
// (panels b and d). Course planning uses Univ-1 DS-CT; trip planning uses
// NYC.
func Fig2(cfg Config) ([]Fig2Point, error) {
	cfg = cfg.withDefaults()
	episodes := []int{100, 200, 300, 500, 1000}
	instances := []*dataset.Instance{univ.Univ1DSCT(), trip.NYC().Instance}

	var out []Fig2Point
	for _, inst := range instances {
		for _, n := range episodes {
			p, err := core.New(inst, core.Options{Episodes: n, Seed: cfg.BaseSeed})
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			if err := p.Learn(); err != nil {
				return nil, err
			}
			learn := time.Since(t0)

			t0 = time.Now()
			if _, err := p.Plan(); err != nil {
				return nil, err
			}
			rec := time.Since(t0)

			out = append(out, Fig2Point{
				Instance: inst.Name, Episodes: n,
				Learn: learn, Recommend: rec,
			})
		}
	}
	return out, nil
}

// Fig2Table renders the measurements.
func Fig2Table(points []Fig2Point) *stats.Table {
	t := &stats.Table{
		Title:  "Fig 2: scalability (learning scales linearly in N; recommendation is interactive)",
		Header: []string{"Instance", "N", "Learn", "Recommend"},
	}
	for _, p := range points {
		t.AddRow(p.Instance, fmt.Sprintf("%d", p.Episodes),
			p.Learn.Round(time.Microsecond).String(),
			p.Recommend.Round(time.Microsecond).String())
	}
	return t
}
