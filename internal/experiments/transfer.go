package experiments

import (
	"fmt"
	"strings"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/stats"
	"github.com/rlplanner/rlplanner/internal/transfer"
)

// TransferCase is one row of the §IV-D transfer-learning study.
type TransferCase struct {
	// Learnt and Applied name the source and target instances.
	Learnt, Applied string
	// GoodPlan is a transferred recommendation that satisfies all hard
	// constraints (guided walk), rendered as "id : role" steps.
	GoodPlan []string
	// BadPlan is a transferred recommendation from the raw Algorithm 1
	// walk that misses at least one hard constraint — the paper's "less
	// effective" cases.
	BadPlan []string
	// GoodScore and BadScore are the §IV-A scores of the two plans.
	GoodScore, BadScore float64
	// Mapping summarizes how target items matched source items.
	Mapping transfer.Mapping
}

// transferBetween learns on src and recommends on dst through the item
// mapping.
func transferBetween(src, dst *dataset.Instance, cfg Config) (*TransferCase, error) {
	cfg = cfg.withDefaults()
	p, err := core.New(src, core.Options{Seed: cfg.BaseSeed, Episodes: cfg.Episodes})
	if err != nil {
		return nil, err
	}
	if err := p.Learn(); err != nil {
		return nil, err
	}
	pol, mapping, err := transfer.Map(p.Policy(), src.Catalog, dst.Catalog)
	if err != nil {
		return nil, err
	}
	target, err := core.New(dst, core.Options{Seed: cfg.BaseSeed + 1})
	if err != nil {
		return nil, err
	}
	if err := target.SetPolicy(pol); err != nil {
		return nil, err
	}

	good, err := target.Plan()
	if err != nil {
		return nil, err
	}
	// The raw Algorithm 1 walk surfaces "bad" outcomes. Walk several
	// starts until one misses a constraint; fall back to the raw default
	// plan otherwise.
	bad, err := target.PlanRaw(dst.StartIndex())
	if err != nil {
		return nil, err
	}
	for start := 0; start < dst.Catalog.Len() && eval.Score(dst, bad) > 0; start++ {
		cand, err := target.PlanRaw(start)
		if err != nil {
			return nil, err
		}
		if eval.Score(dst, cand) == 0 {
			bad = cand
			break
		}
	}

	return &TransferCase{
		Learnt:    src.Name,
		Applied:   dst.Name,
		GoodPlan:  describePlan(dst, good),
		BadPlan:   describePlan(dst, bad),
		GoodScore: eval.Score(dst, good),
		BadScore:  eval.Score(dst, bad),
		Mapping:   *mapping,
	}, nil
}

// describePlan renders a plan as "id : core/elective" steps (Table V's
// notation) for courses, or plain ids for trips.
func describePlan(inst *dataset.Instance, plan []int) []string {
	out := make([]string, len(plan))
	for i, idx := range plan {
		m := inst.Catalog.At(idx)
		if inst.Kind == dataset.CoursePlanning {
			role := "elective"
			if m.Type == item.Primary {
				role = "core"
			}
			out[i] = fmt.Sprintf("%s : %s", m.ID, role)
		} else {
			out[i] = m.ID
		}
	}
	return out
}

// transferPair runs both transfer directions between two instances,
// fanning the independent directions across the pool.
func transferPair(a, b *dataset.Instance, cfg Config) ([]*TransferCase, error) {
	pairs := [2][2]*dataset.Instance{{a, b}, {b, a}}
	cases := make([]*TransferCase, len(pairs))
	err := forEach(cfg.workers(), len(pairs), func(i int) error {
		c, err := transferBetween(pairs[i][0], pairs[i][1], cfg)
		if err != nil {
			return err
		}
		cases[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cases, nil
}

// Table5 reproduces the course transfer study: M.S. CS ↔ M.S. DS-CT.
func Table5(cfg Config) ([]*TransferCase, error) {
	return transferPair(univ.Univ1CS(), univ.Univ1DSCT(), cfg)
}

// Table7 reproduces the trip transfer study: NYC ↔ Paris.
func Table7(cfg Config) ([]*TransferCase, error) {
	return transferPair(trip.NYC().Instance, trip.Paris().Instance, cfg)
}

// TransferTable renders transfer cases in the Table V / Table VII layout.
func TransferTable(cases []*TransferCase, title string) *stats.Table {
	t := &stats.Table{
		Title:  title,
		Header: []string{"Learnt", "Applied", "Kind", "Score", "Sequence"},
	}
	for _, c := range cases {
		t.AddRow(c.Learnt, c.Applied, "Good", stats.F2(c.GoodScore), strings.Join(c.GoodPlan, " → "))
		t.AddRow("", "", "Bad", stats.F2(c.BadScore), strings.Join(c.BadPlan, " → "))
	}
	return t
}

// Table8Row describes one RL-Planner itinerary with the thresholds it
// meets (Table VIII).
type Table8Row struct {
	City      string
	Itinerary []string
	Types     []string
	TimeHours float64
	DistKm    float64
}

// Table8 reproduces the itinerary-description table: for each city, two
// RL-Planner itineraries with their POI types, total time and distance.
func Table8(cfg Config) ([]Table8Row, error) {
	cfg = cfg.withDefaults()
	cities := []*trip.CityData{trip.NYC(), trip.Paris()}
	const variants = 2
	// The (city, variant) grid is four independent learn+plan jobs.
	rows := make([]Table8Row, len(cities)*variants)
	err := forEach(cfg.workers(), len(rows), func(j int) error {
		ci, v := j/variants, j%variants
		inst := cities[ci].Instance
		p, err := core.New(inst, core.Options{
			Seed:     cfg.BaseSeed + int64(ci*10+v),
			Episodes: cfg.Episodes,
			// The paper's Table VIII varies t and d per itinerary.
			TimeLimit:     []float64{6, 8}[v],
			MaxDistanceKm: []float64{4, 5}[v],
		})
		if err != nil {
			return err
		}
		if err := p.Learn(); err != nil {
			return err
		}
		plan, err := p.Plan()
		if err != nil {
			return err
		}
		types := make([]string, len(plan))
		for i, idx := range plan {
			m := inst.Catalog.At(idx)
			types[i] = inst.Catalog.Vocabulary().Name(m.Category)
		}
		rows[j] = Table8Row{
			City:      inst.Name,
			Itinerary: inst.Catalog.SequenceIDs(plan),
			Types:     types,
			TimeHours: inst.Catalog.TotalCredits(plan),
			DistKm:    pathDistance(inst, plan),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// pathDistance sums the legs of a plan.
func pathDistance(inst *dataset.Instance, plan []int) float64 {
	pts := make([]geo.Point, len(plan))
	for i, idx := range plan {
		m := inst.Catalog.At(idx)
		pts[i] = geo.Point{Lat: m.Lat, Lon: m.Lon}
	}
	return geo.PathLength(pts)
}

// Table8Table renders Table VIII.
func Table8Table(rows []Table8Row) *stats.Table {
	t := &stats.Table{
		Title:  "Table VIII: RL-Planner itinerary descriptions",
		Header: []string{"City", "Itinerary", "Types", "Time(h)", "Dist(km)"},
	}
	for _, r := range rows {
		t.AddRow(r.City, strings.Join(r.Itinerary, ", "), strings.Join(r.Types, ","),
			stats.F2(r.TimeHours), stats.F2(r.DistKm))
	}
	return t
}
