// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV). Each experiment has a runner returning structured rows
// plus a rendered text table; cmd/benchharness prints them and
// bench_test.go wraps them in testing.B benchmarks. DESIGN.md §4 maps
// experiment ids to runners.
package experiments

import (
	"context"
	"fmt"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/stats"
)

// scoreEngine trains the named engine once and scores its recommendation
// against the constraints the policy was actually trained under (sweeps
// override t and d). Every experiment scorer funnels through here — the
// engine registry is the single construction path.
func scoreEngine(name string, inst *dataset.Instance, opts core.Options) (float64, error) {
	pol, err := engine.Train(context.Background(), name, inst, opts)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", inst.Name, err)
	}
	seq, err := pol.Recommend(engine.DefaultStart)
	if err != nil {
		return 0, err
	}
	return eval.ScoreWith(inst, pol.Hard(), seq), nil
}

// Config controls experiment execution.
type Config struct {
	// Runs is the number of repetitions averaged (the paper uses 10).
	Runs int
	// BaseSeed seeds run r with BaseSeed + r.
	BaseSeed int64
	// Episodes overrides N for every learner; 0 keeps instance defaults.
	// The quick mode of the harness uses this to keep CI fast.
	Episodes int
	// Workers bounds how many independent runs (seeds, sweep points,
	// instances) execute concurrently: 0 uses GOMAXPROCS, 1 forces the
	// sequential order. Results are bit-identical for any worker count —
	// every run derives its randomness from BaseSeed plus its index and
	// writes into its own result slot (see pool.go). Timing experiments
	// (Fig2) always run sequentially so their measurements stay clean.
	Workers int
}

// withDefaults normalizes a config.
func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	return c
}

// ScoreRL learns and recommends over cfg.Runs seeds and returns the
// per-run §IV-A scores.
func ScoreRL(inst *dataset.Instance, opts core.Options, cfg Config) ([]float64, error) {
	cfg = cfg.withDefaults()
	if cfg.Episodes > 0 && opts.Episodes == 0 {
		opts.Episodes = cfg.Episodes
	}
	scores := make([]float64, cfg.Runs)
	err := forEach(cfg.workers(), cfg.Runs, func(r int) error {
		o := opts
		o.Seed = cfg.BaseSeed + int64(r)
		s, err := scoreEngine("sarsa", inst, o)
		if err != nil {
			return err
		}
		scores[r] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// ScoreEDA runs the EDA baseline over cfg.Runs tie-break seeds.
func ScoreEDA(inst *dataset.Instance, opts core.Options, cfg Config) ([]float64, error) {
	cfg = cfg.withDefaults()
	scores := make([]float64, cfg.Runs)
	err := forEach(cfg.workers(), cfg.Runs, func(r int) error {
		o := opts
		o.Seed = cfg.BaseSeed + int64(r)
		s, err := scoreEngine("eda", inst, o)
		if err != nil {
			return err
		}
		scores[r] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// ScoreOmega runs the adapted OMEGA baseline (deterministic).
func ScoreOmega(inst *dataset.Instance, opts core.Options) (float64, error) {
	return scoreEngine("omega", inst, opts)
}

// ScoreGold synthesizes and scores the gold standard.
func ScoreGold(inst *dataset.Instance) (float64, error) {
	return scoreEngine("gold", inst, core.Options{})
}

// courseInstances returns the four course-planning instances of §IV-A1.
func courseInstances() []*dataset.Instance {
	return append(univ.Univ1All(), univ.Univ2DS())
}

// tripInstances returns the two trip-planning instances.
func tripInstances() []*dataset.Instance {
	return trip.Instances()
}

// meanOrZero averages scores defensively.
func meanOrZero(xs []float64) float64 { return stats.Mean(xs) }
