package experiments

import (
	"strings"
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
)

// quick keeps CI fast: 2 runs, 60 episodes.
var quick = Config{Runs: 2, BaseSeed: 1, Episodes: 60}

func TestFig1ShapeHolds(t *testing.T) {
	rows, err := Fig1(Config{Runs: 3, BaseSeed: 1, Episodes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Fig1 rows = %d, want 6", len(rows))
	}
	var omegaZero int
	for _, r := range rows {
		// Gold dominates; RL-Planner is strictly positive.
		if r.Gold <= 0 {
			t.Errorf("%s: gold = %v", r.Instance, r.Gold)
		}
		if r.RLAvgSim <= 0 {
			t.Errorf("%s: RL avg score = %v", r.Instance, r.RLAvgSim)
		}
		if r.RLAvgSim > r.Gold+1e-9 {
			t.Errorf("%s: RL %v exceeds gold %v", r.Instance, r.RLAvgSim, r.Gold)
		}
		if r.Omega == 0 {
			omegaZero++
		}
	}
	// OMEGA fails the constraints "most of the time" (§IV-A4).
	if omegaZero < 4 {
		t.Errorf("OMEGA valid on %d of 6 instances — expected mostly failures", 6-omegaZero)
	}
	tbl := Fig1Table(rows, "Fig 1")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "RL-Planner(avg)") {
		t.Fatal("render missing header")
	}
}

func TestFig1Split(t *testing.T) {
	courses, err := Fig1Courses(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(courses) != 4 {
		t.Fatalf("Fig1a rows = %d", len(courses))
	}
	trips, err := Fig1Trips(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) != 2 {
		t.Fatalf("Fig1b rows = %d", len(trips))
	}
}

func TestTable4(t *testing.T) {
	r, err := Table4(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name     string
		rl, gold float64
	}{
		{"course overall", r.CourseRL.Overall, r.CourseGold.Overall},
		{"trip overall", r.TripRL.Overall, r.TripGold.Overall},
	} {
		if pair.rl < 1 || pair.rl > 5 || pair.gold < 1 || pair.gold > 5 {
			t.Errorf("%s out of scale: rl=%v gold=%v", pair.name, pair.rl, pair.gold)
		}
		// Gold should not trail RL by much (the paper has gold slightly
		// ahead everywhere).
		if pair.gold+0.75 < pair.rl {
			t.Errorf("%s: gold %v far below RL %v", pair.name, pair.gold, pair.rl)
		}
	}
	var sb strings.Builder
	if err := Table4Table(r).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Overall Rating") {
		t.Fatal("Table IV render incomplete")
	}
}

func TestTable5Transfer(t *testing.T) {
	cases, err := Table5(Config{Runs: 2, BaseSeed: 1, Episodes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("cases = %d", len(cases))
	}
	for _, c := range cases {
		if len(c.GoodPlan) == 0 {
			t.Errorf("%s→%s: empty good plan", c.Learnt, c.Applied)
		}
		if c.Mapping.ByID == 0 {
			t.Errorf("%s→%s: no id matches", c.Learnt, c.Applied)
		}
		// Table V notation: "CS 675 : core".
		if !strings.Contains(c.GoodPlan[0], " : ") {
			t.Errorf("plan step %q not in 'id : role' form", c.GoodPlan[0])
		}
	}
	var sb strings.Builder
	if err := TransferTable(cases, "Table V").Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestTable7And8Trips(t *testing.T) {
	cases, err := Table7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("cases = %d", len(cases))
	}
	for _, c := range cases {
		if c.Mapping.ByTopic == 0 {
			t.Errorf("%s→%s: no theme matches", c.Learnt, c.Applied)
		}
	}
	rows, err := Table8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table VIII rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Itinerary) == 0 {
			t.Errorf("%s: empty itinerary", r.City)
		}
		if r.TimeHours > 8+1e-9 {
			t.Errorf("%s: itinerary time %v exceeds the loosest threshold", r.City, r.TimeHours)
		}
	}
	var sb strings.Builder
	if err := Table8Table(rows).Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestSweepTables(t *testing.T) {
	// One representative sweep per family keeps the test fast; the
	// benchmarks run them all.
	s9, err := Table9(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(s9) != 2 {
		t.Fatalf("Table IX sweeps = %d", len(s9))
	}
	eps := s9[0]
	if eps.EDA == nil {
		t.Fatal("ε sweep should include EDA")
	}
	if len(eps.RLAvg) != 5 || len(eps.RLMin) != 5 {
		t.Fatalf("ε sweep has %d/%d points", len(eps.RLAvg), len(eps.RLMin))
	}
	// ε = 0.02 demands two fresh ideal topics per step — scores collapse
	// relative to the default, as in the paper's Table IX.
	if eps.RLAvg[4] >= eps.RLAvg[0] {
		t.Logf("note: ε=0.02 score %v vs default %v (paper collapses here)",
			eps.RLAvg[4], eps.RLAvg[0])
	}
	if s9[1].EDA != nil {
		t.Fatal("w1/w2 sweep should not include EDA")
	}
	var sb strings.Builder
	if err := eps.Render().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "—") {
		// Only sweeps without EDA render dashes; this one has EDA.
		t.Logf("render:\n%s", sb.String())
	}

	s14, err := Table14(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(s14) != 2 || len(s14[0].Labels) != 2 {
		t.Fatalf("Table XIV shape: %d sweeps", len(s14))
	}

	s16, err := Table16(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(s16) != 4 {
		t.Fatalf("Table XVI sweeps = %d", len(s16))
	}
}

func TestFig2Scaling(t *testing.T) {
	points, err := Fig2(Config{Runs: 1, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("Fig2 points = %d, want 10", len(points))
	}
	// Learning time must grow with N (linear per the paper): compare the
	// 1000-episode point against the 100-episode one per instance.
	byInstance := map[string][]Fig2Point{}
	for _, p := range points {
		byInstance[p.Instance] = append(byInstance[p.Instance], p)
	}
	for name, ps := range byInstance {
		first, last := ps[0], ps[len(ps)-1]
		if last.Learn <= first.Learn {
			t.Errorf("%s: learn(N=%d)=%v not above learn(N=%d)=%v",
				name, last.Episodes, last.Learn, first.Episodes, first.Learn)
		}
		for _, p := range ps {
			if p.Recommend.Seconds() > 2 {
				t.Errorf("%s: recommendation took %v — not interactive", name, p.Recommend)
			}
		}
	}
	var sb strings.Builder
	if err := Fig2Table(points).Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestScoreHelpers(t *testing.T) {
	inst := univ.Univ1DSCT()
	scores, err := ScoreRL(inst, core.Options{}, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("ScoreRL runs = %d", len(scores))
	}
	if _, err := ScoreGold(inst); err != nil {
		t.Fatal(err)
	}
	if _, err := ScoreOmega(inst, core.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(quick)
	if err != nil {
		t.Fatal(err)
	}
	dims := map[string]int{}
	for _, r := range rows {
		dims[r.Dimension]++
		if r.Score < 0 {
			t.Errorf("%s/%s: negative score", r.Dimension, r.Variant)
		}
		if r.LearnTime <= 0 {
			t.Errorf("%s/%s: no learn time measured", r.Dimension, r.Variant)
		}
	}
	for _, want := range []string{"similarity", "selection", "algorithm", "walk", "solver"} {
		if dims[want] == 0 {
			t.Errorf("dimension %q missing", want)
		}
	}
	var sb strings.Builder
	if err := AblationTable(rows).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "value-iteration") {
		t.Fatal("ablation table incomplete")
	}
}
