package experiments

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/stats"
)

// SweepResult is one parameter sweep of the robustness study (§IV-E): for
// each value of one parameter (all others at Table III defaults), the
// RL-Planner score under average and minimum similarity and, where the
// parameter applies to it, the EDA score. "—" cells in the rendered table
// mark parameters EDA has no counterpart for (N, α, γ, s1).
type SweepResult struct {
	// Instance names the dataset instance swept.
	Instance string
	// Param names the parameter.
	Param string
	// Labels renders the parameter values.
	Labels []string
	// RLAvg and RLMin are the RL-Planner scores per value.
	RLAvg, RLMin []float64
	// EDA is the EDA score per value; nil when not applicable.
	EDA []float64
}

// sweep runs one parameter sweep. optsFor returns the overrides for the
// i-th value (the sweep sets Sim itself — leave it zero).
func sweep(inst *dataset.Instance, param string, labels []string,
	optsFor func(i int) core.Options, edaApplies bool, cfg Config) (*SweepResult, error) {

	out := &SweepResult{Instance: inst.Name, Param: param, Labels: labels}
	out.RLAvg = make([]float64, len(labels))
	out.RLMin = make([]float64, len(labels))
	if edaApplies {
		out.EDA = make([]float64, len(labels))
	}
	// Sweep points are independent (all share Table III defaults except
	// the swept parameter), so the grid fans out across the pool.
	err := forEach(cfg.workers(), len(labels), func(i int) error {
		opts := optsFor(i)
		avg, err := ScoreRL(inst, opts, cfg)
		if err != nil {
			return fmt.Errorf("%s %s=%s: %w", inst.Name, param, labels[i], err)
		}
		out.RLAvg[i] = meanOrZero(avg)

		minOpts := opts
		minOpts.Sim, minOpts.HasSim = seqsim.Minimum, true
		min, err := ScoreRL(inst, minOpts, cfg)
		if err != nil {
			return err
		}
		out.RLMin[i] = meanOrZero(min)

		if edaApplies {
			eda, err := ScoreEDA(inst, opts, cfg)
			if err != nil {
				return err
			}
			out.EDA[i] = meanOrZero(eda)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render renders the sweep as a text table.
func (s *SweepResult) Render() *stats.Table {
	t := &stats.Table{
		Title:  fmt.Sprintf("%s — %s sweep", s.Instance, s.Param),
		Header: append([]string{"Series"}, s.Labels...),
	}
	row := func(name string, vals []float64) {
		cells := []string{name}
		for _, v := range vals {
			cells = append(cells, stats.F2(v))
		}
		t.AddRow(cells...)
	}
	row("RL-Planner (avg sim)", s.RLAvg)
	row("RL-Planner (min sim)", s.RLMin)
	if s.EDA != nil {
		row("EDA", s.EDA)
	} else {
		cells := []string{"EDA"}
		for range s.Labels {
			cells = append(cells, "—")
		}
		t.AddRow(cells...)
	}
	return t
}

// floatLabels renders a float slice as labels.
func floatLabels(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf("%g", v)
	}
	return out
}

// Table9 reproduces Table IX (Univ-1 DS-CT): the ε sweep and the (w1,w2)
// sweep. EDA shares the ε parameter.
func Table9(cfg Config) ([]*SweepResult, error) {
	inst := univ.Univ1DSCT()
	eps := []float64{0.0025, 0.005, 0.01, 0.0175, 0.02}
	s1, err := sweep(inst, "Topic Coverage Threshold (ε)", floatLabels(eps),
		func(i int) core.Options { return core.Options{Epsilon: eps[i], HasEpsilon: true} },
		true, cfg)
	if err != nil {
		return nil, err
	}
	w := [][2]float64{{0.4, 0.6}, {0.8, 0.2}, {0.5, 0.5}, {0.6, 0.4}, {0.65, 0.35}}
	labels := make([]string, len(w))
	for i, p := range w {
		labels[i] = fmt.Sprintf("%g/%g", p[0], p[1])
	}
	s2, err := sweep(inst, "w1, w2", labels,
		func(i int) core.Options { return core.Options{W1: w[i][0], W2: w[i][1]} },
		false, cfg)
	if err != nil {
		return nil, err
	}
	return []*SweepResult{s1, s2}, nil
}

// Table10 reproduces Table X (Univ-1 DS-CT): N, α and γ sweeps.
func Table10(cfg Config) ([]*SweepResult, error) {
	return learnerSweeps(univ.Univ1DSCT(), cfg,
		[]int{100, 200, 300, 500, 1000},
		[]float64{0.5, 0.6, 0.75, 0.8, 0.95},
		[]float64{0.5, 0.6, 0.9, 0.95, 0.99})
}

// learnerSweeps runs the N/α/γ sweeps shared by Tables X, XII and XV.
func learnerSweeps(inst *dataset.Instance, cfg Config,
	ns []int, alphas, gammas []float64) ([]*SweepResult, error) {

	nLabels := make([]string, len(ns))
	for i, n := range ns {
		nLabels[i] = fmt.Sprintf("%d", n)
	}
	s1, err := sweep(inst, "Number of Episodes (N)", nLabels,
		func(i int) core.Options { return core.Options{Episodes: ns[i]} },
		false, cfg)
	if err != nil {
		return nil, err
	}
	s2, err := sweep(inst, "Learning Rate (α)", floatLabels(alphas),
		func(i int) core.Options { return core.Options{Alpha: alphas[i]} },
		false, cfg)
	if err != nil {
		return nil, err
	}
	s3, err := sweep(inst, "Discount Factor (γ)", floatLabels(gammas),
		func(i int) core.Options { return core.Options{Gamma: gammas[i]} },
		false, cfg)
	if err != nil {
		return nil, err
	}
	return []*SweepResult{s1, s2, s3}, nil
}

// deltaBetaSweep runs a (δ,β) sweep with EDA (its reward uses δ,β too).
func deltaBetaSweep(inst *dataset.Instance, pairs [][2]float64, cfg Config) (*SweepResult, error) {
	labels := make([]string, len(pairs))
	for i, p := range pairs {
		labels[i] = fmt.Sprintf("%g/%g", p[0], p[1])
	}
	return sweep(inst, "δ, β", labels,
		func(i int) core.Options { return core.Options{Delta: pairs[i][0], Beta: pairs[i][1]} },
		true, cfg)
}

// startSweep runs a starting-point sweep (no EDA: s1 fixes its walk too,
// but the paper marks these cells "—" because EDA is model-free).
func startSweep(inst *dataset.Instance, starts []string, cfg Config) (*SweepResult, error) {
	return sweep(inst, "Starting Point (s1)", starts,
		func(i int) core.Options { return core.Options{Start: starts[i]} },
		false, cfg)
}

// Table11 reproduces Table XI (Univ-1 DS-CT): starting points and (δ,β).
func Table11(cfg Config) ([]*SweepResult, error) {
	inst := univ.Univ1DSCT()
	s1, err := startSweep(inst, []string{"CS 644", "CS 636", "CS 675", "MATH 661"}, cfg)
	if err != nil {
		return nil, err
	}
	s2, err := deltaBetaSweep(inst, [][2]float64{
		{0.4, 0.6}, {0.45, 0.55}, {0.5, 0.5}, {0.55, 0.45}, {0.6, 0.4},
	}, cfg)
	if err != nil {
		return nil, err
	}
	return []*SweepResult{s1, s2}, nil
}

// Table12 reproduces Table XII (Univ-2): N, α, γ and ε sweeps.
func Table12(cfg Config) ([]*SweepResult, error) {
	inst := univ.Univ2DS()
	base, err := learnerSweeps(inst, cfg,
		[]int{100, 200, 300, 500, 1000},
		[]float64{0.5, 0.6, 0.75, 0.8, 0.9},
		[]float64{0.7, 0.75, 0.8, 0.9, 0.95})
	if err != nil {
		return nil, err
	}
	eps := []float64{0.0025, 0.005, 0.01, 0.015, 0.02}
	s4, err := sweep(inst, "Topic Coverage Threshold (ε)", floatLabels(eps),
		func(i int) core.Options { return core.Options{Epsilon: eps[i], HasEpsilon: true} },
		true, cfg)
	if err != nil {
		return nil, err
	}
	return append(base, s4), nil
}

// Table13 reproduces Table XIII (Univ-2): sub-discipline weight vectors.
func Table13(cfg Config) ([]*SweepResult, error) {
	inst := univ.Univ2DS()
	vectors := [][]float64{
		{0.2, 0.01, 0.16, 0.4, 0.01, 0.22},
		{0.21, 0.01, 0.15, 0.41, 0.02, 0.2},
		{0.25, 0.01, 0.15, 0.4, 0.01, 0.18},
	}
	labels := make([]string, len(vectors))
	for i, v := range vectors {
		labels[i] = fmt.Sprintf("%v", v)
	}
	s, err := sweep(inst, "w1..w6", labels,
		func(i int) core.Options { return core.Options{CategoryWeights: vectors[i]} },
		false, cfg)
	if err != nil {
		return nil, err
	}
	return []*SweepResult{s}, nil
}

// Table14 reproduces Table XIV (Univ-2): starting points and (δ,β).
// MS&E 237 is a secondary course, so starting there breaks the template's
// leading-primary convention — the degraded scores mirror the zeros the
// paper's minimum-similarity row shows.
func Table14(cfg Config) ([]*SweepResult, error) {
	inst := univ.Univ2DS()
	s1, err := startSweep(inst, []string{"STATS 263", "MS&E 237"}, cfg)
	if err != nil {
		return nil, err
	}
	s2, err := deltaBetaSweep(inst, [][2]float64{
		{0.2, 0.8}, {0.3, 0.7}, {0.4, 0.6}, {0.6, 0.4}, {0.7, 0.3}, {0.8, 0.2},
	}, cfg)
	if err != nil {
		return nil, err
	}
	return []*SweepResult{s1, s2}, nil
}

// Table15 reproduces Table XV (NYC and Paris): N, α, γ and the distance
// threshold d (EDA shares d).
func Table15(cfg Config) ([]*SweepResult, error) {
	var out []*SweepResult
	for _, inst := range trip.Instances() {
		base, err := learnerSweeps(inst, cfg,
			[]int{100, 200, 300, 500, 1000},
			[]float64{0.5, 0.6, 0.75, 0.8, 0.95},
			[]float64{0.5, 0.6, 0.75, 0.8, 0.95})
		if err != nil {
			return nil, err
		}
		out = append(out, base...)
		ds := []float64{4, 5}
		s, err := sweep(inst, "Distance Threshold (d)", floatLabels(ds),
			func(i int) core.Options { return core.Options{MaxDistanceKm: ds[i]} },
			true, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Table16 reproduces Table XVI (NYC and Paris): the time threshold t and
// (δ,β) sweeps (EDA applies to both).
func Table16(cfg Config) ([]*SweepResult, error) {
	var out []*SweepResult
	for _, inst := range trip.Instances() {
		ts := []float64{5, 6, 8}
		s1, err := sweep(inst, "Time Threshold (t)", floatLabels(ts),
			func(i int) core.Options { return core.Options{TimeLimit: ts[i]} },
			true, cfg)
		if err != nil {
			return nil, err
		}
		s2, err := deltaBetaSweep(inst, [][2]float64{
			{0.4, 0.6}, {0.45, 0.55}, {0.5, 0.5}, {0.55, 0.45}, {0.6, 0.4},
		}, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, s1, s2)
	}
	return out, nil
}
