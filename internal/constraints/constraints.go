// Package constraints models the hard and soft constraints of the Task
// Planning Problem (§II-A.2, §II-A.3) and provides a plan validator that
// checks every hard constraint — the executable counterpart of Theorem 1.
//
// Hard constraints: P_hard = ⟨#cr, #primary, #secondary, gap⟩, extended for
// trip planning with the distance threshold d, the time threshold t (the
// trip instantiation of #cr) and the "no two consecutive POIs of the same
// theme" gap rule (§IV-A1).
//
// Soft constraints: P_soft = ⟨T_ideal, IT⟩ where IT is a set of ideal
// primary/secondary interleaving permutations (§II-A.3).
package constraints

import (
	"fmt"
	"strings"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
)

// CreditMode says whether #cr is a floor (course credits: "at least 30
// credit hours") or a ceiling (trip visitation time: "must be completed in
// 6 hours").
type CreditMode uint8

const (
	// MinCredits requires the plan's total credits to reach #cr.
	MinCredits CreditMode = iota
	// MaxCredits requires the plan's total credits to stay within #cr.
	MaxCredits
)

// Hard is P_hard.
type Hard struct {
	// Credits is #cr: minimum credit hours (courses) or the visitation
	// time budget t in hours (trips), interpreted per CreditMode.
	Credits float64
	// CreditMode selects floor vs ceiling semantics for Credits.
	CreditMode CreditMode
	// Primary is #primary, the required number of primary items.
	Primary int
	// Secondary is #secondary, the required number of secondary items.
	Secondary int
	// Gap is the minimum sequence distance between an item and its
	// antecedents (gap in Eq. 4).
	Gap int
	// MaxDistanceKm is the trip distance threshold d; 0 disables the check.
	MaxDistanceKm float64
	// ThemeGap, when set, forbids two consecutive items of the same
	// Category (the trip-planning gap rule of §IV-A1).
	ThemeGap bool
}

// Length returns the target plan length #primary + #secondary.
func (h Hard) Length() int { return h.Primary + h.Secondary }

// String renders P_hard in the paper's quadruple notation.
func (h Hard) String() string {
	return fmt.Sprintf("⟨%g, %d, %d, %d⟩", h.Credits, h.Primary, h.Secondary, h.Gap)
}

// Template is IT: a set of permutations of primary/secondary types, each of
// length #primary + #secondary.
type Template [][]item.Type

// Validate checks that every permutation has exactly primary p's and
// secondary s's.
func (it Template) Validate(primary, secondary int) error {
	for i, perm := range it {
		var p, s int
		for _, t := range perm {
			if t == item.Primary {
				p++
			} else {
				s++
			}
		}
		if p != primary || s != secondary {
			return fmt.Errorf("constraints: permutation %d has %d primary / %d secondary, want %d/%d",
				i, p, s, primary, secondary)
		}
	}
	return nil
}

// ParseTemplate parses permutations written as in the paper, e.g.
// "primary, primary, secondary" (also accepting the shorthand "P"/"S").
func ParseTemplate(perms ...string) (Template, error) {
	out := make(Template, 0, len(perms))
	for _, perm := range perms {
		var seq []item.Type
		for _, tok := range strings.Split(perm, ",") {
			switch strings.ToLower(strings.TrimSpace(tok)) {
			case "primary", "p", "core":
				seq = append(seq, item.Primary)
			case "secondary", "s", "elective":
				seq = append(seq, item.Secondary)
			case "":
				// tolerate trailing commas
			default:
				return nil, fmt.Errorf("constraints: unknown template token %q", tok)
			}
		}
		out = append(out, seq)
	}
	return out, nil
}

// MustParseTemplate is ParseTemplate that panics on error.
func MustParseTemplate(perms ...string) Template {
	t, err := ParseTemplate(perms...)
	if err != nil {
		panic(err)
	}
	return t
}

// String renders the template in the paper's notation.
func (it Template) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, perm := range it {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('[')
		for j, t := range perm {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}

// Soft is P_soft = ⟨T_ideal, IT⟩.
type Soft struct {
	// Ideal is T_ideal, the user's desired topic coverage vector.
	Ideal bitset.Set
	// Template is IT, the expert's ideal interleaving permutations.
	Template Template
}

// ViolationKind classifies a hard-constraint violation.
type ViolationKind uint8

const (
	// ViolationCredits: total credits below the floor / above the ceiling.
	ViolationCredits ViolationKind = iota
	// ViolationLength: plan length differs from #primary + #secondary.
	ViolationLength
	// ViolationSplit: fewer than #primary primary items (Case II of
	// Theorem 1's proof; the converse Case I is consistent).
	ViolationSplit
	// ViolationGap: an item's antecedent expression is unsatisfied at its
	// position for the required gap.
	ViolationGap
	// ViolationThemeGap: two consecutive items share a theme/category.
	ViolationThemeGap
	// ViolationDistance: total walking distance exceeds d.
	ViolationDistance
	// ViolationDuplicate: an item occurs more than once.
	ViolationDuplicate
)

func (k ViolationKind) String() string {
	switch k {
	case ViolationCredits:
		return "credits"
	case ViolationLength:
		return "length"
	case ViolationSplit:
		return "primary/secondary split"
	case ViolationGap:
		return "antecedent gap"
	case ViolationThemeGap:
		return "theme gap"
	case ViolationDistance:
		return "distance"
	case ViolationDuplicate:
		return "duplicate item"
	default:
		return fmt.Sprintf("ViolationKind(%d)", uint8(k))
	}
}

// Violation describes one failed hard constraint.
type Violation struct {
	Kind ViolationKind
	// Pos is the offending sequence position, or -1 for plan-level checks.
	Pos int
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) String() string {
	if v.Pos >= 0 {
		return fmt.Sprintf("%s at position %d: %s", v.Kind, v.Pos, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
}

// Check validates a plan (a sequence of catalog indices) against the hard
// constraints. It returns every violation found; an empty result means the
// plan satisfies P_hard.
func Check(c *item.Catalog, seq []int, h Hard) []Violation {
	var out []Violation

	// Duplicates invalidate positions-based checks, detect them first.
	seen := make(map[int]int, len(seq))
	for pos, idx := range seq {
		if first, dup := seen[idx]; dup {
			out = append(out, Violation{
				Kind: ViolationDuplicate, Pos: pos,
				Detail: fmt.Sprintf("%s already at position %d", c.At(idx).ID, first),
			})
		} else {
			seen[idx] = pos
		}
	}

	// (1) Credit constraint (Theorem 1, part 1).
	total := c.TotalCredits(seq)
	switch h.CreditMode {
	case MinCredits:
		if total < h.Credits {
			out = append(out, Violation{
				Kind: ViolationCredits, Pos: -1,
				Detail: fmt.Sprintf("total %g < required %g", total, h.Credits),
			})
		}
	case MaxCredits:
		if total > h.Credits {
			out = append(out, Violation{
				Kind: ViolationCredits, Pos: -1,
				Detail: fmt.Sprintf("total %g > budget %g", total, h.Credits),
			})
		}
	}

	// (2,3) Split (Theorem 1, parts 2–3). A primary counted as secondary is
	// fine (Case I), so the requirements are |S| = length target and at
	// least #primary primaries.
	if want := h.Length(); want > 0 && len(seq) != want {
		out = append(out, Violation{
			Kind: ViolationLength, Pos: -1,
			Detail: fmt.Sprintf("plan has %d items, want %d", len(seq), want),
		})
	}
	var primaries int
	for _, idx := range seq {
		if c.At(idx).Type == item.Primary {
			primaries++
		}
	}
	if primaries < h.Primary {
		out = append(out, Violation{
			Kind: ViolationSplit, Pos: -1,
			Detail: fmt.Sprintf("%d primary items, want at least %d", primaries, h.Primary),
		})
	}

	// (4) Antecedent gap (Theorem 1, part 4 / Eq. 4).
	positions := make(map[string]int, len(seq))
	for pos, idx := range seq {
		m := c.At(idx)
		if !prereq.Satisfied(m.Prereq, pos, positions, h.Gap) {
			out = append(out, Violation{
				Kind: ViolationGap, Pos: pos,
				Detail: fmt.Sprintf("%s requires %s within gap %d", m.ID, prereq.Format(m.Prereq), h.Gap),
			})
		}
		positions[m.ID] = pos
	}

	// Trip-specific: theme gap.
	if h.ThemeGap {
		for pos := 1; pos < len(seq); pos++ {
			prev, cur := c.At(seq[pos-1]), c.At(seq[pos])
			if cur.Category != item.NoCategory && cur.Category == prev.Category {
				out = append(out, Violation{
					Kind: ViolationThemeGap, Pos: pos,
					Detail: fmt.Sprintf("%s follows %s with the same theme", cur.ID, prev.ID),
				})
			}
		}
	}

	// Trip-specific: distance threshold d.
	if h.MaxDistanceKm > 0 {
		pts := make([]geo.Point, len(seq))
		for i, idx := range seq {
			m := c.At(idx)
			pts[i] = geo.Point{Lat: m.Lat, Lon: m.Lon}
		}
		if d := geo.PathLength(pts); d > h.MaxDistanceKm {
			out = append(out, Violation{
				Kind: ViolationDistance, Pos: -1,
				Detail: fmt.Sprintf("path %.2f km exceeds threshold %g km", d, h.MaxDistanceKm),
			})
		}
	}

	return out
}

// Satisfies reports whether the plan meets every hard constraint.
func Satisfies(c *item.Catalog, seq []int, h Hard) bool {
	return len(Check(c, seq, h)) == 0
}
