package constraints_test

import (
	"strings"
	"testing"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/fixture"
	"github.com/rlplanner/rlplanner/internal/item"
)

// seq maps ids to catalog indices, failing the test on unknown ids.
func seq(t *testing.T, c *item.Catalog, ids ...string) []int {
	t.Helper()
	out := make([]int, len(ids))
	for i, id := range ids {
		idx, ok := c.Index(id)
		if !ok {
			t.Fatalf("unknown id %q", id)
		}
		out[i] = idx
	}
	return out
}

func TestPaperSequenceSatisfiesHard(t *testing.T) {
	// §II-B.1: m1 → m2 → m4 → m5 → m6 → m3 fully satisfies permutation I2
	// and all hard constraints (m5's OR prereq via m2 at distance 3; m6's
	// AND prereq via m4 at distance 2... m2 at distance 3, m4 at distance 2).
	// With gap 3, m6 at position 4 needs Linear Algebra (pos 2, dist 2):
	// that violates the gap, so use the checker to document it precisely.
	c := fixture.Courses()
	h := fixture.CourseHard()
	plan := seq(t, c,
		"Data Structures and Algorithms", "Data Mining", "Linear Algebra",
		"Big Data", "Machine Learning", "Data Analytics")
	vs := constraints.Check(c, plan, h)
	// Big Data at pos 3: Data Mining at pos 1, dist 2 < gap 3 → violation.
	// Machine Learning at pos 4: Linear Algebra dist 2 < 3 → violation.
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	for _, v := range vs {
		if v.Kind != constraints.ViolationGap {
			t.Fatalf("unexpected kind %v", v.Kind)
		}
	}

	// Reordering to give prerequisites room satisfies everything:
	// DM(0), DSA(1), LA(2), BD(3: DM dist 3 ≥ 3 ✓), DA(4), ML(5: LA dist 3 ✓, DM dist 5 ✓).
	good := seq(t, c,
		"Data Mining", "Data Structures and Algorithms", "Linear Algebra",
		"Big Data", "Data Analytics", "Machine Learning")
	if vs := constraints.Check(c, good, h); len(vs) != 0 {
		t.Fatalf("good plan violations = %v", vs)
	}
	if !constraints.Satisfies(c, good, h) {
		t.Fatal("Satisfies = false for valid plan")
	}
}

func TestCreditFloor(t *testing.T) {
	c := fixture.Courses()
	h := fixture.CourseHard() // needs 18 credits
	short := seq(t, c, "Data Mining", "Linear Algebra")
	vs := constraints.Check(c, short, h)
	if !hasKind(vs, constraints.ViolationCredits) {
		t.Fatalf("no credit violation in %v", vs)
	}
}

func TestCreditCeiling(t *testing.T) {
	c := fixture.Trip()
	h := fixture.TripHard() // 6-hour budget
	// Louvre(2) + Orsay(1.5) + Eiffel(1.5) + Notre-Dame(1) + Seine(1) = 7h.
	long := seq(t, c, "Louvre Museum", "Musée d'Orsay", "Eiffel Tower",
		"Cathédrale Notre-Dame de Paris", "The River Seine")
	vs := constraints.Check(c, long, h)
	if !hasKind(vs, constraints.ViolationCredits) {
		t.Fatalf("no budget violation in %v", vs)
	}
}

func TestSplitCaseIConsistent(t *testing.T) {
	// Case I of Theorem 1's proof: extra primaries are fine.
	c := fixture.Courses()
	h := constraints.Hard{Credits: 9, Primary: 2, Secondary: 1, Gap: 1}
	plan := seq(t, c, "Data Structures and Algorithms", "Data Analytics", "Machine Learning")
	// 3 primaries where 2 primary + 1 secondary were requested: allowed.
	for _, v := range constraints.Check(c, plan, h) {
		if v.Kind == constraints.ViolationSplit {
			t.Fatalf("Case I flagged as split violation: %v", v)
		}
	}
}

func TestSplitCaseIIViolation(t *testing.T) {
	// Case II: fewer primaries than required is a violation.
	c := fixture.Courses()
	h := constraints.Hard{Credits: 9, Primary: 2, Secondary: 1, Gap: 1}
	plan := seq(t, c, "Data Mining", "Linear Algebra", "Data Analytics")
	vs := constraints.Check(c, plan, h)
	if !hasKind(vs, constraints.ViolationSplit) {
		t.Fatalf("no split violation in %v", vs)
	}
}

func TestLengthViolation(t *testing.T) {
	c := fixture.Courses()
	h := constraints.Hard{Credits: 6, Primary: 1, Secondary: 2, Gap: 1}
	plan := seq(t, c, "Data Mining", "Data Analytics")
	vs := constraints.Check(c, plan, h)
	if !hasKind(vs, constraints.ViolationLength) {
		t.Fatalf("no length violation in %v", vs)
	}
}

func TestDuplicateViolation(t *testing.T) {
	c := fixture.Courses()
	h := constraints.Hard{Credits: 6, Primary: 0, Secondary: 2, Gap: 1}
	plan := seq(t, c, "Data Mining", "Data Mining")
	vs := constraints.Check(c, plan, h)
	if !hasKind(vs, constraints.ViolationDuplicate) {
		t.Fatalf("no duplicate violation in %v", vs)
	}
}

func TestThemeGap(t *testing.T) {
	c := fixture.Trip()
	h := constraints.Hard{Credits: 6, CreditMode: constraints.MaxCredits,
		Primary: 1, Secondary: 1, Gap: 1, ThemeGap: true}
	// Louvre (museum) directly followed by Orsay (museum): theme violation.
	plan := seq(t, c, "Louvre Museum", "Musée d'Orsay")
	vs := constraints.Check(c, plan, h)
	if !hasKind(vs, constraints.ViolationThemeGap) {
		t.Fatalf("no theme violation in %v", vs)
	}
	// Louvre then Le Cinq (restaurant, prereq satisfied at gap 1): valid.
	plan = seq(t, c, "Louvre Museum", "Le Cinq")
	vs = constraints.Check(c, plan, h)
	if hasKind(vs, constraints.ViolationThemeGap) || hasKind(vs, constraints.ViolationGap) {
		t.Fatalf("unexpected violations %v", vs)
	}
}

func TestDistanceThreshold(t *testing.T) {
	c := fixture.Trip()
	h := constraints.Hard{Credits: 10, CreditMode: constraints.MaxCredits,
		Primary: 1, Secondary: 1, Gap: 0, MaxDistanceKm: 0.5}
	// Eiffel → Pantheon is far more than 0.5 km.
	plan := seq(t, c, "Eiffel Tower", "Pantheon")
	vs := constraints.Check(c, plan, h)
	if !hasKind(vs, constraints.ViolationDistance) {
		t.Fatalf("no distance violation in %v", vs)
	}
	h.MaxDistanceKm = 50
	if vs := constraints.Check(c, plan, h); hasKind(vs, constraints.ViolationDistance) {
		t.Fatalf("spurious distance violation in %v", vs)
	}
}

func TestTripAntecedent(t *testing.T) {
	c := fixture.Trip()
	h := fixture.TripHard()
	// Le Cinq before any museum violates the antecedent rule (gap 1).
	plan := seq(t, c, "Le Cinq", "Louvre Museum")
	vs := constraints.Check(c, plan, h)
	if !hasKind(vs, constraints.ViolationGap) {
		t.Fatalf("no antecedent violation in %v", vs)
	}
}

func TestTemplateValidate(t *testing.T) {
	it := fixture.CourseTemplate()
	if err := it.Validate(3, 3); err != nil {
		t.Fatalf("Validate(3,3): %v", err)
	}
	if err := it.Validate(4, 2); err == nil {
		t.Fatal("Validate(4,2) should fail")
	}
}

func TestParseTemplate(t *testing.T) {
	it, err := constraints.ParseTemplate("P, S, p, core, elective,")
	if err != nil {
		t.Fatal(err)
	}
	want := []item.Type{item.Primary, item.Secondary, item.Primary, item.Primary, item.Secondary}
	if len(it[0]) != len(want) {
		t.Fatalf("parsed %v", it[0])
	}
	for i, ty := range want {
		if it[0][i] != ty {
			t.Fatalf("position %d = %v, want %v", i, it[0][i], ty)
		}
	}
	if _, err := constraints.ParseTemplate("primary, tertiary"); err == nil {
		t.Fatal("bad token accepted")
	}
}

func TestStringRendering(t *testing.T) {
	h := constraints.Hard{Credits: 30, Primary: 5, Secondary: 5, Gap: 3}
	if h.String() != "⟨30, 5, 5, 3⟩" {
		t.Fatalf("Hard.String = %s", h.String())
	}
	it := constraints.MustParseTemplate("primary, secondary")
	if !strings.Contains(it.String(), "primary, secondary") {
		t.Fatalf("Template.String = %s", it.String())
	}
	v := constraints.Violation{Kind: constraints.ViolationGap, Pos: 2, Detail: "x"}
	if !strings.Contains(v.String(), "position 2") {
		t.Fatalf("Violation.String = %s", v)
	}
	for k := constraints.ViolationCredits; k <= constraints.ViolationDuplicate; k++ {
		if strings.HasPrefix(k.String(), "ViolationKind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func hasKind(vs []constraints.Violation, k constraints.ViolationKind) bool {
	for _, v := range vs {
		if v.Kind == k {
			return true
		}
	}
	return false
}
