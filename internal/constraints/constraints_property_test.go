package constraints_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset/synth"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/item"
)

// randomPlan draws a duplicate-free random sequence of n catalog indices.
func randomPlan(r *rand.Rand, catalogSize, n int) []int {
	perm := r.Perm(catalogSize)
	if n > catalogSize {
		n = catalogSize
	}
	return perm[:n]
}

func TestPropertyCheckSatisfiesAgree(t *testing.T) {
	// Satisfies must be exactly "Check returned nothing".
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, err := synth.Generate(synth.Params{Seed: seed, Items: 20})
		if err != nil {
			return false
		}
		plan := randomPlan(r, inst.Catalog.Len(), 2+r.Intn(10))
		vs := constraints.Check(inst.Catalog, plan, inst.Hard)
		return constraints.Satisfies(inst.Catalog, plan, inst.Hard) == (len(vs) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScoreZeroIffViolating(t *testing.T) {
	// eval.Score is zero exactly when Check reports a violation.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, err := synth.Generate(synth.Params{Seed: seed, Items: 24})
		if err != nil {
			return false
		}
		plan := randomPlan(r, inst.Catalog.Len(), 2+r.Intn(12))
		violating := len(constraints.Check(inst.Catalog, plan, inst.Hard)) > 0
		score := eval.Score(inst, plan)
		if violating {
			return score == 0
		}
		return score > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDuplicatesAlwaysViolate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, err := synth.Generate(synth.Params{Seed: seed, Items: 20})
		if err != nil {
			return false
		}
		idx := r.Intn(inst.Catalog.Len())
		plan := []int{idx, idx}
		vs := constraints.Check(inst.Catalog, plan, inst.Hard)
		for _, v := range vs {
			if v.Kind == constraints.ViolationDuplicate {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGapRelaxationMonotone(t *testing.T) {
	// Shrinking the gap can only remove gap violations, never add them.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, err := synth.Generate(synth.Params{Seed: seed, Items: 25, PrereqDensity: 0.5})
		if err != nil {
			return false
		}
		plan := randomPlan(r, inst.Catalog.Len(), 10)
		hard := inst.Hard
		count := func(gap int) int {
			h := hard
			h.Gap = gap
			n := 0
			for _, v := range constraints.Check(inst.Catalog, plan, h) {
				if v.Kind == constraints.ViolationGap {
					n++
				}
			}
			return n
		}
		return count(1) <= count(3) && count(0) <= count(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExtraPrimariesNeverSplitViolate(t *testing.T) {
	// Case I of Theorem 1: all-primary plans of the right length never
	// trigger the split violation.
	f := func(seed int64) bool {
		inst, err := synth.Generate(synth.Params{Seed: seed, Items: 30})
		if err != nil {
			return false
		}
		var primaries []int
		for i := 0; i < inst.Catalog.Len(); i++ {
			if inst.Catalog.At(i).Type == item.Primary {
				primaries = append(primaries, i)
			}
		}
		want := inst.Hard.Length()
		if len(primaries) < want {
			return true // not enough primaries to build the case
		}
		plan := primaries[:want]
		for _, v := range constraints.Check(inst.Catalog, plan, inst.Hard) {
			if v.Kind == constraints.ViolationSplit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
