package prereq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randExpr builds a random expression over items "i0".."i9" with bounded
// depth.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		return Ref(fmt.Sprintf("i%d", r.Intn(10)))
	}
	n := 2 + r.Intn(2)
	kids := make([]Expr, n)
	for i := range kids {
		kids[i] = randExpr(r, depth-1)
	}
	if r.Intn(2) == 0 {
		return And(kids)
	}
	return Or(kids)
}

// randPositions places a random subset of items at random positions.
func randPositions(r *rand.Rand) map[string]int {
	pos := make(map[string]int)
	for i := 0; i < 10; i++ {
		if r.Intn(2) == 0 {
			pos[fmt.Sprintf("i%d", i)] = r.Intn(8)
		}
	}
	return pos
}

func TestPropertyGapMonotone(t *testing.T) {
	// Satisfaction is antitone in gap: if an expression holds at gap g,
	// it holds at every smaller gap.
	r := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randExpr(rr, 2)
		pos := randPositions(rr)
		at := 8 + rr.Intn(4)
		g := 1 + rr.Intn(5)
		if !Satisfied(e, at, pos, g) {
			return true // nothing to check
		}
		for smaller := g - 1; smaller >= 0; smaller-- {
			if !Satisfied(e, at, pos, smaller) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestPropertyPositionMonotone(t *testing.T) {
	// Satisfaction is monotone in the item's position: moving the item
	// later (with the same antecedent positions) cannot break it.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randExpr(rr, 2)
		pos := randPositions(rr)
		at := 8 + rr.Intn(4)
		g := 1 + rr.Intn(4)
		if !Satisfied(e, at, pos, g) {
			return true
		}
		return Satisfied(e, at+1, pos, g) && Satisfied(e, at+5, pos, g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParseFormatFixpoint(t *testing.T) {
	// Format(Parse(Format(e))) == Format(e): rendering is a fixpoint.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randExpr(rr, 3)
		rendered := Format(e)
		parsed, err := Parse(rendered)
		if err != nil {
			return false
		}
		return Format(parsed) == rendered
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParsedSemanticsMatch(t *testing.T) {
	// The reparsed expression evaluates identically to the original over
	// random position maps.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randExpr(rr, 3)
		parsed, err := Parse(Format(e))
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			pos := randPositions(rr)
			at := rr.Intn(12)
			g := rr.Intn(5)
			if Satisfied(e, at, pos, g) != Satisfied(parsed, at, pos, g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAndImpliesOr(t *testing.T) {
	// And(kids) satisfied ⇒ Or(kids) satisfied (for non-empty kid sets).
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(3)
		kids := make([]Expr, n)
		for i := range kids {
			kids[i] = randExpr(rr, 1)
		}
		pos := randPositions(rr)
		at := 8 + rr.Intn(4)
		g := 1 + rr.Intn(3)
		if And(kids).SatisfiedAt(at, pos, g) {
			return Or(kids).SatisfiedAt(at, pos, g)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
