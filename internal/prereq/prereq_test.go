package prereq

import (
	"testing"
)

func TestNoneAlwaysSatisfied(t *testing.T) {
	if !Satisfied(nil, 0, nil, 3) {
		t.Fatal("nil expr should be satisfied")
	}
}

func TestRefGapSemantics(t *testing.T) {
	// Paper course example: gap = 3 enforces "a semester before" when 3
	// courses are taken per semester.
	positions := map[string]int{"Data Mining": 0}
	e := Ref("Data Mining")
	if e.SatisfiedAt(2, positions, 3) {
		t.Fatal("distance 2 should not satisfy gap 3")
	}
	if !e.SatisfiedAt(3, positions, 3) {
		t.Fatal("distance 3 should satisfy gap 3")
	}
	if e.SatisfiedAt(5, map[string]int{}, 1) {
		t.Fatal("missing antecedent should not satisfy")
	}
}

func TestOrSemantics(t *testing.T) {
	// m5 Big Data: [Data Mining OR Data Analytics] — any one suffices.
	e := MustParse("Data Mining OR Data Analytics")
	pos := map[string]int{"Data Analytics": 1}
	if !Satisfied(e, 4, pos, 3) {
		t.Fatal("OR with one satisfied branch should hold")
	}
	if Satisfied(e, 3, pos, 3) {
		t.Fatal("OR with insufficient gap should fail")
	}
	if Satisfied(e, 9, map[string]int{}, 1) {
		t.Fatal("OR with no antecedents taken should fail")
	}
}

func TestAndSemantics(t *testing.T) {
	// m6 Machine Learning: [Linear Algebra AND Data Mining] — all must hold.
	e := MustParse("Linear Algebra AND Data Mining")
	pos := map[string]int{"Linear Algebra": 0, "Data Mining": 1}
	if !Satisfied(e, 4, pos, 3) {
		t.Fatal("AND with both satisfied should hold")
	}
	if Satisfied(e, 3, pos, 3) {
		t.Fatal("AND where one branch misses the gap should fail")
	}
	if Satisfied(e, 4, map[string]int{"Linear Algebra": 0}, 3) {
		t.Fatal("AND with a missing antecedent should fail")
	}
}

func TestParseEmptyForms(t *testing.T) {
	for _, s := range []string{"", "[]", "  ", "[ ]"} {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if e != nil {
			t.Fatalf("Parse(%q) = %v, want nil", s, e)
		}
	}
}

func TestParseBracketedPaperNotation(t *testing.T) {
	e, err := Parse("[Data Mining OR Data Analytics]")
	if err != nil {
		t.Fatal(err)
	}
	o, ok := e.(Or)
	if !ok || len(o) != 2 {
		t.Fatalf("parsed %T %v", e, e)
	}
	if Format(e) != "[Data Mining OR Data Analytics]" {
		t.Fatalf("Format = %s", Format(e))
	}
}

func TestParseMultiWordNames(t *testing.T) {
	e := MustParse("Linear Algebra AND Data Mining")
	a, ok := e.(And)
	if !ok || len(a) != 2 {
		t.Fatalf("parsed %T %v", e, e)
	}
	if a[0].(Ref) != "Linear Algebra" || a[1].(Ref) != "Data Mining" {
		t.Fatalf("refs = %v", a)
	}
}

func TestParseParenthesized(t *testing.T) {
	e := MustParse("(CS 631 OR CS 634) AND MATH 661")
	a, ok := e.(And)
	if !ok || len(a) != 2 {
		t.Fatalf("parsed %T %v", e, e)
	}
	if _, ok := a[0].(Or); !ok {
		t.Fatalf("first term %T, want Or", a[0])
	}
	pos := map[string]int{"CS 634": 0, "MATH 661": 1}
	if !Satisfied(e, 4, pos, 3) {
		t.Fatal("expression should be satisfied")
	}
	if Satisfied(e, 4, map[string]int{"CS 631": 0}, 3) {
		t.Fatal("missing MATH 661 should fail")
	}
}

func TestParsePrecedenceAndBindsTighter(t *testing.T) {
	e := MustParse("A OR B AND C")
	o, ok := e.(Or)
	if !ok || len(o) != 2 {
		t.Fatalf("parsed %T %v", e, e)
	}
	if _, ok := o[1].(And); !ok {
		t.Fatalf("second term %T, want And", o[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"AND", "A OR", "(A", "A)", "A AND (B OR", "( )"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestReferencedItems(t *testing.T) {
	e := MustParse("(A OR B) AND C")
	got := ReferencedItems(e)
	if len(got) != 3 {
		t.Fatalf("ReferencedItems = %v", got)
	}
	if ReferencedItems(nil) != nil {
		t.Fatal("nil expr should have no items")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, s := range []string{
		"[]",
		"[Data Mining]",
		"[Data Mining OR Data Analytics]",
		"[Linear Algebra AND Data Mining]",
		"[(A OR B) AND C]",
	} {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		e2, err := Parse(Format(e))
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", Format(e), err)
		}
		if Format(e) != Format(e2) {
			t.Fatalf("round trip %q → %q", Format(e), Format(e2))
		}
	}
}

func TestDeepNesting(t *testing.T) {
	e := MustParse("((A AND B) OR (C AND D)) AND E")
	pos := map[string]int{"C": 0, "D": 1, "E": 2}
	if !Satisfied(e, 5, pos, 3) {
		t.Fatal("nested expression should be satisfied via C AND D branch")
	}
	if Satisfied(e, 4, pos, 3) {
		t.Fatal("E at distance 2 should fail gap 3")
	}
}

func TestZeroGapMeansAnyEarlierPosition(t *testing.T) {
	e := Ref("X")
	if !e.SatisfiedAt(1, map[string]int{"X": 1}, 0) {
		t.Fatal("gap 0 should accept same position distance 0")
	}
}
