package prereq

import "fmt"

// This file provides the compiled form of prerequisite expressions: the
// AND/OR tree is flattened once (per catalog) into a postfix program over
// item *indices*, so the per-candidate hot path of the MDP evaluates
// prerequisites with array loads instead of interface dispatch and
// string-keyed map lookups. A Compiled set additionally carries the reverse
// dependency index (antecedent item → dependent items), which lets an
// episode maintain an incremental "prerequisites satisfied" cache: only the
// dependents of a newly gap-crossed antecedent can change status between
// steps.

// opcode discriminates the postfix instructions.
type opcode uint8

const (
	// opRef pushes whether the referenced item (arg = item index) is placed
	// early enough: positions[arg] >= 0 && pos - positions[arg] >= gap.
	opRef opcode = iota
	// opAnd pops arg values and pushes their conjunction (true when arg = 0).
	opAnd
	// opOr pops arg values and pushes their disjunction (true when arg = 0,
	// matching Or{}.SatisfiedAt).
	opOr
)

// instr is one postfix instruction.
type instr struct {
	arg int32
	op  opcode
}

// evalStackDepth is the fixed evaluation stack; programs needing more
// (absurdly nested expressions) evaluate through a heap-allocated spill
// stack, trading speed for correctness.
const evalStackDepth = 64

// Program is a compiled prerequisite expression. The zero Program (no
// instructions) is always satisfied, matching the nil Expr. Programs are
// immutable and safe for concurrent use.
type Program struct {
	code  []instr
	depth int // maximum evaluation stack depth
}

// CompileExpr flattens e into a postfix program, resolving item ids through
// index. It fails when a referenced id does not resolve — the same condition
// catalog validation rejects.
func CompileExpr(e Expr, index func(string) (int, bool)) (Program, error) {
	if e == nil {
		return Program{}, nil
	}
	var p Program
	depth, err := compileInto(e, index, &p)
	if err != nil {
		return Program{}, err
	}
	p.depth = depth
	return p, nil
}

// compileInto appends e's postfix code to p and returns the stack depth the
// appended code needs.
func compileInto(e Expr, index func(string) (int, bool), p *Program) (int, error) {
	switch x := e.(type) {
	case Ref:
		i, ok := index(string(x))
		if !ok {
			return 0, fmt.Errorf("prereq: compile: unknown item %q", string(x))
		}
		p.code = append(p.code, instr{arg: int32(i), op: opRef})
		return 1, nil
	case And:
		return compileNary(x, opAnd, index, p)
	case Or:
		return compileNary(x, opOr, index, p)
	case nil:
		// A nil element inside And/Or is always satisfied, like the nil Expr;
		// emit the empty conjunction.
		p.code = append(p.code, instr{arg: 0, op: opAnd})
		return 1, nil
	default:
		return 0, fmt.Errorf("prereq: compile: unsupported expression type %T", e)
	}
}

// compileNary compiles the children of an And/Or followed by the combining
// instruction. Child k sits on the stack while child k+1 evaluates, so the
// depth is max over children of (k + child depth), and at least 1 for the
// pushed result.
func compileNary(kids []Expr, op opcode, index func(string) (int, bool), p *Program) (int, error) {
	depth := 1
	for k, kid := range kids {
		d, err := compileInto(kid, index, p)
		if err != nil {
			return 0, err
		}
		if k+d > depth {
			depth = k + d
		}
	}
	p.code = append(p.code, instr{arg: int32(len(kids)), op: op})
	return depth, nil
}

// Trivial reports whether the program is empty, i.e. always satisfied.
func (p Program) Trivial() bool { return len(p.code) == 0 }

// Eval runs the program for an item placed at position pos. positions is the
// index-aligned placement array: positions[i] is the 0-based sequence
// position of item i, or negative when i is not placed. Eval allocates
// nothing for programs within evalStackDepth (every real catalog).
//
// Eval(pos, positions, gap) equals SatisfiedAt(pos, m, gap) of the source
// expression, where m is the map form of positions — the equivalence the
// property tests pin down.
func (p Program) Eval(pos int, positions []int32, gap int) bool {
	if len(p.code) == 0 {
		return true
	}
	var fixed [evalStackDepth]bool
	stack := fixed[:]
	if p.depth > evalStackDepth {
		stack = make([]bool, p.depth)
	}
	sp := 0
	for _, in := range p.code {
		switch in.op {
		case opRef:
			q := positions[in.arg]
			stack[sp] = q >= 0 && pos-int(q) >= gap
			sp++
		case opAnd:
			n := int(in.arg)
			v := true
			for i := sp - n; i < sp; i++ {
				v = v && stack[i]
			}
			sp -= n
			stack[sp] = v
			sp++
		case opOr:
			n := int(in.arg)
			v := n == 0
			for i := sp - n; i < sp; i++ {
				v = v || stack[i]
			}
			sp -= n
			stack[sp] = v
			sp++
		}
	}
	return stack[0]
}

// Compiled is the compiled prerequisite set of one catalog: one Program per
// item plus the reverse dependency index. Build it once per environment with
// Compile; it is immutable and shared by every episode.
type Compiled struct {
	progs      []Program
	dependents [][]int32
}

// Compile compiles every expression (index-aligned with a catalog) and
// builds the reverse dependency index: Dependents(j) lists the items whose
// prerequisite expression references item j.
func Compile(exprs []Expr, index func(string) (int, bool)) (*Compiled, error) {
	c := &Compiled{
		progs:      make([]Program, len(exprs)),
		dependents: make([][]int32, len(exprs)),
	}
	var refs []string
	for i, e := range exprs {
		p, err := CompileExpr(e, index)
		if err != nil {
			return nil, fmt.Errorf("prereq: item %d: %w", i, err)
		}
		c.progs[i] = p
		if e == nil {
			continue
		}
		seen := make(map[int]bool)
		refs = e.Items(refs[:0])
		for _, id := range refs {
			j, ok := index(id)
			if !ok {
				return nil, fmt.Errorf("prereq: item %d: unknown antecedent %q", i, id)
			}
			if !seen[j] {
				seen[j] = true
				c.dependents[j] = append(c.dependents[j], int32(i))
			}
		}
	}
	return c, nil
}

// Len returns the number of compiled programs.
func (c *Compiled) Len() int { return len(c.progs) }

// Trivial reports whether item i has no prerequisite.
func (c *Compiled) Trivial(i int) bool { return c.progs[i].Trivial() }

// Eval evaluates item i's program; see Program.Eval.
func (c *Compiled) Eval(i, pos int, positions []int32, gap int) bool {
	return c.progs[i].Eval(pos, positions, gap)
}

// Dependents returns the items whose prerequisites reference item i. The
// returned slice is owned by the Compiled set and must not be mutated.
func (c *Compiled) Dependents(i int) []int32 { return c.dependents[i] }
