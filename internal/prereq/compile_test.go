package prereq

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// testIndex resolves the "i0".."i9" ids randExpr generates to indices 0..9.
func testIndex(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'i' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 || n >= 10 {
		return 0, false
	}
	return n, true
}

// toArray converts a map position assignment to the index-aligned array
// form Program.Eval reads (-1 = absent).
func toArray(pos map[string]int) []int32 {
	arr := make([]int32, 10)
	for i := range arr {
		arr[i] = -1
	}
	for id, p := range pos {
		if i, ok := testIndex(id); ok {
			arr[i] = int32(p)
		}
	}
	return arr
}

func TestCompileEmpty(t *testing.T) {
	p, err := CompileExpr(nil, testIndex)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Trivial() || !p.Eval(5, toArray(nil), 3) {
		t.Fatal("nil expression must compile to the always-satisfied program")
	}
}

func TestCompileUnknownRef(t *testing.T) {
	if _, err := CompileExpr(Ref("nonexistent"), testIndex); err == nil {
		t.Fatal("expected error for unresolvable reference")
	}
}

func TestPropertyCompiledMatchesExpr(t *testing.T) {
	// The compiled postfix program evaluates identically to the
	// interpretive SatisfiedAt over randomized AND/OR trees, positions,
	// gaps and placement positions — including gap 0 and deep nesting.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randExpr(rr, 3)
		p, err := CompileExpr(e, testIndex)
		if err != nil {
			return false
		}
		for trial := 0; trial < 8; trial++ {
			pos := randPositions(rr)
			arr := toArray(pos)
			at := rr.Intn(12)
			g := rr.Intn(5)
			if p.Eval(at, arr, g) != Satisfied(e, at, pos, g) {
				t.Logf("mismatch: %s at=%d gap=%d pos=%v", Format(e), at, g, pos)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompiledSetMatchesExpr(t *testing.T) {
	// Compile (the whole-catalog form) agrees with the per-expression
	// compiler, and the reverse dependency index is exactly the transpose
	// of the reference lists.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		exprs := make([]Expr, 10)
		for i := range exprs {
			if rr.Intn(3) == 0 {
				continue // nil: no prerequisite
			}
			exprs[i] = randExpr(rr, 2)
		}
		c, err := Compile(exprs, testIndex)
		if err != nil || c.Len() != len(exprs) {
			return false
		}
		// Evaluation equivalence.
		for trial := 0; trial < 5; trial++ {
			pos := randPositions(rr)
			arr := toArray(pos)
			at := rr.Intn(12)
			g := rr.Intn(4)
			for i, e := range exprs {
				if c.Eval(i, at, arr, g) != Satisfied(e, at, pos, g) {
					return false
				}
				if c.Trivial(i) != (e == nil) {
					return false
				}
			}
		}
		// Dependents(j) must contain i exactly when expr i references item j.
		refs := func(i, j int) bool {
			for _, id := range ReferencedItems(exprs[i]) {
				if k, ok := testIndex(id); ok && k == j {
					return true
				}
			}
			return false
		}
		for j := 0; j < 10; j++ {
			got := make(map[int]bool)
			for _, d := range c.Dependents(j) {
				if got[int(d)] {
					return false // duplicates
				}
				got[int(d)] = true
			}
			for i := 0; i < 10; i++ {
				if got[i] != refs(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledDeepNesting(t *testing.T) {
	// A pathologically skewed tree exceeds the fixed evaluation stack and
	// must fall back to the spill stack, not misbehave.
	// Right-skewed nesting is the stack-hungry shape: each level holds one
	// value while the deeper subtree evaluates.
	var e Expr = Ref("i0")
	for d := 0; d < 100; d++ {
		e = And{Ref(fmt.Sprintf("i%d", d%10)), e}
	}
	p, err := CompileExpr(e, testIndex)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	arr := toArray(nil)
	for i := 0; i < 10; i++ {
		pos[fmt.Sprintf("i%d", i)] = i
		arr[i] = int32(i)
	}
	for _, g := range []int{0, 1, 3} {
		at := 15
		if p.Eval(at, arr, g) != Satisfied(e, at, pos, g) {
			t.Fatalf("deep tree mismatch at gap %d", g)
		}
	}
}
