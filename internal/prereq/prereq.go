// Package prereq models antecedent/prerequisite requirements between items
// (pre^m in the paper). A requirement is an AND/OR expression over item
// identifiers; it is satisfied at a sequence position when the referenced
// items appear earlier in the sequence at a distance of at least gap
// (Equation 4: Dist(pre^m, m) ≥ gap). When prerequisites are "AND"ed every
// antecedent must satisfy the gap; when "OR"ed any one suffices (§III-B.2).
package prereq

import (
	"fmt"
	"strings"
)

// Expr is a prerequisite expression. The nil Expr (None) is always
// satisfied, matching items with pre^m = [].
type Expr interface {
	// SatisfiedAt reports whether the expression holds for an item placed
	// at position pos, given the positions of previously chosen items.
	// positions maps item id → 0-based sequence position.
	SatisfiedAt(pos int, positions map[string]int, gap int) bool
	// Items appends the referenced item ids to dst and returns it.
	Items(dst []string) []string
	// String renders the expression in the paper's bracketed notation.
	String() string
}

// None is the empty prerequisite: always satisfied.
var None Expr

// Ref is a reference to a single antecedent item.
type Ref string

// SatisfiedAt implements Expr.
func (r Ref) SatisfiedAt(pos int, positions map[string]int, gap int) bool {
	p, ok := positions[string(r)]
	return ok && pos-p >= gap
}

// Items implements Expr.
func (r Ref) Items(dst []string) []string { return append(dst, string(r)) }

func (r Ref) String() string { return string(r) }

// And requires every sub-expression to be satisfied.
type And []Expr

// SatisfiedAt implements Expr.
func (a And) SatisfiedAt(pos int, positions map[string]int, gap int) bool {
	for _, e := range a {
		if !e.SatisfiedAt(pos, positions, gap) {
			return false
		}
	}
	return true
}

// Items implements Expr.
func (a And) Items(dst []string) []string {
	for _, e := range a {
		dst = e.Items(dst)
	}
	return dst
}

func (a And) String() string { return joinExprs(a, " AND ") }

// Or requires at least one sub-expression to be satisfied.
type Or []Expr

// SatisfiedAt implements Expr.
func (o Or) SatisfiedAt(pos int, positions map[string]int, gap int) bool {
	for _, e := range o {
		if e.SatisfiedAt(pos, positions, gap) {
			return true
		}
	}
	return len(o) == 0
}

// Items implements Expr.
func (o Or) Items(dst []string) []string {
	for _, e := range o {
		dst = e.Items(dst)
	}
	return dst
}

func (o Or) String() string { return joinExprs(o, " OR ") }

func joinExprs(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		if _, nested := e.(Ref); nested {
			parts[i] = e.String()
		} else {
			parts[i] = "(" + e.String() + ")"
		}
	}
	return strings.Join(parts, sep)
}

// Satisfied reports whether e holds, treating nil as always satisfied.
// This is r2 of Equation 4 expressed as a boolean.
func Satisfied(e Expr, pos int, positions map[string]int, gap int) bool {
	if e == nil {
		return true
	}
	return e.SatisfiedAt(pos, positions, gap)
}

// ReferencedItems returns the ids referenced by e (nil-safe, may contain
// duplicates if the expression repeats an item).
func ReferencedItems(e Expr) []string {
	if e == nil {
		return nil
	}
	return e.Items(nil)
}

// Format renders e in the paper's bracketed list notation, e.g.
// "[Data Mining OR Data Analytics]"; nil renders as "[]".
func Format(e Expr) string {
	if e == nil {
		return "[]"
	}
	return "[" + e.String() + "]"
}

// Parse parses the paper's textual prerequisite notation:
//
//	""                                 → None (nil)
//	"[]"                               → None (nil)
//	"Data Mining OR Data Analytics"    → Or{Ref, Ref}
//	"Linear Algebra AND Data Mining"   → And{Ref, Ref}
//	"(A OR B) AND C"                   → And{Or{A,B}, C}
//
// AND binds tighter than OR, mirroring usual boolean convention, so
// "A OR B AND C" parses as Or{A, And{B, C}}. Mixed expressions should use
// parentheses for clarity; catalogs in this repository always do.
func Parse(s string) (Expr, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &parser{toks: tokenize(s)}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("prereq: trailing tokens at %q", strings.Join(p.toks[p.pos:], " "))
	}
	return e, nil
}

// MustParse is Parse that panics on error, for fixed catalog literals.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

// tokenize splits on whitespace but keeps parentheses as their own tokens
// and merges consecutive words into item names until a keyword/paren.
func tokenize(s string) []string {
	var toks []string
	var word strings.Builder
	flush := func() {
		if word.Len() > 0 {
			toks = append(toks, strings.TrimSpace(word.String()))
			word.Reset()
		}
	}
	fields := splitParens(s)
	for _, f := range fields {
		switch f {
		case "(", ")", "AND", "OR":
			flush()
			toks = append(toks, f)
		default:
			if word.Len() > 0 {
				word.WriteByte(' ')
			}
			word.WriteString(f)
		}
	}
	flush()
	return toks
}

// splitParens splits on whitespace, emitting parentheses as separate fields.
func splitParens(s string) []string {
	var out []string
	for _, f := range strings.Fields(s) {
		for {
			if strings.HasPrefix(f, "(") {
				out = append(out, "(")
				f = f[1:]
				continue
			}
			break
		}
		var trailing int
		for strings.HasSuffix(f, ")") {
			f = f[:len(f)-1]
			trailing++
		}
		if f != "" {
			out = append(out, f)
		}
		for ; trailing > 0; trailing-- {
			out = append(out, ")")
		}
	}
	return out
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{left}
	for p.peek() == "OR" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return Or(terms), nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	terms := []Expr{left}
	for p.peek() == "AND" {
		p.next()
		right, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return And(terms), nil
}

func (p *parser) parseAtom() (Expr, error) {
	switch t := p.peek(); t {
	case "":
		return nil, fmt.Errorf("prereq: unexpected end of expression")
	case "(":
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("prereq: missing closing parenthesis")
		}
		return e, nil
	case ")", "AND", "OR":
		return nil, fmt.Errorf("prereq: unexpected token %q", t)
	default:
		return Ref(p.next()), nil
	}
}
