package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
)

// TestServeHammerRace pins the sharded serving structures under the
// race detector: concurrent plan reads (anonymous and personalized),
// feedback posts growing and reaccounting overlays, artifact imports
// overwriting a store entry, custom-instance uploads republishing the
// copy-on-write snapshot, and Store.Remove yanking the hot policy out
// from under everyone — the full multi-writer shape of the
// contention-free read path. Every response must be a clean status;
// the race detector does the rest.
func TestServeHammerRace(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const instance = "Univ-1 M.S. DS-CT"
	planReq := func(user string) map[string]interface{} {
		req := map[string]interface{}{
			"instance": instance,
			"engine":   "sarsa",
			"episodes": 60,
			"seed":     4,
		}
		if user != "" {
			req["user"] = user
		}
		return req
	}

	// Warm up: train the policy once and keep its plan for feedback.
	var base overlayPlanResp
	if code := doJSON(t, "POST", ts.URL+"/api/plan", planReq(""), &base); code != 200 {
		t.Fatalf("warm-up plan status %d", code)
	}
	var items []string
	for _, s := range base.Steps {
		items = append(items, s.ID)
	}

	// Export one artifact; the importer goroutine re-installs it
	// concurrently with everything else.
	exportBody, err := json.Marshal(planReq(""))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/policies/export", "application/json", bytes.NewReader(exportBody))
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("export: status %d, err %v", resp.StatusCode, err)
	}

	hotKey := planRequest{Instance: instance, Episodes: 60, Seed: 4}.policyKey("sarsa")
	importURL := ts.URL + "/api/policies/import?instance=" + url.QueryEscape(instance)

	const iters = 12
	var wg sync.WaitGroup
	start := make(chan struct{})
	fail := make(chan error, 64)
	run := func(name string, fn func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				if err := fn(i); err != nil {
					fail <- fmt.Errorf("%s[%d]: %w", name, i, err)
					return
				}
			}
		}()
	}

	status := func(code int, want ...int) error {
		for _, w := range want {
			if code == w {
				return nil
			}
		}
		return fmt.Errorf("status %d", code)
	}

	// Plan readers: anonymous and per-user (through overlay lookups).
	for g := 0; g < 3; g++ {
		user := ""
		if g > 0 {
			user = fmt.Sprintf("hammer-u%d", g)
		}
		run(fmt.Sprintf("plan-%d", g), func(i int) error {
			var out overlayPlanResp
			// 200 is the steady state; a plan racing a Remove may also
			// surface as a degraded 200 via the fallback ladder — still 200.
			return status(doJSON(t, "POST", ts.URL+"/api/plan", planReq(user), &out), 200)
		})
	}
	// Feedback writers: overlay creation, observation, reaccounting.
	for g := 1; g < 3; g++ {
		user := fmt.Sprintf("hammer-u%d", g)
		run(fmt.Sprintf("feedback-%d", g), func(i int) error {
			fb := planReq(user)
			fb["items"] = items
			fb["useful"] = i%2 == 0
			var out feedbackResponse
			return status(doJSON(t, "POST", ts.URL+"/api/feedback", fb, &out), 200)
		})
	}
	// Importer: concurrent Store.Add of a valid artifact.
	run("import", func(i int) error {
		resp, err := http.Post(importURL, "application/octet-stream", bytes.NewReader(artifact))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return status(resp.StatusCode, 201)
	})
	// Custom-instance uploads: republish the copy-on-write snapshot
	// while plan readers resolve instances lock-free.
	run("create-instance", func(i int) error {
		spec := map[string]interface{}{
			"name":   fmt.Sprintf("hammer-inst-%d", i),
			"topics": []string{"t1", "t2"},
			"items": []map[string]interface{}{
				{"id": "A", "type": "primary", "credits": 1, "topics": []string{"t1"}},
				{"id": "B", "credits": 1, "prereq": "A", "topics": []string{"t2"}},
			},
			"credits": 2, "primary": 1, "secondary": 1, "gap": 1,
		}
		return status(doJSON(t, "POST", ts.URL+"/api/instances", spec, &struct{}{}), 201)
	})
	// Remover: yank the hot policy; the next plan retrains through the
	// singleflight (and invalidates overlays built on the old artifact).
	run("remove", func(i int) error {
		srv.policies.Remove(hotKey)
		return nil
	})

	close(start)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}
}
