// Warm-start training for the serving path: cold requests for the TD
// engines seed from the nearest cached policy (auto-derive on catalog
// fingerprint near-miss), and POST /api/policies/{id}/derive exposes
// the derivation explicitly. See internal/transfer for the mapping and
// the distance-scaled episode budget (DESIGN §12).
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/rlplanner/rlplanner"
)

// deriveMaxDistance bounds auto-derivation: a cached policy further
// than this from the requested catalog warm-starts so little of the Q
// table that a cold run is the safer default.
const deriveMaxDistance = 0.3

// trainOpts resolves a request's training options plus the server's
// training knobs (worker count, data-plane size guards), which are
// deployment configuration — not part of the policy cache key, since
// the parallel protocol is bit-identical for any worker count and the
// size guards hold fleet-wide.
func (s *Server) trainOpts(req planRequest) rlplanner.Options {
	opts := req.options()
	opts.TrainWorkers = s.trainWorkers
	opts.DistMatrixMax = s.distMatrixMax
	opts.DenseQMax = s.denseQMax
	return opts
}

// trainOrDerive is the cold-start path behind the policy store's
// singleflight: when auto-derive is on and a cached TD policy for a
// near catalog exists, training warm-starts from it with a
// distance-scaled episode budget; otherwise (or if derivation fails) it
// cold-trains. Both paths honor the request options and the server's
// worker count.
func (s *Server) trainOrDerive(ctx context.Context, inst *rlplanner.Instance, engineName string, req planRequest) (*rlplanner.Policy, error) {
	if s.autoDerive && (engineName == "sarsa" || engineName == "qlearning") {
		if src := s.nearestSource(inst, engineName); src != nil {
			if pol, _, err := rlplanner.Derive(ctx, src, inst, s.trainOpts(req)); err == nil {
				return pol, nil
			}
			// A failed derivation falls back to the cold run: warm-starting
			// is an optimization, never a new failure mode.
		}
	}
	return rlplanner.Train(ctx, inst, engineName, s.trainOpts(req))
}

// nearestSource scans the cached policies for the closest same-engine
// policy trained on a *different* catalog (fingerprint near-miss) and
// returns it when within deriveMaxDistance. Same-fingerprint policies
// are skipped: a request for the same catalog under different options
// is a cold-key decision, not a catalog change.
func (s *Server) nearestSource(inst *rlplanner.Instance, engineName string) *rlplanner.Policy {
	targetFP := inst.Fingerprint()
	var best *rlplanner.Policy
	bestDist := deriveMaxDistance
	for _, key := range s.policies.Keys() {
		pol, ok := s.policies.Cached(key)
		if !ok || pol.Engine() != engineName || pol.Fingerprint() == targetFP {
			continue
		}
		d, err := pol.MatchDistance(inst)
		if err != nil || d > bestDist {
			continue
		}
		best, bestDist = pol, d
	}
	return best
}

// deriveInfo is the derive endpoint's response: the stored policy plus
// the warm-start accounting.
type deriveInfo struct {
	policyInfo
	Source       string  `json:"source"`
	Distance     float64 `json:"distance"`
	ColdEpisodes int     `json:"cold_episodes"`
	WarmEpisodes int     `json:"warm_episodes"`
}

// derivePolicy warm-starts a policy for the requested instance from the
// cached policy named by the path key (the key /api/policies lists).
// The body is a plan request selecting the target instance and options;
// the derived policy is stored under that request's key, so subsequent
// identical plan requests serve from it without training.
func (s *Server) derivePolicy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	src, ok := s.policies.Cached(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown policy %q", id))
		return
	}
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}

	// Derivation is a training run: it respects the admission semaphore
	// and the training budget exactly like the cold-start path, under a
	// detached-but-bounded context.
	if !s.training.TryAcquire() {
		s.metrics.Rejections.Add(1)
		s.writePlanError(w, errOverCapacity)
		return
	}
	defer s.training.Release()
	ctx := context.WithoutCancel(r.Context())
	cancel := context.CancelFunc(func() {})
	if s.trainBudget > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.trainBudget)
	}
	defer cancel()

	pol, stats, err := rlplanner.Derive(ctx, src, inst, s.trainOpts(req))
	if err != nil {
		s.writePlanError(w, err)
		return
	}
	key := req.policyKey(pol.Engine())
	s.policies.Add(key, pol)
	writeJSON(w, http.StatusCreated, deriveInfo{
		policyInfo:   policyInfo{Key: key, Engine: pol.Engine(), Fingerprint: pol.Fingerprint()},
		Source:       stats.Source,
		Distance:     stats.Distance,
		ColdEpisodes: stats.ColdEpisodes,
		WarmEpisodes: stats.WarmEpisodes,
	})
}
