// Serving-side resilience: the error taxonomy, the guarded recommend
// path and the status mapping that realize the degradation ladder
// (engine → bounded retry → fallback engine → load shedding) over the
// policy store. The training-side half of the ladder lives in
// Server.policy; see also internal/resilience.
package httpapi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/rlplanner/rlplanner"
	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/resilience"
)

// errOverCapacity reports that the training admission semaphore was
// full. It is shed as 503, never retried inline and never marks the
// retry breaker — capacity resolves itself when running trainings end.
var errOverCapacity = errors.New("training capacity exhausted; retry shortly")

// backoffError reports a policy key inside its retry-backoff window
// after a recent training fault.
type backoffError struct{ wait time.Duration }

func (e *backoffError) Error() string {
	return fmt.Sprintf("engine is backing off after a failure; retry in %s", e.wait.Round(time.Millisecond))
}

// serveError marks a trained policy that failed at Recommend time (a
// malformed artifact). It maps to 500 and is eligible for fallback; the
// policy itself has already been evicted so the next request retrains.
type serveError struct{ err error }

func (e *serveError) Error() string { return "serving policy: " + e.err.Error() }
func (e *serveError) Unwrap() error { return e.err }

// resilientFailure reports whether err sits on the fallback rung of the
// ladder: solver panics, blown training deadlines, backoff windows and
// serving-time policy failures. Config/validation errors are excluded
// (they are deterministic 4xx material the fallback would only mask),
// as is over-capacity (serving a fallback still costs a training run,
// which is exactly what admission control just refused).
func resilientFailure(err error) bool {
	var pe *resilience.PanicError
	var be *backoffError
	var se *serveError
	return errors.As(err, &pe) || errors.As(err, &be) || errors.As(err, &se) ||
		errors.Is(err, context.DeadlineExceeded)
}

// degradedReason renders the fault that triggered a fallback in one
// operator-readable phrase (panic values and stacks stay in the logs).
func degradedReason(err error) string {
	var pe *resilience.PanicError
	var be *backoffError
	switch {
	case errors.As(err, &pe):
		return "engine panicked"
	case errors.As(err, &be):
		return "engine backing off after failure"
	case errors.Is(err, context.DeadlineExceeded):
		return "training deadline exceeded"
	default:
		return err.Error()
	}
}

// noteOutcome records a leader-run training result in the breaker and
// the fault counters. Only resilience-class faults open the backoff
// window: deterministic config errors stay immediately retryable (the
// client will fix the request, not the clock), and capacity rejections
// are the semaphore's business.
func (s *Server) noteOutcome(key string, pol *rlplanner.Policy, err error) {
	var pe *resilience.PanicError
	switch {
	case err == nil:
		s.breaker.Success(key)
		if pol != nil && pol.Degraded() == engine.DegradedPartial {
			s.metrics.Partials.Add(1)
		}
	case errors.As(err, &pe):
		s.metrics.Panics.Add(1)
		s.breaker.Failure(key)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.metrics.Timeouts.Add(1)
		s.breaker.Failure(key)
	case errors.Is(err, errOverCapacity):
		s.metrics.Rejections.Add(1)
	}
}

// planResponse is a plan plus its provenance: which engine actually
// served it and whether the ladder degraded the answer. The plan is
// embedded, so clients that decode the response as a bare Plan keep
// working unchanged.
type planResponse struct {
	*rlplanner.Plan
	ServedBy       string `json:"served_by"`
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Personalized reports that the plan was read through the requesting
	// user's feedback overlay rather than the bare base policy.
	Personalized bool `json:"personalized,omitempty"`
}

// planWith trains (or fetches) the engine's policy and produces a plan
// under a panic guard. A policy that fails or panics at Recommend time
// is evicted from the store and marked failed in the breaker — a
// malformed artifact must never be re-served — and the error reports as
// resilience-class so the caller's ladder can degrade to the fallback.
func (s *Server) planWith(ctx context.Context, inst *rlplanner.Instance, engineName string, req planRequest) (*planResponse, error) {
	return s.planFrom(ctx, inst, engineName, req, "")
}

// planFrom is planWith from an explicit start item id ("" walks from
// the policy's trained start — the /api/plan behavior). Batch items
// share one policy and vary only the start.
func (s *Server) planFrom(ctx context.Context, inst *rlplanner.Instance, engineName string, req planRequest, startID string) (*planResponse, error) {
	key := req.policyKey(engineName)
	pol, err := s.policy(ctx, inst, engineName, req)
	if err != nil {
		return nil, err
	}
	// Personalization is lookup-only on the plan path: a user with no
	// recorded feedback (or no user at all) takes the base branch, which
	// is byte-for-byte the pre-overlay serving path.
	var entry *overlayEntry
	if req.User != "" {
		if e := s.overlays.lookup(req.User, key); e != nil {
			if e.ov.For(pol) {
				entry = e
			} else {
				// The policy under this key was evicted and retrained since
				// the overlay was created; stale personalization is dropped
				// rather than applied to the wrong artifact.
				s.overlays.drop(e)
			}
		}
	}
	plan, err := resilience.Guard("recommend "+engineName, func() (*rlplanner.Plan, error) {
		if entry == nil {
			return pol.Recommend(startID)
		}
		entry.mu.Lock()
		defer entry.mu.Unlock()
		return pol.RecommendWithOverlay(startID, entry.ov)
	})
	if err != nil {
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			s.metrics.Panics.Add(1)
		} else {
			err = &serveError{err: err}
		}
		s.policies.Remove(key)
		s.breaker.Failure(key)
		return nil, err
	}
	resp := &planResponse{Plan: plan, ServedBy: pol.Engine(), Personalized: entry != nil}
	if pol.Degraded() == engine.DegradedPartial {
		resp.Degraded = true
		resp.DegradedReason = fmt.Sprintf(
			"partial policy: training checkpointed at its deadline after %d episodes",
			pol.EpisodesTrained())
	}
	return resp, nil
}

// planErrorStatus maps a policy-path failure to its HTTP status:
// load-shedding (capacity, backoff) → 503, blown deadline → 504, panic
// or serving failure → 500, anything else → 400 (config/validation).
func planErrorStatus(err error) int {
	var pe *resilience.PanicError
	var be *backoffError
	var se *serveError
	switch {
	case errors.Is(err, errOverCapacity), errors.As(err, &be):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.As(err, &pe), errors.As(err, &se):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// writePlanError reports a policy-path failure with planErrorStatus's
// mapping, attaching Retry-After to the load-shedding statuses.
func (s *Server) writePlanError(w http.ResponseWriter, err error) {
	var be *backoffError
	switch {
	case errors.Is(err, errOverCapacity):
		w.Header().Set("Retry-After", "1")
	case errors.As(err, &be):
		w.Header().Set("Retry-After", retryAfterSeconds(be.wait))
	}
	writeError(w, planErrorStatus(err), err)
}

// retryAfterSeconds renders a backoff window as a Retry-After value:
// whole seconds, rounded up, at least 1.
func retryAfterSeconds(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// getMetrics reports the resilience fault counters plus the policy- and
// environment-cache lookup counters, in one flat map so existing
// dashboards keep decoding it.
func (s *Server) getMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.metrics.Snapshot()
	pc := s.policies.Stats()
	m["policy_cache_hits"] = int64(pc.Hits)
	m["policy_cache_misses"] = int64(pc.Misses)
	m["policy_cache_size"] = int64(pc.Size)
	ec := engine.EnvCacheStats()
	m["env_cache_hits"] = int64(ec.Hits)
	m["env_cache_misses"] = int64(ec.Misses)
	m["env_cache_size"] = int64(ec.Size)
	ts := engine.TrainStats()
	m["train_runs"] = ts.Runs
	m["train_warm_starts"] = ts.WarmStarts
	m["train_merge_batches"] = ts.MergeBatches
	m["train_episodes"] = ts.Episodes
	m["train_episodes_per_sec"] = int64(ts.EpisodesPerSecond())
	// Resident-memory estimates: what the caches and the personalization
	// fleet actually hold, the capacity-planning counterpart of the
	// hit/miss counters.
	m["policy_cache_bytes"] = int64(s.policies.SumBytes((*rlplanner.Policy).MemoryBytes))
	m["env_cache_bytes"] = int64(engine.EnvCacheBytes())
	users, entries, bytes, evictions := s.overlays.stats()
	m["overlay_users"] = int64(users)
	m["overlay_entries"] = int64(entries)
	m["overlay_bytes"] = int64(bytes)
	m["overlay_evictions"] = int64(evictions)
	m["feedback_signals"] = int64(s.feedbackSignals.Load())
	// Distance-accuracy observability: how many leg lookups missed the
	// compressed neighbor band and recomputed an exact Haversine. A
	// rapidly growing figure means the band (geo.DefaultNeighborK) is too
	// narrow for this catalog's plan geometry.
	m["dist_fallback_total"] = int64(geo.FallbackTotal())
	// Durable-tier observability: repository lookups/write-throughs, the
	// entries quarantined as corrupt (boot scan or read path), and how
	// often this replica waited on another process's training claim. All
	// zero when no -policy-dir is configured.
	rs := s.repoStats()
	m["repo_hits"] = int64(rs.Hits)
	m["repo_misses"] = int64(rs.Misses)
	m["repo_writes"] = int64(rs.Writes)
	m["repo_quarantined_total"] = int64(rs.Quarantined)
	m["repo_claim_waits"] = int64(rs.ClaimWaits)
	// Failed artifact restores (truncated/corrupt gob, fingerprint
	// mismatch), wherever the artifact came from — repository, import
	// endpoint or preload.
	m["artifact_load_failures_total"] = engine.ArtifactLoadFailures()
	writeJSON(w, http.StatusOK, m)
}
