package httpapi

// Full-stack fault-injection suite: a scriptable fault engine registered
// in the real solver registry drives the production serving path —
// singleflight store, panic guard, retry breaker, admission semaphore,
// gold fallback — through a live HTTP server. Run with -race; the
// daemon must answer every fault with a degraded plan or a clean 5xx,
// never crash.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/rlplanner/rlplanner"
	"github.com/rlplanner/rlplanner/internal/resilience/faultinject"
)

const univ1 = "Univ-1 M.S. DS-CT"

// degradedPlan decodes a plan response together with its provenance
// tags.
type degradedPlan struct {
	rlplanner.Plan
	ServedBy       string `json:"served_by"`
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason"`
}

// faultServer builds a server with resilience options and a live
// listener.
func faultServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postPlan fires one plan request without t.Fatal, so it is safe from
// any goroutine; the caller asserts on the returned code.
func postPlan(ts *httptest.Server, engine string, seed int64) (int, degradedPlan, http.Header, error) {
	var out degradedPlan
	body := struct {
		Instance string `json:"instance"`
		Engine   string `json:"engine"`
		Seed     int64  `json:"seed"`
	}{univ1, engine, seed}
	buf, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/api/plan", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		return 0, out, nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			return resp.StatusCode, out, resp.Header, err
		}
	}
	return resp.StatusCode, out, resp.Header, nil
}

// metricsSnapshot reads /api/metrics.
func metricsSnapshot(t *testing.T, ts *httptest.Server) map[string]int64 {
	t.Helper()
	var m map[string]int64
	if code := doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	return m
}

// TestPanicFallsBackToGold: a panicking engine must cost exactly one
// request nothing — the ladder answers with a degraded gold plan and
// the daemon keeps serving.
func TestPanicFallsBackToGold(t *testing.T) {
	fe, cleanup := faultinject.New("fault-panic")
	t.Cleanup(cleanup)
	fe.Set(faultinject.Panic)
	ts := faultServer(t)

	code, plan, _, err := postPlan(ts, "fault-panic", 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 {
		t.Fatalf("status %d, want 200 via fallback", code)
	}
	if plan.ServedBy != "gold" || !plan.Degraded {
		t.Fatalf("served_by=%q degraded=%v, want gold/true", plan.ServedBy, plan.Degraded)
	}
	if plan.DegradedReason != "engine panicked" {
		t.Fatalf("degraded_reason = %q", plan.DegradedReason)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("fallback plan is empty")
	}

	// The process survived: read endpoints still answer.
	if code := doJSON(t, "GET", ts.URL+"/api/engines", nil, &struct{}{}); code != 200 {
		t.Fatalf("daemon unhealthy after panic: %d", code)
	}
	m := metricsSnapshot(t, ts)
	if m["panics"] < 1 || m["fallbacks"] < 1 {
		t.Fatalf("metrics = %v, want panics>=1 fallbacks>=1", m)
	}
}

// TestHangFallsBackWithinBudget: an engine that never returns must be
// cut off by the training budget and answered degraded within
// budget + 1s (the acceptance bound).
func TestHangFallsBackWithinBudget(t *testing.T) {
	fe, cleanup := faultinject.New("fault-hang")
	t.Cleanup(cleanup)
	fe.Set(faultinject.Hang)
	const budget = 150 * time.Millisecond
	ts := faultServer(t, WithTrainBudget(budget))

	start := time.Now()
	code, plan, _, err := postPlan(ts, "fault-hang", 0)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || plan.ServedBy != "gold" || !plan.Degraded {
		t.Fatalf("status=%d served_by=%q degraded=%v, want 200/gold/true", code, plan.ServedBy, plan.Degraded)
	}
	if plan.DegradedReason != "training deadline exceeded" {
		t.Fatalf("degraded_reason = %q", plan.DegradedReason)
	}
	if elapsed > budget+time.Second {
		t.Fatalf("response took %s, want <= budget+1s", elapsed)
	}
	if m := metricsSnapshot(t, ts); m["timeouts"] < 1 {
		t.Fatalf("metrics = %v, want timeouts>=1", m)
	}
}

// TestMalformedPolicyEvictedAndBreakerHolds: a policy that detonates at
// Recommend time is served degraded, evicted from the cache, and its
// key backs off — a second request inside the window is answered by the
// fallback without retraining the bad engine.
func TestMalformedPolicyEvictedAndBreakerHolds(t *testing.T) {
	fe, cleanup := faultinject.New("fault-mal")
	t.Cleanup(cleanup)
	fe.Set(faultinject.Malformed)
	ts := faultServer(t, WithRetryBackoff(time.Hour, time.Hour))

	code, plan, _, err := postPlan(ts, "fault-mal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || plan.ServedBy != "gold" || !plan.Degraded {
		t.Fatalf("status=%d served_by=%q degraded=%v, want 200/gold/true", code, plan.ServedBy, plan.Degraded)
	}

	// The malformed artifact must not remain cached.
	var pols []struct {
		Engine string `json:"engine"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/policies", nil, &pols); code != 200 {
		t.Fatalf("policies status %d", code)
	}
	for _, p := range pols {
		if p.Engine == "fault-mal" {
			t.Fatal("malformed policy still cached")
		}
	}

	// Inside the backoff window the engine is not retrained.
	before := fe.Trainings()
	code, plan, _, err = postPlan(ts, "fault-mal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || plan.ServedBy != "gold" || !plan.Degraded {
		t.Fatalf("backoff retry: status=%d served_by=%q degraded=%v", code, plan.ServedBy, plan.Degraded)
	}
	if plan.DegradedReason != "engine backing off after failure" {
		t.Fatalf("degraded_reason = %q", plan.DegradedReason)
	}
	if fe.Trainings() != before {
		t.Fatalf("engine retrained inside backoff window (%d -> %d)", before, fe.Trainings())
	}
	if m := metricsSnapshot(t, ts); m["panics"] < 1 || m["rejections"] < 1 {
		t.Fatalf("metrics = %v, want panics>=1 rejections>=1", m)
	}
}

// TestFailingTrainingIsNeverCached: scripted train errors must not
// cache a nil policy — each request retrains until the engine recovers,
// then the good policy is cached and served undegraded.
func TestFailingTrainingIsNeverCached(t *testing.T) {
	fe, cleanup := faultinject.New("fault-failn")
	t.Cleanup(cleanup)
	fe.FailTimes(2)
	ts := faultServer(t)

	for i := 0; i < 2; i++ {
		code, _, _, err := postPlan(ts, "fault-failn", 0)
		if err != nil {
			t.Fatal(err)
		}
		if code != 400 {
			t.Fatalf("scripted failure %d: status %d, want 400", i, code)
		}
	}
	code, plan, _, err := postPlan(ts, "fault-failn", 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || plan.ServedBy != "fault-failn" || plan.Degraded {
		t.Fatalf("recovery: status=%d served_by=%q degraded=%v", code, plan.ServedBy, plan.Degraded)
	}
	if got := fe.Trainings(); got != 3 {
		t.Fatalf("trainings = %d, want 3 (errors never cached)", got)
	}
	// The recovered policy is cached: no further training.
	if code, _, _, _ := postPlan(ts, "fault-failn", 0); code != 200 {
		t.Fatal("cached policy stopped serving")
	}
	if got := fe.Trainings(); got != 3 {
		t.Fatalf("trainings after cache hit = %d, want 3", got)
	}
}

// TestAdmissionControlShedsLoad: with one training slot taken by a
// hanging run, a cold request for a different key is shed with 503 +
// Retry-After instead of queued; the held request completes once the
// hang releases.
func TestAdmissionControlShedsLoad(t *testing.T) {
	fe, cleanup := faultinject.New("fault-cap")
	t.Cleanup(cleanup)
	fe.Set(faultinject.Hang)
	ts := faultServer(t, WithMaxTraining(1))

	type result struct {
		code int
		plan degradedPlan
		err  error
	}
	done := make(chan result, 1)
	go func() {
		code, plan, _, err := postPlan(ts, "fault-cap", 1)
		done <- result{code, plan, err}
	}()
	<-fe.HangStarted()

	// The hanging run holds the only slot: a different cold key is shed.
	code, _, hdr, err := postPlan(ts, "fault-cap", 2)
	if err != nil {
		t.Fatal(err)
	}
	if code != 503 {
		t.Fatalf("over-capacity status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	fe.Set(faultinject.OK)
	fe.Release()
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.code != 200 || r.plan.ServedBy != "fault-cap" || r.plan.Degraded {
		t.Fatalf("held request: status=%d served_by=%q degraded=%v", r.code, r.plan.ServedBy, r.plan.Degraded)
	}
	if m := metricsSnapshot(t, ts); m["rejections"] < 1 {
		t.Fatalf("metrics = %v, want rejections>=1", m)
	}
}

// TestPartialSarsaServedDegraded: the checkpointing engine under a tiny
// budget serves its own partial policy (not the fallback), tagged
// degraded.
func TestPartialSarsaServedDegraded(t *testing.T) {
	const budget = 150 * time.Millisecond
	ts := faultServer(t, WithTrainBudget(budget))

	var out degradedPlan
	start := time.Now()
	code := doJSON(t, "POST", ts.URL+"/api/plan", map[string]interface{}{
		"instance": univ1,
		"engine":   "sarsa",
		"episodes": 50_000_000,
	}, &out)
	elapsed := time.Since(start)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.ServedBy != "sarsa" || !out.Degraded {
		t.Fatalf("served_by=%q degraded=%v, want sarsa/true", out.ServedBy, out.Degraded)
	}
	if !strings.Contains(out.DegradedReason, "partial") {
		t.Fatalf("degraded_reason = %q", out.DegradedReason)
	}
	if len(out.Steps) == 0 {
		t.Fatal("partial policy served an empty plan")
	}
	if elapsed > budget+time.Second {
		t.Fatalf("response took %s, want <= budget+1s", elapsed)
	}
	if m := metricsSnapshot(t, ts); m["partials"] < 1 {
		t.Fatalf("metrics = %v, want partials>=1", m)
	}
}

// TestHealthyPlanCarriesProvenance: the tags are not fault-only — a
// normal response names its engine and reports degraded=false, and the
// body still decodes as a bare Plan for old clients.
func TestHealthyPlanCarriesProvenance(t *testing.T) {
	ts := faultServer(t)
	code, plan, _, err := postPlan(ts, "gold", 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || plan.ServedBy != "gold" || plan.Degraded || plan.DegradedReason != "" {
		t.Fatalf("status=%d served_by=%q degraded=%v reason=%q", code, plan.ServedBy, plan.Degraded, plan.DegradedReason)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("empty plan")
	}
}

// TestGoldFaultHasNoFallback: when the fallback engine itself is the
// one requested and it faults, the ladder must not recurse — the fault
// maps to its status.
func TestGoldFaultHasNoFallback(t *testing.T) {
	fe, cleanup := faultinject.New("fault-solo")
	t.Cleanup(cleanup)
	fe.Set(faultinject.Panic)
	ts := faultServer(t, WithFallbackEngine("fault-solo"))

	code, _, _, err := postPlan(ts, "fault-solo", 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 500 {
		t.Fatalf("status %d, want 500 (no fallback rung for the fallback engine)", code)
	}
}
