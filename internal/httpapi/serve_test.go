package httpapi

// Tests for the train/serve split of the serving path: per-key
// singleflight training, the bounded policy store, artifact
// export/import, and the discovery endpoints. Run with -race.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/rlplanner/rlplanner"
)

const instName = "Univ-1 M.S. DS-CT"

// TestConcurrentColdPlanTrainsOnce is the acceptance test of the
// concurrency model: N goroutines hammer /api/plan for one cold key.
// Exactly one training run may happen, every response must carry the
// identical plan, and the read endpoints must answer while the training
// run is still in flight.
func TestConcurrentColdPlanTrainsOnce(t *testing.T) {
	s := New()
	var trains int32
	trainStarted := make(chan struct{})
	release := make(chan struct{})
	s.onTrain = func(string) {
		if atomic.AddInt32(&trains, 1) == 1 {
			close(trainStarted)
		}
		<-release
	}
	h := s.Handler()

	const n = 24
	body := fmt.Sprintf(`{"instance":%q,"episodes":120,"seed":1}`, instName)
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = httptest.NewRecorder()
			h.ServeHTTP(recs[i], httptest.NewRequest("POST", "/api/plan", strings.NewReader(body)))
		}(i)
	}

	// The leader is now blocked inside training. Every read path must
	// still answer — nothing may hold a lock across Learn.
	<-trainStarted
	for _, path := range []string{"/api/instances", "/api/engines", "/api/policies",
		"/api/instances/" + url.PathEscape(instName)} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s during training: status %d", path, w.Code)
		}
	}
	close(release)
	wg.Wait()

	if got := atomic.LoadInt32(&trains); got != 1 {
		t.Fatalf("training ran %d times for one cold key, want exactly 1", got)
	}
	first := recs[0].Body.String()
	for i, w := range recs {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body.String())
		}
		if w.Body.String() != first {
			t.Fatalf("request %d served a different plan", i)
		}
	}

	// A warm request afterwards is a pure cache hit: no new training.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/api/plan", strings.NewReader(body)))
	if w.Code != http.StatusOK || w.Body.String() != first {
		t.Fatalf("warm request: status %d", w.Code)
	}
	if got := atomic.LoadInt32(&trains); got != 1 {
		t.Fatalf("warm request retrained (%d runs)", got)
	}
}

// TestDistinctKeysTrainIndependently: different engines for the same
// instance are different keys and train their own policies.
func TestDistinctKeysTrainIndependently(t *testing.T) {
	s := New()
	var trains int32
	s.onTrain = func(string) { atomic.AddInt32(&trains, 1) }
	h := s.Handler()
	for _, engine := range []string{"eda", "omega", "gold"} {
		body := fmt.Sprintf(`{"instance":%q,"engine":%q}`, instName, engine)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/api/plan", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", engine, w.Code, w.Body.String())
		}
	}
	if got := atomic.LoadInt32(&trains); got != 3 {
		t.Fatalf("3 engines trained %d policies", got)
	}
	// Aliases collapse onto the canonical key: "vi" and "valueiter" share.
	for _, engine := range []string{"vi", "valueiter", "value-iteration"} {
		body := fmt.Sprintf(`{"instance":%q,"engine":%q}`, instName, engine)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/api/plan", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d", engine, w.Code)
		}
	}
	if got := atomic.LoadInt32(&trains); got != 4 {
		t.Fatalf("aliases did not share a cache entry (%d trainings)", got)
	}
}

func TestEnginesEndpoint(t *testing.T) {
	h := New().Handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/api/engines", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var out struct {
		Engines []string `json:"engines"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Engines) != 6 {
		t.Fatalf("engines = %v", out.Engines)
	}
}

func TestPoliciesListing(t *testing.T) {
	s := New()
	h := s.Handler()
	body := fmt.Sprintf(`{"instance":%q,"engine":"gold"}`, instName)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/api/plan", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("plan status %d", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/api/policies", nil))
	var pols []struct {
		Key, Engine, Fingerprint string
	}
	if err := json.Unmarshal(w.Body.Bytes(), &pols); err != nil {
		t.Fatal(err)
	}
	if len(pols) != 1 || pols[0].Engine != "gold" || pols[0].Fingerprint == "" {
		t.Fatalf("policies = %+v", pols)
	}
}

// TestPolicyExportImport round-trips an artifact over HTTP: export from
// one server, import into a fresh one, and serve a plan from it without
// any training on the second server.
func TestPolicyExportImport(t *testing.T) {
	src := New()
	h := src.Handler()
	reqBody := fmt.Sprintf(`{"instance":%q,"episodes":120,"seed":1}`, instName)

	var plan rlplanner.Plan
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/api/plan", strings.NewReader(reqBody)))
	if err := json.Unmarshal(w.Body.Bytes(), &plan); err != nil {
		t.Fatal(err)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/api/policies/export", strings.NewReader(reqBody)))
	if w.Code != http.StatusOK {
		t.Fatalf("export status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export content type %q", ct)
	}
	artifact := w.Body.Bytes()
	if len(artifact) == 0 {
		t.Fatal("empty artifact")
	}

	dst := New()
	var dstTrains int32
	dst.onTrain = func(string) { atomic.AddInt32(&dstTrains, 1) }
	dh := dst.Handler()

	w = httptest.NewRecorder()
	dh.ServeHTTP(w, httptest.NewRequest("POST",
		"/api/policies/import?instance="+url.QueryEscape(instName), bytes.NewReader(artifact)))
	if w.Code != http.StatusCreated {
		t.Fatalf("import status %d: %s", w.Code, w.Body.String())
	}

	// The imported policy serves the instance's default plan request.
	var served rlplanner.Plan
	w = httptest.NewRecorder()
	dh.ServeHTTP(w, httptest.NewRequest("POST", "/api/plan",
		strings.NewReader(fmt.Sprintf(`{"instance":%q}`, instName))))
	if w.Code != http.StatusOK {
		t.Fatalf("plan-from-import status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &served); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&dstTrains); got != 0 {
		t.Fatalf("serving an imported policy trained %d times, want 0", got)
	}
	if fmt.Sprint(served.IDs()) != fmt.Sprint(plan.IDs()) {
		t.Fatalf("imported policy served %v, source trained %v", served.IDs(), plan.IDs())
	}
}

func TestPolicyImportErrors(t *testing.T) {
	h := New().Handler()

	// Missing instance parameter.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/api/policies/import", strings.NewReader("x")))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("missing instance: status %d", w.Code)
	}

	// Garbage artifact.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST",
		"/api/policies/import?instance="+url.QueryEscape(instName), strings.NewReader("garbage")))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("garbage artifact: status %d", w.Code)
	}

	// Fingerprint mismatch: export for one instance, import for another.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/api/policies/export",
		strings.NewReader(fmt.Sprintf(`{"instance":%q,"engine":"gold"}`, instName))))
	if w.Code != http.StatusOK {
		t.Fatalf("export status %d", w.Code)
	}
	artifact := w.Body.Bytes()
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST",
		"/api/policies/import?instance=NYC", bytes.NewReader(artifact)))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("cross-catalog import: status %d", w.Code)
	}
	var resp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "different catalog") {
		t.Fatalf("mismatch error = %q", resp.Error)
	}
}

// TestPolicyCacheBound proves the -policy-cache knob: with a 1-entry
// store, a second engine evicts the first and forces a retrain.
func TestPolicyCacheBound(t *testing.T) {
	s := New(WithPolicyCacheSize(1))
	var trains int32
	s.onTrain = func(string) { atomic.AddInt32(&trains, 1) }
	h := s.Handler()
	plan := func(engine string) {
		t.Helper()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/api/plan",
			strings.NewReader(fmt.Sprintf(`{"instance":%q,"engine":%q}`, instName, engine))))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d", engine, w.Code)
		}
	}
	plan("gold")
	plan("eda")  // evicts gold
	plan("gold") // retrains
	if got := atomic.LoadInt32(&trains); got != 3 {
		t.Fatalf("1-entry cache trained %d times, want 3", got)
	}
}

// TestSessionFromProceduralEngineRejected: sessions need action values.
func TestSessionFromProceduralEngineRejected(t *testing.T) {
	h := New().Handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/api/sessions",
		strings.NewReader(fmt.Sprintf(`{"instance":%q,"engine":"gold"}`, instName))))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("session on gold: status %d: %s", w.Code, w.Body.String())
	}
}

// TestWriteJSONEncodeFailure: an unencodable value produces a clean 500
// instead of a torn 200.
func TestWriteJSONEncodeFailure(t *testing.T) {
	w := httptest.NewRecorder()
	writeJSON(w, http.StatusOK, map[string]interface{}{"bad": func() {}})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if body, _ := io.ReadAll(w.Body); !bytes.Contains(body, []byte("encoding failed")) {
		t.Fatalf("body = %s", body)
	}
}
