package httpapi

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// planBody is the request every overlay test serves against: small
// enough to train fast, deterministic via the seed.
func overlayPlanReq(user string) map[string]interface{} {
	req := map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"engine":   "sarsa",
		"episodes": 120,
		"seed":     4,
	}
	if user != "" {
		req["user"] = user
	}
	return req
}

type overlayPlanResp struct {
	Steps []struct {
		ID string `json:"id"`
	} `json:"steps"`
	ServedBy     string `json:"served_by"`
	Personalized bool   `json:"personalized"`
}

func (r overlayPlanResp) ids() string {
	var ids []string
	for _, s := range r.Steps {
		ids = append(ids, s.ID)
	}
	return strings.Join(ids, "|")
}

// TestFeedbackPersonalizesPlans is the end-to-end loop: serve a plan,
// dislike it repeatedly as one user, and observe that only that user's
// plans change while anonymous requests and other users keep the base.
func TestFeedbackPersonalizesPlans(t *testing.T) {
	ts := testServer(t)

	var base overlayPlanResp
	if code := doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq(""), &base); code != 200 {
		t.Fatalf("base plan status %d", code)
	}
	if base.Personalized {
		t.Fatal("anonymous plan marked personalized")
	}
	// A user with no feedback history serves the base plan, unmarked.
	var fresh overlayPlanResp
	if code := doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq("alice"), &fresh); code != 200 {
		t.Fatalf("fresh-user plan status %d", code)
	}
	if fresh.Personalized || fresh.ids() != base.ids() {
		t.Fatalf("feedback-free user diverged from base: %q vs %q", fresh.ids(), base.ids())
	}

	var items []string
	for _, s := range base.Steps {
		items = append(items, s.ID)
	}
	fb := overlayPlanReq("alice")
	fb["items"] = items
	fb["useful"] = false
	fb["rate"] = 1.0
	var fbResp feedbackResponse
	for i := 0; i < 25; i++ {
		if code := doJSON(t, "POST", ts.URL+"/api/feedback", fb, &fbResp); code != 200 {
			t.Fatalf("feedback %d status %d", i, code)
		}
		if fbResp.Applied == 0 {
			t.Fatalf("feedback %d applied no transitions", i)
		}
	}
	if fbResp.OverlayCells == 0 || fbResp.OverlayBytes <= 0 {
		t.Fatalf("overlay stats after feedback: %+v", fbResp)
	}

	var personal overlayPlanResp
	if code := doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq("alice"), &personal); code != 200 {
		t.Fatalf("personalized plan status %d", code)
	}
	if !personal.Personalized {
		t.Fatal("plan for a user with feedback not marked personalized")
	}
	if personal.ids() == base.ids() {
		t.Fatal("strong negative feedback left the user's plan unchanged")
	}
	// The shared artifact is untouched: anonymous and other-user requests
	// still serve the original plan.
	var again overlayPlanResp
	doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq(""), &again)
	if again.ids() != base.ids() || again.Personalized {
		t.Fatal("anonymous serving changed after another user's feedback")
	}
	var other overlayPlanResp
	doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq("bob"), &other)
	if other.ids() != base.ids() || other.Personalized {
		t.Fatal("one user's feedback leaked into another user's plans")
	}

	// Metrics surface the personalization fleet.
	var m map[string]int64
	doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m)
	if m["overlay_users"] != 1 || m["overlay_entries"] != 1 {
		t.Fatalf("overlay_users=%d overlay_entries=%d", m["overlay_users"], m["overlay_entries"])
	}
	if m["overlay_bytes"] <= 0 {
		t.Fatalf("overlay_bytes = %d", m["overlay_bytes"])
	}
	if m["feedback_signals"] != 25 {
		t.Fatalf("feedback_signals = %d", m["feedback_signals"])
	}
	if m["policy_cache_bytes"] <= 0 || m["env_cache_bytes"] <= 0 {
		t.Fatalf("resident-bytes metrics: policy=%d env=%d",
			m["policy_cache_bytes"], m["env_cache_bytes"])
	}
}

// TestFeedbackValidation covers the request-shape rejections.
func TestFeedbackValidation(t *testing.T) {
	ts := testServer(t)
	base := overlayPlanReq("")
	var plan overlayPlanResp
	doJSON(t, "POST", ts.URL+"/api/plan", base, &plan)
	var items []string
	for _, s := range plan.Steps {
		items = append(items, s.ID)
	}

	cases := []struct {
		name string
		mut  func(map[string]interface{})
	}{
		{"no user", func(r map[string]interface{}) { delete(r, "user") }},
		{"no signal", func(r map[string]interface{}) { delete(r, "useful") }},
		{"both signals", func(r map[string]interface{}) { r["rating"] = 5 }},
		{"short plan", func(r map[string]interface{}) { r["items"] = items[:1] }},
	}
	for _, tc := range cases {
		req := overlayPlanReq("alice")
		req["items"] = items
		req["useful"] = true
		tc.mut(req)
		var errResp map[string]string
		if code := doJSON(t, "POST", ts.URL+"/api/feedback", req, &errResp); code != 400 {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}

	// Feedback against a procedural engine has no values to personalize.
	req := overlayPlanReq("alice")
	req["engine"] = "gold"
	req["items"] = items
	req["useful"] = true
	var errResp map[string]string
	if code := doJSON(t, "POST", ts.URL+"/api/feedback", req, &errResp); code != 400 {
		t.Errorf("procedural-engine feedback: status %d, want 400", code)
	}
}

// TestOverlayStoreBudgetEvictsUsers: pushing many users through a tiny
// byte budget evicts the least recently active, and evicted users revert
// to base serving.
func TestOverlayStoreBudgetEvictsUsers(t *testing.T) {
	ts := httptest.NewServer(New(WithOverlayBudget(1), WithOverlayCells(64)).Handler())
	t.Cleanup(ts.Close)

	var base overlayPlanResp
	doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq(""), &base)
	var items []string
	for _, s := range base.Steps {
		items = append(items, s.ID)
	}
	// Budget of 1 byte: every new user's first feedback evicts the
	// previous user.
	for i := 0; i < 5; i++ {
		fb := overlayPlanReq(fmt.Sprintf("u%d", i))
		fb["items"] = items
		fb["useful"] = false
		var fbResp feedbackResponse
		if code := doJSON(t, "POST", ts.URL+"/api/feedback", fb, &fbResp); code != 200 {
			t.Fatalf("feedback u%d status %d", i, code)
		}
	}
	var m map[string]int64
	doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m)
	if m["overlay_users"] != 1 {
		t.Fatalf("overlay_users = %d after budget evictions, want 1", m["overlay_users"])
	}
	if m["overlay_evictions"] != 4 {
		t.Fatalf("overlay_evictions = %d, want 4", m["overlay_evictions"])
	}
	// An evicted user's plan request serves the base, unmarked.
	var evicted overlayPlanResp
	doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq("u0"), &evicted)
	if evicted.Personalized || evicted.ids() != base.ids() {
		t.Fatal("evicted user still served a personalized plan")
	}
}

// TestOverlaySurvivesOnlyItsPolicy: a retrained policy under the same
// key invalidates the overlay instead of applying it to the wrong
// artifact.
func TestOverlayStaleAfterPolicyReplaced(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var base overlayPlanResp
	doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq(""), &base)
	var items []string
	for _, s := range base.Steps {
		items = append(items, s.ID)
	}
	fb := overlayPlanReq("alice")
	fb["items"] = items
	fb["useful"] = false
	var fbResp feedbackResponse
	if code := doJSON(t, "POST", ts.URL+"/api/feedback", fb, &fbResp); code != 200 {
		t.Fatalf("feedback status %d", code)
	}

	// Evict and retrain the policy under the same key.
	req := planRequest{Instance: "Univ-1 M.S. DS-CT", Episodes: 120, Seed: 4}
	key := req.policyKey("sarsa")
	srv.policies.Remove(key)
	var replan overlayPlanResp
	if code := doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq("alice"), &replan); code != 200 {
		t.Fatalf("replan status %d", code)
	}
	// The stale overlay must not serve; the retrained artifact serves its
	// base plan and the entry is gone.
	if replan.Personalized {
		t.Fatal("stale overlay applied to a retrained policy")
	}
	var m map[string]int64
	doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m)
	if m["overlay_entries"] != 0 {
		t.Fatalf("stale overlay entry not dropped: overlay_entries = %d", m["overlay_entries"])
	}
	// Fresh feedback rebuilds personalization on the new artifact.
	if code := doJSON(t, "POST", ts.URL+"/api/feedback", fb, &fbResp); code != 200 {
		t.Fatalf("post-retrain feedback status %d", code)
	}
	var personal overlayPlanResp
	doJSON(t, "POST", ts.URL+"/api/plan", overlayPlanReq("alice"), &personal)
	if !personal.Personalized {
		t.Fatal("feedback after retrain did not re-personalize")
	}
}
