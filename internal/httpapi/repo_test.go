// Acceptance tests for the durable policy tier: restart without
// retraining, boot-time quarantine of corrupt artifacts, and the
// cross-process claim protocol driven through two Servers sharing one
// repository directory (the in-process stand-in for two rlplannerd
// replicas — the repository's lock files do not care which process the
// competing handles live in).
package httpapi

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// repoPlanReq is the one policy every test in this file trains: small
// enough to train in milliseconds, real enough to serialize.
var repoPlanReq = map[string]interface{}{
	"instance": "Univ-1 M.S. CS", "engine": "sarsa", "episodes": 60, "seed": 3,
}

func repoMetrics(t *testing.T, baseURL string) map[string]int64 {
	t.Helper()
	var m map[string]int64
	if code := doJSON(t, "GET", baseURL+"/api/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	return m
}

// TestRepoRestartWithoutRetrain is the durability acceptance test: a
// server trains into its -policy-dir, a brand-new server on the same
// directory serves the same request from the repository — repo_hits
// counts it, and the training hook never fires.
func TestRepoRestartWithoutRetrain(t *testing.T) {
	dir := t.TempDir()

	a := New(WithPolicyDir(dir))
	var trainedA atomic.Int64
	a.onTrain = func(string) { trainedA.Add(1) }
	tsA := httptest.NewServer(a.Handler())
	var plan map[string]interface{}
	if code := doJSON(t, "POST", tsA.URL+"/api/plan", repoPlanReq, &plan); code != 200 {
		t.Fatalf("cold plan status %d", code)
	}
	if got := trainedA.Load(); got != 1 {
		t.Fatalf("cold boot trained %d times, want 1", got)
	}
	ma := repoMetrics(t, tsA.URL)
	if ma["repo_writes"] < 1 {
		t.Fatalf("repo_writes = %d after training, want >= 1", ma["repo_writes"])
	}
	if ma["repo_misses"] < 1 {
		t.Fatalf("repo_misses = %d on a cold directory, want >= 1", ma["repo_misses"])
	}
	tsA.Close()

	// "Restart": a fresh Server (fresh memory LRU, fresh counters) on the
	// same directory. The plan must come off disk, not out of a trainer.
	b := New(WithPolicyDir(dir))
	var trainedB atomic.Int64
	b.onTrain = func(string) { trainedB.Add(1) }
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	if code := doJSON(t, "POST", tsB.URL+"/api/plan", repoPlanReq, &plan); code != 200 {
		t.Fatalf("warm plan status %d", code)
	}
	if got := trainedB.Load(); got != 0 {
		t.Fatalf("warm boot trained %d times, want 0", got)
	}
	mb := repoMetrics(t, tsB.URL)
	if mb["repo_hits"] < 1 {
		t.Fatalf("repo_hits = %d after warm boot, want >= 1", mb["repo_hits"])
	}
	// The repo hit filled the memory LRU: a repeat request is a pure
	// cache hit and leaves the repository counters alone.
	if code := doJSON(t, "POST", tsB.URL+"/api/plan", repoPlanReq, &plan); code != 200 {
		t.Fatalf("repeat plan status %d", code)
	}
	if again := repoMetrics(t, tsB.URL); again["repo_hits"] != mb["repo_hits"] {
		t.Fatalf("repeat plan consulted the repository: repo_hits %d -> %d",
			mb["repo_hits"], again["repo_hits"])
	}
}

// TestRepoCorruptArtifactQuarantinedAtBoot flips a byte in a stored
// artifact between runs: the next boot's warm scan must quarantine the
// entry to *.bad (never crash), report it in repo_quarantined_total,
// and the request must retrain cleanly.
func TestRepoCorruptArtifactQuarantinedAtBoot(t *testing.T) {
	dir := t.TempDir()
	a := New(WithPolicyDir(dir))
	tsA := httptest.NewServer(a.Handler())
	var plan map[string]interface{}
	if code := doJSON(t, "POST", tsA.URL+"/api/plan", repoPlanReq, &plan); code != 200 {
		t.Fatalf("cold plan status %d", code)
	}
	tsA.Close()

	pols, err := filepath.Glob(filepath.Join(dir, "*.pol"))
	if err != nil || len(pols) != 1 {
		t.Fatalf("Glob(*.pol) = %v, %v; want exactly one entry", pols, err)
	}
	raw, err := os.ReadFile(pols[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xFF
	if err := os.WriteFile(pols[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	b := New(WithPolicyDir(dir))
	var trainedB atomic.Int64
	b.onTrain = func(string) { trainedB.Add(1) }
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	if got := b.repoStats().Quarantined; got != 1 {
		t.Fatalf("boot scan quarantined %d entries, want 1", got)
	}
	bads, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
	if len(bads) != 1 {
		t.Fatalf("quarantine left %v, want one *.bad file", bads)
	}
	if code := doJSON(t, "POST", tsB.URL+"/api/plan", repoPlanReq, &plan); code != 200 {
		t.Fatalf("post-quarantine plan status %d", code)
	}
	if got := trainedB.Load(); got != 1 {
		t.Fatalf("post-quarantine trained %d times, want 1 (retrain the lost key)", got)
	}
	if m := repoMetrics(t, tsB.URL); m["repo_quarantined_total"] != 1 {
		t.Fatalf("repo_quarantined_total = %d, want 1", m["repo_quarantined_total"])
	}
}

// TestRepoTwoServersExactlyOneTrainer races two Servers sharing one
// repository directory on the same cold key from many goroutines: the
// claim protocol must elect exactly one trainer fleet-wide; everyone
// else serves the winner's artifact.
func TestRepoTwoServersExactlyOneTrainer(t *testing.T) {
	dir := t.TempDir()
	var trained atomic.Int64
	newReplica := func() *httptest.Server {
		s := New(WithPolicyDir(dir))
		s.onTrain = func(string) { trained.Add(1) }
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	tsA, tsB := newReplica(), newReplica()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		ts := tsA
		if i%2 == 1 {
			ts = tsB
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var plan map[string]interface{}
			if code := doJSON(t, "POST", ts.URL+"/api/plan", repoPlanReq, &plan); code != 200 {
				t.Errorf("plan status %d", code)
			}
		}()
	}
	wg.Wait()
	if got := trained.Load(); got != 1 {
		t.Fatalf("two replicas trained %d times, want exactly 1", got)
	}
	// Whichever replica lost the claim went through the repository: the
	// directory holds exactly the one artifact.
	if pols, _ := filepath.Glob(filepath.Join(dir, "*.pol")); len(pols) != 1 {
		t.Fatalf("directory holds %v, want one artifact", pols)
	}
}

// TestRepoStaleLeaseTakeover plants a lock file owned by a dead process
// (pid 0) under the key a request is about to train: the claim protocol
// must break the stale lease and train instead of waiting forever.
func TestRepoStaleLeaseTakeover(t *testing.T) {
	dir := t.TempDir()
	s := New(WithPolicyDir(dir))
	var trained atomic.Int64
	s.onTrain = func(string) { trained.Add(1) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := planRequest{Instance: "Univ-1 M.S. CS", Engine: "sarsa", Episodes: 60, Seed: 3}
	_, _, rk, ok := s.tier.resolve(req.policyKey("sarsa"))
	if !ok {
		t.Fatal("tier could not resolve the test key")
	}
	lock := s.repo.Path(rk) + ".lock"
	if err := os.WriteFile(lock, []byte("pid 0\nstart 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var plan map[string]interface{}
	if code := doJSON(t, "POST", ts.URL+"/api/plan", repoPlanReq, &plan); code != 200 {
		t.Fatalf("plan status %d", code)
	}
	if got := trained.Load(); got != 1 {
		t.Fatalf("trained %d times after breaking the stale lease, want 1", got)
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Fatalf("stale lock still present after takeover: %v", err)
	}
}

// TestPreload boots from a manifest: every listed request is resolved
// through the full policy path (training on a cold directory, the
// repository on a warm one), entries fail independently, and a second
// replica preloading the same manifest from the same directory trains
// nothing.
func TestPreload(t *testing.T) {
	dir := t.TempDir()
	manifest := `[
		{"instance": "Univ-1 M.S. CS", "engine": "sarsa", "episodes": 60, "seed": 3},
		{"instance": "no-such-program", "engine": "sarsa"},
		{"instance": "Univ-1 M.S. DS-CT", "engine": "sarsa", "episodes": 60, "seed": 3}
	]`

	a := New(WithPolicyDir(dir), WithAutoDerive(false))
	var trainedA atomic.Int64
	a.onTrain = func(string) { trainedA.Add(1) }
	n, err := a.Preload(context.Background(), strings.NewReader(manifest))
	if n != 2 {
		t.Fatalf("cold preload loaded %d, want 2", n)
	}
	if err == nil || !strings.Contains(err.Error(), "no-such-program") {
		t.Fatalf("cold preload error = %v, want the bad entry reported", err)
	}
	if got := trainedA.Load(); got != 2 {
		t.Fatalf("cold preload trained %d, want 2", got)
	}

	b := New(WithPolicyDir(dir), WithAutoDerive(false))
	var trainedB atomic.Int64
	b.onTrain = func(string) { trainedB.Add(1) }
	if n, _ = b.Preload(context.Background(), strings.NewReader(manifest)); n != 2 {
		t.Fatalf("warm preload loaded %d, want 2", n)
	}
	if got := trainedB.Load(); got != 0 {
		t.Fatalf("warm preload trained %d, want 0 (repository has both)", got)
	}
	// The preloaded policies are live in memory: serving them touches
	// neither a trainer nor the repository again.
	ts := httptest.NewServer(b.Handler())
	defer ts.Close()
	hits := b.repoStats().Hits
	var plan map[string]interface{}
	if code := doJSON(t, "POST", ts.URL+"/api/plan", repoPlanReq, &plan); code != 200 {
		t.Fatalf("post-preload plan status %d", code)
	}
	if trainedB.Load() != 0 || b.repoStats().Hits != hits {
		t.Fatal("post-preload plan was not a pure memory hit")
	}
}

// TestParsePolicyKeyRoundTrip pins parsePolicyKey as the exact inverse
// of planRequest.policyKey, including instance names that themselves
// contain the separator.
func TestParsePolicyKeyRoundTrip(t *testing.T) {
	reqs := []planRequest{
		{Instance: "Univ-1 M.S. CS", Engine: "sarsa"},
		{Instance: "Univ-1 M.S. CS", Engine: "sarsa", Episodes: 90, Seed: 7, Start: "CS 500", MinSim: true, Time: 1.5, Distance: 12.25},
		{Instance: "odd|name|catalog", Engine: "qlearning", Episodes: 3, Seed: -1},
	}
	for _, want := range reqs {
		key := want.policyKey(want.Engine)
		got, ok := parsePolicyKey(key)
		if !ok {
			t.Fatalf("parsePolicyKey(%q) failed", key)
		}
		if got != want {
			t.Fatalf("round trip of %q:\n got %+v\nwant %+v", key, got, want)
		}
	}
	for _, bad := range []string{"", "a|b", "i|e|x|0||false|0|0", strings.Repeat("|", 7)} {
		if _, ok := parsePolicyKey(bad); ok {
			t.Fatalf("parsePolicyKey(%q) accepted a malformed key", bad)
		}
	}
}
