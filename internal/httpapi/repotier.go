// The durable policy tier behind the serving cache: WithPolicyDir roots
// an internal/repo repository under the policy store (memory LRU →
// on-disk repo → train), so a restarted daemon warm-boots its policies
// from disk and N replicas sharing one directory train each key exactly
// once (the repository's cross-process claim protocol). This file is
// the serialization adapter between the two layers: store keys parse
// back into plan requests, artifacts stream through Policy.Save /
// LoadPolicyArtifact, and every repository fault degrades to the
// training path — never to a failed request.
package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"

	"github.com/rlplanner/rlplanner"
	"github.com/rlplanner/rlplanner/internal/repo"
)

// WithPolicyDir attaches a durable, crash-safe policy repository rooted
// at dir ("" disables the tier — the default). Opening runs the boot
// warm scan: every artifact is checksum-verified and corrupt or
// truncated entries are quarantined to *.bad. An unopenable repository
// is logged and skipped; the daemon serves memory-only rather than
// refusing to start.
func WithPolicyDir(dir string) Option {
	return func(s *Server) { s.policyDir = dir }
}

// openRepo roots the repository configured by WithPolicyDir and hooks
// it behind the policy store. Called once from New, after options.
func (s *Server) openRepo() {
	if s.policyDir == "" {
		return
	}
	r, err := repo.Open(s.policyDir, repo.Options{})
	if err != nil {
		log.Printf("httpapi: policy repository %s unavailable, serving memory-only: %v", s.policyDir, err)
		return
	}
	if st := r.Stats(); st.Quarantined > 0 {
		log.Printf("httpapi: policy repository %s: %d entries verified, %d quarantined to *.bad",
			s.policyDir, st.Entries, st.Quarantined)
	}
	s.repo = r
	s.tier = &policyTier{s: s, r: r}
	s.policies.AttachTier(s.tier)
}

// repoStats reports the repository counters, zero when no repository is
// attached, so /api/metrics keeps a stable shape either way.
func (s *Server) repoStats() repo.Stats {
	if s.repo == nil {
		return repo.Stats{}
	}
	return s.repo.Stats()
}

// policyTier adapts the byte-oriented repository to the policy store's
// Tier interface. Repository keys extend the store key with the
// instance's catalog fingerprint, so a renamed-but-identical catalog
// shares its artifact and a changed catalog can never collide with its
// predecessor's.
type policyTier struct {
	s *Server
	r *repo.Repo
}

// resolve parses a store key back into its plan request and resolves
// the instance; ok is false for keys the tier cannot address (unknown
// instance, unparseable key), which then behave as simple misses.
func (t *policyTier) resolve(key string) (planRequest, *rlplanner.Instance, string, bool) {
	req, ok := parsePolicyKey(key)
	if !ok {
		return req, nil, "", false
	}
	inst, err := t.s.instance(req.Instance)
	if err != nil {
		return req, nil, "", false
	}
	return req, inst, key + "|" + inst.Fingerprint(), true
}

func (t *policyTier) Get(key string) (*rlplanner.Policy, bool) {
	req, inst, rk, ok := t.resolve(key)
	if !ok {
		return nil, false
	}
	payload, ok := t.r.Get(rk)
	if !ok {
		return nil, false
	}
	pol, err := rlplanner.LoadPolicyArtifact(bytes.NewReader(payload), inst, t.s.trainOpts(req))
	if err != nil {
		// The bytes passed their checksum but do not restore (foreign
		// artifact, version from the future, fingerprint drift): name the
		// file, quarantine it, retrain. engine.Load already counted it in
		// artifact_load_failures_total.
		log.Printf("httpapi: policy repository: quarantining %s: %v", t.r.Path(rk), err)
		t.r.Quarantine(rk)
		return nil, false
	}
	return pol, true
}

func (t *policyTier) Put(key string, pol *rlplanner.Policy) {
	_, _, rk, ok := t.resolve(key)
	if !ok {
		return
	}
	var buf bytes.Buffer
	if err := pol.Save(&buf); err != nil {
		// Policies that cannot serialize (test engines) simply stay
		// memory-only.
		return
	}
	if err := t.r.Put(rk, buf.Bytes()); err != nil {
		log.Printf("httpapi: policy repository: write-through for %q failed: %v", key, err)
	}
}

func (t *policyTier) Quarantine(key string) {
	if _, _, rk, ok := t.resolve(key); ok {
		t.r.Quarantine(rk)
	}
}

func (t *policyTier) TryClaim(key string) (func(), bool, error) {
	_, _, rk, ok := t.resolve(key)
	if !ok {
		// Unaddressable keys cannot coordinate across processes; let the
		// caller train locally.
		return nil, false, fmt.Errorf("httpapi: unaddressable policy key %q", key)
	}
	return t.r.TryClaim(rk)
}

// parsePolicyKey is the inverse of planRequest.policyKey. The tail
// seven fields are engine, episodes, seed, start, min-sim, time and
// distance; everything before them (which may itself contain "|") is
// the instance name.
func parsePolicyKey(key string) (planRequest, bool) {
	var req planRequest
	f := strings.Split(key, "|")
	if len(f) < 8 {
		return req, false
	}
	n := len(f)
	req.Instance = strings.Join(f[:n-7], "|")
	req.Engine = f[n-7]
	var err error
	if req.Episodes, err = strconv.Atoi(f[n-6]); err != nil {
		return req, false
	}
	if req.Seed, err = strconv.ParseInt(f[n-5], 10, 64); err != nil {
		return req, false
	}
	req.Start = f[n-4]
	switch f[n-3] {
	case "true":
		req.MinSim = true
	case "false":
		req.MinSim = false
	default:
		return req, false
	}
	if req.Time, err = strconv.ParseFloat(f[n-2], 64); err != nil {
		return req, false
	}
	if req.Distance, err = strconv.ParseFloat(f[n-1], 64); err != nil {
		return req, false
	}
	return req, req.Instance != "" && req.Engine != ""
}

// Preload resolves every entry of a boot manifest — a JSON array of
// plan requests — through the full policy path: memory, then the
// repository, then training under the cross-process claim. A fleet
// pointed at one manifest and one -policy-dir therefore trains each
// listed key exactly once, wherever it boots first; every other replica
// warm-loads it. Entries fail independently; the first error is
// returned after the whole manifest has been attempted.
func (s *Server) Preload(ctx context.Context, manifest io.Reader) (loaded int, err error) {
	var reqs []planRequest
	if derr := json.NewDecoder(manifest).Decode(&reqs); derr != nil {
		return 0, fmt.Errorf("preload manifest: %w", derr)
	}
	for i, req := range reqs {
		inst, ierr := s.instance(req.Instance)
		if ierr != nil {
			err = errors.Join(err, fmt.Errorf("preload[%d]: %w", i, ierr))
			continue
		}
		engineName, eerr := req.engineName()
		if eerr != nil {
			err = errors.Join(err, fmt.Errorf("preload[%d]: %w", i, eerr))
			continue
		}
		if _, perr := s.policy(ctx, inst, engineName, req); perr != nil {
			err = errors.Join(err, fmt.Errorf("preload[%d] %s/%s: %w", i, req.Instance, engineName, perr))
			continue
		}
		loaded++
	}
	return loaded, err
}
