package httpapi

import (
	"net/http"
	"sync"
	"testing"

	"github.com/rlplanner/rlplanner"
)

// instanceItems fetches the catalog of a built-in instance over the API
// so batch tests can use real item ids without hard-coding the dataset.
func instanceItems(t *testing.T, baseURL, name string) []rlplanner.Item {
	t.Helper()
	var detail struct {
		Items []rlplanner.Item `json:"items"`
	}
	if code := doJSON(t, "GET", baseURL+"/api/instances/"+name, nil, &detail); code != 200 {
		t.Fatalf("instance %q: status %d", name, code)
	}
	if len(detail.Items) == 0 {
		t.Fatalf("instance %q has no items", name)
	}
	return detail.Items
}

func TestBatchPlanEndpoint(t *testing.T) {
	ts := testServer(t)
	const inst = "Univ-1 M.S. DS-CT"
	items := instanceItems(t, ts.URL, inst)

	var resp batchResponse
	code := doJSON(t, "POST", ts.URL+"/api/plan/batch", map[string]interface{}{
		"instance": inst,
		"engine":   "sarsa",
		"episodes": 40,
		"seed":     1,
		"starts":   []string{"", items[0].ID, "No Such Item", items[1].ID},
	}, &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Instance != inst || resp.Engine != "sarsa" {
		t.Fatalf("echo = %s/%s", resp.Instance, resp.Engine)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("items = %d, want 4 (index-aligned with starts)", len(resp.Items))
	}
	if resp.Errors != 1 {
		t.Fatalf("errors = %d, want 1 (the unknown start)", resp.Errors)
	}

	bad := resp.Items[2]
	if bad.Plan != nil || bad.Status != http.StatusBadRequest || bad.Error == "" {
		t.Fatalf("unknown start item = %+v, want per-item 400", bad)
	}
	for i, it := range []batchItem{resp.Items[0], resp.Items[1], resp.Items[3]} {
		if it.Error != "" || it.Plan == nil {
			t.Fatalf("item %d failed: %+v", i, it)
		}
		if it.Plan.ServedBy != "sarsa" || it.Plan.Degraded {
			t.Fatalf("item %d provenance = %s degraded=%v", i, it.Plan.ServedBy, it.Plan.Degraded)
		}
		if len(it.Plan.Steps) == 0 {
			t.Fatalf("item %d: empty plan", i)
		}
	}
	// An explicit start must actually steer the walk.
	if got := resp.Items[1].Plan.Steps[0].ID; got != items[0].ID {
		t.Fatalf("start %q produced plan starting at %q", items[0].ID, got)
	}
	if got := resp.Items[3].Plan.Steps[0].ID; got != items[1].ID {
		t.Fatalf("start %q produced plan starting at %q", items[1].ID, got)
	}
}

func TestBatchPlanValidation(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name string
		body map[string]interface{}
		want int
	}{
		{"no starts", map[string]interface{}{
			"instance": "Univ-1 M.S. DS-CT"}, 400},
		{"oversized batch", map[string]interface{}{
			"instance": "Univ-1 M.S. DS-CT",
			"starts":   make([]string, MaxBatchItems+1)}, 400},
		{"unknown instance", map[string]interface{}{
			"instance": "Hogwarts", "starts": []string{""}}, 404},
		{"unknown engine", map[string]interface{}{
			"instance": "Univ-1 M.S. DS-CT", "engine": "oracle",
			"starts": []string{""}}, 400},
	}
	for _, tc := range cases {
		if code := doJSON(t, "POST", ts.URL+"/api/plan/batch", tc.body, &struct{}{}); code != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}
}

// TestBatchAndPlanConcurrently interleaves single-plan and batch
// requests against the same and different instances — the -race hammer
// over the shared policy store, environment cache and episode pool.
func TestBatchAndPlanConcurrently(t *testing.T) {
	ts := testServer(t)
	insts := []string{"Univ-1 M.S. DS-CT", "Univ-2 M.S. DS"}
	starts := map[string][]string{}
	for _, name := range insts {
		items := instanceItems(t, ts.URL, name)
		starts[name] = []string{"", items[0].ID, items[len(items)/2].ID}
	}

	const rounds = 6
	var wg sync.WaitGroup
	for _, name := range insts {
		for r := 0; r < rounds; r++ {
			wg.Add(2)
			go func(name string) {
				defer wg.Done()
				var out planResponse
				code := doJSON(t, "POST", ts.URL+"/api/plan", map[string]interface{}{
					"instance": name, "episodes": 40, "seed": 1,
				}, &out)
				if code != 200 {
					t.Errorf("plan %s: status %d", name, code)
				}
			}(name)
			go func(name string) {
				defer wg.Done()
				var out batchResponse
				code := doJSON(t, "POST", ts.URL+"/api/plan/batch", map[string]interface{}{
					"instance": name, "episodes": 40, "seed": 1, "starts": starts[name],
				}, &out)
				if code != 200 {
					t.Errorf("batch %s: status %d", name, code)
				}
				if out.Errors != 0 {
					t.Errorf("batch %s: %d item errors: %+v", name, out.Errors, out.Items)
				}
			}(name)
		}
	}
	wg.Wait()
}

// TestBatchMetricsExposeCaches checks that serving traffic surfaces the
// policy- and environment-cache counters on /api/metrics.
func TestBatchMetricsExposeCaches(t *testing.T) {
	ts := testServer(t)
	var out batchResponse
	body := map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT", "episodes": 40, "seed": 2,
		"starts": []string{"", ""},
	}
	if code := doJSON(t, "POST", ts.URL+"/api/plan/batch", body, &out); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	var m map[string]int64
	if code := doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, key := range []string{
		"policy_cache_hits", "policy_cache_misses", "policy_cache_size",
		"env_cache_hits", "env_cache_misses", "env_cache_size",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, m)
		}
	}
	if m["policy_cache_size"] < 1 {
		t.Fatalf("policy cache empty after a batch: %v", m)
	}
	if m["env_cache_misses"]+m["env_cache_hits"] == 0 {
		t.Fatalf("env cache never consulted: %v", m)
	}
}
