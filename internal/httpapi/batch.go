// Batch planning: POST /api/plan/batch fans one (instance, engine,
// options) configuration across many start items. The policy is trained
// (or fetched) once through the store's singleflight; the fan-out then
// runs Recommend walks concurrently over the shared immutable policy
// and its cached environment. Each item carries its own result, error
// and degradation tag, so one infeasible start never fails the batch.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/rlplanner/rlplanner"
)

// DefaultBatchWorkers bounds the per-request fan-out when the server
// was not configured with WithBatchWorkers.
const DefaultBatchWorkers = 4

// MaxBatchItems caps one batch request; larger batches are rejected
// with 400 rather than silently truncated.
const MaxBatchItems = 1024

// WithBatchWorkers bounds the concurrent recommendation walks of one
// batch request (DefaultBatchWorkers when never set or n <= 0).
func WithBatchWorkers(n int) Option {
	return func(s *Server) { s.batchWorkers = n }
}

// batchRequest is a plan request fanned across many start items. The
// shared fields (instance, engine, options) resolve exactly like
// /api/plan; Starts lists the start item id per batch item ("" uses the
// trained default start).
type batchRequest struct {
	planRequest
	Starts []string `json:"starts"`
}

// batchItem is the outcome of one start: either a plan (possibly
// degraded through the fallback ladder) or an error with the HTTP
// status the same request would have gotten from /api/plan.
type batchItem struct {
	Start  string        `json:"start"`
	Plan   *planResponse `json:"plan,omitempty"`
	Error  string        `json:"error,omitempty"`
	Status int           `json:"status,omitempty"`
}

// batchResponse is the whole batch, index-aligned with the request's
// Starts.
type batchResponse struct {
	Instance string      `json:"instance"`
	Engine   string      `json:"engine"`
	Items    []batchItem `json:"items"`
	Errors   int         `json:"errors"`
}

func (s *Server) planBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Starts) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch request needs a non-empty \"starts\" list"))
		return
	}
	if len(req.Starts) > MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d items exceeds the %d-item limit", len(req.Starts), MaxBatchItems))
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	engineName, err := req.engineName()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	items := make([]batchItem, len(req.Starts))
	workers := s.batchWorkers
	if workers <= 0 {
		workers = DefaultBatchWorkers
	}
	if workers > len(req.Starts) {
		workers = len(req.Starts)
	}
	// Work-stealing fan-out: a shared cursor instead of pre-partitioned
	// ranges, so one slow item (a cold policy, a fallback train) does not
	// idle the other workers.
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Starts) {
					return
				}
				items[i] = s.batchOne(r, inst, engineName, req.planRequest, req.Starts[i])
			}
		}()
	}
	wg.Wait()

	resp := batchResponse{Instance: req.Instance, Engine: engineName, Items: items}
	for i := range items {
		if items[i].Error != "" {
			resp.Errors++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchOne runs one start through the same ladder as /api/plan: the
// requested engine first, then — for resilience-class faults — the
// fallback engine with the plan tagged degraded. Unknown start items
// short-circuit to a per-item 400 before touching any policy.
func (s *Server) batchOne(r *http.Request, inst *rlplanner.Instance, engineName string, req planRequest, start string) batchItem {
	if start != "" && !inst.HasItem(start) {
		return batchItem{
			Start:  start,
			Error:  fmt.Sprintf("unknown item %q in instance %s", start, inst.Name()),
			Status: http.StatusBadRequest,
		}
	}
	resp, err := s.planFrom(r.Context(), inst, engineName, req, start)
	if err == nil {
		return batchItem{Start: start, Plan: resp}
	}
	if s.fallback != "" && engineName != s.fallback && resilientFailure(err) {
		if fb, fbErr := s.planFrom(r.Context(), inst, s.fallback, req, start); fbErr == nil {
			s.metrics.Fallbacks.Add(1)
			fb.Degraded = true
			fb.DegradedReason = degradedReason(err)
			return batchItem{Start: start, Plan: fb}
		}
	}
	return batchItem{Start: start, Error: err.Error(), Status: planErrorStatus(err)}
}
