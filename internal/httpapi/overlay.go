// Per-user personalization over the policy store: a bounded LRU of
// copy-on-write Q overlays keyed by (user, policy), the serving half of
// the layered-reads architecture (DESIGN §13). The shared policy
// artifacts stay immutable — feedback writes land only in the caller's
// overlay, and a request without a user (or whose user has no overlay)
// serves the base policy bit-identically at the base cost.
package httpapi

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/maphash"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/rlplanner/rlplanner"
)

// DefaultOverlayBudgetBytes bounds the total estimated resident memory
// of all per-user overlays (64 MiB — roughly 10⁵ lightly-personalized
// users over an institution-scale catalog).
const DefaultOverlayBudgetBytes = 64 << 20

// overlayShardCount stripes the lookup map. Power of two; sixteen
// stripes is plenty for the core counts a single daemon sees.
const overlayShardCount = 16

var overlaySeed = maphash.MakeSeed()

// overlayStore is the bounded per-user overlay cache. Two levels of
// bounding compose: each overlay caps its own cells (qtable's LRU row
// eviction), and the store caps the fleet-wide byte total by evicting
// whole least-recently-active (user, policy) entries.
//
// The structure is split along the read/write boundary of the serving
// path. The *lookup* map — hit by every personalized plan request — is
// striped into shards, each behind an RWMutex held shared on reads; a
// plan-path hit records recency with one atomic store on the entry's
// access bit and takes no global lock at all. The *accounting* state
// (write-recency list, byte total, distinct-user counts) lives behind
// one mutex that only the write path touches: feedback posts, byte
// reaccounting, eviction. Eviction order is CLOCK-over-LRU: the list
// tracks feedback recency exactly, and a victim whose access bit shows
// plan-path reads since the last sweep is granted a second chance
// instead of being evicted — so plan-active users survive without the
// plan path ever queueing on the accounting lock.
type overlayStore struct {
	shards   [overlayShardCount]overlayShard
	maxBytes int
	cells    int // per-overlay cell cap (0 = qtable default)

	// mu guards the write-side accounting below: the recency list, the
	// byte total, the per-user entry counts and the eviction counter.
	// Never taken by the plan-path lookup.
	mu      sync.Mutex
	order   *list.List // front = most recent feedback write
	bytes   int
	users   map[string]int // user id → live entry count
	evicted uint64
}

// overlayShard is one stripe of the lookup map.
type overlayShard struct {
	mu      sync.RWMutex
	entries map[string]*overlayEntry
}

// overlayEntry is one user's overlay for one policy. Its mutex
// serializes that user's requests (overlays are single-writer); neither
// the store's accounting lock nor a shard lock is ever held across a
// recommendation walk.
type overlayEntry struct {
	key, user string
	mu        sync.Mutex
	ov        *rlplanner.Overlay
	// touched is the CLOCK access bit: set (one atomic store) by every
	// plan-path lookup, spent by the eviction sweep for a second chance.
	touched atomic.Bool
	// bytes, elem and gone are guarded by the store's accounting mutex.
	// gone marks an entry evicted or dropped; sticky once set.
	bytes int
	elem  *list.Element
	gone  bool
}

func newOverlayStore(maxBytes, cells int) *overlayStore {
	if maxBytes <= 0 {
		maxBytes = DefaultOverlayBudgetBytes
	}
	st := &overlayStore{
		maxBytes: maxBytes,
		cells:    cells,
		order:    list.New(),
		users:    make(map[string]int),
	}
	for i := range st.shards {
		st.shards[i].entries = make(map[string]*overlayEntry)
	}
	return st
}

// overlayKey scopes a user's personalization to one policy artifact:
// feedback against the sarsa policy must not leak into the qlearning
// one, and retrained policies (different options key) start clean.
func overlayKey(user, policyKey string) string { return user + "\x00" + policyKey }

func (st *overlayStore) shard(key string) *overlayShard {
	return &st.shards[maphash.String(overlaySeed, key)&(overlayShardCount-1)]
}

// lookup returns the user's overlay entry for the policy, nil when none
// exists — the plan path, which must never create overlays (a user who
// has given no feedback serves the base, allocation-free). A hit costs
// one shard read-lock and one atomic store; concurrent plan requests
// for different users never serialize here.
func (st *overlayStore) lookup(user, policyKey string) *overlayEntry {
	key := overlayKey(user, policyKey)
	sh := st.shard(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	if e != nil {
		e.touched.Store(true)
	}
	return e
}

// getOrCreate returns the user's overlay entry, building one with make
// on first feedback. This is the write path: it may take the accounting
// lock (to refresh feedback recency) and a shard's exclusive lock (to
// install a new entry), but never both at once — the lock order is
// strictly "one at a time", with identity checks and the sticky gone
// flag resolving the races in between.
func (st *overlayStore) getOrCreate(user, policyKey string, make func(cells int) (*rlplanner.Overlay, error)) (*overlayEntry, error) {
	key := overlayKey(user, policyKey)
	sh := st.shard(key)
	for {
		sh.mu.RLock()
		e := sh.entries[key]
		sh.mu.RUnlock()
		if e != nil {
			st.mu.Lock()
			if !e.gone && e.elem != nil {
				st.order.MoveToFront(e.elem)
				st.mu.Unlock()
				return e, nil
			}
			mid := !e.gone // mid-construction: creator has not linked elem yet
			st.mu.Unlock()
			if mid {
				continue // about to become live; retry the fast path
			}
			// e was evicted or dropped: fall through and replace it.
		}
		ov, err := make(st.cells)
		if err != nil {
			return nil, err
		}
		ne := &overlayEntry{key: key, user: user, ov: ov}
		sh.mu.Lock()
		if cur := sh.entries[key]; cur != e {
			// Another creator won the install race; loop to adopt theirs.
			sh.mu.Unlock()
			continue
		}
		sh.entries[key] = ne
		sh.mu.Unlock()
		st.mu.Lock()
		ne.elem = st.order.PushFront(ne)
		st.users[user]++
		st.mu.Unlock()
		return ne, nil
	}
}

// reaccount refreshes the entry's byte charge after a mutation and
// evicts entries while the store exceeds its byte budget. Victims come
// off the cold end of the feedback-recency list, but an entry whose
// CLOCK bit shows plan reads since the last sweep is moved back to the
// warm end (its bit spent) instead of evicted. The just-touched entry
// is never evicted. Callers must NOT hold e.mu.
func (st *overlayStore) reaccount(e *overlayEntry, newBytes int) {
	var victims []*overlayEntry
	st.mu.Lock()
	if !e.gone {
		st.bytes += newBytes - e.bytes
		e.bytes = newBytes
	}
	// The sweep budget bounds second chances: plan traffic setting bits
	// concurrently must not be able to livelock the evictor.
	budget := 2 * st.order.Len()
	for st.bytes > st.maxBytes && st.order.Len() > 1 {
		el := st.order.Back()
		victim := el.Value.(*overlayEntry)
		if victim == e {
			break
		}
		if budget > 0 && victim.touched.CompareAndSwap(true, false) {
			st.order.MoveToFront(el)
			budget--
			continue
		}
		victim.gone = true
		st.order.Remove(el)
		st.bytes -= victim.bytes
		st.evicted++
		if st.users[victim.user]--; st.users[victim.user] <= 0 {
			delete(st.users, victim.user)
		}
		victims = append(victims, victim)
	}
	st.mu.Unlock()
	// Unlink victims from their shards outside the accounting lock (the
	// lock order forbids holding both). The identity check keeps a
	// freshly re-created entry under the same key safe.
	for _, v := range victims {
		sh := st.shard(v.key)
		sh.mu.Lock()
		if sh.entries[v.key] == v {
			delete(sh.entries, v.key)
		}
		sh.mu.Unlock()
	}
}

// drop removes a specific entry (used when its policy was retrained and
// the overlay went stale). A no-op if the entry was already evicted or
// replaced.
func (st *overlayStore) drop(e *overlayEntry) {
	st.mu.Lock()
	if e.gone || e.elem == nil {
		st.mu.Unlock()
		return
	}
	e.gone = true
	st.order.Remove(e.elem)
	st.bytes -= e.bytes
	if st.users[e.user]--; st.users[e.user] <= 0 {
		delete(st.users, e.user)
	}
	st.mu.Unlock()
	sh := st.shard(e.key)
	sh.mu.Lock()
	if sh.entries[e.key] == e {
		delete(sh.entries, e.key)
	}
	sh.mu.Unlock()
}

// stats reports (distinct users, entries, estimated bytes, evictions).
func (st *overlayStore) stats() (users, entries, bytes int, evictions uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.users), st.order.Len(), st.bytes, st.evicted
}

// feedbackRequest applies one feedback signal from a user to a served
// plan. The policy fields mirror planRequest so the signal lands on
// exactly the artifact that served the plan; Items is the plan the user
// is rating. Exactly one of Useful or Rating must be set.
type feedbackRequest struct {
	planRequest
	Items []string `json:"items"`
	// Useful is binary useful/not-useful feedback.
	Useful *bool `json:"useful,omitempty"`
	// Rating is a categorical 1–5 rating (3 = neutral = no-op).
	Rating *float64 `json:"rating,omitempty"`
	// Rate overrides the nudge aggressiveness in (0, 1] (0 = default).
	Rate float64 `json:"rate,omitempty"`
}

// feedbackResponse reports what the signal did to the user's overlay.
type feedbackResponse struct {
	User string `json:"user"`
	// Applied is the number of plan transitions adjusted (0 for a
	// neutral signal).
	Applied int `json:"applied"`
	// OverlayCells / OverlayBytes describe the user's overlay after the
	// update; Evictions counts its row evictions so far.
	OverlayCells int    `json:"overlay_cells"`
	OverlayBytes int    `json:"overlay_bytes"`
	Evictions    uint64 `json:"overlay_evictions"`
}

// feedback is POST /api/feedback: fold a user's plan feedback into
// their copy-on-write overlay over the serving policy. The policy is
// resolved through the same cached/singleflight path as /api/plan, so
// feedback for a cold policy trains it once and feedback for a warm one
// touches no training machinery at all.
func (s *Server) feedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.User == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("feedback requires a user id"))
		return
	}
	if (req.Useful == nil) == (req.Rating == nil) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("set exactly one of useful or rating"))
		return
	}
	if len(req.Items) < 2 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("feedback needs a plan of at least 2 items"))
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	engineName, err := req.engineName()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pol, err := s.policy(r.Context(), inst, engineName, req.planRequest)
	if err != nil {
		s.writePlanError(w, err)
		return
	}
	build := func(cells int) (*rlplanner.Overlay, error) { return pol.NewOverlay(cells) }
	entry, err := s.overlays.getOrCreate(req.User, req.policyKey(engineName), build)
	if err == nil && !entry.ov.For(pol) {
		// The policy under this key was retrained since the overlay was
		// created; restart the user's personalization on the new artifact.
		s.overlays.drop(entry)
		entry, err = s.overlays.getOrCreate(req.User, req.policyKey(engineName), build)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	plan := &rlplanner.Plan{}
	for _, id := range req.Items {
		plan.Steps = append(plan.Steps, rlplanner.PlanStep{ID: id})
	}
	entry.mu.Lock()
	var applied int
	if req.Useful != nil {
		applied, err = entry.ov.ObserveBinary(plan, *req.Useful, req.Rate)
	} else {
		applied, err = entry.ov.ObserveRating(plan, *req.Rating, req.Rate)
	}
	resp := feedbackResponse{
		User:         req.User,
		Applied:      applied,
		OverlayCells: entry.ov.Cells(),
		OverlayBytes: entry.ov.MemoryBytes(),
		Evictions:    entry.ov.Evictions(),
	}
	entry.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.feedbackSignals.Add(1)
	s.overlays.reaccount(entry, resp.OverlayBytes)
	writeJSON(w, http.StatusOK, resp)
}
