// Per-user personalization over the policy store: a bounded LRU of
// copy-on-write Q overlays keyed by (user, policy), the serving half of
// the layered-reads architecture (DESIGN §13). The shared policy
// artifacts stay immutable — feedback writes land only in the caller's
// overlay, and a request without a user (or whose user has no overlay)
// serves the base policy bit-identically at the base cost.
package httpapi

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"github.com/rlplanner/rlplanner"
)

// DefaultOverlayBudgetBytes bounds the total estimated resident memory
// of all per-user overlays (64 MiB — roughly 10⁵ lightly-personalized
// users over an institution-scale catalog).
const DefaultOverlayBudgetBytes = 64 << 20

// overlayStore is the bounded per-user overlay cache. Two levels of
// bounding compose: each overlay caps its own cells (qtable's LRU row
// eviction), and the store caps the fleet-wide byte total by evicting
// whole least-recently-used (user, policy) entries.
type overlayStore struct {
	mu       sync.Mutex
	maxBytes int
	cells    int // per-overlay cell cap (0 = qtable default)
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	bytes    int
	users    map[string]int // user id → live entry count
	evicted  uint64
}

// overlayEntry is one user's overlay for one policy. Its mutex
// serializes that user's requests (overlays are single-writer); the
// store lock is never held across a recommendation walk.
type overlayEntry struct {
	key, user string
	mu        sync.Mutex
	ov        *rlplanner.Overlay
	bytes     int // last size accounted into the store total
}

func newOverlayStore(maxBytes, cells int) *overlayStore {
	if maxBytes <= 0 {
		maxBytes = DefaultOverlayBudgetBytes
	}
	return &overlayStore{
		maxBytes: maxBytes,
		cells:    cells,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		users:    make(map[string]int),
	}
}

// overlayKey scopes a user's personalization to one policy artifact:
// feedback against the sarsa policy must not leak into the qlearning
// one, and retrained policies (different options key) start clean.
func overlayKey(user, policyKey string) string { return user + "\x00" + policyKey }

// lookup returns the user's overlay entry for the policy, nil when none
// exists — the plan path, which must never create overlays (a user who
// has given no feedback serves the base, allocation-free).
func (st *overlayStore) lookup(user, policyKey string) *overlayEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[overlayKey(user, policyKey)]
	if !ok {
		return nil
	}
	st.order.MoveToFront(el)
	return el.Value.(*overlayEntry)
}

// getOrCreate returns the user's overlay entry, building one with make
// on first feedback. make runs under the store lock — it only wraps the
// already-trained policy's base reader, so it is cheap and cannot
// recurse into the store.
func (st *overlayStore) getOrCreate(user, policyKey string, make func(cells int) (*rlplanner.Overlay, error)) (*overlayEntry, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	key := overlayKey(user, policyKey)
	if el, ok := st.entries[key]; ok {
		st.order.MoveToFront(el)
		return el.Value.(*overlayEntry), nil
	}
	ov, err := make(st.cells)
	if err != nil {
		return nil, err
	}
	e := &overlayEntry{key: key, user: user, ov: ov}
	st.entries[key] = st.order.PushFront(e)
	st.users[user]++
	return e, nil
}

// reaccount refreshes the entry's byte charge after a mutation and
// evicts least-recently-used entries while the store exceeds its byte
// budget. The just-touched entry is never evicted. Callers must NOT
// hold e.mu — size is read from the entry's last record, refreshed by
// the caller via e.bytes while it held the entry lock.
func (st *overlayStore) reaccount(e *overlayEntry, newBytes int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, live := st.entries[e.key]; live {
		st.bytes += newBytes - e.bytes
		e.bytes = newBytes
	}
	for st.bytes > st.maxBytes && st.order.Len() > 1 {
		el := st.order.Back()
		victim := el.Value.(*overlayEntry)
		if victim == e {
			break
		}
		st.order.Remove(el)
		delete(st.entries, victim.key)
		st.bytes -= victim.bytes
		st.evicted++
		if st.users[victim.user]--; st.users[victim.user] <= 0 {
			delete(st.users, victim.user)
		}
	}
}

// drop removes a specific entry (used when its policy was retrained and
// the overlay went stale). A no-op if the entry was already evicted or
// replaced.
func (st *overlayStore) drop(e *overlayEntry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[e.key]
	if !ok || el.Value.(*overlayEntry) != e {
		return
	}
	st.order.Remove(el)
	delete(st.entries, e.key)
	st.bytes -= e.bytes
	if st.users[e.user]--; st.users[e.user] <= 0 {
		delete(st.users, e.user)
	}
}

// stats reports (distinct users, entries, estimated bytes, evictions).
func (st *overlayStore) stats() (users, entries, bytes int, evictions uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.users), st.order.Len(), st.bytes, st.evicted
}

// feedbackRequest applies one feedback signal from a user to a served
// plan. The policy fields mirror planRequest so the signal lands on
// exactly the artifact that served the plan; Items is the plan the user
// is rating. Exactly one of Useful or Rating must be set.
type feedbackRequest struct {
	planRequest
	Items []string `json:"items"`
	// Useful is binary useful/not-useful feedback.
	Useful *bool `json:"useful,omitempty"`
	// Rating is a categorical 1–5 rating (3 = neutral = no-op).
	Rating *float64 `json:"rating,omitempty"`
	// Rate overrides the nudge aggressiveness in (0, 1] (0 = default).
	Rate float64 `json:"rate,omitempty"`
}

// feedbackResponse reports what the signal did to the user's overlay.
type feedbackResponse struct {
	User string `json:"user"`
	// Applied is the number of plan transitions adjusted (0 for a
	// neutral signal).
	Applied int `json:"applied"`
	// OverlayCells / OverlayBytes describe the user's overlay after the
	// update; Evictions counts its row evictions so far.
	OverlayCells int    `json:"overlay_cells"`
	OverlayBytes int    `json:"overlay_bytes"`
	Evictions    uint64 `json:"overlay_evictions"`
}

// feedback is POST /api/feedback: fold a user's plan feedback into
// their copy-on-write overlay over the serving policy. The policy is
// resolved through the same cached/singleflight path as /api/plan, so
// feedback for a cold policy trains it once and feedback for a warm one
// touches no training machinery at all.
func (s *Server) feedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.User == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("feedback requires a user id"))
		return
	}
	if (req.Useful == nil) == (req.Rating == nil) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("set exactly one of useful or rating"))
		return
	}
	if len(req.Items) < 2 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("feedback needs a plan of at least 2 items"))
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	engineName, err := req.engineName()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pol, err := s.policy(r.Context(), inst, engineName, req.planRequest)
	if err != nil {
		s.writePlanError(w, err)
		return
	}
	build := func(cells int) (*rlplanner.Overlay, error) { return pol.NewOverlay(cells) }
	entry, err := s.overlays.getOrCreate(req.User, req.policyKey(engineName), build)
	if err == nil && !entry.ov.For(pol) {
		// The policy under this key was retrained since the overlay was
		// created; restart the user's personalization on the new artifact.
		s.overlays.drop(entry)
		entry, err = s.overlays.getOrCreate(req.User, req.policyKey(engineName), build)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	plan := &rlplanner.Plan{}
	for _, id := range req.Items {
		plan.Steps = append(plan.Steps, rlplanner.PlanStep{ID: id})
	}
	entry.mu.Lock()
	var applied int
	if req.Useful != nil {
		applied, err = entry.ov.ObserveBinary(plan, *req.Useful, req.Rate)
	} else {
		applied, err = entry.ov.ObserveRating(plan, *req.Rating, req.Rate)
	}
	resp := feedbackResponse{
		User:         req.User,
		Applied:      applied,
		OverlayCells: entry.ov.Cells(),
		OverlayBytes: entry.ov.MemoryBytes(),
		Evictions:    entry.ov.Evictions(),
	}
	entry.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.feedbackSignals.Add(1)
	s.overlays.reaccount(entry, resp.OverlayBytes)
	writeJSON(w, http.StatusOK, resp)
}
