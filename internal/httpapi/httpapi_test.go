package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/rlplanner/rlplanner"
)

// testServer spins up the API once per test.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

// doJSON posts a body and decodes the response into out.
func doJSON(t *testing.T, method, url string, body, out interface{}) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestListAndGetInstances(t *testing.T) {
	ts := testServer(t)
	var list []map[string]interface{}
	if code := doJSON(t, "GET", ts.URL+"/api/instances", nil, &list); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(list) != 6 {
		t.Fatalf("instances = %d", len(list))
	}

	var detail struct {
		Name  string           `json:"name"`
		Items []rlplanner.Item `json:"items"`
	}
	url := ts.URL + "/api/instances/Univ-1 M.S. DS-CT"
	if code := doJSON(t, "GET", url, nil, &detail); code != 200 {
		t.Fatalf("status %d", code)
	}
	if detail.Name != "Univ-1 M.S. DS-CT" || len(detail.Items) != 31 {
		t.Fatalf("detail = %s / %d items", detail.Name, len(detail.Items))
	}

	if code := doJSON(t, "GET", ts.URL+"/api/instances/Hogwarts", nil, &struct{}{}); code != 404 {
		t.Fatalf("unknown instance status %d", code)
	}
}

func TestPlanEndpoint(t *testing.T) {
	ts := testServer(t)
	var plan rlplanner.Plan
	code := doJSON(t, "POST", ts.URL+"/api/plan", map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"episodes": 150,
		"seed":     1,
	}, &plan)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(plan.Steps) != 10 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
	if plan.TotalCredits != 30 {
		t.Fatalf("credits = %v", plan.TotalCredits)
	}
}

func TestPlanBaselines(t *testing.T) {
	ts := testServer(t)
	for _, baseline := range []string{"gold", "eda", "omega"} {
		var plan rlplanner.Plan
		code := doJSON(t, "POST", ts.URL+"/api/plan", map[string]interface{}{
			"instance": "Univ-1 M.S. DS-CT",
			"baseline": baseline,
			"seed":     1,
		}, &plan)
		if code != 200 {
			t.Fatalf("%s: status %d", baseline, code)
		}
		if len(plan.Steps) == 0 {
			t.Fatalf("%s: empty plan", baseline)
		}
	}
	code := doJSON(t, "POST", ts.URL+"/api/plan", map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"baseline": "oracle",
	}, &struct{}{})
	if code != 400 {
		t.Fatalf("bad baseline status %d", code)
	}
}

func TestPlanBadRequests(t *testing.T) {
	ts := testServer(t)
	if code := doJSON(t, "POST", ts.URL+"/api/plan",
		map[string]interface{}{"instance": "Nowhere"}, &struct{}{}); code != 404 {
		t.Fatalf("unknown instance status %d", code)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/api/plan", bytes.NewBufferString("{"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage body status %d", resp.StatusCode)
	}
}

func TestRateEndpoint(t *testing.T) {
	ts := testServer(t)
	var ratings rlplanner.Ratings
	code := doJSON(t, "POST", ts.URL+"/api/rate", map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"items":    []string{"CS 675", "CS 636", "MATH 661"},
		"raters":   25,
		"seed":     1,
	}, &ratings)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if ratings.Overall < 1 || ratings.Overall > 5 {
		t.Fatalf("overall = %v", ratings.Overall)
	}
	// Unknown item in the plan.
	code = doJSON(t, "POST", ts.URL+"/api/rate", map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"items":    []string{"GHOST 1"},
	}, &struct{}{})
	if code != 400 {
		t.Fatalf("unknown item status %d", code)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := testServer(t)

	var view struct {
		ID          string                 `json:"id"`
		Plan        []string               `json:"plan"`
		Done        bool                   `json:"done"`
		Suggestions []rlplanner.Suggestion `json:"suggestions"`
	}
	code := doJSON(t, "POST", ts.URL+"/api/sessions", map[string]interface{}{
		"instance":    "Univ-1 M.S. DS-CT",
		"episodes":    150,
		"seed":        2,
		"suggestions": 4,
	}, &view)
	if code != 201 {
		t.Fatalf("create status %d", code)
	}
	if view.ID == "" || len(view.Plan) != 1 || view.Done {
		t.Fatalf("fresh session view = %+v", view)
	}
	if len(view.Suggestions) == 0 || len(view.Suggestions) > 4 {
		t.Fatalf("suggestions = %d", len(view.Suggestions))
	}

	base := ts.URL + "/api/sessions/" + view.ID

	// Reject the first suggestion; it must vanish.
	vetoed := view.Suggestions[0].ID
	code = doJSON(t, "POST", base+"/reject", map[string]string{"item": vetoed}, &view)
	if code != 200 {
		t.Fatalf("reject status %d", code)
	}
	for _, s := range view.Suggestions {
		if s.ID == vetoed {
			t.Fatalf("vetoed %q still suggested", vetoed)
		}
	}

	// Accept the new top suggestion.
	pick := view.Suggestions[0].ID
	code = doJSON(t, "POST", base+"/accept", map[string]string{"item": pick}, &view)
	if code != 200 {
		t.Fatalf("accept status %d", code)
	}
	if len(view.Plan) != 2 {
		t.Fatalf("plan after accept = %v", view.Plan)
	}

	// GET reflects the same state.
	var again struct {
		Plan []string `json:"plan"`
	}
	if code := doJSON(t, "GET", base, nil, &again); code != 200 {
		t.Fatalf("get status %d", code)
	}
	if len(again.Plan) != 2 {
		t.Fatalf("get plan = %v", again.Plan)
	}

	// Complete; the result plan honors the rejection.
	var completed struct {
		Done   bool            `json:"done"`
		Result *rlplanner.Plan `json:"result"`
	}
	if code := doJSON(t, "POST", base+"/complete", nil, &completed); code != 200 {
		t.Fatalf("complete status %d", code)
	}
	if !completed.Done || completed.Result == nil {
		t.Fatalf("completed = %+v", completed)
	}
	if len(completed.Result.Steps) != 10 {
		t.Fatalf("result steps = %d", len(completed.Result.Steps))
	}
	for _, s := range completed.Result.Steps {
		if s.ID == vetoed {
			t.Fatalf("vetoed %q in final plan", vetoed)
		}
	}
	if !completed.Result.SatisfiesConstraints {
		t.Fatalf("final plan violates constraints: %v", completed.Result.Violations)
	}
}

func TestSessionErrors(t *testing.T) {
	ts := testServer(t)
	if code := doJSON(t, "GET", ts.URL+"/api/sessions/s999", nil, &struct{}{}); code != 404 {
		t.Fatalf("unknown session status %d", code)
	}

	var view struct {
		ID string `json:"id"`
	}
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"episodes": 100,
		"seed":     3,
	}, &view)
	base := ts.URL + "/api/sessions/" + view.ID

	// Accepting an unknown item conflicts.
	code := doJSON(t, "POST", base+"/accept", map[string]string{"item": "GHOST"}, &struct{}{})
	if code != 409 {
		t.Fatalf("bad accept status %d", code)
	}
}

func TestPlannerCacheReuse(t *testing.T) {
	// Two identical plan requests must reuse the learned policy and return
	// identical plans.
	ts := testServer(t)
	req := map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"episodes": 120,
		"seed":     4,
	}
	var a, b rlplanner.Plan
	doJSON(t, "POST", ts.URL+"/api/plan", req, &a)
	doJSON(t, "POST", ts.URL+"/api/plan", req, &b)
	if fmt.Sprint(a.IDs()) != fmt.Sprint(b.IDs()) {
		t.Fatalf("cached planner returned different plans:\n%v\n%v", a.IDs(), b.IDs())
	}
}

func TestCustomInstanceUpload(t *testing.T) {
	ts := testServer(t)
	spec := map[string]interface{}{
		"name":   "Workshop",
		"topics": []string{"go", "testing", "deploy"},
		"items": []map[string]interface{}{
			{"id": "intro", "type": "primary", "credits": 1, "topics": []string{"go"}},
			{"id": "tests", "credits": 1, "topics": []string{"testing"}},
			{"id": "ship", "type": "primary", "credits": 1, "prereq": "intro", "topics": []string{"deploy"}},
		},
		"credits": 3, "primary": 2, "secondary": 1, "gap": 1,
	}
	var created struct {
		Name     string `json:"name"`
		NumItems int    `json:"num_items"`
	}
	if code := doJSON(t, "POST", ts.URL+"/api/instances", spec, &created); code != 201 {
		t.Fatalf("create status %d", code)
	}
	if created.Name != "Workshop" || created.NumItems != 3 {
		t.Fatalf("created = %+v", created)
	}

	// Duplicate and built-in-shadowing uploads conflict.
	if code := doJSON(t, "POST", ts.URL+"/api/instances", spec, &struct{}{}); code != 409 {
		t.Fatalf("duplicate status %d", code)
	}
	shadow := map[string]interface{}{
		"name":   "Paris",
		"topics": []string{"x"},
		"items":  []map[string]interface{}{{"id": "a", "credits": 1, "topics": []string{"x"}}},
	}
	if code := doJSON(t, "POST", ts.URL+"/api/instances", shadow, &struct{}{}); code != 409 {
		t.Fatalf("shadow status %d", code)
	}

	// The custom instance is visible and plannable.
	var detail struct {
		NumItems int `json:"num_items"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/instances/Workshop", nil, &detail); code != 200 {
		t.Fatalf("get status %d", code)
	}
	var plan rlplanner.Plan
	code := doJSON(t, "POST", ts.URL+"/api/plan", map[string]interface{}{
		"instance": "Workshop",
		"episodes": 100,
		"seed":     1,
	}, &plan)
	if code != 200 {
		t.Fatalf("plan status %d", code)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("plan = %d steps", len(plan.Steps))
	}
	if !plan.SatisfiesConstraints {
		t.Fatalf("custom plan invalid: %v", plan.Violations)
	}
}

func TestCustomInstanceBadSpec(t *testing.T) {
	ts := testServer(t)
	if code := doJSON(t, "POST", ts.URL+"/api/instances",
		map[string]interface{}{"name": ""}, &struct{}{}); code != 400 {
		t.Fatalf("bad spec status %d", code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	var out struct {
		Explanation []string `json:"explanation"`
	}
	code := doJSON(t, "POST", ts.URL+"/api/explain", map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"items":    []string{"CS 675", "CS 636", "CS 677"},
	}, &out)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Explanation) != 3 {
		t.Fatalf("lines = %d", len(out.Explanation))
	}
	// CS 677 two slots after CS 675 violates the gap; the explanation says so.
	found := false
	for _, l := range out.Explanation {
		if strings.Contains(l, "VIOLATED") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no violation surfaced:\n%v", out.Explanation)
	}
	if code := doJSON(t, "POST", ts.URL+"/api/explain", map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT",
		"items":    []string{"GHOST"},
	}, &struct{}{}); code != 400 {
		t.Fatalf("unknown item status %d", code)
	}
}
