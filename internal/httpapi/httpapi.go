// Package httpapi serves RL-Planner over HTTP/JSON: instance discovery,
// one-shot planning, baselines, the rater panel and interactive sessions.
// It exists for the interactive-mode deployment scenario of §IV-F (MOOC
// and travel platforms advising thousands of users) and is built entirely
// on the public rlplanner API and net/http.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/rlplanner/rlplanner"
)

// Server holds the HTTP state: lazily learned planners per (instance,
// options) and live interactive sessions.
type Server struct {
	mu       sync.Mutex
	planners map[string]*rlplanner.Planner
	sessions map[string]*sessionState
	custom   map[string]*rlplanner.Instance
	nextID   int
}

type sessionState struct {
	instance string
	session  *rlplanner.Session
}

// New returns an empty server.
func New() *Server {
	return &Server{
		planners: make(map[string]*rlplanner.Planner),
		sessions: make(map[string]*sessionState),
		custom:   make(map[string]*rlplanner.Instance),
	}
}

// instance resolves a name against custom uploads first, then built-ins.
func (s *Server) instance(name string) (*rlplanner.Instance, error) {
	s.mu.Lock()
	in, ok := s.custom[name]
	s.mu.Unlock()
	if ok {
		return in, nil
	}
	return rlplanner.InstanceByName(name)
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/instances", s.listInstances)
	mux.HandleFunc("POST /api/instances", s.createInstance)
	mux.HandleFunc("GET /api/instances/{name}", s.getInstance)
	mux.HandleFunc("POST /api/plan", s.plan)
	mux.HandleFunc("POST /api/rate", s.rate)
	mux.HandleFunc("POST /api/explain", s.explain)
	mux.HandleFunc("POST /api/sessions", s.createSession)
	mux.HandleFunc("GET /api/sessions/{id}", s.getSession)
	mux.HandleFunc("POST /api/sessions/{id}/accept", s.sessionAccept)
	mux.HandleFunc("POST /api/sessions/{id}/reject", s.sessionReject)
	mux.HandleFunc("POST /api/sessions/{id}/complete", s.sessionComplete)
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError reports an error as {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// instanceInfo is the discovery form of an instance.
type instanceInfo struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	NumItems     int     `json:"num_items"`
	NumTopics    int     `json:"num_topics"`
	DefaultStart string  `json:"default_start"`
	GoldScore    float64 `json:"gold_score"`
}

func info(in *rlplanner.Instance) instanceInfo {
	kind := "course"
	if in.IsTrip() {
		kind = "trip"
	}
	return instanceInfo{
		Name:         in.Name(),
		Kind:         kind,
		NumItems:     in.NumItems(),
		NumTopics:    len(in.Topics()),
		DefaultStart: in.DefaultStart(),
		GoldScore:    in.GoldScore(),
	}
}

func (s *Server) listInstances(w http.ResponseWriter, _ *http.Request) {
	var out []instanceInfo
	for _, in := range rlplanner.Instances() {
		out = append(out, info(in))
	}
	s.mu.Lock()
	for _, in := range s.custom {
		out = append(out, info(in))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// createInstance registers a custom instance from a JSON spec (the
// rlplanner.InstanceSpec / cmd/datagen schema). Registered instances are
// addressable by name in every other endpoint of this server.
func (s *Server) createInstance(w http.ResponseWriter, r *http.Request) {
	in, err := rlplanner.LoadInstance(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := rlplanner.InstanceByName(in.Name()); err == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("instance %q shadows a built-in", in.Name()))
		return
	}
	s.mu.Lock()
	_, dup := s.custom[in.Name()]
	if !dup {
		s.custom[in.Name()] = in
	}
	s.mu.Unlock()
	if dup {
		writeError(w, http.StatusConflict, fmt.Errorf("instance %q already exists", in.Name()))
		return
	}
	writeJSON(w, http.StatusCreated, info(in))
}

func (s *Server) getInstance(w http.ResponseWriter, r *http.Request) {
	in, err := s.instance(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		instanceInfo
		Items []rlplanner.Item `json:"items"`
	}{info(in), in.Items()})
}

// planRequest selects an instance, options and optionally a baseline.
type planRequest struct {
	Instance string  `json:"instance"`
	Episodes int     `json:"episodes,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Start    string  `json:"start,omitempty"`
	MinSim   bool    `json:"min_sim,omitempty"`
	Time     float64 `json:"time_limit_hours,omitempty"`
	Distance float64 `json:"max_distance_km,omitempty"`
	Baseline string  `json:"baseline,omitempty"` // "", "eda", "omega", "gold"
}

func (r planRequest) options() rlplanner.Options {
	return rlplanner.Options{
		Episodes:          r.Episodes,
		Seed:              r.Seed,
		Start:             r.Start,
		MinimumSimilarity: r.MinSim,
		TimeLimitHours:    r.Time,
		MaxDistanceKm:     r.Distance,
	}
}

// plannerKey caches learned planners per configuration.
func (r planRequest) plannerKey() string {
	return fmt.Sprintf("%s|%d|%d|%s|%v|%g|%g",
		r.Instance, r.Episodes, r.Seed, r.Start, r.MinSim, r.Time, r.Distance)
}

// planner returns a learned planner for the request, reusing the cache.
func (s *Server) planner(req planRequest) (*rlplanner.Planner, error) {
	// Resolve before locking: instance lookup takes the same mutex.
	inst, err := s.instance(req.Instance)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.planners[req.plannerKey()]; ok {
		return p, nil
	}
	p, err := rlplanner.NewPlanner(inst, req.options())
	if err != nil {
		return nil, err
	}
	if err := p.Learn(); err != nil {
		return nil, err
	}
	s.planners[req.plannerKey()] = p
	return p, nil
}

func (s *Server) plan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}

	var plan *rlplanner.Plan
	switch req.Baseline {
	case "":
		p, err := s.planner(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		plan, err = p.Plan()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	case "eda":
		plan, err = rlplanner.EDABaseline(inst, req.options())
	case "omega":
		plan, err = rlplanner.OmegaBaseline(inst, req.options())
	case "gold":
		plan, err = rlplanner.GoldStandard(inst)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown baseline %q (want eda, omega or gold)", req.Baseline))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// rateRequest rates an explicit plan on an instance.
type rateRequest struct {
	Instance string   `json:"instance"`
	Items    []string `json:"items"`
	Raters   int      `json:"raters,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
}

func (s *Server) rate(w http.ResponseWriter, r *http.Request) {
	var req rateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	plan := &rlplanner.Plan{}
	for _, id := range req.Items {
		plan.Steps = append(plan.Steps, rlplanner.PlanStep{ID: id})
	}
	ratings, err := rlplanner.RatePlan(inst, plan, req.Raters, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ratings)
}

// sessionRequest opens an interactive session.
type sessionRequest struct {
	planRequest
	Suggestions int `json:"suggestions,omitempty"`
}

// sessionView is the JSON state of a session.
type sessionView struct {
	ID          string                 `json:"id"`
	Instance    string                 `json:"instance"`
	Plan        []string               `json:"plan"`
	Done        bool                   `json:"done"`
	Suggestions []rlplanner.Suggestion `json:"suggestions"`
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.planner(req.planRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err := p.StartSession(req.Suggestions)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.sessions[id] = &sessionState{instance: req.Instance, session: sess}
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, s.view(id))
}

// lookup finds a session by path id.
func (s *Server) lookup(r *http.Request) (string, *sessionState, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[id]
	if !ok {
		return "", nil, fmt.Errorf("unknown session %q", id)
	}
	return id, st, nil
}

// view renders the session's current state (caller need not hold the lock;
// session methods are invoked by one request at a time in tests and the
// CLI deployment — a production deployment would serialize per session).
func (s *Server) view(id string) sessionView {
	s.mu.Lock()
	st := s.sessions[id]
	s.mu.Unlock()
	return sessionView{
		ID:          id,
		Instance:    st.instance,
		Plan:        st.session.PlanIDs(),
		Done:        st.session.Done(),
		Suggestions: st.session.Suggestions(),
	}
}

func (s *Server) getSession(w http.ResponseWriter, r *http.Request) {
	id, _, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.view(id))
}

// itemRequest names one item for accept/reject.
type itemRequest struct {
	Item string `json:"item"`
}

func (s *Server) sessionAccept(w http.ResponseWriter, r *http.Request) {
	s.sessionAction(w, r, func(st *sessionState, item string) error {
		return st.session.Accept(item)
	})
}

func (s *Server) sessionReject(w http.ResponseWriter, r *http.Request) {
	s.sessionAction(w, r, func(st *sessionState, item string) error {
		return st.session.Reject(item)
	})
}

func (s *Server) sessionAction(w http.ResponseWriter, r *http.Request,
	act func(*sessionState, string) error) {

	id, st, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req itemRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := act(st, req.Item); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, s.view(id))
}

func (s *Server) sessionComplete(w http.ResponseWriter, r *http.Request) {
	id, st, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	plan := st.session.AutoComplete()
	writeJSON(w, http.StatusOK, struct {
		sessionView
		Result *rlplanner.Plan `json:"result"`
	}{s.view(id), plan})
}

// explainRequest asks for a step-by-step justification of a plan.
type explainRequest struct {
	Instance string   `json:"instance"`
	Items    []string `json:"items"`
}

func (s *Server) explain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	plan := &rlplanner.Plan{}
	for _, id := range req.Items {
		plan.Steps = append(plan.Steps, rlplanner.PlanStep{ID: id})
	}
	lines, err := rlplanner.ExplainPlan(inst, plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"explanation": lines})
}
