// Package httpapi serves RL-Planner over HTTP/JSON: instance discovery,
// one-shot planning with any registered engine, policy artifact
// export/import, the rater panel and interactive sessions. It exists for
// the interactive-mode deployment scenario of §IV-F (MOOC and travel
// platforms advising thousands of users).
//
// The serving path separates training from serving. Policies are
// immutable artifacts kept in a bounded LRU store with per-key
// singleflight training: concurrent requests for the same cold
// (instance, engine, options) key share one training run, different keys
// train in parallel, and every read path (instance listing, cached-policy
// planning, sessions) stays responsive while training runs — no global
// lock is ever held across a learning phase.
package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rlplanner/rlplanner"
	"github.com/rlplanner/rlplanner/internal/engine"
	"github.com/rlplanner/rlplanner/internal/repo"
	"github.com/rlplanner/rlplanner/internal/resilience"
)

// Server holds the HTTP state: the policy store and live interactive
// sessions. The mutex guards the session map and custom-instance
// *writes* — never a training run, and never the plan path's reads:
// the custom-instance map is published as an immutable copy-on-write
// snapshot behind an atomic pointer, so resolving an instance on every
// plan request is lock-free.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*sessionState
	// custom is the immutable snapshot of uploaded instances. Readers
	// Load it and index without any lock; createInstance copies the map
	// under mu and atomically publishes the successor. Uploads are rare,
	// plan-path reads are millions — classic copy-on-write territory.
	custom atomic.Pointer[map[string]*rlplanner.Instance]
	nextID int

	policies *engine.Store[*rlplanner.Policy]

	// policyDir roots the durable policy repository (WithPolicyDir, ""
	// disables it); repo and tier are live once New opened it. The tier
	// sits behind the policy store: memory LRU → on-disk repo → train,
	// with write-through on train and a cross-process training claim.
	policyDir string
	repo      *repo.Repo
	tier      *policyTier

	// trainBudget bounds each cold-start training run (0 = unbounded).
	// Engines that can checkpoint (sarsa, qlearning) return a partial
	// policy at the deadline; the rest fail into the degradation ladder.
	trainBudget time.Duration
	// training admission-controls concurrent cold-start runs; nil means
	// unlimited. Cached serving is never gated.
	training *resilience.Semaphore
	// breaker holds per-policy-key retry backoff after training faults.
	breaker *resilience.Breaker
	// fallback names the engine that serves degraded plans when the
	// requested engine faults; "" disables the ladder's fallback rung.
	fallback string
	// batchWorkers bounds the concurrent recommendation walks of one
	// /api/plan/batch request (DefaultBatchWorkers when <= 0).
	batchWorkers int
	// trainWorkers is the worker count every cold-start training run uses
	// (0 = the sequential schedule). The parallel protocol is
	// bit-identical for any count, so this is a deployment throughput
	// knob, not part of the policy cache key.
	trainWorkers int
	// autoDerive enables warm-starting cold requests for the TD engines
	// from the nearest cached policy of a different catalog (fingerprint
	// near-miss) instead of training from zeros.
	autoDerive bool
	// distMatrixMax and denseQMax are the data-plane size guards
	// (-dist-matrix-max / -dense-q-max): the catalog sizes up to which an
	// exact distance matrix and a dense Q table are precomputed. Zero
	// keeps the library defaults (1024 and 4096). Deployment memory
	// knobs, applied to every training run, not part of any cache key.
	distMatrixMax int
	denseQMax     int
	metrics    resilience.Metrics

	// overlays holds the per-(user, policy) personalization overlays —
	// the serving half of the layered-read design. overlayBudget and
	// overlayCells configure it before New builds the store.
	overlays      *overlayStore
	overlayBudget int
	overlayCells  int
	// feedbackSignals counts successfully applied POST /api/feedback
	// signals for the metrics endpoint.
	feedbackSignals atomic.Uint64

	// onTrain, when set, observes every actual training run (not cache
	// hits or singleflight followers). Tests use it to count and to
	// stall training while probing other endpoints.
	onTrain func(key string)
}

type sessionState struct {
	instance string
	session  *rlplanner.Session
}

// Option configures a Server.
type Option func(*Server)

// WithPolicyCacheSize bounds the policy LRU store (engine.DefaultStoreSize
// when never set or n <= 0).
func WithPolicyCacheSize(n int) Option {
	return func(s *Server) { s.policies = engine.NewStore[*rlplanner.Policy](n) }
}

// WithTrainBudget bounds the wall-clock time of every cold-start training
// run (0 or negative disables the bound). The budget is attached to the
// detached training context, so it holds even after the originating
// request disconnects.
func WithTrainBudget(d time.Duration) Option {
	return func(s *Server) {
		if d < 0 {
			d = 0
		}
		s.trainBudget = d
	}
}

// WithMaxTraining caps concurrent cold-start training runs; requests
// beyond the cap are shed with 503 + Retry-After instead of queued
// (n <= 0 = unlimited). Cached policies keep serving at any load.
func WithMaxTraining(n int) Option {
	return func(s *Server) { s.training = resilience.NewSemaphore(n) }
}

// WithRetryBackoff overrides the exponential backoff schedule applied to
// a policy key after its training panics or times out (zero durations
// select the resilience defaults). Tests use short windows.
func WithRetryBackoff(base, max time.Duration) Option {
	return func(s *Server) { s.breaker = resilience.NewBreaker(base, max) }
}

// WithFallbackEngine sets the engine that serves degraded plans when the
// requested engine faults ("" disables the fallback rung entirely). The
// default is "gold": the feasible-baseline synthesizer, the cheapest
// engine that still honors every hard constraint.
func WithFallbackEngine(name string) Option {
	return func(s *Server) { s.fallback = name }
}

// WithTrainWorkers sets the worker count for every cold-start training
// run (n <= 0 keeps the sequential schedule). Because the parallel
// protocol is bit-identical for any worker count, changing this never
// changes the policies a deployment serves — only how fast cold starts
// finish.
func WithTrainWorkers(n int) Option {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.trainWorkers = n
	}
}

// WithOverlayBudget bounds the total estimated resident bytes of all
// per-user personalization overlays (DefaultOverlayBudgetBytes when
// never set or n <= 0). Least-recently-used users are evicted — and
// revert to base-policy serving — when the fleet exceeds the budget.
func WithOverlayBudget(n int) Option {
	return func(s *Server) { s.overlayBudget = n }
}

// WithOverlayCells caps the shadowed action values each individual
// user's overlay may hold (qtable.DefaultOverlayCells when never set or
// n <= 0); past the cap the overlay evicts its own least-recently-used
// rows.
func WithOverlayCells(n int) Option {
	return func(s *Server) { s.overlayCells = n }
}

// WithDistMatrixMax bounds the catalog size that precomputes an exact
// n×n distance matrix (n <= 0 keeps geo.DefaultDistMatrixMaxItems,
// 1024). Larger trip catalogs serve exact per-call Haversine up to 4096
// items and a quantized neighbor store beyond; out-of-band lookups are
// counted by the dist_fallback_total metric.
func WithDistMatrixMax(n int) Option {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.distMatrixMax = n
	}
}

// WithDenseQMax bounds the catalog size that trains into a dense n×n Q
// table (n <= 0 keeps qtable.DefaultDenseMaxItems, 4096). Larger
// catalogs learn into a sparse table whose memory follows the visited
// state-action set instead of the catalog squared.
func WithDenseQMax(n int) Option {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.denseQMax = n
	}
}

// WithAutoDerive toggles warm-start derivation on fingerprint near-miss
// (default on): when a cold request targets a catalog close to one an
// existing cached TD policy was trained on, training seeds from that
// policy with a distance-scaled episode budget instead of starting from
// zeros. Disable it to force every cold start to train from scratch.
func WithAutoDerive(enabled bool) Option {
	return func(s *Server) { s.autoDerive = enabled }
}

// New returns an empty server.
func New(opts ...Option) *Server {
	s := &Server{
		sessions:   make(map[string]*sessionState),
		policies:   engine.NewStore[*rlplanner.Policy](0),
		breaker:    resilience.NewBreaker(0, 0),
		fallback:   "gold",
		autoDerive: true,
	}
	s.custom.Store(&map[string]*rlplanner.Instance{})
	for _, o := range opts {
		o(s)
	}
	s.overlays = newOverlayStore(s.overlayBudget, s.overlayCells)
	s.openRepo()
	return s
}

// instance resolves a name against custom uploads first, then
// built-ins. Lock-free: the custom map is an immutable snapshot, so the
// resolve every plan/feedback/batch request performs costs one atomic
// load and a map read — no mutex on the serving read path.
func (s *Server) instance(name string) (*rlplanner.Instance, error) {
	if in, ok := (*s.custom.Load())[name]; ok {
		return in, nil
	}
	return rlplanner.InstanceByName(name)
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/instances", s.listInstances)
	mux.HandleFunc("POST /api/instances", s.createInstance)
	mux.HandleFunc("GET /api/instances/{name}", s.getInstance)
	mux.HandleFunc("GET /api/engines", s.listEngines)
	mux.HandleFunc("GET /api/metrics", s.getMetrics)
	mux.HandleFunc("GET /api/policies", s.listPolicies)
	mux.HandleFunc("POST /api/policies/export", s.exportPolicy)
	mux.HandleFunc("POST /api/policies/import", s.importPolicy)
	mux.HandleFunc("POST /api/policies/{id}/derive", s.derivePolicy)
	mux.HandleFunc("POST /api/plan", s.plan)
	mux.HandleFunc("POST /api/plan/batch", s.planBatch)
	mux.HandleFunc("POST /api/feedback", s.feedback)
	mux.HandleFunc("POST /api/rate", s.rate)
	mux.HandleFunc("POST /api/explain", s.explain)
	mux.HandleFunc("POST /api/sessions", s.createSession)
	mux.HandleFunc("GET /api/sessions/{id}", s.getSession)
	mux.HandleFunc("POST /api/sessions/{id}/accept", s.sessionAccept)
	mux.HandleFunc("POST /api/sessions/{id}/reject", s.sessionReject)
	mux.HandleFunc("POST /api/sessions/{id}/complete", s.sessionComplete)
	return mux
}

// encodeBufs pools the response-encoding buffers: at tens of thousands
// of plans per second, a fresh marshal buffer per response is a
// measurable slice of the request's allocations and GC pressure.
// Buffers that grew past encodeBufMax (a batch response, an instance
// dump) are dropped instead of pooled so one large response cannot pin
// megabytes for the rest of the process.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const encodeBufMax = 64 << 10

// writeJSON writes v with the given status. The value is encoded before
// any byte reaches the wire, so an encoding failure can still produce a
// clean 500 instead of a torn response; write errors (client gone) are
// logged, not dropped.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	if err := enc.Encode(v); err != nil { // Encode appends the trailing '\n'
		encodeBufs.Put(buf)
		log.Printf("httpapi: encode response: %v", err)
		http.Error(w, `{"error":"internal: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("httpapi: write response: %v", err)
	}
	if buf.Cap() <= encodeBufMax {
		encodeBufs.Put(buf)
	}
}

// writeError reports an error as {"error": "..."}. Because writeJSON
// marshals before writing, the header has not been sent for the failing
// value, so the error status always reaches the client intact.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// instanceInfo is the discovery form of an instance.
type instanceInfo struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	NumItems     int     `json:"num_items"`
	NumTopics    int     `json:"num_topics"`
	DefaultStart string  `json:"default_start"`
	GoldScore    float64 `json:"gold_score"`
}

func info(in *rlplanner.Instance) instanceInfo {
	kind := "course"
	if in.IsTrip() {
		kind = "trip"
	}
	return instanceInfo{
		Name:         in.Name(),
		Kind:         kind,
		NumItems:     in.NumItems(),
		NumTopics:    len(in.Topics()),
		DefaultStart: in.DefaultStart(),
		GoldScore:    in.GoldScore(),
	}
}

func (s *Server) listInstances(w http.ResponseWriter, _ *http.Request) {
	var out []instanceInfo
	for _, in := range rlplanner.Instances() {
		out = append(out, info(in))
	}
	for _, in := range *s.custom.Load() {
		out = append(out, info(in))
	}
	writeJSON(w, http.StatusOK, out)
}

// createInstance registers a custom instance from a JSON spec (the
// rlplanner.InstanceSpec / cmd/datagen schema). Registered instances are
// addressable by name in every other endpoint of this server.
func (s *Server) createInstance(w http.ResponseWriter, r *http.Request) {
	in, err := rlplanner.LoadInstance(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := rlplanner.InstanceByName(in.Name()); err == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("instance %q shadows a built-in", in.Name()))
		return
	}
	// Copy-on-write publish: mu serializes writers, readers only ever
	// see complete snapshots.
	s.mu.Lock()
	old := *s.custom.Load()
	_, dup := old[in.Name()]
	if !dup {
		next := make(map[string]*rlplanner.Instance, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		next[in.Name()] = in
		s.custom.Store(&next)
	}
	s.mu.Unlock()
	if dup {
		writeError(w, http.StatusConflict, fmt.Errorf("instance %q already exists", in.Name()))
		return
	}
	writeJSON(w, http.StatusCreated, info(in))
}

func (s *Server) getInstance(w http.ResponseWriter, r *http.Request) {
	in, err := s.instance(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		instanceInfo
		Items []rlplanner.Item `json:"items"`
	}{info(in), in.Items()})
}

func (s *Server) listEngines(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"engines": rlplanner.Engines()})
}

// planRequest selects an instance, an engine and options.
type planRequest struct {
	Instance string  `json:"instance"`
	Engine   string  `json:"engine,omitempty"` // registry name; "" = sarsa
	Episodes int     `json:"episodes,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Start    string  `json:"start,omitempty"`
	MinSim   bool    `json:"min_sim,omitempty"`
	Time     float64 `json:"time_limit_hours,omitempty"`
	Distance float64 `json:"max_distance_km,omitempty"`
	// Baseline is the legacy spelling of Engine ("eda", "omega", "gold").
	Baseline string `json:"baseline,omitempty"`
	// User identifies the requesting user for personalized serving. A
	// user who has posted feedback (see /api/feedback) is served through
	// their copy-on-write overlay; everyone else — and every request
	// without a user — serves the shared base policy unchanged. User is
	// deliberately NOT part of the policy cache key: all users share one
	// trained artifact.
	User string `json:"user,omitempty"`
}

func (r planRequest) options() rlplanner.Options {
	return rlplanner.Options{
		Episodes:          r.Episodes,
		Seed:              r.Seed,
		Start:             r.Start,
		MinimumSimilarity: r.MinSim,
		TimeLimitHours:    r.Time,
		MaxDistanceKm:     r.Distance,
	}
}

// engineName resolves the requested engine (legacy Baseline included) to
// its canonical registry name.
func (r planRequest) engineName() (string, error) {
	name := r.Engine
	if name == "" {
		name = r.Baseline
	}
	return rlplanner.EngineName(name)
}

// policyKey identifies one (instance, engine, options) policy in the
// store. engineName must be canonical so aliases share an entry.
func (r planRequest) policyKey(engineName string) string {
	return fmt.Sprintf("%s|%s|%d|%d|%s|%v|%g|%g",
		r.Instance, engineName, r.Episodes, r.Seed, r.Start, r.MinSim, r.Time, r.Distance)
}

// policy returns the trained policy for the request: from the store when
// cached (never blocking on any training run), otherwise training it
// behind the per-key singleflight under the server's resilience rules —
// retry backoff for keys whose training recently faulted, admission
// control over concurrent cold starts, and the training budget.
//
// Training runs under a detached-but-bounded context: detached from the
// request (a canceled request must not abort a run that concurrent
// followers are waiting on) yet bounded by the training budget, so an
// abandoned run cannot hold a training slot forever.
func (s *Server) policy(ctx context.Context, inst *rlplanner.Instance, engineName string, req planRequest) (*rlplanner.Policy, error) {
	key := req.policyKey(engineName)
	if pol, ok := s.policies.Cached(key); ok {
		return pol, nil
	}
	if ok, wait := s.breaker.Allow(key); !ok {
		s.metrics.Rejections.Add(1)
		return nil, &backoffError{wait: wait}
	}
	trainCtx := context.WithoutCancel(ctx)
	cancel := context.CancelFunc(func() {})
	if s.trainBudget > 0 {
		trainCtx, cancel = context.WithTimeout(trainCtx, s.trainBudget)
	}
	defer cancel()
	pol, ran, err := s.policies.GetOrTrain(ctx, key, func() (*rlplanner.Policy, error) {
		if !s.training.TryAcquire() {
			return nil, errOverCapacity
		}
		defer s.training.Release()
		if s.onTrain != nil {
			s.onTrain(key)
		}
		return s.trainOrDerive(trainCtx, inst, engineName, req)
	})
	if ran {
		// Only the singleflight leader updates the breaker and counters:
		// followers share its outcome, and counting them would multiply
		// one fault into many.
		s.noteOutcome(key, pol, err)
	}
	return pol, err
}

func (s *Server) plan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Resolve the instance and engine once; everything downstream reuses
	// them.
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	engineName, err := req.engineName()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.planWith(r.Context(), inst, engineName, req)
	if err == nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Degradation ladder: a resilience-class fault of the requested
	// engine (panic, blown deadline, backoff window, serving failure) is
	// answered by the fallback engine's feasible plan, tagged degraded.
	// Config errors and capacity rejections skip the ladder — the former
	// are the client's to fix, the latter must shed load, not add more.
	if s.fallback != "" && engineName != s.fallback && resilientFailure(err) {
		if fb, fbErr := s.planWith(r.Context(), inst, s.fallback, req); fbErr == nil {
			s.metrics.Fallbacks.Add(1)
			fb.Degraded = true
			fb.DegradedReason = degradedReason(err)
			writeJSON(w, http.StatusOK, fb)
			return
		}
	}
	s.writePlanError(w, err)
}

// policyInfo describes one cached policy.
type policyInfo struct {
	Key         string `json:"key"`
	Engine      string `json:"engine"`
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) listPolicies(w http.ResponseWriter, _ *http.Request) {
	keys := s.policies.Keys()
	out := make([]policyInfo, 0, len(keys))
	for _, key := range keys {
		pol, ok := s.policies.Cached(key)
		if !ok { // evicted between Keys and Cached
			continue
		}
		out = append(out, policyInfo{Key: key, Engine: pol.Engine(), Fingerprint: pol.Fingerprint()})
	}
	writeJSON(w, http.StatusOK, out)
}

// exportPolicy trains (or reuses) the policy for a plan request and
// streams it as a binary artifact: version header, engine name, catalog
// fingerprint, learned values.
func (s *Server) exportPolicy(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	engineName, err := req.engineName()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pol, err := s.policy(r.Context(), inst, engineName, req)
	if err != nil {
		s.writePlanError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := pol.Save(w); err != nil {
		log.Printf("httpapi: stream policy artifact: %v", err)
	}
}

// importPolicy installs an uploaded artifact (the bytes exportPolicy
// wrote) for the instance named in the query. The artifact's catalog
// fingerprint must match. The policy is stored under the instance's
// default-options key for its engine, so subsequent
// {"instance": ..., "engine": ...} plan requests are served from it
// without any training.
func (s *Server) importPolicy(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("instance")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?instance= query parameter"))
		return
	}
	inst, err := s.instance(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// Imports honor the deployment's data-plane size guards so the
	// rebuilt environment shares the cache entry trained policies use.
	pol, err := rlplanner.LoadPolicyArtifact(r.Body, inst, s.trainOpts(planRequest{Instance: name}))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := planRequest{Instance: name}.policyKey(pol.Engine())
	s.policies.Add(key, pol)
	writeJSON(w, http.StatusCreated, policyInfo{Key: key, Engine: pol.Engine(), Fingerprint: pol.Fingerprint()})
}

// rateRequest rates an explicit plan on an instance.
type rateRequest struct {
	Instance string   `json:"instance"`
	Items    []string `json:"items"`
	Raters   int      `json:"raters,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
}

func (s *Server) rate(w http.ResponseWriter, r *http.Request) {
	var req rateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	plan := &rlplanner.Plan{}
	for _, id := range req.Items {
		plan.Steps = append(plan.Steps, rlplanner.PlanStep{ID: id})
	}
	ratings, err := rlplanner.RatePlan(inst, plan, req.Raters, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ratings)
}

// sessionRequest opens an interactive session.
type sessionRequest struct {
	planRequest
	Suggestions int `json:"suggestions,omitempty"`
}

// sessionView is the JSON state of a session.
type sessionView struct {
	ID          string                 `json:"id"`
	Instance    string                 `json:"instance"`
	Plan        []string               `json:"plan"`
	Done        bool                   `json:"done"`
	Suggestions []rlplanner.Suggestion `json:"suggestions"`
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	engineName, err := req.engineName()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Sessions have no fallback rung: only value-based policies can drive
	// them, so a fault maps straight to its status.
	pol, err := s.policy(r.Context(), inst, engineName, req.planRequest)
	if err != nil {
		s.writePlanError(w, err)
		return
	}
	sess, err := pol.NewSession(req.Suggestions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.sessions[id] = &sessionState{instance: req.Instance, session: sess}
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, s.view(id))
}

// lookup finds a session by path id.
func (s *Server) lookup(r *http.Request) (string, *sessionState, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[id]
	if !ok {
		return "", nil, fmt.Errorf("unknown session %q", id)
	}
	return id, st, nil
}

// view renders the session's current state (caller need not hold the lock;
// session methods are invoked by one request at a time in tests and the
// CLI deployment — a production deployment would serialize per session).
func (s *Server) view(id string) sessionView {
	s.mu.Lock()
	st := s.sessions[id]
	s.mu.Unlock()
	return sessionView{
		ID:          id,
		Instance:    st.instance,
		Plan:        st.session.PlanIDs(),
		Done:        st.session.Done(),
		Suggestions: st.session.Suggestions(),
	}
}

func (s *Server) getSession(w http.ResponseWriter, r *http.Request) {
	id, _, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.view(id))
}

// itemRequest names one item for accept/reject.
type itemRequest struct {
	Item string `json:"item"`
}

func (s *Server) sessionAccept(w http.ResponseWriter, r *http.Request) {
	s.sessionAction(w, r, func(st *sessionState, item string) error {
		return st.session.Accept(item)
	})
}

func (s *Server) sessionReject(w http.ResponseWriter, r *http.Request) {
	s.sessionAction(w, r, func(st *sessionState, item string) error {
		return st.session.Reject(item)
	})
}

func (s *Server) sessionAction(w http.ResponseWriter, r *http.Request,
	act func(*sessionState, string) error) {

	id, st, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var req itemRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := act(st, req.Item); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, s.view(id))
}

func (s *Server) sessionComplete(w http.ResponseWriter, r *http.Request) {
	id, st, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	plan := st.session.AutoComplete()
	writeJSON(w, http.StatusOK, struct {
		sessionView
		Result *rlplanner.Plan `json:"result"`
	}{s.view(id), plan})
}

// explainRequest asks for a step-by-step justification of a plan.
type explainRequest struct {
	Instance string   `json:"instance"`
	Items    []string `json:"items"`
}

func (s *Server) explain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := s.instance(req.Instance)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	plan := &rlplanner.Plan{}
	for _, id := range req.Items {
		plan.Steps = append(plan.Steps, rlplanner.PlanStep{ID: id})
	}
	lines, err := rlplanner.ExplainPlan(inst, plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"explanation": lines})
}
