package httpapi

import (
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/rlplanner/rlplanner"
)

// perturbSpec renames k leaf items (not the default start, not
// referenced by any prerequisite) of an instance spec, simulating a
// catalog revision of k items with unchanged topics.
func perturbSpec(t *testing.T, inst *rlplanner.Instance, k int) rlplanner.InstanceSpec {
	t.Helper()
	spec := inst.Spec()
	spec.Name = spec.Name + " rev"
	renamed := 0
	for i := range spec.Items {
		if renamed == k {
			break
		}
		id := spec.Items[i].ID
		if id == spec.DefaultStart {
			continue
		}
		referenced := false
		for j := range spec.Items {
			if j != i && strings.Contains(spec.Items[j].Prereq, id) {
				referenced = true
				break
			}
		}
		if referenced {
			continue
		}
		spec.Items[i].ID = id + " (rev)"
		renamed++
	}
	if renamed != k {
		t.Fatalf("could only rename %d of %d items", renamed, k)
	}
	return spec
}

func TestDeriveEndpoint(t *testing.T) {
	var trained []string
	s := New()
	s.onTrain = func(key string) { trained = append(trained, key) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold-train a source policy on the CS program.
	src := map[string]interface{}{
		"instance": "Univ-1 M.S. CS", "engine": "sarsa", "episodes": 90, "seed": 1,
	}
	var plan rlplanner.Plan
	if code := doJSON(t, "POST", ts.URL+"/api/plan", src, &plan); code != 200 {
		t.Fatalf("cold plan status %d", code)
	}
	srcKey := planRequest{Instance: "Univ-1 M.S. CS", Engine: "sarsa", Episodes: 90, Seed: 1}.policyKey("sarsa")

	// Derive onto the sibling DS-CT program.
	target := map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT", "engine": "sarsa", "episodes": 90, "seed": 1,
	}
	var info deriveInfo
	deriveURL := ts.URL + "/api/policies/" + url.PathEscape(srcKey) + "/derive"
	if code := doJSON(t, "POST", deriveURL, target, &info); code != 201 {
		t.Fatalf("derive status %d (%+v)", code, info)
	}
	if info.Source != "Univ-1 M.S. CS" {
		t.Fatalf("derive source = %q", info.Source)
	}
	if info.Distance <= 0 || info.Distance >= 1 {
		t.Fatalf("derive distance = %v", info.Distance)
	}
	if info.WarmEpisodes >= info.ColdEpisodes {
		t.Fatalf("warm episodes %d did not shrink from cold %d", info.WarmEpisodes, info.ColdEpisodes)
	}

	// The derived policy is stored under the target's plan key: an
	// identical plan request serves from cache with no new training.
	before := len(trained)
	if code := doJSON(t, "POST", ts.URL+"/api/plan", target, &plan); code != 200 {
		t.Fatalf("plan from derived policy status %d", code)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("derived policy produced an empty plan")
	}
	if len(trained) != before {
		t.Fatalf("plan after derive trained again (%d runs)", len(trained)-before)
	}

	if code := doJSON(t, "POST", ts.URL+"/api/policies/nope/derive", target, &struct{}{}); code != 404 {
		t.Fatalf("unknown source policy status %d", code)
	}
}

func TestAutoDeriveOnFingerprintNearMiss(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold-train on the original catalog.
	reqBody := map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT", "engine": "sarsa", "episodes": 90, "seed": 1,
	}
	var plan rlplanner.Plan
	if code := doJSON(t, "POST", ts.URL+"/api/plan", reqBody, &plan); code != 200 {
		t.Fatalf("cold plan status %d", code)
	}

	// Register a 5-item revision of the catalog and plan against it: the
	// cold start must warm-start from the cached original
	// (train_warm_starts advances by one).
	orig, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		t.Fatal(err)
	}
	spec := perturbSpec(t, orig, 5)
	if code := doJSON(t, "POST", ts.URL+"/api/instances", spec, &struct{}{}); code != 201 {
		t.Fatalf("create perturbed instance status %d", code)
	}

	var m0 map[string]int64
	doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m0)
	reqBody["instance"] = spec.Name
	if code := doJSON(t, "POST", ts.URL+"/api/plan", reqBody, &plan); code != 200 {
		t.Fatalf("perturbed plan status %d", code)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("warm-started policy produced an empty plan")
	}
	var m1 map[string]int64
	doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m1)
	if got := m1["train_warm_starts"] - m0["train_warm_starts"]; got != 1 {
		t.Fatalf("train_warm_starts advanced by %d, want 1", got)
	}
	if m1["train_runs"] <= m0["train_runs"] {
		t.Fatal("train_runs did not advance for the warm-started run")
	}
}

func TestAutoDeriveDisabled(t *testing.T) {
	s := New(WithAutoDerive(false))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqBody := map[string]interface{}{
		"instance": "Univ-1 M.S. DS-CT", "engine": "sarsa", "episodes": 60, "seed": 1,
	}
	var plan rlplanner.Plan
	if code := doJSON(t, "POST", ts.URL+"/api/plan", reqBody, &plan); code != 200 {
		t.Fatalf("cold plan status %d", code)
	}
	orig, err := rlplanner.InstanceByName("Univ-1 M.S. DS-CT")
	if err != nil {
		t.Fatal(err)
	}
	spec := perturbSpec(t, orig, 5)
	if code := doJSON(t, "POST", ts.URL+"/api/instances", spec, &struct{}{}); code != 201 {
		t.Fatalf("create perturbed instance status %d", code)
	}
	var m0 map[string]int64
	doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m0)
	reqBody["instance"] = spec.Name
	if code := doJSON(t, "POST", ts.URL+"/api/plan", reqBody, &plan); code != 200 {
		t.Fatalf("perturbed plan status %d", code)
	}
	var m1 map[string]int64
	doJSON(t, "GET", ts.URL+"/api/metrics", nil, &m1)
	if got := m1["train_warm_starts"] - m0["train_warm_starts"]; got != 0 {
		t.Fatalf("auto-derive disabled but train_warm_starts advanced by %d", got)
	}
}

// TestTrainWorkersSamePolicy: the worker count must not change the
// served plan — the parallel protocol is bit-identical, and the policy
// cache key deliberately excludes it.
func TestTrainWorkersSamePolicy(t *testing.T) {
	planFor := func(workers int) rlplanner.Plan {
		t.Helper()
		s := New(WithTrainWorkers(workers))
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		var plan rlplanner.Plan
		code := doJSON(t, "POST", ts.URL+"/api/plan", map[string]interface{}{
			"instance": "Univ-1 M.S. DS-CT", "engine": "sarsa", "episodes": 90, "seed": 1,
		}, &plan)
		if code != 200 {
			t.Fatalf("workers=%d: status %d", workers, code)
		}
		return plan
	}
	a, b := planFor(1), planFor(4)
	if len(a.Steps) == 0 || len(a.Steps) != len(b.Steps) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i].ID != b.Steps[i].ID {
			t.Fatalf("step %d differs: %q vs %q", i, a.Steps[i].ID, b.Steps[i].ID)
		}
	}
}
