package qtable

import "fmt"

// Delta is a recorded sequence of SARSA update operations against a
// frozen base table — the unit of the parallel trainer's deterministic
// merge protocol (DESIGN §12). A walker runs one episode reading the
// shared read-only table and records, per step, the TD target it
// computed from that frozen view; the merger later replays the
// operations in episode-index order with Table.Merge. Because an
// operation carries the target (not the resulting value), the merge
// result depends only on the merge order, never on which goroutine
// walked which episode — the property that makes Workers=1 and
// Workers=N bit-identical.
//
// A Delta belongs to one goroutine at a time: one walker records into
// it, then the single merging goroutine consumes it. Reset lets one
// Delta serve every batch a walker slot processes.
type Delta struct {
	n   int
	ops []deltaOp
}

// deltaOp is one recorded update: Q(s,e) ← Q(s,e) + α·(target − Q(s,e)).
type deltaOp struct {
	s, e   int32
	target float64
}

// NewDelta returns an empty delta for an n×n table.
func NewDelta(n int) *Delta {
	if n < 0 {
		panic(fmt.Sprintf("qtable: negative size %d", n))
	}
	return &Delta{n: n}
}

// Record appends one update operation. The target is the full TD target
// r + γ·Q_base(s',e') evaluated against the frozen base table.
func (d *Delta) Record(s, e int, target float64) {
	if s < 0 || s >= d.n || e < 0 || e >= d.n {
		panic(fmt.Sprintf("qtable: delta index (%d,%d) out of range [0,%d)", s, e, d.n))
	}
	d.ops = append(d.ops, deltaOp{s: int32(s), e: int32(e), target: target})
}

// Len returns the number of recorded operations.
func (d *Delta) Len() int { return len(d.ops) }

// Each calls fn for every recorded operation in recorded order.
func (d *Delta) Each(fn func(s, e int, target float64)) {
	for _, op := range d.ops {
		fn(int(op.s), int(op.e), op.target)
	}
}

// Reset empties the delta, keeping its backing storage for reuse.
func (d *Delta) Reset() { d.ops = d.ops[:0] }

// Merge replays the delta's operations into the table in recorded
// order, applying Q(s,e) ← Q(s,e) + α·(target − Q(s,e)) per op. When
// two episodes of one batch touch the same pair, the later merge reads
// the earlier one's result — exactly the chaining a sequential learner
// would produce had both episodes seen the frozen bootstrap values.
func (t *Table) Merge(d *Delta, alpha float64) {
	if d.n != t.n {
		panic(fmt.Sprintf("qtable: merging delta over %d items into table of %d", d.n, t.n))
	}
	if t.q != nil {
		for _, op := range d.ops {
			i := int(op.s)*t.n + int(op.e)
			if alpha == 1 {
				// q + 1·(target − q) is target only up to rounding; assign
				// directly so α=1 replays (overlay densification) are
				// bit-exact, not merely close.
				t.q[i] = op.target
				continue
			}
			t.q[i] += alpha * (op.target - t.q[i])
		}
		return
	}
	// Sparse form: identical arithmetic per op against the visited-cell
	// rows — the merge order alone determines the result, exactly as in
	// the dense replay, so parallel training stays bit-identical across
	// representations of the same values.
	for _, op := range d.ops {
		row := &t.rows[op.s]
		if alpha == 1 {
			if op.target == 0 && row.get(op.e) == 0 {
				continue
			}
			row.set(op.e, op.target)
			continue
		}
		v := row.get(op.e)
		v += alpha * (op.target - v)
		if v == 0 && row.get(op.e) == 0 {
			continue
		}
		row.set(op.e, v)
	}
}
