package qtable

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// newSparseTable forces the sparse representation regardless of n, so
// small catalogs (cheap to cross-check against dense) exercise exactly
// the code path 100k-item catalogs run.
func newSparseTable(n int) *Table {
	return &Table{n: n, rows: make([]oaRow, n)}
}

// TestSparseTableOpEquivalence drives a dense and a forced-sparse table
// through the same random mutation sequence — Set (including explicit
// zeros), SARSA Update chains, Delta merges at α=1 and fractional α,
// Fill(0), Clone — and demands bit-identical reads after every batch.
// This is the property behind the ≤ dense-threshold guarantee: the
// representations are interchangeable, not merely approximately equal.
func TestSparseTableOpEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		dense := New(n)
		sparse := newSparseTable(n)
		if dense.IsDense() != true || sparse.IsDense() != false {
			t.Log("representation selection broken")
			return false
		}
		vals := []float64{-2, -1, 0, 0.5, 1, 3}
		check := func(stage string) bool {
			for s := 0; s < n; s++ {
				for e := 0; e < n; e++ {
					if dv, sv := dense.Get(s, e), sparse.Get(s, e); dv != sv {
						t.Logf("%s: Get(%d,%d) dense=%v sparse=%v", stage, s, e, dv, sv)
						return false
					}
				}
			}
			if dm, sm := dense.MaxAbs(), sparse.MaxAbs(); dm != sm {
				t.Logf("%s: MaxAbs dense=%v sparse=%v", stage, dm, sm)
				return false
			}
			return true
		}
		for batch := 0; batch < 4; batch++ {
			switch rng.Intn(5) {
			case 0: // random Sets, zeros included
				for i := 0; i < 2*n; i++ {
					s, e, v := rng.Intn(n), rng.Intn(n), vals[rng.Intn(len(vals))]
					dense.Set(s, e, v)
					sparse.Set(s, e, v)
				}
			case 1: // SARSA update chain with bootstrap reads
				for i := 0; i < 2*n; i++ {
					s, e := rng.Intn(n), rng.Intn(n)
					sn, en := rng.Intn(n), rng.Intn(n)
					r := vals[rng.Intn(len(vals))]
					dv := dense.Update(s, e, 0.25, r, 0.9, sn, en)
					sv := sparse.Update(s, e, 0.25, r, 0.9, sn, en)
					if dv != sv {
						t.Logf("Update(%d,%d) dense=%v sparse=%v", s, e, dv, sv)
						return false
					}
				}
			case 2: // delta merge, mixed alphas
				d := NewDelta(n)
				for i := 0; i < n+1; i++ {
					d.Record(rng.Intn(n), rng.Intn(n), vals[rng.Intn(len(vals))])
				}
				alpha := []float64{1, 0.5}[rng.Intn(2)]
				dense.Merge(d, alpha)
				sparse.Merge(d, alpha)
			case 3: // clone, keep mutating the clone
				dense, sparse = dense.Clone(), sparse.Clone()
				if sparse.IsDense() {
					t.Log("Clone dropped the sparse representation")
					return false
				}
			case 4:
				dense.Fill(0)
				sparse.Fill(0)
			}
			if !check("after batch") {
				return false
			}
		}
		// Row materialization and stored-cell enumeration agree too.
		for s := 0; s < n; s++ {
			dr, sr := dense.Row(s), sparse.Row(s)
			for e := range dr {
				if dr[e] != sr[e] {
					t.Logf("Row(%d)[%d] dense=%v sparse=%v", s, e, dr[e], sr[e])
					return false
				}
			}
		}
		type cell struct {
			s, e int
			v    float64
		}
		var dc, sc []cell
		dense.EachStored(func(s, e int, v float64) { dc = append(dc, cell{s, e, v}) })
		sparse.EachStored(func(s, e int, v float64) { sc = append(sc, cell{s, e, v}) })
		if len(dc) != len(sc) {
			t.Logf("EachStored: dense %d cells, sparse %d", len(dc), len(sc))
			return false
		}
		for i := range dc {
			if dc[i] != sc[i] {
				t.Logf("EachStored[%d]: dense %+v sparse %+v", i, dc[i], sc[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSparseSnapshotRoundTrip pins persistence of the sparse form: gob
// and JSON round-trips reproduce every value, restore into the sparse
// representation, and the coordinate payload is byte-deterministic —
// two encodes of the same table are identical.
func TestSparseSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := newSparseTable(40)
	for i := 0; i < 200; i++ {
		q.Set(rng.Intn(40), rng.Intn(40), float64(rng.Intn(9)-4))
	}
	var g1, g2 bytes.Buffer
	if err := q.WriteGob(&g1); err != nil {
		t.Fatal(err)
	}
	if err := q.WriteGob(&g2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1.Bytes(), g2.Bytes()) {
		t.Fatal("gob encoding of a sparse table is not deterministic")
	}
	back, err := ReadGob(&g1)
	if err != nil {
		t.Fatal(err)
	}
	if back.IsDense() {
		t.Fatal("gob round-trip of a sparse table restored dense")
	}
	var j bytes.Buffer
	if err := q.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	jback, err := ReadJSON(&j)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 40; s++ {
		for e := 0; e < 40; e++ {
			want := q.Get(s, e)
			if v := back.Get(s, e); v != want {
				t.Fatalf("gob round-trip: Get(%d,%d) = %v, want %v", s, e, v, want)
			}
			if v := jback.Get(s, e); v != want {
				t.Fatalf("json round-trip: Get(%d,%d) = %v, want %v", s, e, v, want)
			}
		}
	}
}

// TestSparseMemoryFollowsVisitedSet is the reason the representation
// exists: a barely-visited large table must cost orders of magnitude
// less than 8n², and Stored must count visited cells, not n².
func TestSparseMemoryFollowsVisitedSet(t *testing.T) {
	const n = 50_000
	q := New(n)
	if q.IsDense() {
		t.Fatalf("New(%d) chose dense above DefaultDenseMaxItems=%d", n, DefaultDenseMaxItems)
	}
	rng := rand.New(rand.NewSource(3))
	const visits = 10_000
	for i := 0; i < visits; i++ {
		q.Set(rng.Intn(n), rng.Intn(n), rng.Float64()+0.1)
	}
	if s := q.Stored(); s > visits {
		t.Fatalf("Stored = %d after %d visits", s, visits)
	}
	denseBytes := 8 * n * n
	if got := q.MemoryBytes(); got > denseBytes/100 {
		t.Fatalf("MemoryBytes = %d, want well under 1%% of dense %d", got, denseBytes)
	}
	tr := NewTiered(q)
	if got := tr.MemoryBytes(); got > denseBytes/100 {
		t.Fatalf("Tiered.MemoryBytes = %d, want well under 1%% of dense %d", got, denseBytes)
	}
}

// TestNewSelectsRepresentation pins the constructor thresholds,
// including the operator override.
func TestNewSelectsRepresentation(t *testing.T) {
	if !New(DefaultDenseMaxItems).IsDense() {
		t.Error("New at the threshold should be dense")
	}
	if New(DefaultDenseMaxItems + 1).IsDense() {
		t.Error("New above the threshold should be sparse")
	}
	if !NewWithDenseMax(500, 500).IsDense() {
		t.Error("NewWithDenseMax(500, 500) should be dense")
	}
	if NewWithDenseMax(501, 500).IsDense() {
		t.Error("NewWithDenseMax(501, 500) should be sparse")
	}
	if !NewWithDenseMax(4096, 0).IsDense() {
		t.Error("denseMax <= 0 should fall back to the default threshold")
	}
}
