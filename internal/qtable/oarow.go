package qtable

// oaRow is one state's visited-cell storage in a sparse-backed Table: an
// open-addressed hash table from action index to Q value with linear
// probing. Compared with the map-backed Sparse rows it has no per-entry
// allocation, no pointer chasing and deterministic growth — the per-step
// Update on the learning hot loop is one hash plus a short probe run.
//
// Slots hold keys (-1 = empty) and values in parallel arrays. Rows never
// delete: a value updated to exactly 0 keeps its slot (reads of 0 are
// indistinguishable from absence, which is all the semantics require),
// so no tombstone machinery is needed.
type oaRow struct {
	keys []int32
	vals []float64
	used int
}

// oaMinCap is the initial slot count of a row's first insert — small,
// because most visited rows hold only a handful of cells.
const oaMinCap = 8

// oaHash scatters an action index over the slot space (Fibonacci
// hashing; the slot count is a power of two).
func oaHash(e int32) uint32 { return uint32(e) * 2654435761 }

// get returns the stored value for action e, 0 when absent.
func (r *oaRow) get(e int32) float64 {
	if r.used == 0 {
		return 0
	}
	mask := uint32(len(r.keys) - 1)
	for i := oaHash(e) & mask; ; i = (i + 1) & mask {
		k := r.keys[i]
		if k == e {
			return r.vals[i]
		}
		if k < 0 {
			return 0
		}
	}
}

// set stores v for action e, growing the row at 3/4 load.
func (r *oaRow) set(e int32, v float64) {
	if len(r.keys) == 0 {
		r.grow(oaMinCap)
	} else if 4*(r.used+1) > 3*len(r.keys) {
		r.grow(2 * len(r.keys))
	}
	mask := uint32(len(r.keys) - 1)
	for i := oaHash(e) & mask; ; i = (i + 1) & mask {
		k := r.keys[i]
		if k == e {
			r.vals[i] = v
			return
		}
		if k < 0 {
			r.keys[i] = e
			r.vals[i] = v
			r.used++
			return
		}
	}
}

// grow rehashes the row into newCap slots.
func (r *oaRow) grow(newCap int) {
	oldKeys, oldVals := r.keys, r.vals
	r.keys = make([]int32, newCap)
	r.vals = make([]float64, newCap)
	for i := range r.keys {
		r.keys[i] = -1
	}
	r.used = 0
	for i, k := range oldKeys {
		if k >= 0 {
			r.set(k, oldVals[i])
		}
	}
}

// clone returns a deep copy of the row.
func (r *oaRow) clone() oaRow {
	c := oaRow{used: r.used}
	if r.keys != nil {
		c.keys = append([]int32(nil), r.keys...)
		c.vals = append([]float64(nil), r.vals...)
	}
	return c
}

// reset empties the row, keeping its slots for reuse.
func (r *oaRow) reset() {
	for i := range r.keys {
		r.keys[i] = -1
	}
	r.used = 0
}
