package qtable

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// DefaultTopK is the eager per-state prefix length Compile uses when
// k <= 0. Recommendation walks rarely skip more than a handful of
// infeasible actions per step, so a short prefix answers almost every
// arg-max without touching the lazy tail.
const DefaultTopK = 16

// Compiled is the serve-time form of an action-value table: for every
// state, the actions sorted by descending Q with ascending index as the
// tie-break — a total order, so the sorted permutation is unique and a
// masked arg-max can walk it and stop at the first allowed action
// instead of scanning all n values under the mask.
//
// Only the top-K prefix of each state's order is materialized at Compile
// time; the full tail is built lazily (and raced benignly: concurrent
// builders compute the identical permutation and one wins the atomic
// publish) the first time a walk exhausts the prefix. Compile reads the
// source table, so the table must already be frozen — the train-once /
// serve-many boundary the engine layer enforces.
type Compiled struct {
	n, k   int
	v      Values
	prefix []int32 // n rows × k entries, row-major
	tails  []atomic.Pointer[[]int32]
}

// Compile builds the per-state Q-descending action order for a frozen
// table (dense or sparse). k bounds the eager prefix per state
// (DefaultTopK when k <= 0, clamped to the table size).
func Compile(v Values, k int) *Compiled {
	if v == nil {
		panic("qtable: compile nil values")
	}
	n := v.Size()
	if k <= 0 {
		k = DefaultTopK
	}
	if k > n {
		k = n
	}
	c := &Compiled{n: n, k: k, v: v,
		prefix: make([]int32, n*k),
		tails:  make([]atomic.Pointer[[]int32], n),
	}
	dense, _ := v.(*Table)
	for s := 0; s < n; s++ {
		var row []float64
		if dense != nil {
			row = dense.rowView(s)
		}
		c.fillPrefix(s, row)
	}
	return c
}

// get reads Q(s, a) from the source table, preferring the dense row when
// one was captured.
func (c *Compiled) get(s, a int, row []float64) float64 {
	if row != nil {
		return row[a]
	}
	return c.v.Get(s, a)
}

// better reports whether action a (value qa) precedes action b (value
// qb) in the compiled order: higher Q first, lower index on exact ties.
func better(a int32, qa float64, b int32, qb float64) bool {
	return qa > qb || (qa == qb && a < b)
}

// fillPrefix selects state s's top-k actions by insertion into the
// prefix row — O(n·k), no allocation beyond the prefix itself.
func (c *Compiled) fillPrefix(s int, row []float64) {
	pr := c.prefix[s*c.k : s*c.k : s*c.k+c.k]
	for a := 0; a < c.n; a++ {
		qa := c.get(s, a, row)
		if len(pr) == cap(pr) {
			last := pr[len(pr)-1]
			if !better(int32(a), qa, last, c.get(s, int(last), row)) {
				continue
			}
			pr = pr[:len(pr)-1]
		}
		i := len(pr)
		pr = append(pr, 0)
		for i > 0 && better(int32(a), qa, pr[i-1], c.get(s, int(pr[i-1]), row)) {
			pr[i] = pr[i-1]
			i--
		}
		pr[i] = int32(a)
	}
}

// fullRow returns state s's complete sorted action order, building and
// publishing it on first use. The comparator is a strict total order, so
// every builder produces the same permutation and fullRow[:k] equals the
// eager prefix — a walk can continue at the index where the prefix ran
// out.
func (c *Compiled) fullRow(s int) []int32 {
	if t := c.tails[s].Load(); t != nil {
		return *t
	}
	var row []float64
	if dense, ok := c.v.(*Table); ok {
		row = dense.rowView(s)
	}
	order := make([]int32, c.n)
	for a := range order {
		order[a] = int32(a)
	}
	sort.Slice(order, func(i, j int) bool {
		return better(order[i], c.get(s, int(order[i]), row), order[j], c.get(s, int(order[j]), row))
	})
	c.tails[s].Store(&order)
	return order
}

// Size returns n, the number of states.
func (c *Compiled) Size() int { return c.n }

// Get returns Q(s, e) from the source table the order was compiled
// from — Compiled adds ordering on top of the frozen values, so reads
// pass straight through and the type satisfies the full Reader surface.
func (c *Compiled) Get(s, e int) float64 {
	c.checkState(s)
	if e < 0 || e >= c.n {
		panic(fmt.Sprintf("qtable: action %d out of range [0,%d)", e, c.n))
	}
	return c.v.Get(s, e)
}

// K returns the eager prefix length.
func (c *Compiled) K() int { return c.k }

// AppendArgMaxTies appends to buf every allowed action tied for the
// maximal Q(s, ·), in ascending index order — the same result (and
// ordering) as Table.ArgMaxTies under the same mask, found by walking
// the compiled order instead of scanning all n values. allowed == nil
// admits every action. It falls back to the lazy full row only when the
// prefix is exhausted before the walk concludes (no allowed action seen
// yet, or a tie run reaching the prefix boundary).
func (c *Compiled) AppendArgMaxTies(s int, allowed func(e int) bool, buf []int) []int {
	c.checkState(s)
	var qrow []float64
	if dense, ok := c.v.(*Table); ok {
		qrow = dense.rowView(s)
	}
	row := c.prefix[s*c.k : (s+1)*c.k]
	inTail := false
	var best float64
	found := false
	for i := 0; ; i++ {
		if i == len(row) {
			if inTail || len(row) == c.n {
				break
			}
			row = c.fullRow(s)
			inTail = true
			if i == len(row) { // n == k == 0
				break
			}
		}
		a := int(row[i])
		v := c.get(s, a, qrow)
		if found && v < best {
			break
		}
		if allowed != nil && !allowed(a) {
			continue
		}
		if !found {
			best, found = v, true
		}
		buf = append(buf, a)
	}
	return buf
}

// ArgMax returns the allowed action maximizing Q(s, ·), ties to the
// lowest index — identical to Table.ArgMax under the same mask. ok is
// false when no action is allowed. Because the compiled order is total,
// the first allowed action in it IS the arg-max: no value is ever read.
func (c *Compiled) ArgMax(s int, allowed func(e int) bool) (int, bool) {
	c.checkState(s)
	row := c.prefix[s*c.k : (s+1)*c.k]
	for i := 0; ; i++ {
		if i == len(row) {
			if len(row) == c.n {
				return -1, false
			}
			row = c.fullRow(s)
			if i == len(row) {
				return -1, false
			}
		}
		a := int(row[i])
		if allowed == nil || allowed(a) {
			return a, true
		}
	}
}

func (c *Compiled) checkState(s int) {
	if s < 0 || s >= c.n {
		panic(fmt.Sprintf("qtable: state %d out of range [0,%d)", s, c.n))
	}
}
