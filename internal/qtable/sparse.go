package qtable

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Values is the action-value interface shared by the dense Table and the
// Sparse map-backed implementation, for code that only reads/updates.
type Values interface {
	Size() int
	Get(s, e int) float64
	Set(s, e int, v float64)
	Update(s, e int, alpha, r, gamma float64, sNext, eNext int) float64
	ArgMax(s int, allowed func(e int) bool) (int, bool)
}

var (
	_ Values = (*Table)(nil)
	_ Values = (*Sparse)(nil)
)

// Sparse is a map-backed action-value table with the same semantics as
// Table (absent entries read as 0). SARSA visits only a fraction of the
// |I|² pairs on institution-scale catalogs (1216 items → 1.5M pairs,
// ~11 MB dense), so the sparse form trades lookup speed for memory
// proportional to the visited set. BenchmarkAblationQStorage quantifies
// the trade.
type Sparse struct {
	n    int
	rows []map[int32]float64
}

// NewSparse returns an empty n×n sparse table.
func NewSparse(n int) *Sparse {
	if n < 0 {
		panic(fmt.Sprintf("qtable: negative size %d", n))
	}
	return &Sparse{n: n, rows: make([]map[int32]float64, n)}
}

// Size returns n.
func (t *Sparse) Size() int { return t.n }

func (t *Sparse) check(s, e int) {
	if s < 0 || s >= t.n || e < 0 || e >= t.n {
		panic(fmt.Sprintf("qtable: index (%d,%d) out of range [0,%d)", s, e, t.n))
	}
}

// Get returns Q(s, e), 0 when never written.
func (t *Sparse) Get(s, e int) float64 {
	t.check(s, e)
	if t.rows[s] == nil {
		return 0
	}
	return t.rows[s][int32(e)]
}

// Set assigns Q(s, e) = v. Writing 0 removes the entry.
func (t *Sparse) Set(s, e int, v float64) {
	t.check(s, e)
	if v == 0 {
		if t.rows[s] != nil {
			delete(t.rows[s], int32(e))
		}
		return
	}
	if t.rows[s] == nil {
		t.rows[s] = make(map[int32]float64)
	}
	t.rows[s][int32(e)] = v
}

// Update applies the Equation 9 TD update, as Table.Update.
func (t *Sparse) Update(s, e int, alpha, r, gamma float64, sNext, eNext int) float64 {
	t.check(s, e)
	target := r
	if sNext >= 0 && eNext >= 0 {
		target += gamma * t.Get(sNext, eNext)
	}
	v := t.Get(s, e)
	v += alpha * (target - v)
	t.Set(s, e, v)
	return v
}

// ArgMax matches Table.ArgMax: absent entries count as 0, ties resolve to
// the lowest index. It scans only the stored row — O(entries) instead of n
// bounds-checked map lookups — and consults the absent-entry default (0)
// only when no stored value is positive. Stored values are never exactly 0
// (Set deletes zero writes), so a stored maximum > 0 can never tie with an
// absent entry.
func (t *Sparse) ArgMax(s int, allowed func(e int) bool) (int, bool) {
	if t.n == 0 {
		return -1, false
	}
	t.check(s, 0)
	best, found := math.Inf(-1), false
	e := -1
	for a32, v := range t.rows[s] {
		a := int(a32)
		if allowed != nil && !allowed(a) {
			continue
		}
		if !found || v > best || (v == best && a < e) {
			best, e, found = v, a, true
		}
	}
	if found && best > 0 {
		return e, true
	}
	// Every allowed stored value is ≤ 0 (or nothing is stored): absent
	// entries read as 0 and can win, so fall back to the shared full
	// allowed-scan over the merged view (a nil-map lookup reads 0).
	row := t.rows[s]
	return scanArgMax(t.n, func(a int) float64 { return row[int32(a)] }, allowed)
}

// AppendArgMaxTies appends to buf every allowed action tied for the
// maximal Q(s, ·) in ascending index order — identical ties (values and
// order) to Table.AppendArgMaxTies on the dense equivalent. It uses the
// shared allowed-scan directly: tie collection has to visit every
// allowed action anyway, so the stored-entry shortcut ArgMax uses buys
// nothing here.
func (t *Sparse) AppendArgMaxTies(s int, allowed func(e int) bool, buf []int) []int {
	if t.n == 0 {
		return buf
	}
	t.check(s, 0)
	row := t.rows[s]
	return scanAppendArgMaxTies(t.n, func(a int) float64 { return row[int32(a)] }, allowed, buf)
}

// Entries returns the number of stored (non-zero) values.
func (t *Sparse) Entries() int {
	n := 0
	for _, row := range t.rows {
		n += len(row)
	}
	return n
}

// ToDense materializes the sparse table as a dense Table.
func (t *Sparse) ToDense() *Table {
	d := New(t.n)
	for s, row := range t.rows {
		for e, v := range row {
			d.Set(s, int(e), v)
		}
	}
	return d
}

// sparseSnapshot is the serialized sparse form shared by gob and JSON:
// coordinate triples sorted by (s, e) so identical tables always encode
// to identical bytes, whatever map iteration order produced them.
type sparseSnapshot struct {
	N int       `json:"n"`
	S []int32   `json:"s"`
	E []int32   `json:"e"`
	V []float64 `json:"v"`
}

func (t *Sparse) snapshot() sparseSnapshot {
	snap := sparseSnapshot{N: t.n}
	for s, row := range t.rows {
		if len(row) == 0 {
			continue
		}
		es := make([]int32, 0, len(row))
		for e := range row {
			es = append(es, e)
		}
		sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
		for _, e := range es {
			snap.S = append(snap.S, int32(s))
			snap.E = append(snap.E, e)
			snap.V = append(snap.V, row[e])
		}
	}
	return snap
}

func sparseFromSnapshot(snap sparseSnapshot) (*Sparse, error) {
	if snap.N < 0 || len(snap.S) != len(snap.E) || len(snap.S) != len(snap.V) {
		return nil, fmt.Errorf("qtable: corrupt sparse snapshot: n=%d, %d/%d/%d coordinates",
			snap.N, len(snap.S), len(snap.E), len(snap.V))
	}
	t := NewSparse(snap.N)
	for i := range snap.S {
		s, e := int(snap.S[i]), int(snap.E[i])
		if s < 0 || s >= snap.N || e < 0 || e >= snap.N {
			return nil, fmt.Errorf("qtable: corrupt sparse snapshot: entry (%d,%d) out of range [0,%d)", s, e, snap.N)
		}
		t.Set(s, e, snap.V[i])
	}
	return t, nil
}

// WriteGob writes the sparse table in gob encoding (coordinate form —
// size proportional to the stored entries, not n²).
func (t *Sparse) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t.snapshot())
}

// ReadSparseGob reads a table previously written with Sparse.WriteGob.
func ReadSparseGob(r io.Reader) (*Sparse, error) {
	var snap sparseSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("qtable: decode sparse gob: %w", err)
	}
	return sparseFromSnapshot(snap)
}

// WriteJSON writes the sparse table as JSON coordinate triples.
func (t *Sparse) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.snapshot())
}

// ReadSparseJSON reads a table previously written with Sparse.WriteJSON.
func ReadSparseJSON(r io.Reader) (*Sparse, error) {
	var snap sparseSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("qtable: decode sparse json: %w", err)
	}
	return sparseFromSnapshot(snap)
}
