package qtable

import "math/bits"

// bloom is a minimal split-hash Bloom filter over uint64 keys — the
// Tiered reader's absent-cell test. It answers "definitely absent" in
// one cache line most of the time, so the zero-class scan over a row
// (every action the training episodes never stored) skips the
// open-addressed probe for the overwhelming majority of indices. False
// positives only cost the probe they would have paid anyway; there are
// no false negatives.
type bloom struct {
	words []uint64
	mask  uint64 // bit-count − 1; the bit count is a power of two
	k     int
}

// newBloom sizes a filter for n expected keys at ~10 bits per key
// (k = 4 hash functions → ~1–2% false-positive rate).
func newBloom(n int) *bloom {
	bitCount := 64
	for bitCount < 10*n {
		bitCount <<= 1
	}
	return &bloom{words: make([]uint64, bitCount/64), mask: uint64(bitCount - 1), k: 4}
}

// mix finalizes a key into two independent hash streams (splitmix64
// finalizer; double hashing h1 + i·h2 spans the k probe bits).
func bloomMix(key uint64) (uint64, uint64) {
	z := key + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	h1 := z ^ (z >> 31)
	h2 := bits.RotateLeft64(h1, 32) | 1 // odd, so probes never collapse
	return h1, h2
}

// add inserts a key.
func (b *bloom) add(key uint64) {
	h1, h2 := bloomMix(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		b.words[bit>>6] |= 1 << (bit & 63)
	}
}

// mayContain reports whether the key might have been added; false means
// definitely not.
func (b *bloom) mayContain(key uint64) bool {
	h1, h2 := bloomMix(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		if b.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// sizeBytes reports the filter's backing storage.
func (b *bloom) sizeBytes() int { return 8 * len(b.words) }
