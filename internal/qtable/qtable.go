// Package qtable provides the |I|×|I| action-value table of §III-C.
// Q(s, e) estimates the value of taking action e (moving to item e) from
// state s (item s). The table supports masked arg-max queries (exclude
// already-chosen items), snapshot persistence in both gob (compact) and
// JSON (interoperable) encodings, and deterministic tie-breaking hooks.
//
// A Table is backed by one of two representations behind one API. At or
// below the dense threshold it is the classic dense row-major float64
// array — O(1) loads, the layout every bench to date measures. Above the
// threshold New switches to sparse row storage (one open-addressed
// visited-cell table per state, see oaRow): SARSA touches a vanishing
// fraction of the n² pairs at catalog scale, so memory follows the
// visited set instead of 8n² bytes (80 GB at 100k items dense). The two
// representations are semantically identical — absent sparse cells read
// as 0, exactly like never-written dense cells — and the property tests
// pin Get/ArgMax/tie-order equivalence.
package qtable

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// DefaultDenseMaxItems is the catalog size up to which New allocates the
// dense n² array (128 MiB of float64 at 4096 items). Beyond it the
// sparse representation wins on memory by orders of magnitude and the
// serve path compiles to a Tiered reader instead of a dense scan.
// Callers with operator-configured limits use NewWithDenseMax.
const DefaultDenseMaxItems = 4096

// Table is an action-value table over n items. The zero Table is not
// usable; construct with New or NewWithDenseMax.
//
// Concurrency: Table does no locking. Mutators (Set, Update, Fill,
// Merge) must not run concurrently with anything else, but once learning
// completes the table is effectively immutable and the read-only methods
// (Get, ArgMax, ArgMaxTies, Row, MaxAbs, WriteGob, WriteJSON) are safe
// to call from any number of goroutines — the experiment pool relies on
// this to share a learned policy across parallel evaluation runs.
type Table struct {
	n    int
	q    []float64 // dense row-major q[s*n+e]; nil for the sparse form
	rows []oaRow   // sparse per-state storage; nil for the dense form
}

// New returns an n×n table of zeros, dense up to DefaultDenseMaxItems
// and sparse beyond it.
func New(n int) *Table { return NewWithDenseMax(n, 0) }

// NewWithDenseMax is New with an explicit dense threshold (<= 0 means
// DefaultDenseMaxItems) — the constructor configured callers thread the
// -dense-q-max operator limit through.
func NewWithDenseMax(n, denseMax int) *Table {
	if n < 0 {
		panic(fmt.Sprintf("qtable: negative size %d", n))
	}
	if denseMax <= 0 {
		denseMax = DefaultDenseMaxItems
	}
	if n <= denseMax {
		return &Table{n: n, q: make([]float64, n*n)}
	}
	return &Table{n: n, rows: make([]oaRow, n)}
}

// IsDense reports whether the table uses the dense n² representation.
func (t *Table) IsDense() bool { return t.rows == nil }

// Stored returns the number of materialized cells: n² for the dense
// form, the visited-cell count for the sparse one.
func (t *Table) Stored() int {
	if t.IsDense() {
		return t.n * t.n
	}
	c := 0
	for i := range t.rows {
		c += t.rows[i].used
	}
	return c
}

// MemoryBytes estimates the resident bytes of the table's backing
// storage — the sparse form's figure follows the visited slots, not n².
func (t *Table) MemoryBytes() int {
	if t.IsDense() {
		return 8 * len(t.q)
	}
	b := 48 * len(t.rows) // row headers
	for i := range t.rows {
		b += 12 * len(t.rows[i].keys)
	}
	return b
}

// Size returns n, the number of items (states).
func (t *Table) Size() int { return t.n }

func (t *Table) check(s, e int) {
	if s < 0 || s >= t.n || e < 0 || e >= t.n {
		panic(fmt.Sprintf("qtable: index (%d,%d) out of range [0,%d)", s, e, t.n))
	}
}

// Get returns Q(s, e).
func (t *Table) Get(s, e int) float64 {
	t.check(s, e)
	if t.q != nil {
		return t.q[s*t.n+e]
	}
	return t.rows[s].get(int32(e))
}

// rowView returns Q(s, ·) as a view into the dense backing array,
// without copying and without bounds-checking s — the accessor the
// compiled-policy builder and the arg-max scans use on indices they
// already validated. It returns nil for a sparse-backed table; callers
// fall back to Get. Callers must guarantee 0 <= s < n and must not
// mutate the returned slice.
func (t *Table) rowView(s int) []float64 {
	if t.q == nil {
		return nil
	}
	return t.q[s*t.n : (s+1)*t.n]
}

// Set assigns Q(s, e) = v. On the sparse form, writing 0 to an absent
// cell is a no-op (absent already reads 0); writing 0 over a stored cell
// keeps the slot and zeroes it, which is semantically identical.
func (t *Table) Set(s, e int, v float64) {
	t.check(s, e)
	if t.q != nil {
		t.q[s*t.n+e] = v
		return
	}
	r := &t.rows[s]
	if v == 0 && r.used == 0 {
		return
	}
	if v == 0 && r.get(int32(e)) == 0 {
		return
	}
	r.set(int32(e), v)
}

// Update applies the SARSA temporal-difference update of Equation 9:
//
//	Q(s,e) ← Q(s,e) + α[r + γ·Q(s',e') − Q(s,e)]
//
// and returns the new value. Each index pair is bounds-checked exactly
// once: the bootstrap value is read directly rather than through Get,
// which would re-check what Update already validated — this sits on the
// learning hot loop, one call per episode step.
func (t *Table) Update(s, e int, alpha, r, gamma float64, sNext, eNext int) float64 {
	t.check(s, e)
	target := r
	if sNext >= 0 && eNext >= 0 {
		t.check(sNext, eNext)
		if t.q != nil {
			target += gamma * t.q[sNext*t.n+eNext]
		} else {
			target += gamma * t.rows[sNext].get(int32(eNext))
		}
	}
	if t.q != nil {
		i := s*t.n + e
		t.q[i] += alpha * (target - t.q[i])
		return t.q[i]
	}
	row := &t.rows[s]
	v := row.get(int32(e))
	v += alpha * (target - v)
	if v == 0 && row.get(int32(e)) == 0 {
		return 0 // 0 → 0: no need to materialize the cell
	}
	row.set(int32(e), v)
	return v
}

// ArgMax returns the action e maximizing Q(s, e) among those allowed by
// the mask (allowed == nil means every action). Ties resolve to the lowest
// index for determinism; callers wanting random tie-breaks use ArgMaxTies.
// ok is false when no action is allowed.
func (t *Table) ArgMax(s int, allowed func(e int) bool) (e int, ok bool) {
	if t.n == 0 {
		return -1, false
	}
	t.check(s, 0)
	if row := t.rowView(s); row != nil {
		return scanArgMax(t.n, func(a int) float64 { return row[a] }, allowed)
	}
	// Sparse fast path, mirroring Sparse.ArgMax: scan only the stored
	// slots; when the best allowed stored value is positive it beats
	// every absent (0) cell, so the O(n) merged scan is skipped. Stored
	// zeros read as 0 and never qualify, exactly like absent cells.
	r := &t.rows[s]
	best, found := math.Inf(-1), false
	e = -1
	for i, k := range r.keys {
		if k < 0 {
			continue
		}
		a := int(k)
		if allowed != nil && !allowed(a) {
			continue
		}
		if v := r.vals[i]; !found || v > best || (v == best && a < e) {
			best, e, found = v, a, true
		}
	}
	if found && best > 0 {
		return e, true
	}
	return scanArgMax(t.n, func(a int) float64 { return r.get(int32(a)) }, allowed)
}

// ArgMaxTies returns every action tied for the maximum Q(s, e) among the
// allowed ones. The result is nil when no action is allowed.
func (t *Table) ArgMaxTies(s int, allowed func(e int) bool) []int {
	return t.AppendArgMaxTies(s, allowed, nil)
}

// AppendArgMaxTies appends to buf every allowed action tied for the
// maximal Q(s, ·), in ascending index order, and returns buf — the
// allocation-free form serving walks reuse a buffer through.
func (t *Table) AppendArgMaxTies(s int, allowed func(e int) bool, buf []int) []int {
	if t.n == 0 {
		return buf
	}
	t.check(s, 0)
	if row := t.rowView(s); row != nil {
		return scanAppendArgMaxTies(t.n, func(a int) float64 { return row[a] }, allowed, buf)
	}
	r := &t.rows[s]
	return scanAppendArgMaxTies(t.n, func(a int) float64 { return r.get(int32(a)) }, allowed, buf)
}

// Row returns a copy of Q(s, ·) as a dense slice.
func (t *Table) Row(s int) []float64 {
	t.check(s, 0)
	if t.q != nil {
		return append([]float64(nil), t.q[s*t.n:(s+1)*t.n]...)
	}
	out := make([]float64, t.n)
	r := &t.rows[s]
	for i, k := range r.keys {
		if k >= 0 {
			out[k] = r.vals[i]
		}
	}
	return out
}

// EachStored calls fn for every materialized non-zero cell in
// deterministic (s ascending, e ascending) order — the enumeration the
// persistence and transfer layers use so work scales with the visited
// set instead of n².
func (t *Table) EachStored(fn func(s, e int, v float64)) {
	if t.q != nil {
		for s := 0; s < t.n; s++ {
			row := t.q[s*t.n : (s+1)*t.n]
			for e, v := range row {
				if v != 0 {
					fn(s, e, v)
				}
			}
		}
		return
	}
	var es []int32
	for s := range t.rows {
		r := &t.rows[s]
		if r.used == 0 {
			continue
		}
		es = es[:0]
		for i, k := range r.keys {
			if k >= 0 && r.vals[i] != 0 {
				es = append(es, k)
			}
		}
		sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
		for _, e := range es {
			fn(s, int(e), r.get(e))
		}
	}
}

// Clone returns a deep copy of the table, preserving its representation.
func (t *Table) Clone() *Table {
	if t.q != nil {
		c := &Table{n: t.n, q: make([]float64, len(t.q))}
		copy(c.q, t.q)
		return c
	}
	c := &Table{n: t.n, rows: make([]oaRow, len(t.rows))}
	for i := range t.rows {
		c.rows[i] = t.rows[i].clone()
	}
	return c
}

// Fill sets every entry to v (useful for optimistic initialization).
// Filling a sparse-backed table with a non-zero value materializes the
// dense representation — optimistic initialization is inherently dense,
// and callers above the dense threshold should prefer zero init.
func (t *Table) Fill(v float64) {
	if t.q == nil {
		if v == 0 {
			for i := range t.rows {
				t.rows[i].reset()
			}
			return
		}
		t.q = make([]float64, t.n*t.n)
		t.rows = nil
	}
	for i := range t.q {
		t.q[i] = v
	}
}

// MaxAbs returns the largest |Q(s,e)| in the table; 0 for an empty table.
func (t *Table) MaxAbs() float64 {
	var m float64
	if t.q != nil {
		for _, v := range t.q {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	}
	for s := range t.rows {
		r := &t.rows[s]
		for i, k := range r.keys {
			if k < 0 {
				continue
			}
			if a := math.Abs(r.vals[i]); a > m {
				m = a
			}
		}
	}
	return m
}

// snapshot is the serialized form shared by gob and JSON. Dense tables
// fill Q (the historical layout, byte-identical with prior releases);
// sparse tables fill the coordinate triples S/E/V sorted by (s, e), so
// identical tables always encode to identical bytes. Exactly one payload
// is present; gob matches fields by name, so either generation of reader
// decodes either layout it knows about.
type snapshot struct {
	N int       `json:"n"`
	Q []float64 `json:"q,omitempty"`
	S []int32   `json:"s,omitempty"`
	E []int32   `json:"e,omitempty"`
	V []float64 `json:"v,omitempty"`
}

func (t *Table) snapshot() snapshot {
	if t.q != nil {
		return snapshot{N: t.n, Q: t.q}
	}
	snap := snapshot{N: t.n}
	t.EachStored(func(s, e int, v float64) {
		snap.S = append(snap.S, int32(s))
		snap.E = append(snap.E, int32(e))
		snap.V = append(snap.V, v)
	})
	return snap
}

// WriteGob writes the table in gob encoding.
func (t *Table) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t.snapshot())
}

// ReadGob reads a table previously written with WriteGob.
func ReadGob(r io.Reader) (*Table, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("qtable: decode gob: %w", err)
	}
	return fromSnapshot(s)
}

// WriteJSON writes the table as JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.snapshot())
}

// ReadJSON reads a table previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Table, error) {
	var s snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("qtable: decode json: %w", err)
	}
	return fromSnapshot(s)
}

func fromSnapshot(s snapshot) (*Table, error) {
	if len(s.S) == 0 && len(s.E) == 0 && len(s.V) == 0 {
		if s.N < 0 || len(s.Q) != s.N*s.N {
			return nil, fmt.Errorf("qtable: corrupt snapshot: n=%d, %d values", s.N, len(s.Q))
		}
		return &Table{n: s.N, q: s.Q}, nil
	}
	if s.N < 0 || len(s.Q) != 0 || len(s.S) != len(s.E) || len(s.S) != len(s.V) {
		return nil, fmt.Errorf("qtable: corrupt snapshot: n=%d, %d/%d/%d coordinates",
			s.N, len(s.S), len(s.E), len(s.V))
	}
	t := &Table{n: s.N, rows: make([]oaRow, s.N)}
	for i := range s.S {
		se, e := int(s.S[i]), int(s.E[i])
		if se < 0 || se >= s.N || e < 0 || e >= s.N {
			return nil, fmt.Errorf("qtable: corrupt snapshot: entry (%d,%d) out of range [0,%d)", se, e, s.N)
		}
		t.Set(se, e, s.V[i])
	}
	return t, nil
}
