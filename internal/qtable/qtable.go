// Package qtable provides the dense |I|×|I| action-value table of §III-C.
// Q(s, e) estimates the value of taking action e (moving to item e) from
// state s (item s). The table supports masked arg-max queries (exclude
// already-chosen items), snapshot persistence in both gob (compact) and
// JSON (interoperable) encodings, and deterministic tie-breaking hooks.
package qtable

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Table is a dense action-value table over n items. The zero Table is not
// usable; construct with New.
//
// Concurrency: Table does no locking. Mutators (Set, Update, Fill) must
// not run concurrently with anything else, but once learning completes
// the table is effectively immutable and the read-only methods (Get,
// ArgMax, ArgMaxTies, Row, MaxAbs, WriteGob, WriteJSON) are safe to call
// from any number of goroutines — the experiment pool relies on this to
// share a learned policy across parallel evaluation runs.
type Table struct {
	n int
	q []float64 // row-major: q[s*n+e]
}

// New returns an n×n table of zeros.
func New(n int) *Table {
	if n < 0 {
		panic(fmt.Sprintf("qtable: negative size %d", n))
	}
	return &Table{n: n, q: make([]float64, n*n)}
}

// Size returns n, the number of items (states).
func (t *Table) Size() int { return t.n }

func (t *Table) check(s, e int) {
	if s < 0 || s >= t.n || e < 0 || e >= t.n {
		panic(fmt.Sprintf("qtable: index (%d,%d) out of range [0,%d)", s, e, t.n))
	}
}

// Get returns Q(s, e).
func (t *Table) Get(s, e int) float64 {
	t.check(s, e)
	return t.q[s*t.n+e]
}

// rowView returns Q(s, ·) as a view into the table's backing array,
// without copying and without bounds-checking s — the accessor the
// compiled-policy builder and the arg-max scans use on indices they
// already validated. Callers must guarantee 0 <= s < n and must not
// mutate the returned slice.
func (t *Table) rowView(s int) []float64 {
	return t.q[s*t.n : (s+1)*t.n]
}

// Set assigns Q(s, e) = v.
func (t *Table) Set(s, e int, v float64) {
	t.check(s, e)
	t.q[s*t.n+e] = v
}

// Update applies the SARSA temporal-difference update of Equation 9:
//
//	Q(s,e) ← Q(s,e) + α[r + γ·Q(s',e') − Q(s,e)]
//
// and returns the new value. Each index pair is bounds-checked exactly
// once: the bootstrap value is read directly rather than through Get,
// which would re-check what Update already validated — this sits on the
// learning hot loop, one call per episode step.
func (t *Table) Update(s, e int, alpha, r, gamma float64, sNext, eNext int) float64 {
	t.check(s, e)
	target := r
	if sNext >= 0 && eNext >= 0 {
		t.check(sNext, eNext)
		target += gamma * t.q[sNext*t.n+eNext]
	}
	i := s*t.n + e
	t.q[i] += alpha * (target - t.q[i])
	return t.q[i]
}

// ArgMax returns the action e maximizing Q(s, e) among those allowed by
// the mask (allowed == nil means every action). Ties resolve to the lowest
// index for determinism; callers wanting random tie-breaks use ArgMaxTies.
// ok is false when no action is allowed.
func (t *Table) ArgMax(s int, allowed func(e int) bool) (e int, ok bool) {
	if t.n == 0 {
		return -1, false
	}
	t.check(s, 0)
	row := t.rowView(s)
	return scanArgMax(t.n, func(a int) float64 { return row[a] }, allowed)
}

// ArgMaxTies returns every action tied for the maximum Q(s, e) among the
// allowed ones. The result is nil when no action is allowed.
func (t *Table) ArgMaxTies(s int, allowed func(e int) bool) []int {
	return t.AppendArgMaxTies(s, allowed, nil)
}

// AppendArgMaxTies appends to buf every allowed action tied for the
// maximal Q(s, ·), in ascending index order, and returns buf — the
// allocation-free form serving walks reuse a buffer through.
func (t *Table) AppendArgMaxTies(s int, allowed func(e int) bool, buf []int) []int {
	if t.n == 0 {
		return buf
	}
	t.check(s, 0)
	row := t.rowView(s)
	return scanAppendArgMaxTies(t.n, func(a int) float64 { return row[a] }, allowed, buf)
}

// Row returns a copy of Q(s, ·).
func (t *Table) Row(s int) []float64 {
	t.check(s, 0)
	return append([]float64(nil), t.q[s*t.n:(s+1)*t.n]...)
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := New(t.n)
	copy(c.q, t.q)
	return c
}

// Fill sets every entry to v (useful for optimistic initialization).
func (t *Table) Fill(v float64) {
	for i := range t.q {
		t.q[i] = v
	}
}

// MaxAbs returns the largest |Q(s,e)| in the table; 0 for an empty table.
func (t *Table) MaxAbs() float64 {
	var m float64
	for _, v := range t.q {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// snapshot is the serialized form shared by gob and JSON.
type snapshot struct {
	N int       `json:"n"`
	Q []float64 `json:"q"`
}

// WriteGob writes the table in gob encoding.
func (t *Table) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(snapshot{N: t.n, Q: t.q})
}

// ReadGob reads a table previously written with WriteGob.
func ReadGob(r io.Reader) (*Table, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("qtable: decode gob: %w", err)
	}
	return fromSnapshot(s)
}

// WriteJSON writes the table as JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(snapshot{N: t.n, Q: t.q})
}

// ReadJSON reads a table previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Table, error) {
	var s snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("qtable: decode json: %w", err)
	}
	return fromSnapshot(s)
}

func fromSnapshot(s snapshot) (*Table, error) {
	if s.N < 0 || len(s.Q) != s.N*s.N {
		return nil, fmt.Errorf("qtable: corrupt snapshot: n=%d, %d values", s.N, len(s.Q))
	}
	return &Table{n: s.N, q: s.Q}, nil
}
