package qtable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOverlayReadsThroughToBase(t *testing.T) {
	base := New(4)
	base.Set(0, 1, 2)
	base.Set(2, 3, -1)
	o := NewOverlay(base, 0)
	if o.Size() != 4 || o.Base() != Reader(base) {
		t.Fatal("Size/Base mismatch")
	}
	if o.Get(0, 1) != 2 || o.Get(2, 3) != -1 || o.Get(1, 1) != 0 {
		t.Fatal("empty overlay did not read through")
	}
	o.Set(0, 1, 9)
	if o.Get(0, 1) != 9 {
		t.Fatal("shadow value not returned")
	}
	if base.Get(0, 1) != 2 {
		t.Fatal("Set mutated the base (copy-on-write violated)")
	}
	// Unshadowed cell in a shadowed row still reads the base.
	if o.Get(0, 2) != base.Get(0, 2) {
		t.Fatal("shadowed row hid base cells")
	}
	o.Bump(2, 3, 0.5)
	if o.Get(2, 3) != -0.5 {
		t.Fatalf("Bump = %v, want -0.5", o.Get(2, 3))
	}
}

func TestOverlayArgMaxMergesLayers(t *testing.T) {
	base := New(3)
	base.Set(0, 0, 1)
	base.Set(0, 2, 5)
	o := NewOverlay(base, 0)
	// Promote action 1 above the base's best.
	o.Set(0, 1, 7)
	if e, ok := o.ArgMax(0, nil); !ok || e != 1 {
		t.Fatalf("ArgMax = %d,%v want 1", e, ok)
	}
	// Demote it below everything: base order resurfaces under the merge.
	o.Set(0, 1, -7)
	if e, ok := o.ArgMax(0, nil); !ok || e != 2 {
		t.Fatalf("ArgMax after demotion = %d,%v want 2", e, ok)
	}
	// Mask away the winner.
	if e, ok := o.ArgMax(0, func(a int) bool { return a != 2 }); !ok || e != 0 {
		t.Fatalf("masked ArgMax = %d,%v want 0", e, ok)
	}
	// Shadow a tie with the base's best: ties resolve to the lowest index.
	o.Set(0, 1, 5)
	ties := o.AppendArgMaxTies(0, nil, nil)
	if len(ties) != 2 || ties[0] != 1 || ties[1] != 2 {
		t.Fatalf("ties = %v", ties)
	}
	// Rows without overlay cells delegate to the base untouched.
	if e, ok := o.ArgMax(1, nil); !ok || e != 0 {
		t.Fatalf("unshadowed row ArgMax = %d,%v", e, ok)
	}
}

func TestOverlayEviction(t *testing.T) {
	base := New(8)
	o := NewOverlay(base, 4)
	// Fill rows 0..3 with one cell each, then overflow.
	for s := 0; s < 4; s++ {
		o.Set(s, 0, float64(s+1))
	}
	if o.Cells() != 4 || o.RowCount() != 4 || o.Evictions() != 0 {
		t.Fatalf("pre-eviction: cells=%d rows=%d ev=%d", o.Cells(), o.RowCount(), o.Evictions())
	}
	// Touch row 0 so row 1 becomes the LRU victim.
	_ = o.Get(0, 0)
	o.Set(4, 0, 9)
	if o.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", o.Evictions())
	}
	if o.HasRow(1) {
		t.Fatal("LRU row 1 survived eviction")
	}
	if !o.HasRow(0) || !o.HasRow(4) {
		t.Fatal("recently touched rows were evicted")
	}
	// Evicted cells fall back to the base.
	if o.Get(1, 0) != 0 {
		t.Fatalf("evicted cell reads %v, want base 0", o.Get(1, 0))
	}
	// A single row larger than the cap survives (no thrash).
	big := NewOverlay(base, 2)
	for e := 0; e < 5; e++ {
		big.Set(3, e, 1)
	}
	if big.RowCount() != 1 || big.Cells() != 5 {
		t.Fatalf("oversized row: rows=%d cells=%d", big.RowCount(), big.Cells())
	}
	if big.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive for non-empty overlay")
	}
	big.Reset()
	if big.Cells() != 0 || big.RowCount() != 0 || big.HasRow(3) {
		t.Fatal("Reset left state behind")
	}
}

func TestOverlayExportDeltaReplaysOntoBase(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		base := New(n)
		for s := 0; s < n; s++ {
			for e := 0; e < n; e++ {
				base.Set(s, e, rng.NormFloat64())
			}
		}
		o := NewOverlay(base, 0)
		for i := 0; i < 3*n; i++ {
			o.Set(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
		}
		d := o.ExportDelta()
		if d.Len() != o.Cells() {
			return false
		}
		// Ops come out in deterministic (s, e) order.
		prevS, prevE := -1, -1
		ordered := true
		d.Each(func(s, e int, _ float64) {
			if s < prevS || (s == prevS && e <= prevE) {
				ordered = false
			}
			prevS, prevE = s, e
		})
		if !ordered {
			return false
		}
		// Replaying with alpha=1 onto a base clone reproduces the layered
		// reads exactly: q += 1·(target − q) = target.
		merged := base.Clone()
		merged.Merge(d, 1)
		for s := 0; s < n; s++ {
			for e := 0; e < n; e++ {
				if merged.Get(s, e) != o.Get(s, e) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayPanics(t *testing.T) {
	base := New(3)
	o := NewOverlay(base, 0)
	for _, fn := range []func(){
		func() { o.Get(3, 0) },
		func() { o.Set(0, -1, 1) },
		func() { NewOverlay(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// BenchmarkOverlayArgMax contrasts the unshadowed delegation path
// (compiled walk cost) with the shadowed merged scan.
func BenchmarkOverlayArgMax(b *testing.B) {
	const n = 256
	base := New(n)
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			base.Set(s, e, rng.NormFloat64())
		}
	}
	compiled := Compile(base, 0)
	mask := func(e int) bool { return e%7 != 0 }
	b.Run("unshadowed", func(b *testing.B) {
		o := NewOverlay(compiled, 0)
		o.Set(0, 0, 1) // some overlay content, but not on the probed rows
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.ArgMax(1+i%(n-1), mask)
		}
	})
	b.Run("shadowed", func(b *testing.B) {
		o := NewOverlay(compiled, 0)
		for s := 0; s < n; s++ {
			o.Set(s, s, 1)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.ArgMax(i%n, mask)
		}
	})
}
