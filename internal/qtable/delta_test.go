package qtable

import (
	"math/rand"
	"testing"
)

// TestMergeMatchesSequentialUpdates: replaying a delta must produce the
// exact floating-point result of applying the same (s, e, target)
// updates directly with Update, in the same order.
func TestMergeMatchesSequentialUpdates(t *testing.T) {
	const n, ops = 7, 200
	const alpha = 0.75
	rng := rand.New(rand.NewSource(42))

	direct := New(n)
	d := NewDelta(n)
	type op struct {
		s, e   int
		target float64
	}
	recorded := make([]op, 0, ops)
	for i := 0; i < ops; i++ {
		recorded = append(recorded, op{rng.Intn(n), rng.Intn(n), rng.NormFloat64()})
	}
	for _, o := range recorded {
		d.Record(o.s, o.e, o.target)
	}
	if d.Len() != ops {
		t.Fatalf("Len = %d, want %d", d.Len(), ops)
	}

	// Direct application: Update with sNext = -1 applies exactly
	// q += alpha*(r - q), i.e. target == r.
	for _, o := range recorded {
		direct.Update(o.s, o.e, alpha, o.target, 0.95, -1, -1)
	}
	merged := New(n)
	merged.Merge(d, alpha)

	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			if got, want := merged.Get(s, e), direct.Get(s, e); got != want {
				t.Fatalf("Q(%d,%d): merged %v != direct %v", s, e, got, want)
			}
		}
	}
}

// TestMergeChainsRepeatedPairs: two ops on one (s,e) pair must chain —
// the second op reads the first one's result, not the base value.
func TestMergeChainsRepeatedPairs(t *testing.T) {
	tab := New(2)
	d := NewDelta(2)
	d.Record(0, 1, 1.0)
	d.Record(0, 1, 1.0)
	tab.Merge(d, 0.5)
	// 0 -> 0.5 -> 0.75, not 0.5 twice from base 0.
	if got := tab.Get(0, 1); got != 0.75 {
		t.Fatalf("chained merge: got %v, want 0.75", got)
	}
}

func TestDeltaReset(t *testing.T) {
	d := NewDelta(3)
	d.Record(0, 1, 2.0)
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", d.Len())
	}
	tab := New(3)
	tab.Merge(d, 0.5)
	if got := tab.Get(0, 1); got != 0 {
		t.Fatalf("merge of reset delta mutated table: %v", got)
	}
}

func TestDeltaBoundsPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	d := NewDelta(3)
	mustPanic("row out of range", func() { d.Record(3, 0, 1) })
	mustPanic("col negative", func() { d.Record(0, -1, 1) })
	mustPanic("size mismatch", func() { New(4).Merge(d, 0.5) })
}
