package qtable

// Reader is the read surface of an action-value table — the interface
// every Q consumer on the serving path depends on, so the concrete
// representation (dense Table, map-backed Sparse, compiled action order,
// per-user Overlay) stays an implementation detail of this package.
//
// All implementations agree exactly on semantics: absent entries read as
// 0, ArgMax breaks ties to the lowest index, and AppendArgMaxTies
// appends the maximal actions in strict q-descending / index-ascending
// order (the total order Compiled materializes). The cross-
// implementation equivalence property test (reader_test.go) pins this.
//
// Readers are safe for concurrent use once their backing storage is
// frozen; Overlay additionally tolerates one concurrent writer per
// overlay (its own documented contract).
type Reader interface {
	// Size returns n, the number of items (states).
	Size() int
	// Get returns Q(s, e); 0 when never written.
	Get(s, e int) float64
	// ArgMax returns the allowed action maximizing Q(s, ·), ties to the
	// lowest index (allowed == nil admits every action). ok is false
	// when no action is allowed.
	ArgMax(s int, allowed func(e int) bool) (int, bool)
	// AppendArgMaxTies appends to buf every allowed action tied for the
	// maximal Q(s, ·), in ascending index order, and returns buf.
	AppendArgMaxTies(s int, allowed func(e int) bool, buf []int) []int
}

var (
	_ Reader = (*Table)(nil)
	_ Reader = (*Sparse)(nil)
	_ Reader = (*Compiled)(nil)
	_ Reader = (*Overlay)(nil)
	_ Reader = (*Tiered)(nil)
)

// scanArgMax is the one allowed-scan arg-max every implementation
// shares: it scans e in [0, n) reading values through val, skipping
// actions the mask rejects, and returns the maximal action with ties
// resolved to the lowest index. The val closure never escapes, so
// callers can build it over a stack-local row view without allocating.
func scanArgMax(n int, val func(e int) float64, allowed func(e int) bool) (int, bool) {
	var best float64
	e, found := -1, false
	for a := 0; a < n; a++ {
		if allowed != nil && !allowed(a) {
			continue
		}
		if v := val(a); !found || v > best {
			best, e, found = v, a, true
		}
	}
	return e, found
}

// scanAppendArgMaxTies is the shared allowed-scan tie collector: it
// appends every allowed action tied for the maximal value to buf in
// ascending index order. When a new maximum appears, the earlier ties
// are discarded in place, so the scan allocates only if buf must grow.
func scanAppendArgMaxTies(n int, val func(e int) float64, allowed func(e int) bool, buf []int) []int {
	var best float64
	found := false
	mark := len(buf)
	for a := 0; a < n; a++ {
		if allowed != nil && !allowed(a) {
			continue
		}
		v := val(a)
		switch {
		case !found || v > best:
			best, found = v, true
			buf = buf[:mark]
			buf = append(buf, a)
		case v == best:
			buf = append(buf, a)
		}
	}
	return buf
}
