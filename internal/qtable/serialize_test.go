package qtable

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSparse(rng *rand.Rand) *Sparse {
	n := 1 + rng.Intn(16)
	q := NewSparse(n)
	for i := 0; i < 2*n; i++ {
		q.Set(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	return q
}

func sparseEqual(a, b *Sparse) bool {
	if a.Size() != b.Size() || a.Entries() != b.Entries() {
		return false
	}
	for s := 0; s < a.Size(); s++ {
		for e := 0; e < a.Size(); e++ {
			if a.Get(s, e) != b.Get(s, e) {
				return false
			}
		}
	}
	return true
}

// TestPropertySparseRoundTrip: random sparse tables survive both
// encodings bit-exactly, and re-encoding yields identical bytes — the
// snapshot's (s, e) sort makes serialization independent of map
// iteration order.
func TestPropertySparseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomSparse(rng)
		var gobBuf, jsonBuf bytes.Buffer
		if err := q.WriteGob(&gobBuf); err != nil {
			return false
		}
		if err := q.WriteJSON(&jsonBuf); err != nil {
			return false
		}
		fromGob, err := ReadSparseGob(bytes.NewReader(gobBuf.Bytes()))
		if err != nil || !sparseEqual(q, fromGob) {
			return false
		}
		fromJSON, err := ReadSparseJSON(bytes.NewReader(jsonBuf.Bytes()))
		if err != nil || !sparseEqual(q, fromJSON) {
			return false
		}
		// Deterministic bytes: encoding the decoded copy reproduces the
		// original stream exactly for both codecs.
		var gob2, json2 bytes.Buffer
		if err := fromGob.WriteGob(&gob2); err != nil {
			return false
		}
		if err := fromJSON.WriteJSON(&json2); err != nil {
			return false
		}
		return bytes.Equal(gobBuf.Bytes(), gob2.Bytes()) && bytes.Equal(jsonBuf.Bytes(), json2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDenseRoundTrip is the dense twin — random tables through
// gob and JSON, byte-deterministic on re-encode.
func TestPropertyDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		q := New(n)
		for i := 0; i < 2*n; i++ {
			q.Set(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
		}
		var gobBuf, jsonBuf bytes.Buffer
		if q.WriteGob(&gobBuf) != nil || q.WriteJSON(&jsonBuf) != nil {
			return false
		}
		fromGob, err := ReadGob(bytes.NewReader(gobBuf.Bytes()))
		if err != nil || !equal(q, fromGob) {
			return false
		}
		fromJSON, err := ReadJSON(bytes.NewReader(jsonBuf.Bytes()))
		if err != nil || !equal(q, fromJSON) {
			return false
		}
		var gob2 bytes.Buffer
		return fromGob.WriteGob(&gob2) == nil && bytes.Equal(gobBuf.Bytes(), gob2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOverlayExportSurvivesSerialization closes the loop the
// personalization plane ships through: overlay → ExportDelta → merged
// dense table → gob/JSON → decode, with the decoded table still reading
// exactly like the layered view.
func TestPropertyOverlayExportSurvivesSerialization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		base := New(n)
		for s := 0; s < n; s++ {
			for e := 0; e < n; e++ {
				base.Set(s, e, rng.NormFloat64())
			}
		}
		o := NewOverlay(base, 0)
		for i := 0; i < 2*n; i++ {
			o.Set(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
		}
		merged := base.Clone()
		merged.Merge(o.ExportDelta(), 1)
		var buf bytes.Buffer
		if merged.WriteGob(&buf) != nil {
			return false
		}
		decoded, err := ReadGob(&buf)
		if err != nil {
			return false
		}
		for s := 0; s < n; s++ {
			for e := 0; e < n; e++ {
				if decoded.Get(s, e) != o.Get(s, e) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadSparseRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"n":-1,"s":[],"e":[],"v":[]}`,       // negative size
		`{"n":3,"s":[0,1],"e":[0],"v":[1,2]}`, // ragged coordinates
		`{"n":3,"s":[0],"e":[3],"v":[1]}`,     // action out of range
		`{"n":3,"s":[-1],"e":[0],"v":[1]}`,    // state out of range
		`{`,                                   // truncated
	}
	for _, c := range cases {
		if _, err := ReadSparseJSON(bytes.NewReader([]byte(c))); err == nil {
			t.Fatalf("corrupt snapshot accepted: %s", c)
		}
	}
	if _, err := ReadSparseGob(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk gob accepted")
	}
}

// FuzzReadSparseJSON: arbitrary bytes must either decode into a
// structurally valid table or fail with an error — never panic, and
// never yield a table whose reads escape its declared bounds.
func FuzzReadSparseJSON(f *testing.F) {
	f.Add([]byte(`{"n":3,"s":[0,2],"e":[1,2],"v":[0.5,-1]}`))
	f.Add([]byte(`{"n":0,"s":[],"e":[],"v":[]}`))
	f.Add([]byte(`{"n":2,"s":[1],"e":[3],"v":[1]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ReadSparseJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := q.Size()
		if n < 0 {
			t.Fatalf("decoded negative size %d", n)
		}
		for s := 0; s < n && s < 8; s++ {
			for e := 0; e < n && e < 8; e++ {
				_ = q.Get(s, e)
			}
		}
		var buf bytes.Buffer
		if err := q.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode of decoded table failed: %v", err)
		}
	})
}

// FuzzReadGob: the dense decoder under arbitrary input — error or a
// table consistent with its size, never a panic.
func FuzzReadGob(f *testing.F) {
	var seed bytes.Buffer
	q := New(3)
	q.Set(0, 2, 1.5)
	_ = q.WriteGob(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadGob(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := got.Size()
		for s := 0; s < n && s < 8; s++ {
			_ = got.Get(s, 0)
		}
	})
}
