package qtable

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGetSet(t *testing.T) {
	q := New(4)
	if q.Size() != 4 {
		t.Fatalf("Size = %d", q.Size())
	}
	q.Set(1, 2, 3.5)
	if q.Get(1, 2) != 3.5 {
		t.Fatalf("Get = %v", q.Get(1, 2))
	}
	if q.Get(2, 1) != 0 {
		t.Fatal("transpose entry should be untouched")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	q := New(3)
	for _, fn := range []func(){
		func() { q.Get(3, 0) },
		func() { q.Set(0, -1, 1) },
		func() { q.Row(3) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestUpdateEquation9(t *testing.T) {
	// Q(s,e) ← Q(s,e) + α[r + γQ(s',e') − Q(s,e)]
	q := New(3)
	q.Set(0, 1, 2)
	q.Set(1, 2, 4)
	got := q.Update(0, 1, 0.5, 1, 0.9, 1, 2)
	want := 2 + 0.5*(1+0.9*4-2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Update = %v, want %v", got, want)
	}
	if q.Get(0, 1) != got {
		t.Fatal("Update did not persist")
	}
}

func TestUpdateTerminal(t *testing.T) {
	// Negative next state/action = terminal: target is just r.
	q := New(2)
	q.Set(0, 1, 1)
	got := q.Update(0, 1, 0.5, 3, 0.9, -1, -1)
	want := 1 + 0.5*(3-1)
	if got != want {
		t.Fatalf("terminal Update = %v, want %v", got, want)
	}
}

func TestArgMax(t *testing.T) {
	q := New(4)
	q.Set(0, 1, 5)
	q.Set(0, 2, 7)
	q.Set(0, 3, 7)
	e, ok := q.ArgMax(0, nil)
	if !ok || e != 2 {
		t.Fatalf("ArgMax = %d,%v want 2 (lowest tie)", e, ok)
	}
	// Masked: exclude 2 → 3 wins.
	e, ok = q.ArgMax(0, func(a int) bool { return a != 2 })
	if !ok || e != 3 {
		t.Fatalf("masked ArgMax = %d,%v want 3", e, ok)
	}
	// Nothing allowed.
	if _, ok := q.ArgMax(0, func(int) bool { return false }); ok {
		t.Fatal("empty mask returned ok")
	}
}

func TestArgMaxNegativeValues(t *testing.T) {
	q := New(3)
	q.Set(0, 0, -5)
	q.Set(0, 1, -2)
	q.Set(0, 2, -9)
	e, ok := q.ArgMax(0, func(a int) bool { return a != 1 })
	if !ok || e != 0 {
		t.Fatalf("ArgMax over negatives = %d,%v want 0", e, ok)
	}
}

func TestArgMaxTies(t *testing.T) {
	q := New(4)
	q.Set(1, 0, 3)
	q.Set(1, 2, 3)
	q.Set(1, 3, 1)
	ties := q.ArgMaxTies(1, nil)
	if len(ties) != 2 || ties[0] != 0 || ties[1] != 2 {
		t.Fatalf("ties = %v", ties)
	}
	if ties := q.ArgMaxTies(1, func(int) bool { return false }); ties != nil {
		t.Fatalf("ties with empty mask = %v", ties)
	}
}

func TestRowCloneFill(t *testing.T) {
	q := New(3)
	q.Set(1, 2, 9)
	row := q.Row(1)
	row[0] = 42
	if q.Get(1, 0) == 42 {
		t.Fatal("Row leaked internal storage")
	}
	c := q.Clone()
	c.Set(0, 0, 7)
	if q.Get(0, 0) == 7 {
		t.Fatal("Clone shares storage")
	}
	q.Fill(1.5)
	if q.Get(2, 2) != 1.5 || q.Get(0, 0) != 1.5 {
		t.Fatal("Fill incomplete")
	}
	if q.MaxAbs() != 1.5 {
		t.Fatalf("MaxAbs = %v", q.MaxAbs())
	}
}

func TestGobRoundTrip(t *testing.T) {
	q := New(5)
	r := rand.New(rand.NewSource(1))
	for s := 0; s < 5; s++ {
		for e := 0; e < 5; e++ {
			q.Set(s, e, r.NormFloat64())
		}
	}
	var buf bytes.Buffer
	if err := q.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(q, got) {
		t.Fatal("gob round trip mismatch")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	q := New(3)
	q.Set(0, 2, -1.25)
	var buf bytes.Buffer
	if err := q.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(q, got) {
		t.Fatal("json round trip mismatch")
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"n":3,"q":[1,2]}`))); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{`))); err == nil {
		t.Fatal("truncated json accepted")
	}
	if _, err := ReadGob(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk gob accepted")
	}
}

func TestPropertyUpdateContraction(t *testing.T) {
	// With r = 0, terminal next state and α ∈ (0,1], |Q| shrinks.
	f := func(v float64, aRaw uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		alpha := float64(aRaw%100+1) / 100
		q := New(1)
		q.Set(0, 0, v)
		got := q.Update(0, 0, alpha, 0, 0.9, -1, -1)
		return math.Abs(got) <= math.Abs(v)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyArgMaxIsMaximal(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		n := 2 + int(uint(seed)%20)
		q := New(n)
		for s := 0; s < n; s++ {
			for e := 0; e < n; e++ {
				q.Set(s, e, r.NormFloat64())
			}
		}
		s := int(uint(seed) % uint(n))
		e, ok := q.ArgMax(s, nil)
		if !ok {
			return false
		}
		for a := 0; a < n; a++ {
			if q.Get(s, a) > q.Get(s, e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func equal(a, b *Table) bool {
	if a.Size() != b.Size() {
		return false
	}
	for s := 0; s < a.Size(); s++ {
		for e := 0; e < a.Size(); e++ {
			if a.Get(s, e) != b.Get(s, e) {
				return false
			}
		}
	}
	return true
}

func BenchmarkUpdate(b *testing.B) {
	q := New(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Update(i%128, (i+1)%128, 0.75, 1, 0.95, (i+2)%128, (i+3)%128)
	}
}

func BenchmarkArgMaxMasked(b *testing.B) {
	q := New(128)
	r := rand.New(rand.NewSource(3))
	for s := 0; s < 128; s++ {
		for e := 0; e < 128; e++ {
			q.Set(s, e, r.NormFloat64())
		}
	}
	mask := func(e int) bool { return e%7 != 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.ArgMax(i%128, mask)
	}
}
