package qtable

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randomValues fills a dense and an equal sparse table with clustered
// values so exact ties are common (the tie-break path is the risky one).
func randomValues(t *testing.T, rng *rand.Rand, n int) (*Table, *Sparse) {
	t.Helper()
	dense := New(n)
	sparse := NewSparse(n)
	vals := []float64{-2, -1, 0, 0.5, 1, 1, 2.5} // duplicates on purpose
	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			if rng.Float64() < 0.4 { // leave many zeros (sparse absences)
				continue
			}
			v := vals[rng.Intn(len(vals))]
			dense.Set(s, e, v)
			sparse.Set(s, e, v)
		}
	}
	return dense, sparse
}

func randomMask(rng *rand.Rand, n int) func(int) bool {
	if rng.Float64() < 0.1 {
		return nil // nil mask = everything allowed
	}
	allowed := make([]bool, n)
	any := false
	for i := range allowed {
		allowed[i] = rng.Float64() < 0.6
		any = any || allowed[i]
	}
	if !any && rng.Float64() < 0.5 {
		allowed[rng.Intn(n)] = true
	}
	return func(e int) bool { return allowed[e] }
}

// TestCompiledMatchesTableArgMax drives Compiled against the reference
// Table/Sparse scans over random tables, masks and prefix lengths —
// including k much smaller than n, so walks regularly exhaust the eager
// prefix and fall back to the lazy tail.
func TestCompiledMatchesTableArgMax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(24)
		dense, sparse := randomValues(t, rng, n)
		k := 1 + rng.Intn(n)
		for _, tc := range []struct {
			name string
			c    *Compiled
		}{
			{"dense", Compile(dense, k)},
			{"sparse", Compile(sparse, k)},
		} {
			for q := 0; q < 30; q++ {
				s := rng.Intn(n)
				mask := randomMask(rng, n)

				wantTies := dense.ArgMaxTies(s, mask)
				gotTies := tc.c.AppendArgMaxTies(s, mask, nil)
				if !reflect.DeepEqual(wantTies, normalize(gotTies)) {
					t.Fatalf("%s trial %d: ArgMaxTies(s=%d,k=%d) = %v, want %v",
						tc.name, trial, s, k, gotTies, wantTies)
				}

				wantBest, wantOK := dense.ArgMax(s, mask)
				gotBest, gotOK := tc.c.ArgMax(s, mask)
				if wantOK != gotOK || (wantOK && wantBest != gotBest) {
					t.Fatalf("%s trial %d: ArgMax(s=%d,k=%d) = (%d,%v), want (%d,%v)",
						tc.name, trial, s, k, gotBest, gotOK, wantBest, wantOK)
				}
			}
		}
	}
}

// normalize maps an empty non-nil slice to nil so DeepEqual compares
// result sets, not append bookkeeping.
func normalize(ties []int) []int {
	if len(ties) == 0 {
		return nil
	}
	return ties
}

// TestCompiledReusesBuffer checks the append contract: results land in
// the caller's buffer without reallocating when capacity suffices.
func TestCompiledReusesBuffer(t *testing.T) {
	dense := New(4)
	dense.Set(0, 1, 5)
	dense.Set(0, 3, 5)
	c := Compile(dense, 2)
	buf := make([]int, 0, 8)
	got := c.AppendArgMaxTies(0, nil, buf)
	if want := []int{1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ties = %v, want %v", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendArgMaxTies reallocated despite sufficient capacity")
	}
}

// TestCompiledConcurrentTailBuild hammers the lazy tail from many
// goroutines; run under -race this verifies the atomic publish (two
// builders may race, both compute the identical row, one wins).
func TestCompiledConcurrentTailBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dense, _ := randomValues(t, rng, 32)
	c := Compile(dense, 2) // tiny prefix: every full walk needs the tail
	none := func(int) bool { return false }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < 32; s++ {
				if _, ok := c.ArgMax(s, none); ok {
					t.Error("ArgMax under an all-false mask returned ok")
				}
				got := c.AppendArgMaxTies(s, nil, nil)
				want := dense.ArgMaxTies(s, nil)
				if !reflect.DeepEqual(normalize(got), normalize(want)) {
					t.Errorf("state %d: %v != %v", s, got, want)
				}
			}
		}()
	}
	wg.Wait()
}

// TestUpdateBoundsCheck keeps Update's validation intact after the
// single-check rewrite: out-of-range indices must still panic.
func TestUpdateBoundsCheck(t *testing.T) {
	tbl := New(3)
	for _, idx := range [][4]int{
		{-1, 0, -1, -1}, {0, 3, -1, -1}, {0, 0, 3, 0}, {0, 0, 1, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Update(%v) did not panic", idx)
				}
			}()
			tbl.Update(idx[0], idx[1], 0.5, 1, 0.9, idx[2], idx[3])
		}()
	}
	// The no-bootstrap sentinel (-1,-1) must keep working.
	if got := tbl.Update(0, 0, 0.5, 2, 0.9, -1, -1); got != 1 {
		t.Fatalf("Update terminal = %g, want 1", got)
	}
}
