package qtable

import (
	"container/list"
	"fmt"
	"sort"
)

// DefaultOverlayCells bounds an Overlay's stored cells when the caller
// does not choose a cap. At ~16 payload bytes per cell this keeps one
// user's personalization under a few hundred KB even with map overhead.
const DefaultOverlayCells = 4096

// Per-cell and per-row resident cost estimates for SizeBytes: a stored
// cell is an int32 key + float64 value plus Go map bucket overhead; a
// row adds its map header and LRU element.
const (
	overlayCellBytes = 48
	overlayRowBytes  = 160
)

// Overlay is a copy-on-write sparse delta layered over an immutable
// shared base: reads consult the overlay first, then the base, then
// default to zero (the base's own absent-entry default). It is the unit
// of fleet-scale personalization — millions of users share one trained
// base table and each carries only a thin overlay of feedback-driven
// corrections, instead of a private |I|² copy.
//
// Memory is bounded: stored cells are capped (DefaultOverlayCells when
// unset) and crossing the cap evicts whole least-recently-touched rows,
// never the row being written. An empty overlay reads bit-identically
// to its base — the property the serving path relies on to keep
// non-personalized plans byte-for-byte unchanged.
//
// An Overlay is NOT safe for concurrent use: one overlay belongs to one
// user, and the per-user store serializes access with a per-entry lock.
// The base it wraps must be frozen (Table, Sparse or Compiled after
// training), exactly as the serving layer already guarantees.
type Overlay struct {
	base     Reader
	n        int
	maxCells int
	cells    int
	rows     map[int32]*list.Element
	order    *list.List // front = most recently touched
	evicted  uint64
}

// overlayRow is one shadowed state's delta cells.
type overlayRow struct {
	s     int32
	cells map[int32]float64
}

// NewOverlay returns an empty overlay over base, storing at most
// maxCells shadowed values (DefaultOverlayCells when maxCells <= 0).
func NewOverlay(base Reader, maxCells int) *Overlay {
	if base == nil {
		panic("qtable: overlay over nil base")
	}
	if maxCells <= 0 {
		maxCells = DefaultOverlayCells
	}
	return &Overlay{
		base:     base,
		n:        base.Size(),
		maxCells: maxCells,
		rows:     make(map[int32]*list.Element),
		order:    list.New(),
	}
}

// Base returns the wrapped base reader.
func (o *Overlay) Base() Reader { return o.base }

// Size returns n, the number of items (states).
func (o *Overlay) Size() int { return o.n }

func (o *Overlay) check(s, e int) {
	if s < 0 || s >= o.n || e < 0 || e >= o.n {
		panic(fmt.Sprintf("qtable: index (%d,%d) out of range [0,%d)", s, e, o.n))
	}
}

// row returns state s's overlay row, nil when the state is unshadowed.
// touch moves the row to the recent end of the eviction order.
func (o *Overlay) row(s int, touch bool) *overlayRow {
	el, ok := o.rows[int32(s)]
	if !ok {
		return nil
	}
	if touch {
		o.order.MoveToFront(el)
	}
	return el.Value.(*overlayRow)
}

// Get returns Q(s, e): the overlay's shadow value when one is stored,
// the base value otherwise.
func (o *Overlay) Get(s, e int) float64 {
	o.check(s, e)
	if r := o.row(s, true); r != nil {
		if v, ok := r.cells[int32(e)]; ok {
			return v
		}
	}
	return o.base.Get(s, e)
}

// HasRow reports whether state s carries any overlay cells — the
// serving walk's branch between the compiled fast path (unshadowed
// rows) and the masked merged scan (shadowed ones).
func (o *Overlay) HasRow(s int) bool {
	_, ok := o.rows[int32(s)]
	return ok
}

// Set shadows Q(s, e) = v, copying the cell into the overlay without
// touching the base (copy-on-write). Storing may evict older rows to
// respect the cell cap; the row being written is never evicted.
func (o *Overlay) Set(s, e int, v float64) {
	o.check(s, e)
	r := o.row(s, true)
	if r == nil {
		r = &overlayRow{s: int32(s), cells: make(map[int32]float64, 4)}
		o.rows[int32(s)] = o.order.PushFront(r)
	}
	if _, ok := r.cells[int32(e)]; !ok {
		o.cells++
	}
	r.cells[int32(e)] = v
	o.evict()
}

// Bump adds dv to Q(s, e), reading through the layered view first — the
// primitive feedback signals apply ("nudge this transition up/down").
func (o *Overlay) Bump(s, e int, dv float64) {
	o.Set(s, e, o.Get(s, e)+dv)
}

// evict drops least-recently-touched rows until the stored cells fit
// the cap again. The most recently touched row (the one a write just
// landed in) always survives, so a single row larger than the cap is
// allowed rather than thrashing.
func (o *Overlay) evict() {
	for o.cells > o.maxCells && o.order.Len() > 1 {
		el := o.order.Back()
		r := el.Value.(*overlayRow)
		o.order.Remove(el)
		delete(o.rows, r.s)
		o.cells -= len(r.cells)
		o.evicted++
	}
}

// ArgMax returns the allowed action maximizing the layered Q(s, ·),
// ties to the lowest index. Unshadowed rows delegate to the base
// unchanged — over a Compiled base that is the prefix walk, so a user
// with feedback on a handful of states still serves every other state
// at the compiled fast-path cost.
func (o *Overlay) ArgMax(s int, allowed func(e int) bool) (int, bool) {
	if o.n == 0 {
		return -1, false
	}
	o.check(s, 0)
	r := o.row(s, true)
	if r == nil {
		return o.base.ArgMax(s, allowed)
	}
	return scanArgMax(o.n, func(a int) float64 {
		if v, ok := r.cells[int32(a)]; ok {
			return v
		}
		return o.base.Get(s, a)
	}, allowed)
}

// AppendArgMaxTies appends every allowed action tied for the layered
// maximum in ascending index order — the same strict q-desc/index-asc
// contract as every other Reader. Only shadowed rows pay the masked
// merged scan; the rest delegate to the base.
func (o *Overlay) AppendArgMaxTies(s int, allowed func(e int) bool, buf []int) []int {
	if o.n == 0 {
		return buf
	}
	o.check(s, 0)
	r := o.row(s, true)
	if r == nil {
		return o.base.AppendArgMaxTies(s, allowed, buf)
	}
	return scanAppendArgMaxTies(o.n, func(a int) float64 {
		if v, ok := r.cells[int32(a)]; ok {
			return v
		}
		return o.base.Get(s, a)
	}, allowed, buf)
}

// Cells returns the number of stored (shadowed) values.
func (o *Overlay) Cells() int { return o.cells }

// RowCount returns the number of shadowed states.
func (o *Overlay) RowCount() int { return o.order.Len() }

// Evictions returns how many rows the cell cap has evicted so far.
func (o *Overlay) Evictions() uint64 { return o.evicted }

// SizeBytes estimates the overlay's resident memory from its stored
// cells and rows — the figure the per-user store's byte budget and the
// overlay_bytes metric account with.
func (o *Overlay) SizeBytes() int {
	return o.cells*overlayCellBytes + o.order.Len()*overlayRowBytes
}

// Reset drops every shadowed cell, returning the overlay to
// reads-equal-base. Eviction counters survive (they are cumulative
// observability, not state).
func (o *Overlay) Reset() {
	o.rows = make(map[int32]*list.Element)
	o.order.Init()
	o.cells = 0
}

// ExportDelta records the overlay's shadowed cells as a Delta op-log in
// deterministic (state, action) order, with each op's target set to the
// absolute shadow value. Replaying it with Table.Merge(d, 1) onto a
// copy of the base reproduces the layered reads exactly — the
// densification/shipping form of a user's personalization.
func (o *Overlay) ExportDelta() *Delta {
	d := NewDelta(o.n)
	states := make([]int32, 0, len(o.rows))
	for s := range o.rows {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	for _, s := range states {
		r := o.rows[s].Value.(*overlayRow)
		es := make([]int32, 0, len(r.cells))
		for e := range r.cells {
			es = append(es, e)
		}
		sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
		for _, e := range es {
			d.Record(int(s), int(e), r.cells[e])
		}
	}
	return d
}
