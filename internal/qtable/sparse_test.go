package qtable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseBasics(t *testing.T) {
	q := NewSparse(4)
	if q.Size() != 4 || q.Entries() != 0 {
		t.Fatalf("fresh sparse: size=%d entries=%d", q.Size(), q.Entries())
	}
	q.Set(1, 2, 3.5)
	if q.Get(1, 2) != 3.5 || q.Get(2, 1) != 0 {
		t.Fatal("Get/Set mismatch")
	}
	if q.Entries() != 1 {
		t.Fatalf("entries = %d", q.Entries())
	}
	// Writing zero removes the entry.
	q.Set(1, 2, 0)
	if q.Entries() != 0 {
		t.Fatal("zero write kept the entry")
	}
}

func TestSparsePanics(t *testing.T) {
	q := NewSparse(3)
	for _, fn := range []func(){
		func() { q.Get(3, 0) },
		func() { q.Set(0, -1, 1) },
		func() { NewSparse(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSparseMatchesDenseUpdates(t *testing.T) {
	// The sparse table is behaviorally identical to the dense one under
	// random update/argmax workloads.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		dense := New(n)
		sparse := NewSparse(n)
		for op := 0; op < 60; op++ {
			s, e := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				v := rng.NormFloat64()
				dense.Set(s, e, v)
				sparse.Set(s, e, v)
			case 1:
				sn, en := rng.Intn(n), rng.Intn(n)
				a, r, g := rng.Float64(), rng.NormFloat64(), rng.Float64()
				if dense.Update(s, e, a, r, g, sn, en) != sparse.Update(s, e, a, r, g, sn, en) {
					return false
				}
			case 2:
				var mask func(int) bool
				if rng.Intn(2) == 0 {
					banned := rng.Intn(n)
					mask = func(a int) bool { return a != banned }
				}
				de, dok := dense.ArgMax(s, mask)
				se, sok := sparse.ArgMax(s, mask)
				if de != se || dok != sok {
					return false
				}
			}
		}
		// Full-table equality at the end.
		for s := 0; s < n; s++ {
			for e := 0; e < n; e++ {
				if dense.Get(s, e) != sparse.Get(s, e) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseArgMaxMatchesDense(t *testing.T) {
	// Dedicated ArgMax equivalence: the stored-row scan must agree with
	// Table.ArgMax everywhere, including the cases the fast path special-
	// cases — all-negative rows (where an absent entry's implicit 0 wins),
	// exact positive ties (lowest index wins), fully-populated rows and
	// restrictive masks.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		dense := New(n)
		sparse := NewSparse(n)
		// Values from a small discrete set force frequent exact ties; the
		// negative-leaning mix exercises the absent-beats-stored path.
		vals := []float64{-2, -1, -0.5, 0.5, 1, 2}
		fill := rng.Intn(3) // 0: sparse row, 1: dense-ish, 2: full
		for s := 0; s < n; s++ {
			for e := 0; e < n; e++ {
				if fill < 2 && rng.Intn(3) != fill {
					continue
				}
				v := vals[rng.Intn(len(vals))]
				dense.Set(s, e, v)
				sparse.Set(s, e, v)
			}
		}
		for trial := 0; trial < 2*n; trial++ {
			s := rng.Intn(n)
			var mask func(int) bool
			switch rng.Intn(3) {
			case 1:
				banned := rng.Intn(n)
				mask = func(a int) bool { return a != banned }
			case 2:
				keep := rng.Intn(n)
				mask = func(a int) bool { return a%(keep+1) == 0 }
			}
			de, dok := dense.ArgMax(s, mask)
			se, sok := sparse.ArgMax(s, mask)
			if de != se || dok != sok {
				t.Logf("n=%d s=%d: dense=(%d,%v) sparse=(%d,%v)", n, s, de, dok, se, sok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseToDense(t *testing.T) {
	q := NewSparse(5)
	q.Set(0, 4, 2)
	q.Set(3, 1, -1)
	d := q.ToDense()
	if d.Get(0, 4) != 2 || d.Get(3, 1) != -1 || d.Get(1, 1) != 0 {
		t.Fatal("ToDense mismatch")
	}
}

func BenchmarkSparseUpdate(b *testing.B) {
	q := NewSparse(1216)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Update(i%1216, (i+1)%1216, 0.75, 1, 0.95, (i+2)%1216, (i+3)%1216)
	}
}

// BenchmarkAblationQStorage contrasts dense and sparse storage on a
// institution-scale table under a SARSA-like access pattern.
func BenchmarkAblationQStorage(b *testing.B) {
	const n = 1216
	b.Run("dense", func(b *testing.B) {
		q := New(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.Update(i%n, (i+7)%n, 0.75, 1, 0.95, (i+7)%n, (i+13)%n)
			q.ArgMax(i%n, nil)
		}
	})
	b.Run("sparse", func(b *testing.B) {
		q := NewSparse(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.Update(i%n, (i+7)%n, 0.75, 1, 0.95, (i+7)%n, (i+13)%n)
			q.ArgMax(i%n, nil)
		}
	})
}
