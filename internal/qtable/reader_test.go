package qtable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// readerFromDense builds every Reader implementation over the same
// logical contents as the dense table: the map-backed sparse copy, a
// sparse-backed Table (the representation forced regardless of n), the
// compiled order (with a small k to force lazy-tail walks), the tiered
// reader over the sparse-backed table, an empty overlay on dense and
// sparse, and an overlay whose shadow cells happen to equal the base
// values (shadowed-but-identical rows must not change results).
func readersFromDense(dense *Table, rng *rand.Rand) map[string]Reader {
	n := dense.Size()
	sparse := NewSparse(n)
	sparseTable := &Table{n: n, rows: make([]oaRow, n)}
	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			if v := dense.Get(s, e); v != 0 {
				sparse.Set(s, e, v)
				sparseTable.Set(s, e, v)
			}
		}
	}
	k := 1
	if n > 0 {
		k = 1 + rng.Intn(n)
	}
	compiled := Compile(dense, k)
	shadow := NewOverlay(compiled, 0)
	for s := 0; s < n; s++ {
		if rng.Intn(2) == 0 {
			continue
		}
		for trial := 0; trial < 2; trial++ {
			e := rng.Intn(n)
			shadow.Set(s, e, dense.Get(s, e))
		}
	}
	return map[string]Reader{
		"table":          dense,
		"table/oarows":   sparseTable,
		"sparse":         sparse,
		"compiled":       compiled,
		"tiered":         NewTiered(sparseTable),
		"overlay/table":  NewOverlay(dense, 0),
		"overlay/sparse": NewOverlay(sparse, 0),
		"overlay/shadow": shadow,
	}
}

// TestReaderEquivalence is the cross-implementation equivalence
// property: every Reader — dense table, sparse-backed table, map
// sparse, compiled walk, tiered walk, and overlays (empty and
// value-identical shadows) — returns the same Get, ArgMax and
// AppendArgMaxTies results under random contents and masks.
func TestReaderEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(14)
		dense := New(n)
		// Discrete values force frequent exact ties; the negative lean
		// exercises absent-entry-wins paths in the sparse fast path.
		vals := []float64{-2, -1, -0.5, 0, 0.5, 1, 2}
		for s := 0; s < n; s++ {
			for e := 0; e < n; e++ {
				dense.Set(s, e, vals[rng.Intn(len(vals))])
			}
		}
		readers := readersFromDense(dense, rng)
		for trial := 0; trial < 3*n; trial++ {
			s := rng.Intn(n)
			var mask func(int) bool
			switch rng.Intn(4) {
			case 1:
				banned := rng.Intn(n)
				mask = func(a int) bool { return a != banned }
			case 2:
				mod := 1 + rng.Intn(n)
				mask = func(a int) bool { return a%mod == 0 }
			case 3:
				mask = func(a int) bool { return false }
			}
			wantE, wantOK := dense.ArgMax(s, mask)
			wantTies := dense.AppendArgMaxTies(s, mask, nil)
			e := rng.Intn(n)
			wantV := dense.Get(s, e)
			for name, r := range readers {
				if r.Size() != n {
					t.Logf("%s: Size = %d, want %d", name, r.Size(), n)
					return false
				}
				if v := r.Get(s, e); v != wantV {
					t.Logf("%s: Get(%d,%d) = %v, want %v", name, s, e, v, wantV)
					return false
				}
				gotE, gotOK := r.ArgMax(s, mask)
				if gotE != wantE || gotOK != wantOK {
					t.Logf("%s: ArgMax(%d) = (%d,%v), want (%d,%v)", name, s, gotE, gotOK, wantE, wantOK)
					return false
				}
				gotTies := r.AppendArgMaxTies(s, mask, nil)
				if len(gotTies) != len(wantTies) {
					t.Logf("%s: ties(%d) = %v, want %v", name, s, gotTies, wantTies)
					return false
				}
				for i := range gotTies {
					if gotTies[i] != wantTies[i] {
						t.Logf("%s: ties(%d) = %v, want %v", name, s, gotTies, wantTies)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendArgMaxTiesReusesBuffer pins the allocation-free contract:
// appending into a buffer with spare capacity must not reallocate and
// must preserve the prefix before the mark.
func TestAppendArgMaxTiesReusesBuffer(t *testing.T) {
	q := New(4)
	q.Set(0, 1, 3)
	q.Set(0, 3, 3)
	buf := make([]int, 1, 8)
	buf[0] = 99
	got := q.AppendArgMaxTies(0, nil, buf)
	if &got[0] != &buf[0] {
		t.Fatal("AppendArgMaxTies reallocated despite spare capacity")
	}
	if len(got) != 3 || got[0] != 99 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("AppendArgMaxTies = %v", got)
	}
}

// TestReaderZeroAllocReads pins the serving hot path at zero
// allocations per step for every Reader implementation: the scan
// closures must not escape, and the tie buffer must be reused, not
// regrown. A regression here silently turns every recommendation walk
// into a per-step allocator.
func TestReaderZeroAllocReads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 24
	dense := New(n)
	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			dense.Set(s, e, float64(rng.Intn(9)-4))
		}
	}
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = i%3 != 0
	}
	allowed := func(e int) bool { return mask[e] }
	buf := make([]int, 0, n)
	for name, r := range readersFromDense(dense, rng) {
		r := r
		for op, fn := range map[string]func(){
			"Get":    func() { _ = r.Get(3, 5) },
			"ArgMax": func() { _, _ = r.ArgMax(3, allowed) },
			"Ties":   func() { buf = r.AppendArgMaxTies(3, allowed, buf[:0]) },
		} {
			if avg := testing.AllocsPerRun(100, fn); avg != 0 {
				t.Errorf("%s.%s: %.1f allocs/op, want 0", name, op, avg)
			}
		}
	}
}
