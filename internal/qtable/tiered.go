package qtable

import (
	"fmt"
	"sort"
)

// Tiered is the serve-time Reader of a sparse-backed table — Compiled's
// role at catalog scale, built in O(stored · log) instead of Compile's
// O(n²k) scan. The dense total order (q-descending, index-ascending)
// decomposes into three tiers around zero:
//
//  1. the stored positive cells, eagerly sorted per row — the top-K
//     prefix generalized: its first entries are exactly what Compile
//     would materialize, and a masked arg-max usually stops here;
//  2. the zero class — every absent cell plus stored exact zeros, tied
//     at 0, ascending index — represented implicitly: a Bloom filter
//     over the stored non-zero cells answers "definitely absent" without
//     probing the row;
//  3. the stored negative cells, sorted, walked only when the mask
//     rejects every positive and every zero-class action.
//
// Walking tier 1, then 2, then 3 reproduces the dense order exactly, so
// Tiered satisfies the Reader contract bit for bit (the 8-way
// equivalence property test pins it). Memory follows the stored cells:
// order+values (12 bytes each) plus ~10 bloom bits, never n².
//
// Tiered reads the source table at build time and Get time; the table
// must already be frozen — the train-once / serve-many boundary the
// engine layer enforces.
type Tiered struct {
	n      int
	t      *Table
	offs   []int32   // n+1 row offsets into order/qvals
	order  []int32   // stored non-zero actions, q-desc / idx-asc per row
	qvals  []float64 // aligned with order
	posLen []int32   // per-row count of positive entries (tier-1 length)
	filter *bloom
}

// NewTiered builds the tiered reader for a frozen table. It accepts
// either representation — over a dense table the stored cells are its
// non-zeros, and the equivalence holds identically — but its reason to
// exist is the sparse form, where Policy.Compiled selects it instead of
// the quadratic Compile.
func NewTiered(t *Table) *Tiered {
	if t == nil {
		panic("qtable: tiered over nil table")
	}
	n := t.Size()
	stored := 0
	t.EachStored(func(int, int, float64) { stored++ })
	tr := &Tiered{
		n:      n,
		t:      t,
		offs:   make([]int32, n+1),
		order:  make([]int32, 0, stored),
		qvals:  make([]float64, 0, stored),
		posLen: make([]int32, n),
		filter: newBloom(stored),
	}
	// EachStored yields (s ascending, e ascending): rows arrive contiguous
	// and in index order, so each row is collected then sorted in place.
	row := -1
	for s := 0; s <= n; s++ {
		tr.offs[s] = int32(len(tr.order))
	}
	t.EachStored(func(s, e int, v float64) {
		if s != row {
			if row >= 0 {
				tr.finishRow(row)
			}
			row = s
		}
		tr.order = append(tr.order, int32(e))
		tr.qvals = append(tr.qvals, v)
		tr.filter.add(uint64(s)*uint64(n) + uint64(e))
	})
	if row >= 0 {
		tr.finishRow(row)
	}
	return tr
}

// finishRow sorts the just-collected row s (the entries from the
// running offset to the end of order) into q-desc/idx-asc order, counts
// its positives, and closes the offsets through s.
func (tr *Tiered) finishRow(s int) {
	lo := int(tr.offs[s])
	hi := len(tr.order)
	ord, val := tr.order[lo:hi], tr.qvals[lo:hi]
	sort.Sort(&rowSorter{ord: ord, val: val})
	pos := 0
	for pos < len(val) && val[pos] > 0 {
		pos++
	}
	tr.posLen[s] = int32(pos)
	for i := s + 1; i <= tr.n; i++ {
		tr.offs[i] = int32(hi)
	}
}

// rowSorter sorts one row's (action, value) pairs by the dense total
// order: higher Q first, lower index on exact ties.
type rowSorter struct {
	ord []int32
	val []float64
}

func (r *rowSorter) Len() int { return len(r.ord) }
func (r *rowSorter) Less(i, j int) bool {
	return better(r.ord[i], r.val[i], r.ord[j], r.val[j])
}
func (r *rowSorter) Swap(i, j int) {
	r.ord[i], r.ord[j] = r.ord[j], r.ord[i]
	r.val[i], r.val[j] = r.val[j], r.val[i]
}

// Size returns n, the number of states.
func (tr *Tiered) Size() int { return tr.n }

func (tr *Tiered) checkState(s int) {
	if s < 0 || s >= tr.n {
		panic(fmt.Sprintf("qtable: state %d out of range [0,%d)", s, tr.n))
	}
}

// Get returns Q(s, e); the Bloom filter short-circuits definite absents
// before the row probe.
func (tr *Tiered) Get(s, e int) float64 {
	tr.checkState(s)
	if e < 0 || e >= tr.n {
		panic(fmt.Sprintf("qtable: action %d out of range [0,%d)", e, tr.n))
	}
	if !tr.filter.mayContain(uint64(s)*uint64(tr.n) + uint64(e)) {
		return 0
	}
	return tr.t.Get(s, e)
}

// zeroClass reports whether action a reads as 0 in state s (absent, or
// stored exactly 0) — tier 2 membership. The Bloom "definitely absent"
// answer avoids the row probe for almost every unvisited cell.
func (tr *Tiered) zeroClass(s, a int) bool {
	if !tr.filter.mayContain(uint64(s)*uint64(tr.n) + uint64(a)) {
		return true
	}
	return tr.t.Get(s, a) == 0
}

// ArgMax returns the allowed action maximizing Q(s, ·), ties to the
// lowest index — identical to Table.ArgMax under the same mask. The
// three tiers are walked in order; because each tier's internal order
// matches the dense total order and every tier-1 value beats every
// tier-2 value beats every tier-3 value, the first allowed action found
// is the arg-max.
func (tr *Tiered) ArgMax(s int, allowed func(e int) bool) (int, bool) {
	if tr.n == 0 {
		return -1, false
	}
	tr.checkState(s)
	row := tr.order[tr.offs[s]:tr.offs[s+1]]
	p := int(tr.posLen[s])
	for _, a32 := range row[:p] {
		a := int(a32)
		if allowed == nil || allowed(a) {
			return a, true
		}
	}
	for a := 0; a < tr.n; a++ {
		if (allowed == nil || allowed(a)) && tr.zeroClass(s, a) {
			return a, true
		}
	}
	for _, a32 := range row[p:] {
		a := int(a32)
		if allowed == nil || allowed(a) {
			return a, true
		}
	}
	return -1, false
}

// AppendArgMaxTies appends to buf every allowed action tied for the
// maximal Q(s, ·), in ascending index order — the same result (and
// ordering) as the dense scan under the same mask. The first tier with
// any allowed action supplies the maximum; ties never span tiers.
func (tr *Tiered) AppendArgMaxTies(s int, allowed func(e int) bool, buf []int) []int {
	if tr.n == 0 {
		return buf
	}
	tr.checkState(s)
	lo, hi := int(tr.offs[s]), int(tr.offs[s+1])
	p := lo + int(tr.posLen[s])

	var found bool
	if buf, found = tr.collectTies(lo, p, allowed, buf); found {
		return buf
	}
	for a := 0; a < tr.n; a++ {
		if (allowed == nil || allowed(a)) && tr.zeroClass(s, a) {
			buf = append(buf, a)
			found = true
		}
	}
	if found {
		return buf
	}
	buf, _ = tr.collectTies(p, hi, allowed, buf)
	return buf
}

// collectTies appends the leading allowed tie run of the stored entries
// in [from, to) — already sorted q-desc/idx-asc — to buf. found reports
// whether any allowed entry existed; the run holds the segment's
// allowed maximum, and because entries are value-sorted the run is also
// index-ascending.
func (tr *Tiered) collectTies(from, to int, allowed func(e int) bool, buf []int) ([]int, bool) {
	var best float64
	found := false
	for i := from; i < to; i++ {
		v := tr.qvals[i]
		if found && v < best {
			break
		}
		a := int(tr.order[i])
		if allowed != nil && !allowed(a) {
			continue
		}
		if !found {
			best, found = v, true
		}
		buf = append(buf, a)
	}
	return buf, found
}

// MemoryBytes estimates the reader's own resident bytes (order, values,
// offsets and the Bloom filter; the source table accounts separately).
func (tr *Tiered) MemoryBytes() int {
	return 12*len(tr.order) + 4*len(tr.offs) + 4*len(tr.posLen) + tr.filter.sizeBytes()
}
