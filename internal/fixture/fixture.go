// Package fixture provides the paper's running toy examples as ready-made
// catalogs and constraints: the six-course catalog of Table II (Example 1)
// and a small Paris POI set (Example 2). Tests and examples across the
// repository share these so that paper-quoted numbers are checked against a
// single source of truth.
package fixture

import (
	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// CourseTopics is the 13-topic vocabulary of Table II.
func CourseTopics() *topics.Vocabulary {
	return topics.MustVocabulary(
		"Algorithms", "Classification", "Clustering", "Statistics",
		"Regression", "Data Structure", "Neural Network", "Probability",
		"Data Visualization", "Linear System", "Matrix Decomposition",
		"Data Management", "Data Transfer",
	)
}

// Courses returns the Table II toy catalog: m1–m6.
func Courses() *item.Catalog {
	vocab := CourseTopics()
	return item.MustCatalog(vocab, []item.Item{
		{ID: "Data Structures and Algorithms", Name: "Data Structures and Algorithms",
			Type: item.Primary, Credits: 3,
			Topics: bitset.FromIndices(13, 0, 5), Category: item.NoCategory},
		{ID: "Data Mining", Name: "Data Mining",
			Type: item.Secondary, Credits: 3,
			Topics: bitset.FromIndices(13, 1, 2), Category: item.NoCategory},
		{ID: "Data Analytics", Name: "Data Analytics",
			Type: item.Primary, Credits: 3,
			Topics: bitset.FromIndices(13, 3, 7), Category: item.NoCategory},
		{ID: "Linear Algebra", Name: "Linear Algebra",
			Type: item.Secondary, Credits: 3,
			Topics: bitset.FromIndices(13, 8, 9), Category: item.NoCategory},
		{ID: "Big Data", Name: "Big Data",
			Type: item.Secondary, Credits: 3,
			Prereq: prereq.MustParse("Data Mining OR Data Analytics"),
			Topics: bitset.FromIndices(13, 0, 10, 11), Category: item.NoCategory},
		{ID: "Machine Learning", Name: "Machine Learning",
			Type: item.Primary, Credits: 3,
			Prereq: prereq.MustParse("Linear Algebra AND Data Mining"),
			Topics: bitset.FromIndices(13, 1, 2, 4, 6), Category: item.NoCategory},
	})
}

// CourseTemplate is the toy IT of §II-B.1: three permutations of 3 primary
// and 3 secondary items.
func CourseTemplate() constraints.Template {
	return constraints.MustParseTemplate(
		"primary, primary, secondary, primary, secondary, secondary",
		"primary, secondary, secondary, secondary, primary, primary",
		"primary, secondary, secondary, primary, primary, secondary",
	)
}

// CourseHard is a toy P_hard matching the six-course catalog: 18 credits
// (six 3-credit courses), 3 primary, 3 secondary, gap 3.
func CourseHard() constraints.Hard {
	return constraints.Hard{
		Credits:    18,
		CreditMode: constraints.MinCredits,
		Primary:    3,
		Secondary:  3,
		Gap:        3,
	}
}

// CourseIdeal is T_ideal of Example 1: Classification, Clustering, Neural
// Network, Linear System = [0,1,1,0,0,0,1,0,0,1,0,0,0].
func CourseIdeal() bitset.Set {
	return bitset.FromIndices(13, 1, 2, 6, 9)
}

// CourseSoft bundles CourseIdeal and CourseTemplate.
func CourseSoft() constraints.Soft {
	return constraints.Soft{Ideal: CourseIdeal(), Template: CourseTemplate()}
}

// TripTopics is the 8-theme vocabulary of §II-B.2.
func TripTopics() *topics.Vocabulary {
	return topics.MustVocabulary(
		"Museum", "Art Gallery", "Cathedral", "Palace",
		"River", "Street", "Restaurant", "Architecture",
	)
}

// Trip returns the toy Paris POI catalog of Example 2. Visit times (cr^m)
// and coordinates are representative; the Louvre's topic vector matches the
// paper ([1,1,0,0,0,0,0,1]). Categories index the dominant theme for the
// theme-gap rule.
func Trip() *item.Catalog {
	vocab := TripTopics()
	return item.MustCatalog(vocab, []item.Item{
		{ID: "Eiffel Tower", Name: "Eiffel Tower", Type: item.Primary, Credits: 1.5,
			Topics: bitset.FromIndices(8, 7), Category: 7,
			Lat: 48.8584, Lon: 2.2945, Popularity: 5},
		{ID: "Louvre Museum", Name: "Louvre Museum", Type: item.Primary, Credits: 2,
			Topics: bitset.FromIndices(8, 0, 1, 7), Category: 0,
			Lat: 48.8606, Lon: 2.3376, Popularity: 5},
		{ID: "Pantheon", Name: "Pantheon", Type: item.Secondary, Credits: 1,
			Topics: bitset.FromIndices(8, 2, 7), Category: 2,
			Lat: 48.8462, Lon: 2.3464, Popularity: 4},
		{ID: "Rue des Martyrs", Name: "Rue des Martyrs", Type: item.Secondary, Credits: 0.5,
			Topics: bitset.FromIndices(8, 5), Category: 5,
			Lat: 48.8781, Lon: 2.3392, Popularity: 3},
		{ID: "Musée d'Orsay", Name: "Musée d'Orsay", Type: item.Secondary, Credits: 1.5,
			Topics: bitset.FromIndices(8, 0, 1), Category: 0,
			Lat: 48.8600, Lon: 2.3266, Popularity: 4},
		{ID: "Cathédrale Notre-Dame de Paris", Name: "Cathédrale Notre-Dame de Paris",
			Type: item.Secondary, Credits: 1,
			Topics: bitset.FromIndices(8, 2, 7), Category: 2,
			Lat: 48.8530, Lon: 2.3499, Popularity: 5},
		{ID: "Palais Garnier", Name: "Palais Garnier", Type: item.Secondary, Credits: 1,
			Topics: bitset.FromIndices(8, 3, 7), Category: 3,
			Lat: 48.8720, Lon: 2.3316, Popularity: 4},
		{ID: "The River Seine", Name: "The River Seine", Type: item.Secondary, Credits: 1,
			Topics: bitset.FromIndices(8, 4), Category: 4,
			Lat: 48.8566, Lon: 2.3430, Popularity: 4},
		{ID: "Le Cinq", Name: "Le Cinq", Type: item.Secondary, Credits: 1,
			// A restaurant is best enjoyed after a museum (antecedent, §II-B.2).
			Prereq: prereq.MustParse("Louvre Museum OR Musée d'Orsay"),
			Topics: bitset.FromIndices(8, 6), Category: 6,
			Lat: 48.8690, Lon: 2.3008, Popularity: 4},
	})
}

// TripTemplate is the toy IT of §II-B.2: permutations of 2 primary and 3
// secondary POIs.
func TripTemplate() constraints.Template {
	return constraints.MustParseTemplate(
		"primary, secondary, primary, secondary, secondary",
		"primary, secondary, secondary, secondary, primary",
		"primary, secondary, secondary, primary, secondary",
	)
}

// TripHard is P_hard of Example 2: 6 visit-hours, 2 primary, 3 secondary,
// gap 1, with the theme-gap rule on.
func TripHard() constraints.Hard {
	return constraints.Hard{
		Credits:    6,
		CreditMode: constraints.MaxCredits,
		Primary:    2,
		Secondary:  3,
		Gap:        1,
		ThemeGap:   true,
	}
}

// TripIdeal is T_ideal of Example 2: Museum, Art Gallery, River,
// Restaurant, Architecture.
func TripIdeal() bitset.Set {
	return bitset.FromIndices(8, 0, 1, 4, 6, 7)
}

// TripSoft bundles TripIdeal and TripTemplate.
func TripSoft() constraints.Soft {
	return constraints.Soft{Ideal: TripIdeal(), Template: TripTemplate()}
}
