// These tests drive the paper's two running examples (Example 1 course
// planning, Example 2 trip planning) end-to-end through the full pipeline:
// environment, learning, recommendation and validation — pinning the
// specific sequences the paper quotes.
package fixture_test

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/fixture"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/reward"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

func seq(t *testing.T, c *item.Catalog, ids ...string) []int {
	t.Helper()
	out := make([]int, len(ids))
	for i, id := range ids {
		idx, ok := c.Index(id)
		if !ok {
			t.Fatalf("unknown id %q", id)
		}
		out[i] = idx
	}
	return out
}

func TestExample1PaperSequenceMatchesI2(t *testing.T) {
	// §II-B.1: m1 → m2 → m4 → m5 → m6 → m3 fully satisfies permutation I2
	// of the template: its interleaving score is the perfect-match bound 6.
	c := fixture.Courses()
	plan := seq(t, c,
		"Data Structures and Algorithms", "Data Mining", "Linear Algebra",
		"Big Data", "Machine Learning", "Data Analytics")
	types := c.SequenceTypes(plan)
	it := fixture.CourseTemplate()
	if got := seqsim.Sim(types, it[1]); got != 6 {
		t.Fatalf("Sim against I2 = %v, want 6", got)
	}
	if got := seqsim.MaxSim(types, it); got != 6 {
		t.Fatalf("MaxSim = %v, want 6", got)
	}
}

func TestExample2PaperSequenceMatchesI1(t *testing.T) {
	// §II-B.2: Louvre → Le Cinq → Eiffel → Rue des Martyrs → Seine fully
	// satisfies permutation I1 (primary, secondary, primary, secondary,
	// secondary).
	c := fixture.Trip()
	plan := seq(t, c,
		"Louvre Museum", "Le Cinq", "Eiffel Tower",
		"Rue des Martyrs", "The River Seine")
	types := c.SequenceTypes(plan)
	it := fixture.TripTemplate()
	if got := seqsim.Sim(types, it[0]); got != 5 {
		t.Fatalf("Sim against I1 = %v, want 5", got)
	}
	// And it satisfies the toy trip's hard constraints (Le Cinq's museum
	// antecedent at gap 1, theme diversity, 6-hour budget).
	vs := constraints.Check(c, plan, fixture.TripHard())
	if len(vs) != 0 {
		t.Fatalf("paper trip sequence violations: %v", vs)
	}
}

func TestExample1LearnedPlanEndToEnd(t *testing.T) {
	rw := reward.Config{
		Delta: 0.6, Beta: 0.4, Epsilon: 1,
		Weights:  reward.Weights{Primary: 0.6, Secondary: 0.4},
		Sim:      seqsim.Average,
		Template: fixture.CourseTemplate(),
	}
	env, err := mdp.NewEnv(fixture.Courses(), fixture.CourseHard(), fixture.CourseSoft(),
		rw, mdp.CountBudget{H: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sarsa.Learn(env, sarsa.Config{
		Episodes: 400, Alpha: 0.75, Gamma: 0.95, Start: sarsa.RandomStart, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// From Data Mining (secondary, no prereq), a full, valid 6-course plan
	// must emerge.
	dm, _ := env.Catalog().Index("Data Mining")
	plan, err := res.Policy.RecommendGuided(env, dm)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 6 {
		t.Fatalf("plan length = %d", len(plan))
	}
	if vs := constraints.Check(env.Catalog(), plan, fixture.CourseHard()); len(vs) != 0 {
		t.Fatalf("violations: %v (plan %v)", vs, env.Catalog().SequenceIDs(plan))
	}
}

func TestExample2LearnedItineraryEndToEnd(t *testing.T) {
	rw := reward.DefaultTripConfig(fixture.TripTemplate())
	env, err := mdp.NewEnv(fixture.Trip(), fixture.TripHard(), fixture.TripSoft(),
		rw, mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sarsa.Learn(env, sarsa.Config{
		Episodes: 400, Alpha: 0.95, Gamma: 0.75, Start: sarsa.RandomStart, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	louvre, _ := env.Catalog().Index("Louvre Museum")
	plan, err := res.Policy.RecommendGuided(env, louvre)
	if err != nil {
		t.Fatal(err)
	}
	if env.Catalog().TotalCredits(plan) > 6 {
		t.Fatalf("itinerary exceeds 6 hours: %v", env.Catalog().SequenceIDs(plan))
	}
	// Theme diversity holds along the itinerary.
	for i := 1; i < len(plan); i++ {
		a, b := env.Catalog().At(plan[i-1]), env.Catalog().At(plan[i])
		if a.Category == b.Category {
			t.Fatalf("theme repeat: %s → %s", a.ID, b.ID)
		}
	}
}

func TestFixtureInternalConsistency(t *testing.T) {
	// Templates match the toy hard constraints.
	if err := fixture.CourseTemplate().Validate(3, 3); err != nil {
		t.Fatal(err)
	}
	if err := fixture.TripTemplate().Validate(2, 3); err != nil {
		t.Fatal(err)
	}
	// Ideal vectors live in the right vocabularies.
	if fixture.CourseIdeal().Len() != fixture.CourseTopics().Len() {
		t.Fatal("course ideal vector length mismatch")
	}
	if fixture.TripIdeal().Len() != fixture.TripTopics().Len() {
		t.Fatal("trip ideal vector length mismatch")
	}
	// The Louvre's topic vector matches the paper: [1,1,0,0,0,0,0,1].
	louvre, _ := fixture.Trip().ByID("Louvre Museum")
	if louvre.Topics.String() != "[1,1,0,0,0,0,0,1]" {
		t.Fatalf("Louvre vector = %s", louvre.Topics)
	}
}

func TestExample1IdealVectorMatchesPaper(t *testing.T) {
	// T_ideal = [0,1,1,0,0,0,1,0,0,1,0,0,0] (Classification, Clustering,
	// Neural Network, Linear System).
	want := "[0,1,1,0,0,0,1,0,0,1,0,0,0]"
	if got := fixture.CourseIdeal().String(); got != want {
		t.Fatalf("T_ideal = %s, want %s", got, want)
	}
}

func TestGoldBeatsBaselinesOnToyInstances(t *testing.T) {
	// Sanity: evaluating the paper's own quoted sequences through eval
	// yields the expected relative ordering on the toy data.
	c := fixture.Courses()
	good := seq(t, c,
		"Data Mining", "Data Structures and Algorithms", "Linear Algebra",
		"Big Data", "Data Analytics", "Machine Learning")
	bad := seq(t, c,
		"Big Data", "Data Mining", "Linear Algebra",
		"Data Structures and Algorithms", "Data Analytics", "Machine Learning")
	hard := fixture.CourseHard()
	if !constraints.Satisfies(c, good, hard) {
		t.Fatal("good sequence should satisfy constraints")
	}
	if constraints.Satisfies(c, bad, hard) {
		t.Fatal("bad sequence (Big Data first) should violate its antecedent")
	}
	_ = eval.Detail{}
}
