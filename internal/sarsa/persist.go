package sarsa

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/rlplanner/rlplanner/internal/qtable"
)

// policySnapshot is the serialized form of a Policy.
type policySnapshot struct {
	N   int
	Q   []float64
	IDs []string
}

// WriteGob persists the policy (Q table plus item-id alignment) so learned
// policies can be stored, shipped and reloaded for interactive use or
// transfer.
func (p *Policy) WriteGob(w io.Writer) error {
	if p.Q == nil {
		return fmt.Errorf("sarsa: nil Q table")
	}
	n := p.Q.Size()
	snap := policySnapshot{N: n, IDs: p.IDs}
	snap.Q = make([]float64, 0, n*n)
	for s := 0; s < n; s++ {
		snap.Q = append(snap.Q, p.Q.Row(s)...)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// ReadPolicy loads a policy written by WriteGob.
func ReadPolicy(r io.Reader) (*Policy, error) {
	var snap policySnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("sarsa: decode policy: %w", err)
	}
	if snap.N < 0 || len(snap.Q) != snap.N*snap.N {
		return nil, fmt.Errorf("sarsa: corrupt policy snapshot (n=%d, %d values)", snap.N, len(snap.Q))
	}
	if len(snap.IDs) != 0 && len(snap.IDs) != snap.N {
		return nil, fmt.Errorf("sarsa: policy ids (%d) do not match table size %d", len(snap.IDs), snap.N)
	}
	q := qtable.New(snap.N)
	for s := 0; s < snap.N; s++ {
		for e := 0; e < snap.N; e++ {
			q.Set(s, e, snap.Q[s*snap.N+e])
		}
	}
	return &Policy{Q: q, IDs: snap.IDs}, nil
}
