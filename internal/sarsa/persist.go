package sarsa

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/rlplanner/rlplanner/internal/qtable"
)

// policySnapshot is the serialized form of a Policy. A dense-backed
// table fills Q, the historical flat layout; a sparse-backed one fills
// the QS/QE/QV coordinate triples (sorted by state then action, so
// identical policies encode to identical bytes). Exactly one payload is
// present; gob matches fields by name, so old streams keep decoding.
type policySnapshot struct {
	N   int
	Q   []float64
	QS  []int32
	QE  []int32
	QV  []float64
	IDs []string
}

// WriteGob persists the policy (Q table plus item-id alignment) so learned
// policies can be stored, shipped and reloaded for interactive use or
// transfer. Sparse-backed tables persist their visited cells only —
// snapshot size follows training, not n².
func (p *Policy) WriteGob(w io.Writer) error {
	if p.Q == nil {
		return fmt.Errorf("sarsa: nil Q table")
	}
	n := p.Q.Size()
	snap := policySnapshot{N: n, IDs: p.IDs}
	if p.Q.IsDense() {
		snap.Q = make([]float64, 0, n*n)
		for s := 0; s < n; s++ {
			snap.Q = append(snap.Q, p.Q.Row(s)...)
		}
	} else {
		p.Q.EachStored(func(s, e int, v float64) {
			snap.QS = append(snap.QS, int32(s))
			snap.QE = append(snap.QE, int32(e))
			snap.QV = append(snap.QV, v)
		})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// ReadPolicy loads a policy written by WriteGob, restoring the
// representation it was saved from.
func ReadPolicy(r io.Reader) (*Policy, error) {
	var snap policySnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("sarsa: decode policy: %w", err)
	}
	if len(snap.IDs) != 0 && len(snap.IDs) != snap.N {
		return nil, fmt.Errorf("sarsa: policy ids (%d) do not match table size %d", len(snap.IDs), snap.N)
	}
	coords := len(snap.QS) + len(snap.QE) + len(snap.QV)
	if coords > 0 {
		if snap.N < 0 || len(snap.Q) != 0 ||
			len(snap.QS) != len(snap.QE) || len(snap.QS) != len(snap.QV) {
			return nil, fmt.Errorf("sarsa: corrupt policy snapshot (n=%d, %d/%d/%d coordinates)",
				snap.N, len(snap.QS), len(snap.QE), len(snap.QV))
		}
		// Force the sparse representation regardless of the local dense
		// threshold: the table round-trips as it was trained.
		q := qtable.NewWithDenseMax(snap.N, 1)
		for i := range snap.QS {
			s, e := int(snap.QS[i]), int(snap.QE[i])
			if s < 0 || s >= snap.N || e < 0 || e >= snap.N {
				return nil, fmt.Errorf("sarsa: corrupt policy snapshot: cell (%d,%d) out of range [0,%d)", s, e, snap.N)
			}
			q.Set(s, e, snap.QV[i])
		}
		return &Policy{Q: q, IDs: snap.IDs}, nil
	}
	if snap.N < 0 || len(snap.Q) != snap.N*snap.N {
		return nil, fmt.Errorf("sarsa: corrupt policy snapshot (n=%d, %d values)", snap.N, len(snap.Q))
	}
	q := qtable.NewWithDenseMax(snap.N, snap.N)
	for s := 0; s < snap.N; s++ {
		for e := 0; e < snap.N; e++ {
			q.Set(s, e, snap.Q[s*snap.N+e])
		}
	}
	return &Policy{Q: q, IDs: snap.IDs}, nil
}
