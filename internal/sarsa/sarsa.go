// Package sarsa implements the learning and recommendation procedures of
// Algorithm 1 (§III-C): an on-policy SARSA agent that learns the Q table
// over the item graph, and a recommender that walks the learned table
// greedily from a start item until the trajectory budget H is spent.
//
// Action selection during learning follows Algorithm 1, which picks the
// action maximizing the immediate reward of Equation 2 (lines 4 and 9),
// augmented with ε-greedy random exploration so that the number of
// episodes N, the learning rate α and the discount factor γ have the
// effect the robustness study (§IV-E) observes. A Q-greedy selection
// variant is provided for the ablation study.
package sarsa

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
)

// Selection chooses how the learner picks actions during training.
type Selection uint8

const (
	// RewardGreedy selects the action with the highest immediate Equation 2
	// reward (Algorithm 1 lines 4 and 9), with random tie-breaking.
	RewardGreedy Selection = iota
	// QGreedy selects the action with the highest current Q value,
	// breaking ties by immediate reward — the classical SARSA exploitation
	// rule, used by the ablation bench.
	QGreedy
)

// String names the selection strategy.
func (s Selection) String() string {
	switch s {
	case RewardGreedy:
		return "reward-greedy"
	case QGreedy:
		return "q-greedy"
	default:
		return fmt.Sprintf("Selection(%d)", uint8(s))
	}
}

// RandomStart requests a uniformly random start item each episode.
const RandomStart = -1

// Algorithm selects the temporal-difference update rule.
type Algorithm uint8

const (
	// SARSA is the on-policy update of Equation 9 (the paper's choice:
	// "known to converge faster and with fewer errors", §III-C).
	SARSA Algorithm = iota
	// QLearning is the off-policy variant whose target uses
	// max_a Q(s', a) over the remaining candidates instead of Q(s', e') —
	// provided for the ablation bench that checks the paper's
	// SARSA-over-alternatives claim.
	QLearning
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case SARSA:
		return "sarsa"
	case QLearning:
		return "q-learning"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Config parameterizes the learner. Table III defaults: N = 500 (Univ-1,
// trips) or 100 (Univ-2), α = 0.75, γ = 0.95 for courses and α = 0.95,
// γ = 0.75 for trips.
type Config struct {
	// Episodes is N, the number of learning episodes.
	Episodes int
	// Alpha is the learning rate α ∈ (0, 1].
	Alpha float64
	// Gamma is the discount factor γ ∈ [0, 1].
	Gamma float64
	// Start is s_1, the fixed start item index, or RandomStart.
	Start int
	// Selection picks the exploitation rule (RewardGreedy by default).
	Selection Selection
	// Algorithm picks the TD update rule (SARSA by default).
	Algorithm Algorithm
	// Explore is the ε-greedy exploration probability (default 0.2 when
	// zero and DisableExplore is false).
	Explore float64
	// DisableExplore turns exploration off entirely — Algorithm 1 exactly
	// as printed. Learning then repeats one trajectory per start state.
	DisableExplore bool
	// Seed drives all randomness; the same seed reproduces the same policy.
	Seed int64
	// Workers selects the training schedule. 0 keeps the sequential
	// Algorithm 1 loop exactly as before (one rng stream threaded through
	// every episode). Any value >= 1 switches to the batch-synchronous
	// parallel protocol of DESIGN §12: episodes carry seed-indexed rngs,
	// walk against the Q table frozen at the last batch boundary, and
	// their recorded deltas merge in episode-index order after every
	// MergeBatch episodes. The protocol is bit-identical for every
	// Workers >= 1 — Workers=1 and Workers=64 produce the same Q table —
	// so the worker count is purely a throughput knob.
	Workers int
	// DenseQMax overrides the dense/sparse threshold of the learned Q
	// table (<= 0 means qtable.DefaultDenseMaxItems) — the -dense-q-max
	// operator knob threaded through core.Options.
	DenseQMax int
	// Init warm-starts learning from an existing Q table instead of
	// zeros (the table is cloned, never mutated). The incremental
	// retraining path feeds a transfer-mapped table from the nearest
	// existing artifact here, paired with a distance-scaled episode
	// budget. Init must cover the environment's catalog size.
	Init *qtable.Table
	// OnEpisode, when non-nil, observes each completed episode index
	// (0-based). Progress reporting and the deadline tests hook it; it
	// runs outside the per-step hot loop, so a cheap callback does not
	// perturb learning performance. Under the parallel schedule it is
	// invoked during the single-threaded merge, in episode order.
	OnEpisode func(i int)
}

// DefaultExplore is the exploration probability used when Config.Explore
// is zero.
const DefaultExplore = 0.2

// Validate checks parameter ranges.
func (c Config) Validate() error {
	if c.Episodes <= 0 {
		return fmt.Errorf("sarsa: episodes = %d, want > 0", c.Episodes)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("sarsa: α = %g, want (0,1]", c.Alpha)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("sarsa: γ = %g, want [0,1]", c.Gamma)
	}
	if c.Explore < 0 || c.Explore > 1 {
		return fmt.Errorf("sarsa: explore = %g, want [0,1]", c.Explore)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sarsa: workers = %d, want >= 0", c.Workers)
	}
	return nil
}

// explore returns the effective exploration probability.
func (c Config) explore() float64 {
	if c.DisableExplore {
		return 0
	}
	if c.Explore == 0 {
		return DefaultExplore
	}
	return c.Explore
}

// Policy is a learned Q table together with the ids of the items its
// indices refer to, so it can be persisted and transferred across catalogs.
//
// After training completes, a Policy is immutable: the recommendation
// walk compiles the Q table into per-state Q-descending action orders
// (see qtable.Compiled) and caches them, so Q must not be mutated once
// any recommendation method or Compiled has been called. Relearning and
// feedback adaptation produce a new Policy rather than updating one in
// place.
type Policy struct {
	// Q is the learned action-value table.
	Q *qtable.Table
	// IDs aligns Q's indices with item ids of the learning catalog.
	IDs []string

	compileOnce sync.Once
	compiled    qtable.Reader
}

// Compiled returns the policy's serve-time read structure, building it
// on first use: the compiled action order (top-K eager prefix plus lazy
// full tail) for a dense-backed table, the tiered walk (sorted stored
// cells plus Bloom-gated zero class) for a sparse-backed one — the
// latter builds in O(stored) where Compile would scan n² cells. The
// engine layer calls this at train/artifact-load time so the first
// user request never pays the build; direct constructors (tests,
// transfer) get it lazily. Safe for concurrent use.
func (p *Policy) Compiled() qtable.Reader {
	p.compileOnce.Do(func() {
		if p.Q.IsDense() {
			p.compiled = qtable.Compile(p.Q, qtable.DefaultTopK)
		} else {
			p.compiled = qtable.NewTiered(p.Q)
		}
	})
	return p.compiled
}

// Result reports what a learning run produced.
type Result struct {
	// Policy is the learned policy.
	Policy *Policy
	// EpisodeReturns holds the total (undiscounted) reward collected in
	// each episode, in order — the learning curve.
	EpisodeReturns []float64
	// Interrupted reports that the run stopped at a context deadline
	// before completing Config.Episodes. Policy then holds the
	// best-so-far Q table — a usable checkpoint, since every completed
	// episode's updates are already in the table and the guided
	// recommendation walk enforces validity independently of how
	// converged the values are.
	Interrupted bool
	// MergeBatches counts the deterministic merge rounds the parallel
	// schedule ran (0 under the sequential schedule) — an observability
	// figure for the train_* metrics.
	MergeBatches int
}

// EpisodesCompleted returns how many learning episodes finished — the
// full budget for a complete run, fewer for one checkpointed at its
// deadline. Degraded artifacts surface it so operators can see how far
// training got.
func (r *Result) EpisodesCompleted() int { return len(r.EpisodeReturns) }

// Learn runs Algorithm 1's learning phase on env.
func Learn(env *mdp.Env, cfg Config) (*Result, error) {
	return LearnContext(context.Background(), env, cfg)
}

// LearnContext is Learn under a context: the deadline is checked between
// episodes (never inside the per-step hot loop). When the context expires
// after at least one completed episode, the run checkpoints — it returns
// the Q table learned so far with Result.Interrupted set, not an error —
// so a training budget yields a degraded-but-feasible policy instead of
// nothing. A context that is already dead before the first episode
// returns its error.
func LearnContext(ctx context.Context, env *mdp.Env, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := env.NumItems()
	if n == 0 {
		return nil, fmt.Errorf("sarsa: empty catalog")
	}
	if cfg.Start != RandomStart && (cfg.Start < 0 || cfg.Start >= n) {
		return nil, fmt.Errorf("sarsa: start item %d out of range [0,%d)", cfg.Start, n)
	}
	q, err := initialQ(cfg, n)
	if err != nil {
		return nil, err
	}
	if cfg.Workers >= 1 {
		return learnBatched(ctx, env, cfg, q)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Cap the preallocation: Episodes is caller-supplied (on the serving
	// path, request-supplied), and an absurd value must not reserve
	// gigabytes — or blow a training deadline — before the first episode
	// even runs. Beyond the cap the slice grows by appending as usual.
	capHint := cfg.Episodes
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	returns := make([]float64, 0, capHint)
	eps := cfg.explore()
	var sc scratch // reused across every episode and step
	var ep *mdp.Episode

	interrupted := false
	for i := 0; i < cfg.Episodes; i++ {
		if err := ctx.Err(); err != nil {
			if i == 0 {
				return nil, err
			}
			interrupted = true
			break
		}
		start := cfg.Start
		if start == RandomStart {
			start = rng.Intn(n)
		}
		// One Episode serves the whole run: Reset reuses its buffers, so
		// the per-episode cost is O(n) clears with no allocation.
		var err error
		if ep == nil {
			ep, err = env.Start(start)
		} else {
			err = ep.Reset(start)
		}
		if err != nil {
			return nil, err
		}
		var total float64

		s := start
		e := selectAction(ep, s, q, cfg.Selection, eps, rng, &sc)
		for e >= 0 {
			r := ep.Step(e)
			total += r
			sNext := e
			eNext := -1
			if !ep.Done() {
				eNext = selectAction(ep, sNext, q, cfg.Selection, eps, rng, &sc)
			}
			// SARSA bootstraps on the action actually taken next (Eq. 9);
			// Q-learning bootstraps on the best available next action.
			target := eNext
			if cfg.Algorithm == QLearning && !ep.Done() {
				if best, ok := q.ArgMax(sNext, ep.CanStep); ok {
					target = best
				}
			}
			if target >= 0 {
				q.Update(s, e, cfg.Alpha, r, cfg.Gamma, sNext, target)
			} else {
				q.Update(s, e, cfg.Alpha, r, cfg.Gamma, -1, -1)
			}
			s, e = sNext, eNext
		}
		returns = append(returns, total)
		if cfg.OnEpisode != nil {
			cfg.OnEpisode(i)
		}
	}

	return &Result{
		Policy:         &Policy{Q: q, IDs: env.Catalog().IDs()},
		EpisodeReturns: returns,
		Interrupted:    interrupted,
	}, nil
}

// scratch holds the per-learner slices selectAction reuses across steps
// so the learning hot loop allocates nothing. A scratch belongs to one
// goroutine; concurrent learners each carry their own.
type scratch struct {
	cands []int
	ties  []int
	ties2 []int
}

// selectAction picks the next item from the episode's candidates, or -1
// when none remain. With probability eps it explores uniformly; otherwise
// it exploits per the selection rule, breaking ties uniformly at random.
func selectAction(ep *mdp.Episode, s int, q *qtable.Table, sel Selection, eps float64, rng *rand.Rand, sc *scratch) int {
	sc.cands = ep.AppendCandidates(sc.cands[:0])
	cands := sc.cands
	if len(cands) == 0 {
		return -1
	}
	if eps > 0 && rng.Float64() < eps {
		return cands[rng.Intn(len(cands))]
	}

	var ties []int
	switch sel {
	case QGreedy:
		best := 0.0
		ties = sc.ties[:0]
		for i, c := range cands {
			v := q.Get(s, c)
			switch {
			case i == 0 || v > best:
				best = v
				ties = ties[:0]
				ties = append(ties, c)
			case v == best:
				ties = append(ties, c)
			}
		}
		sc.ties = ties[:0]
		if len(ties) > 1 {
			// Break Q ties by immediate reward, then randomly.
			sc.ties2 = bestByReward(ep, ties, sc.ties2[:0])
			ties = sc.ties2
		}
	default: // RewardGreedy, Algorithm 1 lines 4 and 9
		sc.ties = bestByReward(ep, cands, sc.ties[:0])
		ties = sc.ties
	}
	return ties[rng.Intn(len(ties))]
}

// cheapestCompletionFits reports whether, after taking item a, the k
// cheapest remaining steppable items still fit within the credit ceiling.
func cheapestCompletionFits(ep *mdp.Episode, catalog *item.Catalog, hard constraints.Hard, a, k int) bool {
	budget := hard.Credits - ep.Credits() - catalog.At(a).Credits
	if budget < 0 {
		return false
	}
	var costs []float64
	for _, c := range ep.Candidates() {
		if c != a {
			costs = append(costs, catalog.At(c).Credits)
		}
	}
	if len(costs) < k {
		return false
	}
	sort.Float64s(costs)
	var need float64
	for i := 0; i < k; i++ {
		need += costs[i]
	}
	return need <= budget
}

// bestRewardThenQ returns, among the allowed actions with strictly
// positive immediate reward, the maximal-reward ones refined by the
// highest Q value (lowest index on exact Q ties, for determinism).
func bestRewardThenQ(ep *mdp.Episode, q qtable.Reader, s int, allowed func(int) bool) (int, bool) {
	const tol = 1e-9
	bestR := 0.0
	var ties []int
	for a := 0; a < q.Size(); a++ {
		if !allowed(a) {
			continue
		}
		r := ep.Reward(a)
		if r <= 0 {
			continue
		}
		switch {
		case r > bestR+tol:
			bestR = r
			ties = ties[:0]
			ties = append(ties, a)
		case r >= bestR-tol:
			ties = append(ties, a)
		}
	}
	if len(ties) == 0 {
		return -1, false
	}
	best := ties[0]
	for _, a := range ties[1:] {
		if q.Get(s, a) > q.Get(s, best) {
			best = a
		}
	}
	return best, true
}

// bestByReward filters cands down to those with the maximal immediate
// Equation 2 reward, appending them to dst (pass a reused dst[:0] to
// avoid allocating; dst must not share backing with cands).
func bestByReward(ep *mdp.Episode, cands []int, dst []int) []int {
	best := 0.0
	ties := dst
	for i, c := range cands {
		r := ep.Reward(c)
		switch {
		case i == 0 || r > best:
			best = r
			ties = ties[:0]
			ties = append(ties, c)
		case r == best:
			ties = append(ties, c)
		}
	}
	return ties
}

// Recommend implements Algorithm 1's recommendation phase: starting from
// item start, repeatedly follow the highest-Q action among the remaining
// candidates until the trajectory budget is exhausted. Ties resolve to the
// lowest index so recommendations are deterministic for a given policy.
//
// The returned sequence includes the start item. It can be shorter than
// P_hard's target length when the budget or the candidate set runs out —
// those are the "bad" outcomes the transfer-learning study reports.
func (p *Policy) Recommend(env *mdp.Env, start int) ([]int, error) {
	return p.recommend(env, start, false, nil)
}

// RecommendGuided is Recommend with a validity filter: among the remaining
// candidates it prefers, by Q value, the actions whose Equation 2 gate θ is
// open (topic gain ≥ ε, antecedents satisfied), falling back to the plain
// Q arg-max when no currently-valid action exists. The Q table's state is
// only the last item, so a transition that was valid in the training
// context can be invalid in the recommendation context; the gate θ is part
// of the environment model — not of the learned parameters — so consulting
// it at recommendation time stays within the paper's framework and yields
// the constraint-satisfying plans §IV-B reports.
func (p *Policy) RecommendGuided(env *mdp.Env, start int) ([]int, error) {
	return p.recommend(env, start, true, nil)
}

// RecommendGuidedOver is RecommendGuided reading every action value
// through r instead of the policy's own compiled table — the layered
// serving entry point. Passing an overlay whose base is this policy's
// Compiled() keeps unshadowed states on the compiled walk; passing nil
// (or the compiled table itself) is exactly RecommendGuided, bit for
// bit. r must cover the environment's catalog size.
func (p *Policy) RecommendGuidedOver(env *mdp.Env, start int, r qtable.Reader) ([]int, error) {
	return p.recommend(env, start, true, r)
}

func (p *Policy) recommend(env *mdp.Env, start int, guided bool, r qtable.Reader) ([]int, error) {
	if err := p.compatible(env); err != nil {
		return nil, err
	}
	if r == nil {
		r = p.Compiled()
	} else if r.Size() != env.NumItems() {
		return nil, fmt.Errorf("sarsa: reader over %d items applied to catalog of %d",
			r.Size(), env.NumItems())
	}
	// Serve-time episodes come from the environment's pool: Sequence
	// copies the result out, so the episode (and its scratch buffers) can
	// go straight back for the next request.
	ep, err := env.AcquireEpisode(start)
	if err != nil {
		return nil, err
	}
	defer env.ReleaseEpisode(ep)
	var sc walkScratch
	for !ep.Done() {
		e, ok := p.nextAction(env, ep, guided, nil, &sc, r)
		if !ok {
			break
		}
		ep.Step(e)
	}
	return ep.Sequence(), nil
}

// walkScratch carries the per-walk reusable tie buffer so one
// recommendation allocates at most once for it regardless of length.
// A walkScratch belongs to one goroutine.
type walkScratch struct {
	ties []int
}

// compatible checks that the policy covers the environment's catalog.
func (p *Policy) compatible(env *mdp.Env) error {
	if p.Q == nil {
		return fmt.Errorf("sarsa: nil Q table")
	}
	if p.Q.Size() != env.NumItems() {
		return fmt.Errorf("sarsa: policy over %d items applied to catalog of %d (use transfer.Map)",
			p.Q.Size(), env.NumItems())
	}
	return nil
}

// NextGuided returns the guided walk's next action for an in-progress
// episode, skipping items for which exclude returns true (nil excludes
// nothing). ok is false when no action remains — interactive sessions use
// this to continue a partially human-chosen plan.
func (p *Policy) NextGuided(env *mdp.Env, ep *mdp.Episode, exclude func(int) bool) (int, bool) {
	if p.compatible(env) != nil || ep.Done() {
		return -1, false
	}
	var sc walkScratch
	return p.nextAction(env, ep, true, exclude, &sc, p.Compiled())
}

// guidedMask builds the split/budget pacing filter of the guided walk for
// the episode's current position.
func guidedMask(env *mdp.Env, ep *mdp.Episode) func(int) bool {
	hard := env.Hard()
	catalog := env.Catalog()
	typeOK := func(int) bool { return true }
	if hard.Length() == 0 {
		return typeOK
	}

	// Split-awareness: when the remaining slots are exactly enough for the
	// outstanding primary requirement, only primaries may fill them (extra
	// primaries are fine — Case I of Theorem 1 — but a shortage is a hard
	// violation).
	var primaries int
	for _, t := range ep.Types() {
		if t == item.Primary {
			primaries++
		}
	}
	needPrimary := hard.Primary - primaries
	left := hard.Length() - ep.Len()
	if needPrimary > 0 && needPrimary >= left {
		typeOK = func(a int) bool { return catalog.At(a).Type == item.Primary }
	}

	// Budget-awareness under a credit ceiling (trips): the time and
	// distance budgets must be paced across the remaining slots — a
	// 2.5-hour museum or a cross-town leg taken mid-plan leaves no room to
	// reach the required length. A candidate must (a) stay within a
	// slack-adjusted per-slot share of both budgets and (b) leave enough
	// time for the cheapest completion.
	if hard.CreditMode == constraints.MaxCredits && left > 1 {
		inner := typeOK
		remTime := hard.Credits - ep.Credits()
		remDist := hard.MaxDistanceKm - ep.Distance()
		last := ep.Last()
		const slack = 1.6
		typeOK = func(a int) bool {
			if !inner(a) {
				return false
			}
			if catalog.At(a).Credits > slack*remTime/float64(left) {
				return false
			}
			// env.Dist serves legs from the environment's precomputed
			// distance matrix, the same geometry the step loop measures.
			if hard.MaxDistanceKm > 0 && env.Dist(last, a) > slack*remDist/float64(left) {
				return false
			}
			return cheapestCompletionFits(ep, catalog, hard, a, left-1)
		}
	}
	return typeOK
}

// nextAction picks one action for the episode's current state, reading
// action values through r — the policy's compiled order on the default
// path, or a per-user overlay layered over it on the personalized one.
func (p *Policy) nextAction(env *mdp.Env, ep *mdp.Episode, guided bool, exclude func(int) bool, sc *walkScratch, r qtable.Reader) (int, bool) {
	s := ep.Last()
	allowed := func(a int) bool {
		return ep.CanStep(a) && (exclude == nil || !exclude(a))
	}

	// argmax picks the highest-Q action under a mask, breaking Q ties by
	// immediate Equation 2 reward and then by index. Tie-breaking matters:
	// states the training episodes never reached have all-zero Q rows, and
	// there the immediate reward is the only signal. The compiled order
	// walks candidates by descending Q and stops at the end of the first
	// allowed tie run — identical ties (same values, same ascending
	// order) to the masked ArgMaxTies scan it replaces, without visiting
	// all n actions.
	argmax := func(mask func(int) bool) (int, bool) {
		sc.ties = r.AppendArgMaxTies(s, mask, sc.ties[:0])
		ties := sc.ties
		switch len(ties) {
		case 0:
			return -1, false
		case 1:
			return ties[0], true
		}
		best, bestR := ties[0], ep.Reward(ties[0])
		for _, a := range ties[1:] {
			if r := ep.Reward(a); r > bestR {
				best, bestR = a, r
			}
		}
		return best, true
	}

	if guided {
		typeOK := guidedMask(env, ep)
		// Tier 1: actions with an open θ gate (full Equation 2 validity).
		// The learned policy prefers, like its training selection rule
		// (Algorithm 1 lines 4 and 9), the actions with the maximal
		// immediate reward, and uses the learned Q values to pick among
		// them — Q supplies the lookahead that distinguishes RL-Planner
		// from the purely myopic EDA baseline.
		if e, ok := bestRewardThenQ(ep, r, s, func(a int) bool {
			return allowed(a) && typeOK(a)
		}); ok {
			return e, true
		}
		// Tier 2: actions that at least respect the hard gap rules (r2),
		// even when the ε topic-gain gate is closed — topic coverage is a
		// soft constraint, antecedent gaps are hard.
		if e, ok := argmax(func(a int) bool {
			if !allowed(a) || !typeOK(a) {
				return false
			}
			tr := ep.TransitionScratch(a)
			return tr.PrereqOK && tr.ThemeOK
		}); ok {
			return e, true
		}
		// Tier 3: at least respect the split/budget pacing.
		if e, ok := argmax(func(a int) bool {
			return allowed(a) && typeOK(a)
		}); ok {
			return e, true
		}
	}
	return argmax(allowed)
}

// Ranked is one candidate action with the guided walk's ranking facts.
type Ranked struct {
	// Item is the catalog index.
	Item int
	// Tier is the guided tier that admits the action: 1 = fully valid
	// (θ open), 2 = hard rules hold but the ε gate is closed, 3 = only
	// the pacing filter holds, 4 = merely steppable.
	Tier int
	// Reward is the immediate Equation 2 reward.
	Reward float64
	// Q is the learned action value from the current state.
	Q float64
}

// RankActions returns up to k candidate next actions in the guided walk's
// preference order (tier, then reward, then Q, then index) — the
// suggestion list of an interactive session.
func (p *Policy) RankActions(env *mdp.Env, ep *mdp.Episode, k int, exclude func(int) bool) []Ranked {
	if p.compatible(env) != nil || ep.Done() || k <= 0 {
		return nil
	}
	s := ep.Last()
	typeOK := guidedMask(env, ep)
	var out []Ranked
	for a := 0; a < env.NumItems(); a++ {
		if !ep.CanStep(a) || (exclude != nil && exclude(a)) {
			continue
		}
		r := ep.Reward(a)
		tr := ep.TransitionScratch(a)
		tier := 4
		switch {
		case typeOK(a) && r > 0:
			tier = 1
		case typeOK(a) && tr.PrereqOK && tr.ThemeOK:
			tier = 2
		case typeOK(a):
			tier = 3
		}
		out = append(out, Ranked{Item: a, Tier: tier, Reward: r, Q: p.Q.Get(s, a)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tier != out[j].Tier {
			return out[i].Tier < out[j].Tier
		}
		if out[i].Reward != out[j].Reward {
			return out[i].Reward > out[j].Reward
		}
		if out[i].Q != out[j].Q {
			return out[i].Q > out[j].Q
		}
		return out[i].Item < out[j].Item
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
