package sarsa

// Equivalence property: the serving walk over the compiled Q-descending
// action order (Policy.Compiled) must return sequences bit-identical to
// the reference masked-ArgMax walk it replaced — across guided and
// unguided modes, trained and adversarial Q tables, dense- and
// sparse-compiled orders, and prefix lengths small enough that walks
// regularly exhaust the eager top-K and fall back to the lazy tail.

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/rlplanner/rlplanner/internal/fixture"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/reward"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

// forceCompile pins the policy's compiled order to one built from v at
// prefix length k, before any walk triggers the default build.
func forceCompile(p *Policy, v qtable.Values, k int) {
	p.compileOnce.Do(func() { p.compiled = qtable.Compile(v, k) })
}

// referenceNextAction is the pre-compilation nextAction: the same tier
// structure, with every arg-max answered by the dense table's full
// masked scan.
func referenceNextAction(p *Policy, env *mdp.Env, ep *mdp.Episode, guided bool, exclude func(int) bool) (int, bool) {
	s := ep.Last()
	allowed := func(a int) bool {
		return ep.CanStep(a) && (exclude == nil || !exclude(a))
	}
	argmax := func(mask func(int) bool) (int, bool) {
		ties := p.Q.ArgMaxTies(s, mask)
		switch len(ties) {
		case 0:
			return -1, false
		case 1:
			return ties[0], true
		}
		best, bestR := ties[0], ep.Reward(ties[0])
		for _, a := range ties[1:] {
			if r := ep.Reward(a); r > bestR {
				best, bestR = a, r
			}
		}
		return best, true
	}
	if guided {
		typeOK := guidedMask(env, ep)
		if e, ok := bestRewardThenQ(ep, p.Q, s, func(a int) bool {
			return allowed(a) && typeOK(a)
		}); ok {
			return e, true
		}
		if e, ok := argmax(func(a int) bool {
			if !allowed(a) || !typeOK(a) {
				return false
			}
			tr := ep.TransitionScratch(a)
			return tr.PrereqOK && tr.ThemeOK
		}); ok {
			return e, true
		}
		if e, ok := argmax(func(a int) bool {
			return allowed(a) && typeOK(a)
		}); ok {
			return e, true
		}
	}
	return argmax(allowed)
}

// referenceRollout walks referenceNextAction to completion.
func referenceRollout(t *testing.T, p *Policy, env *mdp.Env, start int, guided bool) []int {
	t.Helper()
	ep, err := env.Start(start)
	if err != nil {
		t.Fatal(err)
	}
	for !ep.Done() {
		e, ok := referenceNextAction(p, env, ep, guided, nil)
		if !ok {
			break
		}
		ep.Step(e)
	}
	return ep.Sequence()
}

func walkCourseEnv(t *testing.T) *mdp.Env {
	t.Helper()
	rw := reward.Config{
		Delta:    0.6,
		Beta:     0.4,
		Epsilon:  0.0025,
		Weights:  reward.Weights{Primary: 0.6, Secondary: 0.4},
		Sim:      seqsim.Average,
		Template: fixture.CourseTemplate(),
	}
	env, err := mdp.NewEnv(fixture.Courses(), fixture.CourseHard(), fixture.CourseSoft(),
		rw, mdp.CountBudget{H: 6})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func walkTripEnv(t *testing.T) *mdp.Env {
	t.Helper()
	env, err := mdp.NewEnv(fixture.Trip(), fixture.TripHard(), fixture.TripSoft(),
		reward.DefaultTripConfig(fixture.TripTemplate()), mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// randomPolicyTable fills a dense table with values drawn from a small
// cluster set so exact Q ties — the risky tie-break path — occur on
// nearly every step.
func randomPolicyTable(rng *rand.Rand, n int) *qtable.Table {
	q := qtable.New(n)
	vals := []float64{-1, 0, 0.25, 0.25, 0.5, 1, 1}
	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			if rng.Float64() < 0.35 {
				continue // leave zeros for sparse-equivalence
			}
			q.Set(s, e, vals[rng.Intn(len(vals))])
		}
	}
	return q
}

// sparseCopy mirrors a dense table into the map-backed representation.
func sparseCopy(q *qtable.Table) *qtable.Sparse {
	n := q.Size()
	sp := qtable.NewSparse(n)
	for s := 0; s < n; s++ {
		for e := 0; e < n; e++ {
			sp.Set(s, e, q.Get(s, e))
		}
	}
	return sp
}

// TestCompiledRolloutMatchesReference is the bit-identical property:
// for every environment, Q source, compiled variant, start item and
// mode, the compiled walk and the masked-ArgMax reference produce the
// same sequence.
func TestCompiledRolloutMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, envCase := range []struct {
		name string
		env  *mdp.Env
	}{
		{"course", walkCourseEnv(t)},
		{"trip", walkTripEnv(t)},
	} {
		env := envCase.env
		n := env.NumItems()

		// Q sources: trained policies from both TD rules plus adversarial
		// random tables saturated with exact ties.
		tables := map[string]*qtable.Table{}
		for _, alg := range []Algorithm{SARSA, QLearning} {
			cfg := Config{Episodes: 80, Alpha: 0.8, Gamma: 0.9,
				Start: RandomStart, Seed: 7, Algorithm: alg}
			res, err := Learn(env, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tables["trained-"+alg.String()] = res.Policy.Q
		}
		for i := 0; i < 4; i++ {
			tables["random-"+string(rune('a'+i))] = randomPolicyTable(rng, n)
		}

		for qName, q := range tables {
			// Compiled variants: the default prefix, prefixes short enough
			// that every multi-step walk exhausts them (k=1, k=2 exercise
			// the lazy-tail fallback on catalogs of any size), and an order
			// compiled from the sparse representation of the same values.
			variants := map[string]func(p *Policy){
				"dense-default": func(p *Policy) {},
				"dense-k1":      func(p *Policy) { forceCompile(p, q, 1) },
				"dense-k2":      func(p *Policy) { forceCompile(p, q, 2) },
				"sparse-k2":     func(p *Policy) { forceCompile(p, sparseCopy(q), 2) },
			}
			for vName, compile := range variants {
				pol := &Policy{Q: q, IDs: env.Catalog().IDs()}
				compile(pol)
				for start := 0; start < n; start++ {
					for _, guided := range []bool{false, true} {
						want := referenceRollout(t, pol, env, start, guided)
						var got []int
						var err error
						if guided {
							got, err = pol.RecommendGuided(env, start)
						} else {
							got, err = pol.Recommend(env, start)
						}
						if err != nil {
							t.Fatalf("%s/%s/%s start %d guided=%v: %v",
								envCase.name, qName, vName, start, guided, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s/%s/%s start %d guided=%v: compiled walk %v, reference %v",
								envCase.name, qName, vName, start, guided, got, want)
						}
					}
				}
			}
		}
	}
}

// TestNextGuidedMatchesReference drives the interactive-session entry
// point with exclusions against the reference step chooser.
func TestNextGuidedMatchesReference(t *testing.T) {
	env := walkCourseEnv(t)
	n := env.NumItems()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		q := randomPolicyTable(rng, n)
		pol := &Policy{Q: q, IDs: env.Catalog().IDs()}
		forceCompile(pol, q, 2)
		excluded := map[int]bool{rng.Intn(n): true, rng.Intn(n): true}
		exclude := func(a int) bool { return excluded[a] }

		ep, err := env.Start(rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		refEp, err := env.Start(ep.Last())
		if err != nil {
			t.Fatal(err)
		}
		for !ep.Done() {
			got, gotOK := pol.NextGuided(env, ep, exclude)
			want, wantOK := referenceNextAction(pol, env, refEp, true, exclude)
			if got != want || gotOK != wantOK {
				t.Fatalf("trial %d: NextGuided = (%d,%v), reference (%d,%v) at %v",
					trial, got, gotOK, want, wantOK, ep.Sequence())
			}
			if !gotOK {
				break
			}
			ep.Step(got)
			refEp.Step(want)
		}
	}
}

// TestEpisodePoolReuse pins the pool contract: a released episode is
// handed back reset, and an episode from a different environment is
// never pooled.
func TestEpisodePoolReuse(t *testing.T) {
	env := walkCourseEnv(t)
	ep, err := env.AcquireEpisode(0)
	if err != nil {
		t.Fatal(err)
	}
	ep.Step(ep.Candidates()[0])
	env.ReleaseEpisode(ep)

	ep2, err := env.AcquireEpisode(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ep2.Sequence(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("pooled episode not reset: sequence %v", got)
	}

	other := walkTripEnv(t)
	otherEp, err := other.AcquireEpisode(0)
	if err != nil {
		t.Fatal(err)
	}
	env.ReleaseEpisode(otherEp) // must be dropped, not pooled
	ep3, err := env.AcquireEpisode(2)
	if err != nil {
		t.Fatal(err)
	}
	if ep3 == otherEp {
		t.Fatal("episode from another environment entered the pool")
	}
}
