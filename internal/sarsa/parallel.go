// Batch-synchronous parallel SARSA (DESIGN §12). The episode budget is
// cut into fixed batches of MergeBatch episodes. Within a batch, up to
// Config.Workers goroutines claim episode indices from an atomic
// counter and walk them concurrently against the shared Q table, which
// is read-only for the duration of the batch; every step's TD target is
// evaluated against that frozen view and recorded into the episode's
// own qtable.Delta. At the batch barrier a single goroutine merges the
// deltas in episode-index order.
//
// Determinism argument (the same contract as the PR 1 experiments
// pool): an episode's trajectory and recorded targets depend only on
// (a) its index — every episode derives its rng from episodeSeed(seed,
// index), never from a shared stream — and (b) the frozen Q table,
// which is a pure function of the merges of earlier batches. The merge
// itself is single-threaded and ordered by episode index. No quantity
// anywhere depends on which worker ran which episode or in what order,
// so any Workers >= 1 produces bit-identical Q tables, returns and
// learning curves. The worker count is purely a throughput knob.
//
// Semantically the protocol is minibatch SARSA: episodes inside one
// batch bootstrap from values at most MergeBatch episodes stale. The
// sequential schedule (Workers = 0) remains the paper's Algorithm 1
// exactly as printed.
package sarsa

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
)

// MergeBatch is the number of episodes between deterministic merges.
// It is a protocol constant, not a tuning knob: changing it changes the
// learned values (episodes would bootstrap from a different frozen
// view), so it must be identical across worker counts — which it
// trivially is, being a constant.
const MergeBatch = 32

// episodeSeed derives the rng seed for one episode index from the run
// seed — a splitmix64 finalizer, so consecutive indices land far apart.
func episodeSeed(base int64, i int) int64 {
	z := uint64(base) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// initialQ builds the run's starting table: zeros, or a clone of the
// warm-start table when Config.Init is set.
func initialQ(cfg Config, n int) (*qtable.Table, error) {
	if cfg.Init == nil {
		return qtable.NewWithDenseMax(n, cfg.DenseQMax), nil
	}
	if cfg.Init.Size() != n {
		return nil, fmt.Errorf("sarsa: warm-start table over %d items, catalog has %d", cfg.Init.Size(), n)
	}
	return cfg.Init.Clone(), nil
}

// walker is one episode-walking slot: a reusable episode, scratch
// buffers and delta storage owned by whichever goroutine holds the slot.
type walker struct {
	ep *mdp.Episode
	sc scratch
}

// walkEpisode runs episode epi against the frozen table q, recording
// TD targets into d (reset first) and returning the episode's total
// undiscounted reward. It mirrors the sequential loop of LearnContext
// step for step; only the table write is deferred to the merge.
func (w *walker) walkEpisode(env *mdp.Env, q *qtable.Table, cfg Config, eps float64, epi int, d *qtable.Delta) (float64, error) {
	d.Reset()
	rng := rand.New(rand.NewSource(episodeSeed(cfg.Seed, epi)))
	start := cfg.Start
	if start == RandomStart {
		start = rng.Intn(env.NumItems())
	}
	var err error
	if w.ep == nil {
		w.ep, err = env.Start(start)
	} else {
		err = w.ep.Reset(start)
	}
	if err != nil {
		return 0, err
	}
	ep := w.ep

	var total float64
	s := start
	e := selectAction(ep, s, q, cfg.Selection, eps, rng, &w.sc)
	for e >= 0 {
		r := ep.Step(e)
		total += r
		sNext := e
		eNext := -1
		if !ep.Done() {
			eNext = selectAction(ep, sNext, q, cfg.Selection, eps, rng, &w.sc)
		}
		target := eNext
		if cfg.Algorithm == QLearning && !ep.Done() {
			if best, ok := q.ArgMax(sNext, ep.CanStep); ok {
				target = best
			}
		}
		// The TD target is fully evaluated against the frozen view here;
		// the merge only replays Q(s,e) ← Q(s,e) + α(target − Q(s,e)).
		tv := r
		if target >= 0 {
			tv += cfg.Gamma * q.Get(sNext, target)
		}
		d.Record(s, e, tv)
		s, e = sNext, eNext
	}
	return total, nil
}

// learnBatched is the Workers >= 1 schedule of LearnContext. The
// context is checked at batch boundaries (never inside the per-step hot
// loop): a deadline after at least one merged batch checkpoints the
// table learned so far with Result.Interrupted set, so the partial
// artifact reports a whole number of merge rounds.
func learnBatched(ctx context.Context, env *mdp.Env, cfg Config, q *qtable.Table) (*Result, error) {
	n := env.NumItems()
	workers := cfg.Workers
	if workers > cfg.Episodes {
		workers = cfg.Episodes
	}
	if workers > MergeBatch {
		workers = MergeBatch
	}
	eps := cfg.explore()

	walkers := make([]walker, workers)
	deltas := make([]*qtable.Delta, MergeBatch)
	for i := range deltas {
		deltas[i] = qtable.NewDelta(n)
	}
	rets := make([]float64, MergeBatch)
	errs := make([]error, MergeBatch)

	capHint := cfg.Episodes
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	returns := make([]float64, 0, capHint)
	batches := 0
	interrupted := false

	for lo := 0; lo < cfg.Episodes; lo += MergeBatch {
		if err := ctx.Err(); err != nil {
			if lo == 0 {
				return nil, err
			}
			interrupted = true
			break
		}
		hi := lo + MergeBatch
		if hi > cfg.Episodes {
			hi = cfg.Episodes
		}
		m := hi - lo

		spawn := workers
		if spawn > m {
			spawn = m
		}
		if spawn <= 1 {
			// One walker: no goroutines, same protocol. The delta/merge
			// split still runs so the result is bit-identical to any
			// other worker count.
			for i := 0; i < m; i++ {
				rets[i], errs[i] = walkers[0].walkEpisode(env, q, cfg, eps, lo+i, deltas[i])
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			wg.Add(spawn)
			for w := 0; w < spawn; w++ {
				wk := &walkers[w]
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= m {
							return
						}
						rets[i], errs[i] = wk.walkEpisode(env, q, cfg, eps, lo+i, deltas[i])
					}
				}()
			}
			wg.Wait()
		}
		for i := 0; i < m; i++ {
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		// Single-threaded merge in episode-index order — the only writes
		// the shared table ever sees.
		for i := 0; i < m; i++ {
			q.Merge(deltas[i], cfg.Alpha)
			returns = append(returns, rets[i])
			if cfg.OnEpisode != nil {
				cfg.OnEpisode(lo + i)
			}
		}
		batches++
	}

	return &Result{
		Policy:         &Policy{Q: q, IDs: env.Catalog().IDs()},
		EpisodeReturns: returns,
		Interrupted:    interrupted,
		MergeBatches:   batches,
	}, nil
}
