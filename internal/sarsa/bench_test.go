package sarsa

import (
	"math/rand"
	"testing"

	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/reward"
)

// benchEnv builds the Univ-1 DS-CT environment with its Table III
// defaults, mirroring core.New without importing it (an in-package test
// cannot depend on core, which imports sarsa).
func benchEnv(b *testing.B) (*mdp.Env, int) {
	b.Helper()
	inst := univ.Univ1DSCT()
	d := inst.Defaults
	rw := reward.Config{
		Delta:    d.Delta,
		Beta:     d.Beta,
		Epsilon:  d.Epsilon,
		Weights:  reward.Weights{Primary: d.W1, Secondary: d.W2, Category: d.CategoryWeights},
		Sim:      d.Sim,
		Template: inst.Soft.Template,
	}
	env, err := mdp.NewEnv(inst.Catalog, inst.Hard, inst.Soft, rw,
		mdp.CountBudget{H: inst.Hard.Length()})
	if err != nil {
		b.Fatal(err)
	}
	return env, inst.StartIndex()
}

// BenchmarkSelectAction measures one greedy action selection — the
// per-step core of Algorithm 1's learning loop: candidate scan plus an
// Equation 2 evaluation per candidate. Run with -benchmem; with the
// scratch buffers this must stay at zero allocs/op.
func BenchmarkSelectAction(b *testing.B) {
	env, start := benchEnv(b)
	for _, sel := range []Selection{RewardGreedy, QGreedy} {
		b.Run(sel.String(), func(b *testing.B) {
			ep, err := env.Start(start)
			if err != nil {
				b.Fatal(err)
			}
			q := qtable.New(env.NumItems())
			rng := rand.New(rand.NewSource(1))
			var sc scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e := selectAction(ep, ep.Last(), q, sel, 0, rng, &sc); e < 0 {
					b.Fatal("no action available")
				}
			}
		})
	}
}

// BenchmarkLearn measures a short end-to-end learning run, the unit the
// experiment pool fans out per seed.
func BenchmarkLearn(b *testing.B) {
	env, start := benchEnv(b)
	cfg := Config{Episodes: 50, Alpha: 0.75, Gamma: 0.95, Start: start, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Learn(env, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
