package sarsa_test

import (
	"context"
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/qtable"
	"github.com/rlplanner/rlplanner/internal/sarsa"
)

// builtins returns the six built-in instances the property test sweeps.
func builtins() []*dataset.Instance {
	insts := univ.Univ1All()
	insts = append(insts, univ.Univ2DS())
	insts = append(insts, trip.Instances()...)
	return insts
}

func sameTables(a, b *qtable.Table) bool {
	if a.Size() != b.Size() {
		return false
	}
	for s := 0; s < a.Size(); s++ {
		for e := 0; e < a.Size(); e++ {
			if a.Get(s, e) != b.Get(s, e) {
				return false
			}
		}
	}
	return true
}

// TestParallelBitIdentical is the tentpole's determinism property: for
// every built-in instance, any Workers >= 1 must produce a Q table,
// learning curve and batch count bit-identical to Workers = 1.
func TestParallelBitIdentical(t *testing.T) {
	const episodes = 120
	for _, inst := range builtins() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			learn := func(workers int) (*core.Planner, []float64) {
				t.Helper()
				p, err := core.New(inst, core.Options{
					Episodes:     episodes,
					Seed:         7,
					TrainWorkers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Learn(); err != nil {
					t.Fatal(err)
				}
				return p, p.LearningCurve()
			}
			ref, refCurve := learn(1)
			for _, w := range []int{2, 4, 7} {
				got, gotCurve := learn(w)
				if !sameTables(ref.Policy().Q, got.Policy().Q) {
					t.Errorf("workers=%d: Q table differs from workers=1", w)
				}
				if len(refCurve) != len(gotCurve) {
					t.Fatalf("workers=%d: curve length %d vs %d", w, len(gotCurve), len(refCurve))
				}
				for i := range refCurve {
					if refCurve[i] != gotCurve[i] {
						t.Errorf("workers=%d: episode %d return %v vs %v", w, i, gotCurve[i], refCurve[i])
						break
					}
				}
				if ref.MergeBatches() != got.MergeBatches() {
					t.Errorf("workers=%d: %d merge batches vs %d", w, got.MergeBatches(), ref.MergeBatches())
				}
			}
			if ref.MergeBatches() != (episodes+sarsa.MergeBatch-1)/sarsa.MergeBatch {
				t.Errorf("merge batches = %d, want ceil(%d/%d)", ref.MergeBatches(), episodes, sarsa.MergeBatch)
			}
		})
	}
}

// TestParallelRaceHammer drives many concurrent walkers over one shared
// environment and table; `go test -race` does the actual checking.
func TestParallelRaceHammer(t *testing.T) {
	env := courseEnv(t)
	cfg := defaultConfig()
	cfg.Episodes = 400
	cfg.Start = sarsa.RandomStart
	cfg.Workers = 8
	res, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpisodesCompleted() != cfg.Episodes {
		t.Fatalf("completed %d episodes, want %d", res.EpisodesCompleted(), cfg.Episodes)
	}
	if res.MergeBatches == 0 {
		t.Fatal("parallel run reported zero merge batches")
	}
}

// TestWarmStartInit: with a near-zero learning rate the learned table
// must stay at the warm-start values — proof the Init table actually
// seeds the run — and the Init table itself must never be mutated.
func TestWarmStartInit(t *testing.T) {
	env := courseEnv(t)
	init := qtable.New(env.NumItems())
	init.Fill(5.0)
	snapshot := init.Clone()

	for _, workers := range []int{0, 1, 4} {
		cfg := defaultConfig()
		cfg.Episodes = 10
		cfg.Alpha = 1e-12
		cfg.Workers = workers
		cfg.Init = init
		res, err := sarsa.Learn(env, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Policy.Q.Get(0, 1)
		if got < 4.9 || got > 5.1 {
			t.Fatalf("workers=%d: Q(0,1) = %v, want ≈ 5.0 from warm start", workers, got)
		}
	}
	if !sameTables(init, snapshot) {
		t.Fatal("learner mutated the caller's Init table")
	}
}

func TestWarmStartSizeMismatch(t *testing.T) {
	env := courseEnv(t)
	cfg := defaultConfig()
	cfg.Init = qtable.New(env.NumItems() + 3)
	if _, err := sarsa.Learn(env, cfg); err == nil {
		t.Fatal("expected error for warm-start table of wrong size")
	}
}

// TestParallelOnEpisodeOrder: the merge must report episodes strictly in
// index order regardless of which worker walked them.
func TestParallelOnEpisodeOrder(t *testing.T) {
	env := courseEnv(t)
	cfg := defaultConfig()
	cfg.Episodes = 100
	cfg.Workers = 4
	var seen []int
	cfg.OnEpisode = func(i int) { seen = append(seen, i) }
	if _, err := sarsa.Learn(env, cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != cfg.Episodes {
		t.Fatalf("observed %d episodes, want %d", len(seen), cfg.Episodes)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("episode order broken at position %d: got %d", i, v)
		}
	}
}

// TestParallelCheckpoint: a context cancelled after the first merged
// batch checkpoints at the batch boundary with Interrupted set.
func TestParallelCheckpoint(t *testing.T) {
	env := courseEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := defaultConfig()
	cfg.Episodes = 10 * sarsa.MergeBatch
	cfg.Workers = 4
	cfg.OnEpisode = func(i int) {
		if i == 0 {
			cancel()
		}
	}
	res, err := sarsa.LearnContext(ctx, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("expected Interrupted after mid-run cancellation")
	}
	if got := res.EpisodesCompleted(); got != sarsa.MergeBatch {
		t.Fatalf("checkpointed %d episodes, want one full batch (%d)", got, sarsa.MergeBatch)
	}
	if res.MergeBatches != 1 {
		t.Fatalf("merge batches = %d, want 1", res.MergeBatches)
	}

	// Already-dead context before any episode: an error, not a checkpoint.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := sarsa.LearnContext(dead, env, cfg); err == nil {
		t.Fatal("expected error for context dead before the first batch")
	}
}
