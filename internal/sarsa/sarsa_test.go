package sarsa_test

import (
	"bytes"
	"testing"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/fixture"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/reward"
	"github.com/rlplanner/rlplanner/internal/sarsa"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

func courseEnv(t *testing.T) *mdp.Env {
	t.Helper()
	rw := reward.Config{
		Delta:    0.6,
		Beta:     0.4,
		Epsilon:  0.0025,
		Weights:  reward.Weights{Primary: 0.6, Secondary: 0.4},
		Sim:      seqsim.Average,
		Template: fixture.CourseTemplate(),
	}
	env, err := mdp.NewEnv(fixture.Courses(), fixture.CourseHard(), fixture.CourseSoft(),
		rw, mdp.CountBudget{H: 6})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func defaultConfig() sarsa.Config {
	return sarsa.Config{
		Episodes: 200,
		Alpha:    0.75,
		Gamma:    0.95,
		Start:    0,
		Seed:     1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := defaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*sarsa.Config){
		func(c *sarsa.Config) { c.Episodes = 0 },
		func(c *sarsa.Config) { c.Alpha = 0 },
		func(c *sarsa.Config) { c.Alpha = 1.5 },
		func(c *sarsa.Config) { c.Gamma = -0.1 },
		func(c *sarsa.Config) { c.Gamma = 1.1 },
		func(c *sarsa.Config) { c.Explore = 2 },
	}
	for i, mutate := range cases {
		c := defaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLearnProducesPolicy(t *testing.T) {
	env := courseEnv(t)
	res, err := sarsa.Learn(env, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy.Q.Size() != env.NumItems() {
		t.Fatalf("Q size = %d, want %d", res.Policy.Q.Size(), env.NumItems())
	}
	if len(res.Policy.IDs) != env.NumItems() {
		t.Fatalf("IDs = %d entries", len(res.Policy.IDs))
	}
	if len(res.EpisodeReturns) != 200 {
		t.Fatalf("returns = %d entries", len(res.EpisodeReturns))
	}
	if res.Policy.Q.MaxAbs() == 0 {
		t.Fatal("Q table untouched by learning")
	}
}

func TestLearnDeterministicForSeed(t *testing.T) {
	env := courseEnv(t)
	cfg := defaultConfig()
	a, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < env.NumItems(); s++ {
		for e := 0; e < env.NumItems(); e++ {
			if a.Policy.Q.Get(s, e) != b.Policy.Q.Get(s, e) {
				t.Fatalf("Q(%d,%d) differs across identical runs", s, e)
			}
		}
	}

	cfg.Seed = 2
	c, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for s := 0; s < env.NumItems() && same; s++ {
		for e := 0; e < env.NumItems(); e++ {
			if a.Policy.Q.Get(s, e) != c.Policy.Q.Get(s, e) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical Q tables")
	}
}

func TestLearnValidatesStart(t *testing.T) {
	env := courseEnv(t)
	cfg := defaultConfig()
	cfg.Start = 99
	if _, err := sarsa.Learn(env, cfg); err == nil {
		t.Fatal("out-of-range start accepted")
	}
	cfg.Start = sarsa.RandomStart
	if _, err := sarsa.Learn(env, cfg); err != nil {
		t.Fatalf("RandomStart rejected: %v", err)
	}
}

func TestRecommendFillsBudget(t *testing.T) {
	env := courseEnv(t)
	res, err := sarsa.Learn(env, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := res.Policy.Recommend(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 6 {
		t.Fatalf("plan length = %d, want 6", len(plan))
	}
	if plan[0] != 0 {
		t.Fatalf("plan should start at item 0, got %d", plan[0])
	}
	seen := map[int]bool{}
	for _, i := range plan {
		if seen[i] {
			t.Fatalf("duplicate item %d in plan %v", i, plan)
		}
		seen[i] = true
	}
}

func TestRecommendDeterministic(t *testing.T) {
	env := courseEnv(t)
	res, _ := sarsa.Learn(env, defaultConfig())
	a, _ := res.Policy.Recommend(env, 1)
	b, _ := res.Policy.Recommend(env, 1)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recommendations differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestRecommendSizeMismatch(t *testing.T) {
	env := courseEnv(t)
	res, _ := sarsa.Learn(env, defaultConfig())

	// A policy learned over a different catalog size must be rejected.
	tripRw := reward.DefaultTripConfig(fixture.TripTemplate())
	tripEnv, err := mdp.NewEnv(fixture.Trip(), fixture.TripHard(), fixture.TripSoft(),
		tripRw, mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Policy.Recommend(tripEnv, 0); err == nil {
		t.Fatal("size mismatch accepted")
	}
	nilQ := &sarsa.Policy{}
	if _, err := nilQ.Recommend(env, 0); err == nil {
		t.Fatal("nil Q accepted")
	}
}

func TestLearnedPlanSatisfiesHardConstraints(t *testing.T) {
	// The core claim (Theorem 1 made executable): with the gated reward,
	// a sufficiently trained policy recommends plans satisfying P_hard.
	env := courseEnv(t)
	cfg := defaultConfig()
	cfg.Episodes = 500
	res, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Start from Data Mining (a secondary with no prereq): index 1.
	plan, err := res.Policy.RecommendGuided(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 6 {
		t.Fatalf("plan %v has length %d", plan, len(plan))
	}
	vs := constraints.Check(env.Catalog(), plan, env.Hard())
	// The toy catalog is tight (6 items, 2 with prereqs and gap 3), so a
	// perfect plan must sequence prereqs early; the learner should find one.
	if len(vs) != 0 {
		t.Logf("plan: %v", env.Catalog().SequenceIDs(plan))
		for _, v := range vs {
			t.Logf("violation: %s", v)
		}
		t.Fatal("learned plan violates hard constraints")
	}
}

func TestQGreedySelectionLearns(t *testing.T) {
	env := courseEnv(t)
	cfg := defaultConfig()
	cfg.Selection = sarsa.QGreedy
	res, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy.Q.MaxAbs() == 0 {
		t.Fatal("Q-greedy learning left table empty")
	}
}

func TestDisableExploreIsDeterministicPerEpisode(t *testing.T) {
	env := courseEnv(t)
	cfg := defaultConfig()
	cfg.DisableExplore = true
	cfg.Episodes = 10
	res, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without exploration and with a fixed start, every episode should
	// collect a similar return once ties settle; the learning curve must
	// still be recorded.
	if len(res.EpisodeReturns) != 10 {
		t.Fatalf("returns = %d", len(res.EpisodeReturns))
	}
}

func TestSelectionString(t *testing.T) {
	if sarsa.RewardGreedy.String() != "reward-greedy" || sarsa.QGreedy.String() != "q-greedy" {
		t.Fatal("Selection.String mismatch")
	}
}

func TestTripLearningEndToEnd(t *testing.T) {
	rw := reward.DefaultTripConfig(fixture.TripTemplate())
	env, err := mdp.NewEnv(fixture.Trip(), fixture.TripHard(), fixture.TripSoft(),
		rw, mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sarsa.Config{Episodes: 300, Alpha: 0.95, Gamma: 0.75, Start: sarsa.RandomStart, Seed: 3}
	res, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	louvre, _ := env.Catalog().Index("Louvre Museum")
	plan, err := res.Policy.Recommend(env, louvre)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) < 2 {
		t.Fatalf("trip plan too short: %v", plan)
	}
	if env.Catalog().TotalCredits(plan) > 6 {
		t.Fatalf("trip exceeds time budget: %v", env.Catalog().TotalCredits(plan))
	}
	// No two consecutive POIs of the same theme.
	for i := 1; i < len(plan); i++ {
		a, b := env.Catalog().At(plan[i-1]), env.Catalog().At(plan[i])
		if a.Category == b.Category && a.Category != item.NoCategory {
			t.Fatalf("theme repeat in %v", env.Catalog().SequenceIDs(plan))
		}
	}
}

func TestQLearningAlgorithm(t *testing.T) {
	env := courseEnv(t)
	cfg := defaultConfig()
	cfg.Algorithm = sarsa.QLearning
	res, err := sarsa.Learn(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy.Q.MaxAbs() == 0 {
		t.Fatal("Q-learning left the table empty")
	}
	// SARSA and Q-learning must genuinely differ on the same seed.
	sres, err := sarsa.Learn(env, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for s := 0; s < env.NumItems() && same; s++ {
		for e := 0; e < env.NumItems(); e++ {
			if res.Policy.Q.Get(s, e) != sres.Policy.Q.Get(s, e) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("SARSA and Q-learning produced identical tables")
	}
}

func TestAlgorithmString(t *testing.T) {
	if sarsa.SARSA.String() != "sarsa" || sarsa.QLearning.String() != "q-learning" {
		t.Fatal("Algorithm.String mismatch")
	}
}

func TestPolicyPersistRoundTrip(t *testing.T) {
	env := courseEnv(t)
	res, err := sarsa.Learn(env, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Policy.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := sarsa.ReadPolicy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Q.Size() != res.Policy.Q.Size() {
		t.Fatal("size changed in round trip")
	}
	for s := 0; s < loaded.Q.Size(); s++ {
		for e := 0; e < loaded.Q.Size(); e++ {
			if loaded.Q.Get(s, e) != res.Policy.Q.Get(s, e) {
				t.Fatal("Q values changed in round trip")
			}
		}
	}
	if len(loaded.IDs) != len(res.Policy.IDs) {
		t.Fatal("ids lost in round trip")
	}
	// Corrupt inputs are rejected.
	if _, err := sarsa.ReadPolicy(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk policy accepted")
	}
	var empty sarsa.Policy
	if err := empty.WriteGob(&buf); err == nil {
		t.Fatal("nil-Q policy persisted")
	}
}

func TestRankActions(t *testing.T) {
	env := courseEnv(t)
	res, err := sarsa.Learn(env, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := env.Start(0)
	if err != nil {
		t.Fatal(err)
	}
	ranked := res.Policy.RankActions(env, ep, 4, nil)
	if len(ranked) == 0 || len(ranked) > 4 {
		t.Fatalf("ranked = %d entries", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Tier > ranked[i].Tier {
			t.Fatalf("tiers out of order: %+v", ranked)
		}
		if ranked[i-1].Tier == ranked[i].Tier && ranked[i-1].Reward < ranked[i].Reward {
			t.Fatalf("rewards out of order within tier: %+v", ranked)
		}
	}
	// Excluding the top choice removes it.
	top := ranked[0].Item
	again := res.Policy.RankActions(env, ep, 4, func(a int) bool { return a == top })
	for _, r := range again {
		if r.Item == top {
			t.Fatal("excluded item still ranked")
		}
	}
	// k ≤ 0 and finished episodes return nothing.
	if got := res.Policy.RankActions(env, ep, 0, nil); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestNextGuidedDriveToCompletion(t *testing.T) {
	env := courseEnv(t)
	res, err := sarsa.Learn(env, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := env.Start(1)
	steps := 0
	for !ep.Done() {
		e, ok := res.Policy.NextGuided(env, ep, nil)
		if !ok {
			break
		}
		ep.Step(e)
		steps++
		if steps > env.NumItems() {
			t.Fatal("NextGuided looped past catalog size")
		}
	}
	if ep.Len() != 6 {
		t.Fatalf("drive ended at %d items", ep.Len())
	}
	if e, ok := res.Policy.NextGuided(env, ep, nil); ok {
		t.Fatalf("NextGuided returned %d on a done episode", e)
	}
}

func TestGuidedTripPacingBudgets(t *testing.T) {
	// The guided walk on a length-constrained trip must pace the time and
	// distance budgets (gap-aware completion feasibility) — the toy trip
	// has a 2+3 split, a 6-hour ceiling and the theme-gap rule.
	rw := reward.DefaultTripConfig(fixture.TripTemplate())
	env, err := mdp.NewEnv(fixture.Trip(), fixture.TripHard(), fixture.TripSoft(),
		rw, mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sarsa.Learn(env, sarsa.Config{
		Episodes: 300, Alpha: 0.95, Gamma: 0.75, Start: sarsa.RandomStart, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	louvre, _ := env.Catalog().Index("Louvre Museum")
	plan, err := res.Policy.RecommendGuided(env, louvre)
	if err != nil {
		t.Fatal(err)
	}
	// The pacing keeps the itinerary at full length within the time
	// budget; on this deliberately tight toy instance the remaining soft
	// preferences are best-effort.
	if len(plan) != 5 {
		t.Fatalf("paced trip plan = %d POIs, want the full 5: %v",
			len(plan), env.Catalog().SequenceIDs(plan))
	}
	if got := env.Catalog().TotalCredits(plan); got > 6 {
		t.Fatalf("plan spends %v hours", got)
	}
	for _, v := range constraints.Check(env.Catalog(), plan, fixture.TripHard()) {
		t.Logf("best-effort residual violation: %v", v)
		if v.Kind == constraints.ViolationCredits || v.Kind == constraints.ViolationLength {
			t.Fatalf("pacing failed its own guarantee: %v", v)
		}
	}
}

func TestGuidedTripPacingWithDistance(t *testing.T) {
	// With a distance threshold the per-slot distance share also gates
	// candidates.
	hard := fixture.TripHard()
	hard.MaxDistanceKm = 6
	rw := reward.DefaultTripConfig(fixture.TripTemplate())
	env, err := mdp.NewEnv(fixture.Trip(), hard, fixture.TripSoft(),
		rw, mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sarsa.Learn(env, sarsa.Config{
		Episodes: 300, Alpha: 0.95, Gamma: 0.75, Start: sarsa.RandomStart, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	louvre, _ := env.Catalog().Index("Louvre Museum")
	plan, err := res.Policy.RecommendGuided(env, louvre)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) < 3 {
		t.Fatalf("distance-paced plan too short: %v", env.Catalog().SequenceIDs(plan))
	}
	for _, v := range constraints.Check(env.Catalog(), plan, hard) {
		if v.Kind == constraints.ViolationDistance {
			t.Fatalf("distance violated despite pacing: %v", v)
		}
	}
}
