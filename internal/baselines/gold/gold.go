// Package gold synthesizes the "fully manual gold standard" of §IV-A2: a
// handcrafted-quality plan that satisfies every hard constraint and matches
// one of the expert template permutations exactly. For courses such a plan
// scores the perfect-match bound H (10 for Univ-1, 15 for Univ-2); for
// trips the synthesizer additionally maximizes POI popularity, mirroring a
// travel agent picking the most famous feasible POIs.
//
// The synthesizer runs a depth-first search over template slots with
// popularity/coverage-ordered candidates and a node cap, so it behaves
// like an expert: near-greedy with a little lookahead.
package gold

import (
	"context"
	"fmt"
	"sort"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
)

// maxNodes caps the DFS so pathological instances fail fast instead of
// hanging; real instances need far fewer nodes.
const maxNodes = 200000

// distCache serves leg distances from the same tiered distance store
// the learner's environment uses (geo.NewDistStore), so the gold
// synthesizer and the MDP measure identical geometry at every catalog
// size — the old form silently switched representation at the matrix
// cap without any signal; now the shared store reports its out-of-band
// recomputations through geo.FallbackTotal (dist_fallback_total).
type distCache struct {
	store geo.Store
}

// newDistCache builds the cache for a catalog; active is the instance's
// "distance constraint in play" flag (leg is only consulted when it is).
func newDistCache(c *item.Catalog, active bool) distCache {
	if !active {
		return distCache{}
	}
	pts := make([]geo.Point, c.Len())
	for i := range pts {
		m := c.At(i)
		pts[i] = geo.Point{Lat: m.Lat, Lon: m.Lon}
	}
	return distCache{store: geo.NewDistStore(pts, 0)}
}

// leg returns the distance between items i and j in kilometers.
func (d distCache) leg(i, j int) float64 {
	return d.store.Dist(i, j)
}

// Plan synthesizes a gold-standard plan for the instance. For instances
// with a length/split requirement it tries each template permutation in
// order and returns the first full assignment. For budget-only instances
// (the city trips, whose hard constraint is the visitation time) it acts
// like a travel agent: greedily add the most popular POI that keeps every
// hard constraint satisfied, until the budget is spent.
func Plan(inst *dataset.Instance) ([]int, error) {
	return PlanContext(context.Background(), inst)
}

// PlanContext is Plan under a context: the DFS checks the deadline every
// ctxCheckStride nodes and the greedy itinerary builder checks it per
// slot, so a canceled training budget abandons the synthesis promptly
// instead of exploring up to the full node cap.
func PlanContext(ctx context.Context, inst *dataset.Instance) ([]int, error) {
	if inst.Hard.Length() == 0 {
		return greedyPopular(ctx, inst)
	}
	for _, perm := range inst.Soft.Template {
		plan, err := fill(ctx, inst, perm)
		if err != nil {
			return nil, err
		}
		if plan != nil {
			return plan, nil
		}
	}
	return nil, fmt.Errorf("gold: no constraint-perfect plan exists for %s", inst.Name)
}

// ctxCheckStride is how many DFS nodes may expand between context
// checks — frequent enough to cancel within microseconds, rare enough to
// keep the check out of the per-node cost.
const ctxCheckStride = 256

// greedyPopular builds the travel-agent gold itinerary: highest-popularity
// feasible POI first, repeated until nothing fits the time budget.
func greedyPopular(ctx context.Context, inst *dataset.Instance) ([]int, error) {
	c := inst.Catalog
	h := inst.Hard
	var plan []int
	chosen := make([]bool, c.Len())
	positions := make(map[string]int, c.Len())
	dc := newDistCache(c, h.MaxDistanceKm > 0)
	var credits, distance float64

	// Seed with the single most popular POI.
	for len(plan) < c.Len() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best, bestPop := -1, -1.0
		for idx := 0; idx < c.Len(); idx++ {
			if chosen[idx] {
				continue
			}
			m := c.At(idx)
			if credits+m.Credits > h.Credits {
				continue
			}
			if !prereq.Satisfied(m.Prereq, len(plan), positions, h.Gap) {
				continue
			}
			if h.ThemeGap && len(plan) > 0 {
				prev := c.At(plan[len(plan)-1])
				if m.Category >= 0 && m.Category == prev.Category {
					continue
				}
			}
			if h.MaxDistanceKm > 0 && len(plan) > 0 &&
				distance+dc.leg(plan[len(plan)-1], idx) > h.MaxDistanceKm {
				continue
			}
			if m.Popularity > bestPop {
				best, bestPop = idx, m.Popularity
			}
		}
		if best < 0 {
			break
		}
		m := c.At(best)
		if h.MaxDistanceKm > 0 && len(plan) > 0 {
			distance += dc.leg(plan[len(plan)-1], best)
		}
		positions[m.ID] = len(plan)
		plan = append(plan, best)
		chosen[best] = true
		credits += m.Credits
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("gold: no feasible itinerary for %s", inst.Name)
	}
	return plan, nil
}

// searchState tracks the DFS bookkeeping.
type searchState struct {
	ctx       context.Context
	inst      *dataset.Instance
	perm      []item.Type
	plan      []int
	positions map[string]int
	chosen    []bool
	dc        distCache
	credits   float64
	distance  float64
	nodes     int
	err       error // ctx error that aborted the search, if any
}

// fill attempts to realize one permutation; (nil, nil) when impossible
// within the node budget, an error only when the context was canceled.
func fill(ctx context.Context, inst *dataset.Instance, perm []item.Type) ([]int, error) {
	st := &searchState{
		ctx:       ctx,
		inst:      inst,
		perm:      perm,
		positions: make(map[string]int, len(perm)),
		chosen:    make([]bool, inst.Catalog.Len()),
		dc:        newDistCache(inst.Catalog, inst.Hard.MaxDistanceKm > 0),
	}
	if st.dfs(0) {
		return st.plan, nil
	}
	return nil, st.err
}

func (st *searchState) dfs(pos int) bool {
	if pos == len(st.perm) {
		// Course plans must also reach the credit floor.
		if st.inst.Hard.CreditMode == constraints.MinCredits &&
			st.credits < st.inst.Hard.Credits {
			return false
		}
		return true
	}
	if st.nodes >= maxNodes || st.err != nil {
		return false
	}
	for _, cand := range st.candidates(pos) {
		if st.nodes%ctxCheckStride == 0 {
			if err := st.ctx.Err(); err != nil {
				st.err = err
				return false
			}
		}
		st.nodes++
		st.push(pos, cand)
		if st.dfs(pos + 1) {
			return true
		}
		st.pop(pos, cand)
	}
	return false
}

// candidates returns the feasible items for a slot, best-first: higher
// popularity, then more topics, then id for determinism.
func (st *searchState) candidates(pos int) []int {
	c := st.inst.Catalog
	h := st.inst.Hard
	want := st.perm[pos]
	var out []int
	for idx := 0; idx < c.Len(); idx++ {
		if st.chosen[idx] {
			continue
		}
		m := c.At(idx)
		if m.Type != want {
			continue
		}
		if !prereq.Satisfied(m.Prereq, pos, st.positions, h.Gap) {
			continue
		}
		if h.CreditMode == constraints.MaxCredits && st.credits+m.Credits > h.Credits {
			continue
		}
		if h.ThemeGap && pos > 0 {
			prev := c.At(st.plan[pos-1])
			if m.Category >= 0 && m.Category == prev.Category {
				continue
			}
		}
		if h.MaxDistanceKm > 0 && pos > 0 &&
			st.distance+st.dc.leg(st.plan[pos-1], idx) > h.MaxDistanceKm {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(a, b int) bool {
		ma, mb := c.At(out[a]), c.At(out[b])
		if ma.Popularity != mb.Popularity {
			return ma.Popularity > mb.Popularity
		}
		ta, tb := ma.Topics.Count(), mb.Topics.Count()
		if ta != tb {
			return ta > tb
		}
		return ma.ID < mb.ID
	})
	return out
}

func (st *searchState) push(pos, idx int) {
	c := st.inst.Catalog
	m := c.At(idx)
	if pos > 0 && st.inst.Hard.MaxDistanceKm > 0 {
		st.distance += st.dc.leg(st.plan[pos-1], idx)
	}
	st.plan = append(st.plan, idx)
	st.positions[m.ID] = pos
	st.chosen[idx] = true
	st.credits += m.Credits
}

func (st *searchState) pop(pos, idx int) {
	c := st.inst.Catalog
	m := c.At(idx)
	st.plan = st.plan[:len(st.plan)-1]
	delete(st.positions, m.ID)
	st.chosen[idx] = false
	st.credits -= m.Credits
	if pos > 0 && st.inst.Hard.MaxDistanceKm > 0 {
		st.distance -= st.dc.leg(st.plan[len(st.plan)-1], idx)
	}
}
