package gold

import (
	"context"
	"errors"
	"testing"

	"github.com/rlplanner/rlplanner/internal/dataset/univ"
)

// TestPlanContextCanceled pins the training-budget contract: a canceled
// context aborts the template search with the context's error instead of
// exploring up to the node cap.
func TestPlanContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlanContext(ctx, univ.Univ1DSCT()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPlanContextBackground keeps the ordinary path intact: without a
// deadline the synthesizer still finds the constraint-perfect plan.
func TestPlanContextBackground(t *testing.T) {
	seq, err := PlanContext(context.Background(), univ.Univ1DSCT())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("empty gold plan")
	}
}
