// Package baselines_test exercises the three §IV-A2 baselines together so
// their relative behaviour — gold ≥ RL-Planner ≥ EDA ≥ OMEGA — can be
// asserted in one place.
package baselines_test

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/baselines/eda"
	"github.com/rlplanner/rlplanner/internal/baselines/gold"
	"github.com/rlplanner/rlplanner/internal/baselines/omega"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/prereq"
)

func TestGoldDeterministic(t *testing.T) {
	inst := univ.Univ1DSCT()
	a, err := gold.Plan(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gold.Plan(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("gold plans differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("gold plans differ")
		}
	}
}

func TestEDAPlanLengthAndValidity(t *testing.T) {
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eda.Plan(p.Env(), inst.StartIndex(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 10 {
		t.Fatalf("EDA plan length = %d, want 10", len(plan))
	}
	seen := map[int]bool{}
	for _, i := range plan {
		if seen[i] {
			t.Fatal("duplicate in EDA plan")
		}
		seen[i] = true
	}
}

func TestEDAAveragePlan(t *testing.T) {
	inst := univ.Univ1DSCT()
	p, _ := core.New(inst, core.Options{Seed: 1})
	plans, err := eda.AveragePlan(p.Env(), inst.StartIndex(), 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 5 {
		t.Fatalf("got %d plans", len(plans))
	}
	if _, err := eda.AveragePlan(p.Env(), 0, 0, 1); err == nil {
		t.Fatal("zero runs accepted")
	}
}

func TestOmegaCoCoverage(t *testing.T) {
	inst := univ.Univ1DSCT()
	m := omega.CoCoverage(inst.Catalog)
	n := inst.Catalog.Len()
	if len(m) != n || len(m[0]) != n {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	// Diagonal = |T_i|; symmetric; superadditive vs singleton.
	for i := 0; i < n; i++ {
		ti := inst.Catalog.At(i).Topics.Count()
		if m[i][i] != ti {
			t.Fatalf("M[%d][%d] = %d, want |T_i| = %d", i, i, m[i][i], ti)
		}
		for j := 0; j < n; j++ {
			if m[i][j] != m[j][i] {
				t.Fatalf("matrix asymmetric at %d,%d", i, j)
			}
			if m[i][j] < ti {
				t.Fatalf("union smaller than part at %d,%d", i, j)
			}
		}
	}
}

func TestOmegaTopologicalOrder(t *testing.T) {
	inst := univ.Univ1DSCT()
	order := omega.TopologicalOrder(inst.Catalog)
	if len(order) != inst.Catalog.Len() {
		t.Fatalf("order covers %d of %d items", len(order), inst.Catalog.Len())
	}
	pos := make(map[int]int, len(order))
	for p, idx := range order {
		pos[idx] = p
	}
	// Every antecedent precedes its dependents.
	for i := 0; i < inst.Catalog.Len(); i++ {
		m := inst.Catalog.At(i)
		if m.Prereq == nil {
			continue
		}
		// The topological order is built over all reference edges, so
		// every referenced antecedent precedes its dependent.
		for _, ref := range prereq.ReferencedItems(m.Prereq) {
			j, ok := inst.Catalog.Index(ref)
			if !ok {
				t.Fatalf("%s references unknown %s", m.ID, ref)
			}
			if pos[j] > pos[i] {
				t.Fatalf("%s ordered before its antecedent %s", m.ID, ref)
			}
		}
	}
}

func TestOmegaPlanOftenViolatesConstraints(t *testing.T) {
	// The paper's central negative result: adapted OMEGA fails the TPP
	// hard constraints most of the time (0 scores in Figure 1).
	violations := 0
	instances := append(univ.Univ1All(), univ.Univ2DS())
	for _, inst := range instances {
		p, err := core.New(inst, core.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := omega.Plan(p.Env(), inst.StartIndex())
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) == 0 {
			t.Fatalf("%s: empty OMEGA plan", inst.Name)
		}
		if eval.Score(inst, plan) == 0 {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("OMEGA satisfied constraints everywhere — adaptation too strong")
	}
}

func TestOmegaTripPlan(t *testing.T) {
	inst := trip.NYC().Instance
	p, err := core.New(inst, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := omega.Plan(p.Env(), inst.StartIndex())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Fatal("empty trip plan")
	}
	// Time budget is enforced by the environment even for OMEGA.
	if inst.Catalog.TotalCredits(plan) > inst.Hard.Credits {
		t.Fatal("OMEGA exceeded the environment's time budget")
	}
}

func TestRelativeOrderingOnDSCT(t *testing.T) {
	// Figure 1's qualitative shape on one instance: gold ≥ RL-Planner,
	// RL-Planner > 0, and OMEGA ≤ EDA ≤ RL-Planner.
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{Episodes: 300, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Learn(); err != nil {
		t.Fatal(err)
	}
	rlPlan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	rl := eval.Score(inst, rlPlan)

	goldPlan, err := gold.Plan(inst)
	if err != nil {
		t.Fatal(err)
	}
	gd := eval.Score(inst, goldPlan)

	edaPlans, err := eda.AveragePlan(p.Env(), inst.StartIndex(), 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	var ed float64
	for _, pl := range edaPlans {
		ed += eval.Score(inst, pl)
	}
	ed /= float64(len(edaPlans))

	omegaPlan, err := omega.Plan(p.Env(), inst.StartIndex())
	if err != nil {
		t.Fatal(err)
	}
	om := eval.Score(inst, omegaPlan)

	t.Logf("gold=%.2f rl=%.2f eda=%.2f omega=%.2f", gd, rl, ed, om)
	if rl <= 0 {
		t.Fatal("RL-Planner scored 0")
	}
	if gd < rl {
		t.Fatalf("gold %v below RL %v", gd, rl)
	}
	if om > rl {
		t.Fatalf("OMEGA %v above RL %v", om, rl)
	}
}

func TestOmegaCoVisitMatrix(t *testing.T) {
	sequences := [][]int{
		{0, 1, 2},
		{0, 2},
		{2, 0},
		{9, 0}, // out-of-range index skipped
	}
	m := omega.CoVisit(3, sequences)
	if m[0][1] != 1 || m[0][2] != 2 || m[1][2] != 1 {
		t.Fatalf("co-visit counts wrong: %v", m)
	}
	if m[2][0] != 1 {
		t.Fatalf("reverse order not counted: %v", m)
	}
	if m[1][0] != 0 {
		t.Fatalf("unobserved pair counted: %v", m)
	}
}

func TestOmegaPlanUtilityCoVisitOnTrips(t *testing.T) {
	// The original-OMEGA variant runs on the Flickr itineraries.
	city := trip.NYC()
	inst := city.Instance
	p, err := core.New(inst, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]int, len(city.Itineraries))
	for i, it := range city.Itineraries {
		seqs[i] = []int(it)
	}
	m := omega.CoVisit(inst.Catalog.Len(), seqs)
	plan, err := omega.PlanUtility(p.Env(), inst.StartIndex(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Fatal("empty co-visit OMEGA plan")
	}
	// The environment still caps the time budget.
	if inst.Catalog.TotalCredits(plan) > inst.Hard.Credits {
		t.Fatal("co-visit OMEGA exceeded the time budget")
	}
}
