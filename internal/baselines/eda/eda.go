// Package eda implements the EDA next-step baseline of §IV-A2: a
// model-free greedy walker that, at every step, takes the action with the
// highest Equation 2 reward, breaking ties uniformly at random. It adapts
// the next-step-recommendation paradigm of exploratory data analysis to
// TPP; unlike RL-Planner it learns nothing, so the N/α/γ/s1 parameter
// sweeps do not apply to it (the "—" cells of the robustness tables).
package eda

import (
	"fmt"
	"math/rand"

	"github.com/rlplanner/rlplanner/internal/mdp"
)

// Plan greedily walks the environment from start until the trajectory
// budget is exhausted or no candidate remains. seed drives tie-breaking.
func Plan(env *mdp.Env, start int, seed int64) ([]int, error) {
	ep, err := env.Start(start)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var cands, ties []int // reused across steps; Reward itself is allocation-free
	for !ep.Done() {
		cands = ep.AppendCandidates(cands[:0])
		if len(cands) == 0 {
			break
		}
		best := 0.0
		ties = ties[:0]
		for i, c := range cands {
			r := ep.Reward(c)
			switch {
			case i == 0 || r > best:
				best = r
				ties = ties[:0]
				ties = append(ties, c)
			case r == best:
				ties = append(ties, c)
			}
		}
		ep.Step(ties[rng.Intn(len(ties))])
	}
	return ep.Sequence(), nil
}

// AveragePlan runs Plan over several seeds and returns the plans; callers
// average their scores (the paper reports EDA means over 10 runs).
func AveragePlan(env *mdp.Env, start int, runs int, baseSeed int64) ([][]int, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("eda: runs = %d", runs)
	}
	out := make([][]int, 0, runs)
	for r := 0; r < runs; r++ {
		p, err := Plan(env, start, baseSeed+int64(r))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
