package omega

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/rlplanner/rlplanner/internal/dataset/univ"
)

// TestCoCoverageContextCanceled pins the training-budget contract: a
// canceled context aborts the utility-matrix computation promptly.
func TestCoCoverageContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CoCoverageContext(ctx, univ.Univ1DSCT().Catalog); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCoCoverageContextMatchesPlain keeps both entry points in lockstep.
func TestCoCoverageContextMatchesPlain(t *testing.T) {
	c := univ.Univ1DSCT().Catalog
	got, err := CoCoverageContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if want := CoCoverage(c); !reflect.DeepEqual(got, want) {
		t.Fatal("CoCoverageContext diverges from CoCoverage")
	}
}
