// Package omega implements the adapted OMEGA baseline of §IV-A2. OMEGA
// (Tschiatschek, Singla, Krause: "Selecting sequences of items via
// submodular maximization", AAAI 2017) greedily selects edges of an item
// graph to maximize a sequence utility over a DAG. It is not designed to
// satisfy constraints, so the paper adapts it into a two-step process:
//
//  1. a first sub-sequence is generated greedily to satisfy the gap
//     constraint (antecedents placed early, in topological order);
//  2. a second sub-sequence is recommended by OMEGA proper — greedy edge
//     selection over a co-coverage matrix redesigned to hold the total
//     number of topics covered by item pairs (instead of co-consumption
//     frequencies, which TPP lacks);
//
// and the two are concatenated to meet the length constraint. Exactly as
// the paper reports, the concatenation routinely violates the
// primary/secondary split, the ε-coverage gating and late antecedents —
// which is why OMEGA scores 0 on most instances of Figure 1.
package omega

import (
	"context"
	"sort"

	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/prereq"
)

// CoCoverage builds the redesigned OMEGA matrix: M[i][j] = |T_i ∪ T_j|,
// the total number of topics items i and j cover together.
func CoCoverage(c *item.Catalog) [][]int {
	m, _ := CoCoverageContext(context.Background(), c)
	return m
}

// CoCoverageContext is CoCoverage under a context: the O(n²) union scan
// checks the deadline once per row, so a canceled training budget
// abandons the matrix promptly instead of finishing a large catalog.
func CoCoverageContext(ctx context.Context, c *item.Catalog) ([][]int, error) {
	n := c.Len()
	m := make([][]int, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m[i] = make([]int, n)
		ti := c.At(i).Topics
		for j := 0; j < n; j++ {
			m[i][j] = ti.Union(c.At(j).Topics).Count()
		}
	}
	return m, nil
}

// CoVisit builds OMEGA's *original* utility matrix from consumption logs:
// M[i][j] counts the sequences in which item i is consumed before item j
// (§IV-A2: "Originally, OMEGA uses a matrix that captures the number of
// times item i is consumed before item j"). For the trip datasets the
// sequences are the simulated Flickr itineraries. n is the catalog size;
// out-of-range indices in a sequence are skipped.
func CoVisit(n int, sequences [][]int) [][]int {
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for _, seq := range sequences {
		for i := 0; i < len(seq); i++ {
			a := seq[i]
			if a < 0 || a >= n {
				continue
			}
			for j := i + 1; j < len(seq); j++ {
				b := seq[j]
				if b < 0 || b >= n || b == a {
					continue
				}
				m[a][b]++
			}
		}
	}
	return m
}

// TopologicalOrder orders items so that antecedents precede dependents
// (Kahn's algorithm over the prerequisite DAG; ties resolve by catalog
// index). Items in prerequisite cycles — which valid catalogs do not have
// — are appended at the end in index order.
func TopologicalOrder(c *item.Catalog) []int {
	n := c.Len()
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, ref := range prereq.ReferencedItems(c.At(i).Prereq) {
			if j, ok := c.Index(ref); ok {
				indeg[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		sort.Ints(queue)
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, d := range dependents[i] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	for i := 0; i < n; i++ {
		if indeg[i] > 0 {
			order = append(order, i)
		}
	}
	return order
}

// Plan produces the adapted OMEGA recommendation from start, using the
// redesigned co-coverage utility. The target length is the hard
// constraint's #primary + #secondary; for trips the environment budget
// additionally truncates.
func Plan(env *mdp.Env, start int) ([]int, error) {
	return PlanUtility(env, start, CoCoverage(env.Catalog()))
}

// PlanUtility is Plan with an explicit utility matrix — use CoVisit for
// the original consumption-frequency OMEGA on datasets that have logs.
func PlanUtility(env *mdp.Env, start int, m [][]int) ([]int, error) {
	c := env.Catalog()
	h := env.Hard()
	target := h.Length()
	if target <= 0 || target > c.Len() {
		target = c.Len()
	}

	ep, err := env.Start(start)
	if err != nil {
		return nil, err
	}
	used := map[int]bool{start: true}

	// Step 1: gap-satisfying prefix. Walk the topological order and place
	// the antecedent items first, so later dependents can satisfy gaps.
	prefixLen := h.Gap
	if prefixLen > target/2 {
		prefixLen = target / 2
	}
	isAntecedent := antecedentSet(c)
	for _, idx := range TopologicalOrder(c) {
		if ep.Len() >= 1+prefixLen {
			break
		}
		if used[idx] || !isAntecedent[idx] || !ep.CanStep(idx) {
			continue
		}
		ep.Step(idx)
		used[idx] = true
	}

	// Step 2: OMEGA proper — greedy edge selection maximizing the utility
	// of the edge from the current item, oblivious to constraints other
	// than "not chosen yet".
	for ep.Len() < target {
		cur := ep.Last()
		best, bestIdx := -1, -1
		for j := 0; j < c.Len(); j++ {
			if used[j] || !ep.CanStep(j) {
				continue
			}
			if m[cur][j] > best {
				best, bestIdx = m[cur][j], j
			}
		}
		if bestIdx < 0 {
			break
		}
		ep.Step(bestIdx)
		used[bestIdx] = true
	}
	return ep.Sequence(), nil
}

// antecedentSet marks items that are prerequisites of some other item
// (the set P of the paper).
func antecedentSet(c *item.Catalog) []bool {
	out := make([]bool, c.Len())
	for i := 0; i < c.Len(); i++ {
		for _, ref := range prereq.ReferencedItems(c.At(i).Prereq) {
			if j, ok := c.Index(ref); ok {
				out[j] = true
			}
		}
	}
	return out
}
