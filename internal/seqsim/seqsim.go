// Package seqsim implements the Levenshtein-inspired interleaving
// similarity of §III-B.4. Given the primary/secondary type sequence of a
// partial plan of length k and an ideal permutation I from the template IT:
//
//   - the match vector c has c[j] = 1 iff the j-th chosen type equals I[j];
//   - ζ is the maximum length of a consecutive run of matches in c;
//   - Sim(s, I)^k = ζ · Σ_j c[j] / k                           (Equation 6)
//   - AvgSim(s, IT)^k = Σ_{I∈IT} Sim(s, I)^k / |IT|            (Equation 7)
//
// The paper's worked example: a session {primary, secondary, primary,
// primary} against the Example 1 template yields match vectors
// {[1,0,0,1], [1,1,0,0], [1,1,0,1]}, Sim values {0.5, 1, 1.5} and
// AvgSim = 1. TestPaperWorkedExample pins these numbers.
//
// The paper also evaluates a variant using the minimum similarity over the
// template instead of the average (§III-B, §IV-A4); MinSim provides it.
package seqsim

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/item"
)

// Mode selects how per-permutation similarities aggregate over IT.
type Mode uint8

const (
	// Average aggregates with AvgSim (Equation 7), the paper's default.
	Average Mode = iota
	// Minimum aggregates with the minimum over IT, the paper's variant.
	Minimum
	// LevenshteinAverage replaces Eq. 6 with the true edit-distance
	// similarity, averaged over IT — an ablation of the "inspired by
	// Levenshtein" design (see LevenshteinSim).
	LevenshteinAverage
)

// String returns "avg", "min" or "lev".
func (m Mode) String() string {
	switch m {
	case Average:
		return "avg"
	case Minimum:
		return "min"
	case LevenshteinAverage:
		return "lev"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// MatchVector returns c_I: a 0/1 vector over the first k = len(seq)
// positions where bit j reports whether seq[j] matches ideal[j].
// If the sequence is longer than the permutation, extra positions count as
// mismatches.
func MatchVector(seq, ideal []item.Type) []bool {
	c := make([]bool, len(seq))
	for j := range seq {
		c[j] = j < len(ideal) && seq[j] == ideal[j]
	}
	return c
}

// Zeta returns ζ: the maximum length of a consecutive run of matches.
func Zeta(c []bool) int {
	best, run := 0, 0
	for _, m := range c {
		if m {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

// Matches returns Σ_j c[j], the total number of matching positions.
func Matches(c []bool) int {
	n := 0
	for _, m := range c {
		if m {
			n++
		}
	}
	return n
}

// Sim computes Sim(s, I)^k (Equation 6) for a sequence of item types
// against one ideal permutation. It returns 0 for an empty sequence.
// The value ranges over [0, k]; a full-length perfect match scores k.
// ζ and Σc[j] are computed in one pass without materializing the match
// vector — Sim sits inside every Equation 2 evaluation, so it must not
// allocate (see MatchVector/Zeta/Matches for the vector form).
func Sim(seq, ideal []item.Type) float64 {
	k := len(seq)
	if k == 0 {
		return 0
	}
	matches, zeta, run := 0, 0, 0
	for j, t := range seq {
		if j < len(ideal) && t == ideal[j] {
			matches++
			run++
			if run > zeta {
				zeta = run
			}
		} else {
			run = 0
		}
	}
	return float64(zeta) * float64(matches) / float64(k)
}

// AvgSim computes AvgSim(s, IT)^k (Equation 7): the mean of Sim over every
// permutation in the template. An empty template scores 0.
func AvgSim(seq []item.Type, it constraints.Template) float64 {
	if len(it) == 0 {
		return 0
	}
	var sum float64
	for _, ideal := range it {
		sum += Sim(seq, ideal)
	}
	return sum / float64(len(it))
}

// MinSim is the minimum-similarity variant: min over IT of Sim(s, I)^k.
func MinSim(seq []item.Type, it constraints.Template) float64 {
	if len(it) == 0 {
		return 0
	}
	best := Sim(seq, it[0])
	for _, ideal := range it[1:] {
		if s := Sim(seq, ideal); s < best {
			best = s
		}
	}
	return best
}

// MaxSim is the best-permutation similarity: max over IT of Sim(s, I)^k.
// The experimental section scores a finished recommendation by computing
// Equation 6 per ideal composition and keeping the highest value (§IV-A);
// MaxSim is that scoring rule.
func MaxSim(seq []item.Type, it constraints.Template) float64 {
	var best float64
	for _, ideal := range it {
		if s := Sim(seq, ideal); s > best {
			best = s
		}
	}
	return best
}

// Aggregate applies the mode: AvgSim for Average, MinSim for Minimum and
// the edit-distance average for LevenshteinAverage.
func Aggregate(mode Mode, seq []item.Type, it constraints.Template) float64 {
	switch mode {
	case Minimum:
		return MinSim(seq, it)
	case LevenshteinAverage:
		return AvgLevenshteinSim(seq, it)
	default:
		return AvgSim(seq, it)
	}
}
