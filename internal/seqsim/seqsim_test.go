package seqsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/item"
)

const (
	p = item.Primary
	s = item.Secondary
)

// example1Template is the Example 1 IT (3 primary, 3 secondary).
func example1Template() constraints.Template {
	return constraints.Template{
		{p, p, s, p, s, s},
		{p, s, s, s, p, p},
		{p, s, s, p, p, s},
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// §III-B.4: sequence {primary, secondary, primary, primary} against the
	// Example 1 template gives match vectors {[1,0,0,1],[1,1,0,0],[1,1,0,1]},
	// Sim = {0.5, 1, 1.5}, AvgSim = 1.
	seq := []item.Type{p, s, p, p}
	it := example1Template()

	wantVectors := [][]bool{
		{true, false, false, true},
		{true, true, false, false},
		{true, true, false, true},
	}
	wantSims := []float64{0.5, 1, 1.5}
	for i, ideal := range it {
		c := MatchVector(seq, ideal)
		for j := range c {
			if c[j] != wantVectors[i][j] {
				t.Fatalf("permutation %d match vector = %v, want %v", i, c, wantVectors[i])
			}
		}
		if got := Sim(seq, ideal); math.Abs(got-wantSims[i]) > 1e-12 {
			t.Fatalf("Sim(seq, I%d) = %v, want %v", i+1, got, wantSims[i])
		}
	}
	if got := AvgSim(seq, it); math.Abs(got-1) > 1e-12 {
		t.Fatalf("AvgSim = %v, want 1", got)
	}
	if got := MinSim(seq, it); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MinSim = %v, want 0.5", got)
	}
	if got := MaxSim(seq, it); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("MaxSim = %v, want 1.5", got)
	}
}

func TestZeta(t *testing.T) {
	cases := []struct {
		c    []bool
		want int
	}{
		{nil, 0},
		{[]bool{false, false}, 0},
		{[]bool{true}, 1},
		{[]bool{true, false, true, true}, 2},
		{[]bool{true, true, true}, 3},
		{[]bool{false, true, true, false, true}, 2},
	}
	for _, tc := range cases {
		if got := Zeta(tc.c); got != tc.want {
			t.Errorf("Zeta(%v) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestPerfectMatchScoresK(t *testing.T) {
	// A full-length perfect match scores k — the basis for the gold
	// standard scores of 10 (Univ-1) and 15 (Univ-2).
	ideal := []item.Type{p, s, s, s, p, p}
	if got := Sim(ideal, ideal); got != 6 {
		t.Fatalf("perfect Sim = %v, want 6", got)
	}
}

func TestFullySatisfiedPaperSequence(t *testing.T) {
	// §II-B.1: m1→m2→m4→m5→m6→m3 = [P,S,S,S,P,P] fully satisfies I2.
	seq := []item.Type{p, s, s, s, p, p}
	it := example1Template()
	if got := Sim(seq, it[1]); got != 6 {
		t.Fatalf("Sim against I2 = %v, want 6", got)
	}
	if got := MaxSim(seq, it); got != 6 {
		t.Fatalf("MaxSim = %v, want 6", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	it := example1Template()
	if Sim(nil, it[0]) != 0 {
		t.Fatal("empty sequence Sim != 0")
	}
	if AvgSim([]item.Type{p}, nil) != 0 {
		t.Fatal("empty template AvgSim != 0")
	}
	if MinSim([]item.Type{p}, nil) != 0 {
		t.Fatal("empty template MinSim != 0")
	}
	if MaxSim([]item.Type{p}, nil) != 0 {
		t.Fatal("empty template MaxSim != 0")
	}
}

func TestSequenceLongerThanPermutation(t *testing.T) {
	// Positions beyond the permutation count as mismatches, not panics.
	seq := []item.Type{p, p, p}
	ideal := []item.Type{p}
	c := MatchVector(seq, ideal)
	if !c[0] || c[1] || c[2] {
		t.Fatalf("match vector = %v", c)
	}
	if got := Sim(seq, ideal); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Sim = %v, want 1/3", got)
	}
}

func TestAggregate(t *testing.T) {
	seq := []item.Type{p, s, p, p}
	it := example1Template()
	if Aggregate(Average, seq, it) != AvgSim(seq, it) {
		t.Fatal("Aggregate(Average) mismatch")
	}
	if Aggregate(Minimum, seq, it) != MinSim(seq, it) {
		t.Fatal("Aggregate(Minimum) mismatch")
	}
}

func TestModeString(t *testing.T) {
	if Average.String() != "avg" || Minimum.String() != "min" {
		t.Fatal("Mode.String mismatch")
	}
}

func randTypes(r *rand.Rand, n int) []item.Type {
	out := make([]item.Type, n)
	for i := range out {
		if r.Intn(2) == 1 {
			out[i] = s
		}
	}
	return out
}

func TestPropertySimBounds(t *testing.T) {
	// 0 ≤ Sim ≤ k, and min ≤ avg ≤ max over a template.
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		k := 1 + int(uint(seed)%12)
		seq := randTypes(r, k)
		it := constraints.Template{randTypes(r, k), randTypes(r, k), randTypes(r, k)}
		for _, ideal := range it {
			v := Sim(seq, ideal)
			if v < 0 || v > float64(k) {
				return false
			}
		}
		mn, av, mx := MinSim(seq, it), AvgSim(seq, it), MaxSim(seq, it)
		return mn <= av+1e-12 && av <= mx+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySimEqualsBruteForce(t *testing.T) {
	// Sim must equal ζ·matches/k computed naively.
	r := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		k := 1 + int(uint(seed)%10)
		seq, ideal := randTypes(r, k), randTypes(r, k)
		matches, run, zeta := 0, 0, 0
		for j := 0; j < k; j++ {
			if seq[j] == ideal[j] {
				matches++
				run++
				if run > zeta {
					zeta = run
				}
			} else {
				run = 0
			}
		}
		want := float64(zeta) * float64(matches) / float64(k)
		return math.Abs(Sim(seq, ideal)-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPrefixMonotoneUnderPerfectMatch(t *testing.T) {
	// For a sequence identical to the permutation, Sim of every prefix of
	// length k equals k (ζ = k, matches = k).
	r := rand.New(rand.NewSource(44))
	f := func(seed int64) bool {
		n := 1 + int(uint(seed)%10)
		ideal := randTypes(r, n)
		for k := 1; k <= n; k++ {
			if math.Abs(Sim(ideal[:k], ideal)-float64(k)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAvgSim(b *testing.B) {
	r := rand.New(rand.NewSource(45))
	seq := randTypes(r, 10)
	it := constraints.Template{randTypes(r, 10), randTypes(r, 10), randTypes(r, 10)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = AvgSim(seq, it)
	}
}
