package seqsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rlplanner/rlplanner/internal/item"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b []item.Type
		want int
	}{
		{nil, nil, 0},
		{[]item.Type{p}, nil, 1},
		{nil, []item.Type{p, s}, 2},
		{[]item.Type{p, s}, []item.Type{p, s}, 0},
		{[]item.Type{p, s}, []item.Type{s, p}, 2},
		{[]item.Type{p, p, s}, []item.Type{p, s}, 1},
		{[]item.Type{p, s, p, s}, []item.Type{s, p, s, p}, 2},
	}
	for i, tc := range cases {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Levenshtein = %d, want %d", i, got, tc.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randTypes(rr, 1+rr.Intn(10)), randTypes(rr, 1+rr.Intn(10))
		d := Levenshtein(a, b)
		// Symmetry, identity, bounds.
		if d != Levenshtein(b, a) {
			return false
		}
		if Levenshtein(a, a) != 0 {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randTypes(rr, 1+rr.Intn(8))
		b := randTypes(rr, 1+rr.Intn(8))
		c := randTypes(rr, 1+rr.Intn(8))
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinSimScale(t *testing.T) {
	ideal := []item.Type{p, s, s, p}
	// Perfect match scores k.
	if got := LevenshteinSim(ideal, ideal); got != 4 {
		t.Fatalf("perfect LevenshteinSim = %v", got)
	}
	// Empty sequence scores 0.
	if LevenshteinSim(nil, ideal) != 0 {
		t.Fatal("empty sequence should score 0")
	}
	// A fully-mismatched same-length sequence of inverted types costs at
	// most k, so the score floors at 0.
	inv := []item.Type{s, p, p, s}
	if got := LevenshteinSim(inv, ideal); got < 0 || got > 4 {
		t.Fatalf("inverted LevenshteinSim = %v", got)
	}
}

func TestLevenshteinSimRelatesToEq6(t *testing.T) {
	// Both notions award the maximum k to a perfect full-length match.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		k := 1 + rr.Intn(10)
		ideal := randTypes(rr, k)
		return LevenshteinSim(ideal, ideal) == Sim(ideal, ideal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAvgLevenshteinSim(t *testing.T) {
	it := [][]item.Type{{p, s}, {s, p}}
	seq := []item.Type{p, s}
	// dist to [p,s] = 0 → 2; dist to [s,p] = 2 → 0; avg = 1.
	if got := AvgLevenshteinSim(seq, it); got != 1 {
		t.Fatalf("AvgLevenshteinSim = %v, want 1", got)
	}
	if AvgLevenshteinSim(seq, nil) != 0 {
		t.Fatal("empty template should score 0")
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	r := rand.New(rand.NewSource(22))
	x, y := randTypes(r, 15), randTypes(r, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Levenshtein(x, y)
	}
}
