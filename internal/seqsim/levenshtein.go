package seqsim

import "github.com/rlplanner/rlplanner/internal/item"

// Levenshtein returns the classic edit distance between two type
// sequences (insertions, deletions and substitutions all cost 1). The
// paper's similarity (Eq. 6) is "inspired by Levenshtein distance" but is
// not the edit distance itself; this reference implementation backs the
// LevenshteinSim ablation variant and the property tests that relate the
// two notions.
func Levenshtein(a, b []item.Type) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Single-row dynamic program.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim scores a sequence against one permutation as
// k·(1 − dist/k) = k − dist, where dist is the edit distance against the
// permutation's first k positions — an ablation alternative to Eq. 6 on
// the same [0, k] scale (k = full match, 0 = everything edited).
func LevenshteinSim(seq, ideal []item.Type) float64 {
	k := len(seq)
	if k == 0 {
		return 0
	}
	prefix := ideal
	if len(prefix) > k {
		prefix = prefix[:k]
	}
	d := Levenshtein(seq, prefix)
	if d > k {
		d = k
	}
	return float64(k - d)
}

// AvgLevenshteinSim averages LevenshteinSim over a template.
func AvgLevenshteinSim(seq []item.Type, it [][]item.Type) float64 {
	if len(it) == 0 {
		return 0
	}
	var sum float64
	for _, ideal := range it {
		sum += LevenshteinSim(seq, ideal)
	}
	return sum / float64(len(it))
}
