// Package mdp models TPP as the deterministic discrete constrained MDP of
// §III-A: states are items of a complete item graph G = ⟨I, E⟩, an action
// adds one item and induces a transition, and every transition carries the
// reward of Equation 2. An Episode tracks the trajectory state the reward
// needs — the current topic coverage T_current, the positions of chosen
// items (for antecedent gaps), the running type sequence, credits and, for
// trips, path distance.
//
// Trajectory length H follows §III-A: count-based for course planning
// (H = #cr / cr per course) and budget-based for trip planning (terminate
// when the visitation time budget is exhausted).
package mdp

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/reward"
)

// Budget decides when a trajectory ends (the H of §III-A).
type Budget interface {
	// Done reports whether an episode with the given total credits and
	// item count is complete.
	Done(credits float64, count int) bool
	// Allows reports whether an item worth itemCredits may still be added.
	Allows(credits float64, count int, itemCredits float64) bool
}

// CountBudget ends an episode after exactly H items — the course-planning
// trajectory (e.g. 30 required credits at 3 per course → H = 10).
type CountBudget struct {
	// H is the number of items per episode.
	H int
}

// Done implements Budget.
func (b CountBudget) Done(_ float64, count int) bool { return count >= b.H }

// Allows implements Budget.
func (b CountBudget) Allows(_ float64, count int, _ float64) bool { return count < b.H }

// TimeBudget ends an episode when the visitation-time budget is spent —
// the trip-planning trajectory (e.g. H = 6 hours). MaxItems additionally
// caps the itinerary at #primary + #secondary POIs when positive.
type TimeBudget struct {
	// Hours is the total visitation time available.
	Hours float64
	// MaxItems caps the number of POIs; 0 means no cap.
	MaxItems int
}

// Done implements Budget.
func (b TimeBudget) Done(credits float64, count int) bool {
	if b.MaxItems > 0 && count >= b.MaxItems {
		return true
	}
	return credits >= b.Hours
}

// Allows implements Budget.
func (b TimeBudget) Allows(credits float64, count int, itemCredits float64) bool {
	return !b.Done(credits, count) && credits+itemCredits <= b.Hours
}

// Env is the TPP environment: one catalog with its constraints, reward
// configuration and trajectory budget. Env is immutable and safe for
// concurrent use; per-trajectory state lives in Episode.
type Env struct {
	catalog *item.Catalog
	hard    constraints.Hard
	soft    constraints.Soft
	reward  reward.Config
	budget  Budget
	// idealSize caches |T_ideal| so candidate evaluation does not
	// recount the ideal vector on every transition.
	idealSize int
}

// NewEnv validates the pieces and builds an environment.
func NewEnv(c *item.Catalog, hard constraints.Hard, soft constraints.Soft,
	rw reward.Config, budget Budget) (*Env, error) {
	if c == nil {
		return nil, fmt.Errorf("mdp: nil catalog")
	}
	if budget == nil {
		return nil, fmt.Errorf("mdp: nil budget")
	}
	if err := rw.Validate(); err != nil {
		return nil, err
	}
	if soft.Ideal.Len() != c.Vocabulary().Len() {
		return nil, fmt.Errorf("mdp: ideal vector length %d, vocabulary %d",
			soft.Ideal.Len(), c.Vocabulary().Len())
	}
	if hard.Length() > 0 {
		if err := soft.Template.Validate(hard.Primary, hard.Secondary); err != nil {
			return nil, err
		}
	}
	return &Env{catalog: c, hard: hard, soft: soft, reward: rw, budget: budget,
		idealSize: soft.Ideal.Count()}, nil
}

// Catalog returns the environment's item catalog.
func (e *Env) Catalog() *item.Catalog { return e.catalog }

// Hard returns P_hard.
func (e *Env) Hard() constraints.Hard { return e.hard }

// Soft returns P_soft.
func (e *Env) Soft() constraints.Soft { return e.soft }

// RewardConfig returns the Equation 2 configuration.
func (e *Env) RewardConfig() reward.Config { return e.reward }

// Budget returns the trajectory budget.
func (e *Env) Budget() Budget { return e.budget }

// NumItems returns |I|, the size of the state space.
func (e *Env) NumItems() int { return e.catalog.Len() }

// Episode is the mutable state of one trajectory. An Episode is NOT safe
// for concurrent use: candidate evaluation reuses per-episode scratch
// buffers (see TransitionScratch). Concurrent learners each run their own
// Episode against a shared, immutable Env.
type Episode struct {
	env       *Env
	seq       []int
	seqTypes  []item.Type
	positions map[string]int
	current   bitset.Set // T_current
	credits   float64
	distance  float64
	chosen    []bool
	// candTypes is the scratch type sequence for candidate evaluation:
	// seqTypes plus one slot for the candidate's type. It is rebuilt once
	// per step (in admit), so evaluating a candidate only writes the final
	// slot — no per-candidate copy of the type sequence.
	candTypes []item.Type
	// scratch is the reusable Transition TransitionScratch hands out.
	scratch reward.Transition
}

// Start begins an episode at the given item (state s_1 of Algorithm 1).
// The start item joins the plan and seeds T_current; no reward attaches to
// it because rewards belong to transitions.
func (e *Env) Start(start int) (*Episode, error) {
	if start < 0 || start >= e.catalog.Len() {
		return nil, fmt.Errorf("mdp: start item %d out of range [0,%d)", start, e.catalog.Len())
	}
	ep := &Episode{
		env:       e,
		seq:       make([]int, 0, e.hard.Length()+1),
		seqTypes:  make([]item.Type, 0, e.hard.Length()+1),
		positions: make(map[string]int, e.hard.Length()+1),
		current:   bitset.New(e.catalog.Vocabulary().Len()),
		chosen:    make([]bool, e.catalog.Len()),
	}
	ep.admit(start)
	return ep, nil
}

// admit appends an item to the trajectory and updates the derived state.
func (ep *Episode) admit(idx int) {
	m := ep.env.catalog.At(idx)
	if n := len(ep.seq); n > 0 {
		prev := ep.env.catalog.At(ep.seq[n-1])
		ep.distance += geo.Haversine(
			geo.Point{Lat: prev.Lat, Lon: prev.Lon},
			geo.Point{Lat: m.Lat, Lon: m.Lon})
	}
	ep.positions[m.ID] = len(ep.seq)
	ep.seq = append(ep.seq, idx)
	ep.seqTypes = append(ep.seqTypes, m.Type)
	ep.current.UnionInPlace(m.Topics)
	ep.credits += m.Credits
	ep.chosen[idx] = true

	// Rebuild the candidate type buffer once per step; TransitionScratch
	// then only writes the final slot per candidate.
	n := len(ep.seqTypes)
	if cap(ep.candTypes) < n+1 {
		ep.candTypes = make([]item.Type, n+1, 2*(n+1))
	}
	ep.candTypes = ep.candTypes[:n+1]
	copy(ep.candTypes, ep.seqTypes)
}

// Len returns the number of items in the trajectory so far.
func (ep *Episode) Len() int { return len(ep.seq) }

// Sequence returns a copy of the item indices chosen so far.
func (ep *Episode) Sequence() []int { return append([]int(nil), ep.seq...) }

// Types returns a copy of the type sequence chosen so far.
func (ep *Episode) Types() []item.Type { return append([]item.Type(nil), ep.seqTypes...) }

// Credits returns the credits spent so far.
func (ep *Episode) Credits() float64 { return ep.credits }

// Distance returns the path length walked so far in kilometers.
func (ep *Episode) Distance() float64 { return ep.distance }

// Coverage returns a copy of T_current.
func (ep *Episode) Coverage() bitset.Set { return ep.current.Clone() }

// Last returns the index of the current state's item (the last chosen).
func (ep *Episode) Last() int { return ep.seq[len(ep.seq)-1] }

// Done reports whether the trajectory budget is exhausted.
func (ep *Episode) Done() bool {
	return ep.env.budget.Done(ep.credits, len(ep.seq))
}

// CanStep reports whether item idx may be added: not yet chosen, within
// the trajectory budget and, for trips, within the distance threshold d.
func (ep *Episode) CanStep(idx int) bool {
	if idx < 0 || idx >= len(ep.chosen) || ep.chosen[idx] {
		return false
	}
	m := ep.env.catalog.At(idx)
	if !ep.env.budget.Allows(ep.credits, len(ep.seq), m.Credits) {
		return false
	}
	if d := ep.env.hard.MaxDistanceKm; d > 0 {
		prev := ep.env.catalog.At(ep.Last())
		leg := geo.Haversine(
			geo.Point{Lat: prev.Lat, Lon: prev.Lon},
			geo.Point{Lat: m.Lat, Lon: m.Lon})
		if ep.distance+leg > d {
			return false
		}
	}
	return true
}

// AppendCandidates appends every item CanStep admits, in catalog order,
// to buf and returns the extended slice. Hot loops pass buf[:0] of a
// retained slice to reuse one allocation across steps; Candidates is the
// allocating convenience form.
func (ep *Episode) AppendCandidates(buf []int) []int {
	for idx := range ep.chosen {
		if ep.CanStep(idx) {
			buf = append(buf, idx)
		}
	}
	return buf
}

// Candidates returns every item CanStep admits, in catalog order.
func (ep *Episode) Candidates() []int { return ep.AppendCandidates(nil) }

// TransitionScratch computes the Equation 2 facts for adding item idx
// without mutating the episode and without allocating. The returned
// Transition aliases episode-owned scratch buffers (SeqTypes in
// particular) and is only valid until the next TransitionScratch, Reward
// or Step call on the same episode; it must not be retained or shared
// across goroutines. Hot loops (learning, baselines) use this; Transition
// returns a stable copy for everyone else. Callers should ensure
// CanStep(idx).
func (ep *Episode) TransitionScratch(idx int) *reward.Transition {
	m := ep.env.catalog.At(idx)
	themeOK := true
	if ep.env.hard.ThemeGap && len(ep.seq) > 0 {
		prev := ep.env.catalog.At(ep.Last())
		if m.Category != item.NoCategory && m.Category == prev.Category {
			themeOK = false
		}
	}
	ep.candTypes[len(ep.seqTypes)] = m.Type
	ep.scratch = reward.Transition{
		SeqTypes:     ep.candTypes,
		CoverageGain: m.Topics.NewCoverage(ep.current, ep.env.soft.Ideal),
		IdealSize:    ep.env.idealSize,
		PrereqOK:     prereq.Satisfied(m.Prereq, len(ep.seq), ep.positions, ep.env.hard.Gap),
		ThemeOK:      themeOK,
		Type:         m.Type,
		Category:     m.Category,
		Popularity:   m.Popularity,
	}
	return &ep.scratch
}

// Transition computes the Equation 2 facts for adding item idx without
// mutating the episode. Unlike TransitionScratch, the result owns its
// memory and stays valid indefinitely. Callers should ensure CanStep(idx).
func (ep *Episode) Transition(idx int) reward.Transition {
	tr := *ep.TransitionScratch(idx)
	tr.SeqTypes = append([]item.Type(nil), tr.SeqTypes...)
	return tr
}

// Reward returns R(s_i, e, s_{i+1}) for adding item idx, without stepping.
// It evaluates through the scratch transition, so it allocates nothing.
func (ep *Episode) Reward(idx int) float64 {
	return ep.env.reward.Reward(*ep.TransitionScratch(idx))
}

// Step adds item idx to the trajectory and returns its reward. It panics
// if the item was already chosen; budget checks are the caller's job via
// CanStep so learners can deliberately explore over-budget actions if they
// wish (the environment still scores them).
func (ep *Episode) Step(idx int) float64 {
	if idx < 0 || idx >= len(ep.chosen) {
		panic(fmt.Sprintf("mdp: step index %d out of range", idx))
	}
	if ep.chosen[idx] {
		panic(fmt.Sprintf("mdp: item %d already chosen", idx))
	}
	r := ep.Reward(idx)
	ep.admit(idx)
	return r
}
