// Package mdp models TPP as the deterministic discrete constrained MDP of
// §III-A: states are items of a complete item graph G = ⟨I, E⟩, an action
// adds one item and induces a transition, and every transition carries the
// reward of Equation 2. An Episode tracks the trajectory state the reward
// needs — the current topic coverage T_current, the positions of chosen
// items (for antecedent gaps), the running type sequence, credits and, for
// trips, path distance.
//
// Trajectory length H follows §III-A: count-based for course planning
// (H = #cr / cr per course) and budget-based for trip planning (terminate
// when the visitation time budget is exhausted).
package mdp

import (
	"fmt"
	"sync"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/reward"
)

// Budget decides when a trajectory ends (the H of §III-A).
type Budget interface {
	// Done reports whether an episode with the given total credits and
	// item count is complete.
	Done(credits float64, count int) bool
	// Allows reports whether an item worth itemCredits may still be added.
	Allows(credits float64, count int, itemCredits float64) bool
}

// CountBudget ends an episode after exactly H items — the course-planning
// trajectory (e.g. 30 required credits at 3 per course → H = 10).
type CountBudget struct {
	// H is the number of items per episode.
	H int
}

// Done implements Budget.
func (b CountBudget) Done(_ float64, count int) bool { return count >= b.H }

// Allows implements Budget.
func (b CountBudget) Allows(_ float64, count int, _ float64) bool { return count < b.H }

// TimeBudget ends an episode when the visitation-time budget is spent —
// the trip-planning trajectory (e.g. H = 6 hours). MaxItems additionally
// caps the itinerary at #primary + #secondary POIs when positive.
type TimeBudget struct {
	// Hours is the total visitation time available.
	Hours float64
	// MaxItems caps the number of POIs; 0 means no cap.
	MaxItems int
}

// Done implements Budget.
func (b TimeBudget) Done(credits float64, count int) bool {
	if b.MaxItems > 0 && count >= b.MaxItems {
		return true
	}
	return credits >= b.Hours
}

// Allows implements Budget.
func (b TimeBudget) Allows(credits float64, count int, itemCredits float64) bool {
	return !b.Done(credits, count) && credits+itemCredits <= b.Hours
}

// Limits carries the operator-configurable size guards of the data
// plane. The zero value means defaults; NewEnv uses it. (These replace
// the old mutable package variable DistMatrixMaxItems, so concurrent
// engines with different limits no longer race on a global.)
type Limits struct {
	// DistMatrixMax is the catalog size up to which the environment
	// precomputes the exact n×n distance matrix (<= 0 means
	// geo.DefaultDistMatrixMaxItems). Larger trip catalogs get exact
	// per-call Haversine up to geo.DefaultExactHaversineMaxItems and the
	// quantized neighbor store beyond (see geo.NewDistStore).
	DistMatrixMax int
}

// itemFacts is the flat, Env-static per-item record the per-candidate hot
// path reads instead of copying whole item.Item values (whose strings and
// interface fields the step loop never needs) out of the catalog.
type itemFacts struct {
	// topics is T^m, unioned into T_current on admission.
	topics bitset.Set
	// idealTopics is T^m ∩ T_ideal: Equation 3's coverage gain is
	// |idealTopics \ T_current|, one masked popcount per candidate.
	idealTopics bitset.Set
	credits     float64
	popularity  float64
	category    int
	typ         item.Type
}

// Env is the TPP environment: one catalog with its constraints, reward
// configuration and trajectory budget. Env is immutable and safe for
// concurrent use; per-trajectory state lives in Episode.
//
// NewEnv precomputes everything an episode step needs that does not depend
// on trajectory state: flat per-item transition facts (itemFacts), compiled
// index-based prerequisite programs with their reverse dependency index,
// and — when a distance constraint is active — the pairwise POI distance
// matrix. See DESIGN.md "Precomputation layer".
type Env struct {
	catalog *item.Catalog
	hard    constraints.Hard
	soft    constraints.Soft
	reward  reward.Config
	budget  Budget
	// idealSize caches |T_ideal| so candidate evaluation does not
	// recount the ideal vector on every transition.
	idealSize int

	// facts holds the Env-static per-item transition facts, index-aligned
	// with the catalog.
	facts []itemFacts
	// pts holds every item's coordinates for the Haversine fallback when
	// dist is nil (no distance constraint active).
	pts []geo.Point
	// dist is the pairwise distance store, non-nil only when
	// hard.MaxDistanceKm > 0: the exact matrix for small catalogs, exact
	// per-call Haversine mid-range, quantized neighbor bands at scale
	// (geo.NewDistStore selects by size and Limits.DistMatrixMax).
	dist geo.Store
	// distMat aliases dist when the store is the exact matrix, so the
	// per-candidate leg lookup in CanStep is a direct, inlinable call
	// instead of interface dispatch — the matrix tier is exactly the
	// catalog range where that lookup dominates the step profile.
	distMat *geo.DistMatrix
	// prereqs are the compiled prerequisite programs + reverse dependencies.
	prereqs *prereq.Compiled
	// prereqInit[i] is item i's prerequisite status with nothing placed —
	// the starting value of every episode's incremental cache.
	prereqInit []bool
	// gapStep is max(hard.Gap, 1): between consecutive steps the frontier
	// position advances by one, so the single antecedent position that newly
	// crosses the gap threshold is seq[pos-gapStep].
	gapStep int

	// epPool recycles Episodes across serve-time recommendation walks (see
	// AcquireEpisode). Episode buffers are sized by the Env they were built
	// against, so the pool lives on the Env rather than the package.
	epPool sync.Pool
}

// NewEnv validates the pieces and builds an environment with default
// Limits.
func NewEnv(c *item.Catalog, hard constraints.Hard, soft constraints.Soft,
	rw reward.Config, budget Budget) (*Env, error) {
	return NewEnvWithLimits(c, hard, soft, rw, budget, Limits{})
}

// NewEnvWithLimits is NewEnv with explicit data-plane size guards —
// the constructor the engine threads operator configuration through.
func NewEnvWithLimits(c *item.Catalog, hard constraints.Hard, soft constraints.Soft,
	rw reward.Config, budget Budget, lim Limits) (*Env, error) {
	if c == nil {
		return nil, fmt.Errorf("mdp: nil catalog")
	}
	if budget == nil {
		return nil, fmt.Errorf("mdp: nil budget")
	}
	if err := rw.Validate(); err != nil {
		return nil, err
	}
	if soft.Ideal.Len() != c.Vocabulary().Len() {
		return nil, fmt.Errorf("mdp: ideal vector length %d, vocabulary %d",
			soft.Ideal.Len(), c.Vocabulary().Len())
	}
	if hard.Length() > 0 {
		if err := soft.Template.Validate(hard.Primary, hard.Secondary); err != nil {
			return nil, err
		}
	}
	e := &Env{catalog: c, hard: hard, soft: soft, reward: rw, budget: budget,
		idealSize: soft.Ideal.Count()}

	n := c.Len()
	e.facts = make([]itemFacts, n)
	e.pts = make([]geo.Point, n)
	exprs := make([]prereq.Expr, n)
	for i := 0; i < n; i++ {
		m := c.At(i)
		e.facts[i] = itemFacts{
			// Catalog topic vectors arrive density-compacted; the per-item
			// ideal intersection is compacted too, so the fact table costs
			// bytes per set topic instead of vocab/8 per item.
			topics:      m.Topics,
			idealTopics: m.Topics.Intersect(soft.Ideal).Compact(),
			credits:     m.Credits,
			popularity:  m.Popularity,
			category:    m.Category,
			typ:         m.Type,
		}
		e.pts[i] = geo.Point{Lat: m.Lat, Lon: m.Lon}
		exprs[i] = m.Prereq
	}
	if hard.MaxDistanceKm > 0 {
		e.dist = geo.NewDistStore(e.pts, lim.DistMatrixMax)
		e.distMat, _ = e.dist.(*geo.DistMatrix)
	}
	compiled, err := prereq.Compile(exprs, c.Index)
	if err != nil {
		return nil, fmt.Errorf("mdp: %w", err)
	}
	e.prereqs = compiled
	// With nothing placed, a program's value is position-independent (every
	// reference reads "absent"), so one evaluation seeds every episode.
	none := make([]int32, n)
	for i := range none {
		none[i] = -1
	}
	e.prereqInit = make([]bool, n)
	for i := 0; i < n; i++ {
		e.prereqInit[i] = compiled.Eval(i, 0, none, hard.Gap)
	}
	e.gapStep = hard.Gap
	if e.gapStep < 1 {
		e.gapStep = 1
	}
	return e, nil
}

// Dist returns the great-circle distance in kilometers between items i and
// j, served from the environment's distance store when a distance
// constraint is active. Baselines and the guided recommendation walk route
// their leg computations through this so every consumer measures the same
// geometry as the learner.
func (e *Env) Dist(i, j int) float64 {
	if e.distMat != nil {
		return e.distMat.Dist(i, j)
	}
	if e.dist != nil {
		return e.dist.Dist(i, j)
	}
	return geo.Haversine(e.pts[i], e.pts[j])
}

// DistStoreBytes reports the resident bytes of the active distance store
// (0 when no distance constraint is active) — the memory-accounting hook
// the engine's cache budgeting and the scale harness read.
func (e *Env) DistStoreBytes() int {
	if e.dist == nil {
		return 0
	}
	return e.dist.SizeBytes()
}

// Catalog returns the environment's item catalog.
func (e *Env) Catalog() *item.Catalog { return e.catalog }

// Hard returns P_hard.
func (e *Env) Hard() constraints.Hard { return e.hard }

// Soft returns P_soft.
func (e *Env) Soft() constraints.Soft { return e.soft }

// RewardConfig returns the Equation 2 configuration.
func (e *Env) RewardConfig() reward.Config { return e.reward }

// Budget returns the trajectory budget.
func (e *Env) Budget() Budget { return e.budget }

// NumItems returns |I|, the size of the state space.
func (e *Env) NumItems() int { return e.catalog.Len() }

// Episode is the mutable state of one trajectory. An Episode is NOT safe
// for concurrent use: candidate evaluation reuses per-episode scratch
// buffers (see TransitionScratch). Concurrent learners each run their own
// Episode against a shared, immutable Env.
type Episode struct {
	env      *Env
	seq      []int
	seqTypes []item.Type
	// positions is the index-aligned placement array the compiled
	// prerequisite programs read: positions[i] is item i's 0-based sequence
	// position, -1 while unchosen.
	positions []int32
	current   bitset.Set // T_current
	credits   float64
	distance  float64
	chosen    []bool
	// prereqOK is the incremental prerequisite cache: prereqOK[i] holds
	// prereq-satisfaction of item i at the current frontier position
	// len(seq). admit updates only the dependents of the antecedent that
	// newly crossed the gap threshold, so candidate evaluation is a single
	// bool load (satisfaction is monotone within an episode: positions only
	// gain entries and the frontier only advances).
	prereqOK []bool
	// candTypes is the scratch type sequence for candidate evaluation:
	// seqTypes plus one slot for the candidate's type. It is rebuilt once
	// per step (in admit), so evaluating a candidate only writes the final
	// slot — no per-candidate copy of the type sequence.
	candTypes []item.Type
	// scratch is the reusable Transition TransitionScratch hands out.
	scratch reward.Transition
}

// Start begins an episode at the given item (state s_1 of Algorithm 1).
// The start item joins the plan and seeds T_current; no reward attaches to
// it because rewards belong to transitions.
func (e *Env) Start(start int) (*Episode, error) {
	n := e.catalog.Len()
	if start < 0 || start >= n {
		return nil, fmt.Errorf("mdp: start item %d out of range [0,%d)", start, n)
	}
	ep := &Episode{
		env:       e,
		seq:       make([]int, 0, e.hard.Length()+1),
		seqTypes:  make([]item.Type, 0, e.hard.Length()+1),
		positions: make([]int32, n),
		current:   bitset.New(e.catalog.Vocabulary().Len()),
	}
	// chosen and prereqOK share one allocation; full slice caps keep an
	// append on one from clobbering the other.
	flags := make([]bool, 2*n)
	ep.chosen = flags[:n:n]
	ep.prereqOK = flags[n:]
	ep.reset(start)
	return ep, nil
}

// AcquireEpisode returns a ready episode starting at start, reusing a
// pooled one (via Reset) when available. Serve-time walks that extract
// their result with Sequence — which copies — pair this with
// ReleaseEpisode so the steady-state plan path allocates no per-request
// episode state.
func (e *Env) AcquireEpisode(start int) (*Episode, error) {
	if ep, ok := e.epPool.Get().(*Episode); ok && ep != nil {
		if err := ep.Reset(start); err != nil {
			e.epPool.Put(ep)
			return nil, err
		}
		return ep, nil
	}
	return e.Start(start)
}

// ReleaseEpisode returns an episode to the Env's pool. The caller must
// not retain the episode or any view into it (Sequence/Types/Coverage
// return copies and are safe). Episodes from a different Env are
// dropped: their buffers are sized for the wrong catalog.
func (e *Env) ReleaseEpisode(ep *Episode) {
	if ep == nil || ep.env != e {
		return
	}
	e.epPool.Put(ep)
}

// Reset rewinds the episode to a fresh trajectory starting at start,
// reusing every internal buffer. Training loops that run thousands of
// episodes against one Env call this instead of Env.Start so the steady
// state allocates nothing per episode.
func (ep *Episode) Reset(start int) error {
	if start < 0 || start >= len(ep.chosen) {
		return fmt.Errorf("mdp: start item %d out of range [0,%d)", start, len(ep.chosen))
	}
	ep.reset(start)
	return nil
}

// reset clears the trajectory state in place and admits the start item.
func (ep *Episode) reset(start int) {
	ep.seq = ep.seq[:0]
	ep.seqTypes = ep.seqTypes[:0]
	for i := range ep.positions {
		ep.positions[i] = -1
	}
	ep.current.ClearAll()
	ep.credits, ep.distance = 0, 0
	for i := range ep.chosen {
		ep.chosen[i] = false
	}
	copy(ep.prereqOK, ep.env.prereqInit)
	ep.admit(start)
}

// admit appends an item to the trajectory and updates the derived state.
func (ep *Episode) admit(idx int) {
	f := &ep.env.facts[idx]
	p := len(ep.seq) // the new item's position
	if p > 0 {
		ep.distance += ep.env.Dist(ep.seq[p-1], idx)
	}
	ep.positions[idx] = int32(p)
	ep.seq = append(ep.seq, idx)
	ep.seqTypes = append(ep.seqTypes, f.typ)
	ep.current.UnionInPlace(f.topics)
	ep.credits += f.credits
	ep.chosen[idx] = true

	// Advance the incremental prerequisite cache to the new frontier
	// position p+1. Between frontiers p and p+1 exactly one placement
	// newly satisfies gap-distance: the item at position q = p+1-gapStep
	// (for gap ≤ 1 that is the item just admitted). Only its dependents
	// can flip, and only from false to true.
	if q := p + 1 - ep.env.gapStep; q >= 0 {
		for _, d := range ep.env.prereqs.Dependents(ep.seq[q]) {
			if !ep.prereqOK[d] {
				ep.prereqOK[d] = ep.env.prereqs.Eval(int(d), p+1, ep.positions, ep.env.hard.Gap)
			}
		}
	}

	// Rebuild the candidate type buffer once per step; TransitionScratch
	// then only writes the final slot per candidate.
	n := len(ep.seqTypes)
	if cap(ep.candTypes) < n+1 {
		ep.candTypes = make([]item.Type, n+1, 2*(n+1))
	}
	ep.candTypes = ep.candTypes[:n+1]
	copy(ep.candTypes, ep.seqTypes)
}

// Len returns the number of items in the trajectory so far.
func (ep *Episode) Len() int { return len(ep.seq) }

// Sequence returns a copy of the item indices chosen so far.
func (ep *Episode) Sequence() []int { return append([]int(nil), ep.seq...) }

// Types returns a copy of the type sequence chosen so far.
func (ep *Episode) Types() []item.Type { return append([]item.Type(nil), ep.seqTypes...) }

// Credits returns the credits spent so far.
func (ep *Episode) Credits() float64 { return ep.credits }

// Distance returns the path length walked so far in kilometers.
func (ep *Episode) Distance() float64 { return ep.distance }

// Coverage returns a copy of T_current.
func (ep *Episode) Coverage() bitset.Set { return ep.current.Clone() }

// Last returns the index of the current state's item (the last chosen).
func (ep *Episode) Last() int { return ep.seq[len(ep.seq)-1] }

// Done reports whether the trajectory budget is exhausted.
func (ep *Episode) Done() bool {
	return ep.env.budget.Done(ep.credits, len(ep.seq))
}

// CanStep reports whether item idx may be added: not yet chosen, within
// the trajectory budget and, for trips, within the distance threshold d.
func (ep *Episode) CanStep(idx int) bool {
	if idx < 0 || idx >= len(ep.chosen) || ep.chosen[idx] {
		return false
	}
	if !ep.env.budget.Allows(ep.credits, len(ep.seq), ep.env.facts[idx].credits) {
		return false
	}
	if d := ep.env.hard.MaxDistanceKm; d > 0 {
		if ep.distance+ep.env.Dist(ep.Last(), idx) > d {
			return false
		}
	}
	return true
}

// AppendCandidates appends every item CanStep admits, in catalog order,
// to buf and returns the extended slice. Hot loops pass buf[:0] of a
// retained slice to reuse one allocation across steps; Candidates is the
// allocating convenience form.
func (ep *Episode) AppendCandidates(buf []int) []int {
	for idx := range ep.chosen {
		if ep.CanStep(idx) {
			buf = append(buf, idx)
		}
	}
	return buf
}

// Candidates returns every item CanStep admits, in catalog order.
func (ep *Episode) Candidates() []int { return ep.AppendCandidates(nil) }

// TransitionScratch computes the Equation 2 facts for adding item idx
// without mutating the episode and without allocating. The returned
// Transition aliases episode-owned scratch buffers (SeqTypes in
// particular) and is only valid until the next TransitionScratch, Reward
// or Step call on the same episode; it must not be retained or shared
// across goroutines. Hot loops (learning, baselines) use this; Transition
// returns a stable copy for everyone else. Callers should ensure
// CanStep(idx).
func (ep *Episode) TransitionScratch(idx int) *reward.Transition {
	f := &ep.env.facts[idx]
	themeOK := true
	if ep.env.hard.ThemeGap && len(ep.seq) > 0 {
		if f.category != item.NoCategory && f.category == ep.env.facts[ep.Last()].category {
			themeOK = false
		}
	}
	ep.candTypes[len(ep.seqTypes)] = f.typ
	ep.scratch = reward.Transition{
		SeqTypes: ep.candTypes,
		// |T_ideal ∩ (T^m \ T_current)| = |(T^m ∩ T_ideal) \ T_current|,
		// with the intersection precomputed per item in NewEnv.
		CoverageGain: bitset.CountDifference(&f.idealTopics, &ep.current),
		IdealSize:    ep.env.idealSize,
		PrereqOK:     ep.prereqOK[idx],
		ThemeOK:      themeOK,
		Type:         f.typ,
		Category:     f.category,
		Popularity:   f.popularity,
	}
	return &ep.scratch
}

// Transition computes the Equation 2 facts for adding item idx without
// mutating the episode. Unlike TransitionScratch, the result owns its
// memory and stays valid indefinitely. Callers should ensure CanStep(idx).
func (ep *Episode) Transition(idx int) reward.Transition {
	tr := *ep.TransitionScratch(idx)
	tr.SeqTypes = append([]item.Type(nil), tr.SeqTypes...)
	return tr
}

// Reward returns R(s_i, e, s_{i+1}) for adding item idx, without stepping.
// It evaluates through the scratch transition, so it allocates nothing.
func (ep *Episode) Reward(idx int) float64 {
	return ep.env.reward.Reward(*ep.TransitionScratch(idx))
}

// Step adds item idx to the trajectory and returns its reward. It panics
// if the item was already chosen; budget checks are the caller's job via
// CanStep so learners can deliberately explore over-budget actions if they
// wish (the environment still scores them).
func (ep *Episode) Step(idx int) float64 {
	if idx < 0 || idx >= len(ep.chosen) {
		panic(fmt.Sprintf("mdp: step index %d out of range", idx))
	}
	if ep.chosen[idx] {
		panic(fmt.Sprintf("mdp: item %d already chosen", idx))
	}
	r := ep.Reward(idx)
	ep.admit(idx)
	return r
}
