package mdp_test

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/mdp"
)

// benchEnv wires the Univ-1 DS-CT instance into an environment the way
// core does, so the benchmarks exercise the exact learning-time hot path.
func benchEnv(b *testing.B) (*mdp.Env, int) {
	b.Helper()
	inst := univ.Univ1DSCT()
	p, err := core.New(inst, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return p.Env(), inst.StartIndex()
}

// benchTripEnv wires the NYC trip instance — distance threshold, theme
// gap and museum-before-restaurant prerequisites all active — so the
// benchmarks cover the geometry-heavy trip variant of the step loop.
func benchTripEnv(b *testing.B) (*mdp.Env, int) {
	b.Helper()
	inst := trip.NYC().Instance
	p, err := core.New(inst, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return p.Env(), inst.StartIndex()
}

// BenchmarkEpisodeStep walks full greedy episodes: per step it collects
// the candidate set and evaluates every candidate's Equation 2 reward —
// the inner loop of both SARSA learning and the EDA baseline. With the
// scratch-transition path and Episode.Reset this must report 0 allocs/op;
// run with -benchmem to see alloc regressions without regenerating full
// figures.
// The trip sub-benchmark exercises the distance-constrained path (CanStep
// geometry + prereq + theme gates on every candidate).
func BenchmarkEpisodeStep(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   func(*testing.B) (*mdp.Env, int)
	}{
		{"univ1dsct", benchEnv},
		{"tripNYC", benchTripEnv},
	} {
		b.Run(tc.name, func(b *testing.B) {
			env, start := tc.mk(b)
			ep, err := env.Start(start)
			if err != nil {
				b.Fatal(err)
			}
			var cands []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ep.Reset(start); err != nil {
					b.Fatal(err)
				}
				for !ep.Done() {
					cands = ep.AppendCandidates(cands[:0])
					if len(cands) == 0 {
						break
					}
					best, bestR := cands[0], -1.0
					for _, c := range cands {
						if r := ep.Reward(c); r > bestR {
							best, bestR = c, r
						}
					}
					ep.Step(best)
				}
			}
		})
	}
}

// BenchmarkEpisodeReward isolates one candidate evaluation on a
// mid-episode state.
func BenchmarkEpisodeReward(b *testing.B) {
	env, start := benchEnv(b)
	ep, err := env.Start(start)
	if err != nil {
		b.Fatal(err)
	}
	// Advance to a mid-episode state so the type sequence is non-trivial.
	for s := 0; s < 4 && !ep.Done(); s++ {
		cands := ep.Candidates()
		if len(cands) == 0 {
			break
		}
		ep.Step(cands[0])
	}
	cands := ep.Candidates()
	if len(cands) == 0 {
		b.Fatal("no candidates at mid-episode state")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ep.Reward(cands[i%len(cands)])
	}
	_ = sink
}

// BenchmarkAppendCandidates measures the candidate scan with a reused
// buffer — the other half of the per-step cost.
func BenchmarkAppendCandidates(b *testing.B) {
	env, start := benchEnv(b)
	ep, err := env.Start(start)
	if err != nil {
		b.Fatal(err)
	}
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ep.AppendCandidates(buf[:0])
	}
	_ = buf
}
