package mdp_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/fixture"
	"github.com/rlplanner/rlplanner/internal/geo"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/reward"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

// courseEnv builds the Table II toy environment with ε = 1 and the Example
// 1 ideal vector, as used by the paper's worked examples.
func courseEnv(t *testing.T) *mdp.Env {
	t.Helper()
	c := fixture.Courses()
	rw := reward.Config{
		Delta:    0.6,
		Beta:     0.4,
		Epsilon:  1,
		Weights:  reward.Weights{Primary: 0.6, Secondary: 0.4},
		Sim:      seqsim.Average,
		Template: fixture.CourseTemplate(),
	}
	env, err := mdp.NewEnv(c, fixture.CourseHard(), fixture.CourseSoft(), rw, mdp.CountBudget{H: 6})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func idx(t *testing.T, c *item.Catalog, id string) int {
	t.Helper()
	i, ok := c.Index(id)
	if !ok {
		t.Fatalf("unknown id %q", id)
	}
	return i
}

func TestNewEnvValidation(t *testing.T) {
	c := fixture.Courses()
	rw := reward.DefaultCourseConfig(fixture.CourseTemplate())
	if _, err := mdp.NewEnv(nil, fixture.CourseHard(), fixture.CourseSoft(), rw, mdp.CountBudget{H: 6}); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := mdp.NewEnv(c, fixture.CourseHard(), fixture.CourseSoft(), rw, nil); err == nil {
		t.Fatal("nil budget accepted")
	}
	bad := rw
	bad.Delta = 0.5
	if _, err := mdp.NewEnv(c, fixture.CourseHard(), fixture.CourseSoft(), bad, mdp.CountBudget{H: 6}); err == nil {
		t.Fatal("invalid reward config accepted")
	}
	soft := fixture.CourseSoft()
	soft.Ideal = fixture.TripIdeal() // wrong length
	if _, err := mdp.NewEnv(c, fixture.CourseHard(), soft, rw, mdp.CountBudget{H: 6}); err == nil {
		t.Fatal("mismatched ideal vector accepted")
	}
	soft = fixture.CourseSoft()
	soft.Template = fixture.TripTemplate() // 2/3 split, hard wants 3/3
	if _, err := mdp.NewEnv(c, fixture.CourseHard(), soft, rw, mdp.CountBudget{H: 6}); err == nil {
		t.Fatal("mismatched template accepted")
	}
}

func TestPaperRewardExampleM2ToM4VsM5(t *testing.T) {
	// §III-B.1: from a state where m2 (Data Mining) was taken, adding m4
	// (Linear Algebra) has r1 = 1 but adding m5 (Big Data) has r1 = 0.
	env := courseEnv(t)
	c := env.Catalog()
	ep, err := env.Start(idx(t, c, "Data Mining"))
	if err != nil {
		t.Fatal(err)
	}

	trM4 := ep.Transition(idx(t, c, "Linear Algebra"))
	if trM4.CoverageGain < 1 {
		t.Fatalf("m4 coverage gain = %d, want ≥ 1", trM4.CoverageGain)
	}
	if env.RewardConfig().R1(trM4.CoverageGain, trM4.IdealSize) != 1 {
		t.Fatal("r1(m4) should be 1")
	}

	trM5 := ep.Transition(idx(t, c, "Big Data"))
	if env.RewardConfig().R1(trM5.CoverageGain, trM5.IdealSize) != 0 {
		t.Fatalf("r1(m5) should be 0, coverage gain = %d", trM5.CoverageGain)
	}
	// m5's reward is zero regardless of its prerequisite state.
	if r := ep.Reward(idx(t, c, "Big Data")); r != 0 {
		t.Fatalf("reward(m5) = %v, want 0", r)
	}
}

func TestPrereqGapInTransitions(t *testing.T) {
	env := courseEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Data Mining"))
	ep.Step(idx(t, c, "Data Structures and Algorithms"))
	ep.Step(idx(t, c, "Linear Algebra"))

	// Big Data at position 3: Data Mining at position 0, distance 3 ≥ gap 3.
	tr := ep.Transition(idx(t, c, "Big Data"))
	if !tr.PrereqOK {
		t.Fatal("Big Data prereq should be satisfied at distance 3")
	}

	// Machine Learning at position 3: Linear Algebra at position 2,
	// distance 1 < 3 → unsatisfied.
	tr = ep.Transition(idx(t, c, "Machine Learning"))
	if tr.PrereqOK {
		t.Fatal("Machine Learning prereq should fail the gap")
	}
	if r := ep.Reward(idx(t, c, "Machine Learning")); r != 0 {
		t.Fatalf("reward = %v, want 0 when r2 = 0", r)
	}
}

func TestEpisodeBookkeeping(t *testing.T) {
	env := courseEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Data Mining"))
	if ep.Len() != 1 || ep.Credits() != 3 {
		t.Fatalf("after start: len=%d credits=%v", ep.Len(), ep.Credits())
	}
	ep.Step(idx(t, c, "Linear Algebra"))
	if ep.Len() != 2 || ep.Credits() != 6 {
		t.Fatalf("after step: len=%d credits=%v", ep.Len(), ep.Credits())
	}
	types := ep.Types()
	if types[0] != item.Secondary || types[1] != item.Secondary {
		t.Fatalf("types = %v", types)
	}
	cov := ep.Coverage()
	// m2 topics {1,2} ∪ m4 topics {8,9}.
	if cov.Count() != 4 {
		t.Fatalf("coverage count = %d, want 4", cov.Count())
	}
	if ep.Last() != idx(t, c, "Linear Algebra") {
		t.Fatal("Last mismatch")
	}
	seq := ep.Sequence()
	seq[0] = 99
	if ep.Sequence()[0] == 99 {
		t.Fatal("Sequence leaked internal slice")
	}
}

func TestCountBudgetTermination(t *testing.T) {
	env := courseEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(0)
	steps := []string{"Data Mining", "Data Analytics", "Linear Algebra", "Big Data", "Machine Learning"}
	for _, id := range steps {
		if ep.Done() {
			t.Fatalf("Done before H items (len=%d)", ep.Len())
		}
		ep.Step(idx(t, c, id))
	}
	if !ep.Done() {
		t.Fatal("not Done after H = 6 items")
	}
	if got := ep.Candidates(); len(got) != 0 {
		t.Fatalf("candidates after Done = %v", got)
	}
}

func TestStepPanics(t *testing.T) {
	env := courseEnv(t)
	ep, _ := env.Start(0)
	for _, idx := range []int{-1, 99, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Step(%d) did not panic", idx)
				}
			}()
			ep.Step(idx)
		}()
	}
}

func TestStartValidation(t *testing.T) {
	env := courseEnv(t)
	if _, err := env.Start(-1); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := env.Start(env.NumItems()); err == nil {
		t.Fatal("out-of-range start accepted")
	}
}

func tripEnv(t *testing.T) *mdp.Env {
	t.Helper()
	c := fixture.Trip()
	rw := reward.DefaultTripConfig(fixture.TripTemplate())
	env, err := mdp.NewEnv(c, fixture.TripHard(), fixture.TripSoft(), rw,
		mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func TestTimeBudget(t *testing.T) {
	b := mdp.TimeBudget{Hours: 6, MaxItems: 5}
	if b.Done(5.9, 3) {
		t.Fatal("Done before budget")
	}
	if !b.Done(6, 3) {
		t.Fatal("not Done at budget")
	}
	if !b.Done(2, 5) {
		t.Fatal("not Done at item cap")
	}
	if b.Allows(5, 3, 2) {
		t.Fatal("Allows should reject overflow (5+2 > 6)")
	}
	if !b.Allows(5, 3, 1) {
		t.Fatal("Allows should accept exact fit")
	}
}

func TestTripThemeGapTransition(t *testing.T) {
	env := tripEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Louvre Museum"))
	// Orsay is also a museum (same category) → ThemeOK = false, reward 0.
	tr := ep.Transition(idx(t, c, "Musée d'Orsay"))
	if tr.ThemeOK {
		t.Fatal("consecutive museums should violate the theme gap")
	}
	if r := ep.Reward(idx(t, c, "Musée d'Orsay")); r != 0 {
		t.Fatalf("reward = %v, want 0", r)
	}
	// Seine (river) is fine.
	tr = ep.Transition(idx(t, c, "The River Seine"))
	if !tr.ThemeOK {
		t.Fatal("river after museum should satisfy the theme gap")
	}
}

func TestTripTimeBudgetStopsEpisode(t *testing.T) {
	env := tripEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Louvre Museum")) // 2h
	ep.Step(idx(t, c, "The River Seine"))          // 3h
	ep.Step(idx(t, c, "Eiffel Tower"))             // 4.5h
	ep.Step(idx(t, c, "Pantheon"))                 // 5.5h
	// Orsay needs 1.5h: 5.5+1.5 = 7 > 6 → not steppable.
	if ep.CanStep(idx(t, c, "Musée d'Orsay")) {
		t.Fatal("over-budget POI should not be steppable")
	}
	// Rue des Martyrs needs 0.5h → fits exactly.
	if !ep.CanStep(idx(t, c, "Rue des Martyrs")) {
		t.Fatal("fitting POI should be steppable")
	}
	ep.Step(idx(t, c, "Rue des Martyrs"))
	if !ep.Done() {
		t.Fatalf("episode should be done at %v hours / %d items", ep.Credits(), ep.Len())
	}
}

func TestDistanceThresholdFiltersCandidates(t *testing.T) {
	c := fixture.Trip()
	hard := fixture.TripHard()
	hard.MaxDistanceKm = 2
	rw := reward.DefaultTripConfig(fixture.TripTemplate())
	env, err := mdp.NewEnv(c, hard, fixture.TripSoft(), rw, mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := env.Start(idx(t, c, "Eiffel Tower"))
	// Pantheon is ~4 km from the Eiffel Tower: beyond the 2 km budget.
	if ep.CanStep(idx(t, c, "Pantheon")) {
		t.Fatal("distant POI should be filtered by d")
	}
	if ep.Distance() != 0 {
		t.Fatalf("distance after start = %v", ep.Distance())
	}
}

// TestPropertyEpisodeMatchesDirectRecomputation pins the precomputation
// layer to the definitional path: random walks over the gap-3 course
// environment and a distance-constrained trip environment, comparing every
// candidate's Transition facts against recomputation from the catalog —
// prereq.Satisfied over a freshly built position map (vs the incremental
// prereqOK cache), NewCoverage over raw topic vectors (vs the precomputed
// T^m ∩ T_ideal facts), and float64 Haversine path length (vs the float32
// distance matrix).
func TestPropertyEpisodeMatchesDirectRecomputation(t *testing.T) {
	tripHard := fixture.TripHard()
	tripHard.MaxDistanceKm = 15 // activate the distance matrix, loose enough to walk
	tripRW := reward.DefaultTripConfig(fixture.TripTemplate())
	tripDistEnv, err := mdp.NewEnv(fixture.Trip(), tripHard, fixture.TripSoft(), tripRW,
		mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	envs := map[string]*mdp.Env{
		"course":   courseEnv(t), // gap 3: frontier crossings lag admissions
		"tripDist": tripDistEnv,  // theme gap + distance matrix
	}
	for name, env := range envs {
		t.Run(name, func(t *testing.T) {
			c := env.Catalog()
			gap := env.Hard().Gap
			ideal := env.Soft().Ideal
			rng := rand.New(rand.NewSource(7))
			for walk := 0; walk < 30; walk++ {
				ep, err := env.Start(rng.Intn(env.NumItems()))
				if err != nil {
					t.Fatal(err)
				}
				for !ep.Done() {
					seq := ep.Sequence()
					// Definitional state, rebuilt from scratch each step.
					posMap := make(map[string]int, len(seq))
					current := bitset.New(c.Vocabulary().Len())
					pathKm := 0.0
					for p, it := range seq {
						m := c.At(it)
						posMap[m.ID] = p
						current.UnionInPlace(m.Topics)
						if p > 0 {
							prev := c.At(seq[p-1])
							pathKm += geo.Haversine(
								geo.Point{Lat: prev.Lat, Lon: prev.Lon},
								geo.Point{Lat: m.Lat, Lon: m.Lon})
						}
					}
					if math.Abs(ep.Distance()-pathKm) > math.Max(pathKm*1e-6, 1e-9) {
						t.Fatalf("walk %d len %d: Distance %v, haversine path %v",
							walk, ep.Len(), ep.Distance(), pathKm)
					}
					for idx := 0; idx < env.NumItems(); idx++ {
						skip := false
						for _, it := range seq {
							if it == idx {
								skip = true
							}
						}
						if skip {
							continue
						}
						m := c.At(idx)
						tr := ep.Transition(idx)
						if want := prereq.Satisfied(m.Prereq, ep.Len(), posMap, gap); tr.PrereqOK != want {
							t.Fatalf("walk %d len %d item %s: cached PrereqOK=%v, Satisfied=%v (seq %v)",
								walk, ep.Len(), m.ID, tr.PrereqOK, want, seq)
						}
						if want := m.Topics.NewCoverage(current, ideal); tr.CoverageGain != want {
							t.Fatalf("walk %d len %d item %s: CoverageGain=%d, NewCoverage=%d",
								walk, ep.Len(), m.ID, tr.CoverageGain, want)
						}
					}
					cands := ep.Candidates()
					if len(cands) == 0 {
						break
					}
					ep.Step(cands[rng.Intn(len(cands))])
				}
			}
		})
	}
}

// TestEpisodeResetMatchesFreshStart checks that a recycled episode is
// observationally identical to a freshly started one: after any walk,
// Reset must leave no residue in the coverage set, position array, chosen
// flags or prerequisite cache.
func TestEpisodeResetMatchesFreshStart(t *testing.T) {
	for name, env := range map[string]*mdp.Env{"course": courseEnv(t), "trip": tripEnv(t)} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			recycled, err := env.Start(0)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				// Dirty the recycled episode with a random walk.
				for !recycled.Done() {
					cands := recycled.Candidates()
					if len(cands) == 0 {
						break
					}
					recycled.Step(cands[rng.Intn(len(cands))])
				}
				start := rng.Intn(env.NumItems())
				if err := recycled.Reset(start); err != nil {
					t.Fatal(err)
				}
				fresh, err := env.Start(start)
				if err != nil {
					t.Fatal(err)
				}
				// Replay an identical walk on both and compare everything.
				for !fresh.Done() {
					if recycled.Len() != fresh.Len() || recycled.Credits() != fresh.Credits() ||
						recycled.Distance() != fresh.Distance() ||
						!recycled.Coverage().Equal(fresh.Coverage()) {
						t.Fatalf("trial %d: state diverged at len %d", trial, fresh.Len())
					}
					cands := fresh.Candidates()
					gotCands := recycled.Candidates()
					if len(cands) != len(gotCands) {
						t.Fatalf("trial %d: candidates %v vs %v", trial, gotCands, cands)
					}
					for i := range cands {
						if cands[i] != gotCands[i] {
							t.Fatalf("trial %d: candidates %v vs %v", trial, gotCands, cands)
						}
						want, got := fresh.Transition(cands[i]), recycled.Transition(cands[i])
						if want.PrereqOK != got.PrereqOK || want.ThemeOK != got.ThemeOK ||
							want.CoverageGain != got.CoverageGain {
							t.Fatalf("trial %d item %d: transition %+v vs %+v", trial, cands[i], got, want)
						}
					}
					if len(cands) == 0 {
						break
					}
					next := cands[rng.Intn(len(cands))]
					if r1, r2 := fresh.Step(next), recycled.Step(next); r1 != r2 {
						t.Fatalf("trial %d: reward %v vs %v", trial, r2, r1)
					}
				}
			}
		})
	}
}

func TestRewardValueMatchesEquation2(t *testing.T) {
	env := courseEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Data Structures and Algorithms")) // primary
	// Add Data Mining (secondary): sequence [P,S].
	// Match vectors vs template: I1=[P,P,..]→[1,0]; I2=[P,S,..]→[1,1]; I3=[P,S,..]→[1,1].
	// Sims: 1*1/2=0.5; 2*2/2=2; 2. AvgSim = 4.5/3 = 1.5.
	want := 0.6*1.5 + 0.4*0.4
	got := ep.Reward(idx(t, c, "Data Mining"))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("reward = %v, want %v", got, want)
	}
}

func TestCandidatesExcludeChosen(t *testing.T) {
	env := courseEnv(t)
	ep, _ := env.Start(0)
	cands := ep.Candidates()
	if len(cands) != 5 {
		t.Fatalf("candidates = %v, want 5 items", cands)
	}
	for _, i := range cands {
		if i == 0 {
			t.Fatal("start item among candidates")
		}
	}
}
