package mdp_test

import (
	"math"
	"testing"

	"github.com/rlplanner/rlplanner/internal/fixture"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/reward"
	"github.com/rlplanner/rlplanner/internal/seqsim"
)

// courseEnv builds the Table II toy environment with ε = 1 and the Example
// 1 ideal vector, as used by the paper's worked examples.
func courseEnv(t *testing.T) *mdp.Env {
	t.Helper()
	c := fixture.Courses()
	rw := reward.Config{
		Delta:    0.6,
		Beta:     0.4,
		Epsilon:  1,
		Weights:  reward.Weights{Primary: 0.6, Secondary: 0.4},
		Sim:      seqsim.Average,
		Template: fixture.CourseTemplate(),
	}
	env, err := mdp.NewEnv(c, fixture.CourseHard(), fixture.CourseSoft(), rw, mdp.CountBudget{H: 6})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func idx(t *testing.T, c *item.Catalog, id string) int {
	t.Helper()
	i, ok := c.Index(id)
	if !ok {
		t.Fatalf("unknown id %q", id)
	}
	return i
}

func TestNewEnvValidation(t *testing.T) {
	c := fixture.Courses()
	rw := reward.DefaultCourseConfig(fixture.CourseTemplate())
	if _, err := mdp.NewEnv(nil, fixture.CourseHard(), fixture.CourseSoft(), rw, mdp.CountBudget{H: 6}); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := mdp.NewEnv(c, fixture.CourseHard(), fixture.CourseSoft(), rw, nil); err == nil {
		t.Fatal("nil budget accepted")
	}
	bad := rw
	bad.Delta = 0.5
	if _, err := mdp.NewEnv(c, fixture.CourseHard(), fixture.CourseSoft(), bad, mdp.CountBudget{H: 6}); err == nil {
		t.Fatal("invalid reward config accepted")
	}
	soft := fixture.CourseSoft()
	soft.Ideal = fixture.TripIdeal() // wrong length
	if _, err := mdp.NewEnv(c, fixture.CourseHard(), soft, rw, mdp.CountBudget{H: 6}); err == nil {
		t.Fatal("mismatched ideal vector accepted")
	}
	soft = fixture.CourseSoft()
	soft.Template = fixture.TripTemplate() // 2/3 split, hard wants 3/3
	if _, err := mdp.NewEnv(c, fixture.CourseHard(), soft, rw, mdp.CountBudget{H: 6}); err == nil {
		t.Fatal("mismatched template accepted")
	}
}

func TestPaperRewardExampleM2ToM4VsM5(t *testing.T) {
	// §III-B.1: from a state where m2 (Data Mining) was taken, adding m4
	// (Linear Algebra) has r1 = 1 but adding m5 (Big Data) has r1 = 0.
	env := courseEnv(t)
	c := env.Catalog()
	ep, err := env.Start(idx(t, c, "Data Mining"))
	if err != nil {
		t.Fatal(err)
	}

	trM4 := ep.Transition(idx(t, c, "Linear Algebra"))
	if trM4.CoverageGain < 1 {
		t.Fatalf("m4 coverage gain = %d, want ≥ 1", trM4.CoverageGain)
	}
	if env.RewardConfig().R1(trM4.CoverageGain, trM4.IdealSize) != 1 {
		t.Fatal("r1(m4) should be 1")
	}

	trM5 := ep.Transition(idx(t, c, "Big Data"))
	if env.RewardConfig().R1(trM5.CoverageGain, trM5.IdealSize) != 0 {
		t.Fatalf("r1(m5) should be 0, coverage gain = %d", trM5.CoverageGain)
	}
	// m5's reward is zero regardless of its prerequisite state.
	if r := ep.Reward(idx(t, c, "Big Data")); r != 0 {
		t.Fatalf("reward(m5) = %v, want 0", r)
	}
}

func TestPrereqGapInTransitions(t *testing.T) {
	env := courseEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Data Mining"))
	ep.Step(idx(t, c, "Data Structures and Algorithms"))
	ep.Step(idx(t, c, "Linear Algebra"))

	// Big Data at position 3: Data Mining at position 0, distance 3 ≥ gap 3.
	tr := ep.Transition(idx(t, c, "Big Data"))
	if !tr.PrereqOK {
		t.Fatal("Big Data prereq should be satisfied at distance 3")
	}

	// Machine Learning at position 3: Linear Algebra at position 2,
	// distance 1 < 3 → unsatisfied.
	tr = ep.Transition(idx(t, c, "Machine Learning"))
	if tr.PrereqOK {
		t.Fatal("Machine Learning prereq should fail the gap")
	}
	if r := ep.Reward(idx(t, c, "Machine Learning")); r != 0 {
		t.Fatalf("reward = %v, want 0 when r2 = 0", r)
	}
}

func TestEpisodeBookkeeping(t *testing.T) {
	env := courseEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Data Mining"))
	if ep.Len() != 1 || ep.Credits() != 3 {
		t.Fatalf("after start: len=%d credits=%v", ep.Len(), ep.Credits())
	}
	ep.Step(idx(t, c, "Linear Algebra"))
	if ep.Len() != 2 || ep.Credits() != 6 {
		t.Fatalf("after step: len=%d credits=%v", ep.Len(), ep.Credits())
	}
	types := ep.Types()
	if types[0] != item.Secondary || types[1] != item.Secondary {
		t.Fatalf("types = %v", types)
	}
	cov := ep.Coverage()
	// m2 topics {1,2} ∪ m4 topics {8,9}.
	if cov.Count() != 4 {
		t.Fatalf("coverage count = %d, want 4", cov.Count())
	}
	if ep.Last() != idx(t, c, "Linear Algebra") {
		t.Fatal("Last mismatch")
	}
	seq := ep.Sequence()
	seq[0] = 99
	if ep.Sequence()[0] == 99 {
		t.Fatal("Sequence leaked internal slice")
	}
}

func TestCountBudgetTermination(t *testing.T) {
	env := courseEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(0)
	steps := []string{"Data Mining", "Data Analytics", "Linear Algebra", "Big Data", "Machine Learning"}
	for _, id := range steps {
		if ep.Done() {
			t.Fatalf("Done before H items (len=%d)", ep.Len())
		}
		ep.Step(idx(t, c, id))
	}
	if !ep.Done() {
		t.Fatal("not Done after H = 6 items")
	}
	if got := ep.Candidates(); len(got) != 0 {
		t.Fatalf("candidates after Done = %v", got)
	}
}

func TestStepPanics(t *testing.T) {
	env := courseEnv(t)
	ep, _ := env.Start(0)
	for _, idx := range []int{-1, 99, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Step(%d) did not panic", idx)
				}
			}()
			ep.Step(idx)
		}()
	}
}

func TestStartValidation(t *testing.T) {
	env := courseEnv(t)
	if _, err := env.Start(-1); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := env.Start(env.NumItems()); err == nil {
		t.Fatal("out-of-range start accepted")
	}
}

func tripEnv(t *testing.T) *mdp.Env {
	t.Helper()
	c := fixture.Trip()
	rw := reward.DefaultTripConfig(fixture.TripTemplate())
	env, err := mdp.NewEnv(c, fixture.TripHard(), fixture.TripSoft(), rw,
		mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func TestTimeBudget(t *testing.T) {
	b := mdp.TimeBudget{Hours: 6, MaxItems: 5}
	if b.Done(5.9, 3) {
		t.Fatal("Done before budget")
	}
	if !b.Done(6, 3) {
		t.Fatal("not Done at budget")
	}
	if !b.Done(2, 5) {
		t.Fatal("not Done at item cap")
	}
	if b.Allows(5, 3, 2) {
		t.Fatal("Allows should reject overflow (5+2 > 6)")
	}
	if !b.Allows(5, 3, 1) {
		t.Fatal("Allows should accept exact fit")
	}
}

func TestTripThemeGapTransition(t *testing.T) {
	env := tripEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Louvre Museum"))
	// Orsay is also a museum (same category) → ThemeOK = false, reward 0.
	tr := ep.Transition(idx(t, c, "Musée d'Orsay"))
	if tr.ThemeOK {
		t.Fatal("consecutive museums should violate the theme gap")
	}
	if r := ep.Reward(idx(t, c, "Musée d'Orsay")); r != 0 {
		t.Fatalf("reward = %v, want 0", r)
	}
	// Seine (river) is fine.
	tr = ep.Transition(idx(t, c, "The River Seine"))
	if !tr.ThemeOK {
		t.Fatal("river after museum should satisfy the theme gap")
	}
}

func TestTripTimeBudgetStopsEpisode(t *testing.T) {
	env := tripEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Louvre Museum")) // 2h
	ep.Step(idx(t, c, "The River Seine"))          // 3h
	ep.Step(idx(t, c, "Eiffel Tower"))             // 4.5h
	ep.Step(idx(t, c, "Pantheon"))                 // 5.5h
	// Orsay needs 1.5h: 5.5+1.5 = 7 > 6 → not steppable.
	if ep.CanStep(idx(t, c, "Musée d'Orsay")) {
		t.Fatal("over-budget POI should not be steppable")
	}
	// Rue des Martyrs needs 0.5h → fits exactly.
	if !ep.CanStep(idx(t, c, "Rue des Martyrs")) {
		t.Fatal("fitting POI should be steppable")
	}
	ep.Step(idx(t, c, "Rue des Martyrs"))
	if !ep.Done() {
		t.Fatalf("episode should be done at %v hours / %d items", ep.Credits(), ep.Len())
	}
}

func TestDistanceThresholdFiltersCandidates(t *testing.T) {
	c := fixture.Trip()
	hard := fixture.TripHard()
	hard.MaxDistanceKm = 2
	rw := reward.DefaultTripConfig(fixture.TripTemplate())
	env, err := mdp.NewEnv(c, hard, fixture.TripSoft(), rw, mdp.TimeBudget{Hours: 6, MaxItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := env.Start(idx(t, c, "Eiffel Tower"))
	// Pantheon is ~4 km from the Eiffel Tower: beyond the 2 km budget.
	if ep.CanStep(idx(t, c, "Pantheon")) {
		t.Fatal("distant POI should be filtered by d")
	}
	if ep.Distance() != 0 {
		t.Fatalf("distance after start = %v", ep.Distance())
	}
}

func TestRewardValueMatchesEquation2(t *testing.T) {
	env := courseEnv(t)
	c := env.Catalog()
	ep, _ := env.Start(idx(t, c, "Data Structures and Algorithms")) // primary
	// Add Data Mining (secondary): sequence [P,S].
	// Match vectors vs template: I1=[P,P,..]→[1,0]; I2=[P,S,..]→[1,1]; I3=[P,S,..]→[1,1].
	// Sims: 1*1/2=0.5; 2*2/2=2; 2. AvgSim = 4.5/3 = 1.5.
	want := 0.6*1.5 + 0.4*0.4
	got := ep.Reward(idx(t, c, "Data Mining"))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("reward = %v, want %v", got, want)
	}
}

func TestCandidatesExcludeChosen(t *testing.T) {
	env := courseEnv(t)
	ep, _ := env.Start(0)
	cands := ep.Candidates()
	if len(cands) != 5 {
		t.Fatalf("candidates = %v, want 5 items", cands)
	}
	for _, i := range cands {
		if i == 0 {
			t.Fatal("start item among candidates")
		}
	}
}
