package eval_test

import (
	"strings"
	"testing"

	"github.com/rlplanner/rlplanner/internal/baselines/gold"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
)

func TestExplainGoldPlan(t *testing.T) {
	inst := univ.Univ1DSCT()
	plan, err := gold.Plan(inst)
	if err != nil {
		t.Fatal(err)
	}
	steps := eval.Explain(inst, inst.Hard, plan)
	if len(steps) != len(plan) {
		t.Fatalf("explanations = %d, plan = %d", len(steps), len(plan))
	}
	for _, s := range steps {
		if !s.PrereqOK {
			t.Fatalf("gold step %d (%s) explained as violating: %s", s.Pos, s.ID, s.Prereq)
		}
		if !s.ThemeOK {
			t.Fatalf("gold step %d (%s) flagged theme repeat", s.Pos, s.ID)
		}
		if s.Role != "primary" && s.Role != "secondary" {
			t.Fatalf("step role = %q", s.Role)
		}
	}
	// The first step has no antecedents in any feasible gold plan.
	if !strings.Contains(steps[0].Prereq, "no prerequisites") &&
		!strings.Contains(steps[0].Prereq, "satisfied") {
		t.Fatalf("first step prereq = %q", steps[0].Prereq)
	}
}

func TestExplainFlagsViolations(t *testing.T) {
	inst := univ.Univ1DSCT()
	// CS 677 needs CS 675 AND MATH 630 well before it; placing it second
	// violates the gap.
	i675, _ := inst.Catalog.Index("CS 675")
	i677, _ := inst.Catalog.Index("CS 677")
	steps := eval.Explain(inst, inst.Hard, []int{i675, i677})
	if steps[1].PrereqOK {
		t.Fatal("violating step explained as satisfied")
	}
	if !strings.Contains(steps[1].Prereq, "VIOLATED") {
		t.Fatalf("prereq text = %q", steps[1].Prereq)
	}
}

func TestExplainTracksNewTopics(t *testing.T) {
	inst := univ.Univ1DSCT()
	i675, _ := inst.Catalog.Index("CS 675")
	steps := eval.Explain(inst, inst.Hard, []int{i675, i675})
	if len(steps[0].NewIdealTopics) == 0 {
		t.Fatal("first step adds no topics?")
	}
	// The same item repeated adds nothing new.
	if len(steps[1].NewIdealTopics) != 0 {
		t.Fatalf("duplicate step added topics: %v", steps[1].NewIdealTopics)
	}
}

func TestRenderExplanation(t *testing.T) {
	inst := univ.Univ1DSCT()
	plan, _ := gold.Plan(inst)
	lines := eval.RenderExplanation(eval.Explain(inst, inst.Hard, plan))
	if len(lines) != len(plan) {
		t.Fatalf("lines = %d", len(lines))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"1.", "primary", "adds"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("rendered explanation missing %q:\n%s", want, joined)
		}
	}
}
