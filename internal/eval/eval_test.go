package eval_test

import (
	"math"
	"testing"

	"github.com/rlplanner/rlplanner/internal/baselines/gold"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/dataset/trip"
	"github.com/rlplanner/rlplanner/internal/dataset/univ"
	"github.com/rlplanner/rlplanner/internal/eval"
)

func ids(t *testing.T, inst *dataset.Instance, names ...string) []int {
	t.Helper()
	out := make([]int, len(names))
	for i, n := range names {
		idx, ok := inst.Catalog.Index(n)
		if !ok {
			t.Fatalf("unknown %q", n)
		}
		out[i] = idx
	}
	return out
}

func TestGoldPlanScoresPerfect(t *testing.T) {
	// The executable Theorem 1 + gold bound: the gold synthesizer's course
	// plan matches a template exactly and satisfies P_hard, so Score = H.
	for _, inst := range []*dataset.Instance{univ.Univ1DSCT(), univ.Univ1Cyber(), univ.Univ1CS()} {
		plan, err := gold.Plan(inst)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		d := eval.Evaluate(inst, plan)
		if len(d.Violations) != 0 {
			t.Fatalf("%s gold violations: %v", inst.Name, d.Violations)
		}
		if d.Score != inst.GoldScore {
			t.Fatalf("%s gold score = %v, want %v", inst.Name, d.Score, inst.GoldScore)
		}
	}
}

func TestGoldPlanUniv2(t *testing.T) {
	inst := univ.Univ2DS()
	plan, err := gold.Plan(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got := eval.Score(inst, plan); got != 15 {
		t.Fatalf("Univ-2 gold score = %v, want 15", got)
	}
}

func TestGoldPlanTrip(t *testing.T) {
	for _, city := range []*trip.CityData{trip.NYC(), trip.Paris()} {
		inst := city.Instance
		plan, err := gold.Plan(inst)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		d := eval.Evaluate(inst, plan)
		if len(d.Violations) != 0 {
			t.Fatalf("%s gold violations: %v", inst.Name, d.Violations)
		}
		// Trip gold = mean popularity of famous feasible POIs; must be
		// well above the catalog average and within [1,5].
		if d.Score < 3.5 || d.Score > 5 {
			t.Fatalf("%s gold score = %v", inst.Name, d.Score)
		}
	}
}

func TestViolatingPlanScoresZero(t *testing.T) {
	inst := univ.Univ1DSCT()
	// Two courses: fails credits, length, split.
	plan := ids(t, inst, "CS 675", "CS 636")
	if got := eval.Score(inst, plan); got != 0 {
		t.Fatalf("score = %v, want 0", got)
	}
	d := eval.Evaluate(inst, plan)
	if len(d.Violations) == 0 {
		t.Fatal("no violations recorded")
	}
	if d.Interleave <= 0 {
		t.Fatal("interleave should still be measured")
	}
}

func TestEmptyPlan(t *testing.T) {
	inst := univ.Univ1DSCT()
	d := eval.Evaluate(inst, nil)
	if d.Score != 0 || d.OrderingValid != 0 {
		t.Fatalf("empty plan detail = %+v", d)
	}
}

func TestCoverageAndOrdering(t *testing.T) {
	inst := univ.Univ1DSCT()
	plan, err := gold.Plan(inst)
	if err != nil {
		t.Fatal(err)
	}
	d := eval.Evaluate(inst, plan)
	if d.Coverage <= 0 || d.Coverage > 1 {
		t.Fatalf("coverage = %v", d.Coverage)
	}
	if d.OrderingValid != 1 {
		t.Fatalf("gold ordering validity = %v, want 1", d.OrderingValid)
	}
}

func TestTripScoreIsMeanPopularity(t *testing.T) {
	inst := trip.Paris().Instance
	plan, err := gold.Plan(inst)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, idx := range plan {
		want += inst.Catalog.At(idx).Popularity
	}
	want /= float64(len(plan))
	if got := eval.Score(inst, plan); math.Abs(got-want) > 1e-12 {
		t.Fatalf("trip score = %v, want mean popularity %v", got, want)
	}
}

func TestRatePlanGoldBeatsBroken(t *testing.T) {
	inst := univ.Univ1DSCT()
	goldPlan, err := gold.Plan(inst)
	if err != nil {
		t.Fatal(err)
	}
	broken := ids(t, inst, "CS 675", "CS 636") // short, violating
	cfg := eval.StudyConfig{Raters: 25, Seed: 1}
	rGold := eval.RatePlan(inst, goldPlan, cfg)
	rBroken := eval.RatePlan(inst, broken, cfg)
	if rGold.Overall <= rBroken.Overall {
		t.Fatalf("gold overall %v ≤ broken %v", rGold.Overall, rBroken.Overall)
	}
	for _, r := range []float64{rGold.Overall, rGold.Ordering, rGold.Coverage, rGold.Interleaving} {
		if r < 1 || r > 5 {
			t.Fatalf("rating %v out of scale", r)
		}
	}
	// Gold should land in the paper's observed band (≈3.4–4.6 overall).
	if rGold.Overall < 3.4 || rGold.Overall > 4.6 {
		t.Fatalf("gold overall = %v, outside plausible band", rGold.Overall)
	}
}

func TestRatePlanDeterministicPerSeed(t *testing.T) {
	inst := univ.Univ1DSCT()
	plan, _ := gold.Plan(inst)
	cfg := eval.StudyConfig{Raters: 25, Seed: 9}
	a := eval.RatePlan(inst, plan, cfg)
	b := eval.RatePlan(inst, plan, cfg)
	if a != b {
		t.Fatalf("ratings differ for same seed: %+v vs %+v", a, b)
	}
	cfg.Seed = 10
	c := eval.RatePlan(inst, plan, cfg)
	if a == c {
		t.Fatal("ratings identical across seeds (no noise?)")
	}
}

func TestRatePlanDefaults(t *testing.T) {
	inst := univ.Univ1DSCT()
	plan, _ := gold.Plan(inst)
	r := eval.RatePlan(inst, plan, eval.StudyConfig{})
	if r.Overall < 1 || r.Overall > 5 {
		t.Fatalf("default-config rating out of scale: %v", r.Overall)
	}
}
