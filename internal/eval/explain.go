package eval

import (
	"fmt"
	"strings"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/prereq"
)

// StepExplanation itemizes why one plan position is (in)valid — the
// advisor-style justification an end user sees next to each recommended
// item.
type StepExplanation struct {
	// Pos is the 0-based plan position; ID the item.
	Pos int
	ID  string
	// Role is "primary" or "secondary".
	Role string
	// NewIdealTopics lists the ideal topics this step newly covers.
	NewIdealTopics []string
	// Prereq describes the antecedent status, e.g. "no prerequisites" or
	// "satisfied: [A OR B] via A at position 0 (gap 3)".
	Prereq string
	// PrereqOK reports whether the gap rule holds here.
	PrereqOK bool
	// ThemeOK reports the consecutive-theme rule (always true when the
	// instance has no theme-gap constraint).
	ThemeOK bool
}

// Explain walks a plan and justifies every step against the hard
// constraints it was planned under.
func Explain(inst *dataset.Instance, hard constraints.Hard, plan []int) []StepExplanation {
	c := inst.Catalog
	vocab := c.Vocabulary()
	covered := bitset.New(vocab.Len())
	positions := make(map[string]int, len(plan))
	out := make([]StepExplanation, 0, len(plan))

	for pos, idx := range plan {
		m := c.At(idx)
		gain := m.Topics.NewCoverage(covered, inst.Soft.Ideal)
		_ = gain
		newTopics := vocab.Decode(inst.Soft.Ideal.Intersect(m.Topics.Difference(covered)))

		ok := prereq.Satisfied(m.Prereq, pos, positions, hard.Gap)
		var pr string
		switch {
		case m.Prereq == nil:
			pr = "no prerequisites"
		case ok:
			pr = fmt.Sprintf("satisfied: %s (gap %d)", describeRefs(m.Prereq, positions), hard.Gap)
		default:
			pr = fmt.Sprintf("VIOLATED: needs %s at least %d positions earlier",
				prereq.Format(m.Prereq), hard.Gap)
		}

		themeOK := true
		if hard.ThemeGap && pos > 0 {
			prev := c.At(plan[pos-1])
			if m.Category >= 0 && m.Category == prev.Category {
				themeOK = false
			}
		}

		out = append(out, StepExplanation{
			Pos:            pos,
			ID:             m.ID,
			Role:           m.Type.String(),
			NewIdealTopics: newTopics,
			Prereq:         pr,
			PrereqOK:       ok,
			ThemeOK:        themeOK,
		})
		covered.UnionInPlace(m.Topics)
		positions[m.ID] = pos
	}
	return out
}

// describeRefs reports where the referenced antecedents sit in the plan.
func describeRefs(e prereq.Expr, positions map[string]int) string {
	var parts []string
	for _, ref := range prereq.ReferencedItems(e) {
		if p, ok := positions[ref]; ok {
			parts = append(parts, fmt.Sprintf("%s at position %d", ref, p))
		}
	}
	if len(parts) == 0 {
		return prereq.Format(e)
	}
	return prereq.Format(e) + " via " + strings.Join(parts, ", ")
}

// RenderExplanation formats step explanations as human-readable lines.
func RenderExplanation(steps []StepExplanation) []string {
	out := make([]string, 0, len(steps))
	for _, s := range steps {
		line := fmt.Sprintf("%2d. %-36s %-9s %s", s.Pos+1, s.ID, s.Role, s.Prereq)
		if !s.ThemeOK {
			line += " [theme repeat]"
		}
		if len(s.NewIdealTopics) > 0 {
			shown := s.NewIdealTopics
			if len(shown) > 4 {
				shown = append(append([]string{}, shown[:4]...), "…")
			}
			line += " — adds " + strings.Join(shown, ", ")
		} else {
			line += " — adds no new ideal topics"
		}
		out = append(out, line)
	}
	return out
}
