// Package eval scores recommendations the way the experimental section
// does (§IV-A "Measures"):
//
//   - Course plans score max_{I∈IT} Sim(plan, I)^H (Equation 6 evaluated
//     per ideal composition, highest value kept). The handcrafted gold
//     standards score 10 (Univ-1) and 15 (Univ-2) — the perfect-match
//     bound at plan length H.
//   - Trip plans score the mean POI popularity on the 1–5 scale; the gold
//     standard scores 5, the highest popularity of any POI.
//   - A plan that violates the hard constraints scores 0 — this is how
//     OMEGA's frequent constraint failures appear as 0 bars in Figure 1
//     and 0 cells in Tables IX/XIV.
//
// The package also provides the rater-panel surrogate for the user study
// of §IV-C (see DESIGN.md §3 for the substitution argument).
package eval

import (
	"math"
	"math/rand"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// Detail is a fully itemized plan evaluation.
type Detail struct {
	// Score is the §IV-A score: 0 on hard-constraint violation, otherwise
	// the interleaving score (courses) or mean popularity (trips).
	Score float64
	// Violations lists every failed hard constraint.
	Violations []constraints.Violation
	// Interleave is max_{I∈IT} Sim(plan, I) regardless of violations.
	Interleave float64
	// Coverage is |T_plan ∩ T_ideal| / |T_ideal|.
	Coverage float64
	// MeanPopularity is the average POI popularity (trips; 0 for courses).
	MeanPopularity float64
	// OrderingValid is the fraction of plan positions whose antecedent and
	// theme-gap requirements hold.
	OrderingValid float64
}

// Evaluate scores a plan against its instance's default hard constraints.
func Evaluate(inst *dataset.Instance, plan []int) Detail {
	return EvaluateWith(inst, inst.Hard, plan)
}

// EvaluateWith scores a plan against explicit hard constraints — used when
// an experiment overrides the time or distance thresholds (Tables VIII,
// XV, XVI) so the plan is judged by the budget it was planned under.
func EvaluateWith(inst *dataset.Instance, hard constraints.Hard, plan []int) Detail {
	var d Detail
	if len(plan) == 0 {
		return d
	}
	c := inst.Catalog
	d.Violations = constraints.Check(c, plan, hard)
	d.Interleave = seqsim.MaxSim(c.SequenceTypes(plan), inst.Soft.Template)

	covered := bitset.New(c.Vocabulary().Len())
	for _, idx := range plan {
		covered.UnionInPlace(c.At(idx).Topics)
	}
	d.Coverage = topics.CoverageRatio(covered, inst.Soft.Ideal)

	if inst.Kind == dataset.TripPlanning {
		var sum float64
		for _, idx := range plan {
			sum += c.At(idx).Popularity
		}
		d.MeanPopularity = sum / float64(len(plan))
	}

	d.OrderingValid = orderingValidity(inst, hard, plan)

	if len(d.Violations) == 0 {
		if inst.Kind == dataset.TripPlanning {
			d.Score = d.MeanPopularity
		} else {
			d.Score = d.Interleave
		}
	}
	return d
}

// Score is the headline §IV-A score of a plan.
func Score(inst *dataset.Instance, plan []int) float64 {
	return Evaluate(inst, plan).Score
}

// ScoreWith is Score against explicit hard constraints.
func ScoreWith(inst *dataset.Instance, hard constraints.Hard, plan []int) float64 {
	return EvaluateWith(inst, hard, plan).Score
}

// orderingValidity computes the fraction of positions whose antecedent gap
// and theme-gap rules hold — the basis of the "Ordering of Items" user
// study question.
func orderingValidity(inst *dataset.Instance, hard constraints.Hard, plan []int) float64 {
	if len(plan) == 0 {
		return 0
	}
	c := inst.Catalog
	positions := make(map[string]int, len(plan))
	valid := 0
	for pos, idx := range plan {
		m := c.At(idx)
		ok := prereq.Satisfied(m.Prereq, pos, positions, hard.Gap)
		if ok && hard.ThemeGap && pos > 0 {
			prev := c.At(plan[pos-1])
			if m.Category >= 0 && m.Category == prev.Category {
				ok = false
			}
		}
		if ok {
			valid++
		}
		positions[m.ID] = pos
	}
	return float64(valid) / float64(len(plan))
}

// StudyConfig parameterizes the rater-panel surrogate.
type StudyConfig struct {
	// Raters is the panel size: 25 students for courses, 5 travelers per
	// itinerary × 10 itineraries for trips (§IV-C).
	Raters int
	// Seed drives rater noise.
	Seed int64
	// Noise is the per-rater rating standard deviation (default 0.35).
	Noise float64
}

// Ratings are the mean panel answers to the four §IV-C questions on the
// 1–5 scale.
type Ratings struct {
	// Overall answers "Overall Rating".
	Overall float64
	// Ordering answers "Ordering of Items".
	Ordering float64
	// Coverage answers "Topic/Theme Coverage".
	Coverage float64
	// Interleaving answers "Core and Elective Interleaving" (courses) /
	// "Distance and Time Threshold" (trips).
	Interleaving float64
}

// raterHarshness maps a perfect quality to ≈4.1 overall rather than 5 —
// panels rarely award full marks even to expert gold standards (the
// paper's gold plans average 4.12/4.5, not 5).
const raterHarshness = 0.78

// RatePlan runs the simulated rater panel over one plan. Each of the four
// questions is grounded in the measurable plan quality it asks about:
// overall = normalized §IV-A score, ordering = antecedent/theme validity,
// coverage = ideal-topic coverage, interleaving = template closeness (or,
// for trips, threshold compliance). Raters add seeded Gaussian noise and
// the panel mean is reported — preserving the relative ordering the real
// study measures.
func RatePlan(inst *dataset.Instance, plan []int, cfg StudyConfig) Ratings {
	if cfg.Raters <= 0 {
		cfg.Raters = 25
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.35
	}
	d := Evaluate(inst, plan)

	length := float64(inst.Hard.Length())
	if length == 0 {
		length = float64(len(plan))
	}
	overallQ := d.Score / inst.GoldScore
	if inst.Kind == dataset.TripPlanning {
		// Trip raters judge the itinerary itself even when a threshold is
		// missed; popularity on [1,5] normalizes to [0,1].
		overallQ = (d.MeanPopularity - 1) / 4
		if len(d.Violations) > 0 {
			overallQ *= 0.6
		}
	}
	interQ := d.Interleave / length
	if inst.Kind == dataset.TripPlanning {
		// "Distance and Time Threshold": fraction of threshold checks met.
		interQ = thresholdCompliance(d)
	}

	// Raters judge topic coverage against what a plan of this length can
	// achieve, not against covering the entire ideal set (|T_ideal| is 60+
	// topics for 10 courses): a saturating transform maps the achievable
	// range onto the upper rating region.
	coverageQ := 1 - math.Pow(1-math.Max(0, math.Min(1, d.Coverage)), 3)

	rng := rand.New(rand.NewSource(cfg.Seed))
	rate := func(q float64) float64 {
		q = math.Max(0, math.Min(1, q))
		var sum float64
		for r := 0; r < cfg.Raters; r++ {
			v := 1 + 4*raterHarshness*q + rng.NormFloat64()*cfg.Noise
			sum += math.Max(1, math.Min(5, v))
		}
		return sum / float64(cfg.Raters)
	}
	return Ratings{
		Overall:      rate(overallQ),
		Ordering:     rate(d.OrderingValid),
		Coverage:     rate(coverageQ),
		Interleaving: rate(interQ),
	}
}

// thresholdCompliance scores trip threshold satisfaction: 1 when neither
// the time nor the distance threshold is violated, reduced per violation.
func thresholdCompliance(d Detail) float64 {
	q := 1.0
	for _, v := range d.Violations {
		switch v.Kind {
		case constraints.ViolationCredits, constraints.ViolationDistance:
			q -= 0.5
		}
	}
	if q < 0 {
		return 0
	}
	return q
}
