// Package repofault provides an injectable filesystem for exercising
// the policy repository's crash-safety claims: short writes, ENOSPC,
// failed fsync/rename, and kill-mid-write (the process "dies" with a
// partial temp file on disk). It wraps the real filesystem, so every
// fault leaves genuine on-disk state for the next boot scan to recover
// from — the disk-fault counterpart of resilience/faultinject.
//
// Test-only by convention: nothing outside _test files imports it.
package repofault

import (
	"errors"
	"os"
	"sync"
	"syscall"
	"time"

	"github.com/rlplanner/rlplanner/internal/repo"
)

// ErrKilled marks an operation cut short by a scripted kill-mid-write:
// the write protocol observes an error, but unlike ENOSPC the partial
// bytes stay on disk, exactly like a process killed between write and
// rename.
var ErrKilled = errors.New("repofault: scripted kill mid-write")

// FS wraps the process filesystem with scriptable faults. The zero
// value passes everything through. All methods are safe for concurrent
// use.
type FS struct {
	mu sync.Mutex
	// failWritesAfter: >= 0 means every Write beyond that many bytes
	// (cumulative per file) fails with ENOSPC after a short write.
	enospcAfter int
	enospcArmed bool
	// killAfter: >= 0 means the file's Write stops persisting at that
	// cumulative byte count and returns ErrKilled; Remove of the partial
	// file is suppressed so it stays behind like after a real SIGKILL.
	killAfter int
	killArmed bool
	killed    bool
	// failRename / failSync fail the next matching call once.
	failRename bool
	failSync   bool
}

// New returns a pass-through fault filesystem.
func New() *FS { return &FS{} }

// FailWithENOSPC arms ENOSPC: the next opened file accepts n bytes,
// then every further write fails with syscall.ENOSPC (a short write).
func (f *FS) FailWithENOSPC(n int) {
	f.mu.Lock()
	f.enospcArmed, f.enospcAfter = true, n
	f.mu.Unlock()
}

// KillAfter arms kill-mid-write: the next opened file persists n bytes
// and then "dies" — the writer sees ErrKilled, the partial file stays
// on disk, and subsequent cleanup removals of it are suppressed, as
// they would be for a killed process.
func (f *FS) KillAfter(n int) {
	f.mu.Lock()
	f.killArmed, f.killAfter, f.killed = true, n, false
	f.mu.Unlock()
}

// FailNextRename makes the next Rename fail with EIO.
func (f *FS) FailNextRename() {
	f.mu.Lock()
	f.failRename = true
	f.mu.Unlock()
}

// FailNextSync makes the next file Sync fail with EIO.
func (f *FS) FailNextSync() {
	f.mu.Lock()
	f.failSync = true
	f.mu.Unlock()
}

// Reset disarms every scripted fault.
func (f *FS) Reset() {
	f.mu.Lock()
	f.enospcArmed, f.killArmed, f.killed = false, false, false
	f.failRename, f.failSync = false, false
	f.mu.Unlock()
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (repo.File, error) {
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&(os.O_WRONLY|os.O_RDWR) == 0 {
		return file, nil // faults target the write protocol
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ff := &faultFile{File: file, fs: f}
	if f.enospcArmed {
		ff.enospc, ff.budget = true, f.enospcAfter
		f.enospcArmed = false
	}
	if f.killArmed {
		ff.kill, ff.budget = true, f.killAfter
		f.killArmed = false
	}
	return ff, nil
}

func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	fail := f.failRename
	f.failRename = false
	killed := f.killed
	f.mu.Unlock()
	if fail {
		return &os.LinkError{Op: "rename", Old: oldname, New: newname, Err: syscall.EIO}
	}
	if killed {
		// The process is "dead": nothing after the kill point happens.
		return ErrKilled
	}
	return os.Rename(oldname, newname)
}

func (f *FS) Remove(name string) error {
	f.mu.Lock()
	killed := f.killed
	f.mu.Unlock()
	if killed {
		// Suppress post-kill cleanup so the partial temp file survives
		// like it would a real crash.
		return ErrKilled
	}
	return os.Remove(name)
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (f *FS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (f *FS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// faultFile meters writes against the armed fault budget.
type faultFile struct {
	*os.File
	fs      *FS
	budget  int
	written int
	enospc  bool
	kill    bool
}

func (f *faultFile) Write(p []byte) (int, error) {
	if !f.enospc && !f.kill {
		return f.File.Write(p)
	}
	room := f.budget - f.written
	if room < 0 {
		room = 0
	}
	if room >= len(p) {
		n, err := f.File.Write(p)
		f.written += n
		return n, err
	}
	// Short write up to the budget, then the fault.
	n, _ := f.File.Write(p[:room])
	f.written += n
	if f.kill {
		f.File.Sync()
		f.fs.mu.Lock()
		f.fs.killed = true
		f.fs.mu.Unlock()
		return n, ErrKilled
	}
	return n, syscall.ENOSPC
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	fail := f.fs.failSync
	f.fs.failSync = false
	f.fs.mu.Unlock()
	if fail {
		return syscall.EIO
	}
	return f.File.Sync()
}
