package repo

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// TestClaimExclusive: a held claim blocks other claimants (same or
// different Repo handle on the same directory) until released.
func TestClaimExclusive(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{})
	b := openT(t, dir, Options{})

	release, claimed, err := a.TryClaim("k")
	if err != nil || !claimed {
		t.Fatalf("first TryClaim = %v, %v", claimed, err)
	}
	if _, c2, err := b.TryClaim("k"); err != nil || c2 {
		t.Fatalf("contended TryClaim = %v, %v; want false, nil", c2, err)
	}
	if st := b.Stats(); st.ClaimWaits != 1 {
		t.Fatalf("claim waits = %d; want 1", st.ClaimWaits)
	}
	release()
	r2, c3, err := b.TryClaim("k")
	if err != nil || !c3 {
		t.Fatalf("TryClaim after release = %v, %v", c3, err)
	}
	r2()
}

// TestClaimReleaseIdempotent: double release must not panic or disturb
// a successor's lease.
func TestClaimReleaseIdempotent(t *testing.T) {
	r := openT(t, t.TempDir(), Options{})
	release, claimed, err := r.TryClaim("k")
	if err != nil || !claimed {
		t.Fatal("claim failed")
	}
	release()
	release()
}

// TestClaimStaleDeadPIDTakenOver: a lock left by a dead process (PID
// that does not exist) is taken over immediately, without waiting out
// the TTL.
func TestClaimStaleDeadPIDTakenOver(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Options{LeaseTTL: time.Hour}) // TTL can't save us here
	lock := r.Path("k") + ".lock"
	// PID 0 never names a real process; the lock reads as dead-held.
	if err := os.WriteFile(lock, []byte("pid 0\nstart 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	release, claimed, err := r.TryClaim("k")
	if err != nil || !claimed {
		t.Fatalf("TryClaim over dead-PID lock = %v, %v; want takeover", claimed, err)
	}
	release()
}

// TestClaimStaleHeartbeatTakenOver: a live-PID lock whose heartbeat
// mtime is older than the TTL is treated as wedged and taken over.
func TestClaimStaleHeartbeatTakenOver(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Options{LeaseTTL: 50 * time.Millisecond})
	lock := r.Path("k") + ".lock"
	// Our own (very alive) PID, but an ancient heartbeat.
	if err := os.WriteFile(lock, fmt.Appendf(nil, "pid %d\nstart 0\n", os.Getpid()), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	release, claimed, err := r.TryClaim("k")
	if err != nil || !claimed {
		t.Fatalf("TryClaim over stale-heartbeat lock = %v, %v; want takeover", claimed, err)
	}
	release()
}

// TestClaimHeartbeatKeepsLeaseFresh: a held lease heartbeats, so a
// short TTL does not let contenders steal it while training runs long.
func TestClaimHeartbeatKeepsLeaseFresh(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{LeaseTTL: 80 * time.Millisecond, Heartbeat: 10 * time.Millisecond})
	b := openT(t, dir, Options{LeaseTTL: 80 * time.Millisecond, Heartbeat: 10 * time.Millisecond})
	release, claimed, err := a.TryClaim("k")
	if err != nil || !claimed {
		t.Fatal("claim failed")
	}
	defer release()
	deadline := time.Now().Add(250 * time.Millisecond) // > 3 TTLs
	for time.Now().Before(deadline) {
		if _, stole, _ := b.TryClaim("k"); stole {
			t.Fatal("contender stole a heartbeating lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClaimSingleWinnerUnderContention: many goroutines (standing in
// for processes) race TryClaim on one key; exactly one may hold it at a
// time. Run under -race.
func TestClaimSingleWinnerUnderContention(t *testing.T) {
	dir := t.TempDir()
	var holders, maxHolders int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := Open(dir, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				release, claimed, err := r.TryClaim("k")
				if err != nil {
					t.Error(err)
					return
				}
				if !claimed {
					continue
				}
				mu.Lock()
				holders++
				if holders > maxHolders {
					maxHolders = holders
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				holders--
				mu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()
	if maxHolders != 1 {
		t.Fatalf("max concurrent claim holders = %d; want 1", maxHolders)
	}
}
