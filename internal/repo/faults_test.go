package repo_test

import (
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"

	"github.com/rlplanner/rlplanner/internal/repo"
	"github.com/rlplanner/rlplanner/internal/repo/repofault"
)

// The disk-fault matrix: every scripted filesystem fault must leave the
// repository in a state the next boot scan fully recovers from — Put
// reports the error, no torn entry is ever served, and intact entries
// keep working. Run under -race via `make repofaults`.

func openFault(t *testing.T, dir string, ffs *repofault.FS) *repo.Repo {
	t.Helper()
	r, err := repo.Open(dir, repo.Options{FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return r
}

// TestPutENOSPC: the disk fills mid-write (short write + ENOSPC). Put
// fails, nothing is served under the key, and the repository keeps
// working once space is back.
func TestPutENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := repofault.New()
	r := openFault(t, dir, ffs)
	if err := r.Put("pre", []byte("pre-existing")); err != nil {
		t.Fatal(err)
	}

	ffs.FailWithENOSPC(7)
	err := r.Put("k", []byte("a payload much longer than seven bytes"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under ENOSPC = %v; want ENOSPC", err)
	}
	if _, ok := r.Get("k"); ok {
		t.Fatal("short-written entry served")
	}
	if got, ok := r.Get("pre"); !ok || string(got) != "pre-existing" {
		t.Fatalf("intact entry lost under ENOSPC: %q %v", got, ok)
	}
	// Space returns: the same key writes and serves normally.
	if err := r.Put("k", []byte("second attempt")); err != nil {
		t.Fatalf("Put after ENOSPC cleared = %v", err)
	}
	if got, ok := r.Get("k"); !ok || string(got) != "second attempt" {
		t.Fatalf("Get after recovery = %q %v", got, ok)
	}
}

// TestPutKilledMidWrite is the crash-consistency core: the process
// "dies" with a partial temp file on disk (cleanup suppressed, rename
// never runs). A new process opening the directory sweeps the debris,
// serves every intact entry, and only the lost key needs retraining.
func TestPutKilledMidWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := repofault.New()
	r := openFault(t, dir, ffs)
	if err := r.Put("survivor", []byte("fully persisted")); err != nil {
		t.Fatal(err)
	}

	ffs.KillAfter(11)
	if err := r.Put("victim", []byte("this write never completes")); !errors.Is(err, repofault.ErrKilled) {
		t.Fatalf("Put under kill = %v; want ErrKilled", err)
	}
	// The "dead" process left a partial temp file behind.
	debris := 0
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			debris++
		}
	}
	if debris != 1 {
		t.Fatalf("temp debris after kill = %d; want 1", debris)
	}

	// "Restart": a fresh process on the real filesystem.
	r2, err := repo.Open(dir, repo.Options{})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	ents, _ = os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("boot scan left debris %s", e.Name())
		}
	}
	if _, ok := r2.Get("victim"); ok {
		t.Fatal("killed write produced a servable entry")
	}
	if got, ok := r2.Get("survivor"); !ok || string(got) != "fully persisted" {
		t.Fatalf("survivor lost across the crash: %q %v", got, ok)
	}
	// Only the lost key retrains: its slot accepts a fresh write.
	if err := r2.Put("victim", []byte("retrained")); err != nil {
		t.Fatal(err)
	}
	if got, ok := r2.Get("victim"); !ok || string(got) != "retrained" {
		t.Fatalf("retrained entry = %q %v", got, ok)
	}
}

// TestPutRenameFailure: a failed final rename reports the error and
// leaves no servable or stray state behind after the next boot.
func TestPutRenameFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := repofault.New()
	r := openFault(t, dir, ffs)
	ffs.FailNextRename()
	if err := r.Put("k", []byte("v")); err == nil {
		t.Fatal("Put with failed rename reported success")
	}
	if _, ok := r.Get("k"); ok {
		t.Fatal("entry served despite failed rename")
	}
	r2, err := repo.Open(dir, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Entries != 0 {
		t.Fatalf("entries after failed rename = %d; want 0", st.Entries)
	}
}

// TestPutSyncFailure: a failed fsync must fail the Put — reporting
// success for bytes that may not be durable is the bug this protocol
// exists to prevent.
func TestPutSyncFailure(t *testing.T) {
	ffs := repofault.New()
	r := openFault(t, t.TempDir(), ffs)
	ffs.FailNextSync()
	if err := r.Put("k", []byte("v")); err == nil {
		t.Fatal("Put with failed fsync reported success")
	}
	if st := r.Stats(); st.Writes != 0 {
		t.Fatalf("writes counter = %d after failed fsync; want 0", st.Writes)
	}
}
