package repo

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opts Options) *Repo {
	t.Helper()
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s) = %v", dir, err)
	}
	return r
}

// listSuffix returns the directory entries with the given suffix.
func listSuffix(t *testing.T, dir, suffix string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Options{})
	payload := []byte("the artifact bytes")
	if err := r.Put("key-a", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := r.Get("key-a")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := r.Get("key-b"); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 write", st)
	}
	// No temp or lock debris after a clean write.
	if tmp := listSuffix(t, dir, ""); len(tmp) != 1 {
		t.Fatalf("dir holds %v; want exactly the entry file", tmp)
	}
}

func TestPutReplacesAtomically(t *testing.T) {
	r := openT(t, t.TempDir(), Options{})
	if err := r.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get("k")
	if !ok || string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
}

// TestGetSurvivesCrossProcessWrite: a second repo on the same directory
// sees entries the first wrote after both opened — Get goes to disk,
// not to a process-local index.
func TestGetSurvivesCrossProcessWrite(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{})
	b := openT(t, dir, Options{})
	if err := a.Put("shared", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Get("shared"); !ok || string(got) != "payload" {
		t.Fatalf("second repo Get = %q, %v", got, ok)
	}
}

// TestBootScanQuarantinesCorruptEntry: a flipped payload byte must send
// the entry to *.bad at Open, leave intact entries served, and never
// error.
func TestBootScanQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Options{})
	if err := r.Put("good", []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("bad", []byte("bad payload")); err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte in place.
	path := r.Path("bad")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := openT(t, dir, Options{})
	st := r2.Stats()
	if st.Quarantined != 1 || st.Entries != 1 {
		t.Fatalf("boot scan stats = %+v; want 1 quarantined, 1 entry", st)
	}
	if bad := listSuffix(t, dir, ".bad"); len(bad) != 1 {
		t.Fatalf("quarantine files = %v; want one *.bad", bad)
	}
	if _, ok := r2.Get("bad"); ok {
		t.Fatal("corrupt entry still served after quarantine")
	}
	if got, ok := r2.Get("good"); !ok || string(got) != "good payload" {
		t.Fatalf("intact entry lost: %q, %v", got, ok)
	}
}

// TestBootScanQuarantinesTruncatedEntry covers the torn-write shape: a
// final file cut short anywhere (even inside the footer).
func TestBootScanQuarantinesTruncatedEntry(t *testing.T) {
	for _, keep := range []int{0, 10, footerSize - 1} {
		dir := t.TempDir()
		r := openT(t, dir, Options{})
		if err := r.Put("k", []byte("a payload long enough to truncate meaningfully")); err != nil {
			t.Fatal(err)
		}
		path := r.Path("k")
		if err := os.Truncate(path, int64(keep)); err != nil {
			t.Fatal(err)
		}
		r2 := openT(t, dir, Options{})
		if st := r2.Stats(); st.Quarantined != 1 {
			t.Fatalf("keep=%d: stats = %+v; want 1 quarantined", keep, st)
		}
		if _, ok := r2.Get("k"); ok {
			t.Fatalf("keep=%d: truncated entry served", keep)
		}
	}
}

// TestBootScanRemovesTempDebris: crash leftovers between create and
// rename are swept at Open.
func TestBootScanRemovesTempDebris(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.pol.tmp1234")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	openT(t, dir, Options{})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("temp debris survived the boot scan: %v", err)
	}
}

// TestGetQuarantinesCorruptionFoundAfterBoot: corruption that appears
// after the scan (bit rot, external truncation) is caught by the read
// path's checksum and quarantined there.
func TestGetQuarantinesCorruptionFoundAfterBoot(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Options{})
	if err := r.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(r.Path("k"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01 // corrupt the stored SHA-256
	if err := os.WriteFile(r.Path("k"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("k"); ok {
		t.Fatal("corrupt entry served")
	}
	if st := r.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v; want 1 quarantined", st)
	}
	// The quarantined entry is out of the address space: a fresh Put/Get
	// works again.
	if err := r.Put("k", []byte("payload2")); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get("k"); !ok || string(got) != "payload2" {
		t.Fatalf("Get after re-put = %q, %v", got, ok)
	}
}

func TestQuarantineByKey(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Options{})
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !r.Quarantine("k") {
		t.Fatal("Quarantine of present key = false")
	}
	if r.Quarantine("k") {
		t.Fatal("Quarantine of absent key = true")
	}
	if _, ok := r.Get("k"); ok {
		t.Fatal("quarantined key served")
	}
}

func TestKeysListsVerifiedEntries(t *testing.T) {
	r := openT(t, t.TempDir(), Options{})
	for _, k := range []string{"alpha", "beta"} {
		if err := r.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := r.Keys()
	if len(keys) != 2 {
		t.Fatalf("Keys = %v; want 2", keys)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if !seen["alpha"] || !seen["beta"] {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestDecodeEntryRejectsForeignBytes(t *testing.T) {
	for name, raw := range map[string][]byte{
		"empty":     nil,
		"garbage":   []byte("not an entry at all, just some text"),
		"bad magic": append(make([]byte, 100), []byte("WRONGMAG")...),
	} {
		if _, _, err := decodeEntry(raw); err == nil {
			t.Errorf("%s: decodeEntry accepted", name)
		}
	}
}

func TestOpenDefaultsLease(t *testing.T) {
	r := openT(t, t.TempDir(), Options{})
	if r.leaseTTL != DefaultLeaseTTL || r.heartbeat != DefaultLeaseTTL/4 {
		t.Fatalf("defaults = ttl %v, hb %v", r.leaseTTL, r.heartbeat)
	}
	r2 := openT(t, t.TempDir(), Options{LeaseTTL: time.Second})
	if r2.leaseTTL != time.Second || r2.heartbeat != 250*time.Millisecond {
		t.Fatalf("custom = ttl %v, hb %v", r2.leaseTTL, r2.heartbeat)
	}
}
