package repo

import (
	"io"
	"os"
	"time"
)

// FS is the filesystem surface the repository writes through. Production
// code uses the process filesystem (osFS); the disk-fault test matrix
// substitutes an implementation that injects short writes, ENOSPC,
// failed renames and kill-mid-write, so every crash-consistency claim in
// this package is exercised against its real write protocol instead of a
// mock of it.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname (POSIX rename).
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat stats a file.
	Stat(name string) (os.FileInfo, error)
	// Chtimes updates a file's times — the lease heartbeat.
	Chtimes(name string, atime, mtime time.Time) error
	// MkdirAll creates the repository root.
	MkdirAll(path string, perm os.FileMode) error
}

// File is the open-file surface the write protocol needs: sequential
// writes, whole-file reads, durability (Sync) and Close.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	Close() error
}

// osFS is the process filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldname, newname string) error        { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)  { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)       { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
