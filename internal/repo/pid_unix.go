//go:build unix

package repo

import "syscall"

// pidAlive reports whether a process with the given PID exists (signal
// 0 probes existence without delivering anything). EPERM means the
// process exists but belongs to someone else — alive for lease
// purposes.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}
