// Cross-process claim protocol: at most one trainer per key across
// every process sharing the repository directory.
//
// A claim is a lock file (<entry>.lock) created with O_CREATE|O_EXCL —
// the filesystem's atomic test-and-set — containing the holder's PID. A
// held lease heartbeats by refreshing the lock file's mtime; a lease
// whose heartbeat is older than the TTL, or whose PID is provably dead,
// is stale. Takeover is race-free without fcntl locks: the contender
// atomically renames the stale lock to a process-unique name (only one
// renamer can win) before deleting it and competing again on O_EXCL.
package repo

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// lease is a held training claim. Releasing stops the heartbeat and
// removes the lock file so waiting processes can proceed.
type lease struct {
	r    *Repo
	path string
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// TryClaim attempts to become the cross-process trainer for key.
//
//   - (release, true, nil): this process holds the claim; it must train,
//     Put the artifact and call release (also on failure).
//   - (nil, false, nil): another live process holds the claim; poll Get
//     until its artifact appears, then re-try the claim if it never does.
//   - (nil, false, err): the repository cannot arbitrate (disk fault);
//     callers degrade to local training rather than failing the request.
//
// A stale lock — heartbeat mtime older than the lease TTL, or a holder
// PID that no longer exists — is taken over in place.
func (r *Repo) TryClaim(key string) (release func(), claimed bool, err error) {
	path := filepath.Join(r.dir, entryName(key)+".lock")
	for attempt := 0; attempt < 3; attempt++ {
		f, err := r.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			// Won the claim: record the holder and start the heartbeat.
			fmt.Fprintf(f, "pid %d\nstart %d\n", os.Getpid(), time.Now().Unix())
			f.Sync()
			f.Close()
			l := &lease{r: r, path: path, stop: make(chan struct{}), done: make(chan struct{})}
			go l.beat()
			return l.release, true, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, false, fmt.Errorf("repo: claim %s: %w", path, err)
		}
		if !r.lockStale(path) {
			r.claimWaits.Add(1)
			return nil, false, nil
		}
		// Stale: rename-then-remove so exactly one contender retires this
		// lock incarnation, then loop back to compete on O_EXCL.
		tomb := fmt.Sprintf("%s.stale%d", path, os.Getpid())
		if err := r.fs.Rename(path, tomb); err == nil {
			r.fs.Remove(tomb)
		}
		// Losing the rename just means someone else retired it first; the
		// next O_EXCL attempt decides the new holder either way.
	}
	// Three stale takeover rounds without winning: treat as contended and
	// let the caller's poll loop come back.
	r.claimWaits.Add(1)
	return nil, false, nil
}

// lockStale reports whether the lock at path is abandoned: its holder
// PID is dead, or its heartbeat mtime is older than the lease TTL (a
// live-but-wedged holder whose heartbeat stopped counts as dead — the
// TTL is the contract). A lock that vanished concurrently is "stale"
// in the sense that the caller should re-compete immediately.
func (r *Repo) lockStale(path string) bool {
	info, err := r.fs.Stat(path)
	if err != nil {
		return errors.Is(err, fs.ErrNotExist)
	}
	if time.Since(info.ModTime()) > r.leaseTTL {
		return true
	}
	if pid, ok := r.lockPID(path); ok && !pidAlive(pid) {
		return true
	}
	return false
}

// lockPID reads the holder PID recorded in a lock file.
func (r *Repo) lockPID(path string) (int, bool) {
	f, err := r.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "pid "); ok {
			pid, err := strconv.Atoi(strings.TrimSpace(rest))
			return pid, err == nil
		}
	}
	return 0, false
}

// beat refreshes the lock file's mtime every heartbeat interval until
// released, keeping the lease visibly alive to other processes during a
// long training run.
func (l *lease) beat() {
	defer close(l.done)
	t := time.NewTicker(l.r.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			now := time.Now()
			l.r.fs.Chtimes(l.path, now, now)
		}
	}
}

// release ends the lease: the heartbeat stops and the lock file is
// removed, waking any process polling for the key. Idempotent.
func (l *lease) release() {
	l.once.Do(func() { close(l.stop) })
	<-l.done
	l.r.fs.Remove(l.path)
}
