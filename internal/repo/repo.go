// Package repo is the durable policy tier: a content-addressed,
// crash-safe artifact repository shared by every process pointing at one
// directory. It turns the serving daemon from a per-process cache into a
// fleet — a restart warm-boots from disk instead of retraining, and N
// replicas sharing one -policy-dir train each policy exactly once (the
// claim protocol in claim.go).
//
// Robustness is the design center:
//
//   - Writes are crash-safe: temp file + fsync + atomic rename + dir
//     fsync, so a crash leaves the old entry, the new entry or a stray
//     temp file — never a torn final file (format.go).
//   - Every entry carries a CRC32 + SHA-256 footer. Reads verify it; the
//     boot-time warm scan verifies every entry and quarantines corrupt
//     or truncated ones to *.bad instead of crashing or serving them.
//   - Repository faults never fail serving: a broken disk degrades to
//     the training path, counted, not crashed.
//
// Entries are addressed by an opaque key (the serving layer uses the
// policy-store key plus the catalog fingerprint); the file name is a
// SHA-256 prefix of the key, so any process computes the same address
// with no shared index.
package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// Default lease parameters for the cross-process claim protocol.
const (
	// DefaultLeaseTTL is how stale a claim's heartbeat may grow before
	// another process takes the lease over.
	DefaultLeaseTTL = 10 * time.Second
)

// Options configure a repository.
type Options struct {
	// LeaseTTL is the claim-staleness horizon (DefaultLeaseTTL when 0):
	// a lock file whose heartbeat mtime is older than this is considered
	// abandoned and taken over.
	LeaseTTL time.Duration
	// Heartbeat is how often a held lease refreshes its lock-file mtime
	// (LeaseTTL/4 when 0).
	Heartbeat time.Duration
	// FS substitutes the filesystem (tests inject disk faults); nil uses
	// the process filesystem.
	FS FS
}

// Stats is a point-in-time view of the repository counters.
type Stats struct {
	// Hits / Misses count Get outcomes (a corrupt entry counts as a miss
	// after it is quarantined).
	Hits, Misses uint64
	// Writes counts successfully persisted entries.
	Writes uint64
	// Quarantined counts entries moved aside as *.bad — at the boot scan
	// or when a read found corruption.
	Quarantined uint64
	// ClaimWaits counts TryClaim calls that found another process
	// holding the training claim.
	ClaimWaits uint64
	// Entries is the number of verified entries the boot scan found.
	Entries int
}

// Repo is a durable artifact repository rooted at one directory. All
// methods are safe for concurrent use within a process; cross-process
// coordination goes through the claim protocol and atomic renames.
type Repo struct {
	dir string
	fs  FS

	leaseTTL  time.Duration
	heartbeat time.Duration

	hits, misses, writes, quarantined, claimWaits atomic.Uint64
	scanned                                       atomic.Int64
}

// Open roots a repository at dir (created if absent) and runs the
// boot-time warm scan: every entry file is checksum-verified, corrupt or
// truncated ones are quarantined to *.bad, and crash-leftover temp files
// are removed. The scan never fails open — a directory full of garbage
// yields an empty, working repository and a quarantine count.
func Open(dir string, opts Options) (*Repo, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = osFS{}
	}
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hb := opts.Heartbeat
	if hb <= 0 {
		hb = ttl / 4
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repo: create %s: %w", dir, err)
	}
	r := &Repo{dir: dir, fs: fsys, leaseTTL: ttl, heartbeat: hb}
	if err := r.scan(); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the repository root.
func (r *Repo) Dir() string { return r.dir }

// entryName is the content address of key: a SHA-256 prefix, so every
// process resolves the same key to the same file with no coordination.
func entryName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:12]) + ".pol"
}

// Path returns the entry file a key resolves to (whether or not it
// exists) — error-context material for callers.
func (r *Repo) Path(key string) string {
	return filepath.Join(r.dir, entryName(key))
}

// scan is the boot-time warm pass over the directory. It must never
// crash the process: unreadable and corrupt entries are quarantined and
// counted, stray temp files removed, lock and quarantine files left
// alone.
func (r *Repo) scan() error {
	ents, err := r.fs.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("repo: scan %s: %w", r.dir, err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.Contains(name, ".tmp"):
			// A crash between create and rename leaves a temp file; the
			// rename never happened, so nothing references it.
			r.fs.Remove(filepath.Join(r.dir, name))
		case strings.HasSuffix(name, ".pol"):
			if _, _, err := r.readEntry(name); err != nil {
				r.quarantineFile(name)
				continue
			}
			r.scanned.Add(1)
		}
	}
	return nil
}

// Get loads and verifies the entry for key. A missing entry is a plain
// miss; a corrupt one is quarantined and reported as a miss — the
// caller retrains and the bad bytes never reach serving.
func (r *Repo) Get(key string) ([]byte, bool) {
	name := entryName(key)
	storedKey, payload, err := r.readEntry(name)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			r.quarantineFile(name)
		}
		r.misses.Add(1)
		return nil, false
	}
	if storedKey != key {
		// A content-address collision or a foreign file copied into place:
		// either way this entry is not the requested policy.
		r.quarantineFile(name)
		r.misses.Add(1)
		return nil, false
	}
	r.hits.Add(1)
	return payload, true
}

// Put durably stores payload under key (write-through from a completed
// training run), replacing any previous entry atomically.
func (r *Repo) Put(key string, payload []byte) error {
	if err := r.writeEntry(entryName(key), key, payload); err != nil {
		return err
	}
	r.writes.Add(1)
	return nil
}

// Quarantine moves key's entry aside as *.bad so it can never be served
// or reloaded again; operators can inspect or delete the file. Reports
// whether an entry was present.
func (r *Repo) Quarantine(key string) bool {
	return r.quarantineFile(entryName(key))
}

func (r *Repo) quarantineFile(name string) bool {
	src := filepath.Join(r.dir, name)
	if err := r.fs.Rename(src, src+".bad"); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false
		}
		// A rename that fails for other reasons must still get the bad
		// entry out of the address space: fall back to removal.
		if err := r.fs.Remove(src); err != nil {
			return false
		}
	}
	r.quarantined.Add(1)
	r.syncDir()
	return true
}

// Keys lists the keys of every verified entry currently in the
// repository (the preload/warm surface; order is the directory's).
func (r *Repo) Keys() []string {
	ents, err := r.fs.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pol") {
			continue
		}
		if key, _, err := r.readEntry(e.Name()); err == nil {
			out = append(out, key)
		}
	}
	return out
}

// Stats returns the cumulative repository counters.
func (r *Repo) Stats() Stats {
	return Stats{
		Hits:        r.hits.Load(),
		Misses:      r.misses.Load(),
		Writes:      r.writes.Load(),
		Quarantined: r.quarantined.Load(),
		ClaimWaits:  r.claimWaits.Load(),
		Entries:     int(r.scanned.Load()),
	}
}
