// Entry encoding and the crash-safe write protocol. An entry file is
//
//	[payload bytes][key bytes][64-byte footer]
//
// with the footer carrying the format magic, the lengths and a CRC32 +
// SHA-256 of the payload. The footer sits at the *end* of the file, so a
// truncated or torn write — the only partial state a crash can leave
// once writes go through temp-file + fsync + atomic rename — is
// detectable from the last 64 bytes alone: either the footer is missing,
// or its lengths disagree with the file size, or a checksum fails.
package repo

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

const (
	// footerMagic identifies a complete repository entry. It is the last
	// field written, so its presence implies the writer reached the end.
	footerMagic = "RLPREPO1"
	// formatVersion is the entry format version; readers refuse newer.
	formatVersion = 1
	// footerSize is the fixed on-disk footer length:
	// magic(8) + version(4) + keyLen(4) + payloadLen(8) + crc32(4) +
	// pad(4) + sha256(32).
	footerSize = 64
)

// footer is the decoded trailer of an entry file.
type footer struct {
	version    uint32
	keyLen     uint32
	payloadLen uint64
	crc        uint32
	sum        [32]byte
}

// appendFooter encodes f after the payload+key bytes.
func appendFooter(buf []byte, f footer) []byte {
	buf = append(buf, footerMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, f.version)
	buf = binary.LittleEndian.AppendUint32(buf, f.keyLen)
	buf = binary.LittleEndian.AppendUint64(buf, f.payloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, f.crc)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // pad
	buf = append(buf, f.sum[:]...)
	return buf
}

// parseFooter decodes the last footerSize bytes of an entry.
func parseFooter(b []byte) (footer, error) {
	var f footer
	if len(b) != footerSize {
		return f, fmt.Errorf("repo: footer is %d bytes, want %d", len(b), footerSize)
	}
	if string(b[:8]) != footerMagic {
		return f, fmt.Errorf("repo: bad footer magic %q", b[:8])
	}
	f.version = binary.LittleEndian.Uint32(b[8:12])
	if f.version > formatVersion {
		return f, fmt.Errorf("repo: entry format v%d is newer than supported v%d", f.version, formatVersion)
	}
	f.keyLen = binary.LittleEndian.Uint32(b[12:16])
	f.payloadLen = binary.LittleEndian.Uint64(b[16:24])
	f.crc = binary.LittleEndian.Uint32(b[24:28])
	copy(f.sum[:], b[32:64])
	return f, nil
}

// encodeEntry renders a complete entry file for key+payload.
func encodeEntry(key string, payload []byte) []byte {
	f := footer{
		version:    formatVersion,
		keyLen:     uint32(len(key)),
		payloadLen: uint64(len(payload)),
		crc:        crc32.ChecksumIEEE(payload),
		sum:        sha256.Sum256(payload),
	}
	buf := make([]byte, 0, len(payload)+len(key)+footerSize)
	buf = append(buf, payload...)
	buf = append(buf, key...)
	return appendFooter(buf, f)
}

// decodeEntry verifies a raw entry file and returns its key and payload.
// Any inconsistency — missing/foreign footer, length mismatch against
// the actual file size, checksum failure — is an error; callers
// quarantine on it.
func decodeEntry(raw []byte) (key string, payload []byte, err error) {
	if len(raw) < footerSize {
		return "", nil, fmt.Errorf("repo: entry truncated to %d bytes (shorter than the %d-byte footer)", len(raw), footerSize)
	}
	f, err := parseFooter(raw[len(raw)-footerSize:])
	if err != nil {
		return "", nil, err
	}
	want := int(f.payloadLen) + int(f.keyLen) + footerSize
	if f.payloadLen > uint64(len(raw)) || want != len(raw) {
		return "", nil, fmt.Errorf("repo: entry is %d bytes but footer declares %d payload + %d key", len(raw), f.payloadLen, f.keyLen)
	}
	payload = raw[:f.payloadLen]
	key = string(raw[f.payloadLen : f.payloadLen+uint64(f.keyLen)])
	if got := crc32.ChecksumIEEE(payload); got != f.crc {
		return "", nil, fmt.Errorf("repo: payload CRC32 mismatch (stored %08x, computed %08x)", f.crc, got)
	}
	if got := sha256.Sum256(payload); !bytes.Equal(got[:], f.sum[:]) {
		return "", nil, fmt.Errorf("repo: payload SHA-256 mismatch")
	}
	return key, payload, nil
}

// writeEntry runs the crash-safe write protocol: encode into a
// process-unique temp file in the same directory, fsync it, atomically
// rename it over the final name, then fsync the directory so the rename
// itself is durable. A crash at any point leaves either the old entry,
// the new entry, or a stray temp file the next boot scan removes —
// never a partial final file.
func (r *Repo) writeEntry(name, key string, payload []byte) error {
	final := filepath.Join(r.dir, name)
	tmp := fmt.Sprintf("%s.tmp%d", final, os.Getpid())
	f, err := r.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repo: create %s: %w", tmp, err)
	}
	raw := encodeEntry(key, payload)
	if _, err := f.Write(raw); err != nil {
		f.Close()
		r.fs.Remove(tmp)
		return fmt.Errorf("repo: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		r.fs.Remove(tmp)
		return fmt.Errorf("repo: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		r.fs.Remove(tmp)
		return fmt.Errorf("repo: close %s: %w", tmp, err)
	}
	if err := r.fs.Rename(tmp, final); err != nil {
		r.fs.Remove(tmp)
		return fmt.Errorf("repo: rename %s: %w", final, err)
	}
	r.syncDir()
	return nil
}

// readEntry reads and verifies the named entry file.
func (r *Repo) readEntry(name string) (key string, payload []byte, err error) {
	path := filepath.Join(r.dir, name)
	f, err := r.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return "", nil, fmt.Errorf("repo: read %s: %w", path, err)
	}
	key, payload, err = decodeEntry(raw)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	return key, payload, nil
}

// syncDir fsyncs the repository directory so a just-completed rename
// survives power loss. Best-effort: some filesystems refuse directory
// fsync, and the rename itself already ordered correctly on the ones
// that matter.
func (r *Repo) syncDir() {
	d, err := r.fs.OpenFile(r.dir, os.O_RDONLY, 0)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
