//go:build !unix

package repo

// pidAlive conservatively reports true where PID liveness cannot be
// probed; stale leases are then detected by heartbeat age alone.
func pidAlive(int) bool { return true }
