package bitset

import "encoding/json"

// unmarshalIntSlice decodes a JSON int array. It exists so the core Set
// implementation stays free of direct encoding/json calls in hot paths.
func unmarshalIntSlice(data []byte, out *[]int) error {
	return json.Unmarshal(data, out)
}
