package bitset

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Fatalf("Len() = %d, want %d", s.Len(), n)
		}
		if s.Count() != 0 {
			t.Fatalf("Count() = %d, want 0", s.Count())
		}
		if !s.Empty() {
			t.Fatalf("Empty() = false for fresh set of len %d", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetClearTest(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Set(10) },
		func() { s.Set(-1) },
		func() { s.Test(10) },
		func() { s.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(8, 1, 2, 6)
	want := "[0,1,1,0,0,0,1,0]"
	if got := s.String(); got != want {
		t.Fatalf("String() = %s, want %s", got, want)
	}
	if s.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", s.Count())
	}
}

func TestFromBools(t *testing.T) {
	s := FromBools([]bool{true, false, true})
	if !s.Test(0) || s.Test(1) || !s.Test(2) {
		t.Fatalf("FromBools wrong bits: %s", s)
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a := FromIndices(100, 0, 10, 64, 99)
	b := FromIndices(100, 10, 11, 64)

	u := a.Union(b)
	if got := u.Indices(); len(got) != 5 {
		t.Fatalf("union indices = %v", got)
	}
	i := a.Intersect(b)
	if got := i.Indices(); len(got) != 2 || got[0] != 10 || got[1] != 64 {
		t.Fatalf("intersect indices = %v", got)
	}
	d := a.Difference(b)
	if got := d.Indices(); len(got) != 2 || got[0] != 0 || got[1] != 99 {
		t.Fatalf("difference indices = %v", got)
	}
	if a.IntersectCount(b) != 2 {
		t.Fatalf("IntersectCount = %d, want 2", a.IntersectCount(b))
	}
	if a.DifferenceCount(b) != 2 {
		t.Fatalf("DifferenceCount = %d, want 2", a.DifferenceCount(b))
	}
}

func TestUnionInPlace(t *testing.T) {
	a := FromIndices(70, 1)
	b := FromIndices(70, 65)
	a.UnionInPlace(b)
	if !a.Test(1) || !a.Test(65) || a.Count() != 2 {
		t.Fatalf("UnionInPlace wrong result: %v", a.Indices())
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched lengths did not panic")
		}
	}()
	a.Union(b)
}

func TestNewCoverage(t *testing.T) {
	// after covers {1,2,5}, before covers {1}, ideal is {2,3,5}.
	// New topics = {2,5}; among ideal = {2,5} → 2.
	after := FromIndices(8, 1, 2, 5)
	before := FromIndices(8, 1)
	ideal := FromIndices(8, 2, 3, 5)
	if got := after.NewCoverage(before, ideal); got != 2 {
		t.Fatalf("NewCoverage = %d, want 2", got)
	}
	// Nothing new → 0.
	if got := before.NewCoverage(before, ideal); got != 0 {
		t.Fatalf("NewCoverage(no change) = %d, want 0", got)
	}
}

func TestPaperExample3(t *testing.T) {
	// Example after Eq. 3: T_ideal = topics {1,2,6,9} of 13 (Classification,
	// Clustering, Neural Network, Linear System). Adding m4 (Linear Algebra,
	// topics {8,9}) to a state that covered m2's topics {1,2} gains ideal
	// topic 9 → r1 fires with ε = 1. Adding m5 (topics {0,10,11}) gains no
	// ideal topic → r1 = 0.
	ideal := FromIndices(13, 1, 2, 6, 9)
	cur := FromIndices(13, 1, 2) // after m2 (Data Mining)

	afterM4 := cur.Union(FromIndices(13, 8, 9))
	if got := afterM4.NewCoverage(cur, ideal); got != 1 {
		t.Fatalf("m4 coverage gain = %d, want 1", got)
	}
	afterM5 := cur.Union(FromIndices(13, 0, 10, 11))
	if got := afterM5.NewCoverage(cur, ideal); got != 0 {
		t.Fatalf("m5 coverage gain = %d, want 0", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := FromIndices(10, 3)
	b := a.Clone()
	b.Set(4)
	if a.Test(4) {
		t.Fatal("mutating clone affected original")
	}
	if !b.Test(3) {
		t.Fatal("clone lost original bit")
	}
}

func TestEqualAndSubset(t *testing.T) {
	a := FromIndices(66, 1, 65)
	b := FromIndices(66, 1, 65)
	c := FromIndices(66, 1)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	if a.Equal(c) {
		t.Fatal("unequal sets reported equal")
	}
	if a.Equal(New(65)) {
		t.Fatal("different lengths reported equal")
	}
	if !c.SubsetOf(a) {
		t.Fatal("subset not detected")
	}
	if a.SubsetOf(c) {
		t.Fatal("superset reported as subset")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := FromIndices(13, 0, 5, 12)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(data) != "[1,0,0,0,0,1,0,0,0,0,0,0,1]" {
		t.Fatalf("marshal = %s", data)
	}
	var b Set
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !a.Equal(b) {
		t.Fatalf("round trip mismatch: %s vs %s", a, b)
	}
}

func TestJSONRejectsBadElement(t *testing.T) {
	var s Set
	if err := json.Unmarshal([]byte("[0,2]"), &s); err == nil {
		t.Fatal("expected error for element 2")
	}
}

// randomSet builds a random set of length n for property tests.
func randomSet(r *rand.Rand, n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Set(i)
		}
	}
	return s
}

func TestPropertyUnionCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	// |a ∪ b| = |a| + |b| - |a ∩ b|
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		n := 1 + int(seed%150+150)%150 + 1
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Union(b).Count() == a.Count()+b.Count()-a.IntersectCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDifferenceDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		n := 1 + int(uint(seed)%128)
		a, b := randomSet(r, n), randomSet(r, n)
		d := a.Difference(b)
		return d.IntersectCount(b) == 0 && d.SubsetOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNewCoverageMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		n := 1 + int(uint(seed)%100)
		after, before, ideal := randomSet(r, n), randomSet(r, n), randomSet(r, n)
		want := ideal.Intersect(after.Difference(before)).Count()
		return after.NewCoverage(before, ideal) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIndicesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		n := 1 + int(uint(seed)%256)
		a := randomSet(r, n)
		b := FromIndices(n, a.Indices()...)
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectCount(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x, y := randomSet(r, 1024), randomSet(r, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectCount(y)
	}
}

func BenchmarkNewCoverage(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x, y, z := randomSet(r, 1024), randomSet(r, 1024), randomSet(r, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.NewCoverage(y, z)
	}
}
