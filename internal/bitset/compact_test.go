package bitset

import (
	"math/rand"
	"testing"
)

// randomDensitySet draws a dense set of length n whose density varies
// from near-empty to near-full, so the property sweep covers both sides
// of the Compact threshold.
func randomDensitySet(rng *rand.Rand, n int) Set {
	s := New(n)
	if n == 0 {
		return s
	}
	density := rng.Float64() * rng.Float64() // biased toward sparse
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Set(i)
		}
	}
	return s
}

// forced returns the dense and array representations of s regardless of
// density, so every (rep, rep) pairing is exercised even when Compact
// would decline the conversion.
func forced(s Set) [2]Set {
	dense := s.Dense()
	c := s.Count()
	idx := make([]int32, 0, c)
	for _, i := range dense.Indices() {
		idx = append(idx, int32(i))
	}
	return [2]Set{dense, {n: s.n, idx: idx}}
}

// TestCompactEquivalence pins every read operation to identical results
// across all four representation pairings of random operand sets — the
// compressed form must be observationally indistinguishable from the
// dense one.
func TestCompactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		a, b, ideal := randomDensitySet(rng, n), randomDensitySet(rng, n), randomDensitySet(rng, n)
		ar, br, ir := forced(a), forced(b), forced(ideal)

		wantUnion := a.Union(b)
		wantInter := a.Intersect(b)
		wantDiff := a.Difference(b)
		wantIC := a.IntersectCount(b)
		wantDC := a.DifferenceCount(b)
		wantSub := a.SubsetOf(b)
		wantStr := a.String()

		for ai, av := range ar {
			if got := av.Count(); got != a.Count() {
				t.Fatalf("trial %d rep %d: Count = %d, want %d", trial, ai, got, a.Count())
			}
			if got := av.Empty(); got != a.Empty() {
				t.Fatalf("trial %d rep %d: Empty = %v", trial, ai, got)
			}
			if got := av.String(); got != wantStr {
				t.Fatalf("trial %d rep %d: String = %s, want %s", trial, ai, got, wantStr)
			}
			if got, want := av.Indices(), a.Indices(); len(got) != len(want) {
				t.Fatalf("trial %d rep %d: Indices len %d, want %d", trial, ai, len(got), len(want))
			}
			for i := 0; i < n; i++ {
				if av.Test(i) != a.Test(i) {
					t.Fatalf("trial %d rep %d: Test(%d) mismatch", trial, ai, i)
				}
			}
			clone := av.Clone()
			if !clone.Equal(a) {
				t.Fatalf("trial %d rep %d: Clone not Equal to original", trial, ai)
			}
			for bi, bv := range br {
				tag := func(op string) string { return op }
				if got := av.Union(bv); !got.Equal(wantUnion) {
					t.Fatalf("trial %d reps (%d,%d): %s mismatch", trial, ai, bi, tag("Union"))
				}
				if got := av.Intersect(bv); !got.Equal(wantInter) {
					t.Fatalf("trial %d reps (%d,%d): %s mismatch", trial, ai, bi, tag("Intersect"))
				}
				if got := av.Difference(bv); !got.Equal(wantDiff) {
					t.Fatalf("trial %d reps (%d,%d): %s mismatch", trial, ai, bi, tag("Difference"))
				}
				if got := av.IntersectCount(bv); got != wantIC {
					t.Fatalf("trial %d reps (%d,%d): IntersectCount = %d, want %d", trial, ai, bi, got, wantIC)
				}
				if got := av.DifferenceCount(bv); got != wantDC {
					t.Fatalf("trial %d reps (%d,%d): DifferenceCount = %d, want %d", trial, ai, bi, got, wantDC)
				}
				if got := av.SubsetOf(bv); got != wantSub {
					t.Fatalf("trial %d reps (%d,%d): SubsetOf = %v, want %v", trial, ai, bi, got, wantSub)
				}
				if got := av.Equal(bv); got != a.Equal(b) {
					t.Fatalf("trial %d reps (%d,%d): Equal = %v, want %v", trial, ai, bi, got, a.Equal(b))
				}
				// UnionInPlace requires a dense receiver; both argument reps
				// must agree with the allocating union.
				dst := av.Dense().Clone()
				dst.UnionInPlace(bv)
				if !dst.Equal(wantUnion) {
					t.Fatalf("trial %d reps (%d,%d): UnionInPlace mismatch", trial, ai, bi)
				}
				for ii, iv := range ir {
					want := a.NewCoverage(b, ideal)
					if got := av.NewCoverage(bv, iv); got != want {
						t.Fatalf("trial %d reps (%d,%d,%d): NewCoverage = %d, want %d",
							trial, ai, bi, ii, got, want)
					}
				}
			}
		}
	}
}

// TestCompactSelection pins the density rule: Compact converts only when
// the array form is smaller, and the result is immutable.
func TestCompactSelection(t *testing.T) {
	sparse := FromIndices(1024, 3, 77, 500)
	c := sparse.Compact()
	if !c.Compacted() {
		t.Fatalf("sparse 3/1024 set did not compact")
	}
	if c.SizeBytes() >= sparse.SizeBytes() {
		t.Fatalf("compact form (%d bytes) not smaller than dense (%d bytes)",
			c.SizeBytes(), sparse.SizeBytes())
	}
	if !c.Equal(sparse) || !sparse.Equal(c) {
		t.Fatalf("compacted set not Equal to its dense source")
	}
	if cc := c.Compact(); !cc.Compacted() || !cc.Equal(c) {
		t.Fatalf("Compact of a compacted set changed it")
	}

	dense := New(64)
	for i := 0; i < 48; i++ {
		dense.Set(i)
	}
	if dense.Compact().Compacted() {
		t.Fatalf("48/64 set compacted; array form would be larger")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Set on a compacted set did not panic")
		}
	}()
	c.Set(9)
}

// TestCompactRoundTrip pins Dense∘Compact as the identity on bits.
func TestCompactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		s := randomDensitySet(rng, rng.Intn(300))
		r := forced(s)[1].Dense()
		if !r.Equal(s) {
			t.Fatalf("trial %d: Dense(Compact(s)) != s", trial)
		}
	}
}

// FuzzCompactOps cross-checks the compressed form against the dense one
// on fuzz-chosen bit patterns.
func FuzzCompactOps(f *testing.F) {
	f.Add([]byte{0x01, 0x80}, []byte{0xff, 0x00})
	f.Add([]byte{}, []byte{0x10})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		n := 8 * len(ab)
		if 8*len(bb) > n {
			n = 8 * len(bb)
		}
		if n == 0 || n > 4096 {
			return
		}
		fromBytes := func(p []byte) Set {
			s := New(n)
			for i, by := range p {
				for b := 0; b < 8; b++ {
					if by&(1<<b) != 0 {
						s.Set(8*i + b)
					}
				}
			}
			return s
		}
		a, b := fromBytes(ab), fromBytes(bb)
		ca, cb := forced(a)[1], forced(b)[1]
		if got, want := ca.IntersectCount(cb), a.IntersectCount(b); got != want {
			t.Fatalf("IntersectCount = %d, want %d", got, want)
		}
		if got, want := ca.DifferenceCount(cb), a.DifferenceCount(b); got != want {
			t.Fatalf("DifferenceCount = %d, want %d", got, want)
		}
		if !ca.Union(cb).Equal(a.Union(b)) {
			t.Fatalf("Union mismatch")
		}
		if !ca.Intersect(cb).Equal(a.Intersect(b)) {
			t.Fatalf("Intersect mismatch")
		}
		if !ca.Difference(cb).Equal(a.Difference(b)) {
			t.Fatalf("Difference mismatch")
		}
	})
}
