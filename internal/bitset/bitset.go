// Package bitset provides a compact, fixed-width bit vector used to
// represent topic/theme coverage vectors (T^m in the paper). Vectors are
// value-comparable via Equal and cheap to copy; all set operations that
// return a new Set allocate exactly once.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-length bit vector. The zero value is an empty, zero-length
// set; use New to create a set of a given length.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set of n bits, all zero. It panics if n is negative.
func New(n int) Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a Set of n bits with the given indices set.
// Indices out of [0, n) cause a panic.
func FromIndices(n int, idx ...int) Set {
	s := New(n)
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

// FromBools returns a Set whose i-th bit is b[i]. Its length is len(b).
func FromBools(b []bool) Set {
	s := New(len(b))
	for i, v := range b {
		if v {
			s.Set(i)
		}
	}
	return s
}

// Len returns the number of bits in the set.
func (s Set) Len() int { return s.n }

// check panics when i is out of range.
func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set turns bit i on.
func (s Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear turns bit i off.
func (s Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is on.
func (s Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits (population count).
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ClearAll turns every bit off in place, reusing the backing words.
func (s Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// sameLen panics unless the two sets have equal length.
func (s Set) sameLen(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", s.n, t.n))
	}
}

// Union returns s ∪ t as a new Set.
func (s Set) Union(t Set) Set {
	s.sameLen(t)
	u := Set{n: s.n, words: make([]uint64, len(s.words))}
	for i := range s.words {
		u.words[i] = s.words[i] | t.words[i]
	}
	return u
}

// UnionInPlace sets s = s ∪ t without allocating.
func (s Set) UnionInPlace(t Set) {
	s.sameLen(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Intersect returns s ∩ t as a new Set.
func (s Set) Intersect(t Set) Set {
	s.sameLen(t)
	u := Set{n: s.n, words: make([]uint64, len(s.words))}
	for i := range s.words {
		u.words[i] = s.words[i] & t.words[i]
	}
	return u
}

// Difference returns s \ t as a new Set.
func (s Set) Difference(t Set) Set {
	s.sameLen(t)
	u := Set{n: s.n, words: make([]uint64, len(s.words))}
	for i := range s.words {
		u.words[i] = s.words[i] &^ t.words[i]
	}
	return u
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	s.sameLen(t)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// DifferenceCount returns |s \ t| without allocating.
func (s Set) DifferenceCount(t Set) int {
	s.sameLen(t)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] &^ t.words[i])
	}
	return c
}

// NewCoverage returns |ideal ∩ (s \ t)|: the number of ideal topics that s
// covers beyond what t already covers. This is the quantity gated by ε in
// Equation 3 of the paper, with t playing the role of T_current before the
// action and s the coverage after it.
func (s Set) NewCoverage(t, ideal Set) int {
	s.sameLen(t)
	s.sameLen(ideal)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64((s.words[i] &^ t.words[i]) & ideal.words[i])
	}
	return c
}

// Equal reports whether s and t have the same length and the same bits.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit of s is also set in t.
func (s Set) SubsetOf(t Set) bool {
	s.sameLen(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Indices returns the positions of the set bits in increasing order.
func (s Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the set as a 0/1 vector, e.g. "[0,1,1,0]", matching the
// paper's notation for topic vectors.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < s.n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if s.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte(']')
	return b.String()
}

// MarshalJSON encodes the set as a JSON array of 0/1 integers.
func (s Set) MarshalJSON() ([]byte, error) {
	out := make([]byte, 0, 2*s.n+2)
	out = append(out, '[')
	for i := 0; i < s.n; i++ {
		if i > 0 {
			out = append(out, ',')
		}
		if s.Test(i) {
			out = append(out, '1')
		} else {
			out = append(out, '0')
		}
	}
	return append(out, ']'), nil
}

// UnmarshalJSON decodes a JSON array of 0/1 integers.
func (s *Set) UnmarshalJSON(data []byte) error {
	var raw []int
	if err := unmarshalIntSlice(data, &raw); err != nil {
		return err
	}
	*s = New(len(raw))
	for i, v := range raw {
		switch v {
		case 0:
		case 1:
			s.Set(i)
		default:
			return fmt.Errorf("bitset: element %d is %d, want 0 or 1", i, v)
		}
	}
	return nil
}
