// Package bitset provides a compact, fixed-width bit vector used to
// represent topic/theme coverage vectors (T^m in the paper). Vectors are
// value-comparable via Equal and cheap to copy; all set operations that
// return a new Set allocate exactly once.
//
// A Set has two interchangeable representations. The dense form backs
// every mutable vector: one uint64 word per 64 bits, word-parallel
// popcounts. Compact converts a sparse dense vector into the array form —
// a sorted list of set indices, the "array container" of roaring-style
// compressed bitmaps — which stores k set bits out of n in 4k bytes
// instead of n/8. Per-item topic vectors over institution-scale
// vocabularies are exactly this shape (a handful of topics out of
// 100k+), so the environment's per-item facts compact them. The array
// form is immutable: every read operation accepts either form on either
// side, mutators panic. Both forms compare equal via Equal when they
// hold the same bits.
package bitset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const wordBits = 64

// Set is a fixed-length bit vector. The zero value is an empty, zero-length
// set; use New to create a set of a given length.
//
// Exactly one of words/idx backs a non-zero-length Set: words for the
// dense form, idx (sorted, strictly increasing) for the immutable array
// form Compact produces.
type Set struct {
	n     int
	words []uint64
	idx   []int32
}

// New returns a Set of n bits, all zero. It panics if n is negative.
func New(n int) Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a Set of n bits with the given indices set.
// Indices out of [0, n) cause a panic.
func FromIndices(n int, idx ...int) Set {
	s := New(n)
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

// FromBools returns a Set whose i-th bit is b[i]. Its length is len(b).
func FromBools(b []bool) Set {
	s := New(len(b))
	for i, v := range b {
		if v {
			s.Set(i)
		}
	}
	return s
}

// Len returns the number of bits in the set.
func (s Set) Len() int { return s.n }

// compact reports whether s is in the immutable array form.
func (s Set) compact() bool { return s.idx != nil }

// Compacted reports whether s is in the immutable array form (for tests
// and memory accounting; semantics never depend on the representation).
func (s Set) Compacted() bool { return s.compact() }

// compactMinWords is the dense size below which Compact refuses to
// convert: a vector of a few words is already as small as its header,
// and the word-parallel counting ops on it beat the array form's
// per-index loops in the episode hot path. Only institution-scale
// vocabularies (> 256 topics) are worth trading read shape for bytes.
const compactMinWords = 4

// Compact returns a set with the same bits in the representation that
// stores them smaller: the sorted-index array form when the vector is
// sparse (population × 32 < length, where the 4-byte indices undercut
// the n/8-byte word array) and the dense form is at least compactMinWords
// words, s itself otherwise. The array form shares no storage with s and
// is immutable — mutators panic on it — so compacted vectors are safe to
// share across environments and episodes.
func (s Set) Compact() Set {
	if s.compact() {
		return s
	}
	if len(s.words) <= compactMinWords {
		return s
	}
	c := s.Count()
	if c*wordBits/2 >= s.n {
		return s
	}
	idx := make([]int32, 0, c)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			idx = append(idx, int32(wi*wordBits+b))
			w &= w - 1
		}
	}
	return Set{n: s.n, idx: idx}
}

// Dense returns a set with the same bits in the mutable dense form: s
// itself when already dense, otherwise a fresh word-backed copy.
func (s Set) Dense() Set {
	if !s.compact() {
		return s
	}
	d := New(s.n)
	for _, i := range s.idx {
		d.words[i/wordBits] |= 1 << uint(i%wordBits)
	}
	return d
}

// check panics when i is out of range.
func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// mutable panics when s is in the immutable array form.
func (s Set) mutable() {
	if s.compact() {
		panic("bitset: mutating a compacted set (use Dense for a mutable copy)")
	}
}

// Set turns bit i on. It panics on a compacted set.
func (s Set) Set(i int) {
	s.check(i)
	s.mutable()
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear turns bit i off. It panics on a compacted set.
func (s Set) Clear(i int) {
	s.check(i)
	s.mutable()
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is on.
func (s Set) Test(i int) bool {
	s.check(i)
	return s.test(i)
}

// test is Test without the bounds check, for scans over validated ranges.
func (s Set) test(i int) bool {
	if s.compact() {
		j := sort.Search(len(s.idx), func(k int) bool { return s.idx[k] >= int32(i) })
		return j < len(s.idx) && s.idx[j] == int32(i)
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits (population count).
func (s Set) Count() int {
	if s.compact() {
		return len(s.idx)
	}
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	if s.compact() {
		return len(s.idx) == 0
	}
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ClearAll turns every bit off in place, reusing the backing words. It
// panics on a compacted set.
func (s Set) ClearAll() {
	s.mutable()
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s, preserving its representation.
func (s Set) Clone() Set {
	if s.compact() {
		return Set{n: s.n, idx: append([]int32(nil), s.idx...)}
	}
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// sameLen panics unless the two sets have equal length.
func (s Set) sameLen(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", s.n, t.n))
	}
}

// Union returns s ∪ t as a new Set. The result is dense unless both
// operands are compact, in which case it is the merged array form.
func (s Set) Union(t Set) Set {
	s.sameLen(t)
	if s.compact() && t.compact() {
		idx := make([]int32, 0, len(s.idx)+len(t.idx))
		i, j := 0, 0
		for i < len(s.idx) && j < len(t.idx) {
			switch {
			case s.idx[i] < t.idx[j]:
				idx = append(idx, s.idx[i])
				i++
			case s.idx[i] > t.idx[j]:
				idx = append(idx, t.idx[j])
				j++
			default:
				idx = append(idx, s.idx[i])
				i, j = i+1, j+1
			}
		}
		idx = append(idx, s.idx[i:]...)
		idx = append(idx, t.idx[j:]...)
		return Set{n: s.n, idx: idx}
	}
	if s.compact() {
		return t.Union(s)
	}
	u := s.Clone()
	u.UnionInPlace(t)
	return u
}

// UnionInPlace sets s = s ∪ t without allocating. The receiver must be
// dense; t may be in either form (folding a compacted per-item topic
// vector into a dense running-coverage vector is the episode hot path,
// O(population of t)).
func (s Set) UnionInPlace(t Set) {
	s.sameLen(t)
	s.mutable()
	if t.compact() {
		for _, i := range t.idx {
			s.words[i/wordBits] |= 1 << uint(i%wordBits)
		}
		return
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Intersect returns s ∩ t as a new Set. A compact operand yields a
// compact result (the intersection can only be sparser).
func (s Set) Intersect(t Set) Set {
	s.sameLen(t)
	if s.compact() {
		idx := make([]int32, 0, len(s.idx))
		for _, i := range s.idx {
			if t.test(int(i)) {
				idx = append(idx, i)
			}
		}
		return Set{n: s.n, idx: idx}
	}
	if t.compact() {
		return t.Intersect(s)
	}
	u := Set{n: s.n, words: make([]uint64, len(s.words))}
	for i := range s.words {
		u.words[i] = s.words[i] & t.words[i]
	}
	return u
}

// Difference returns s \ t as a new Set, in s's representation.
func (s Set) Difference(t Set) Set {
	s.sameLen(t)
	if s.compact() {
		idx := make([]int32, 0, len(s.idx))
		for _, i := range s.idx {
			if !t.test(int(i)) {
				idx = append(idx, i)
			}
		}
		return Set{n: s.n, idx: idx}
	}
	if t.compact() {
		u := s.Clone()
		for _, i := range t.idx {
			u.words[i/wordBits] &^= 1 << uint(i%wordBits)
		}
		return u
	}
	u := Set{n: s.n, words: make([]uint64, len(s.words))}
	for i := range s.words {
		u.words[i] = s.words[i] &^ t.words[i]
	}
	return u
}

// wordTest reports whether bit i is set in a dense word array. It is the
// inlinable kernel the compact×dense count loops use instead of the test
// method, whose call (and 56-byte receiver copy) would otherwise run once
// per set index per candidate in the episode hot path.
func wordTest(words []uint64, i int32) bool {
	return words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// CountIntersect returns |s ∩ t| without allocating. It is the pointer
// form of IntersectCount for per-candidate hot loops: a Set header is 7
// words, so the value method spills both operands to the stack at every
// call under the register ABI. The dense×dense word loop is kept small
// enough for the inliner, so the common case compiles to a loop at the
// call site with no call at all.
func CountIntersect(s, t *Set) int {
	if s.idx == nil && t.idx == nil {
		if s.n != t.n {
			panicLen(s.n, t.n)
		}
		c := 0
		for i, w := range s.words {
			c += bits.OnesCount64(w & t.words[i])
		}
		return c
	}
	return countIntersectMixed(s, t)
}

// panicLen reports a length mismatch out of line, keeping the callers'
// fast paths under the inline budget.
func panicLen(n, m int) {
	panic(fmt.Sprintf("bitset: length mismatch %d vs %d", n, m))
}

// countIntersectMixed handles the representation-mixed cases of
// CountIntersect.
func countIntersectMixed(s, t *Set) int {
	s.sameLen(*t)
	if s.compact() {
		c := 0
		if !t.compact() {
			for _, i := range s.idx {
				if wordTest(t.words, i) {
					c++
				}
			}
			return c
		}
		for _, i := range s.idx {
			if t.test(int(i)) {
				c++
			}
		}
		return c
	}
	return countIntersectMixed(t, s)
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	s.sameLen(t)
	return CountIntersect(&s, &t)
}

// CountDifference returns |s \ t| without allocating — the pointer form
// of DifferenceCount (see CountIntersect for why it exists and for the
// inlining shape).
func CountDifference(s, t *Set) int {
	if s.idx == nil && t.idx == nil {
		if s.n != t.n {
			panicLen(s.n, t.n)
		}
		c := 0
		for i, w := range s.words {
			c += bits.OnesCount64(w &^ t.words[i])
		}
		return c
	}
	return countDifferenceMixed(s, t)
}

// countDifferenceMixed handles the representation-mixed cases of
// CountDifference.
func countDifferenceMixed(s, t *Set) int {
	s.sameLen(*t)
	if s.compact() {
		c := 0
		if !t.compact() {
			for _, i := range s.idx {
				if !wordTest(t.words, i) {
					c++
				}
			}
			return c
		}
		for _, i := range s.idx {
			if !t.test(int(i)) {
				c++
			}
		}
		return c
	}
	return s.Count() - countIntersectMixed(t, s)
}

// DifferenceCount returns |s \ t| without allocating.
func (s Set) DifferenceCount(t Set) int {
	s.sameLen(t)
	return CountDifference(&s, &t)
}

// NewCoverage returns |ideal ∩ (s \ t)|: the number of ideal topics that s
// covers beyond what t already covers. This is the quantity gated by ε in
// Equation 3 of the paper, with t playing the role of T_current before the
// action and s the coverage after it.
func (s Set) NewCoverage(t, ideal Set) int {
	s.sameLen(t)
	s.sameLen(ideal)
	if s.compact() {
		c := 0
		if !t.compact() && !ideal.compact() {
			for _, i := range s.idx {
				if !wordTest(t.words, i) && wordTest(ideal.words, i) {
					c++
				}
			}
			return c
		}
		for _, i := range s.idx {
			if !t.test(int(i)) && ideal.test(int(i)) {
				c++
			}
		}
		return c
	}
	if ideal.compact() {
		c := 0
		if !s.compact() && !t.compact() {
			for _, i := range ideal.idx {
				if wordTest(s.words, i) && !wordTest(t.words, i) {
					c++
				}
			}
			return c
		}
		for _, i := range ideal.idx {
			if s.test(int(i)) && !t.test(int(i)) {
				c++
			}
		}
		return c
	}
	if t.compact() {
		// |ideal ∩ s| − |ideal ∩ s ∩ t|, the second term over t's indices.
		c := s.IntersectCount(ideal)
		for _, i := range t.idx {
			if s.test(int(i)) && ideal.test(int(i)) {
				c--
			}
		}
		return c
	}
	c := 0
	for i := range s.words {
		c += bits.OnesCount64((s.words[i] &^ t.words[i]) & ideal.words[i])
	}
	return c
}

// Equal reports whether s and t have the same length and the same bits,
// whatever representation each side uses.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	if s.compact() != t.compact() {
		if !s.compact() {
			return t.Equal(s)
		}
		if len(s.idx) != t.Count() {
			return false
		}
		for _, i := range s.idx {
			if !t.test(int(i)) {
				return false
			}
		}
		return true
	}
	if s.compact() {
		if len(s.idx) != len(t.idx) {
			return false
		}
		for i := range s.idx {
			if s.idx[i] != t.idx[i] {
				return false
			}
		}
		return true
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit of s is also set in t.
func (s Set) SubsetOf(t Set) bool {
	s.sameLen(t)
	if s.compact() {
		for _, i := range s.idx {
			if !t.test(int(i)) {
				return false
			}
		}
		return true
	}
	if t.compact() {
		return s.DifferenceCount(t) == 0
	}
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Indices returns the positions of the set bits in increasing order.
func (s Set) Indices() []int {
	if s.compact() {
		out := make([]int, len(s.idx))
		for i, v := range s.idx {
			out[i] = int(v)
		}
		return out
	}
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// SizeBytes estimates the resident memory of the set's backing storage —
// the figure the scale bench sums per structure.
func (s Set) SizeBytes() int {
	return len(s.words)*8 + len(s.idx)*4
}

// String renders the set as a 0/1 vector, e.g. "[0,1,1,0]", matching the
// paper's notation for topic vectors.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < s.n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if s.test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte(']')
	return b.String()
}

// MarshalJSON encodes the set as a JSON array of 0/1 integers.
func (s Set) MarshalJSON() ([]byte, error) {
	out := make([]byte, 0, 2*s.n+2)
	out = append(out, '[')
	for i := 0; i < s.n; i++ {
		if i > 0 {
			out = append(out, ',')
		}
		if s.test(i) {
			out = append(out, '1')
		} else {
			out = append(out, '0')
		}
	}
	return append(out, ']'), nil
}

// UnmarshalJSON decodes a JSON array of 0/1 integers into the dense form.
func (s *Set) UnmarshalJSON(data []byte) error {
	var raw []int
	if err := unmarshalIntSlice(data, &raw); err != nil {
		return err
	}
	*s = New(len(raw))
	for i, v := range raw {
		switch v {
		case 0:
		case 1:
			s.Set(i)
		default:
			return fmt.Errorf("bitset: element %d is %d, want 0 or 1", i, v)
		}
	}
	return nil
}
