// Package item defines the item model of the paper (§II-A): an item is a
// quadruple ⟨type, cr, pre, T⟩ of primary/secondary type, a credit value, a
// prerequisite expression, and a topic coverage vector. A Catalog is the
// item set I with id and index lookup, shared immutably by learners,
// baselines and evaluators.
package item

import (
	"fmt"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// Type distinguishes primary (required/core) from secondary
// (optional/elective) items.
type Type uint8

const (
	// Primary items are required for the task (core courses, must-visit POIs).
	Primary Type = iota
	// Secondary items are optional and chosen by user interest (electives,
	// optional POIs).
	Secondary
)

// String returns "primary" or "secondary", matching the paper's notation.
func (t Type) String() string {
	switch t {
	case Primary:
		return "primary"
	case Secondary:
		return "secondary"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// NoCategory marks an item that belongs to no sub-discipline/theme.
const NoCategory = -1

// Item is one plannable unit: a course or a POI.
type Item struct {
	// ID uniquely identifies the item within its catalog, e.g. "CS 675" or
	// "louvre museum".
	ID string
	// Name is the human-readable title, e.g. "Machine Learning".
	Name string
	// Description is the catalog blurb (course description / POI notes);
	// informational only — topics drive the planner.
	Description string
	// Type is primary (core / must-visit) or secondary (elective / optional).
	Type Type
	// Credits is cr^m: credit hours for courses, visitation hours for POIs.
	Credits float64
	// Prereq is pre^m, the antecedent expression (nil when none).
	Prereq prereq.Expr
	// Topics is T^m, the coverage vector over the catalog's vocabulary.
	Topics bitset.Set
	// Category is a domain-specific grouping index: the sub-discipline a–f
	// for Univ-2 courses, or the dominant theme for POIs (used by the
	// "no two consecutive POIs of the same theme" gap rule). NoCategory
	// when unused.
	Category int
	// Lat and Lon position POIs for the distance threshold d; zero for
	// courses.
	Lat, Lon float64
	// Popularity is the POI popularity score on a 1–5 scale derived from
	// itinerary frequency (trip score basis, §IV-A2); zero for courses.
	Popularity float64
}

// Catalog is an immutable, ordered item set with O(1) id lookup. Build one
// with NewCatalog; it validates prerequisite references and topic vector
// lengths so downstream code can assume internal consistency.
type Catalog struct {
	items []Item
	byID  map[string]int
	vocab *topics.Vocabulary

	primaries   []int
	secondaries []int
}

// NewCatalog validates and indexes items against vocab.
func NewCatalog(vocab *topics.Vocabulary, items []Item) (*Catalog, error) {
	if vocab == nil {
		return nil, fmt.Errorf("item: nil vocabulary")
	}
	c := &Catalog{
		items: make([]Item, len(items)),
		byID:  make(map[string]int, len(items)),
		vocab: vocab,
	}
	copy(c.items, items)
	for i, m := range c.items {
		if m.ID == "" {
			return nil, fmt.Errorf("item: empty id at position %d", i)
		}
		if _, dup := c.byID[m.ID]; dup {
			return nil, fmt.Errorf("item: duplicate id %q", m.ID)
		}
		if m.Topics.Len() != vocab.Len() {
			return nil, fmt.Errorf("item %q: topic vector length %d, vocabulary %d",
				m.ID, m.Topics.Len(), vocab.Len())
		}
		if m.Credits < 0 {
			return nil, fmt.Errorf("item %q: negative credits %v", m.ID, m.Credits)
		}
		c.byID[m.ID] = i
		// Topic vectors are read-only once the catalog is built, so store
		// each in its density-optimal representation: at catalog scale an
		// item covers a handful of a 100k-topic vocabulary, and the dense
		// vector (vocab/8 bytes per item) would dominate resident memory.
		c.items[i].Topics = m.Topics.Compact()
	}
	// Prerequisite references must resolve within the catalog.
	for _, m := range c.items {
		for _, ref := range prereq.ReferencedItems(m.Prereq) {
			if _, ok := c.byID[ref]; !ok {
				return nil, fmt.Errorf("item %q: prerequisite %q not in catalog", m.ID, ref)
			}
		}
	}
	for i, m := range c.items {
		if m.Type == Primary {
			c.primaries = append(c.primaries, i)
		} else {
			c.secondaries = append(c.secondaries, i)
		}
	}
	return c, nil
}

// MustCatalog is NewCatalog that panics on error, for fixed test fixtures.
func MustCatalog(vocab *topics.Vocabulary, items []Item) *Catalog {
	c, err := NewCatalog(vocab, items)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of items.
func (c *Catalog) Len() int { return len(c.items) }

// At returns the item at index i.
func (c *Catalog) At(i int) Item { return c.items[i] }

// Index returns the index of the item with the given id.
func (c *Catalog) Index(id string) (int, bool) {
	i, ok := c.byID[id]
	return i, ok
}

// ByID returns the item with the given id.
func (c *Catalog) ByID(id string) (Item, bool) {
	if i, ok := c.byID[id]; ok {
		return c.items[i], true
	}
	return Item{}, false
}

// Vocabulary returns the topic vocabulary the catalog's vectors index into.
func (c *Catalog) Vocabulary() *topics.Vocabulary { return c.vocab }

// Primaries returns the indices of primary items in catalog order.
func (c *Catalog) Primaries() []int { return append([]int(nil), c.primaries...) }

// Secondaries returns the indices of secondary items in catalog order.
func (c *Catalog) Secondaries() []int { return append([]int(nil), c.secondaries...) }

// NumPrimary returns the number of primary items.
func (c *Catalog) NumPrimary() int { return len(c.primaries) }

// NumSecondary returns the number of secondary items.
func (c *Catalog) NumSecondary() int { return len(c.secondaries) }

// Types returns the type of every item, index-aligned with the catalog.
func (c *Catalog) Types() []Type {
	out := make([]Type, len(c.items))
	for i, m := range c.items {
		out[i] = m.Type
	}
	return out
}

// IDs returns all item ids in catalog order.
func (c *Catalog) IDs() []string {
	out := make([]string, len(c.items))
	for i, m := range c.items {
		out[i] = m.ID
	}
	return out
}

// SequenceTypes maps a sequence of item indices to their types.
func (c *Catalog) SequenceTypes(seq []int) []Type {
	out := make([]Type, len(seq))
	for i, idx := range seq {
		out[i] = c.items[idx].Type
	}
	return out
}

// SequenceIDs maps a sequence of item indices to their ids.
func (c *Catalog) SequenceIDs(seq []int) []string {
	out := make([]string, len(seq))
	for i, idx := range seq {
		out[i] = c.items[idx].ID
	}
	return out
}

// TotalCredits sums cr^m over a sequence of item indices.
func (c *Catalog) TotalCredits(seq []int) float64 {
	var t float64
	for _, idx := range seq {
		t += c.items[idx].Credits
	}
	return t
}
