package item

import (
	"testing"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// tableII builds the toy course catalog of Table II.
func tableII(t *testing.T) *Catalog {
	t.Helper()
	vocab := topics.MustVocabulary(
		"Algorithms", "Classification", "Clustering", "Statistics",
		"Regression", "Data Structure", "Neural Network", "Probability",
		"Data Visualization", "Linear System", "Matrix Decomposition",
		"Data Management", "Data Transfer",
	)
	items := []Item{
		{ID: "Data Structures and Algorithms", Type: Primary, Credits: 3,
			Topics: bitset.FromIndices(13, 0, 5), Category: NoCategory},
		{ID: "Data Mining", Type: Secondary, Credits: 3,
			Topics: bitset.FromIndices(13, 1, 2), Category: NoCategory},
		{ID: "Data Analytics", Type: Primary, Credits: 3,
			Topics: bitset.FromIndices(13, 3, 7), Category: NoCategory},
		{ID: "Linear Algebra", Type: Secondary, Credits: 3,
			Topics: bitset.FromIndices(13, 8, 9), Category: NoCategory},
		{ID: "Big Data", Type: Secondary, Credits: 3,
			Prereq: prereq.MustParse("Data Mining OR Data Analytics"),
			Topics: bitset.FromIndices(13, 0, 10, 11), Category: NoCategory},
		{ID: "Machine Learning", Type: Primary, Credits: 3,
			Prereq: prereq.MustParse("Linear Algebra AND Data Mining"),
			Topics: bitset.FromIndices(13, 1, 2, 4, 6), Category: NoCategory},
	}
	c, err := NewCatalog(vocab, items)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	return c
}

func TestCatalogBasics(t *testing.T) {
	c := tableII(t)
	if c.Len() != 6 {
		t.Fatalf("Len = %d, want 6", c.Len())
	}
	if c.NumPrimary() != 3 || c.NumSecondary() != 3 {
		t.Fatalf("split = %d/%d, want 3/3", c.NumPrimary(), c.NumSecondary())
	}
	m, ok := c.ByID("Machine Learning")
	if !ok || m.Type != Primary {
		t.Fatalf("ByID(Machine Learning) = %+v, %v", m, ok)
	}
	if i, ok := c.Index("Big Data"); !ok || i != 4 {
		t.Fatalf("Index(Big Data) = %d,%v", i, ok)
	}
	if _, ok := c.ByID("nope"); ok {
		t.Fatal("found nonexistent item")
	}
}

func TestCatalogValidation(t *testing.T) {
	vocab := topics.MustVocabulary("A", "B")
	cases := []struct {
		name  string
		items []Item
	}{
		{"empty id", []Item{{ID: "", Topics: bitset.New(2)}}},
		{"duplicate id", []Item{
			{ID: "x", Topics: bitset.New(2)},
			{ID: "x", Topics: bitset.New(2)},
		}},
		{"bad topic length", []Item{{ID: "x", Topics: bitset.New(3)}}},
		{"negative credits", []Item{{ID: "x", Credits: -1, Topics: bitset.New(2)}}},
		{"dangling prereq", []Item{
			{ID: "x", Topics: bitset.New(2), Prereq: prereq.Ref("ghost")},
		}},
	}
	for _, tc := range cases {
		if _, err := NewCatalog(vocab, tc.items); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := NewCatalog(nil, nil); err == nil {
		t.Error("nil vocabulary accepted")
	}
}

func TestSequenceHelpers(t *testing.T) {
	c := tableII(t)
	seq := []int{0, 1, 3} // DSA, DM, LA
	types := c.SequenceTypes(seq)
	if types[0] != Primary || types[1] != Secondary || types[2] != Secondary {
		t.Fatalf("types = %v", types)
	}
	ids := c.SequenceIDs(seq)
	if ids[1] != "Data Mining" {
		t.Fatalf("ids = %v", ids)
	}
	if got := c.TotalCredits(seq); got != 9 {
		t.Fatalf("TotalCredits = %v, want 9", got)
	}
}

func TestPrimariesSecondariesAreCopies(t *testing.T) {
	c := tableII(t)
	p := c.Primaries()
	p[0] = 999
	if c.Primaries()[0] == 999 {
		t.Fatal("Primaries leaked internal slice")
	}
	s := c.Secondaries()
	if len(s) != 3 {
		t.Fatalf("Secondaries = %v", s)
	}
}

func TestTypeString(t *testing.T) {
	if Primary.String() != "primary" || Secondary.String() != "secondary" {
		t.Fatal("Type.String mismatch")
	}
	if Type(9).String() != "Type(9)" {
		t.Fatalf("unknown type string = %s", Type(9))
	}
}

func TestCatalogIsDefensiveCopy(t *testing.T) {
	vocab := topics.MustVocabulary("A")
	items := []Item{{ID: "x", Topics: bitset.New(1)}}
	c := MustCatalog(vocab, items)
	items[0].ID = "mutated"
	if c.At(0).ID != "x" {
		t.Fatal("catalog shares caller's slice")
	}
}
