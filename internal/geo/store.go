package geo

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Store is the pairwise-distance surface the planner layers depend on —
// the concrete representation (exact matrix, on-the-fly Haversine,
// quantized neighbor bands) stays a detail of this package, selected by
// catalog size. All implementations are immutable once built and safe
// for concurrent use.
type Store interface {
	// Len returns the number of points covered.
	Len() int
	// Dist returns the distance between points i and j in kilometers.
	Dist(i, j int) float64
	// SizeBytes estimates the store's resident backing bytes.
	SizeBytes() int
}

// DefaultExactHaversineMaxItems is the catalog size up to which
// NewDistStore keeps distances exact (precomputed matrix below the
// matrix cap, per-call Haversine above it). Beyond this many points the
// quantized neighbor store takes over; the threshold matches the dense
// Q threshold so the whole data plane switches representation at one
// size, keeping plans at or below it bit-identical to the dense path.
const DefaultExactHaversineMaxItems = 4096

// DefaultNeighborK is the per-point neighbor band width of the
// quantized store — enough to cover the legs a distance-constrained
// plan actually walks; pairs outside the band fall back to exact
// Haversine and are counted.
const DefaultNeighborK = 32

// fallbackTotal counts Dist calls that missed the compressed neighbor
// band and recomputed an exact Haversine — the observability hook for
// the accuracy/memory trade (served as dist_fallback_total).
var fallbackTotal atomic.Uint64

// FallbackTotal returns the process-wide count of out-of-band distance
// fallbacks.
func FallbackTotal() uint64 { return fallbackTotal.Load() }

// CountFallback records one out-of-band exact recomputation. Exposed
// for sibling caches (the gold baseline's distance cache) that fall
// back outside this package's stores.
func CountFallback() { fallbackTotal.Add(1) }

// NewDistStore selects the distance representation for a catalog:
// the exact precomputed matrix up to matrixMax points (<= 0 means
// DefaultDistMatrixMaxItems), exact per-call Haversine up to
// DefaultExactHaversineMaxItems, and the quantized top-K neighbor store
// beyond — memory follows n·K instead of n², with exact fallback (and a
// counter) for pairs outside the band.
func NewDistStore(pts []Point, matrixMax int) Store {
	if matrixMax <= 0 {
		matrixMax = DefaultDistMatrixMaxItems
	}
	if len(pts) <= matrixMax {
		return NewDistMatrix(pts)
	}
	if len(pts) <= DefaultExactHaversineMaxItems {
		return HaversineStore(pts)
	}
	return NewNeighborStore(pts, DefaultNeighborK)
}

// SizeBytes reports the matrix's float32 backing array.
func (m *DistMatrix) SizeBytes() int { return 4 * len(m.d) }

// HaversineStore computes every distance exactly on demand — no
// precomputation, 16 bytes per point. It is the mid-range tier of
// NewDistStore, preserving the historical above-matrix-cap behavior
// (and its bit-exact results) without the quadratic table.
type HaversineStore []Point

// Len returns the number of points covered.
func (h HaversineStore) Len() int { return len(h) }

// Dist returns the exact Haversine distance between points i and j.
func (h HaversineStore) Dist(i, j int) float64 {
	if i < 0 || i >= len(h) || j < 0 || j >= len(h) {
		panic(fmt.Sprintf("geo: dist index (%d,%d) out of range [0,%d)", i, j, len(h)))
	}
	return Haversine(h[i], h[j])
}

// SizeBytes reports the point slice backing the store.
func (h HaversineStore) SizeBytes() int { return 16 * len(h) }

// NeighborStore holds each point's K nearest neighbors with distances
// quantized to uint16 bucket codes — 6 bytes per directed edge instead
// of the full matrix's 4 bytes per pair (≈ n·2K·6 bytes versus 4n²; at
// 100k points and K=32 that is ~38 MB versus 40 GB). Pairs outside the
// band recompute the exact Haversine
// and bump the fallback counter. The band is symmetric: Dist(i,j) and
// Dist(j,i) always agree, quantized or exact.
type NeighborStore struct {
	pts      []Point
	offs     []int32 // n+1 row offsets into idx/code
	idx      []int32 // neighbor ids, ascending per row
	code     []uint16
	bucketKm float64
	k        int
}

// NewNeighborStore builds the quantized K-nearest-neighbor store
// (k <= 0 means DefaultNeighborK). Neighbor search runs over a spatial
// grid — expanding cell rings per point — so the build is near O(n·K)
// instead of the O(n²) all-pairs sweep.
func NewNeighborStore(pts []Point, k int) *NeighborStore {
	n := len(pts)
	if k <= 0 {
		k = DefaultNeighborK
	}
	if k > n-1 {
		k = n - 1
	}
	s := &NeighborStore{pts: pts, offs: make([]int32, n+1), k: k}
	if n == 0 || k <= 0 {
		s.bucketKm = 1
		return s
	}

	// Quantization step: the bounding-box diagonal spread over the uint16
	// code space (with a little headroom so near-diagonal pairs still
	// round inside range). Every stored distance is then within half a
	// bucket of exact.
	minP, maxP := pts[0], pts[0]
	for _, p := range pts[1:] {
		minP.Lat = math.Min(minP.Lat, p.Lat)
		minP.Lon = math.Min(minP.Lon, p.Lon)
		maxP.Lat = math.Max(maxP.Lat, p.Lat)
		maxP.Lon = math.Max(maxP.Lon, p.Lon)
	}
	diag := Haversine(minP, maxP)
	if diag == 0 {
		diag = 1e-9 // degenerate catalog: all points coincide
	}
	s.bucketKm = diag / 65000

	// Spatial grid at ~1 point per cell on average.
	g := int(math.Sqrt(float64(n)))
	if g < 1 {
		g = 1
	}
	cellOf := func(p Point) (int, int) {
		cx, cy := 0, 0
		if maxP.Lon > minP.Lon {
			cx = int(float64(g) * (p.Lon - minP.Lon) / (maxP.Lon - minP.Lon))
		}
		if maxP.Lat > minP.Lat {
			cy = int(float64(g) * (p.Lat - minP.Lat) / (maxP.Lat - minP.Lat))
		}
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		return cx, cy
	}
	cells := make([][]int32, g*g)
	for i, p := range pts {
		cx, cy := cellOf(p)
		cells[cy*g+cx] = append(cells[cy*g+cx], int32(i))
	}

	// Per point: expand rings until a comfortable candidate surplus,
	// keep the k nearest by exact distance, and record the canonical
	// (low, high) pair so the final band is symmetric.
	type edge struct {
		a, b int32
		code uint16
	}
	edges := make([]edge, 0, n*k)
	type cand struct {
		j int32
		d float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		cx, cy := cellOf(pts[i])
		cands = cands[:0]
		for r := 0; ; r++ {
			x0, x1 := cx-r, cx+r
			y0, y1 := cy-r, cy+r
			for y := y0; y <= y1; y++ {
				if y < 0 || y >= g {
					continue
				}
				for x := x0; x <= x1; x++ {
					if x < 0 || x >= g {
						continue
					}
					if r > 0 && x > x0 && x < x1 && y > y0 && y < y1 {
						continue // interior cells were visited at smaller r
					}
					for _, j := range cells[y*g+x] {
						if int(j) == i {
							continue
						}
						cands = append(cands, cand{j: j, d: Haversine(pts[i], pts[int(j)])})
					}
				}
			}
			covered := x0 <= 0 && y0 <= 0 && x1 >= g-1 && y1 >= g-1
			// One extra ring past k candidates: grid cells are not
			// isometric, so the true k nearest may sit a ring further out
			// than the first k found. A miss only costs an exact fallback
			// at query time, never a wrong distance.
			if covered || len(cands) >= 3*k {
				break
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].j < cands[b].j
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		for _, c := range cands {
			a, b := int32(i), c.j
			if a > b {
				a, b = b, a
			}
			edges = append(edges, edge{a: a, b: b, code: s.quantize(c.d)})
		}
	}

	// Dedup canonical pairs, then materialize both directions with
	// ascending neighbor ids per row.
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].a != edges[b].a {
			return edges[a].a < edges[b].a
		}
		return edges[a].b < edges[b].b
	})
	uniq := edges[:0]
	for i, e := range edges {
		if i > 0 && e.a == uniq[len(uniq)-1].a && e.b == uniq[len(uniq)-1].b {
			continue
		}
		uniq = append(uniq, e)
	}
	deg := make([]int32, n)
	for _, e := range uniq {
		deg[e.a]++
		deg[e.b]++
	}
	for i := 0; i < n; i++ {
		s.offs[i+1] = s.offs[i] + deg[i]
	}
	total := int(s.offs[n])
	s.idx = make([]int32, total)
	s.code = make([]uint16, total)
	fill := make([]int32, n)
	for _, e := range uniq {
		pa := s.offs[e.a] + fill[e.a]
		s.idx[pa], s.code[pa] = e.b, e.code
		fill[e.a]++
		pb := s.offs[e.b] + fill[e.b]
		s.idx[pb], s.code[pb] = e.a, e.code
		fill[e.b]++
	}
	for i := 0; i < n; i++ {
		lo, hi := s.offs[i], s.offs[i+1]
		row, codes := s.idx[lo:hi], s.code[lo:hi]
		sort.Sort(&neighborRow{idx: row, code: codes})
	}
	return s
}

// neighborRow sorts one row's neighbors by id, carrying codes along.
type neighborRow struct {
	idx  []int32
	code []uint16
}

func (r *neighborRow) Len() int           { return len(r.idx) }
func (r *neighborRow) Less(i, j int) bool { return r.idx[i] < r.idx[j] }
func (r *neighborRow) Swap(i, j int) {
	r.idx[i], r.idx[j] = r.idx[j], r.idx[i]
	r.code[i], r.code[j] = r.code[j], r.code[i]
}

func (s *NeighborStore) quantize(d float64) uint16 {
	c := math.Round(d / s.bucketKm)
	if c > 65535 {
		c = 65535
	}
	return uint16(c)
}

// Len returns the number of points covered.
func (s *NeighborStore) Len() int { return len(s.pts) }

// Dist returns the banded quantized distance when j is in i's neighbor
// band, otherwise the exact Haversine (counted as a fallback). The
// quantized value is within half a bucket of exact — the ≤ 1 bucket
// error bound the accuracy test pins.
func (s *NeighborStore) Dist(i, j int) float64 {
	n := len(s.pts)
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("geo: dist index (%d,%d) out of range [0,%d)", i, j, n))
	}
	if i == j {
		return 0
	}
	lo, hi := int(s.offs[i]), int(s.offs[i+1])
	row := s.idx[lo:hi]
	t := int32(j)
	p := sort.Search(len(row), func(k int) bool { return row[k] >= t })
	if p < len(row) && row[p] == t {
		return float64(s.code[lo+p]) * s.bucketKm
	}
	fallbackTotal.Add(1)
	return Haversine(s.pts[i], s.pts[j])
}

// BucketKm returns the quantization step in kilometers.
func (s *NeighborStore) BucketKm() float64 { return s.bucketKm }

// InBand reports whether the pair (i, j) is served from the quantized
// band (true) or recomputed exactly on each call (false).
func (s *NeighborStore) InBand(i, j int) bool {
	if i == j {
		return true
	}
	lo, hi := int(s.offs[i]), int(s.offs[i+1])
	row := s.idx[lo:hi]
	t := int32(j)
	p := sort.Search(len(row), func(k int) bool { return row[k] >= t })
	return p < len(row) && row[p] == t
}

// SizeBytes reports the store's backing arrays (points, offsets,
// neighbor ids, codes).
func (s *NeighborStore) SizeBytes() int {
	return 16*len(s.pts) + 4*len(s.offs) + 4*len(s.idx) + 2*len(s.code)
}
