package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistMatrixPropertyMatchesHaversine(t *testing.T) {
	// Every matrix entry agrees with the direct Haversine computation to
	// float32 rounding: the stored value is float32(Haversine), so the
	// error bound is one float32 ulp of the distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			// City-scale coordinates plus a few far-flung outliers.
			pts[i] = Point{Lat: -80 + rng.Float64()*160, Lon: -180 + rng.Float64()*360}
		}
		m := NewDistMatrix(pts)
		if m.Len() != n {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			want := Haversine(pts[i], pts[j])
			got := m.Dist(i, j)
			// float32 has a 24-bit significand: relative error ≤ 2⁻²⁴.
			tol := math.Max(want*1.2e-7, 1e-9)
			if math.Abs(got-want) > tol {
				t.Logf("(%d,%d): matrix %v vs haversine %v", i, j, got, want)
				return false
			}
			if m.Dist(i, j) != m.Dist(j, i) {
				return false // symmetry
			}
		}
		for i := 0; i < n; i++ {
			if m.Dist(i, i) != 0 {
				return false // zero diagonal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistMatrixCapped(t *testing.T) {
	pts := make([]Point, 10)
	if m := NewDistMatrixCapped(pts, 9); m != nil {
		t.Fatal("size guard must refuse catalogs above the cap")
	}
	if m := NewDistMatrixCapped(pts, 10); m == nil || m.Len() != 10 {
		t.Fatal("catalogs at the cap must build")
	}
	if m := NewDistMatrixCapped(pts, 0); m == nil {
		t.Fatal("maxItems <= 0 must mean the default cap, not zero")
	}
}

func TestDistMatrixPanicsOutOfRange(t *testing.T) {
	m := NewDistMatrix([]Point{{0, 0}, {1, 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Dist(0, 2)
}
