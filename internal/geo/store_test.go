package geo

import (
	"math/rand"
	"testing"
)

func randomCity(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		// A ~city-sized box around a mid-latitude center, with a few
		// clusters so the grid sees non-uniform density.
		cx := 48.8 + rng.Float64()*0.02
		cy := 2.3 + rng.Float64()*0.02
		if rng.Intn(3) == 0 {
			cx += 0.15
			cy -= 0.1
		}
		pts[i] = Point{Lat: cx + rng.NormFloat64()*0.01, Lon: cy + rng.NormFloat64()*0.01}
	}
	return pts
}

// TestNewDistStoreTiers pins representation selection by catalog size:
// exact matrix below the matrix cap, exact per-call Haversine through
// the dense threshold, quantized neighbor bands beyond.
func TestNewDistStoreTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, ok := NewDistStore(randomCity(rng, 50), 0).(*DistMatrix); !ok {
		t.Error("small catalog should use the exact matrix")
	}
	if _, ok := NewDistStore(randomCity(rng, 50), 10).(HaversineStore); !ok {
		t.Error("catalog above an explicit matrix cap should use per-call Haversine")
	}
	big := make([]Point, DefaultExactHaversineMaxItems+1)
	for i := range big {
		big[i] = Point{Lat: float64(i%100) * 0.001, Lon: float64(i/100) * 0.001}
	}
	if _, ok := NewDistStore(big, 0).(*NeighborStore); !ok {
		t.Error("catalog above the exact threshold should use the neighbor store")
	}
}

// TestExactTiersMatchHaversine pins bit-exactness of the sub-threshold
// tiers: the matrix stores float32 (the historical representation, a
// documented rounding), the mid tier is the very same Haversine call.
func TestExactTiersMatchHaversine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomCity(rng, 60)
	hs := HaversineStore(pts)
	for trial := 0; trial < 200; trial++ {
		i, j := rng.Intn(60), rng.Intn(60)
		if hs.Dist(i, j) != Haversine(pts[i], pts[j]) {
			t.Fatalf("HaversineStore.Dist(%d,%d) differs from Haversine", i, j)
		}
	}
}

// TestNeighborStoreErrorBound is the quantization accuracy property:
// every banded distance is within one bucket of the exact Haversine,
// and out-of-band distances are exact (they are the same computation).
func TestNeighborStoreErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomCity(rng, 800)
	s := NewNeighborStore(pts, 16)
	bucket := s.BucketKm()
	if bucket <= 0 {
		t.Fatalf("BucketKm = %v", bucket)
	}
	banded, checked := 0, 0
	for trial := 0; trial < 20000; trial++ {
		i, j := rng.Intn(len(pts)), rng.Intn(len(pts))
		exact := Haversine(pts[i], pts[j])
		got := s.Dist(i, j)
		checked++
		if s.InBand(i, j) {
			banded++
			if diff := got - exact; diff > bucket || diff < -bucket {
				t.Fatalf("banded Dist(%d,%d) = %v, exact %v: error %v exceeds one bucket %v",
					i, j, got, exact, diff, bucket)
			}
		} else if got != exact {
			t.Fatalf("out-of-band Dist(%d,%d) = %v, want exact %v", i, j, got, exact)
		}
	}
	if banded == 0 {
		t.Fatal("no banded pair sampled; the store stored nothing")
	}
	t.Logf("checked %d pairs, %d banded", checked, banded)
}

// TestNeighborStoreSymmetry: the band is symmetrized at build time, so
// Dist(i,j) == Dist(j,i) whether the pair is banded or not.
func TestNeighborStoreSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomCity(rng, 500)
	s := NewNeighborStore(pts, 8)
	for trial := 0; trial < 5000; trial++ {
		i, j := rng.Intn(len(pts)), rng.Intn(len(pts))
		if s.Dist(i, j) != s.Dist(j, i) {
			t.Fatalf("Dist(%d,%d) != Dist(%d,%d)", i, j, j, i)
		}
		if s.InBand(i, j) != s.InBand(j, i) {
			t.Fatalf("band membership asymmetric for (%d,%d)", i, j)
		}
	}
	for i := 0; i < len(pts); i++ {
		if d := s.Dist(i, i); d != 0 {
			t.Fatalf("Dist(%d,%d) = %v, want 0", i, i, d)
		}
	}
}

// TestNeighborStoreNearNeighborsBanded: the band must actually contain
// each point's closest companions — that is its whole purpose; a store
// that banded arbitrary pairs would fall back on every constrained leg.
func TestNeighborStoreNearNeighborsBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomCity(rng, 400)
	const k = 12
	s := NewNeighborStore(pts, k)
	misses := 0
	for i := range pts {
		// Exact nearest neighbor by brute force.
		best, bd := -1, 0.0
		for j := range pts {
			if j == i {
				continue
			}
			if d := Haversine(pts[i], pts[j]); best < 0 || d < bd {
				best, bd = j, d
			}
		}
		if !s.InBand(i, best) {
			misses++
		}
	}
	// The grid search is approximate; allow a small miss rate but not a
	// broken band.
	if misses > len(pts)/20 {
		t.Fatalf("%d/%d points miss their exact nearest neighbor in the band", misses, len(pts))
	}
}

// TestFallbackCounter: out-of-band lookups increment the shared
// counter; banded lookups do not.
func TestFallbackCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomCity(rng, 300)
	s := NewNeighborStore(pts, 4)
	var in, out [2]int
	for trial := 0; trial < 2000; trial++ {
		i, j := rng.Intn(len(pts)), rng.Intn(len(pts))
		if i == j {
			continue
		}
		k := 0
		if !s.InBand(i, j) {
			k = 1
		}
		before := FallbackTotal()
		s.Dist(i, j)
		in[k] += int(FallbackTotal() - before)
		out[k]++
	}
	if in[0] != 0 {
		t.Fatalf("banded lookups bumped the fallback counter %d times", in[0])
	}
	if out[1] > 0 && in[1] != out[1] {
		t.Fatalf("out-of-band lookups counted %d of %d", in[1], out[1])
	}
}

// TestNeighborStoreMemory: the band must stay linear in n·K — the
// memory claim behind replacing the n² matrix.
func TestNeighborStoreMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5000
	pts := randomCity(rng, n)
	s := NewNeighborStore(pts, DefaultNeighborK)
	matrix := 4 * n * n // what NewDistMatrix would cost
	if got := s.SizeBytes(); got >= matrix/4 {
		t.Fatalf("NeighborStore.SizeBytes = %d, want far below matrix %d", got, matrix)
	}
}

// TestNeighborStoreDegenerate covers the edge catalogs: empty, single
// point, and all points coincident.
func TestNeighborStoreDegenerate(t *testing.T) {
	if s := NewNeighborStore(nil, 4); s.Len() != 0 {
		t.Fatal("empty store")
	}
	one := NewNeighborStore([]Point{{Lat: 1, Lon: 2}}, 4)
	if d := one.Dist(0, 0); d != 0 {
		t.Fatalf("single-point Dist = %v", d)
	}
	same := make([]Point, 50)
	for i := range same {
		same[i] = Point{Lat: 10, Lon: 20}
	}
	s := NewNeighborStore(same, 4)
	for trial := 0; trial < 100; trial++ {
		i, j := trial%50, (trial*7)%50
		if d := s.Dist(i, j); d != 0 {
			t.Fatalf("coincident Dist(%d,%d) = %v", i, j, d)
		}
	}
}
