package geo

import (
	"math"
	"testing"
)

func TestHaversineZero(t *testing.T) {
	p := Point{48.8584, 2.2945} // Eiffel Tower
	if d := Haversine(p, p); d != 0 {
		t.Fatalf("distance to self = %v", d)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Eiffel Tower to Louvre is about 3.2 km.
	eiffel := Point{48.8584, 2.2945}
	louvre := Point{48.8606, 2.3376}
	d := Haversine(eiffel, louvre)
	if d < 2.9 || d > 3.5 {
		t.Fatalf("Eiffel→Louvre = %.2f km, want ≈3.2", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	a := Point{40.7128, -74.0060}
	b := Point{40.7484, -73.9857}
	if math.Abs(Haversine(a, b)-Haversine(b, a)) > 1e-9 {
		t.Fatal("haversine not symmetric")
	}
}

func TestPathLength(t *testing.T) {
	a := Point{48.8584, 2.2945}
	b := Point{48.8606, 2.3376}
	c := Point{48.8530, 2.3499}
	got := PathLength([]Point{a, b, c})
	want := Haversine(a, b) + Haversine(b, c)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PathLength = %v, want %v", got, want)
	}
	if PathLength(nil) != 0 || PathLength([]Point{a}) != 0 {
		t.Fatal("degenerate paths should be 0")
	}
}

func TestTriangleInequality(t *testing.T) {
	a := Point{48.85, 2.29}
	b := Point{48.87, 2.35}
	c := Point{48.84, 2.32}
	if Haversine(a, b) > Haversine(a, c)+Haversine(c, b)+1e-9 {
		t.Fatal("triangle inequality violated")
	}
}
