// Package geo provides the small amount of spherical geometry the trip
// planner needs: great-circle distances between POIs for the distance
// threshold d of the trip hard constraints.
package geo

import "math"

// EarthRadiusKm is the mean Earth radius used by Haversine.
const EarthRadiusKm = 6371.0

// Point is a latitude/longitude pair in degrees.
type Point struct {
	Lat, Lon float64
}

// Haversine returns the great-circle distance between a and b in kilometers.
func Haversine(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PathLength returns the total distance of visiting the points in order.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Haversine(pts[i-1], pts[i])
	}
	return total
}
