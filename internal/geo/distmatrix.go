package geo

import "fmt"

// DefaultDistMatrixMaxItems is the default size guard for NewDistMatrixCapped:
// the full n×n float32 matrix costs 4n² bytes (1024 items ≈ 4 MB), so beyond
// this many points callers fall back to on-the-fly Haversine instead of
// trading quadratic memory for the lookup.
const DefaultDistMatrixMaxItems = 1024

// DistMatrix is a precomputed pairwise great-circle distance table. Distances
// are stored as float32 — the ~7 significant digits leave sub-millimeter error
// at city scale, half the memory of float64, and better cache density in the
// per-candidate feasibility loop. The matrix is symmetric with a zero
// diagonal and, once built, immutable and safe for concurrent use.
type DistMatrix struct {
	n int
	d []float32 // row-major n×n
}

// NewDistMatrix precomputes the Haversine distance between every pair of
// points. Build cost is n(n-1)/2 trig evaluations; after that every lookup is
// one float32 load.
func NewDistMatrix(pts []Point) *DistMatrix {
	n := len(pts)
	m := &DistMatrix{n: n, d: make([]float32, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := float32(Haversine(pts[i], pts[j]))
			m.d[i*n+j] = d
			m.d[j*n+i] = d
		}
	}
	return m
}

// NewDistMatrixCapped is NewDistMatrix with a size guard: it returns nil when
// len(pts) exceeds maxItems (maxItems <= 0 means DefaultDistMatrixMaxItems),
// signalling the caller to keep computing distances on the fly rather than
// allocate a quadratic table.
func NewDistMatrixCapped(pts []Point, maxItems int) *DistMatrix {
	if maxItems <= 0 {
		maxItems = DefaultDistMatrixMaxItems
	}
	if len(pts) > maxItems {
		return nil
	}
	return NewDistMatrix(pts)
}

// Len returns the number of points the matrix covers.
func (m *DistMatrix) Len() int { return m.n }

// Dist returns the precomputed distance between points i and j in kilometers.
func (m *DistMatrix) Dist(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("geo: dist index (%d,%d) out of range [0,%d)", i, j, m.n))
	}
	return float64(m.d[i*m.n+j])
}
