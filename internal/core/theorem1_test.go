package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/rlplanner/rlplanner/internal/bitset"
	"github.com/rlplanner/rlplanner/internal/constraints"
	"github.com/rlplanner/rlplanner/internal/core"
	"github.com/rlplanner/rlplanner/internal/dataset"
	"github.com/rlplanner/rlplanner/internal/eval"
	"github.com/rlplanner/rlplanner/internal/item"
	"github.com/rlplanner/rlplanner/internal/mdp"
	"github.com/rlplanner/rlplanner/internal/prereq"
	"github.com/rlplanner/rlplanner/internal/seqsim"
	"github.com/rlplanner/rlplanner/internal/topics"
)

// randomInstance generates a random but well-formed course instance:
// nItems items over nTopics topics, a sprinkling of DAG-shaped
// prerequisites, and a p+s plan requirement. Prerequisites only reference
// lower-indexed items, so the catalog is always acyclic, and enough
// prereq-free items of each type exist for feasibility.
func randomInstance(rng *rand.Rand, name string) *dataset.Instance {
	nItems := 14 + rng.Intn(12)
	nTopics := 20 + rng.Intn(20)
	p, s := 3, 3
	gap := 1 + rng.Intn(2)

	names := make([]string, nTopics)
	for i := range names {
		names[i] = fmt.Sprintf("topic-%d", i)
	}
	vocab, err := topics.NewVocabulary(names)
	if err != nil {
		panic(err)
	}

	items := make([]item.Item, nItems)
	var primaries int
	for i := range items {
		ty := item.Secondary
		// Guarantee p prereq-free primaries up front, then randomize.
		if i < p {
			ty = item.Primary
			primaries++
		} else if rng.Intn(3) == 0 {
			ty = item.Primary
			primaries++
		}
		vec := bitset.New(nTopics)
		for k := 0; k < 2+rng.Intn(4); k++ {
			vec.Set(rng.Intn(nTopics))
		}
		var pre prereq.Expr
		// Items beyond the feasibility core may carry prerequisites on
		// strictly earlier items.
		if i >= p+s && rng.Intn(3) == 0 {
			a := rng.Intn(i)
			if rng.Intn(2) == 0 {
				b := rng.Intn(i)
				pre = prereq.Or{prereq.Ref(fmt.Sprintf("it-%d", a)), prereq.Ref(fmt.Sprintf("it-%d", b))}
			} else {
				pre = prereq.Ref(fmt.Sprintf("it-%d", a))
			}
		}
		items[i] = item.Item{
			ID:       fmt.Sprintf("it-%d", i),
			Name:     fmt.Sprintf("Item %d", i),
			Type:     ty,
			Credits:  3,
			Prereq:   pre,
			Topics:   vec,
			Category: item.NoCategory,
		}
	}
	catalog, err := item.NewCatalog(vocab, items)
	if err != nil {
		panic(err)
	}

	hard := constraints.Hard{
		Credits:    float64(3 * (p + s)),
		CreditMode: constraints.MinCredits,
		Primary:    p,
		Secondary:  s,
		Gap:        gap,
	}
	ideal := bitset.New(nTopics)
	for i := 0; i < nTopics; i++ {
		ideal.Set(i)
	}
	inst := &dataset.Instance{
		Name:         name,
		Kind:         dataset.CoursePlanning,
		Catalog:      catalog,
		Hard:         hard,
		Soft:         constraints.Soft{Ideal: ideal, Template: dataset.MakeTemplate(p, s)},
		DefaultStart: "it-0",
		Defaults: dataset.Defaults{
			Episodes: 200, Alpha: 0.75, Gamma: 0.95, Epsilon: 0.0025,
			Delta: 0.8, Beta: 0.2, W1: 0.6, W2: 0.4, Sim: seqsim.Average,
		},
		GoldScore: float64(p + s),
	}
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	return inst
}

// TestTheorem1PositiveRewardTrajectoriesSatisfyGaps is the executable core
// of Theorem 1 on random catalogs: along ANY trajectory, a step with
// strictly positive reward has its antecedent-gap requirement satisfied
// (r2 = 1 is a factor of θ). This holds regardless of what the learner
// does, so it is checked over random walks.
func TestTheorem1PositiveRewardTrajectoriesSatisfyGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng, fmt.Sprintf("rand-%d", trial))
		p, err := core.New(inst, core.Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		env := p.Env()
		ep, err := env.Start(rng.Intn(env.NumItems()))
		if err != nil {
			t.Fatal(err)
		}
		for !ep.Done() {
			cands := ep.Candidates()
			if len(cands) == 0 {
				break
			}
			a := cands[rng.Intn(len(cands))]
			tr := ep.Transition(a)
			r := ep.Reward(a)
			if r > 0 && !tr.PrereqOK {
				t.Fatalf("trial %d: positive reward %v with unsatisfied antecedent", trial, r)
			}
			ep.Step(a)
		}
	}
}

// TestTheorem1LearnedPlansSatisfyHardConstraints checks the end-to-end
// consequence on random catalogs: learned guided plans of full length
// satisfy every hard constraint — and the §IV-A score is positive exactly
// when they do.
func TestTheorem1LearnedPlansSatisfyHardConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	fullLength, constraintOK := 0, 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		inst := randomInstance(rng, fmt.Sprintf("rand2-%d", trial))
		p, err := core.New(inst, core.Options{Episodes: 250, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Learn(); err != nil {
			t.Fatal(err)
		}
		plan, err := p.Plan()
		if err != nil {
			t.Fatal(err)
		}
		d := eval.Evaluate(inst, plan)
		if (d.Score > 0) != (len(d.Violations) == 0) {
			t.Fatalf("trial %d: score %v with violations %v", trial, d.Score, d.Violations)
		}
		if len(plan) == inst.Hard.Length() {
			fullLength++
			if len(d.Violations) == 0 {
				constraintOK++
			}
		}
	}
	if fullLength == 0 {
		t.Fatal("no full-length plans produced")
	}
	// The guided walk should satisfy constraints on the overwhelming
	// majority of feasible random instances.
	if constraintOK*10 < fullLength*8 {
		t.Fatalf("only %d of %d full-length plans satisfied constraints", constraintOK, fullLength)
	}
}

// TestCountBudgetMeetsCreditFloor checks Theorem 1 part 1 on random
// catalogs: the count-based trajectory design makes total credits equal
// the credit requirement.
func TestCountBudgetMeetsCreditFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(rng, fmt.Sprintf("rand3-%d", trial))
		p, err := core.New(inst, core.Options{Episodes: 150, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Learn(); err != nil {
			t.Fatal(err)
		}
		plan, err := p.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) != inst.Hard.Length() {
			continue // candidate exhaustion; covered elsewhere
		}
		if got := inst.Catalog.TotalCredits(plan); got != inst.Hard.Credits {
			t.Fatalf("trial %d: credits %v, want %v", trial, got, inst.Hard.Credits)
		}
	}
	_ = mdp.CountBudget{}
}
